// technology_explorer: "should we develop this technology?" — the paper's
// Fig. 6 workflow as a tool. Given a hypothetical emerging-technology design
// point (how much more embodied carbon it costs, how much operational energy
// it saves), report whether it beats the all-Si baseline, how robust that
// verdict is to uncertainty, and what the Monte-Carlo odds are.
//
//   $ ./technology_explorer [embodied_scale] [energy_scale]
//
// e.g. `./technology_explorer 2.0 0.5` asks about a technology with 2x the
// M3D design's embodied carbon but half its operational energy.
#include <cstdio>
#include <cstdlib>

#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/core/system.hpp"

int main(int argc, char** argv) {
  using namespace ppatc;
  using namespace ppatc::units;
  namespace cb = ppatc::carbon;

  const double emb_scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double eng_scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  const auto t2 = core::table2(workloads::matmult_int());
  const auto baseline = t2.all_si.carbon_profile();
  const auto candidate = cb::scaled_profile(t2.m3d.carbon_profile(), emb_scale, eng_scale);

  cb::OperationalScenario scen;
  const Duration life = months(24.0);

  std::printf("candidate: M3D design scaled by %.2fx embodied, %.2fx operational energy\n",
              emb_scale, eng_scale);
  std::printf("  embodied per good die : %.2f gCO2e (baseline %.2f)\n",
              in_grams_co2e(candidate.embodied_per_good_die),
              in_grams_co2e(baseline.embodied_per_good_die));
  std::printf("  operational power     : %.2f mW (baseline %.2f)\n",
              in_milliwatts(candidate.operational_power),
              in_milliwatts(baseline.operational_power));

  const double ratio = cb::tcdp_ratio(candidate, baseline, scen, life);
  std::printf("\n24-month tCDP ratio (candidate/baseline): %.3f -> %s\n", ratio,
              ratio < 1.0 ? "candidate IS more carbon-efficient"
                          : "candidate is NOT more carbon-efficient");

  // Where does this point sit relative to the isoline?
  const auto iso_y = cb::isoline_energy_scale(t2.m3d.carbon_profile(), baseline, scen, life,
                                              emb_scale);
  if (iso_y) {
    std::printf("isoline at x=%.2f passes through y=%.3f; margin to parity: %+.3f in y\n",
                emb_scale, *iso_y, *iso_y - eng_scale);
  }

  // Robustness: +/-20% embodied, 3x CI, +/-6 months lifetime.
  cb::UncertainProfile uc;
  uc.embodied_per_good_die_g =
      cb::Interval::factor(in_grams_co2e(candidate.embodied_per_good_die), 1.2);
  uc.operational_power_w = cb::Interval::point(in_watts(candidate.operational_power));
  uc.execution_time = candidate.execution_time;
  cb::UncertainProfile ub;
  ub.embodied_per_good_die_g =
      cb::Interval::factor(in_grams_co2e(baseline.embodied_per_good_die), 1.2);
  ub.operational_power_w = cb::Interval::point(in_watts(baseline.operational_power));
  ub.execution_time = baseline.execution_time;
  cb::UncertainScenario us;
  us.ci_use_g_per_kwh = cb::Interval::factor(380.0, 3.0);
  us.lifetime_months = cb::Interval::plus_minus(24.0, 6.0);

  const cb::Interval r = cb::tcdp_ratio_interval(uc, ub, us);
  std::printf("\nunder uncertainty (+/-20%% embodied, x/÷3 CI, +/-6 months):\n");
  std::printf("  guaranteed ratio interval: [%.3f, %.3f]\n", r.lo, r.hi);
  switch (cb::robust_compare(uc, ub, us)) {
    case cb::RobustVerdict::kCandidateAlwaysWins:
      std::printf("  verdict: candidate wins for EVERY parameter combination\n");
      break;
    case cb::RobustVerdict::kBaselineAlwaysWins:
      std::printf("  verdict: baseline wins for EVERY parameter combination\n");
      break;
    case cb::RobustVerdict::kIndeterminate: {
      const auto mc = cb::monte_carlo_tcdp_ratio(uc, ub, us, 20000, 7);
      std::printf("  verdict: depends on the parameters; P(candidate wins) = %.1f%%\n",
                  100.0 * mc.probability_candidate_wins);
      std::printf("  ratio quantiles: p05 %.3f / p50 %.3f / p95 %.3f\n", mc.p05, mc.p50, mc.p95);
      break;
    }
  }
  return 0;
}
