// lifetime_planner: the scenario the paper's intro motivates — a design team
// knows its product's expected lifetime, daily duty cycle, and deployment
// grid, and must choose a memory technology. This example sweeps those three
// knobs and prints, for each combination, which design has lower lifetime
// carbon and by how much.
//
//   $ ./lifetime_planner
#include <algorithm>
#include <cstdio>

#include "ppatc/carbon/tcdp.hpp"
#include "ppatc/core/system.hpp"

int main() {
  using namespace ppatc;
  using namespace ppatc::units;

  const auto t2 = core::table2(workloads::matmult_int());
  const auto si = t2.all_si.carbon_profile();
  const auto m3d = t2.m3d.carbon_profile();

  std::printf("Choosing between:\n  A: %s (%.2f g embodied, %.2f mW)\n"
              "  B: %s (%.2f g embodied, %.2f mW)\n\n",
              si.name.c_str(), in_grams_co2e(si.embodied_per_good_die),
              in_milliwatts(si.operational_power), m3d.name.c_str(),
              in_grams_co2e(m3d.embodied_per_good_die), in_milliwatts(m3d.operational_power));

  const struct {
    const char* name;
    carbon::Grid grid;
  } grids[] = {{"U.S.", carbon::grids::us()},
               {"coal", carbon::grids::coal()},
               {"solar", carbon::grids::solar()}};

  std::printf("%-8s %-10s %-10s %-12s %-12s %-10s\n", "grid", "hours/day", "months", "tC A (g)",
              "tC B (g)", "winner");
  for (const auto& g : grids) {
    for (const double hours : {0.5, 2.0, 8.0}) {
      for (const double months_n : {6.0, 24.0, 60.0}) {
        carbon::OperationalScenario scen;
        scen.use_intensity = carbon::DiurnalIntensity::flat(g.grid.intensity);
        // Evening-anchored window; long duty cycles start earlier in the day.
        scen.window.start_hour = std::min(20.0, 24.0 - hours);
        scen.window.end_hour = scen.window.start_hour + hours;
        const Duration life = months(months_n);
        const double a = in_grams_co2e(carbon::total_carbon(si, scen, life));
        const double b = in_grams_co2e(carbon::total_carbon(m3d, scen, life));
        std::printf("%-8s %-10.1f %-10.0f %-12.2f %-12.2f %-10s\n", g.name, hours, months_n, a, b,
                    b < a ? "M3D" : "all-Si");
      }
    }
  }

  std::printf(
      "\nReading the table: M3D wins whenever the deployment is long/intense\n"
      "enough for its operational savings (lower memory energy) to repay its\n"
      "higher embodied carbon; short-lived or lightly-used devices favor the\n"
      "all-Si design. On a clean (solar) use-phase grid, operational carbon\n"
      "shrinks and embodied carbon — where all-Si wins — dominates longer.\n");

  // Exact break-even for the paper's nominal scenario.
  carbon::OperationalScenario nominal;
  const auto crossover = carbon::total_carbon_crossover(m3d, si, nominal, months(48.0));
  if (crossover) {
    std::printf("\nAt 2 h/day on the U.S. grid the break-even lifetime is %.1f months.\n",
                in_months(*crossover));
  }
  return 0;
}
