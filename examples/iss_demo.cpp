// iss_demo: the simulation substrate up close. Assembles a small Thumb
// program with the in-repo assembler, runs it on the ARMv6-M ISS, and shows
// the statistics the carbon models consume — then runs the whole
// Embench-style suite and prints its cycle/access profile.
//
//   $ ./iss_demo
#include <cstdio>

#include "ppatc/isa/assembler.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/workloads/workload.hpp"

int main() {
  using namespace ppatc;

  // A tiny program: print "ppatc", sum 1..100, exit with the sum.
  const char* source = R"(
.equ PUTC, 0x40000004

_start:
    ldr r6, =PUTC
    adr r4, text
print:
    ldrb r0, [r4, #0]
    cmp r0, #0
    beq summing
    str r0, [r6, #0]
    adds r4, r4, #1
    b print

summing:
    movs r0, #0
    movs r1, #100
loop:
    adds r0, r0, r1
    subs r1, r1, #1
    bne loop
    svc 0              @ exit(r0)

.align 4
text:
    .word 0x74617070   @ "ppat"
    .word 0x00000063   @ "c\0"
)";

  const isa::Program program = isa::assemble(source);
  std::printf("assembled %zu bytes, entry at 0x%x\n", program.bytes.size(), program.entry);

  isa::Bus bus;
  bus.load_program(0, program.bytes);
  isa::Cpu cpu{bus};
  cpu.reset(program.entry, isa::kDataBase + isa::kDataSize - 16);
  const auto result = cpu.run(100000);

  std::printf("console: \"%s\"\n", bus.console().c_str());
  std::printf("exit code (sum 1..100): %u\n", bus.exit_code());
  std::printf("instructions %llu, cycles %llu (CPI %.2f)\n",
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.cycles),
              static_cast<double>(result.cycles) / static_cast<double>(result.instructions));

  std::printf("\nEmbench-style suite profile (the inputs to the eDRAM energy model):\n");
  std::printf("%-14s %10s %12s %12s %12s %10s %6s\n", "workload", "insns", "cycles", "fetches",
              "data reads", "writes", "ok");
  for (const auto& w : workloads::embench_suite()) {
    const auto r = workloads::run_workload(w);
    std::printf("%-14s %10llu %12llu %12llu %12llu %10llu %6s\n", w.name.c_str(),
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.stats.fetches),
                static_cast<unsigned long long>(r.stats.data_reads),
                static_cast<unsigned long long>(r.stats.data_writes),
                r.checksum_ok ? "yes" : "NO");
  }
  return 0;
}
