// ppatc quickstart: compute the total carbon footprint of the paper's
// case-study embedded system in both technologies and decide which is more
// carbon-efficient for your deployment.
//
//   $ ./quickstart [lifetime_months]
//
// Walks through the whole public API in ~60 lines: evaluate a system,
// inspect its PPAtC numbers, and compare lifetime carbon.
#include <cstdio>
#include <cstdlib>

#include "ppatc/carbon/tcdp.hpp"
#include "ppatc/core/system.hpp"

int main(int argc, char** argv) {
  using namespace ppatc;
  using namespace ppatc::units;

  const double lifetime_months = argc > 1 ? std::atof(argv[1]) : 24.0;

  // 1) Pick a workload — the paper's Table II uses Embench's matmult-int.
  const workloads::Workload workload = workloads::matmult_int();

  // 2) Evaluate the system in both technologies. This runs the workload on
  //    the ARMv6-M ISS, characterizes the eDRAM with the built-in SPICE
  //    engine, synthesizes the M0, floorplans the die, and applies the
  //    embodied-carbon process models.
  const core::SystemEvaluation si = core::evaluate(core::SystemSpec::all_si(), workload);
  const core::SystemEvaluation m3d = core::evaluate(core::SystemSpec::m3d(), workload);

  for (const auto* ev : {&si, &m3d}) {
    std::printf("%s\n", ev->system_name.c_str());
    std::printf("  performance : %llu cycles at 500 MHz -> %.1f ms per run\n",
                static_cast<unsigned long long>(ev->cycles),
                1e3 * in_seconds(ev->execution_time));
    std::printf("  power       : %.2f mW while running (M0 %.2f + memory %.1f pJ/cycle)\n",
                in_milliwatts(ev->operational_power), in_picojoules(ev->m0_energy_per_cycle),
                in_picojoules(ev->memory_energy_per_cycle));
    std::printf("  area        : %.3f mm^2 die (%.0f x %.0f um)\n",
                in_square_millimetres(ev->total_area), in_micrometres(ev->die_height),
                in_micrometres(ev->die_width));
    std::printf("  carbon      : %.2f gCO2e embodied per good die (%.0f kg/wafer, %lld dies, %.0f%% yield)\n\n",
                in_grams_co2e(ev->embodied_per_good_die),
                in_kilograms_co2e(ev->embodied_per_wafer),
                static_cast<long long>(ev->dies_per_wafer), 100.0 * ev->yield);
  }

  // 3) Compare total carbon over the deployment (2 h/day on the U.S. grid).
  carbon::OperationalScenario scenario;  // defaults: U.S. grid, 20:00-22:00
  const Duration life = months(lifetime_months);
  const Carbon tc_si = carbon::total_carbon(si.carbon_profile(), scenario, life);
  const Carbon tc_m3d = carbon::total_carbon(m3d.carbon_profile(), scenario, life);
  const double tcdp_ratio =
      carbon::tcdp_ratio(si.carbon_profile(), m3d.carbon_profile(), scenario, life);

  std::printf("over %.0f months at 2 h/day (U.S. grid):\n", lifetime_months);
  std::printf("  total carbon: all-Si %.2f gCO2e vs M3D %.2f gCO2e\n", in_grams_co2e(tc_si),
              in_grams_co2e(tc_m3d));
  std::printf("  tCDP ratio (all-Si / M3D): %.3fx -> %s is more carbon-efficient\n", tcdp_ratio,
              tcdp_ratio > 1.0 ? "the M3D design" : "the all-Si design");
  return 0;
}
