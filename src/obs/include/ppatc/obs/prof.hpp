// ppatc: in-process sampling profiler (ppatc::obs::prof).
//
// A POSIX per-thread CPU-time sampling profiler, always compiled in and ~free
// when off. Each profiled thread owns a `timer_create(CLOCK_THREAD_CPUTIME_ID)`
// timer delivering SIGPROF to that thread (SIGEV_THREAD_ID); the signal
// handler walks the frame-pointer chain out of the interrupted context,
// tags the sample with the innermost open span from the thread's flight-
// recorder open-span stack (flight.hpp), and aggregates it into a per-thread
// fixed-size lock-free hash table — the same leaked-registry / single-writer
// relaxed-atomic discipline as the flight rings, so readers never lock and
// the handler never allocates.
//
// Async-signal-safety is *proved*, not assumed: every function in the SIGPROF
// handler cone is annotated `// ppatc-lint: signal-safe` and verified by the
// interprocedural `signal-safety` lint rule with zero suppressions (the same
// standard as the diag.cpp crash handlers). Everything unsafe — timer setup,
// symbolization (dladdr + __cxa_demangle), file I/O — happens outside the
// handler, at arm time or report time.
//
// Output is Brendan-Gregg collapsed-stack ("folded") text keyed by
// `span;rootFrame;...;leafFrame count`, with `# key value` provenance header
// lines (rate, totals, BENCH_GIT_SHA / BENCH_TIMESTAMP_UTC when stamped by
// the caller's environment). `PPATC_PROFILE=<path>` starts the profiler at
// process start (rate from `PPATC_PROFILE_HZ`, default 997 Hz — prime, so
// the sampler cannot phase-lock to millisecond-periodic work) and writes the
// folded profile at exit. `ppatc-report flamegraph` renders folded text as a
// self/total table and a standalone SVG flamegraph.
//
// Sampling uses CPU-time clocks: a sleeping thread consumes no CPU and is
// never sampled, so idle pool workers cost nothing. Threads join profiling
// lazily — the pool workers poll a generation counter (detail::
// prof_poll_thread) at each batch, the calling thread arms synchronously in
// start_profiler(). Disabled-mode cost is one relaxed atomic load per poll.
//
// Non-Linux builds compile to a graceful no-op: the API exists, snapshots
// are empty, and prof_enabled() stays false.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppatc::obs {

/// Default sampling rate. Prime so periodic work cannot alias the sampler.
inline constexpr std::uint32_t kProfDefaultHz = 997;

/// True while the profiler is armed (samples are being taken).
[[nodiscard]] bool prof_enabled() noexcept;

/// Arms the sampling profiler at `hz` samples per second of *CPU time* per
/// thread (clamped to [1, 10000]). Installs the SIGPROF handler (idempotent),
/// arms the calling thread immediately; pool workers arm at their next batch.
/// Calling again while running re-arms at the new rate. Not safe to race
/// with itself from two threads (same contract as runtime::set_thread_count).
void start_profiler(std::uint32_t hz = kProfDefaultHz);

/// Disarms the calling thread immediately and signals every other profiled
/// thread to disarm at its next poll. Aggregated samples are retained until
/// reset_prof().
void stop_profiler() noexcept;

/// One aggregated call stack: symbolized frames (root -> leaf), the innermost
/// open span at sample time ("no_span" when none), and the sample count.
struct ProfStack {
  std::string span;
  std::vector<std::string> frames;
  std::uint64_t count = 0;
};

/// A drained profile: every distinct (span, stack) with its count, plus the
/// sampler's own accounting (including the measured per-sample handler cost,
/// the obs.prof_sample_ns perf surface).
struct ProfSnapshot {
  std::uint32_t hz = 0;            ///< rate the profiler was last armed at
  std::uint64_t samples = 0;       ///< samples taken (all threads)
  std::uint64_t dropped = 0;       ///< lost to a full per-thread table
  std::uint64_t truncated = 0;     ///< stacks cut at the frame-depth cap
  std::uint64_t handler_ns = 0;    ///< total ns spent inside the handler
  std::vector<ProfStack> stacks;   ///< sorted by folded key

  /// Mean handler cost per sample in ns (0 when no samples).
  [[nodiscard]] double sample_ns_avg() const noexcept {
    return samples > 0 ? static_cast<double>(handler_ns) / static_cast<double>(samples) : 0.0;
  }
};

/// Drains and symbolizes every thread's table. Quiesced threads drain
/// exactly; a thread actively sampling may contribute a few counts taken
/// after the drain started. Symbolization (dladdr) happens here, never in
/// the handler.
[[nodiscard]] ProfSnapshot prof_snapshot();

/// Clears every per-thread table and the sample accounting. Call only while
/// sampling is stopped or quiesced (single-writer tables cannot be cleared
/// out from under their owning thread's live handler).
void reset_prof() noexcept;

/// Renders a snapshot as folded collapsed-stack text: `# key value` header
/// lines (ppatc_profile version, hz, samples, dropped, truncated,
/// sample_ns_avg, plus git_sha / timestamp_utc when BENCH_GIT_SHA /
/// BENCH_TIMESTAMP_UTC are set — the same provenance stamps the run
/// manifests carry), then one `span;frame;...;frame count` line per stack,
/// sorted by key. Deterministic for a fixed snapshot.
[[nodiscard]] std::string prof_to_folded(const ProfSnapshot& snap);

/// prof_to_folded(prof_snapshot()) to `path`. Throws ContractViolation on
/// I/O error.
void write_profile(const std::string& path);

// ---- folded-profile parsing & aggregation (shared with ppatc-report) -------

/// One parsed folded line. frames[0] is the span key, the rest are stack
/// frames root -> leaf.
struct FoldedStack {
  std::vector<std::string> frames;
  std::uint64_t count = 0;
};

/// A parsed folded profile: the `# key value` header and the stack lines.
struct FoldedProfile {
  std::map<std::string, std::string> header;
  std::vector<FoldedStack> stacks;

  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    std::uint64_t n = 0;
    for (const FoldedStack& s : stacks) n += s.count;
    return n;
  }
};

/// Parses folded text (as produced by prof_to_folded, or any Brendan-Gregg
/// collapsed file: the count is the text after the LAST space, so frame
/// names may contain spaces). Throws ContractViolation on a malformed line.
[[nodiscard]] FoldedProfile parse_folded(const std::string& text);

/// Re-renders a parsed profile as folded text (header sorted by key, stacks
/// sorted by joined key) — parse/format round-trips to a fixed point.
[[nodiscard]] std::string format_folded(const FoldedProfile& profile);

/// Per-frame aggregation over a folded profile: `self` counts samples where
/// the frame is the leaf, `total` counts samples where it appears anywhere
/// in the stack (deduplicated per stack, so recursion is not double-counted).
struct FrameStat {
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};
[[nodiscard]] std::map<std::string, FrameStat> folded_frame_stats(const FoldedProfile& profile);

/// Sorted hottest-first self/total table (the `ppatc-report flamegraph`
/// text output). `top` rows (0 = all).
[[nodiscard]] std::string render_flame_table(const FoldedProfile& profile, std::size_t top);

/// Standalone flamegraph SVG (no external tooling): root at the top,
/// children sorted by name, width proportional to total count, deterministic
/// name-hash colors, <title> tooltips.
[[nodiscard]] std::string render_flame_svg(const FoldedProfile& profile);

/// Hottest spans per thread from a diagnostic bundle or Chrome trace JSON
/// (the `ppatc-report timeline --top N` output). Span wall-times are
/// aggregated per (tid, name) and ranked through the same FoldedStack
/// aggregation as the flamegraph table. Throws ContractViolation on
/// malformed input.
[[nodiscard]] std::string render_top_spans(const std::string& json, std::size_t top);

namespace detail {

/// Cheap per-thread arming poll: one relaxed atomic load when nothing
/// changed; arms/disarms this thread's timer when start/stop_profiler moved
/// the generation. Called by the runtime pool workers at each batch.
void prof_poll_thread() noexcept;

/// Total samples currently aggregated across all threads (no symbolization):
/// the manifest writer uses this to decide whether a profile section exists
/// at all, so unprofiled runs stay byte-identical to their goldens.
[[nodiscard]] std::uint64_t prof_total_samples() noexcept;

/// Parsed PPATC_PROFILE_HZ. Contract: nullptr, "", non-numeric and 0 give
/// kProfDefaultHz; values clamp to [1, 10000].
[[nodiscard]] std::uint32_t parse_profile_hz_env(const char* value) noexcept;

}  // namespace detail

}  // namespace ppatc::obs
