// ppatc: metrics registry (ppatc::obs).
//
// Named counters, gauges, and fixed-bucket histograms for the evaluation
// pipeline. The design goals, in order:
//
//  1. Near-zero cost when disabled: every recording call starts with a branch
//     on one cached atomic bool — no allocation, no locks, no clock reads.
//  2. Low contention when enabled: counters and histograms are sharded into
//     cache-line-sized cells; each thread picks a fixed shard and increments
//     it with a relaxed atomic add. Shards are summed only when a snapshot is
//     taken ("merge on report").
//  3. Determinism where the recorded quantity is deterministic: integer
//     increments commute, so a counter fed thread-count-invariant values
//     (Newton iterations, chunks executed, Monte Carlo samples) reads the
//     same total at any `PPATC_THREADS` — asserted in tests/test_obs.cpp.
//
// Metric handles have stable addresses for the life of the process; the
// intended call-site pattern caches the reference in a function-local static
// so the registry lock is taken exactly once per site:
//
//   static obs::Counter& c = obs::counter("spice.newton_iterations");
//   c.add(iterations);
//
// `PPATC_METRICS=1` enables collection and dumps a text report to stderr at
// process exit; `PPATC_METRICS=0` (like an empty or unset variable) leaves
// collection disabled; any other non-empty value is treated as a path that
// receives the JSON snapshot instead (see detail::parse_metrics_env). Tests
// and benches can drive the same machinery with `set_metrics_enabled` /
// `metrics_snapshot` / `reset_metrics`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ppatc/obs/flight.hpp"

namespace ppatc::obs {

namespace detail {

/// Cached global enable flag; read relaxed on every recording call.
extern std::atomic<bool> g_metrics_enabled;

inline constexpr std::size_t kShards = 16;

/// The calling thread's fixed shard slot in [0, kShards).
[[nodiscard]] std::size_t shard_index() noexcept;

/// Parsed PPATC_METRICS value. Contract: nullptr, "" and "0" disable
/// collection; "1" enables it with the text dump to stderr at exit; any other
/// value enables it and names the JSON output path.
struct MetricsEnv {
  bool enabled = false;
  std::string path;  ///< empty = text dump to stderr
};
[[nodiscard]] MetricsEnv parse_metrics_env(const char* value);

}  // namespace detail

/// True when metric recording is on (PPATC_METRICS or set_metrics_enabled).
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept;

/// Monotonic counter: sharded relaxed adds, summed on read. Registered
/// counters also feed the flight recorder: each add drops a counter-delta
/// event into the calling thread's ring, even when aggregate collection is
/// off, so crash bundles show recent counter activity.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    if (flight_enabled() && flight_name_ != nullptr) flight_count(flight_name_, n);
    if (!metrics_enabled()) return;
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over all shards (approximate only while writers are mid-add).
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  friend Counter& counter(std::string_view);

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[detail::kShards];
  // The registry map key's c_str(): node-stable for the process lifetime,
  // which is what the flight ring's store-the-pointer contract needs.
  const char* flight_name_ = nullptr;
};

/// Last-write-wins instantaneous value (rates, pool sizes, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples v with
/// edges[i-1] < v <= edges[i]; one final overflow bucket counts v > edges
/// back. Buckets are sharded like Counter cells and merged on snapshot.
class Histogram {
 public:
  void record(double v) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }
  /// Merged per-bucket counts (size = edges().size() + 1, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  friend Histogram& histogram(std::string_view, std::vector<double>);
  explicit Histogram(std::vector<double> edges);

  std::vector<double> edges_;
  // [shard * n_buckets + bucket]; plain atomics — histogram records are rare
  // enough (one per SPICE corner, not per sample) that false sharing between
  // buckets of one shard does not matter.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// Finds or creates the named metric. References stay valid for the process
/// lifetime. Creating an existing histogram under a different edge vector
/// throws ContractViolation.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> edges);

struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  ///< size = edges.size() + 1 (overflow last)
  std::uint64_t total = 0;
  double sum = 0.0;

  /// Interpolated quantile estimate for q in [0, 1]: the target rank is
  /// located in its bucket and linearly interpolated between the bucket
  /// bounds (the first bucket interpolates from min(0, edges[0]); the
  /// overflow bucket clamps to edges.back()). Returns 0 for an empty
  /// histogram. Text and JSON reports publish p50/p95/p99 from this.
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time merge of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t counter_or(const std::string& name,
                                         std::uint64_t fallback = 0) const;
};

[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Zeroes every registered metric (names stay registered).
void reset_metrics();

/// Human-readable dump (the PPATC_METRICS=1 exit report).
[[nodiscard]] std::string metrics_to_text();

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
[[nodiscard]] std::string metrics_to_json();

/// Writes metrics_to_json() to `path` (throws ContractViolation on I/O error).
void write_metrics_json(const std::string& path);

// ---- time-resolved metrics (PPATC_METRICS_INTERVAL) ------------------------

/// One periodic sample: monotonic capture time plus flat "counter:<name>" /
/// "gauge:<name>" values (histograms contribute their running totals via the
/// end-of-run snapshot, not the series).
struct MetricsSample {
  double t_ms = 0.0;  ///< monotonic_ns() at capture, in milliseconds
  std::map<std::string, double> values;
};

/// Everything sampled so far, in capture order.
[[nodiscard]] std::vector<MetricsSample> metrics_series();

/// Captures one sample now (the sampler thread calls this on its interval;
/// tests and benches may call it directly).
void append_metrics_sample();

void reset_metrics_series();

/// Starts the single background sampler thread (stops any previous one) and
/// takes an immediate t=0 sample. interval_ms == 0 is a no-op. Not safe to
/// call concurrently with itself or stop_metrics_sampler.
void start_metrics_sampler(std::uint32_t interval_ms);

/// Stops and joins the sampler (idempotent; also registered via atexit).
void stop_metrics_sampler();

namespace detail {
/// Most recent pre-serialized metrics JSON (refreshed by
/// append_metrics_sample), for the async-signal-safe bundle path: reading it
/// is one acquire load, no allocation. nullptr until the first sample.
[[nodiscard]] const char* cached_metrics_json() noexcept;
}  // namespace detail

}  // namespace ppatc::obs
