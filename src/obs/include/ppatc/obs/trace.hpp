// ppatc: scoped-span tracer (ppatc::obs).
//
// Nested RAII spans with thread-local buffers, exported as Chrome
// trace-event JSON (chrome://tracing / Perfetto "traceEvents" format). Each
// thread appends completed spans to its own buffer; buffers are only locked
// for the append itself and for snapshot/export, so tracing never serializes
// the traced threads against each other.
//
// Span identity and parenting: every active span has a process-unique id and
// records the id of the span that was current on its thread when it started.
// The `ppatc::runtime` thread pool re-parents its workers to the submitting
// region for the duration of a batch (see ParentScope), so spans opened
// inside `parallel_for` chunks on worker threads chain back to the span that
// submitted the work — the exported trace shows a sweep as one tree even
// though it ran on N threads.
//
// Disabled-mode contract: constructing a Span when tracing is off is a branch
// on one cached atomic bool and nothing else — no clock read, no allocation,
// no lock. `PPATC_TRACE=<file>` enables tracing at startup and writes the
// JSON trace to <file> at process exit; tests and tools can also call
// `set_tracing_enabled` / `trace_snapshot` / `write_trace` directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ppatc::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept;

/// Nanoseconds since the process trace epoch (steady clock).
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Id of the innermost span open on the calling thread (0 = none).
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// A completed span as stored in the thread buffers / returned by snapshots.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t tid = 0;     ///< small per-thread index (trace "tid")
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// RAII scoped span. `name` must outlive the span (string literals at the
/// instrumentation sites).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nonzero iff tracing was enabled when the span was constructed.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  // Set iff the flight recorder saw the begin; the destructor then records
  // the matching end unconditionally so the open-span stack stays balanced
  // even if recording is toggled while the span is open.
  bool flight_ = false;
};

/// Temporarily replaces the calling thread's current span with `parent_id`,
/// restoring the previous value on destruction. The runtime pool wraps each
/// worker's batch participation in one of these so worker-side spans parent
/// to the region that submitted the batch.
class ParentScope {
 public:
  explicit ParentScope(std::uint64_t parent_id) noexcept;
  ~ParentScope();
  ParentScope(const ParentScope&) = delete;
  ParentScope& operator=(const ParentScope&) = delete;

 private:
  std::uint64_t saved_ = 0;
};

/// All completed spans so far (live thread buffers + buffers of exited
/// threads), in no particular order.
[[nodiscard]] std::vector<SpanRecord> trace_snapshot();

/// Drops every buffered span (open spans still complete normally).
void reset_trace();

/// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ns"}.
/// Events are complete-events ("ph":"X") with microsecond timestamps and
/// {"id","parent"} args carrying the span tree.
[[nodiscard]] std::string trace_to_json();

/// Writes trace_to_json() to `path` (throws ContractViolation on I/O error).
void write_trace(const std::string& path);

}  // namespace ppatc::obs
