// ppatc: flight recorder (ppatc::obs).
//
// A per-thread lock-free ring buffer of fixed-size structured events — span
// begin/end, counter deltas, and marked key/value events (deck names, corner
// ids, chunk indices, Monte-Carlo seeds) — cheap enough to leave on by
// default. Where the tracer (trace.hpp) buffers *everything* and serializes
// at clean exit, the flight recorder keeps only the last kFlightRingSize
// events per thread, but keeps them readable at the moment of death: the
// diagnostic-bundle writer (diag.cpp) drains every ring into one JSON bundle
// when a ConvergenceError, contract violation, uncaught exception, or fatal
// signal kills the process.
//
// Concurrency contract:
//  * Each ring has exactly one writer — the owning thread. The ring head is
//    published with a release store after the slot fields are written, so a
//    reader that acquires the head sees fully-written slots for every index
//    below it.
//  * Slot fields are relaxed atomics, not plain members, so a drain that
//    races a wrapping writer reads *values* (possibly from two different
//    events — detected and discarded via a head re-read) instead of UB.
//  * Rings are leaked on thread exit and registered in a fixed-capacity
//    array of atomic pointers, so the crash path can iterate them without
//    taking any lock and without malloc — the registry is constant-
//    initialized and every handler-side read is a relaxed/acquire atomic
//    load (async-signal-safe for lock-free atomics).
//
// Event names must be string literals (or registry-interned strings that
// live for the process): the ring stores the pointer, not a copy. ppatc-lint
// enforces literal names at obs call sites (rule obs-name-literal).
//
// `PPATC_FLIGHT=0` disables recording; anything else (including unset)
// leaves it on. Disabled-mode cost is one relaxed atomic-bool branch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppatc::obs {

/// What a ring slot holds. kMarkStr carries a (truncated) inline copy of the
/// value; every other kind carries the u64/f64 payload.
enum class FlightEventKind : std::uint8_t {
  kSpanBegin = 1,
  kSpanEnd = 2,
  kCounter = 3,  ///< u64 = delta added to the named counter
  kMarkU64 = 4,
  kMarkF64 = 5,
  kMarkStr = 6,
};

/// Stable lowercase label ("span_begin", "counter", ...) used in bundles.
[[nodiscard]] const char* flight_kind_name(FlightEventKind kind) noexcept;

namespace detail {

extern std::atomic<bool> g_flight_enabled;

inline constexpr std::size_t kFlightRingSize = 256;  // power of two
inline constexpr std::size_t kFlightStrBytes = 24;   // inline string payload
inline constexpr std::size_t kFlightMaxOpenSpans = 32;
inline constexpr std::size_t kFlightMaxThreads = 512;

/// One ring slot. All fields are relaxed atomics (see the file comment); the
/// string payload is packed into 8-byte words so a torn read is still a
/// defined read.
struct FlightSlot {
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> u64{0};
  std::atomic<double> f64{0.0};
  std::atomic<std::uint64_t> str[kFlightStrBytes / 8]{};
  std::atomic<std::uint8_t> kind{0};
};

struct FlightOpenSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
};

/// One thread's ring + open-span stack. Single writer (the owning thread);
/// any thread — including a signal handler — may read.
struct FlightRing {
  std::uint32_t tid = 0;                  ///< registration order, 0-based
  std::atomic<std::uint64_t> head{0};     ///< next write index (monotonic)
  std::atomic<std::uint64_t> floor{0};    ///< reset_flight() raises to head
  std::atomic<std::uint32_t> open_depth{0};
  FlightSlot slots[kFlightRingSize];
  FlightOpenSlot open[kFlightMaxOpenSpans];
};

/// Appends one event to the calling thread's ring (allocates the ring on the
/// thread's first event; threads past kFlightMaxThreads record nothing).
void flight_record(FlightEventKind kind, const char* name, std::uint64_t u64, double f64,
                   const char* str, std::size_t str_len) noexcept;

/// Span begin/end hooks used by obs::Span. Callers gate on flight_enabled();
/// the end hook is unconditional once the begin ran, so the open-span stack
/// stays balanced even if recording is toggled mid-span.
void flight_span_begin(const char* name) noexcept;
void flight_span_end(const char* name) noexcept;

/// Signal-safe registry accessors for the diagnostic writer: no locks, no
/// allocation, no static-init guard on the handler path.
[[nodiscard]] std::uint32_t flight_ring_count() noexcept;
[[nodiscard]] const FlightRing* flight_ring_at(std::uint32_t i) noexcept;

/// Parsed PPATC_FLIGHT. Contract: "0" disables; nullptr, "" and anything
/// else leave the recorder on (on-by-default).
[[nodiscard]] bool parse_flight_env(const char* value) noexcept;

/// Parsed PPATC_METRICS_INTERVAL (milliseconds). Contract: nullptr, "",
/// non-numeric and "0" mean disabled (returns 0); values are clamped to one
/// hour so a typo cannot park the sampler forever.
[[nodiscard]] std::uint32_t parse_interval_env(const char* value) noexcept;

}  // namespace detail

/// True when flight recording is on (PPATC_FLIGHT / set_flight_enabled).
[[nodiscard]] inline bool flight_enabled() noexcept {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

void set_flight_enabled(bool on) noexcept;

/// Marked key/value events. `name` must be a string literal (see file
/// comment); string values are truncated to detail::kFlightStrBytes.
inline void flight_mark(const char* name, std::uint64_t value) noexcept {
  if (flight_enabled()) {
    detail::flight_record(FlightEventKind::kMarkU64, name, value, 0.0, nullptr, 0);
  }
}
inline void flight_mark(const char* name, double value) noexcept {
  if (flight_enabled()) {
    detail::flight_record(FlightEventKind::kMarkF64, name, 0, value, nullptr, 0);
  }
}
inline void flight_mark(const char* name, std::string_view value) noexcept {
  if (flight_enabled()) {
    detail::flight_record(FlightEventKind::kMarkStr, name, 0, 0.0, value.data(), value.size());
  }
}

/// Counter-delta event (obs::Counter::add routes through this).
inline void flight_count(const char* name, std::uint64_t delta) noexcept {
  if (flight_enabled()) {
    detail::flight_record(FlightEventKind::kCounter, name, delta, 0.0, nullptr, 0);
  }
}

/// One drained event. `name`/`str` are copies — safe after the source thread
/// is gone.
struct FlightEventRecord {
  std::uint64_t ts_ns = 0;
  FlightEventKind kind = FlightEventKind::kMarkU64;
  std::string name;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  std::string str;  ///< kMarkStr payload (possibly truncated)
};

/// A span that was still open when the snapshot was taken.
struct FlightOpenSpan {
  std::string name;
  std::uint64_t start_ns = 0;
};

struct FlightThreadSnapshot {
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;  ///< events lost to ring wraparound (since reset)
  std::vector<FlightEventRecord> events;     ///< oldest -> newest
  std::vector<FlightOpenSpan> open_spans;    ///< outermost -> innermost
};

struct FlightSnapshot {
  std::vector<FlightThreadSnapshot> threads;  ///< sorted by tid
};

/// Drains every registered ring. Quiesced threads drain exactly; threads
/// actively writing may contribute a few fewer events (slots being
/// overwritten mid-read are discarded, never returned torn).
[[nodiscard]] FlightSnapshot flight_snapshot();

/// The calling thread's flight tid (allocates its ring if needed); returns
/// UINT32_MAX once kFlightMaxThreads rings exist.
[[nodiscard]] std::uint32_t flight_thread_id() noexcept;

/// Logically clears every ring (raises each floor to its head). Open-span
/// stacks are left alone — they belong to live RAII spans.
void reset_flight();

// ---- diagnostic bundles (implemented in diag.cpp) --------------------------

/// True when a diagnostic directory is configured (PPATC_DIAG_DIR or
/// set_diag_dir).
[[nodiscard]] bool diag_enabled() noexcept;

/// Sets (and creates) the bundle output directory; "" disables bundling.
void set_diag_dir(const std::string& dir);
[[nodiscard]] std::string diag_dir();

/// Installs the std::set_terminate hook, the contract-failure observer, and
/// — when diag_enabled() — the SIGSEGV/SIGABRT/SIGBUS handlers. Idempotent;
/// runs automatically at static init when PPATC_DIAG_DIR is set.
void install_failure_handlers();

/// Writes one bundle now (flight drain + open spans + metrics snapshot +
/// failure context + provenance). Returns the bundle path, or "" when
/// diag_enabled() is false.
std::string write_diagnostic_bundle(std::string_view kind, std::string_view what);

/// The failure funnel: writes a bundle (if enabled) and flushes partial
/// PPATC_TRACE / PPATC_METRICS=<path> outputs so abnormal exits still ship a
/// trace. Reentrancy-guarded and noexcept — safe to call from throw sites.
void notify_failure(const char* kind, const char* what) noexcept;

/// Renders a diagnostic bundle (or a Chrome trace JSON) as a human-readable
/// per-thread timeline with the failure point marked. Throws
/// ContractViolation on malformed input.
[[nodiscard]] std::string render_timeline(const std::string& json);

}  // namespace ppatc::obs
