// ppatc: run manifests and the numeric drift gate (ppatc::obs::report).
//
// A RunManifest is the machine-comparable record of one reproduction run:
// which artifact was produced (bench_fig2c, bench_table2, ...), under what
// provenance (schema version, git SHA, UTC timestamp, thread count — all
// injected by the caller: scripts and CI stamp them via environment
// variables, the library never reads a wall clock), with what model
// configuration (units-typed inputs rendered with their units), and — the
// payload — a flat map of named numeric results, each carrying the
// absolute/relative tolerance inside which a future run counts as "the same
// number". The final obs metrics snapshot and the per-span-name durations
// ride along as observability context.
//
// Serialization is stable, sorted-key JSON: running the same binary twice on
// the same inputs produces byte-identical `results`/`config` sections, so a
// committed golden manifest (bench/golden/) turns every number the paper
// reports into a regression baseline. `ppatc-report` (tools/report) diffs two
// manifests and `check` exits non-zero on drift; both are registered as ctest
// cases so `ctest` re-runs each bench against its golden.
//
// What is and is not drift-gated:
//   compared     schema version, artifact name, `results` (tolerance-aware),
//                `text_results` (exact), `config` (exact strings).
//   informational  provenance (SHA/timestamp/threads differ between runs by
//                construction), metrics and span durations (queue waits and
//                wall times are not thread-count invariant).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ppatc/common/units.hpp"

namespace ppatc::obs {

/// Bumped when the manifest JSON layout changes incompatibly. `check` refuses
/// to compare manifests with different schema versions.
inline constexpr int kManifestSchemaVersion = 1;

/// Default relative tolerance for recorded results: loose enough to absorb
/// libm/FMA-contraction differences between toolchains, six orders of
/// magnitude tighter than the ~1% drifts the gate exists to catch.
inline constexpr double kDefaultRelTol = 1e-7;

/// One named numeric result. A future value v' matches a recorded value v iff
/// |v' - v| <= max(abs_tol, rel_tol * |v|) (tolerances taken from the golden
/// side of a comparison).
struct ManifestResult {
  double value = 0.0;
  std::string unit;
  double abs_tol = 0.0;
  double rel_tol = kDefaultRelTol;
  bool has_paper = false;  ///< paper holds the paper's stated value when true
  double paper = 0.0;
};

/// Optional per-record tolerance override (C++20 designated initializers at
/// call sites: {.rel_tol = 1e-4} for solver-tolerance-limited results).
struct Tolerance {
  double abs_tol = 0.0;
  double rel_tol = kDefaultRelTol;
};

/// Aggregated spans of one name: how many completed, total wall time.
struct ManifestSpan {
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

/// One periodic metrics sample (PPATC_METRICS_INTERVAL): capture time on the
/// monotonic clock plus flat "counter:<name>" / "gauge:<name>" values.
/// Informational like the end-of-run metrics — never drift-gated.
struct ManifestSample {
  double t_ms = 0.0;
  std::map<std::string, double> values;
};

/// Per-span CPU-time rollup from the sampling profiler (obs/prof.hpp): how
/// many samples landed inside the span and their CPU-time equivalent
/// (samples / rate). Informational — never drift-gated.
struct ManifestProfSpan {
  std::uint64_t samples = 0;
  double cpu_ms = 0.0;
};

/// A parsed (or built) manifest. RunManifest produces one; parse_manifest
/// reads one back from JSON.
struct Manifest {
  int schema_version = kManifestSchemaVersion;
  std::string artifact;
  std::map<std::string, std::string> provenance;
  std::map<std::string, std::string> config;
  std::map<std::string, ManifestResult> results;
  std::map<std::string, std::string> text_results;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  /// name -> {p50, p95, p99} of each histogram (interpolated estimates).
  std::map<std::string, std::map<std::string, double>> histograms;
  std::map<std::string, ManifestSpan> spans;
  /// Time-resolved samples (empty unless the sampler ran). Serialized only
  /// when non-empty so manifests without a series stay byte-identical to
  /// pre-series goldens.
  std::vector<ManifestSample> metrics_series;
  /// Per-span CPU time from the sampling profiler (empty unless profiling
  /// was on). Serialized only when non-empty — same byte-identity contract
  /// as metrics_series, so unprofiled runs match pre-profiler goldens.
  std::map<std::string, ManifestProfSpan> prof_spans;
};

/// Builder for the manifest of the current run. Typical bench flow:
///
///   obs::RunManifest m{"fig2c"};
///   m.set_provenance("git_sha", sha);            // injected by the caller
///   m.set_config("grid", "us");
///   m.record_vs_paper("average M3D/all-Si ratio", 1.309, 1.31, "x");
///   m.capture_observability();                   // metrics + span rollup
///   m.write(path);                               // sorted-key JSON
class RunManifest {
 public:
  explicit RunManifest(std::string artifact);

  /// Provenance is caller-injected (git SHA, UTC timestamp, PPATC_THREADS):
  /// the library itself never calls a wall clock or shells out.
  void set_provenance(const std::string& key, std::string value);
  void set_config(const std::string& key, std::string rendered);
  /// Units-typed configuration inputs, rendered with their unit.
  void set_config(const std::string& key, double value, const std::string& unit);
  void set_config(const std::string& key, Duration d);
  void set_config(const std::string& key, Frequency f);
  void set_config(const std::string& key, Power p);
  void set_config(const std::string& key, Voltage v);
  void set_config(const std::string& key, Carbon c);
  void set_config(const std::string& key, Energy e);
  void set_config(const std::string& key, Area a);

  /// Records a named numeric result. Re-recording an existing name throws
  /// ContractViolation — every key in a manifest names exactly one number.
  void record(const std::string& name, double value, const std::string& unit,
              Tolerance tol = {});
  /// Same, also pinning the paper's stated value next to the measured one.
  void record_vs_paper(const std::string& name, double value, double paper,
                       const std::string& unit, Tolerance tol = {});
  /// Records a named textual verdict ("OK"/"VIOLATED", ...); compared exactly.
  void record_text(const std::string& name, std::string value);

  /// Folds the current metrics snapshot, span rollup, and — when the
  /// respective samplers ran — the metrics_series() time series and the
  /// profiler's per-span CPU-time rollup into the manifest. Call once, after
  /// the benchmarked work.
  void capture_observability();

  [[nodiscard]] const Manifest& manifest() const noexcept { return m_; }

  /// Stable sorted-key JSON (see manifest_to_json).
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path` (throws ContractViolation on I/O error).
  void write(const std::string& path) const;

 private:
  Manifest m_;
};

/// Serializes any Manifest as stable sorted-key JSON (object keys in
/// lexicographic order at every level, 17-significant-digit numbers).
[[nodiscard]] std::string manifest_to_json(const Manifest& m);

/// Parses manifest JSON. Throws ContractViolation on malformed JSON or a
/// document that is not a manifest object.
[[nodiscard]] Manifest parse_manifest(const std::string& json);

/// Reads and parses a manifest file. Throws ContractViolation on I/O error.
[[nodiscard]] Manifest read_manifest(const std::string& path);

/// One per-key numeric comparison in a manifest diff.
struct KeyDrift {
  std::string key;
  double run_value = 0.0;
  double golden_value = 0.0;
  double abs_delta = 0.0;
  double rel_delta = 0.0;  ///< abs_delta / |golden_value| (0 when golden is 0)
  double allowed = 0.0;    ///< max(abs_tol, rel_tol * |golden|) of the golden
  bool within = true;
};

/// Result of diffing a run manifest against a golden one.
struct DiffReport {
  int run_schema = 0;
  int golden_schema = 0;
  bool schema_match = true;
  bool artifact_match = true;
  std::string run_artifact;
  std::string golden_artifact;
  std::vector<KeyDrift> numeric;          ///< keys present in both manifests
  std::vector<std::string> added;         ///< in run, missing from golden
  std::vector<std::string> removed;       ///< in golden, missing from run
  std::vector<std::string> mismatched;    ///< text/config/unit exact mismatches
  std::vector<std::string> provenance_notes;  ///< informational, never drift

  /// True iff nothing drifted: schemas and artifact match, no added/removed
  /// keys, every numeric key within tolerance, no text/config mismatch.
  [[nodiscard]] bool clean() const;
  /// Names of everything that makes clean() false, sorted.
  [[nodiscard]] std::vector<std::string> offending_keys() const;
};

/// Tolerance-aware comparison of `run` against `golden` (tolerances are read
/// from the golden side).
[[nodiscard]] DiffReport diff_manifests(const Manifest& run, const Manifest& golden);

// ---------------------------------------------------------------------------
// Performance comparison (the perf-smoke gate).
//
// Numeric-drift checking (diff_manifests) asks "is this the same number?";
// performance checking asks "did this get slower?". The two need different
// machinery: perf metrics are wall-clock dependent, so equality tolerances
// make no sense — instead each metric has a direction (throughput: higher is
// better; latency: lower is better) and only movement in the BAD direction
// beyond a (wide) tolerance counts as a regression. Improvements never fail.

/// One perf metric compared between a run and a baseline.
struct PerfDelta {
  std::string key;  ///< "gauge:<name>", "hist:<name>/p50", or "result:<name>"
  double run_value = 0.0;
  double baseline_value = 0.0;
  double change = 0.0;  ///< (run - baseline) / |baseline| (0 when baseline is 0)
  bool higher_is_better = false;
  bool regressed = false;  ///< moved in the bad direction beyond tolerance
};

/// Result of a perf comparison against a committed baseline.
struct PerfReport {
  double tolerance = 0.15;        ///< allowed fractional move in the bad direction
  std::vector<PerfDelta> deltas;  ///< every metric present in both manifests
  std::vector<std::string> missing;  ///< in baseline, absent from run (a gate
                                     ///< that stopped measuring is a failure)
  /// True iff nothing regressed and no baseline metric went missing.
  [[nodiscard]] bool pass() const;
  /// Keys of every regressed delta plus every missing metric, sorted.
  [[nodiscard]] std::vector<std::string> offending_keys() const;
};

/// Compares the perf-relevant content of `run` against `baseline`:
///   gauges       all baseline gauges (e.g. isa.insn_per_sec)
///   histograms   p50 and p95 of every baseline histogram (latency
///                distributions, e.g. memsys.corner_solve_us)
///   results      all baseline numeric results
/// Direction is inferred per metric: a name ending "_per_sec" or a unit
/// ending "/s" means throughput (higher is better); everything else is
/// treated as latency/cost (lower is better). Counters and spans are never
/// compared — counters are work counts (the drift gate's job) and span wall
/// times double-count the histograms. Metrics only in `run` are ignored, so
/// adding instrumentation does not break an old baseline.
[[nodiscard]] PerfReport perf_compare_manifests(const Manifest& run, const Manifest& baseline,
                                                double tolerance = 0.15);

/// Human-readable perf comparison table (always lists every metric).
[[nodiscard]] std::string format_perf_compare(const PerfReport& r);

/// Human-readable diff report. `verbose` also lists the in-tolerance keys.
[[nodiscard]] std::string format_diff(const DiffReport& d, bool verbose = false);

/// Machine-readable diff report (sorted-key JSON).
[[nodiscard]] std::string diff_to_json(const DiffReport& d);

/// Path requested via BENCH_MANIFEST_OUT (empty and "0" mean "no manifest"),
/// or nullptr. The one blessed getenv site of the report layer.
[[nodiscard]] const char* manifest_out_path() noexcept;

}  // namespace ppatc::obs
