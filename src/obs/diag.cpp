// ppatc: diagnostic bundles (ppatc::obs, flight.hpp's diag half).
//
// The failure funnel. Every abnormal-exit path converges on one of two
// writers that drain the flight rings into a sorted-key JSON bundle under
// PPATC_DIAG_DIR:
//
//  * notify_failure — the normal-allocation path, reached from
//    spice::ConvergenceError throw sites, PPATC_EXPECT / PPATC_ENSURE (via
//    the contract-failure observer slot in common/contract.hpp — common
//    cannot depend on obs, so the hook is a function pointer), and the
//    std::set_terminate hook. Besides the bundle it re-drives the
//    PPATC_TRACE / PPATC_METRICS=<path> exit writers so a partial trace
//    survives terminations that never reach atexit.
//  * the fatal-signal handler (SIGSEGV / SIGABRT / SIGBUS) — the
//    async-signal-safe path. Argument for safety: the handler calls only
//    openat(2) on a directory descriptor pre-opened at set_diag_dir time,
//    write(2), close(2) and raise(2) — all async-signal-safe per POSIX —
//    plus lock-free atomic loads on the constant-initialized flight-ring
//    registry (flight.cpp) and on two pre-rendered static buffers
//    (provenance, bundle directory). Number formatting is hand-rolled into
//    a fixed stack buffer; there is no allocation, no locking, no iostream,
//    and no static-init guard anywhere on the path. The metrics snapshot
//    embedded in a signal bundle is the sampler's last pre-serialized JSON
//    (metrics.cpp keeps retired generations alive), not a fresh merge.
//
// Both writers emit the same bundle shape (sorted keys at every level):
//   {"failure":{...},"flight":{"threads":[...]},"metrics":...,
//    "provenance":{...},"schema":"ppatc-diag-1"}
//
// render_timeline turns a bundle (or a Chrome trace JSON) back into a
// per-thread timeline with the failure point marked — see `ppatc-report
// timeline`.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "json_internal.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::obs {

namespace {

// ---------------------------------------------------------------------------
// State. The mutex-guarded half serves the normal path; the constinit half is
// a lock-free mirror for the signal handler (written before g_diag_enabled is
// released, read after it is acquired).

struct DiagState {
  std::mutex mutex;
  std::string dir;
  std::string provenance_json;  // pre-rendered JSON object text
  std::atomic<int> seq{0};
  bool signal_handlers_installed = false;
};

DiagState& dstate() {
  static DiagState* s = new DiagState;  // leaky: failure paths run late
  return *s;
}

constexpr std::size_t kProvBufSize = 1024;
constinit std::atomic<bool> g_diag_enabled{false};
constinit std::atomic<int> g_diag_dirfd{-1};  // pre-opened for the handler
constinit char g_prov_buf[kProvBufSize] = {"{}"};
// Set once a fatal path (terminate / signal) starts writing, so the abort
// that follows a terminate-bundle does not produce a second bundle.
constinit std::atomic<bool> g_in_fatal{false};
std::terminate_handler g_prev_terminate = nullptr;

// ---------------------------------------------------------------------------
// Provenance: the same caller-injected block manifests carry (bench_util and
// CI stamp these environment variables; the library never reads a clock).

std::string render_provenance() {
  std::map<std::string, std::string> prov;
  // ppatc-lint: allow-context — obs/diag.cpp is in the lint getenv allowlist.
  if (const char* sha = std::getenv("BENCH_GIT_SHA"); sha != nullptr && *sha != '\0') {
    prov["git_sha"] = sha;
  }
  if (const char* ts = std::getenv("BENCH_TIMESTAMP_UTC"); ts != nullptr && *ts != '\0') {
    prov["timestamp_utc"] = ts;
  }
  if (const char* th = std::getenv("PPATC_THREADS"); th != nullptr && *th != '\0') {
    prov["threads"] = th;
  }
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : prov) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ':';
    detail::append_json_escaped(os, v);
  }
  os << '}';
  return os.str();
}

// ---------------------------------------------------------------------------
// The async-signal-safe writer: fixed buffer, write(2) on overflow, no
// allocation, no locale, no iostream.

struct RawWriter {
  explicit RawWriter(int fd_in) noexcept : fd{fd_in} {}
  int fd;
  char buf[4096] = {};
  std::size_t len = 0;

  // ppatc-lint: signal-safe
  void flush() noexcept {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // best effort: nowhere to report an error from here
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  // ppatc-lint: signal-safe
  void put_raw(const char* s, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      if (len == sizeof buf) flush();
      buf[len++] = s[i];
    }
  }
  // ppatc-lint: signal-safe
  void put(const char* s) noexcept { put_raw(s, std::strlen(s)); }
  // ppatc-lint: signal-safe
  void put_u64(std::uint64_t v) noexcept {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put_raw(&tmp[--n], 1);
  }
  // Fixed-point with 6 fractional digits; enough for timestamps and marks,
  // and implementable without snprintf (not async-signal-safe).
  // ppatc-lint: signal-safe
  void put_f64(double v) noexcept {
    if (!std::isfinite(v)) {
      put("0");
      return;
    }
    if (v < 0) {
      put("-");
      v = -v;
    }
    if (v >= 1.8e19) {  // would overflow the integer part
      put("0");
      return;
    }
    const auto whole = static_cast<std::uint64_t>(v);
    put_u64(whole);
    put(".");
    double frac = v - static_cast<double>(whole);
    for (int i = 0; i < 6; ++i) {
      frac *= 10.0;
      const int digit = static_cast<int>(frac);
      const char c = static_cast<char>('0' + (digit < 0 ? 0 : digit > 9 ? 9 : digit));
      put_raw(&c, 1);
      frac -= digit;
    }
  }
  // JSON string: structural characters escaped, control bytes replaced with
  // '_' (the \u00XX escape needs hex formatting this path does not carry).
  // ppatc-lint: signal-safe
  void put_escaped(const char* s, std::size_t max_len) noexcept {
    put("\"");
    for (std::size_t i = 0; i < max_len && s[i] != '\0'; ++i) {
      const char c = s[i];
      if (c == '"' || c == '\\') {
        put("\\");
        put_raw(&c, 1);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        put("_");
      } else {
        put_raw(&c, 1);
      }
    }
    put("\"");
  }
};

// ppatc-lint: signal-safe
const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
  }
  return "signal";
}

// Emits one flight event object into the signal-path bundle. Field subset
// mirrors the normal path; keys stay sorted (f64 < kind < name < str <
// ts_ns < u64).
// ppatc-lint: signal-safe
void raw_emit_event(RawWriter& w, const detail::FlightSlot& slot) noexcept {
  const std::uint8_t raw_kind = slot.kind.load(std::memory_order_relaxed);
  const auto kind = raw_kind >= 1 && raw_kind <= 6 ? static_cast<FlightEventKind>(raw_kind)
                                                   : FlightEventKind::kMarkU64;
  w.put("{");
  if (kind == FlightEventKind::kMarkF64) {
    w.put("\"f64\":");
    w.put_f64(slot.f64.load(std::memory_order_relaxed));
    w.put(",");
  }
  w.put("\"kind\":");
  w.put_escaped(flight_kind_name(kind), 16);
  w.put(",\"name\":");
  const char* name = slot.name.load(std::memory_order_relaxed);
  w.put_escaped(name != nullptr ? name : "", 256);
  if (kind == FlightEventKind::kMarkStr) {
    std::uint64_t words[detail::kFlightStrBytes / 8];
    for (std::size_t i = 0; i < detail::kFlightStrBytes / 8; ++i) {
      words[i] = slot.str[i].load(std::memory_order_relaxed);
    }
    char sbuf[detail::kFlightStrBytes + 1] = {};
    std::memcpy(sbuf, words, detail::kFlightStrBytes);
    w.put(",\"str\":");
    w.put_escaped(sbuf, detail::kFlightStrBytes);
  }
  w.put(",\"ts_ns\":");
  w.put_u64(slot.ts_ns.load(std::memory_order_relaxed));
  if (kind == FlightEventKind::kCounter || kind == FlightEventKind::kMarkU64) {
    w.put(",\"u64\":");
    w.put_u64(slot.u64.load(std::memory_order_relaxed));
  }
  w.put("}");
}

// The whole bundle, signal path. Same shape as the normal path.
// ppatc-lint: signal-safe
void raw_emit_bundle(RawWriter& w, int sig) noexcept {
  w.put("{\"failure\":{\"kind\":\"signal\",\"signal\":");
  w.put_u64(static_cast<std::uint64_t>(sig));
  w.put(",\"what\":");
  w.put_escaped(signal_name(sig), 16);
  w.put("},\"flight\":{\"threads\":[");
  const std::uint32_t n = detail::flight_ring_count();
  bool first_thread = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    const detail::FlightRing* ring = detail::flight_ring_at(i);
    if (ring == nullptr) continue;
    if (!first_thread) w.put(",");
    first_thread = false;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    std::uint64_t begin = head > detail::kFlightRingSize ? head - detail::kFlightRingSize : 0;
    if (floor > begin && floor <= head) begin = floor;
    w.put("\n{\"dropped\":");
    w.put_u64(head - (floor < head ? floor : head) - (head - begin));
    w.put(",\"events\":[");
    for (std::uint64_t idx = begin; idx < head; ++idx) {
      if (idx != begin) w.put(",");
      raw_emit_event(w, ring->slots[idx & (detail::kFlightRingSize - 1)]);
    }
    w.put("],\"open_spans\":[");
    const std::uint32_t depth_raw = ring->open_depth.load(std::memory_order_acquire);
    const std::uint32_t depth =
        depth_raw < detail::kFlightMaxOpenSpans
            ? depth_raw
            : static_cast<std::uint32_t>(detail::kFlightMaxOpenSpans);
    bool first_span = true;
    for (std::uint32_t d = 0; d < depth; ++d) {
      const char* name = ring->open[d].name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      if (!first_span) w.put(",");
      first_span = false;
      w.put("{\"name\":");
      w.put_escaped(name, 256);
      w.put(",\"start_ns\":");
      w.put_u64(ring->open[d].start_ns.load(std::memory_order_relaxed));
      w.put("}");
    }
    w.put("],\"tid\":");
    w.put_u64(ring->tid);
    w.put("}");
  }
  w.put("\n]},\"metrics\":");
  if (const char* metrics = detail::cached_metrics_json(); metrics != nullptr) {
    w.put(metrics);  // pre-serialized JSON object — raw paste
  } else {
    w.put("null");
  }
  w.put(",\"provenance\":");
  w.put(g_prov_buf);
  w.put(",\"schema\":\"ppatc-diag-1\"}\n");
}

void fatal_signal_handler(int sig) {
  // One fatal bundle per process: a terminate-path bundle already in flight
  // means the SIGABRT that follows it should just kill us.
  if (!g_in_fatal.exchange(true, std::memory_order_acq_rel) &&
      g_diag_enabled.load(std::memory_order_acquire)) {
    const int dirfd = g_diag_dirfd.load(std::memory_order_acquire);
    if (dirfd >= 0) {
      char name[64] = "ppatc_diag_signal_";
      std::size_t n = std::strlen(name);
      std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
      char digits[20];
      std::size_t d = 0;
      do {
        digits[d++] = static_cast<char>('0' + pid % 10);
        pid /= 10;
      } while (pid != 0);
      while (d > 0) name[n++] = digits[--d];
      name[n++] = '.';
      name[n++] = 'j';
      name[n++] = 's';
      name[n++] = 'o';
      name[n++] = 'n';
      name[n] = '\0';
      const int fd = ::openat(dirfd, name, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        RawWriter w{fd};
        raw_emit_bundle(w, sig);
        w.flush();
        ::close(fd);
      }
    }
  }
  // SA_RESETHAND restored the default disposition on entry; re-raise so the
  // process dies with the original signal (and exit status).
  ::raise(sig);
}

// ---------------------------------------------------------------------------
// Normal-allocation bundle writer.

void append_event_json(std::ostringstream& os, const FlightEventRecord& e) {
  os << '{';
  if (e.kind == FlightEventKind::kMarkF64) os << "\"f64\":" << e.f64 << ',';
  os << "\"kind\":";
  detail::append_json_escaped(os, flight_kind_name(e.kind));
  os << ",\"name\":";
  detail::append_json_escaped(os, e.name);
  if (e.kind == FlightEventKind::kMarkStr) {
    os << ",\"str\":";
    detail::append_json_escaped(os, e.str);
  }
  os << ",\"ts_ns\":" << e.ts_ns;
  if (e.kind == FlightEventKind::kCounter || e.kind == FlightEventKind::kMarkU64) {
    os << ",\"u64\":" << e.u64;
  }
  os << '}';
}

std::string bundle_to_json(std::string_view kind, std::string_view what) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"failure\":{\"kind\":";
  detail::append_json_escaped(os, kind);
  os << ",\"tid\":" << flight_thread_id() << ",\"what\":";
  detail::append_json_escaped(os, what);
  os << "},\"flight\":{\"threads\":[";
  const FlightSnapshot snap = flight_snapshot();
  bool first_thread = true;
  for (const FlightThreadSnapshot& t : snap.threads) {
    if (!first_thread) os << ',';
    first_thread = false;
    os << "\n{\"dropped\":" << t.dropped << ",\"events\":[";
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      if (i != 0) os << ',';
      append_event_json(os, t.events[i]);
    }
    os << "],\"open_spans\":[";
    for (std::size_t i = 0; i < t.open_spans.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"name\":";
      detail::append_json_escaped(os, t.open_spans[i].name);
      os << ",\"start_ns\":" << t.open_spans[i].start_ns << '}';
    }
    os << "],\"tid\":" << t.tid << '}';
  }
  os << "\n]},\"metrics\":" << metrics_to_json();
  os << ",\"provenance\":";
  {
    DiagState& s = dstate();
    const std::lock_guard<std::mutex> lock{s.mutex};
    os << (s.provenance_json.empty() ? "{}" : s.provenance_json);
  }
  os << ",\"schema\":\"ppatc-diag-1\"}";
  return os.str();
}

// Re-drives the PPATC_TRACE / PPATC_METRICS=<path> exit writers (trace.cpp's
// atexit hooks never run on abort/terminate paths). The PPATC_METRICS=1 text
// dump stays exit-only: re-printing the whole report on every recovered
// ConvergenceError would bury test logs.
void flush_partial_exit_outputs() {
  if (const char* path = std::getenv("PPATC_TRACE"); path != nullptr && *path != '\0') {
    write_trace(path);
  }
  if (const detail::MetricsEnv env = detail::parse_metrics_env(std::getenv("PPATC_METRICS"));
      env.enabled && !env.path.empty()) {
    write_metrics_json(env.path);
  }
}

void contract_observer(const char* kind, const char* what) noexcept {
  notify_failure(kind, what);
}

// The terminate path runs on a dying process with exceptions already in
// flight: it deliberately uses the normal (allocating) bundle writer, since
// std::terminate is not an async-signal context. The audited signal path is
// fatal_signal_handler above.
// ppatc-lint: allow(signal-safety)
[[noreturn]] void terminate_hook() {
  g_in_fatal.store(true, std::memory_order_release);
  std::string msg = "uncaught exception";
  if (std::current_exception() != nullptr) {
    try {
      throw;  // rethrow to classify
    } catch (const std::exception& e) {
      msg = e.what();
    } catch (...) {
      msg = "uncaught non-std exception";
    }
  }
  notify_failure("terminate", msg.c_str());
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void install_signal_handlers_locked(DiagState& s) {
  if (s.signal_handlers_installed) return;
  struct sigaction sa = {};
  sa.sa_handler = &fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: default disposition is restored before the handler runs,
  // so the re-raise at the end delivers the real death (core / exit status).
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  s.signal_handlers_installed = true;
}

}  // namespace

bool diag_enabled() noexcept { return g_diag_enabled.load(std::memory_order_acquire); }

void set_diag_dir(const std::string& dir) {
  DiagState& s = dstate();
  const std::lock_guard<std::mutex> lock{s.mutex};
  if (dir.empty()) {
    g_diag_enabled.store(false, std::memory_order_release);
    s.dir.clear();
    const int old = g_diag_dirfd.exchange(-1, std::memory_order_acq_rel);
    if (old >= 0) ::close(old);
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  PPATC_EXPECT(!ec, "cannot create diagnostic bundle directory: " + dir + " (" + ec.message() +
                        ")");
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  PPATC_EXPECT(dirfd >= 0, "cannot open diagnostic bundle directory: " + dir);
  s.dir = dir;
  s.provenance_json = render_provenance();
  const std::size_t prov_len = std::min(s.provenance_json.size(), kProvBufSize - 1);
  std::memcpy(g_prov_buf, s.provenance_json.c_str(), prov_len);
  g_prov_buf[prov_len] = '\0';
  const int old = g_diag_dirfd.exchange(dirfd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
  g_diag_enabled.store(true, std::memory_order_release);
}

std::string diag_dir() {
  DiagState& s = dstate();
  const std::lock_guard<std::mutex> lock{s.mutex};
  return s.dir;
}

void install_failure_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    ppatc::set_contract_failure_observer(&contract_observer);
    g_prev_terminate = std::set_terminate(&terminate_hook);
  });
  if (diag_enabled()) {
    DiagState& s = dstate();
    const std::lock_guard<std::mutex> lock{s.mutex};
    install_signal_handlers_locked(s);
  }
}

std::string write_diagnostic_bundle(std::string_view kind, std::string_view what) {
  if (!diag_enabled()) return "";
  DiagState& s = dstate();
  const std::string json = bundle_to_json(kind, what);
  std::string path;
  {
    const std::lock_guard<std::mutex> lock{s.mutex};
    path = s.dir + "/ppatc_diag_" + std::to_string(::getpid()) + "_" +
           std::to_string(s.seq.fetch_add(1, std::memory_order_relaxed)) + ".json";
  }
  std::ofstream out{path};
  PPATC_EXPECT(out.good(), "cannot open diagnostic bundle file: " + path);
  out << json << "\n";
  out.close();
  PPATC_ENSURE(out.good(), "failed writing diagnostic bundle file: " + path);
  return path;
}

// Failure path: the run is already lost when this executes, so blocking and
// I/O are the point (persist the bundle), not a realtime violation — even
// when the failing frame sits under a parallel_for worker.
// ppatc-lint: allow(realtime)
void notify_failure(const char* kind, const char* what) noexcept {
  // A failure while reporting a failure (e.g. the bundle directory vanished,
  // whose PPATC_EXPECT would re-enter via the contract observer) must not
  // recurse or throw through this noexcept boundary.
  thread_local bool in_notify = false;
  if (in_notify) return;
  in_notify = true;
  try {
    write_diagnostic_bundle(kind != nullptr ? kind : "", what != nullptr ? what : "");
  } catch (...) {  // NOLINT(bugprone-empty-catch) — best-effort forensics
  }
  try {
    flush_partial_exit_outputs();
  } catch (...) {  // NOLINT(bugprone-empty-catch) — best-effort forensics
  }
  in_notify = false;
}

// ---------------------------------------------------------------------------
// Timeline rendering.

namespace {

void append_time_ms(std::ostringstream& os, double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%14.6f ms", ms);
  os << '[' << buf << "] ";
}

std::string render_bundle_timeline(const detail::JsonValue& root) {
  using detail::JsonValue;
  std::ostringstream os;
  os.precision(17);
  os << "== ppatc timeline: diagnostic bundle ==\n";

  std::string fail_kind;
  std::string fail_what;
  double fail_tid = -1.0;
  if (const JsonValue* failure = root.find("failure")) {
    if (const JsonValue* k = failure->find("kind")) fail_kind = k->string;
    if (const JsonValue* w = failure->find("what")) fail_what = w->string;
    if (const JsonValue* t = failure->find("tid")) fail_tid = t->number;
  }
  os << "failure: " << (fail_kind.empty() ? "<unknown>" : fail_kind);
  if (!fail_what.empty()) os << " — " << fail_what;
  os << "\n";
  if (const JsonValue* prov = root.find("provenance");
      prov != nullptr && prov->kind == JsonValue::Kind::kObject && !prov->object.empty()) {
    os << "provenance:";
    for (const auto& [k, v] : prov->object) {
      os << ' ' << k << '=' << (v.kind == JsonValue::Kind::kString ? v.string : "?");
    }
    os << "\n";
  }

  const JsonValue* flight = root.find("flight");
  const JsonValue* threads = flight != nullptr ? flight->find("threads") : nullptr;
  PPATC_EXPECT(threads != nullptr && threads->kind == JsonValue::Kind::kArray,
               "diagnostic bundle has no flight.threads array");
  for (const JsonValue& t : threads->array) {
    const double tid = detail::as_number(t.find("tid"), "thread.tid");
    const double dropped = t.find("dropped") != nullptr ? t.find("dropped")->number : 0.0;
    os << "\nthread " << static_cast<std::uint64_t>(tid);
    if (dropped > 0) os << " (dropped " << static_cast<std::uint64_t>(dropped) << ")";
    os << ":\n";
    if (const JsonValue* events = t.find("events");
        events != nullptr && events->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& e : events->array) {
        const double ts_ns = e.find("ts_ns") != nullptr ? e.find("ts_ns")->number : 0.0;
        const std::string kind = e.find("kind") != nullptr ? e.find("kind")->string : "?";
        const std::string name = e.find("name") != nullptr ? e.find("name")->string : "?";
        os << "  ";
        append_time_ms(os, ts_ns / 1e6);
        if (kind == "span_begin") {
          os << "span+  " << name;
        } else if (kind == "span_end") {
          os << "span-  " << name;
        } else if (kind == "counter") {
          os << "count  " << name << " += "
             << static_cast<std::uint64_t>(e.find("u64") != nullptr ? e.find("u64")->number
                                                                    : 0.0);
        } else if (kind == "mark_u64") {
          os << "mark   " << name << " = "
             << static_cast<std::uint64_t>(e.find("u64") != nullptr ? e.find("u64")->number
                                                                    : 0.0);
        } else if (kind == "mark_f64") {
          os << "mark   " << name << " = "
             << (e.find("f64") != nullptr ? e.find("f64")->number : 0.0);
        } else if (kind == "mark_str") {
          os << "mark   " << name << " = \""
             << (e.find("str") != nullptr ? e.find("str")->string : "") << '"';
        } else {
          os << kind << "  " << name;
        }
        os << "\n";
      }
    }
    if (const JsonValue* open = t.find("open_spans");
        open != nullptr && open->kind == JsonValue::Kind::kArray && !open->array.empty()) {
      os << "  open at capture:\n";
      for (const JsonValue& sp : open->array) {
        const std::string name = sp.find("name") != nullptr ? sp.find("name")->string : "?";
        const double start = sp.find("start_ns") != nullptr ? sp.find("start_ns")->number : 0.0;
        os << "    " << name << " (since " << start / 1e6 << " ms)\n";
      }
    }
    if (fail_tid >= 0.0 && tid == fail_tid) {
      os << "  >>> FAILURE on this thread: " << fail_kind;
      if (!fail_what.empty()) os << " — " << fail_what;
      os << "\n";
    }
  }
  return os.str();
}

std::string render_trace_timeline(const detail::JsonValue& root) {
  using detail::JsonValue;
  const JsonValue* events = root.find("traceEvents");
  PPATC_EXPECT(events != nullptr && events->kind == JsonValue::Kind::kArray,
               "trace JSON has no traceEvents array");
  struct Row {
    double ts = 0.0;
    double dur = 0.0;
    std::string name;
  };
  std::map<std::uint64_t, std::vector<Row>> by_tid;
  for (const JsonValue& e : events->array) {
    Row row;
    if (const JsonValue* ts = e.find("ts")) row.ts = ts->number;
    if (const JsonValue* dur = e.find("dur")) row.dur = dur->number;
    if (const JsonValue* name = e.find("name")) row.name = name->string;
    const std::uint64_t tid =
        e.find("tid") != nullptr ? static_cast<std::uint64_t>(e.find("tid")->number) : 0;
    by_tid[tid].push_back(std::move(row));
  }
  std::ostringstream os;
  os.precision(17);
  os << "== ppatc timeline: trace ==\n";
  os << "no failure context (trace export, not a diagnostic bundle)\n";
  for (auto& [tid, rows] : by_tid) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.ts < b.ts; });
    os << "\nthread " << tid << ":\n";
    for (const Row& r : rows) {
      os << "  ";
      append_time_ms(os, r.ts / 1e3);  // trace ts is microseconds
      os << "span   " << r.name << " (+" << r.dur / 1e3 << " ms)\n";
    }
  }
  return os.str();
}

}  // namespace

std::string render_timeline(const std::string& json) {
  const detail::JsonValue root = detail::JsonParser::parse(json);
  PPATC_EXPECT(root.kind == detail::JsonValue::Kind::kObject,
               "timeline input is not a JSON object");
  if (root.find("traceEvents") != nullptr) return render_trace_timeline(root);
  PPATC_EXPECT(root.find("flight") != nullptr,
               "timeline input is neither a diagnostic bundle nor a trace");
  return render_bundle_timeline(root);
}

namespace {

// Startup wiring: PPATC_DIAG_DIR enables bundling; the terminate hook and
// contract observer are installed unconditionally so partial trace/metrics
// flushes (satellite of the bundle writer) work even without a bundle dir.
struct DiagEnvInit {
  DiagEnvInit() {
    if (const char* dir = std::getenv("PPATC_DIAG_DIR"); dir != nullptr && *dir != '\0') {
      try {
        set_diag_dir(dir);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ppatc::obs: PPATC_DIAG_DIR setup failed: %s\n", e.what());
      }
    }
    install_failure_handlers();
  }
};

const DiagEnvInit g_diag_env_init{};

}  // namespace

}  // namespace ppatc::obs
