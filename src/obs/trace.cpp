#include "ppatc/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "json_internal.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"

namespace ppatc::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

// Innermost open span on this thread (0 = none). Written by Span/ParentScope,
// read by current_span_id(); maintained even while tracing is disabled so a
// ParentScope installed by the runtime costs only a thread-local store.
thread_local std::uint64_t t_current_span = 0;

struct ThreadBuffer;

// Leaky singleton (see metrics.cpp): pool threads flush their buffers during
// static destruction, after which the atexit exporter still reads them.
struct TraceState {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;      // live threads
  std::vector<SpanRecord> retired;         // spans of exited threads
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint32_t> next_tid{0};
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

// Per-thread span buffer. The mutex is uncontended except while a snapshot
// is being taken, so appends are effectively a thread-local push_back.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> records;
  std::uint32_t tid;

  ThreadBuffer() : tid{state().next_tid.fetch_add(1, std::memory_order_relaxed)} {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.buffers.push_back(this);
  }

  ~ThreadBuffer() {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.buffers.erase(std::remove(s.buffers.begin(), s.buffers.end(), this), s.buffers.end());
    const std::lock_guard<std::mutex> self{mutex};
    s.retired.insert(s.retired.end(), std::make_move_iterator(records.begin()),
                     std::make_move_iterator(records.end()));
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

}  // namespace

void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - state().epoch)
                                        .count());
}

std::uint64_t current_span_id() noexcept { return t_current_span; }

Span::Span(const char* name) noexcept {
  if (flight_enabled()) {
    flight_ = true;
    name_ = name;
    detail::flight_span_begin(name);
  }
  if (!tracing_enabled()) return;
  name_ = name;
  id_ = state().next_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_ns_ = monotonic_ns();
}

Span::~Span() {
  if (flight_) detail::flight_span_end(name_);
  if (id_ == 0) return;
  const std::uint64_t end_ns = monotonic_ns();
  t_current_span = parent_;
  ThreadBuffer& buf = local_buffer();
  SpanRecord rec;
  rec.id = id_;
  rec.parent = parent_;
  rec.tid = buf.tid;
  rec.name = name_;
  rec.start_ns = start_ns_;
  rec.dur_ns = end_ns - start_ns_;
  const std::lock_guard<std::mutex> lock{buf.mutex};
  buf.records.push_back(std::move(rec));
}

ParentScope::ParentScope(std::uint64_t parent_id) noexcept : saved_{t_current_span} {
  t_current_span = parent_id;
}

ParentScope::~ParentScope() { t_current_span = saved_; }

std::vector<SpanRecord> trace_snapshot() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock{s.mutex};
  std::vector<SpanRecord> out = s.retired;
  for (ThreadBuffer* buf : s.buffers) {
    const std::lock_guard<std::mutex> bl{buf->mutex};
    out.insert(out.end(), buf->records.begin(), buf->records.end());
  }
  return out;
}

void reset_trace() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock{s.mutex};
  s.retired.clear();
  for (ThreadBuffer* buf : s.buffers) {
    const std::lock_guard<std::mutex> bl{buf->mutex};
    buf->records.clear();
  }
}

std::string trace_to_json() {
  std::vector<SpanRecord> spans = trace_snapshot();
  std::sort(spans.begin(), spans.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  std::ostringstream os;
  os.precision(17);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    detail::append_json_escaped(os, r.name);
    os << ",\"cat\":\"ppatc\",\"ph\":\"X\",\"ts\":" << static_cast<double>(r.start_ns) / 1000.0
       << ",\"dur\":" << static_cast<double>(r.dur_ns) / 1000.0 << ",\"pid\":1,\"tid\":" << r.tid
       << ",\"args\":{\"id\":" << r.id << ",\"parent\":" << r.parent << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

void write_trace(const std::string& path) {
  std::ofstream out{path};
  PPATC_EXPECT(out.good(), "cannot open trace output file: " + path);
  out << trace_to_json() << "\n";
  out.close();
  PPATC_ENSURE(out.good(), "failed writing trace output file: " + path);
}

namespace {

// Startup wiring for the PPATC_TRACE / PPATC_METRICS environment switches.
// Runs at static initialization of the obs library; the exporters run via
// atexit, which fires after later-registered static destructors (including
// the runtime pool join) so worker buffers are already flushed.
struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("PPATC_TRACE"); path != nullptr && *path != '\0') {
      static std::string trace_path;  // outlives the atexit handler
      trace_path = path;
      set_tracing_enabled(true);
      std::atexit([] {
        try {
          write_trace(trace_path);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "ppatc::obs: trace export failed: %s\n", e.what());
        }
      });
    }
    if (const detail::MetricsEnv env = detail::parse_metrics_env(std::getenv("PPATC_METRICS"));
        env.enabled) {
      static std::string metrics_path;  // empty = text dump to stderr
      metrics_path = env.path;
      set_metrics_enabled(true);
      std::atexit([] {
        try {
          if (metrics_path.empty()) {
            std::fputs(metrics_to_text().c_str(), stderr);
          } else {
            write_metrics_json(metrics_path);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "ppatc::obs: metrics export failed: %s\n", e.what());
        }
      });
    }
  }
};

const EnvInit g_env_init{};

}  // namespace

}  // namespace ppatc::obs
