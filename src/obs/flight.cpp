#include "ppatc/obs/flight.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::obs {

namespace detail {

std::atomic<bool> g_flight_enabled{true};

namespace {

// Constant-initialized (no static-init guard, no destructor): the signal
// handler in diag.cpp iterates this with plain atomic loads, so it must be
// live and lock-free from the first instruction to the last.
struct FlightRegistry {
  std::atomic<std::uint32_t> count{0};
  std::atomic<FlightRing*> rings[kFlightMaxThreads]{};
};

constinit FlightRegistry g_registry;

FlightRing* register_ring() noexcept {
  const std::uint32_t idx = g_registry.count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kFlightMaxThreads) return nullptr;  // past capacity: drop events
  auto* ring = new FlightRing;  // leaked: must stay readable post-mortem
  ring->tid = idx;
  g_registry.rings[idx].store(ring, std::memory_order_release);
  return ring;
}

FlightRing* local_ring() noexcept {
  thread_local FlightRing* ring = register_ring();
  return ring;
}

}  // namespace

void flight_record(FlightEventKind kind, const char* name, std::uint64_t u64, double f64,
                   const char* str, std::size_t str_len) noexcept {
  FlightRing* ring = local_ring();
  if (ring == nullptr) return;
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  FlightSlot& slot = ring->slots[h & (kFlightRingSize - 1)];
  slot.ts_ns.store(monotonic_ns(), std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.u64.store(u64, std::memory_order_relaxed);
  slot.f64.store(f64, std::memory_order_relaxed);
  if (kind == FlightEventKind::kMarkStr) {
    char buf[kFlightStrBytes] = {};
    if (str != nullptr) std::memcpy(buf, str, std::min(str_len, kFlightStrBytes));
    std::uint64_t words[kFlightStrBytes / 8];
    std::memcpy(words, buf, sizeof words);
    for (std::size_t i = 0; i < kFlightStrBytes / 8; ++i) {
      slot.str[i].store(words[i], std::memory_order_relaxed);
    }
  }
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
}

void flight_span_begin(const char* name) noexcept {
  FlightRing* ring = local_ring();
  if (ring == nullptr) return;
  const std::uint32_t d = ring->open_depth.load(std::memory_order_relaxed);
  if (d < kFlightMaxOpenSpans) {
    ring->open[d].name.store(name, std::memory_order_relaxed);
    ring->open[d].start_ns.store(monotonic_ns(), std::memory_order_relaxed);
    // Depth past capacity is still tracked so end-side pops stay balanced.
  }
  ring->open_depth.store(d + 1, std::memory_order_release);
  flight_record(FlightEventKind::kSpanBegin, name, 0, 0.0, nullptr, 0);
}

void flight_span_end(const char* name) noexcept {
  FlightRing* ring = local_ring();
  if (ring == nullptr) return;
  flight_record(FlightEventKind::kSpanEnd, name, 0, 0.0, nullptr, 0);
  const std::uint32_t d = ring->open_depth.load(std::memory_order_relaxed);
  if (d > 0) ring->open_depth.store(d - 1, std::memory_order_release);
}

// ppatc-lint: signal-safe
std::uint32_t flight_ring_count() noexcept {
  return std::min<std::uint32_t>(g_registry.count.load(std::memory_order_acquire),
                                 kFlightMaxThreads);
}

// ppatc-lint: signal-safe
const FlightRing* flight_ring_at(std::uint32_t i) noexcept {
  if (i >= kFlightMaxThreads) return nullptr;
  return g_registry.rings[i].load(std::memory_order_acquire);
}

bool parse_flight_env(const char* value) noexcept {
  if (value == nullptr) return true;
  return std::string_view{value} != "0";
}

std::uint32_t parse_interval_env(const char* value) noexcept {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long ms = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0') return 0;  // non-numeric: disabled
  return static_cast<std::uint32_t>(std::min(ms, 3'600'000UL));
}

}  // namespace detail

// ppatc-lint: signal-safe
const char* flight_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kSpanBegin: return "span_begin";
    case FlightEventKind::kSpanEnd: return "span_end";
    case FlightEventKind::kCounter: return "counter";
    case FlightEventKind::kMarkU64: return "mark_u64";
    case FlightEventKind::kMarkF64: return "mark_f64";
    case FlightEventKind::kMarkStr: return "mark_str";
  }
  return "unknown";
}

void set_flight_enabled(bool on) noexcept {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

namespace {

using detail::FlightRing;
using detail::FlightSlot;
using detail::kFlightRingSize;
using detail::kFlightStrBytes;

FlightThreadSnapshot snapshot_ring(const FlightRing& ring) {
  FlightThreadSnapshot out;
  out.tid = ring.tid;
  const std::uint64_t h1 = ring.head.load(std::memory_order_acquire);
  const std::uint64_t floor = std::min(ring.floor.load(std::memory_order_relaxed), h1);
  std::uint64_t begin = h1 > kFlightRingSize ? h1 - kFlightRingSize : 0;
  begin = std::max(begin, floor);
  std::vector<FlightEventRecord> events;
  events.reserve(static_cast<std::size_t>(h1 - begin));
  for (std::uint64_t idx = begin; idx < h1; ++idx) {
    const FlightSlot& slot = ring.slots[idx & (kFlightRingSize - 1)];
    FlightEventRecord rec;
    rec.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const std::uint8_t raw_kind = slot.kind.load(std::memory_order_relaxed);
    rec.kind = raw_kind >= 1 && raw_kind <= 6 ? static_cast<FlightEventKind>(raw_kind)
                                              : FlightEventKind::kMarkU64;
    const char* name = slot.name.load(std::memory_order_relaxed);
    rec.name = name != nullptr ? name : "";
    rec.u64 = slot.u64.load(std::memory_order_relaxed);
    rec.f64 = slot.f64.load(std::memory_order_relaxed);
    if (rec.kind == FlightEventKind::kMarkStr) {
      std::uint64_t words[kFlightStrBytes / 8];
      for (std::size_t i = 0; i < kFlightStrBytes / 8; ++i) {
        words[i] = slot.str[i].load(std::memory_order_relaxed);
      }
      char buf[kFlightStrBytes];
      std::memcpy(buf, words, sizeof buf);
      std::size_t len = 0;
      while (len < kFlightStrBytes && buf[len] != '\0') ++len;
      rec.str.assign(buf, len);
    }
    events.push_back(std::move(rec));
  }
  // Slots the writer wrapped past while we were reading may be torn mixes of
  // two events: discard everything below the writer's new overwrite horizon.
  const std::uint64_t h2 = ring.head.load(std::memory_order_acquire);
  const std::uint64_t safe_begin = h2 > kFlightRingSize ? h2 - kFlightRingSize : 0;
  if (safe_begin > begin) {
    const std::size_t torn =
        static_cast<std::size_t>(std::min(safe_begin - begin, h1 - begin));
    events.erase(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(torn));
  }
  out.dropped = (h1 - floor) - events.size();
  out.events = std::move(events);

  const std::uint32_t depth = std::min<std::uint32_t>(
      ring.open_depth.load(std::memory_order_acquire),
      static_cast<std::uint32_t>(detail::kFlightMaxOpenSpans));
  for (std::uint32_t i = 0; i < depth; ++i) {
    const char* name = ring.open[i].name.load(std::memory_order_relaxed);
    if (name == nullptr) continue;
    out.open_spans.push_back(
        FlightOpenSpan{name, ring.open[i].start_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace

FlightSnapshot flight_snapshot() {
  FlightSnapshot snap;
  const std::uint32_t n = detail::flight_ring_count();
  snap.threads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const FlightRing* ring = detail::flight_ring_at(i);
    if (ring == nullptr) continue;  // registered but not yet published
    snap.threads.push_back(snapshot_ring(*ring));
  }
  return snap;  // registration order == tid order
}

std::uint32_t flight_thread_id() noexcept {
  const FlightRing* ring = detail::local_ring();
  return ring != nullptr ? ring->tid : UINT32_MAX;
}

void reset_flight() {
  const std::uint32_t n = detail::flight_ring_count();
  for (std::uint32_t i = 0; i < n; ++i) {
    const FlightRing* ring = detail::flight_ring_at(i);
    if (ring == nullptr) continue;
    auto* mut = const_cast<FlightRing*>(ring);
    mut->floor.store(mut->head.load(std::memory_order_acquire), std::memory_order_relaxed);
  }
}

namespace {

// Startup wiring for PPATC_FLIGHT and PPATC_METRICS_INTERVAL (the diag-side
// switches — PPATC_DIAG_DIR — are wired in diag.cpp). Sampling implies
// metrics collection: a time series of zeros would be useless.
struct FlightEnvInit {
  FlightEnvInit() {
    set_flight_enabled(detail::parse_flight_env(std::getenv("PPATC_FLIGHT")));
    if (const std::uint32_t interval_ms =
            detail::parse_interval_env(std::getenv("PPATC_METRICS_INTERVAL"));
        interval_ms > 0) {
      set_metrics_enabled(true);
      start_metrics_sampler(interval_ms);
    }
  }
};

const FlightEnvInit g_flight_env_init{};

}  // namespace

}  // namespace ppatc::obs
