#include "ppatc/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>

#include "json_internal.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

MetricsEnv parse_metrics_env(const char* value) {
  MetricsEnv env;
  if (value == nullptr) return env;
  const std::string_view v{value};
  if (v.empty() || v == "0") return env;  // explicit off, not "a file named 0"
  env.enabled = true;
  if (v != "1") env.path = v;
  return env;
}

}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> edges)
    : edges_{std::move(edges)}, counts_(detail::kShards * (edges_.size() + 1)) {
  PPATC_EXPECT(!edges_.empty(), "histogram needs at least one bucket edge");
  PPATC_EXPECT(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
               "histogram bucket edges must be strictly increasing");
}

void Histogram::record(double v) noexcept {
  if (!metrics_enabled()) return;
  // Bucket b holds edges[b-1] < v <= edges[b]; the final bucket is overflow.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  const std::size_t n_buckets = edges_.size() + 1;
  counts_[detail::shard_index() * n_buckets + bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  const std::size_t n_buckets = edges_.size() + 1;
  std::vector<std::uint64_t> merged(n_buckets, 0);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    for (std::size_t b = 0; b < n_buckets; ++b) {
      merged[b] += counts_[s * n_buckets + b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

// Leaky singleton: metric references are cached in function-local statics
// all over the library and may be touched by pool threads during static
// destruction, so the registry is never destroyed.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string{name}, std::unique_ptr<Counter>(new Counter)).first;
    // Map keys are node-stable and the registry is leaky, so the key's
    // c_str() satisfies the flight ring's literal-lifetime contract.
    it->second->flight_name_ = it->first.c_str();
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(std::string{name}, std::unique_ptr<Gauge>(new Gauge)).first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name, std::vector<double> edges) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(std::string{name}, std::unique_ptr<Histogram>(new Histogram{std::move(edges)}))
             .first;
  } else {
    PPATC_EXPECT(it->second->edges() == edges,
                 "histogram re-registered with different bucket edges: " + std::string{name});
  }
  return *it->second;
}

double HistogramSnapshot::quantile(double q) const {
  PPATC_EXPECT(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (total == 0) return 0.0;
  // Rank of the target sample (1-based, rounded up), then a walk to the
  // bucket containing it and linear interpolation inside that bucket.
  const double target = std::max(1.0, q * static_cast<double>(total));
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (b == edges.size()) return edges.back();  // overflow: clamp to last edge
    const double hi = edges[b];
    const double lo = b == 0 ? std::min(0.0, edges[0]) : edges[b - 1];
    return lo + (hi - lo) * ((target - cumulative) / in_bucket);
  }
  return edges.back();
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name, std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  MetricsSnapshot s;
  // ppatc-lint: allow(units-escape) — Counter::value() is the metrics accessor, not a Quantity
  for (const auto& [name, c] : r.counters) s.counters[name] = c->value();
  // ppatc-lint: allow(units-escape) — Gauge::value() is the metrics accessor, not a Quantity
  for (const auto& [name, g] : r.gauges) s.gauges[name] = g->value();
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.edges = h->edges();
    hs.counts = h->counts();
    hs.total = 0;
    for (const std::uint64_t c : hs.counts) hs.total += c;
    hs.sum = h->sum();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void reset_metrics() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mutex};
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, g] : r.gauges) g->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
}

std::string metrics_to_text() {
  const MetricsSnapshot s = metrics_snapshot();
  std::ostringstream os;
  os << "== ppatc metrics ==\n";
  for (const auto& [name, v] : s.counters) os << "counter   " << name << " = " << v << "\n";
  for (const auto& [name, v] : s.gauges) os << "gauge     " << name << " = " << v << "\n";
  for (const auto& [name, h] : s.histograms) {
    os << "histogram " << name << " total=" << h.total << " sum=" << h.sum
       << " p50=" << h.quantile(0.50) << " p95=" << h.quantile(0.95)
       << " p99=" << h.quantile(0.99) << " |";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b < h.edges.size()) {
        os << " le" << h.edges[b] << "=" << h.counts[b];
      } else {
        os << " inf=" << h.counts[b];
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string metrics_to_json() {
  const MetricsSnapshot s = metrics_snapshot();
  std::ostringstream os;
  os.precision(17);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) os << ",";
    first = false;
    detail::append_json_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) os << ",";
    first = false;
    detail::append_json_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) os << ",";
    first = false;
    detail::append_json_escaped(os, name);
    os << ":{\"edges\":[";
    for (std::size_t i = 0; i < h.edges.size(); ++i) os << (i ? "," : "") << h.edges[i];
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) os << (i ? "," : "") << h.counts[i];
    os << "],\"quantiles\":{\"p50\":" << h.quantile(0.50) << ",\"p95\":" << h.quantile(0.95)
       << ",\"p99\":" << h.quantile(0.99) << "},\"total\":" << h.total << ",\"sum\":" << h.sum
       << "}";
  }
  os << "}}";
  return os.str();
}

void write_metrics_json(const std::string& path) {
  std::ofstream out{path};
  PPATC_EXPECT(out.good(), "cannot open metrics output file: " + path);
  out << metrics_to_json() << "\n";
  out.close();
  PPATC_ENSURE(out.good(), "failed writing metrics output file: " + path);
}

// ---- time-resolved metrics -------------------------------------------------

namespace {

// Leaky like the registry: the atexit stop hook and late pool threads may
// touch this during static destruction.
struct SeriesState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<MetricsSample> samples;
  std::thread sampler;
  bool stop = false;
};

SeriesState& series_state() {
  static SeriesState* s = new SeriesState;
  return *s;
}

// The signal-path metrics snapshot. The sampler publishes a freshly
// serialized JSON string with an exchange; retired generations go into a
// small ring instead of being deleted immediately, so a signal handler that
// loaded the previous pointer microseconds ago still reads live memory (a
// handler would have to stall across kRetired whole sampler intervals to see
// a freed one).
constinit std::atomic<const std::string*> g_cached_metrics_json{nullptr};
constexpr std::size_t kRetiredJsonSlots = 4;
constinit std::atomic<std::uint32_t> g_retired_ix{0};
const std::string* g_retired_json[kRetiredJsonSlots] = {};

void publish_cached_metrics_json(std::string json) {
  const auto* fresh = new std::string{std::move(json)};
  const std::string* old = g_cached_metrics_json.exchange(fresh, std::memory_order_acq_rel);
  const std::uint32_t ix =
      g_retired_ix.fetch_add(1, std::memory_order_relaxed) % kRetiredJsonSlots;
  delete g_retired_json[ix];
  g_retired_json[ix] = old;
}

}  // namespace

namespace detail {
// ppatc-lint: signal-safe
const char* cached_metrics_json() noexcept {
  const std::string* p = g_cached_metrics_json.load(std::memory_order_acquire);
  return p != nullptr ? p->c_str() : nullptr;
}
}  // namespace detail

std::vector<MetricsSample> metrics_series() {
  SeriesState& s = series_state();
  const std::lock_guard<std::mutex> lock{s.mutex};
  return s.samples;
}

void append_metrics_sample() {
  const MetricsSnapshot snap = metrics_snapshot();
  MetricsSample sample;
  sample.t_ms = static_cast<double>(monotonic_ns()) / 1e6;
  for (const auto& [name, v] : snap.counters) {
    sample.values["counter:" + name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : snap.gauges) sample.values["gauge:" + name] = v;
  SeriesState& s = series_state();
  {
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.samples.push_back(std::move(sample));
  }
  publish_cached_metrics_json(metrics_to_json());
}

void reset_metrics_series() {
  SeriesState& s = series_state();
  const std::lock_guard<std::mutex> lock{s.mutex};
  s.samples.clear();
}

void start_metrics_sampler(std::uint32_t interval_ms) {
  if (interval_ms == 0) return;
  stop_metrics_sampler();
  SeriesState& s = series_state();
  {
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.stop = false;
  }
  append_metrics_sample();  // t=0 point so even short runs get a series
  s.sampler = std::thread{[interval_ms] {
    SeriesState& st = series_state();
    std::unique_lock<std::mutex> lock{st.mutex};
    while (!st.stop) {
      if (st.cv.wait_for(lock, std::chrono::milliseconds{interval_ms},
                         [&st] { return st.stop; })) {
        break;
      }
      lock.unlock();
      append_metrics_sample();
      lock.lock();
    }
  }};
  static const bool atexit_registered = [] {
    std::atexit([] { stop_metrics_sampler(); });
    return true;
  }();
  (void)atexit_registered;
}

void stop_metrics_sampler() {
  SeriesState& s = series_state();
  {
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.stop = true;
  }
  s.cv.notify_all();
  if (s.sampler.joinable()) s.sampler.join();
}

}  // namespace ppatc::obs
