#include "ppatc/obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "json_internal.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/prof.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::obs {

// ---------------------------------------------------------------------------
// RunManifest (builder).

RunManifest::RunManifest(std::string artifact) {
  PPATC_EXPECT(!artifact.empty(), "manifest artifact name must be non-empty");
  m_.artifact = std::move(artifact);
  m_.schema_version = kManifestSchemaVersion;
}

void RunManifest::set_provenance(const std::string& key, std::string value) {
  m_.provenance[key] = std::move(value);
}

void RunManifest::set_config(const std::string& key, std::string rendered) {
  m_.config[key] = std::move(rendered);
}

namespace {

std::string render_quantity(double value, const std::string& unit) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  if (!unit.empty()) os << ' ' << unit;
  return os.str();
}

}  // namespace

void RunManifest::set_config(const std::string& key, double value, const std::string& unit) {
  set_config(key, render_quantity(value, unit));
}
void RunManifest::set_config(const std::string& key, Duration d) {
  set_config(key, units::in_seconds(d), "s");
}
void RunManifest::set_config(const std::string& key, Frequency f) {
  set_config(key, units::in_hertz(f), "Hz");
}
void RunManifest::set_config(const std::string& key, Power p) {
  set_config(key, units::in_watts(p), "W");
}
void RunManifest::set_config(const std::string& key, Voltage v) {
  set_config(key, units::in_volts(v), "V");
}
void RunManifest::set_config(const std::string& key, Carbon c) {
  set_config(key, units::in_grams_co2e(c), "gCO2e");
}
void RunManifest::set_config(const std::string& key, Energy e) {
  set_config(key, units::in_joules(e), "J");
}
void RunManifest::set_config(const std::string& key, Area a) {
  set_config(key, units::in_square_centimetres(a), "cm^2");
}

void RunManifest::record(const std::string& name, double value, const std::string& unit,
                         Tolerance tol) {
  PPATC_EXPECT(!name.empty(), "manifest result name must be non-empty");
  PPATC_EXPECT(m_.results.find(name) == m_.results.end(),
               "manifest result recorded twice: " + name);
  PPATC_EXPECT(std::isfinite(value), "manifest result must be finite: " + name);
  PPATC_EXPECT(tol.abs_tol >= 0.0 && tol.rel_tol >= 0.0,
               "manifest tolerances must be non-negative: " + name);
  ManifestResult r;
  r.value = value;
  r.unit = unit;
  r.abs_tol = tol.abs_tol;
  r.rel_tol = tol.rel_tol;
  m_.results.emplace(name, std::move(r));
}

void RunManifest::record_vs_paper(const std::string& name, double value, double paper,
                                  const std::string& unit, Tolerance tol) {
  record(name, value, unit, tol);
  ManifestResult& r = m_.results.at(name);
  r.has_paper = true;
  r.paper = paper;
}

void RunManifest::record_text(const std::string& name, std::string value) {
  PPATC_EXPECT(!name.empty(), "manifest text-result name must be non-empty");
  PPATC_EXPECT(m_.text_results.find(name) == m_.text_results.end(),
               "manifest text result recorded twice: " + name);
  m_.text_results.emplace(name, std::move(value));
}

void RunManifest::capture_observability() {
  const MetricsSnapshot s = metrics_snapshot();
  m_.counters.clear();
  m_.gauges.clear();
  m_.histograms.clear();
  m_.spans.clear();
  for (const auto& [name, v] : s.counters) m_.counters[name] = v;
  for (const auto& [name, v] : s.gauges) m_.gauges[name] = v;
  for (const auto& [name, h] : s.histograms) {
    m_.histograms[name] = {{"p50", h.quantile(0.50)},
                           {"p95", h.quantile(0.95)},
                           {"p99", h.quantile(0.99)}};
  }
  for (const SpanRecord& r : trace_snapshot()) {
    ManifestSpan& agg = m_.spans[r.name];
    agg.count += 1;
    agg.total_ms += static_cast<double>(r.dur_ns) / 1e6;
  }
  m_.metrics_series.clear();
  for (const MetricsSample& sample : metrics_series()) {
    ManifestSample out;
    out.t_ms = sample.t_ms;
    out.values = sample.values;
    m_.metrics_series.push_back(std::move(out));
  }
  // Per-span CPU-time rollup from the sampling profiler. The cheap total
  // gate keeps unprofiled runs from paying for symbolization — and, because
  // prof_spans stays empty, their JSON stays byte-identical to the goldens.
  m_.prof_spans.clear();
  if (detail::prof_total_samples() > 0) {
    const ProfSnapshot prof = prof_snapshot();
    const double ms_per_sample = prof.hz > 0 ? 1e3 / static_cast<double>(prof.hz) : 0.0;
    for (const ProfStack& stack : prof.stacks) {
      ManifestProfSpan& agg = m_.prof_spans[stack.span];
      agg.samples += stack.count;
      agg.cpu_ms += static_cast<double>(stack.count) * ms_per_sample;
    }
  }
}

// ---------------------------------------------------------------------------
// Serialization. std::map iteration gives lexicographic key order at every
// level, and the top-level sections are emitted in a fixed alphabetical
// order, so equal manifests serialize byte-identically.

namespace {

void append_number(std::ostringstream& os, double v) { os << v; }

void append_string_map(std::ostringstream& os, const std::map<std::string, std::string>& m) {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ':';
    detail::append_json_escaped(os, v);
  }
  os << '}';
}

}  // namespace

std::string manifest_to_json(const Manifest& m) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"artifact\":";
  detail::append_json_escaped(os, m.artifact);

  os << ",\"config\":";
  append_string_map(os, m.config);

  os << ",\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : m.counters) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ':' << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : m.gauges) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ':';
    append_number(os, v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, qs] : m.histograms) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ":{";
    bool qfirst = true;
    for (const auto& [q, v] : qs) {
      if (!qfirst) os << ',';
      qfirst = false;
      detail::append_json_escaped(os, q);
      os << ':';
      append_number(os, v);
    }
    os << '}';
  }
  os << "}}";

  // Only emitted when a series exists, so series-free manifests stay
  // byte-identical to pre-series goldens ("metrics_series" sorts between
  // "metrics" and "provenance").
  if (!m.metrics_series.empty()) {
    os << ",\"metrics_series\":[";
    bool sfirst = true;
    for (const ManifestSample& sample : m.metrics_series) {
      if (!sfirst) os << ',';
      sfirst = false;
      os << "\n{\"t_ms\":";
      append_number(os, sample.t_ms);
      os << ",\"values\":{";
      bool vfirst = true;
      for (const auto& [k, v] : sample.values) {
        if (!vfirst) os << ',';
        vfirst = false;
        detail::append_json_escaped(os, k);
        os << ':';
        append_number(os, v);
      }
      os << "}}";
    }
    os << "\n]";
  }

  // Only emitted when the profiler sampled anything, same byte-identity
  // contract as metrics_series ("prof_spans" sorts between "metrics_series"
  // and "provenance").
  if (!m.prof_spans.empty()) {
    os << ",\"prof_spans\":{";
    first = true;
    for (const auto& [k, p] : m.prof_spans) {
      if (!first) os << ',';
      first = false;
      detail::append_json_escaped(os, k);
      os << ":{\"cpu_ms\":";
      append_number(os, p.cpu_ms);
      os << ",\"samples\":" << p.samples << '}';
    }
    os << '}';
  }

  os << ",\"provenance\":";
  append_string_map(os, m.provenance);

  os << ",\"results\":{";
  first = true;
  for (const auto& [k, r] : m.results) {
    if (!first) os << ',';
    first = false;
    os << '\n';
    detail::append_json_escaped(os, k);
    os << ":{\"abs_tol\":";
    append_number(os, r.abs_tol);
    if (r.has_paper) {
      os << ",\"paper\":";
      append_number(os, r.paper);
    }
    os << ",\"rel_tol\":";
    append_number(os, r.rel_tol);
    os << ",\"unit\":";
    detail::append_json_escaped(os, r.unit);
    os << ",\"value\":";
    append_number(os, r.value);
    os << '}';
  }
  os << "}";

  os << ",\"schema_version\":" << m.schema_version;

  os << ",\"spans\":{";
  first = true;
  for (const auto& [k, s] : m.spans) {
    if (!first) os << ',';
    first = false;
    detail::append_json_escaped(os, k);
    os << ":{\"count\":" << s.count << ",\"total_ms\":";
    append_number(os, s.total_ms);
    os << '}';
  }
  os << '}';

  os << ",\"text_results\":";
  append_string_map(os, m.text_results);
  os << "}";
  return os.str();
}

std::string RunManifest::to_json() const { return manifest_to_json(m_); }

void RunManifest::write(const std::string& path) const {
  std::ofstream out{path};
  PPATC_EXPECT(out.good(), "cannot open manifest output file: " + path);
  out << to_json() << "\n";
  out.close();
  PPATC_ENSURE(out.good(), "failed writing manifest output file: " + path);
}

// ---------------------------------------------------------------------------
// Parsing: the shared recursive-descent JSON reader (json_internal.hpp)
// produces a small DOM, then extraction into Manifest. No external dependency
// by design — the manifests this layer reads are the ones it writes.

namespace {

using detail::as_number;
using detail::as_string;
using detail::as_string_map;
using detail::JsonParser;
using detail::JsonValue;

}  // namespace

Manifest parse_manifest(const std::string& json) {
  const JsonValue root = JsonParser::parse(json);
  PPATC_EXPECT(root.kind == JsonValue::Kind::kObject, "manifest document is not a JSON object");
  Manifest m;
  m.schema_version =
      static_cast<int>(as_number(root.find("schema_version"), "schema_version"));
  m.artifact = as_string(root.find("artifact"), "artifact");
  m.provenance = as_string_map(root.find("provenance"), "provenance");
  m.config = as_string_map(root.find("config"), "config");
  m.text_results = as_string_map(root.find("text_results"), "text_results");

  if (const JsonValue* results = root.find("results")) {
    PPATC_EXPECT(results->kind == JsonValue::Kind::kObject, "manifest results is not an object");
    for (const auto& [name, e] : results->object) {
      PPATC_EXPECT(e.kind == JsonValue::Kind::kObject,
                   "manifest result is not an object: " + name);
      ManifestResult r;
      r.value = as_number(e.find("value"), name + ".value");
      r.unit = as_string(e.find("unit"), name + ".unit");
      r.abs_tol = as_number(e.find("abs_tol"), name + ".abs_tol");
      r.rel_tol = as_number(e.find("rel_tol"), name + ".rel_tol");
      if (const JsonValue* paper = e.find("paper")) {
        r.has_paper = true;
        r.paper = as_number(paper, name + ".paper");
      }
      m.results.emplace(name, std::move(r));
    }
  }

  if (const JsonValue* metrics = root.find("metrics")) {
    if (const JsonValue* counters = metrics->find("counters")) {
      for (const auto& [k, e] : counters->object) {
        m.counters[k] = static_cast<std::uint64_t>(as_number(&e, "counters." + k));
      }
    }
    if (const JsonValue* gauges = metrics->find("gauges")) {
      for (const auto& [k, e] : gauges->object) m.gauges[k] = as_number(&e, "gauges." + k);
    }
    if (const JsonValue* hists = metrics->find("histograms")) {
      for (const auto& [k, e] : hists->object) {
        std::map<std::string, double> qs;
        for (const auto& [q, qv] : e.object) qs[q] = as_number(&qv, k + "." + q);
        m.histograms[k] = std::move(qs);
      }
    }
  }

  if (const JsonValue* spans = root.find("spans")) {
    for (const auto& [k, e] : spans->object) {
      ManifestSpan s;
      s.count = static_cast<std::uint64_t>(as_number(e.find("count"), k + ".count"));
      s.total_ms = as_number(e.find("total_ms"), k + ".total_ms");
      m.spans.emplace(k, s);
    }
  }

  if (const JsonValue* series = root.find("metrics_series")) {
    PPATC_EXPECT(series->kind == JsonValue::Kind::kArray,
                 "manifest metrics_series is not an array");
    for (const JsonValue& e : series->array) {
      ManifestSample sample;
      sample.t_ms = as_number(e.find("t_ms"), "metrics_series.t_ms");
      if (const JsonValue* values = e.find("values")) {
        PPATC_EXPECT(values->kind == JsonValue::Kind::kObject,
                     "metrics_series sample values is not an object");
        for (const auto& [k, v] : values->object) {
          sample.values[k] = as_number(&v, "metrics_series." + k);
        }
      }
      m.metrics_series.push_back(std::move(sample));
    }
  }

  if (const JsonValue* prof = root.find("prof_spans")) {
    PPATC_EXPECT(prof->kind == JsonValue::Kind::kObject,
                 "manifest prof_spans is not an object");
    for (const auto& [k, e] : prof->object) {
      ManifestProfSpan p;
      p.samples = static_cast<std::uint64_t>(as_number(e.find("samples"), k + ".samples"));
      p.cpu_ms = as_number(e.find("cpu_ms"), k + ".cpu_ms");
      m.prof_spans.emplace(k, p);
    }
  }
  return m;
}

Manifest read_manifest(const std::string& path) {
  std::ifstream in{path};
  PPATC_EXPECT(in.good(), "cannot open manifest file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_manifest(buf.str());
}

// ---------------------------------------------------------------------------
// Diff / check.

bool DiffReport::clean() const {
  if (!schema_match || !artifact_match) return false;
  if (!added.empty() || !removed.empty() || !mismatched.empty()) return false;
  return std::all_of(numeric.begin(), numeric.end(),
                     [](const KeyDrift& d) { return d.within; });
}

std::vector<std::string> DiffReport::offending_keys() const {
  std::vector<std::string> out;
  if (!schema_match) out.push_back("schema_version");
  if (!artifact_match) out.push_back("artifact");
  for (const KeyDrift& d : numeric) {
    if (!d.within) out.push_back(d.key);
  }
  out.insert(out.end(), added.begin(), added.end());
  out.insert(out.end(), removed.begin(), removed.end());
  out.insert(out.end(), mismatched.begin(), mismatched.end());
  std::sort(out.begin(), out.end());
  return out;
}

DiffReport diff_manifests(const Manifest& run, const Manifest& golden) {
  DiffReport d;
  d.run_schema = run.schema_version;
  d.golden_schema = golden.schema_version;
  d.schema_match = run.schema_version == golden.schema_version;
  d.run_artifact = run.artifact;
  d.golden_artifact = golden.artifact;
  d.artifact_match = run.artifact == golden.artifact;

  for (const auto& [key, g] : golden.results) {
    const auto it = run.results.find(key);
    if (it == run.results.end()) {
      d.removed.push_back(key);
      continue;
    }
    const ManifestResult& r = it->second;
    if (r.unit != g.unit) {
      d.mismatched.push_back(key + " (unit: run '" + r.unit + "' vs golden '" + g.unit + "')");
    }
    KeyDrift k;
    k.key = key;
    k.run_value = r.value;
    k.golden_value = g.value;
    k.abs_delta = std::fabs(r.value - g.value);
    k.rel_delta = g.value != 0.0 ? k.abs_delta / std::fabs(g.value) : 0.0;
    k.allowed = std::max(g.abs_tol, g.rel_tol * std::fabs(g.value));
    k.within = k.abs_delta <= k.allowed;
    d.numeric.push_back(std::move(k));
  }
  for (const auto& [key, r] : run.results) {
    (void)r;
    if (golden.results.find(key) == golden.results.end()) d.added.push_back(key);
  }

  for (const auto& [key, g] : golden.text_results) {
    const auto it = run.text_results.find(key);
    if (it == run.text_results.end()) {
      d.removed.push_back("text:" + key);
    } else if (it->second != g) {
      d.mismatched.push_back("text:" + key + " (run '" + it->second + "' vs golden '" + g + "')");
    }
  }
  for (const auto& [key, r] : run.text_results) {
    (void)r;
    if (golden.text_results.find(key) == golden.text_results.end()) d.added.push_back("text:" + key);
  }

  for (const auto& [key, g] : golden.config) {
    const auto it = run.config.find(key);
    if (it == run.config.end()) {
      d.removed.push_back("config:" + key);
    } else if (it->second != g) {
      d.mismatched.push_back("config:" + key + " (run '" + it->second + "' vs golden '" + g +
                             "')");
    }
  }
  for (const auto& [key, r] : run.config) {
    (void)r;
    if (golden.config.find(key) == golden.config.end()) d.added.push_back("config:" + key);
  }

  // Provenance differs between any two honest runs; report it, never gate it.
  for (const auto& [key, g] : golden.provenance) {
    const auto it = run.provenance.find(key);
    const std::string rv = it == run.provenance.end() ? "<missing>" : it->second;
    if (rv != g) d.provenance_notes.push_back(key + ": run '" + rv + "' vs golden '" + g + "'");
  }
  // Time-resolved samples are wall-clock shaped, so like provenance they are
  // informational only.
  if (run.metrics_series.size() != golden.metrics_series.size()) {
    d.provenance_notes.push_back(
        "metrics_series: run has " + std::to_string(run.metrics_series.size()) +
        " samples vs golden " + std::to_string(golden.metrics_series.size()));
  }
  return d;
}

std::string format_diff(const DiffReport& d, bool verbose) {
  std::ostringstream os;
  os.precision(10);
  if (!d.schema_match) {
    os << "SCHEMA MISMATCH: run v" << d.run_schema << " vs golden v" << d.golden_schema << "\n";
  }
  if (!d.artifact_match) {
    os << "ARTIFACT MISMATCH: run '" << d.run_artifact << "' vs golden '" << d.golden_artifact
       << "'\n";
  }
  std::size_t within = 0;
  for (const KeyDrift& k : d.numeric) {
    if (k.within) {
      ++within;
      if (!verbose) continue;
    }
    os << (k.within ? "  ok    " : "  DRIFT ") << k.key << ": " << k.run_value << " vs "
       << k.golden_value << " (|d|=" << k.abs_delta << ", rel=" << k.rel_delta
       << ", allowed=" << k.allowed << ")\n";
  }
  for (const std::string& k : d.added) os << "  ADDED " << k << " (missing from golden)\n";
  for (const std::string& k : d.removed) os << "  REMOVED " << k << " (missing from run)\n";
  for (const std::string& k : d.mismatched) os << "  MISMATCH " << k << "\n";
  if (verbose) {
    for (const std::string& n : d.provenance_notes) os << "  note: provenance " << n << "\n";
  }
  os << (d.clean() ? "OK" : "DRIFT") << ": " << within << "/" << d.numeric.size()
     << " numeric keys within tolerance, " << d.added.size() << " added, " << d.removed.size()
     << " removed, " << d.mismatched.size() << " mismatched\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Perf comparison.

namespace {

// Direction heuristic shared by every compared metric: rates are named
// "<x>_per_sec" (gauges) or carry a "/s"-suffixed unit (results); everything
// else in a perf manifest is a latency or cost where smaller is better.
bool is_throughput(const std::string& name, const std::string& unit) {
  const auto ends_with = [](const std::string& s, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
  };
  return ends_with(name, "_per_sec") || ends_with(unit, "/s");
}

PerfDelta make_delta(std::string key, double run, double baseline, bool higher_is_better,
                     double tolerance) {
  PerfDelta d;
  d.key = std::move(key);
  d.run_value = run;
  d.baseline_value = baseline;
  d.change = baseline != 0.0 ? (run - baseline) / std::fabs(baseline) : 0.0;
  d.higher_is_better = higher_is_better;
  const double bad_move = higher_is_better ? -d.change : d.change;
  d.regressed = bad_move > tolerance;
  return d;
}

}  // namespace

bool PerfReport::pass() const {
  if (!missing.empty()) return false;
  return std::none_of(deltas.begin(), deltas.end(),
                      [](const PerfDelta& d) { return d.regressed; });
}

std::vector<std::string> PerfReport::offending_keys() const {
  std::vector<std::string> out;
  for (const PerfDelta& d : deltas) {
    if (d.regressed) out.push_back(d.key);
  }
  out.insert(out.end(), missing.begin(), missing.end());
  std::sort(out.begin(), out.end());
  return out;
}

PerfReport perf_compare_manifests(const Manifest& run, const Manifest& baseline,
                                  double tolerance) {
  PerfReport r;
  r.tolerance = tolerance;

  for (const auto& [name, base] : baseline.gauges) {
    const auto it = run.gauges.find(name);
    if (it == run.gauges.end()) {
      r.missing.push_back("gauge:" + name);
      continue;
    }
    r.deltas.push_back(make_delta("gauge:" + name, it->second, base,
                                  is_throughput(name, /*unit=*/""), tolerance));
  }

  for (const auto& [name, base_qs] : baseline.histograms) {
    const auto it = run.histograms.find(name);
    for (const char* q : {"p50", "p95"}) {
      const auto bq = base_qs.find(q);
      if (bq == base_qs.end()) continue;
      if (it == run.histograms.end()) {
        r.missing.push_back("hist:" + name + "/" + q);
        continue;
      }
      const auto rq = it->second.find(q);
      if (rq == it->second.end()) {
        r.missing.push_back("hist:" + name + "/" + q);
        continue;
      }
      r.deltas.push_back(make_delta("hist:" + name + "/" + q, rq->second, bq->second,
                                    /*higher_is_better=*/false, tolerance));
    }
  }

  for (const auto& [name, base] : baseline.results) {
    const auto it = run.results.find(name);
    if (it == run.results.end()) {
      r.missing.push_back("result:" + name);
      continue;
    }
    r.deltas.push_back(make_delta("result:" + name, it->second.value, base.value,
                                  is_throughput(name, base.unit), tolerance));
  }
  return r;
}

std::string format_perf_compare(const PerfReport& r) {
  std::ostringstream os;
  os.precision(6);
  for (const PerfDelta& d : r.deltas) {
    const char* verdict = d.regressed ? "REGRESSED" : (d.change == 0.0          ? "same"
                                                       : (d.change > 0.0) == d.higher_is_better
                                                           ? "improved"
                                                           : "ok");
    os << "  " << (d.regressed ? "FAIL " : "ok   ") << d.key << ": " << d.run_value << " vs "
       << d.baseline_value << " (" << (d.change >= 0.0 ? "+" : "") << d.change * 100.0 << "%, "
       << (d.higher_is_better ? "higher" : "lower") << " is better) " << verdict << "\n";
  }
  for (const std::string& m : r.missing) {
    os << "  FAIL " << m << ": present in baseline, missing from run\n";
  }
  os << (r.pass() ? "PERF OK" : "PERF REGRESSION") << ": " << r.deltas.size()
     << " metrics compared, tolerance " << r.tolerance * 100.0 << "%, "
     << r.offending_keys().size() << " offending\n";
  return os.str();
}

std::string diff_to_json(const DiffReport& d) {
  std::ostringstream os;
  os.precision(17);
  const auto string_list = [&os](const std::vector<std::string>& xs) {
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i != 0) os << ',';
      detail::append_json_escaped(os, xs[i]);
    }
    os << ']';
  };
  os << "{\"added\":";
  string_list(d.added);
  os << ",\"artifact_match\":" << (d.artifact_match ? "true" : "false");
  os << ",\"clean\":" << (d.clean() ? "true" : "false");
  os << ",\"golden_schema\":" << d.golden_schema;
  os << ",\"mismatched\":";
  string_list(d.mismatched);
  os << ",\"numeric\":[";
  for (std::size_t i = 0; i < d.numeric.size(); ++i) {
    const KeyDrift& k = d.numeric[i];
    if (i != 0) os << ',';
    os << "\n{\"abs_delta\":" << k.abs_delta << ",\"allowed\":" << k.allowed << ",\"key\":";
    detail::append_json_escaped(os, k.key);
    os << ",\"golden_value\":" << k.golden_value << ",\"rel_delta\":" << k.rel_delta
       << ",\"run_value\":" << k.run_value << ",\"within\":" << (k.within ? "true" : "false")
       << "}";
  }
  os << "\n],\"provenance_notes\":";
  string_list(d.provenance_notes);
  os << ",\"removed\":";
  string_list(d.removed);
  os << ",\"run_schema\":" << d.run_schema << "}";
  return os.str();
}

const char* manifest_out_path() noexcept {
  // ppatc-lint: allow-context — this is the blessed BENCH_MANIFEST_OUT read
  // site; tools/lint lists obs/report.cpp in the getenv allowlist.
  const char* path = std::getenv("BENCH_MANIFEST_OUT");
  if (path == nullptr || path[0] == '\0') return nullptr;
  if (path[0] == '0' && path[1] == '\0') return nullptr;
  return path;
}

}  // namespace ppatc::obs
