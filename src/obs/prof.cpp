#include "ppatc/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "json_internal.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

// glibc < 2.35 spells the SIGEV_THREAD_ID target field via the union only.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // defined(__linux__)

namespace ppatc::obs {

namespace {

// The rate the profiler was last armed at; read by the folded writer so a
// snapshot taken after stop_profiler() still reports its rate.
constinit std::atomic<std::uint32_t> g_prof_hz{kProfDefaultHz};

// Arming generation: odd = profiling on, even = off. Each thread compares
// against its thread-local copy (prof_poll_thread) and re-syncs its timer
// when the generation moved — so start/stop never has to enumerate or
// interrupt other threads.
constinit std::atomic<std::uint64_t> g_prof_gen{0};

thread_local std::uint64_t t_prof_seen_gen = 0;

void sanitize_frame(std::string& s) {
  // ';' separates frames and '\n' separates stacks in the folded format.
  for (char& c : s) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
}

std::string folded_key(const ProfStack& s) {
  std::string key = s.span;
  for (const std::string& f : s.frames) {
    key += ';';
    key += f;
  }
  return key;
}

}  // namespace

#if defined(__linux__)

namespace {

inline constexpr std::uint32_t kProfMaxFrames = 24;    // per-stack depth cap
inline constexpr std::uint32_t kProfTableSize = 2048;  // power of two
inline constexpr std::uint32_t kProfMaxProbe = 32;     // linear-probe window
inline constexpr std::uint32_t kProfMaxThreads = 256;

// One aggregated (span, stack) cell. Single writer — the owning thread's
// SIGPROF handler — claims a cell by writing every field and then publishing
// the hash with a release store; any thread may read (acquire the hash,
// then the fields are valid). All fields are relaxed atomics so a racing
// drain reads values, never UB.
struct ProfEntry {
  std::atomic<std::uint64_t> hash{0};  // 0 = free; published last
  std::atomic<std::uint64_t> count{0};
  std::atomic<const char*> span{nullptr};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<std::uintptr_t> pcs[kProfMaxFrames]{};
};

// Per-thread profiling state, allocated (and leaked — snapshots must outlive
// the thread) on first arm. Everything the handler touches is captured here
// at arm time: the stack bounds for the frame-pointer walk and the thread's
// flight ring for span attribution, so the handler itself performs no
// discovery, no allocation, and no locking.
struct ProfThread {
  std::uint32_t tid = 0;
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  const detail::FlightRing* flight = nullptr;
  timer_t timer{};
  bool timer_valid = false;
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> handler_ns{0};
  ProfEntry entries[kProfTableSize];
};

// Constant-initialized like the flight registry: live and lock-free from the
// first instruction, readable from any thread with plain atomic loads.
struct ProfRegistry {
  std::atomic<std::uint32_t> count{0};
  std::atomic<ProfThread*> threads[kProfMaxThreads]{};
};

constinit ProfRegistry g_prof_registry;

// The handler's single entry into thread-local state. constinit forces
// static (initial-exec) TLS, so reading it from the signal handler is a
// plain register-relative load — no lazy TLS allocation on the signal path.
constinit thread_local ProfThread* t_prof = nullptr;

// ---- the SIGPROF handler cone ----------------------------------------------
// Every function below, down to prof_signal_handler, is annotated
// `// ppatc-lint: signal-safe` and verified by ppatc-lint's interprocedural
// signal-safety rule with zero suppressions: only POSIX async-signal-safe
// externals (clock_gettime, atomics) and annotated internal helpers.

// ppatc-lint: signal-safe
std::uint64_t prof_now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Frame-pointer walk out of the interrupted context. Every candidate frame
// pointer is validated against the stack bounds captured at arm time and
// must move strictly toward the stack base, so the walk is memory-safe even
// in frames compiled without frame pointers — it just terminates early.
// ppatc-lint: signal-safe
std::uint32_t capture_frames(const ProfThread* t, void* ctx, std::uintptr_t* pcs,
                             std::uint32_t max) noexcept {
  std::uint32_t n = 0;
  std::uintptr_t fp = 0;
  if (ctx != nullptr && max > 0) {
    const ucontext_t* uc = static_cast<const ucontext_t*>(ctx);
#if defined(__x86_64__)
    pcs[n++] = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    pcs[n++] = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
    fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
    fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
#endif
  }
  while (n < max) {
    if (fp < t->stack_lo || fp + 2 * sizeof(std::uintptr_t) > t->stack_hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const std::uintptr_t* rec = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next = rec[0];
    const std::uintptr_t ret = rec[1];
    if (ret < 4096) break;
    pcs[n++] = ret;
    if (next <= fp) break;
    fp = next;
  }
  return n;
}

// ppatc-lint: signal-safe
bool table_insert(ProfThread* t, const char* span, const std::uintptr_t* pcs,
                  std::uint32_t depth) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  h = (h ^ static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(span))) *
      1099511628211ULL;
  for (std::uint32_t i = 0; i < depth; ++i) {
    h = (h ^ static_cast<std::uint64_t>(pcs[i])) * 1099511628211ULL;
  }
  if (h == 0) h = 1;
  for (std::uint32_t probe = 0; probe < kProfMaxProbe; ++probe) {
    ProfEntry& e = t->entries[(h + probe) & (kProfTableSize - 1)];
    const std::uint64_t eh = e.hash.load(std::memory_order_relaxed);
    if (eh == h) {
      e.count.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (eh == 0) {
      // This thread's handler is the table's only writer (SIGPROF is masked
      // while it runs), so check-then-claim cannot race another claim.
      e.span.store(span, std::memory_order_relaxed);
      e.depth.store(depth, std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < depth; ++i) {
        e.pcs[i].store(pcs[i], std::memory_order_relaxed);
      }
      e.count.store(1, std::memory_order_relaxed);
      e.hash.store(h, std::memory_order_release);
      return true;
    }
  }
  return false;  // probe window exhausted: caller counts the drop
}

// The SIGPROF leaf: capture the interrupted stack, attribute it to the
// innermost open span on this thread's flight ring, aggregate in place, and
// self-account the handler's own cost (the obs.prof_sample_ns surface).
void prof_signal_handler(int, siginfo_t*, void* ctx) noexcept {
  ProfThread* t = t_prof;
  if (t == nullptr) return;
  const std::uint64_t t0 = prof_now_ns();
  std::uintptr_t pcs[kProfMaxFrames];
  const std::uint32_t depth = capture_frames(t, ctx, pcs, kProfMaxFrames);
  if (depth == kProfMaxFrames) t->truncated.fetch_add(1, std::memory_order_relaxed);
  const char* span = nullptr;
  const detail::FlightRing* ring = t->flight;
  if (ring != nullptr) {
    const std::uint32_t d = ring->open_depth.load(std::memory_order_relaxed);
    if (d > 0) {
      const std::uint32_t cap = static_cast<std::uint32_t>(detail::kFlightMaxOpenSpans);
      const std::uint32_t top = (d <= cap ? d : cap) - 1;
      span = ring->open[top].name.load(std::memory_order_relaxed);
    }
  }
  if (!table_insert(t, span, pcs, depth)) t->dropped.fetch_add(1, std::memory_order_relaxed);
  t->samples.fetch_add(1, std::memory_order_relaxed);
  t->handler_ns.fetch_add(prof_now_ns() - t0, std::memory_order_relaxed);
}

// ---- arm / disarm (never on the signal path) --------------------------------

ProfThread* register_prof_thread() noexcept {
  const std::uint32_t idx = g_prof_registry.count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kProfMaxThreads) return nullptr;  // past capacity: never sampled
  auto* t = new ProfThread;  // leaked: snapshots must outlive the thread
  t->tid = idx;
  // Stack bounds for the handler's frame-pointer walk, captured once here —
  // pthread_getattr_np allocates, so it can never run on the signal path.
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &base, &size) == 0) {
      t->stack_lo = reinterpret_cast<std::uintptr_t>(base);
      t->stack_hi = t->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  // This thread's flight ring, for span attribution (allocates the ring on
  // first use — again arm-time-only).
  const std::uint32_t ftid = flight_thread_id();
  if (ftid != UINT32_MAX) t->flight = detail::flight_ring_at(ftid);
  g_prof_registry.threads[idx].store(t, std::memory_order_release);
  return t;
}

ProfThread* local_prof_thread() noexcept {
  thread_local ProfThread* t = register_prof_thread();
  return t;
}

void install_prof_handler() noexcept {
  static const bool installed = [] {
    struct sigaction sa {};
    sa.sa_sigaction = prof_signal_handler;  // the signal-safety rule's root
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  (void)installed;
}

void disarm_thread_timer(ProfThread* t) noexcept {
  t_prof = nullptr;  // a tick already in flight sees null and records nothing
  if (t != nullptr && t->timer_valid) {
    timer_delete(t->timer);
    t->timer_valid = false;
  }
}

void arm_thread_timer(ProfThread* t, std::uint32_t hz) noexcept {
  if (t == nullptr) return;
  if (!t->timer_valid) {
    // Created fresh on every arm (and deleted on disarm): POSIX timers do
    // not survive fork(), so reusing an id across arm cycles would go stale
    // in forked children (the death-style tests exercise exactly that).
    struct sigevent sev {};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = static_cast<pid_t>(::syscall(SYS_gettid));
    if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &t->timer) != 0) return;
    t->timer_valid = true;
  }
  t_prof = t;  // publish to the handler before the first tick can arrive
  const std::uint64_t period_ns = 1'000'000'000ULL / (hz == 0 ? 1 : hz);
  struct itimerspec spec {};
  spec.it_interval.tv_sec = static_cast<time_t>(period_ns / 1'000'000'000ULL);
  spec.it_interval.tv_nsec = static_cast<long>(period_ns % 1'000'000'000ULL);
  spec.it_value = spec.it_interval;
  if (timer_settime(t->timer, 0, &spec, nullptr) != 0) disarm_thread_timer(t);
}

void sync_thread_timer(std::uint64_t gen) noexcept {
  t_prof_seen_gen = gen;
  if ((gen & 1) != 0) {
    arm_thread_timer(local_prof_thread(), g_prof_hz.load(std::memory_order_relaxed));
  } else {
    disarm_thread_timer(t_prof);  // null for threads that never armed
  }
}

// ---- symbolization (report time only) ---------------------------------------

std::string symbolize(std::uintptr_t pc, std::map<std::uintptr_t, std::string>& cache) {
  const auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string name;
  Dl_info info{};
  // dladdr resolves against the dynamic symbol table; executables are built
  // with ENABLE_EXPORTS (-rdynamic) so their own functions appear there.
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = -1;
      char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      name = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
      std::free(dem);
    } else if (info.dli_fname != nullptr) {
      // No covering symbol (file-local code): module-relative offset.
      const char* base = std::strrchr(info.dli_fname, '/');
      std::ostringstream os;
      os << (base != nullptr ? base + 1 : info.dli_fname) << "+0x" << std::hex
         << pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase);
      name = os.str();
    }
  }
  if (name.empty()) {
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    name = os.str();
  }
  sanitize_frame(name);
  cache.emplace(pc, name);
  return name;
}

}  // namespace

bool prof_enabled() noexcept {
  return (g_prof_gen.load(std::memory_order_relaxed) & 1) != 0;
}

void start_profiler(std::uint32_t hz) {
  hz = std::clamp<std::uint32_t>(hz, 1, 10000);
  g_prof_hz.store(hz, std::memory_order_relaxed);
  install_prof_handler();
  const std::uint64_t gen = g_prof_gen.load(std::memory_order_relaxed);
  g_prof_gen.store((gen & 1) != 0 ? gen + 2 : gen + 1, std::memory_order_release);
  detail::prof_poll_thread();  // arm the calling thread synchronously
}

void stop_profiler() noexcept {
  const std::uint64_t gen = g_prof_gen.load(std::memory_order_relaxed);
  if ((gen & 1) != 0) g_prof_gen.store(gen + 1, std::memory_order_release);
  detail::prof_poll_thread();  // disarm the calling thread synchronously
}

ProfSnapshot prof_snapshot() {
  ProfSnapshot out;
  out.hz = g_prof_hz.load(std::memory_order_relaxed);
  std::map<std::string, ProfStack> merged;
  std::map<std::uintptr_t, std::string> symcache;
  const std::uint32_t n = std::min<std::uint32_t>(
      g_prof_registry.count.load(std::memory_order_acquire), kProfMaxThreads);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProfThread* t = g_prof_registry.threads[i].load(std::memory_order_acquire);
    if (t == nullptr) continue;
    out.samples += t->samples.load(std::memory_order_relaxed);
    out.dropped += t->dropped.load(std::memory_order_relaxed);
    out.truncated += t->truncated.load(std::memory_order_relaxed);
    out.handler_ns += t->handler_ns.load(std::memory_order_relaxed);
    for (const ProfEntry& e : t->entries) {
      if (e.hash.load(std::memory_order_acquire) == 0) continue;
      const std::uint64_t count = e.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      ProfStack s;
      const char* span = e.span.load(std::memory_order_relaxed);
      s.span = span != nullptr ? span : "no_span";
      sanitize_frame(s.span);
      const std::uint32_t depth =
          std::min(e.depth.load(std::memory_order_relaxed), kProfMaxFrames);
      // Captured leaf -> root; folded stacks read root -> leaf.
      for (std::uint32_t k = depth; k > 0; --k) {
        s.frames.push_back(symbolize(e.pcs[k - 1].load(std::memory_order_relaxed), symcache));
      }
      ProfStack& agg = merged[folded_key(s)];
      if (agg.count == 0) {
        agg.span = std::move(s.span);
        agg.frames = std::move(s.frames);
      }
      agg.count += count;
    }
  }
  out.stacks.reserve(merged.size());
  for (auto& [key, stack] : merged) {
    (void)key;
    out.stacks.push_back(std::move(stack));
  }
  return out;
}

void reset_prof() noexcept {
  const std::uint32_t n = std::min<std::uint32_t>(
      g_prof_registry.count.load(std::memory_order_acquire), kProfMaxThreads);
  for (std::uint32_t i = 0; i < n; ++i) {
    ProfThread* t = g_prof_registry.threads[i].load(std::memory_order_acquire);
    if (t == nullptr) continue;
    for (ProfEntry& e : t->entries) {
      e.hash.store(0, std::memory_order_relaxed);
      e.count.store(0, std::memory_order_relaxed);
    }
    t->samples.store(0, std::memory_order_relaxed);
    t->dropped.store(0, std::memory_order_relaxed);
    t->truncated.store(0, std::memory_order_relaxed);
    t->handler_ns.store(0, std::memory_order_relaxed);
  }
}

namespace detail {

void prof_poll_thread() noexcept {
  const std::uint64_t gen = g_prof_gen.load(std::memory_order_acquire);
  if (gen != t_prof_seen_gen) sync_thread_timer(gen);
}

std::uint64_t prof_total_samples() noexcept {
  std::uint64_t total = 0;
  const std::uint32_t n = std::min<std::uint32_t>(
      g_prof_registry.count.load(std::memory_order_acquire), kProfMaxThreads);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProfThread* t = g_prof_registry.threads[i].load(std::memory_order_acquire);
    if (t != nullptr) total += t->samples.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace detail

#else  // !defined(__linux__)

// Graceful no-op: the API exists, nothing ever arms. (POSIX per-thread
// CPU-clock timers with SIGEV_THREAD_ID are Linux-specific.)

bool prof_enabled() noexcept { return false; }
void start_profiler(std::uint32_t hz) {
  g_prof_hz.store(std::clamp<std::uint32_t>(hz, 1, 10000), std::memory_order_relaxed);
}
void stop_profiler() noexcept {}
ProfSnapshot prof_snapshot() {
  ProfSnapshot out;
  out.hz = g_prof_hz.load(std::memory_order_relaxed);
  return out;
}
void reset_prof() noexcept {}

namespace detail {
void prof_poll_thread() noexcept {}
std::uint64_t prof_total_samples() noexcept { return 0; }
}  // namespace detail

#endif  // defined(__linux__)

// ---- folded output ----------------------------------------------------------

std::string prof_to_folded(const ProfSnapshot& snap) {
  std::ostringstream os;
  os << "# ppatc_profile 1\n";
  os << "# hz " << snap.hz << '\n';
  os << "# samples " << snap.samples << '\n';
  os << "# dropped " << snap.dropped << '\n';
  os << "# truncated " << snap.truncated << '\n';
  os << "# sample_ns_avg " << snap.sample_ns_avg() << '\n';
  // The same caller-injected provenance stamps the run manifests carry
  // (bench_util / run_perf.sh export them); omitted when unset.
  if (const char* sha = std::getenv("BENCH_GIT_SHA"); sha != nullptr && *sha != '\0') {
    os << "# git_sha " << sha << '\n';
  }
  if (const char* ts = std::getenv("BENCH_TIMESTAMP_UTC"); ts != nullptr && *ts != '\0') {
    os << "# timestamp_utc " << ts << '\n';
  }
  std::vector<std::string> lines;
  lines.reserve(snap.stacks.size());
  for (const ProfStack& s : snap.stacks) {
    std::string line = folded_key(s);
    line += ' ';
    line += std::to_string(s.count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) os << line << '\n';
  return os.str();
}

void write_profile(const std::string& path) {
  std::ofstream out{path};
  PPATC_EXPECT(out.good(), "cannot open profile output file: " + path);
  out << prof_to_folded(prof_snapshot());
  out.close();
  PPATC_ENSURE(out.good(), "failed writing profile output file: " + path);
}

// ---- folded parsing & aggregation -------------------------------------------

FoldedProfile parse_folded(const std::string& text) {
  FoldedProfile p;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# key value` header line; anything else after '#' is a comment.
      std::size_t key_begin = 1;
      while (key_begin < line.size() && line[key_begin] == ' ') ++key_begin;
      const std::size_t key_end = line.find(' ', key_begin);
      if (key_end != std::string::npos && key_end > key_begin) {
        p.header[line.substr(key_begin, key_end - key_begin)] = line.substr(key_end + 1);
      }
      continue;
    }
    // The count is everything after the LAST space, so frame names (e.g.
    // demangled signatures) may contain spaces.
    const std::size_t sep = line.rfind(' ');
    PPATC_EXPECT(sep != std::string::npos && sep + 1 < line.size(),
                 "folded line has no sample count: " + line);
    char* end = nullptr;
    const std::string count_text = line.substr(sep + 1);
    const unsigned long long count = std::strtoull(count_text.c_str(), &end, 10);
    PPATC_EXPECT(end != count_text.c_str() && *end == '\0',
                 "folded line has a non-numeric count: " + line);
    FoldedStack stack;
    stack.count = count;
    std::size_t fpos = 0;
    const std::string key = line.substr(0, sep);
    while (true) {
      const std::size_t semi = key.find(';', fpos);
      if (semi == std::string::npos) {
        stack.frames.push_back(key.substr(fpos));
        break;
      }
      stack.frames.push_back(key.substr(fpos, semi - fpos));
      fpos = semi + 1;
    }
    PPATC_EXPECT(!stack.frames.empty() && !stack.frames[0].empty(),
                 "folded line has an empty stack key: " + line);
    p.stacks.push_back(std::move(stack));
  }
  return p;
}

std::string format_folded(const FoldedProfile& profile) {
  std::ostringstream os;
  for (const auto& [key, value] : profile.header) os << "# " << key << ' ' << value << '\n';
  std::vector<std::string> lines;
  lines.reserve(profile.stacks.size());
  for (const FoldedStack& s : profile.stacks) {
    std::string line;
    for (std::size_t i = 0; i < s.frames.size(); ++i) {
      if (i > 0) line += ';';
      line += s.frames[i];
    }
    line += ' ';
    line += std::to_string(s.count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) os << line << '\n';
  return os.str();
}

std::map<std::string, FrameStat> folded_frame_stats(const FoldedProfile& profile) {
  std::map<std::string, FrameStat> stats;
  std::vector<std::string> seen;
  for (const FoldedStack& s : profile.stacks) {
    if (s.frames.empty()) continue;
    stats[s.frames.back()].self += s.count;
    // Deduplicate per stack so recursive frames are not total-counted twice.
    seen.assign(s.frames.begin(), s.frames.end());
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (const std::string& f : seen) stats[f].total += s.count;
  }
  return stats;
}

namespace {

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole > 0 ? 100.0 * static_cast<double>(part) / static_cast<double>(whole) : 0.0;
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint32_t name_hash(const std::string& s) {
  std::uint32_t h = 2166136261U;
  for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 16777619U;
  return h;
}

}  // namespace

std::string render_flame_table(const FoldedProfile& profile, std::size_t top) {
  const std::uint64_t total = profile.total_samples();
  std::ostringstream os;
  os << "profile: " << total << " samples";
  if (const auto hz = profile.header.find("hz"); hz != profile.header.end()) {
    os << " @ " << hz->second << " Hz";
  }
  if (const auto d = profile.header.find("dropped"); d != profile.header.end()) {
    os << ", " << d->second << " dropped";
  }
  if (const auto avg = profile.header.find("sample_ns_avg"); avg != profile.header.end()) {
    os << ", handler " << avg->second << " ns/sample";
  }
  os << '\n';
  if (const auto sha = profile.header.find("git_sha"); sha != profile.header.end()) {
    os << "git " << sha->second;
    if (const auto ts = profile.header.find("timestamp_utc"); ts != profile.header.end()) {
      os << " @ " << ts->second;
    }
    os << '\n';
  }
  os << '\n';
  const std::map<std::string, FrameStat> stats = folded_frame_stats(profile);
  std::vector<std::pair<std::string, FrameStat>> rows{stats.begin(), stats.end()};
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    if (a.second.total != b.second.total) return a.second.total > b.second.total;
    return a.first < b.first;
  });
  if (top > 0 && rows.size() > top) rows.resize(top);
  os << std::setw(8) << "SELF%" << std::setw(8) << "TOTAL%" << std::setw(10) << "SELF"
     << "  FRAME\n";
  os << std::fixed << std::setprecision(2);
  for (const auto& [name, stat] : rows) {
    os << std::setw(8) << pct(stat.self, total) << std::setw(8) << pct(stat.total, total)
       << std::setw(10) << stat.self << "  " << name << '\n';
  }
  return os.str();
}

namespace {

struct FlameNode {
  std::uint64_t total = 0;
  std::map<std::string, FlameNode> kids;

  [[nodiscard]] std::size_t depth() const {
    std::size_t d = 0;
    for (const auto& [name, kid] : kids) {
      (void)name;
      d = std::max(d, kid.depth() + 1);
    }
    return d;
  }
};

void emit_flame_rects(std::ostringstream& os, const FlameNode& node, const std::string& name,
                      double x, double width, std::size_t level, std::uint64_t total,
                      double px_per_sample, double row_h) {
  if (width < 0.1) return;
  const double y = 26.0 + static_cast<double>(level) * row_h;
  const std::uint32_t h = name_hash(name);
  const unsigned r = 205 + h % 50;
  const unsigned g = 80 + (h >> 8) % 110;
  const unsigned b = (h >> 16) % 40;
  os << "<g><title>" << xml_escape(name) << " (" << node.total << " samples, " << std::fixed
     << std::setprecision(2) << pct(node.total, total) << "%)</title>\n";
  os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << width << "\" height=\""
     << row_h - 1.0 << "\" fill=\"rgb(" << r << ',' << g << ',' << b << ")\" rx=\"1\"/>\n";
  if (width > 40.0) {
    const std::size_t max_chars = static_cast<std::size_t>((width - 6.0) / 6.5);
    std::string label = name;
    if (label.size() > max_chars) label = label.substr(0, max_chars > 2 ? max_chars - 2 : 0) + "..";
    os << "<text x=\"" << x + 3.0 << "\" y=\"" << y + row_h - 5.0
       << "\" font-size=\"11\" font-family=\"monospace\">" << xml_escape(label) << "</text>\n";
  }
  os << "</g>\n";
  double cx = x;
  for (const auto& [kid_name, kid] : node.kids) {
    const double kw = static_cast<double>(kid.total) * px_per_sample;
    emit_flame_rects(os, kid, kid_name, cx, kw, level + 1, total, px_per_sample, row_h);
    cx += kw;
  }
}

}  // namespace

std::string render_flame_svg(const FoldedProfile& profile) {
  FlameNode root;
  for (const FoldedStack& s : profile.stacks) {
    root.total += s.count;
    FlameNode* node = &root;
    for (const std::string& f : s.frames) {
      node = &node->kids[f];
      node->total += s.count;
    }
  }
  const double width = 1200.0;
  const double row_h = 16.0;
  const std::size_t levels = root.depth() + 1;
  const double height = 26.0 + static_cast<double>(levels) * row_h + 10.0;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
     << height << "\" viewBox=\"0 0 " << width << ' ' << height << "\">\n";
  os << "<text x=\"4\" y=\"16\" font-size=\"13\" font-family=\"monospace\">ppatc profile: "
     << root.total << " samples";
  if (const auto hz = profile.header.find("hz"); hz != profile.header.end()) {
    os << " @ " << xml_escape(hz->second) << " Hz";
  }
  if (const auto sha = profile.header.find("git_sha"); sha != profile.header.end()) {
    os << " (git " << xml_escape(sha->second) << ")";
  }
  os << "</text>\n";
  if (root.total > 0) {
    const double px_per_sample = width / static_cast<double>(root.total);
    emit_flame_rects(os, root, "all", 0.0, width, 0, root.total, px_per_sample, row_h);
  }
  os << "</svg>\n";
  return os.str();
}

// ---- hottest spans per thread (ppatc-report timeline --top) -----------------

namespace {

using detail::JsonParser;
using detail::JsonValue;

struct SpanTotal {
  double wall_us = 0.0;
  std::uint64_t count = 0;
};

// tid -> span name -> aggregate. std::map keeps the output order stable.
using PerThreadTotals = std::map<std::uint64_t, std::map<std::string, SpanTotal>>;

PerThreadTotals totals_from_trace(const JsonValue& events) {
  PerThreadTotals totals;
  for (const JsonValue& e : events.array) {
    const JsonValue* name = e.find("name");
    const JsonValue* dur = e.find("dur");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || dur == nullptr || tid == nullptr) continue;
    SpanTotal& t = totals[static_cast<std::uint64_t>(tid->number)][name->string];
    t.wall_us += dur->number;
    t.count += 1;
  }
  return totals;
}

PerThreadTotals totals_from_bundle(const JsonValue& threads) {
  PerThreadTotals totals;
  for (const JsonValue& th : threads.array) {
    const std::uint64_t tid =
        static_cast<std::uint64_t>(detail::as_number(th.find("tid"), "thread.tid"));
    const JsonValue* events = th.find("events");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) continue;
    std::vector<std::pair<std::string, double>> open;  // (name, begin ts_ns)
    double last_ts = 0.0;
    for (const JsonValue& e : events->array) {
      const JsonValue* kind = e.find("kind");
      const JsonValue* name = e.find("name");
      const JsonValue* ts = e.find("ts_ns");
      if (kind == nullptr || name == nullptr || ts == nullptr) continue;
      last_ts = std::max(last_ts, ts->number);
      if (kind->string == "span_begin") {
        open.emplace_back(name->string, ts->number);
      } else if (kind->string == "span_end" && !open.empty()) {
        // Pop the innermost matching begin (the stack is balanced per
        // thread; a ring that wrapped past a begin just drops that span).
        std::size_t at = open.size();
        for (std::size_t i = open.size(); i > 0; --i) {
          if (open[i - 1].first == name->string) {
            at = i - 1;
            break;
          }
        }
        if (at == open.size()) continue;
        SpanTotal& t = totals[tid][name->string];
        t.wall_us += (ts->number - open[at].second) / 1e3;
        t.count += 1;
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(at));
      }
    }
    // Spans still open at the failure point count up to the last event seen.
    for (const auto& [name, begin_ns] : open) {
      SpanTotal& t = totals[tid][name];
      t.wall_us += (last_ts - begin_ns) / 1e3;
      t.count += 1;
    }
  }
  return totals;
}

}  // namespace

std::string render_top_spans(const std::string& json, std::size_t top) {
  const JsonValue root = JsonParser::parse(json);
  PPATC_EXPECT(root.kind == JsonValue::Kind::kObject,
               "top-spans input is not a JSON object");
  PerThreadTotals totals;
  if (const JsonValue* events = root.find("traceEvents");
      events != nullptr && events->kind == JsonValue::Kind::kArray) {
    totals = totals_from_trace(*events);
  } else {
    const JsonValue* flight = root.find("flight");
    const JsonValue* threads = flight != nullptr ? flight->find("threads") : nullptr;
    PPATC_EXPECT(threads != nullptr && threads->kind == JsonValue::Kind::kArray,
                 "top-spans input is neither a Chrome trace nor a diagnostic bundle");
    totals = totals_from_bundle(*threads);
  }
  std::ostringstream os;
  os << "hottest spans per thread (top " << top << ", by wall time)\n";
  os << std::fixed << std::setprecision(3);
  for (const auto& [tid, spans] : totals) {
    os << "thread " << tid << ":\n";
    // Rank through the same folded-stack aggregation the flamegraph table
    // uses: each span becomes a single-frame stack weighted in microseconds.
    FoldedProfile ranked;
    for (const auto& [name, agg] : spans) {
      FoldedStack s;
      s.frames.push_back(name);
      s.count = static_cast<std::uint64_t>(agg.wall_us);
      ranked.stacks.push_back(std::move(s));
    }
    const std::map<std::string, FrameStat> stats = folded_frame_stats(ranked);
    std::vector<std::pair<std::string, FrameStat>> rows{stats.begin(), stats.end()};
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.total != b.second.total) return a.second.total > b.second.total;
      return a.first < b.first;
    });
    if (top > 0 && rows.size() > top) rows.resize(top);
    for (const auto& [name, stat] : rows) {
      const SpanTotal& agg = spans.at(name);
      os << std::setw(12) << static_cast<double>(stat.total) / 1e3 << " ms  " << name << "  (x"
         << agg.count << ")\n";
    }
  }
  return os.str();
}

// ---- environment wiring -----------------------------------------------------

namespace detail {

std::uint32_t parse_profile_hz_env(const char* value) noexcept {
  if (value == nullptr || *value == '\0') return kProfDefaultHz;
  char* end = nullptr;
  const unsigned long hz = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || hz == 0) return kProfDefaultHz;
  return static_cast<std::uint32_t>(std::min(hz, 10000UL));
}

}  // namespace detail

namespace {

// Startup wiring for PPATC_PROFILE / PPATC_PROFILE_HZ: start sampling now,
// write the folded profile at clean exit (same atexit discipline as the
// PPATC_TRACE exporter in trace.cpp).
struct ProfEnvInit {
  ProfEnvInit() {
    const char* path = std::getenv("PPATC_PROFILE");
    if (path == nullptr || *path == '\0') return;
    static std::string profile_path;  // outlives the atexit handler
    profile_path = path;
    start_profiler(detail::parse_profile_hz_env(std::getenv("PPATC_PROFILE_HZ")));
    std::atexit([] {
      try {
        stop_profiler();
        write_profile(profile_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ppatc::obs: profile export failed: %s\n", e.what());
      }
    });
  }
};

const ProfEnvInit g_prof_env_init{};

}  // namespace

}  // namespace ppatc::obs
