// ppatc::obs internal: shared JSON string escaping for the exporters
// (metrics, trace, report). Not a public header — lives next to the .cpp
// files on purpose.
//
// Escapes the two structural characters, the named control escapes, and every
// remaining control byte as \u00XX, so any metric/span/result name — including
// ones containing quotes, backslashes, or embedded control characters — still
// exports as valid JSON.
#pragma once

#include <cstdio>
#include <ostream>
#include <string_view>

namespace ppatc::obs::detail {

inline void append_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace ppatc::obs::detail
