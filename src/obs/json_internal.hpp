// ppatc::obs internal: shared JSON machinery for the exporters and readers
// (metrics, trace, report, diag). Not a public header — lives next to the
// .cpp files on purpose.
//
// Two halves:
//  * append_json_escaped — escapes the two structural characters, the named
//    control escapes, and every remaining control byte as \u00XX, so any
//    metric/span/result name — including ones containing quotes, backslashes,
//    or embedded control characters — still exports as valid JSON.
//  * JsonValue / JsonParser — a minimal recursive-descent JSON reader
//    producing a small DOM. No external dependency by design: the documents
//    this layer reads (manifests, diagnostic bundles, traces) are the ones it
//    writes. Shared by report.cpp (manifests) and diag.cpp (bundle/trace
//    timelines).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "ppatc/common/contract.hpp"

namespace ppatc::obs::detail {

inline void append_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p{text};
    p.skip_ws();
    // ppatc-lint: allow(units-escape) — JsonParser::value() parses a JSON value; not a Quantity
    JsonValue v = p.value();
    p.skip_ws();
    PPATC_EXPECT(p.pos_ == text.size(), "trailing content after JSON document");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_{text} {}

  [[noreturn]] void fail(const std::string& what) const {
    throw ContractViolation("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }
  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = c == 't';
      literal(c == 't' ? "true" : "false");
      return v;
    }
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) fail(std::string{"expected literal "} + word);
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (!eof() && peek() != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The writers only emit \u00XX for control bytes; decode the
          // low byte and pass anything else through as '?' rather than
          // implementing full UTF-16 surrogate handling.
          out.push_back(code <= 0xff ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
    expect('"');
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), value());
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline double as_number(const JsonValue* v, const std::string& where) {
  PPATC_EXPECT(v != nullptr && v->kind == JsonValue::Kind::kNumber,
               "JSON field is not a number: " + where);
  return v->number;
}

inline std::string as_string(const JsonValue* v, const std::string& where) {
  PPATC_EXPECT(v != nullptr && v->kind == JsonValue::Kind::kString,
               "JSON field is not a string: " + where);
  return v->string;
}

inline std::map<std::string, std::string> as_string_map(const JsonValue* v,
                                                        const std::string& where) {
  std::map<std::string, std::string> out;
  if (v == nullptr) return out;
  PPATC_EXPECT(v->kind == JsonValue::Kind::kObject, "JSON field is not an object: " + where);
  for (const auto& [k, e] : v->object) out[k] = as_string(&e, where + "." + k);
  return out;
}

}  // namespace ppatc::obs::detail
