#include "ppatc/spice/sparse.hpp"

#include <bit>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::spice {

namespace {

obs::Counter& sparse_solves_counter() {
  static obs::Counter& c = obs::counter("spice.sparse_solves");
  return c;
}
// Every dense-oracle discovery: the first solve on a topology plus each pivot
// drift. NOT thread-count deterministic — whether a corner finds a seed
// program in the cache depends on scheduling order.
obs::Counter& sparse_rebuilds_counter() {
  static obs::Counter& c = obs::counter("spice.sparse_symbolic_rebuilds");
  return c;
}
obs::Counter& pattern_hits_counter() {
  static obs::Counter& c = obs::counter("spice.sparse_pattern_cache_hits");
  return c;
}
// Wall-clock of one factor+solve, in microseconds: replayed solves are a few
// hundred nanoseconds to a few microseconds; discovery solves are dense and
// land in the tail buckets.
obs::Histogram& factor_latency_histogram() {
  static obs::Histogram& h = obs::histogram(
      "spice.sparse_factor_us", {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0});
  return h;
}

// ---- pattern + program cache ----------------------------------------------

struct CacheEntry {
  std::shared_ptr<const MnaPattern> pattern;
  std::shared_ptr<const EliminationProgram> program;
};

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

// Fingerprint-keyed buckets; entries within a bucket are distinguished by a
// full structure compare. Leaked intentionally: worker threads may consult
// the cache during static destruction.
std::unordered_map<std::uint64_t, std::vector<CacheEntry>>& pattern_cache() {
  static auto* cache = new std::unordered_map<std::uint64_t, std::vector<CacheEntry>>();
  return *cache;
}

CacheEntry* find_entry_locked(const MnaPattern& pattern) {
  auto it = pattern_cache().find(pattern.fingerprint());
  if (it == pattern_cache().end()) return nullptr;
  for (auto& entry : it->second) {
    if (entry.pattern->same_structure(pattern)) return &entry;
  }
  return nullptr;
}

}  // namespace

// ---- DenseMatrix -----------------------------------------------------------

bool DenseMatrix::solve(std::vector<double>& b, std::vector<std::uint32_t>* pivot_out) {
  std::vector<std::size_t> perm(n_);
  for (std::size_t i = 0; i < n_; ++i) perm[i] = i;
  for (std::size_t k = 0; k < n_; ++k) {
    // partial pivot
    std::size_t piv = k;
    double best = std::abs(at(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      if (std::abs(at(r, k)) > best) {
        best = std::abs(at(r, k));
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot_out != nullptr) pivot_out->push_back(static_cast<std::uint32_t>(piv));
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(at(k, c), at(piv, c));
      std::swap(b[k], b[piv]);
    }
    const double d = at(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = at(r, k) / d;
      if (m == 0.0) continue;
      at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n_; ++c) at(r, c) -= m * at(k, c);
      b[r] -= m * b[k];
    }
  }
  for (std::size_t k = n_; k-- > 0;) {
    double s = b[k];
    for (std::size_t c = k + 1; c < n_; ++c) s -= at(k, c) * b[c];
    b[k] = s / at(k, k);
  }
  return true;
}

// ---- SlotLayout ------------------------------------------------------------

void SlotLayout::index() {
  row_begin.assign(n + 1, 0);
  slot_of.assign(n * n, 0);
  std::uint32_t total = 0;
  for (std::size_t r = 0; r < n; ++r) {
    row_begin[r] = total;
    const std::uint64_t* row = bits.data() + r * words_per_row;
    for (std::size_t w = 0; w < words_per_row; ++w) {
      std::uint64_t word = row[w];
      while (word != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        slot_of[r * n + w * 64 + bit] = total++;
      }
    }
  }
  row_begin[n] = total;
}

// ---- MnaPattern ------------------------------------------------------------

MnaPattern::Builder::Builder(std::size_t n) {
  PPATC_EXPECT(n > 0, "MNA pattern needs at least one unknown");
  layout_.n = n;
  layout_.words_per_row = (n + 63) / 64;
  layout_.bits.assign(n * layout_.words_per_row, 0);
}

MnaPattern MnaPattern::Builder::build() && {
  layout_.index();
  MnaPattern p;
  // FNV-1a over the dimension and the bit rows: cheap, and collisions are
  // resolved by the full structure compare in the cache anyway.
  std::uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (v >> (8 * i)) & 0xFFu;
      fp *= 1099511628211ull;
    }
  };
  mix(layout_.n);
  for (const std::uint64_t w : layout_.bits) mix(w);
  p.fingerprint_ = fp;
  p.layout_ = std::move(layout_);
  return p;
}

bool MnaPattern::same_structure(const MnaPattern& other) const {
  return layout_.n == other.layout_.n && layout_.bits == other.layout_.bits;
}

// ---- cache -----------------------------------------------------------------

std::shared_ptr<const MnaPattern> intern_mna_pattern(MnaPattern pattern) {
  const std::lock_guard<std::mutex> lock{cache_mutex()};
  if (CacheEntry* entry = find_entry_locked(pattern)) {
    pattern_hits_counter().increment();
    return entry->pattern;
  }
  auto shared = std::make_shared<const MnaPattern>(std::move(pattern));
  pattern_cache()[shared->fingerprint()].push_back(CacheEntry{shared, nullptr});
  return shared;
}

std::shared_ptr<const EliminationProgram> cached_elimination_program(const MnaPattern& pattern) {
  const std::lock_guard<std::mutex> lock{cache_mutex()};
  const CacheEntry* entry = find_entry_locked(pattern);
  return entry != nullptr ? entry->program : nullptr;
}

void seed_elimination_program(const MnaPattern& pattern,
                              std::shared_ptr<const EliminationProgram> program) {
  const std::lock_guard<std::mutex> lock{cache_mutex()};
  CacheEntry* entry = find_entry_locked(pattern);
  if (entry != nullptr && entry->program == nullptr) entry->program = std::move(program);
}

std::size_t mna_pattern_cache_size() {
  const std::lock_guard<std::mutex> lock{cache_mutex()};
  std::size_t count = 0;
  for (const auto& [fp, bucket] : pattern_cache()) count += bucket.size();
  return count;
}

// ---- program compilation ---------------------------------------------------

namespace {

// Structural simulation of the dense elimination under a recorded pivot
// sequence: tracks which (row, col) entries CAN be nonzero (original stamps
// plus fill), and emits the slot-level schedule. Value-independent: any
// matrix with this pattern eliminated with these pivots touches a subset of
// the union computed here, and entries outside it stay exactly +0.0.
std::shared_ptr<const EliminationProgram> compile_program(
    const MnaPattern& pattern, const std::vector<std::uint32_t>& pivots) {
  const SlotLayout& structural = pattern.layout();
  const std::size_t n = structural.n;
  const std::size_t wpr = structural.words_per_row;

  auto program = std::make_shared<EliminationProgram>();
  SlotLayout& layout = program->layout;
  layout.n = n;
  layout.words_per_row = wpr;
  layout.bits = structural.bits;  // grows with fill during the simulation

  auto test = [&](std::size_t row, std::size_t col) {
    return ((layout.bits[row * wpr + (col >> 6)] >> (col & 63u)) & 1u) != 0;
  };

  struct TempStep {
    std::uint32_t pivot_pos = 0;
    std::uint32_t pivot_row = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;    // (row, pos)
    std::vector<std::pair<std::uint32_t, std::uint32_t>> targets;  // (row, pos)
  };
  std::vector<TempStep> temp(n);
  std::vector<std::uint32_t> pos2row(n);
  for (std::size_t i = 0; i < n; ++i) pos2row[i] = static_cast<std::uint32_t>(i);

  for (std::size_t k = 0; k < n; ++k) {
    TempStep& ts = temp[k];
    // Pivot candidates: the dense scan reads column k at positions k..n-1
    // before the swap; only union entries can be nonzero there.
    for (std::size_t pos = k; pos < n; ++pos) {
      const std::uint32_t row = pos2row[pos];
      if (test(row, k)) ts.cands.emplace_back(row, static_cast<std::uint32_t>(pos));
    }
    const std::uint32_t piv = pivots[k];
    ts.pivot_pos = piv;
    std::swap(pos2row[k], pos2row[piv]);
    const std::uint32_t pivot_row = pos2row[k];
    ts.pivot_row = pivot_row;
    // Targets: rows below the pivot with a (possible) nonzero in column k.
    // Each acquires the pivot row's structure right of column k as fill.
    for (std::size_t pos = k + 1; pos < n; ++pos) {
      const std::uint32_t row = pos2row[pos];
      if (!test(row, k)) continue;
      ts.targets.emplace_back(row, static_cast<std::uint32_t>(pos));
      std::uint64_t* dst = layout.bits.data() + std::size_t{row} * wpr;
      const std::uint64_t* src = layout.bits.data() + std::size_t{pivot_row} * wpr;
      const std::size_t w0 = (k + 1) >> 6;
      dst[w0] |= src[w0] & (~std::uint64_t{0} << ((k + 1) & 63u));
      for (std::size_t w = w0 + 1; w < wpr; ++w) dst[w] |= src[w];
    }
  }

  // The union structure is final; resolve every recorded operation to slots.
  layout.index();
  program->steps.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const TempStep& ts = temp[k];
    EliminationProgram::Step step{};
    step.pivot_pos = ts.pivot_pos;
    step.pivot_slot = layout.slot(ts.pivot_row, k);
    step.cand_begin = static_cast<std::uint32_t>(program->cands.size());
    for (const auto& [row, pos] : ts.cands) {
      program->cands.push_back({layout.slot(row, k), pos});
    }
    step.cand_end = static_cast<std::uint32_t>(program->cands.size());
    step.target_begin = static_cast<std::uint32_t>(program->targets.size());
    for (const auto& [row, pos] : ts.targets) {
      EliminationProgram::Target target{};
      target.m_slot = layout.slot(row, k);
      target.b_pos = pos;
      target.pair_begin = static_cast<std::uint32_t>(program->pairs.size());
      // The pivot row's structure is frozen from step k on (it is never a
      // target again), so the final union bits equal its bits at this step.
      for (std::size_t c = k + 1; c < n; ++c) {
        if (!test(ts.pivot_row, c)) continue;
        program->pairs.push_back({layout.slot(row, c), layout.slot(ts.pivot_row, c)});
      }
      target.pair_end = static_cast<std::uint32_t>(program->pairs.size());
      program->targets.push_back(target);
    }
    step.target_end = static_cast<std::uint32_t>(program->targets.size());
    program->steps.push_back(step);
  }

  // Back substitution reads U: row at final position k, columns right of k.
  program->back.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t row = pos2row[k];
    EliminationProgram::BackRow br{};
    br.diag_slot = program->steps[k].pivot_slot;
    br.term_begin = static_cast<std::uint32_t>(program->back_terms.size());
    for (std::size_t c = k + 1; c < n; ++c) {
      if (!test(row, c)) continue;
      program->back_terms.push_back({layout.slot(row, c), static_cast<std::uint32_t>(c)});
    }
    br.term_end = static_cast<std::uint32_t>(program->back_terms.size());
    program->back.push_back(br);
  }

  return program;
}

}  // namespace

// ---- SparseLuSolver --------------------------------------------------------

SparseLuSolver::SparseLuSolver(std::shared_ptr<const MnaPattern> pattern)
    : pattern_{std::move(pattern)} {
  PPATC_EXPECT(pattern_ != nullptr, "solver needs a pattern");
  if (auto seed = cached_elimination_program(*pattern_)) {
    adopt(std::move(seed));
  } else {
    vals_.assign(pattern_->layout().nonzeros(), 0.0);
  }
}

void SparseLuSolver::adopt(std::shared_ptr<const EliminationProgram> program) {
  program_ = std::move(program);
  vals_.assign(program_->layout.nonzeros(), 0.0);
}

bool SparseLuSolver::factor_solve(std::vector<double>& b) {
  PPATC_EXPECT(b.size() == pattern_->size(), "right-hand side dimension mismatch");
  sparse_solves_counter().increment();
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;

  bool ok = false;
  bool done = false;
  if (program_ != nullptr) {
    b_work_ = b;
    const Replay r = replay(b_work_);
    if (r != Replay::kPivotDrift) {
      b = b_work_;  // on kSingular this is the oracle's partial state
      ok = (r == Replay::kOk);
      done = true;
    }
  }
  if (!done) ok = discover(b);

  if (timed) {
    factor_latency_histogram().record(static_cast<double>(obs::monotonic_ns() - t0) * 1e-3);
  }
  return ok;
}

// Discovery is the once-per-topology slow path (dense oracle + program
// compilation + cache interning): it allocates and takes the cache lock by
// design, and every subsequent solve replays the compiled program without
// either. Opt the whole subtree out of the realtime cone.
// ppatc-lint: allow(realtime)
bool SparseLuSolver::discover(std::vector<double>& b) {
  ++discoveries_;
  sparse_rebuilds_counter().increment();
  // Scatter the current values into the oracle; slots beyond the structural
  // pattern (stale fill positions of a previous program) hold exactly 0.0.
  const SlotLayout& layout = active_layout();
  const std::size_t n = layout.n;
  DenseMatrix dense(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::uint32_t slot = layout.row_begin[r];
    const std::uint64_t* row = layout.bits.data() + r * layout.words_per_row;
    for (std::size_t w = 0; w < layout.words_per_row; ++w) {
      std::uint64_t word = row[w];
      while (word != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        dense.at(r, w * 64 + bit) = vals_[slot++];
      }
    }
  }
  std::vector<std::uint32_t> pivots;
  pivots.reserve(n);
  if (!dense.solve(b, &pivots)) return false;  // keep the old program, if any
  auto program = compile_program(*pattern_, pivots);
  seed_elimination_program(*pattern_, program);
  adopt(std::move(program));
  return true;
}

SparseLuSolver::Replay SparseLuSolver::replay(std::vector<double>& b) {
  const EliminationProgram& p = *program_;
  const std::size_t n = p.layout.n;
  work_ = vals_;  // keep vals_ intact for re-discovery on pivot drift
  double* w = work_.data();

  for (std::size_t k = 0; k < n; ++k) {
    const EliminationProgram::Step& step = p.steps[k];
    // Re-run the partial-pivot scan over the candidate slots. Entries the
    // dense scan would also visit but that lie outside the union are exactly
    // +0.0 and can never win a strict > comparison, so the winner matches.
    double best = 0.0;
    std::uint32_t piv = static_cast<std::uint32_t>(k);
    for (std::uint32_t ci = step.cand_begin; ci != step.cand_end; ++ci) {
      const EliminationProgram::Candidate& cand = p.cands[ci];
      const double v = std::abs(w[cand.slot]);
      if (cand.pos == k) {
        best = v;  // the dense scan's initial best, |a[k][k]|
      } else if (v > best) {
        best = v;
        piv = cand.pos;
      }
    }
    if (best < 1e-300) return Replay::kSingular;
    if (piv != step.pivot_pos) return Replay::kPivotDrift;
    if (piv != k) std::swap(b[k], b[piv]);

    const double d = w[step.pivot_slot];
    const double bk = b[k];
    for (std::uint32_t ti = step.target_begin; ti != step.target_end; ++ti) {
      const EliminationProgram::Target& t = p.targets[ti];
      const double m = w[t.m_slot] / d;
      if (m == 0.0) continue;
      for (std::uint32_t pi = t.pair_begin; pi != t.pair_end; ++pi) {
        const EliminationProgram::Pair& pr = p.pairs[pi];
        w[pr.dst] -= m * w[pr.src];
      }
      b[t.b_pos] -= m * bk;
    }
  }

  for (std::size_t k = n; k-- > 0;) {
    const EliminationProgram::BackRow& br = p.back[k];
    double s = b[k];
    for (std::uint32_t ti = br.term_begin; ti != br.term_end; ++ti) {
      const EliminationProgram::BackTerm& t = p.back_terms[ti];
      s -= w[t.slot] * b[t.col];
    }
    b[k] = s / w[br.diag_slot];
  }
  return Replay::kOk;
}

}  // namespace ppatc::spice
