#include "ppatc/spice/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::spice {

Stimulus Stimulus::dc(Voltage level) {
  Stimulus s;
  s.kind_ = Kind::kDc;
  s.dc_ = level;
  return s;
}

Stimulus Stimulus::pwl(std::vector<std::pair<Duration, Voltage>> points) {
  PPATC_EXPECT(!points.empty(), "PWL stimulus needs at least one breakpoint");
  for (std::size_t i = 1; i < points.size(); ++i) {
    PPATC_EXPECT(points[i - 1].first < points[i].first, "PWL breakpoints must be strictly increasing");
  }
  Stimulus s;
  s.kind_ = Kind::kPwl;
  s.points_ = std::move(points);
  return s;
}

Stimulus Stimulus::pulse(Voltage v0, Voltage v1, Duration delay, Duration rise, Duration fall,
                         Duration width, Duration period) {
  PPATC_EXPECT(rise.base() >= 0 && fall.base() >= 0 && width.base() >= 0, "pulse edges must be non-negative");
  PPATC_EXPECT(period.base() > 0, "pulse period must be positive");
  PPATC_EXPECT(rise.base() + fall.base() + width.base() <= period.base(),
               "pulse shape must fit within one period");
  Stimulus s;
  s.kind_ = Kind::kPulse;
  s.v0_ = v0;
  s.v1_ = v1;
  s.delay_ = delay;
  s.rise_ = rise;
  s.fall_ = fall;
  s.width_ = width;
  s.period_ = period;
  return s;
}

Voltage Stimulus::at(Duration t) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const double t0 = points_[i - 1].first.base();
          const double t1 = points_[i].first.base();
          const double v0 = points_[i - 1].second.base();
          const double v1 = points_[i].second.base();
          const double f = (t.base() - t0) / (t1 - t0);
          return units::volts(v0 + f * (v1 - v0));
        }
      }
      return points_.back().second;
    }
    case Kind::kPulse: {
      const double tt = t.base() - delay_.base();
      if (tt < 0) return v0_;
      const double tp = std::fmod(tt, period_.base());
      const double r = rise_.base();
      const double w = width_.base();
      const double f = fall_.base();
      const double lo = v0_.base();
      const double hi = v1_.base();
      if (tp < r) return units::volts(lo + (hi - lo) * (r > 0 ? tp / r : 1.0));
      if (tp < r + w) return v1_;
      if (tp < r + w + f) return units::volts(hi - (hi - lo) * (f > 0 ? (tp - r - w) / f : 1.0));
      return v0_;
    }
  }
  return dc_;
}

Voltage Stimulus::dc_value() const {
  switch (kind_) {
    case Kind::kDc: return dc_;
    case Kind::kPwl: return points_.front().second;
    case Kind::kPulse: return v0_;
  }
  return dc_;
}

double Waveform::at(Duration t) const {
  PPATC_EXPECT(!time.empty(), "empty waveform");
  if (t <= time.front()) return value.front();
  if (t >= time.back()) return value.back();
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - time.begin());
  const double t0 = time[i - 1].base();
  const double t1 = time[i].base();
  const double f = (t.base() - t0) / (t1 - t0);
  return value[i - 1] + f * (value[i] - value[i - 1]);
}

double Waveform::final() const {
  PPATC_EXPECT(!value.empty(), "empty waveform");
  return value.back();
}

double Waveform::minimum() const {
  PPATC_EXPECT(!value.empty(), "empty waveform");
  return *std::min_element(value.begin(), value.end());
}

double Waveform::maximum() const {
  PPATC_EXPECT(!value.empty(), "empty waveform");
  return *std::max_element(value.begin(), value.end());
}

Duration cross_time(const Waveform& w, double threshold, Edge edge, int occurrence) {
  PPATC_EXPECT(occurrence >= 1, "occurrence is 1-based");
  int seen = 0;
  for (std::size_t i = 1; i < w.value.size(); ++i) {
    const double a = w.value[i - 1];
    const double b = w.value[i];
    const bool rising = a < threshold && b >= threshold;
    const bool falling = a > threshold && b <= threshold;
    const bool hit = (edge == Edge::kRise && rising) || (edge == Edge::kFall && falling) ||
                     (edge == Edge::kEither && (rising || falling));
    if (!hit) continue;
    if (++seen == occurrence) {
      const double f = (threshold - a) / (b - a);
      const double t0 = w.time[i - 1].base();
      const double t1 = w.time[i].base();
      return units::seconds(t0 + f * (t1 - t0));
    }
  }
  return units::seconds(-1.0);
}

double integrate(const Waveform& w) {
  double acc = 0.0;
  for (std::size_t i = 1; i < w.value.size(); ++i) {
    acc += 0.5 * (w.value[i] + w.value[i - 1]) * (w.time[i].base() - w.time[i - 1].base());
  }
  return acc;
}

}  // namespace ppatc::spice
