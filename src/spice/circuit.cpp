#include "ppatc/spice/circuit.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::spice {

Circuit::Circuit() {
  names_.push_back("0");
  ids_.emplace("0", kGroundNode);
  ids_.emplace("gnd", kGroundNode);
}

NodeId Circuit::node(const std::string& name) {
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  const NodeId id = names_.size();
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = ids_.find(name);
  PPATC_EXPECT(it != ids_.end(), "unknown node: " + name);
  return it->second;
}

bool Circuit::has_node(const std::string& name) const { return ids_.contains(name); }

const std::string& Circuit::node_name(NodeId id) const {
  PPATC_EXPECT(id < names_.size(), "node id out of range");
  return names_[id];
}

void Circuit::add_resistor(const std::string& a, const std::string& b, double ohms) {
  PPATC_EXPECT(ohms > 0.0, "resistance must be positive");
  resistors_.push_back({node(a), node(b), ohms});
}

void Circuit::add_capacitor(const std::string& a, const std::string& b, Capacitance c) {
  PPATC_EXPECT(units::in_farads(c) > 0.0, "capacitance must be positive");
  capacitors_.push_back({node(a), node(b), units::in_farads(c), 0.0, false});
}

void Circuit::add_capacitor_ic(const std::string& a, const std::string& b, Capacitance c,
                               Voltage initial) {
  PPATC_EXPECT(units::in_farads(c) > 0.0, "capacitance must be positive");
  capacitors_.push_back({node(a), node(b), units::in_farads(c), units::in_volts(initial), true});
}

std::size_t Circuit::add_vsource(const std::string& name, const std::string& pos,
                                 const std::string& neg, Stimulus stimulus) {
  for (const auto& v : vsources_) {
    PPATC_EXPECT(v.name != name, "duplicate voltage source name: " + name);
  }
  vsources_.push_back({name, node(pos), node(neg), std::move(stimulus)});
  return vsources_.size() - 1;
}

void Circuit::add_fet(const std::string& name, const device::VsParams& card, Length width,
                      const std::string& drain, const std::string& gate, const std::string& source) {
  fets_.push_back({name, device::VirtualSourceFet{card, width}, node(drain), node(gate), node(source)});
}

std::size_t Circuit::vsource_index(const std::string& name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    if (vsources_[i].name == name) return i;
  }
  PPATC_EXPECT(false, "unknown voltage source: " + name);
  return 0;  // unreachable
}

}  // namespace ppatc::spice
