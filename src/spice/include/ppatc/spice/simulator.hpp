// ppatc: modified-nodal-analysis (MNA) simulator.
//
// Solves DC operating points and fixed-step backward-Euler transients with
// Newton–Raphson linearization of the FET elements. The system unknowns are
// the non-ground node voltages followed by one branch current per independent
// voltage source. The Jacobian is factored by the sparse CSR solver
// (ppatc/spice/sparse.hpp) by default: the sparsity pattern and pivot program
// are built once per topology and replayed across all Newton iterations,
// transient steps, and continuation solves, bit-identically to the dense
// partially-pivoted LU oracle that remains available via
// `SimOptions::solver = LinearSolverKind::kDense`.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppatc/spice/circuit.hpp"

namespace ppatc::spice {

/// Thrown when every continuation strategy (gmin stepping, source stepping,
/// transient step halving) fails to converge. The message carries the solve
/// phase, time point, iteration budget, and the node with the worst residual;
/// the `spice.newton_nonconvergence` metrics counter records each failed
/// Newton attempt (see ppatc/obs/metrics.hpp).
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Linear-solver backend for the Newton iterations. Both produce bit-identical
/// results; the dense path is the oracle the sparse replay is verified against.
enum class LinearSolverKind {
  kSparse,  ///< CSR replay with symbolic/pivot reuse across solves (default)
  kDense,   ///< original dense partially-pivoted LU
};

struct SimOptions {
  double abstol = 1e-12;       ///< residual current tolerance (A)
  double reltol = 1e-6;        ///< Newton voltage-update tolerance (V)
  int max_newton_iterations = 200;
  double gmin = 1e-12;         ///< conductance to ground on every node (S)
  int gmin_steps = 8;          ///< gmin-stepping ladder length for hard DC points
  LinearSolverKind solver = LinearSolverKind::kSparse;
};

/// DC operating point: node voltages + source branch currents.
struct DcResult {
  std::vector<double> node_volts;       ///< indexed by NodeId (ground = 0 V)
  std::vector<double> source_currents;  ///< indexed by vsource order (A, out of +)
  int newton_iterations = 0;
};

/// Transient run: per-node and per-source sampled waveforms.
class TransientResult {
 public:
  TransientResult(const Circuit& circuit, std::vector<Duration> time,
                  std::vector<std::vector<double>> node_volts,
                  std::vector<std::vector<double>> source_currents);

  [[nodiscard]] Waveform node(const std::string& name) const;
  [[nodiscard]] Waveform source_current(const std::string& vsource_name) const;
  /// Energy delivered by a source over the run: integral of V(t)*I(t) dt.
  [[nodiscard]] Energy source_energy(const std::string& vsource_name) const;
  [[nodiscard]] std::size_t sample_count() const { return time_.size(); }
  [[nodiscard]] const std::vector<Duration>& time() const { return time_; }

 private:
  const Circuit* circuit_;
  std::vector<Duration> time_;
  std::vector<std::vector<double>> node_volts_;       // [sample][node]
  std::vector<std::vector<double>> source_currents_;  // [sample][source]
};

class Simulator {
 public:
  explicit Simulator(const Circuit& circuit, SimOptions options = {});
  ~Simulator();

  /// DC operating point at t = 0 stimulus values. Uses gmin stepping when the
  /// plain Newton solve fails. Throws ConvergenceError (with node/iteration
  /// context) if every continuation strategy diverges; the optional is kept
  /// for API stability and is always engaged on return.
  [[nodiscard]] std::optional<DcResult> dc_operating_point() const;

  /// Fixed-step backward-Euler transient from 0 to `stop`. If `from_ics` is
  /// true, capacitors with declared ICs start from them and all other state
  /// starts from the DC operating point of the remaining network; otherwise
  /// the run starts from the full DC operating point. Throws ConvergenceError
  /// (with time/node context) when a step diverges even after halving; the
  /// optional is kept for API stability and is always engaged on return.
  [[nodiscard]] std::optional<TransientResult> transient(Duration stop, Duration step,
                                                         bool from_ics = false) const;

 private:
  // Per-instance solver state (assembled system, workspaces, and the sparse
  // backend's pivot program), built lazily and reused across dc/transient
  // calls so symbolic work happens once per Simulator. Because the const
  // methods share this cache, concurrent calls on ONE instance are not
  // supported — create a Simulator per thread; solvers for the same topology
  // still share the process-wide interned pattern and seed program.
  struct SolverState;
  [[nodiscard]] SolverState& state() const;

  const Circuit& circuit_;
  SimOptions options_;
  mutable std::unique_ptr<SolverState> state_;
};

}  // namespace ppatc::spice
