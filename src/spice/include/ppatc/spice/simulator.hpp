// ppatc: modified-nodal-analysis (MNA) simulator.
//
// Solves DC operating points and fixed-step backward-Euler transients with
// Newton–Raphson linearization of the FET elements. The system unknowns are
// the non-ground node voltages followed by one branch current per independent
// voltage source. The Jacobian is assembled densely and factored with
// partially-pivoted LU — the eDRAM characterization circuits in this repo are
// tens of nodes, far below the crossover where sparse methods pay off.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppatc/spice/circuit.hpp"

namespace ppatc::spice {

/// Thrown when every continuation strategy (gmin stepping, source stepping,
/// transient step halving) fails to converge. The message carries the solve
/// phase, time point, iteration budget, and the node with the worst residual;
/// the `spice.newton_nonconvergence` metrics counter records each failed
/// Newton attempt (see ppatc/obs/metrics.hpp).
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SimOptions {
  double abstol = 1e-12;       ///< residual current tolerance (A)
  double reltol = 1e-6;        ///< Newton voltage-update tolerance (V)
  int max_newton_iterations = 200;
  double gmin = 1e-12;         ///< conductance to ground on every node (S)
  int gmin_steps = 8;          ///< gmin-stepping ladder length for hard DC points
};

/// DC operating point: node voltages + source branch currents.
struct DcResult {
  std::vector<double> node_volts;       ///< indexed by NodeId (ground = 0 V)
  std::vector<double> source_currents;  ///< indexed by vsource order (A, out of +)
  int newton_iterations = 0;
};

/// Transient run: per-node and per-source sampled waveforms.
class TransientResult {
 public:
  TransientResult(const Circuit& circuit, std::vector<Duration> time,
                  std::vector<std::vector<double>> node_volts,
                  std::vector<std::vector<double>> source_currents);

  [[nodiscard]] Waveform node(const std::string& name) const;
  [[nodiscard]] Waveform source_current(const std::string& vsource_name) const;
  /// Energy delivered by a source over the run: integral of V(t)*I(t) dt.
  [[nodiscard]] Energy source_energy(const std::string& vsource_name) const;
  [[nodiscard]] std::size_t sample_count() const { return time_.size(); }
  [[nodiscard]] const std::vector<Duration>& time() const { return time_; }

 private:
  const Circuit* circuit_;
  std::vector<Duration> time_;
  std::vector<std::vector<double>> node_volts_;       // [sample][node]
  std::vector<std::vector<double>> source_currents_;  // [sample][source]
};

class Simulator {
 public:
  explicit Simulator(const Circuit& circuit, SimOptions options = {});

  /// DC operating point at t = 0 stimulus values. Uses gmin stepping when the
  /// plain Newton solve fails. Throws ConvergenceError (with node/iteration
  /// context) if every continuation strategy diverges; the optional is kept
  /// for API stability and is always engaged on return.
  [[nodiscard]] std::optional<DcResult> dc_operating_point() const;

  /// Fixed-step backward-Euler transient from 0 to `stop`. If `from_ics` is
  /// true, capacitors with declared ICs start from them and all other state
  /// starts from the DC operating point of the remaining network; otherwise
  /// the run starts from the full DC operating point. Throws ConvergenceError
  /// (with time/node context) when a step diverges even after halving; the
  /// optional is kept for API stability and is always engaged on return.
  [[nodiscard]] std::optional<TransientResult> transient(Duration stop, Duration step,
                                                         bool from_ics = false) const;

 private:
  const Circuit& circuit_;
  SimOptions options_;
};

}  // namespace ppatc::spice
