// ppatc: source stimulus descriptions and sampled waveforms.
#pragma once

#include <vector>

#include "ppatc/common/units.hpp"

namespace ppatc::spice {

/// Stimulus for an independent voltage source: DC, piecewise-linear, or a
/// periodic pulse (mirroring SPICE's PULSE card).
class Stimulus {
 public:
  /// Constant value for all time.
  [[nodiscard]] static Stimulus dc(Voltage level);

  /// Piecewise-linear; values are held flat before the first and after the
  /// last breakpoint. Breakpoints must be strictly increasing in time.
  [[nodiscard]] static Stimulus pwl(std::vector<std::pair<Duration, Voltage>> points);

  /// SPICE-style PULSE(v0 v1 delay rise fall width period).
  [[nodiscard]] static Stimulus pulse(Voltage v0, Voltage v1, Duration delay, Duration rise,
                                      Duration fall, Duration width, Duration period);

  [[nodiscard]] Voltage at(Duration t) const;

  /// Value at t -> infinity for DC operating point (pulse sources report v0,
  /// PWL sources report their first value — SPICE convention: the t=0 value).
  [[nodiscard]] Voltage dc_value() const;

 private:
  enum class Kind { kDc, kPwl, kPulse };
  Kind kind_ = Kind::kDc;
  Voltage dc_{};
  std::vector<std::pair<Duration, Voltage>> points_;
  Voltage v0_{}, v1_{};
  Duration delay_{}, rise_{}, fall_{}, width_{}, period_{};
};

/// A sampled waveform (one node or branch over a transient run).
struct Waveform {
  std::vector<Duration> time;
  std::vector<double> value;  ///< volts (node) or amperes (branch)

  [[nodiscard]] double at(Duration t) const;  ///< linear interpolation
  [[nodiscard]] double final() const;
  [[nodiscard]] double minimum() const;
  [[nodiscard]] double maximum() const;
};

enum class Edge { kRise, kFall, kEither };

/// Time at which the waveform crosses `threshold` (volts) for the n-th time
/// (1-based) with the given edge direction; returns negative duration if the
/// crossing never happens.
[[nodiscard]] Duration cross_time(const Waveform& w, double threshold, Edge edge, int occurrence = 1);

/// Trapezoidal integral of value over time (e.g. charge from a current
/// waveform).
[[nodiscard]] double integrate(const Waveform& w);

}  // namespace ppatc::spice
