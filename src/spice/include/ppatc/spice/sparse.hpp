// ppatc: sparse MNA linear solver with symbolic-factorization reuse.
//
// The characterization decks assemble the same Jacobian structure thousands
// of times (Newton iterations x transient steps x continuation solves), so
// the expensive parts of each solve — discovering the sparsity pattern,
// choosing pivots, and sweeping O(n^2) mostly-zero entries — are hoisted out
// of the inner loop:
//
//  * `MnaPattern` captures the structural nonzeros of a circuit's Jacobian
//    once. Topologically identical circuits (the same bit-cell deck at
//    different corners) intern to one shared instance via
//    `intern_mna_pattern`.
//  * The first numeric solve runs the dense partially-pivoted oracle
//    (`DenseMatrix`, the original backend, kept verbatim) while recording its
//    pivot choices, then compiles an `EliminationProgram`: flat slot-level
//    operation lists covering the structural pattern plus the fill generated
//    by that pivot sequence.
//  * Subsequent solves replay the program in O(nnz) work per step, verifying
//    at every step that the recorded pivot is still the partial-pivot winner,
//    and fall back to re-discovery when the values drift enough to change a
//    pivot.
//
// Replay is bit-identical to the dense oracle: dense elimination applies
// `a[r][c] -= m * a[k][c]` at every column, but columns outside the
// structural+fill union hold exactly +0.0 in the pivot row, so those updates
// are floating-point no-ops; the program performs the surviving updates with
// the same pivot order and the same ascending-index summation order, hence
// the same rounding. test_spice_sparse.cpp asserts bitwise equality over
// every deck topology the reproduction benches use.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ppatc::spice {

/// Dense row-major matrix with partially-pivoted LU solve — the original MNA
/// backend, kept as the bit-exactness oracle and as the discovery engine for
/// the sparse replay path. The characterization circuits are O(10..100)
/// unknowns, so an occasional dense solve is affordable.
class DenseMatrix {
 public:
  explicit DenseMatrix(std::size_t n) : n_{n}, a_(n * n, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }
  void clear() { std::fill(a_.begin(), a_.end(), 0.0); }
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Solves A x = b in place; returns false if the matrix is singular (b is
  /// then partially updated). When `pivot_out` is non-null it receives the
  /// chosen pivot position for every elimination step, in order.
  bool solve(std::vector<double>& b, std::vector<std::uint32_t>* pivot_out = nullptr);

 private:
  std::size_t n_;
  std::vector<double> a_;
};

/// Row-major bitset describing which (row, column) entries of an n x n matrix
/// may be nonzero, plus CSR row offsets so a set bit maps to its value-array
/// slot with one popcount-rank scan over the row words.
struct SlotLayout {
  std::size_t n = 0;
  std::size_t words_per_row = 0;
  std::vector<std::uint64_t> bits;       ///< n * words_per_row, row-major
  std::vector<std::uint32_t> row_begin;  ///< n + 1 CSR offsets into slot space
  /// Dense n x n (row, col) -> slot table, filled by index(). Stamping is the
  /// per-Newton-iteration inner loop, so the popcount-rank scan is paid once
  /// at index() time instead of on every add(); 4 bytes per matrix entry is
  /// nothing at MNA sizes.
  std::vector<std::uint32_t> slot_of;

  [[nodiscard]] bool test(std::size_t row, std::size_t col) const {
    return ((bits[row * words_per_row + (col >> 6)] >> (col & 63u)) & 1u) != 0;
  }
  void set(std::size_t row, std::size_t col) {
    bits[row * words_per_row + (col >> 6)] |= std::uint64_t{1} << (col & 63u);
  }
  /// Slot index of a set (row, col) bit; unspecified if the bit is clear.
  [[nodiscard]] std::uint32_t slot(std::size_t row, std::size_t col) const {
    return slot_of[row * n + col];
  }
  [[nodiscard]] std::uint32_t nonzeros() const { return row_begin.empty() ? 0u : row_begin[n]; }

  /// (Re)computes row_begin and slot_of from bits.
  void index();
};

/// Immutable structural nonzero pattern of an assembled MNA Jacobian. Built
/// once per circuit topology by a recording assembly pass; interning returns
/// a canonical shared instance so concurrent corners of the same deck share
/// one structure — and through it one seed pivot program.
class MnaPattern {
 public:
  class Builder {
   public:
    explicit Builder(std::size_t n);
    void add(std::size_t row, std::size_t col) { layout_.set(row, col); }
    [[nodiscard]] MnaPattern build() &&;

   private:
    SlotLayout layout_;
  };

  [[nodiscard]] std::size_t size() const { return layout_.n; }
  [[nodiscard]] const SlotLayout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] bool same_structure(const MnaPattern& other) const;

 private:
  MnaPattern() = default;

  SlotLayout layout_;
  std::uint64_t fingerprint_ = 0;
};

/// Compiled elimination schedule for one (pattern, pivot sequence) pair: the
/// union layout (structural nonzeros plus fill) and flat per-step operation
/// lists replaying the dense algorithm over union slots only. Immutable and
/// shared between solvers once built.
struct EliminationProgram {
  SlotLayout layout;  ///< structural pattern ∪ fill for the recorded pivots

  struct Candidate {
    std::uint32_t slot;  ///< value slot of (row currently at `pos`, column k)
    std::uint32_t pos;   ///< pre-swap row position within the step
  };
  struct Pair {
    std::uint32_t dst;  ///< target-row slot receiving dst -= m * src
    std::uint32_t src;  ///< pivot-row slot
  };
  struct Target {
    std::uint32_t m_slot;  ///< (target row, column k): numerator of m
    std::uint32_t b_pos;   ///< right-hand-side position of the target row
    std::uint32_t pair_begin = 0;
    std::uint32_t pair_end = 0;
  };
  struct Step {
    std::uint32_t pivot_pos;   ///< recorded partial-pivot winner (pre-swap)
    std::uint32_t pivot_slot;  ///< (pivot row, column k) — the divisor
    std::uint32_t cand_begin, cand_end;
    std::uint32_t target_begin, target_end;
  };
  struct BackTerm {
    std::uint32_t slot;  ///< U entry (row at position k, column `col`)
    std::uint32_t col;
  };
  struct BackRow {
    std::uint32_t diag_slot;
    std::uint32_t term_begin, term_end;
  };

  std::vector<Step> steps;  ///< one per column k, ascending
  std::vector<Candidate> cands;
  std::vector<Target> targets;
  std::vector<Pair> pairs;
  std::vector<BackRow> back;  ///< indexed by position k, applied descending
  std::vector<BackTerm> back_terms;
};

/// Interns a pattern: returns the canonical shared instance for this
/// structure, registering `pattern` if the structure is new. Thread-safe.
[[nodiscard]] std::shared_ptr<const MnaPattern> intern_mna_pattern(MnaPattern pattern);

/// Last published elimination program for this structure, or null. Seeding a
/// fresh solver with another corner's program is sound because replay
/// verifies every pivot before trusting it. Thread-safe.
[[nodiscard]] std::shared_ptr<const EliminationProgram> cached_elimination_program(
    const MnaPattern& pattern);

/// Publishes `program` as the seed for this structure unless one is already
/// published (first writer wins). Thread-safe.
void seed_elimination_program(const MnaPattern& pattern,
                              std::shared_ptr<const EliminationProgram> program);

/// Number of distinct structures interned so far (diagnostics and tests).
[[nodiscard]] std::size_t mna_pattern_cache_size();

/// Sparse LU solver producing bit-identical results to `DenseMatrix::solve`.
/// Per solve: `begin_assembly()`, `add(...)` stamps (which must hit pattern
/// positions only), then `factor_solve(b)`. Instances are not thread-safe —
/// create one per thread; independent solvers over the same topology still
/// share the interned pattern and the seed program.
class SparseLuSolver {
 public:
  explicit SparseLuSolver(std::shared_ptr<const MnaPattern> pattern);

  void begin_assembly() { std::fill(vals_.begin(), vals_.end(), 0.0); }
  void add(std::size_t row, std::size_t col, double value) {
    vals_[active_layout().slot(row, col)] += value;
  }

  /// Factors and solves in place; returns false on a singular matrix (b is
  /// then partially updated, exactly as the dense oracle leaves it).
  [[nodiscard]] bool factor_solve(std::vector<double>& b);

  /// Dense-oracle discovery runs performed by this instance (the first solve
  /// plus one per pivot drift). Monotone; useful for asserting reuse.
  [[nodiscard]] std::uint64_t discoveries() const { return discoveries_; }

  [[nodiscard]] const MnaPattern& pattern() const { return *pattern_; }

 private:
  enum class Replay { kOk, kSingular, kPivotDrift };

  [[nodiscard]] const SlotLayout& active_layout() const {
    return program_ ? program_->layout : pattern_->layout();
  }
  void adopt(std::shared_ptr<const EliminationProgram> program);
  bool discover(std::vector<double>& b);
  [[nodiscard]] Replay replay(std::vector<double>& b);

  std::shared_ptr<const MnaPattern> pattern_;
  std::shared_ptr<const EliminationProgram> program_;
  std::vector<double> vals_;    ///< stamped values, indexed by active-layout slot
  std::vector<double> work_;    ///< factorization workspace (copy of vals_)
  std::vector<double> b_work_;  ///< right-hand-side workspace for replay
  std::uint64_t discoveries_ = 0;
};

}  // namespace ppatc::spice
