// ppatc: circuit netlist.
//
// A Circuit is a flat netlist of resistors, capacitors, independent voltage
// sources, and virtual-source FETs, over named nodes. Node "0" (alias "gnd")
// is ground. The netlist is immutable once handed to the Simulator.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ppatc/common/units.hpp"
#include "ppatc/device/vs_model.hpp"
#include "ppatc/spice/waveform.hpp"

namespace ppatc::spice {

/// Index of a circuit node; kGroundNode is ground.
using NodeId = std::size_t;
inline constexpr NodeId kGroundNode = 0;

struct ResistorElem {
  NodeId a, b;
  double ohms;
};

struct CapacitorElem {
  NodeId a, b;
  double farads;
  double initial_volts = 0.0;  ///< used when the transient starts from ICs
  bool has_initial = false;
};

struct VSourceElem {
  std::string name;
  NodeId pos, neg;
  Stimulus stimulus;
};

struct FetElem {
  std::string name;
  device::VirtualSourceFet fet;
  NodeId drain, gate, source;
};

class Circuit {
 public:
  Circuit();

  /// Returns the node id for `name`, creating it on first use.
  NodeId node(const std::string& name);
  /// Looks up an existing node; throws ContractViolation if absent.
  [[nodiscard]] NodeId find_node(const std::string& name) const;
  [[nodiscard]] bool has_node(const std::string& name) const;
  [[nodiscard]] std::size_t node_count() const { return names_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  void add_resistor(const std::string& a, const std::string& b, double ohms);
  void add_capacitor(const std::string& a, const std::string& b, Capacitance c);
  void add_capacitor_ic(const std::string& a, const std::string& b, Capacitance c, Voltage initial);
  /// Returns the source index (for reading its branch current later).
  std::size_t add_vsource(const std::string& name, const std::string& pos, const std::string& neg,
                          Stimulus stimulus);
  void add_fet(const std::string& name, const device::VsParams& card, Length width,
               const std::string& drain, const std::string& gate, const std::string& source);
  /// Compat shim: drawn width given as raw microns.
  // ppatc-lint: allow(unit-typed-api) — thin double compat shim for existing call sites
  void add_fet(const std::string& name, const device::VsParams& card, double width_um,
               const std::string& drain, const std::string& gate, const std::string& source) {
    add_fet(name, card, units::micrometres(width_um), drain, gate, source);
  }

  [[nodiscard]] const std::vector<ResistorElem>& resistors() const { return resistors_; }
  [[nodiscard]] const std::vector<CapacitorElem>& capacitors() const { return capacitors_; }
  [[nodiscard]] const std::vector<VSourceElem>& vsources() const { return vsources_; }
  [[nodiscard]] const std::vector<FetElem>& fets() const { return fets_; }

  [[nodiscard]] std::size_t vsource_index(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<ResistorElem> resistors_;
  std::vector<CapacitorElem> capacitors_;
  std::vector<VSourceElem> vsources_;
  std::vector<FetElem> fets_;
};

}  // namespace ppatc::spice
