#include "ppatc/spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::spice {

namespace {

// Solver metrics: iteration and step counts are deterministic for a fixed
// circuit + options, so tests assert their exact values (test_obs.cpp).
obs::Counter& newton_iterations_counter() {
  static obs::Counter& c = obs::counter("spice.newton_iterations");
  return c;
}
obs::Counter& newton_solves_counter() {
  static obs::Counter& c = obs::counter("spice.newton_solves");
  return c;
}
obs::Counter& nonconvergence_counter() {
  static obs::Counter& c = obs::counter("spice.newton_nonconvergence");
  return c;
}
obs::Counter& transient_steps_counter() {
  static obs::Counter& c = obs::counter("spice.transient_steps");
  return c;
}

// Dense row-major matrix with partially-pivoted LU solve; the characterization
// circuits are O(10..100) unknowns, well below the sparse crossover.
class DenseMatrix {
 public:
  explicit DenseMatrix(std::size_t n) : n_{n}, a_(n * n, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }
  void clear() { std::fill(a_.begin(), a_.end(), 0.0); }
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Solves A x = b in place; returns false if the matrix is singular.
  bool solve(std::vector<double>& b) {
    std::vector<std::size_t> perm(n_);
    for (std::size_t i = 0; i < n_; ++i) perm[i] = i;
    for (std::size_t k = 0; k < n_; ++k) {
      // partial pivot
      std::size_t piv = k;
      double best = std::abs(at(k, k));
      for (std::size_t r = k + 1; r < n_; ++r) {
        if (std::abs(at(r, k)) > best) {
          best = std::abs(at(r, k));
          piv = r;
        }
      }
      if (best < 1e-300) return false;
      if (piv != k) {
        for (std::size_t c = 0; c < n_; ++c) std::swap(at(k, c), at(piv, c));
        std::swap(b[k], b[piv]);
      }
      const double d = at(k, k);
      for (std::size_t r = k + 1; r < n_; ++r) {
        const double m = at(r, k) / d;
        if (m == 0.0) continue;
        at(r, k) = 0.0;
        for (std::size_t c = k + 1; c < n_; ++c) at(r, c) -= m * at(k, c);
        b[r] -= m * b[k];
      }
    }
    for (std::size_t k = n_; k-- > 0;) {
      double s = b[k];
      for (std::size_t c = k + 1; c < n_; ++c) s -= at(k, c) * b[c];
      b[k] = s / at(k, k);
    }
    return true;
  }

 private:
  std::size_t n_;
  std::vector<double> a_;
};

struct AssemblyContext {
  const Circuit* circuit;
  SimOptions options;
  double gmin;                 // current gmin (may be larger during stepping)
  double source_scale = 1.0;   // source-stepping continuation factor
  bool include_caps = false;   // transient vs DC
  double dt = 0.0;
  double time = 0.0;
  const std::vector<double>* cap_prev = nullptr;  // per-capacitor V(a)-V(b) at t-dt
};

// Unknown layout: x[0..N-2] are voltages of nodes 1..N-1; x[N-1..] are source
// branch currents (current delivered out of the + terminal).
class System {
 public:
  explicit System(const Circuit& c)
      : circuit_{c},
        n_nodes_{c.node_count()},
        n_unknowns_{(c.node_count() - 1) + c.vsources().size()} {}

  [[nodiscard]] std::size_t unknowns() const { return n_unknowns_; }
  [[nodiscard]] std::size_t voltage_index(NodeId n) const { return n - 1; }
  [[nodiscard]] std::size_t branch_index(std::size_t src) const { return (n_nodes_ - 1) + src; }

  [[nodiscard]] double volt(const std::vector<double>& x, NodeId n) const {
    return n == kGroundNode ? 0.0 : x[voltage_index(n)];
  }

  // Assembles residual f(x) and Jacobian J(x).
  void assemble(const AssemblyContext& ctx, const std::vector<double>& x, std::vector<double>& f,
                DenseMatrix& jac) const {
    std::fill(f.begin(), f.end(), 0.0);
    jac.clear();

    auto stamp_conductance = [&](NodeId a, NodeId b, double g, double extra_current) {
      // current a->b: g*(va-vb) + extra_current
      const double i = g * (volt(x, a) - volt(x, b)) + extra_current;
      if (a != kGroundNode) {
        f[voltage_index(a)] += i;
        jac.at(voltage_index(a), voltage_index(a)) += g;
        if (b != kGroundNode) jac.at(voltage_index(a), voltage_index(b)) -= g;
      }
      if (b != kGroundNode) {
        f[voltage_index(b)] -= i;
        jac.at(voltage_index(b), voltage_index(b)) += g;
        if (a != kGroundNode) jac.at(voltage_index(b), voltage_index(a)) -= g;
      }
    };

    for (const auto& r : circuit_.resistors()) stamp_conductance(r.a, r.b, 1.0 / r.ohms, 0.0);

    if (ctx.include_caps) {
      const auto& caps = circuit_.capacitors();
      for (std::size_t i = 0; i < caps.size(); ++i) {
        const auto& c = caps[i];
        const double g = c.farads / ctx.dt;
        const double prev = (*ctx.cap_prev)[i];
        // Backward Euler companion: i = C/dt * (v_ab - v_ab_prev)
        stamp_conductance(c.a, c.b, g, -g * prev);
      }
    }

    // gmin from every non-ground node to ground.
    for (NodeId n = 1; n < n_nodes_; ++n) {
      f[voltage_index(n)] += ctx.gmin * volt(x, n);
      jac.at(voltage_index(n), voltage_index(n)) += ctx.gmin;
    }

    // FETs: drain current Id flows drain -> source; numerical partials.
    for (const auto& fe : circuit_.fets()) {
      const double vd = volt(x, fe.drain);
      const double vg = volt(x, fe.gate);
      const double vs = volt(x, fe.source);
      auto id_at = [&](double d, double g, double s) {
        return units::in_amperes(
            fe.fet.drain_current(units::volts(g - s), units::volts(d - s)));
      };
      const double id = id_at(vd, vg, vs);
      constexpr double h = 1e-5;
      const double did_dvd = (id_at(vd + h, vg, vs) - id_at(vd - h, vg, vs)) / (2 * h);
      const double did_dvg = (id_at(vd, vg + h, vs) - id_at(vd, vg - h, vs)) / (2 * h);
      const double did_dvs = (id_at(vd, vg, vs + h) - id_at(vd, vg, vs - h)) / (2 * h);

      auto add_row = [&](NodeId node, double sign) {
        if (node == kGroundNode) return;
        const std::size_t r = voltage_index(node);
        f[r] += sign * id;
        if (fe.drain != kGroundNode) jac.at(r, voltage_index(fe.drain)) += sign * did_dvd;
        if (fe.gate != kGroundNode) jac.at(r, voltage_index(fe.gate)) += sign * did_dvg;
        if (fe.source != kGroundNode) jac.at(r, voltage_index(fe.source)) += sign * did_dvs;
      };
      add_row(fe.drain, +1.0);
      add_row(fe.source, -1.0);
    }

    // Voltage sources: unknown branch current i (delivered out of +).
    const auto& sources = circuit_.vsources();
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const auto& src = sources[s];
      const std::size_t bi = branch_index(s);
      const double i = x[bi];
      if (src.pos != kGroundNode) {
        f[voltage_index(src.pos)] -= i;  // injected into node
        jac.at(voltage_index(src.pos), bi) -= 1.0;
      }
      if (src.neg != kGroundNode) {
        f[voltage_index(src.neg)] += i;
        jac.at(voltage_index(src.neg), bi) += 1.0;
      }
      const double target =
          ctx.source_scale * units::in_volts(src.stimulus.at(units::seconds(ctx.time)));
      f[bi] = volt(x, src.pos) - volt(x, src.neg) - target;
      if (src.pos != kGroundNode) jac.at(bi, voltage_index(src.pos)) += 1.0;
      if (src.neg != kGroundNode) jac.at(bi, voltage_index(src.neg)) -= 1.0;
    }
  }

  /// Context of the most recent failed Newton solve, for diagnostics.
  struct NewtonDiag {
    int iterations = 0;           ///< iterations executed before giving up
    double max_residual = 0.0;    ///< max |f| over the voltage rows (A)
    NodeId worst_node = kGroundNode;  ///< node carrying max_residual
    const char* reason = "";      ///< "singular Jacobian" / "non-finite solution" / "iteration limit"
  };

  [[nodiscard]] const NewtonDiag& last_diag() const { return diag_; }

  /// Formats last_diag() with node-name context for a ConvergenceError.
  [[nodiscard]] std::string diag_message() const {
    std::ostringstream os;
    os << diag_.reason << " after " << diag_.iterations << " Newton iteration(s)";
    if (diag_.worst_node != kGroundNode) {
      os << "; worst residual " << diag_.max_residual << " A at node '"
         << circuit_.node_name(diag_.worst_node) << "'";
    }
    return os.str();
  }

  /// Newton–Raphson from the given initial guess; returns iterations used or
  /// -1 on divergence (filling last_diag()). x is updated in place.
  int newton(const AssemblyContext& ctx, std::vector<double>& x) const {
    std::vector<double> f(n_unknowns_);
    DenseMatrix jac(n_unknowns_);
    const std::size_t nv = n_nodes_ - 1;
    newton_solves_counter().increment();
    int result = -1;
    int it = 1;
    diag_ = NewtonDiag{};
    for (; it <= ctx.options.max_newton_iterations; ++it) {
      assemble(ctx, x, f, jac);
      // Record the worst voltage-row residual before the solve mutates f's
      // copy, so a failure at this iteration reports where the circuit is
      // furthest from KCL.
      diag_.max_residual = 0.0;
      diag_.worst_node = kGroundNode;
      for (std::size_t i = 0; i < nv; ++i) {
        if (std::abs(f[i]) > diag_.max_residual) {
          diag_.max_residual = std::abs(f[i]);
          diag_.worst_node = i + 1;
        }
      }
      std::vector<double> dx = f;  // solve J dx = f, then x -= dx
      if (!jac.solve(dx)) {
        diag_.reason = "singular Jacobian";
        break;
      }
      // Damp voltage updates to aid FET convergence.
      double vmax = 0.0;
      for (std::size_t i = 0; i < nv; ++i) vmax = std::max(vmax, std::abs(dx[i]));
      const double damp = vmax > 0.4 ? 0.4 / vmax : 1.0;
      for (std::size_t i = 0; i < n_unknowns_; ++i) x[i] -= damp * dx[i];
      if (!std::all_of(x.begin(), x.end(), [](double v) { return std::isfinite(v); })) {
        diag_.reason = "non-finite solution";
        break;
      }
      double dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) dv = std::max(dv, std::abs(dx[i]));
      double res = 0.0;
      for (std::size_t i = 0; i < nv; ++i) res = std::max(res, std::abs(f[i]));
      if (damp == 1.0 && dv < ctx.options.reltol && res < ctx.options.abstol * 1e3) {
        result = it;
        break;
      }
    }
    const int executed = result > 0 ? result : std::min(it, ctx.options.max_newton_iterations);
    newton_iterations_counter().add(static_cast<std::uint64_t>(std::max(executed, 0)));
    if (result < 0) {
      diag_.iterations = std::max(executed, 0);
      if (*diag_.reason == '\0') diag_.reason = "iteration limit";
      nonconvergence_counter().increment();
    }
    return result;
  }

 private:
  const Circuit& circuit_;
  std::size_t n_nodes_;
  std::size_t n_unknowns_;
  mutable NewtonDiag diag_;
};

}  // namespace

TransientResult::TransientResult(const Circuit& circuit, std::vector<Duration> time,
                                 std::vector<std::vector<double>> node_volts,
                                 std::vector<std::vector<double>> source_currents)
    : circuit_{&circuit},
      time_{std::move(time)},
      node_volts_{std::move(node_volts)},
      source_currents_{std::move(source_currents)} {}

Waveform TransientResult::node(const std::string& name) const {
  const NodeId id = circuit_->find_node(name);
  Waveform w;
  w.time = time_;
  w.value.reserve(time_.size());
  for (const auto& sample : node_volts_) w.value.push_back(id == kGroundNode ? 0.0 : sample[id - 1]);
  return w;
}

Waveform TransientResult::source_current(const std::string& vsource_name) const {
  const std::size_t idx = circuit_->vsource_index(vsource_name);
  Waveform w;
  w.time = time_;
  w.value.reserve(time_.size());
  for (const auto& sample : source_currents_) w.value.push_back(sample[idx]);
  return w;
}

Energy TransientResult::source_energy(const std::string& vsource_name) const {
  const std::size_t idx = circuit_->vsource_index(vsource_name);
  const auto& src = circuit_->vsources()[idx];
  double acc = 0.0;
  for (std::size_t i = 1; i < time_.size(); ++i) {
    auto power_at = [&](std::size_t k) {
      const double vp = src.pos == kGroundNode ? 0.0 : node_volts_[k][src.pos - 1];
      const double vn = src.neg == kGroundNode ? 0.0 : node_volts_[k][src.neg - 1];
      return (vp - vn) * source_currents_[k][idx];
    };
    acc += 0.5 * (power_at(i) + power_at(i - 1)) * (time_[i].base() - time_[i - 1].base());
  }
  return units::joules(acc);
}

Simulator::Simulator(const Circuit& circuit, SimOptions options)
    : circuit_{circuit}, options_{options} {
  PPATC_EXPECT(circuit.node_count() >= 2, "circuit needs at least one non-ground node");
}

std::optional<DcResult> Simulator::dc_operating_point() const {
  const obs::Span span{"spice.dc"};
  System sys{circuit_};
  std::vector<double> x(sys.unknowns(), 0.0);

  AssemblyContext ctx;
  ctx.circuit = &circuit_;
  ctx.options = options_;
  ctx.gmin = options_.gmin;
  ctx.include_caps = false;
  ctx.time = 0.0;

  auto fail = [&](const char* strategy) -> ConvergenceError {
    std::ostringstream os;
    os << "DC operating point failed to converge (" << strategy
       << "; gmin and source stepping exhausted): " << sys.diag_message()
       << " (limit " << options_.max_newton_iterations << ")";
    return ConvergenceError{os.str()};
  };

  int iters = sys.newton(ctx, x);
  if (iters < 0) {
    // gmin stepping: start with a heavy gmin and relax it geometrically.
    std::fill(x.begin(), x.end(), 0.0);
    double g = 1e-2;
    bool ok = true;
    for (int step = 0; step <= options_.gmin_steps; ++step) {
      ctx.gmin = std::max(g, options_.gmin);
      if (sys.newton(ctx, x) < 0) {
        ok = false;
        break;
      }
      g /= 10.0;
    }
    if (ok) {
      ctx.gmin = options_.gmin;
      iters = sys.newton(ctx, x);
    }
    if (!ok || iters < 0) {
      // Source stepping: ramp all sources from zero.
      std::fill(x.begin(), x.end(), 0.0);
      ctx.gmin = options_.gmin;
      for (int step = 1; step <= 10; ++step) {
        ctx.source_scale = static_cast<double>(step) / 10.0;
        if (sys.newton(ctx, x) < 0) throw fail("source stepping");
      }
      ctx.source_scale = 1.0;
      iters = sys.newton(ctx, x);
      if (iters < 0) throw fail("final solve after source stepping");
    }
  }

  DcResult result;
  result.newton_iterations = iters;
  result.node_volts.assign(circuit_.node_count(), 0.0);
  for (NodeId n = 1; n < circuit_.node_count(); ++n) result.node_volts[n] = x[n - 1];
  result.source_currents.resize(circuit_.vsources().size());
  for (std::size_t s = 0; s < circuit_.vsources().size(); ++s) {
    result.source_currents[s] = x[sys.branch_index(s)];
  }
  return result;
}

std::optional<TransientResult> Simulator::transient(Duration stop, Duration step,
                                                    bool from_ics) const {
  PPATC_EXPECT(stop.base() > 0 && step.base() > 0, "transient needs positive stop and step");
  PPATC_EXPECT(step < stop, "step must be smaller than stop time");

  const obs::Span span{"spice.transient"};
  const auto dc = dc_operating_point();
  if (!dc) return std::nullopt;

  System sys{circuit_};
  std::vector<double> x(sys.unknowns(), 0.0);
  for (NodeId n = 1; n < circuit_.node_count(); ++n) x[n - 1] = dc->node_volts[n];
  for (std::size_t s = 0; s < circuit_.vsources().size(); ++s) {
    x[sys.branch_index(s)] = dc->source_currents[s];
  }

  // Per-capacitor state: V(a)-V(b) at the previous accepted time point.
  std::vector<double> cap_prev(circuit_.capacitors().size());
  for (std::size_t i = 0; i < circuit_.capacitors().size(); ++i) {
    const auto& c = circuit_.capacitors()[i];
    if (from_ics && c.has_initial) {
      cap_prev[i] = c.initial_volts;
    } else {
      cap_prev[i] = dc->node_volts[c.a] - dc->node_volts[c.b];
    }
  }

  AssemblyContext ctx;
  ctx.circuit = &circuit_;
  ctx.options = options_;
  ctx.gmin = options_.gmin;
  ctx.include_caps = true;
  ctx.dt = step.base();
  ctx.cap_prev = &cap_prev;

  const std::size_t steps = static_cast<std::size_t>(std::ceil(stop.base() / step.base()));
  std::vector<Duration> time;
  std::vector<std::vector<double>> volts;
  std::vector<std::vector<double>> currents;
  time.reserve(steps + 1);
  volts.reserve(steps + 1);
  currents.reserve(steps + 1);

  auto record = [&](double t) {
    time.push_back(units::seconds(t));
    std::vector<double> v(circuit_.node_count() - 1);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = x[i];
    volts.push_back(std::move(v));
    std::vector<double> c(circuit_.vsources().size());
    for (std::size_t s = 0; s < c.size(); ++s) c[s] = x[sys.branch_index(s)];
    currents.push_back(std::move(c));
  };

  record(0.0);
  std::uint64_t accepted_steps = 0;
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t = std::min(static_cast<double>(k) * step.base(), stop.base());
    ctx.time = t;
    ctx.dt = t - time.back().base();
    // Guard against a floating-point residue step at the stop time: a dt many
    // orders below the nominal step would give the capacitor companions
    // conductances ~1e9 S and wreck the Jacobian conditioning.
    if (ctx.dt < 1e-6 * step.base()) break;
    if (sys.newton(ctx, x) < 0) {
      // One retry with two half steps (handles sharp source edges).
      bool ok = true;
      const double t_mid = time.back().base() + ctx.dt / 2.0;
      for (const double tt : {t_mid, t}) {
        ctx.time = tt;
        ctx.dt = tt - (tt == t_mid ? time.back().base() : t_mid);
        if (sys.newton(ctx, x) < 0) {
          ok = false;
          break;
        }
        if (tt == t_mid) {
          for (std::size_t i = 0; i < cap_prev.size(); ++i) {
            const auto& c = circuit_.capacitors()[i];
            cap_prev[i] = sys.volt(x, c.a) - sys.volt(x, c.b);
          }
        }
      }
      if (!ok) {
        std::ostringstream os;
        os << "transient Newton failed to converge at t=" << ctx.time << " s (dt=" << ctx.dt
           << " s, step " << k << "/" << steps << ", half-step retry exhausted): "
           << sys.diag_message() << " (limit " << options_.max_newton_iterations << ")";
        throw ConvergenceError{os.str()};
      }
    }
    for (std::size_t i = 0; i < cap_prev.size(); ++i) {
      const auto& c = circuit_.capacitors()[i];
      cap_prev[i] = sys.volt(x, c.a) - sys.volt(x, c.b);
    }
    record(t);
    ++accepted_steps;
  }
  transient_steps_counter().add(accepted_steps);

  return TransientResult{circuit_, std::move(time), std::move(volts), std::move(currents)};
}

}  // namespace ppatc::spice
