#include "ppatc/spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/spice/sparse.hpp"

namespace ppatc::spice {

namespace {

// Solver metrics: iteration and step counts are deterministic for a fixed
// circuit + options, so tests assert their exact values (test_obs.cpp). Each
// accessor caches the registry lookup in a function-local static so the hot
// path costs one relaxed increment, not a name lookup.
obs::Counter& newton_iterations_counter() {
  static obs::Counter& c = obs::counter("spice.newton_iterations");
  return c;
}
obs::Counter& newton_solves_counter() {
  static obs::Counter& c = obs::counter("spice.newton_solves");
  return c;
}
obs::Counter& nonconvergence_counter() {
  static obs::Counter& c = obs::counter("spice.newton_nonconvergence");
  return c;
}
obs::Counter& transient_steps_counter() {
  static obs::Counter& c = obs::counter("spice.transient_steps");
  return c;
}

struct AssemblyContext {
  const Circuit* circuit;
  SimOptions options;
  double gmin;                 // current gmin (may be larger during stepping)
  double source_scale = 1.0;   // source-stepping continuation factor
  bool include_caps = false;   // transient vs DC
  double dt = 0.0;
  double time = 0.0;
  const std::vector<double>* cap_prev = nullptr;  // per-capacitor V(a)-V(b) at t-dt
};

// Assembly/solve sink: the stamping code is written once against this
// interface and runs against the dense oracle, the sparse replay solver, or
// the pattern recorder (which captures stamp positions for symbolic setup).
class LinearBackend {
 public:
  virtual ~LinearBackend() = default;
  virtual void begin_assembly() = 0;
  virtual void add(std::size_t r, std::size_t c, double v) = 0;
  virtual bool factor_solve(std::vector<double>& b) = 0;
};

class DenseBackend final : public LinearBackend {
 public:
  explicit DenseBackend(std::size_t n) : m_{n} {}
  void begin_assembly() override { m_.clear(); }
  void add(std::size_t r, std::size_t c, double v) override { m_.at(r, c) += v; }
  bool factor_solve(std::vector<double>& b) override { return m_.solve(b); }

 private:
  DenseMatrix m_;
};

class SparseBackend final : public LinearBackend {
 public:
  explicit SparseBackend(std::shared_ptr<const MnaPattern> pattern)
      : solver_{std::move(pattern)} {}
  void begin_assembly() override { solver_.begin_assembly(); }
  void add(std::size_t r, std::size_t c, double v) override { solver_.add(r, c, v); }
  bool factor_solve(std::vector<double>& b) override { return solver_.factor_solve(b); }

 private:
  SparseLuSolver solver_;
};

class PatternRecorder final : public LinearBackend {
 public:
  explicit PatternRecorder(MnaPattern::Builder& builder) : builder_{&builder} {}
  void begin_assembly() override {}
  void add(std::size_t r, std::size_t c, double) override { builder_->add(r, c); }
  bool factor_solve(std::vector<double>&) override { return true; }

 private:
  MnaPattern::Builder* builder_;
};

// Unknown layout: x[0..N-2] are voltages of nodes 1..N-1; x[N-1..] are source
// branch currents (current delivered out of the + terminal).
class System {
 public:
  System(const Circuit& c, const SimOptions& options)
      : circuit_{c},
        n_nodes_{c.node_count()},
        n_unknowns_{(c.node_count() - 1) + c.vsources().size()} {
    if (options.solver == LinearSolverKind::kDense) {
      backend_ = std::make_unique<DenseBackend>(n_unknowns_);
      return;
    }
    // Structural pass: stamp positions depend only on the topology, and the
    // transient stamps (capacitor companions) are a superset of the DC ones,
    // so one recording assembly with caps included yields a pattern covering
    // both solve kinds — DC simply leaves the capacitor slots at +0.0.
    MnaPattern::Builder builder{n_unknowns_};
    PatternRecorder recorder{builder};
    AssemblyContext ctx;
    ctx.circuit = &c;
    ctx.options = options;
    ctx.gmin = options.gmin;
    ctx.include_caps = true;
    ctx.dt = 1.0;
    ctx.time = 0.0;
    const std::vector<double> cap_zero(c.capacitors().size(), 0.0);
    ctx.cap_prev = &cap_zero;
    std::vector<double> x(n_unknowns_, 0.0);
    std::vector<double> f(n_unknowns_, 0.0);
    update_source_targets(ctx);
    assemble(ctx, x, f, recorder);
    backend_ = std::make_unique<SparseBackend>(intern_mna_pattern(std::move(builder).build()));
  }

  [[nodiscard]] std::size_t unknowns() const { return n_unknowns_; }
  [[nodiscard]] std::size_t voltage_index(NodeId n) const { return n - 1; }
  [[nodiscard]] std::size_t branch_index(std::size_t src) const { return (n_nodes_ - 1) + src; }

  [[nodiscard]] double volt(const std::vector<double>& x, NodeId n) const {
    return n == kGroundNode ? 0.0 : x[voltage_index(n)];
  }

  // Assembles residual f(x) and Jacobian J(x) into the backend.
  void assemble(const AssemblyContext& ctx, const std::vector<double>& x, std::vector<double>& f,
                LinearBackend& jac) const {
    std::fill(f.begin(), f.end(), 0.0);
    jac.begin_assembly();

    auto stamp_conductance = [&](NodeId a, NodeId b, double g, double extra_current) {
      // current a->b: g*(va-vb) + extra_current
      const double i = g * (volt(x, a) - volt(x, b)) + extra_current;
      if (a != kGroundNode) {
        f[voltage_index(a)] += i;
        jac.add(voltage_index(a), voltage_index(a), g);
        if (b != kGroundNode) jac.add(voltage_index(a), voltage_index(b), -g);
      }
      if (b != kGroundNode) {
        f[voltage_index(b)] -= i;
        jac.add(voltage_index(b), voltage_index(b), g);
        if (a != kGroundNode) jac.add(voltage_index(b), voltage_index(a), -g);
      }
    };

    for (const auto& r : circuit_.resistors()) stamp_conductance(r.a, r.b, 1.0 / r.ohms, 0.0);

    if (ctx.include_caps) {
      const auto& caps = circuit_.capacitors();
      for (std::size_t i = 0; i < caps.size(); ++i) {
        const auto& c = caps[i];
        const double g = c.farads / ctx.dt;
        const double prev = (*ctx.cap_prev)[i];
        // Backward Euler companion: i = C/dt * (v_ab - v_ab_prev)
        stamp_conductance(c.a, c.b, g, -g * prev);
      }
    }

    // gmin from every non-ground node to ground.
    for (NodeId n = 1; n < n_nodes_; ++n) {
      f[voltage_index(n)] += ctx.gmin * volt(x, n);
      jac.add(voltage_index(n), voltage_index(n), ctx.gmin);
    }

    // FETs: drain current Id flows drain -> source; numerical partials.
    for (const auto& fe : circuit_.fets()) {
      const double vd = volt(x, fe.drain);
      const double vg = volt(x, fe.gate);
      const double vs = volt(x, fe.source);
      auto id_at = [&](double d, double g, double s) {
        return units::in_amperes(
            fe.fet.drain_current(units::volts(g - s), units::volts(d - s)));
      };
      const double id = id_at(vd, vg, vs);
      constexpr double h = 1e-5;
      const double did_dvd = (id_at(vd + h, vg, vs) - id_at(vd - h, vg, vs)) / (2 * h);
      const double did_dvg = (id_at(vd, vg + h, vs) - id_at(vd, vg - h, vs)) / (2 * h);
      const double did_dvs = (id_at(vd, vg, vs + h) - id_at(vd, vg, vs - h)) / (2 * h);

      auto add_row = [&](NodeId node, double sign) {
        if (node == kGroundNode) return;
        const std::size_t r = voltage_index(node);
        f[r] += sign * id;
        if (fe.drain != kGroundNode) jac.add(r, voltage_index(fe.drain), sign * did_dvd);
        if (fe.gate != kGroundNode) jac.add(r, voltage_index(fe.gate), sign * did_dvg);
        if (fe.source != kGroundNode) jac.add(r, voltage_index(fe.source), sign * did_dvs);
      };
      add_row(fe.drain, +1.0);
      add_row(fe.source, -1.0);
    }

    // Voltage sources: unknown branch current i (delivered out of +). The
    // stimulus targets are per-solve invariants hoisted by
    // update_source_targets so the PWL lookup runs once per Newton solve,
    // not once per iteration.
    const auto& sources = circuit_.vsources();
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const auto& src = sources[s];
      const std::size_t bi = branch_index(s);
      const double i = x[bi];
      if (src.pos != kGroundNode) {
        f[voltage_index(src.pos)] -= i;  // injected into node
        jac.add(voltage_index(src.pos), bi, -1.0);
      }
      if (src.neg != kGroundNode) {
        f[voltage_index(src.neg)] += i;
        jac.add(voltage_index(src.neg), bi, 1.0);
      }
      f[bi] = volt(x, src.pos) - volt(x, src.neg) - src_targets_[s];
      if (src.pos != kGroundNode) jac.add(bi, voltage_index(src.pos), 1.0);
      if (src.neg != kGroundNode) jac.add(bi, voltage_index(src.neg), -1.0);
    }
  }

  /// Context of the most recent failed Newton solve, for diagnostics.
  struct NewtonDiag {
    int iterations = 0;           ///< iterations executed before giving up
    double max_residual = 0.0;    ///< max |f| over the voltage rows (A)
    NodeId worst_node = kGroundNode;  ///< node carrying max_residual
    const char* reason = "";      ///< "singular Jacobian" / "non-finite solution" / "iteration limit"
  };

  [[nodiscard]] const NewtonDiag& last_diag() const { return diag_; }

  /// Formats last_diag() with node-name context for a ConvergenceError.
  [[nodiscard]] std::string diag_message() const {
    std::ostringstream os;
    os << diag_.reason << " after " << diag_.iterations << " Newton iteration(s)";
    if (diag_.worst_node != kGroundNode) {
      os << "; worst residual " << diag_.max_residual << " A at node '"
         << circuit_.node_name(diag_.worst_node) << "'";
    }
    return os.str();
  }

  /// Newton–Raphson from the given initial guess; returns iterations used or
  /// -1 on divergence (filling last_diag()). x is updated in place.
  int newton(const AssemblyContext& ctx, std::vector<double>& x) {
    update_source_targets(ctx);
    f_.assign(n_unknowns_, 0.0);
    const std::size_t nv = n_nodes_ - 1;
    newton_solves_counter().increment();
    int result = -1;
    int it = 1;
    diag_ = NewtonDiag{};
    for (; it <= ctx.options.max_newton_iterations; ++it) {
      assemble(ctx, x, f_, *backend_);
      // Record the worst voltage-row residual before the solve mutates f's
      // copy, so a failure at this iteration reports where the circuit is
      // furthest from KCL.
      diag_.max_residual = 0.0;
      diag_.worst_node = kGroundNode;
      for (std::size_t i = 0; i < nv; ++i) {
        if (std::abs(f_[i]) > diag_.max_residual) {
          diag_.max_residual = std::abs(f_[i]);
          diag_.worst_node = i + 1;
        }
      }
      dx_ = f_;  // solve J dx = f, then x -= dx
      if (!backend_->factor_solve(dx_)) {
        diag_.reason = "singular Jacobian";
        break;
      }
      // Damp voltage updates to aid FET convergence.
      double vmax = 0.0;
      for (std::size_t i = 0; i < nv; ++i) vmax = std::max(vmax, std::abs(dx_[i]));
      const double damp = vmax > 0.4 ? 0.4 / vmax : 1.0;
      for (std::size_t i = 0; i < n_unknowns_; ++i) x[i] -= damp * dx_[i];
      if (!std::all_of(x.begin(), x.end(), [](double v) { return std::isfinite(v); })) {
        diag_.reason = "non-finite solution";
        break;
      }
      double dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) dv = std::max(dv, std::abs(dx_[i]));
      double res = 0.0;
      for (std::size_t i = 0; i < nv; ++i) res = std::max(res, std::abs(f_[i]));
      if (damp == 1.0 && dv < ctx.options.reltol && res < ctx.options.abstol * 1e3) {
        result = it;
        break;
      }
    }
    const int executed = result > 0 ? result : std::min(it, ctx.options.max_newton_iterations);
    newton_iterations_counter().add(static_cast<std::uint64_t>(std::max(executed, 0)));
    if (result < 0) {
      diag_.iterations = std::max(executed, 0);
      if (*diag_.reason == '\0') diag_.reason = "iteration limit";
      nonconvergence_counter().increment();
    }
    return result;
  }

 private:
  // Stimulus values are constant within one Newton solve (fixed ctx.time and
  // source_scale); evaluating them per solve instead of per iteration skips
  // the PWL segment search in the inner loop without changing any value.
  void update_source_targets(const AssemblyContext& ctx) {
    const auto& sources = circuit_.vsources();
    src_targets_.resize(sources.size());
    for (std::size_t s = 0; s < sources.size(); ++s) {
      src_targets_[s] =
          ctx.source_scale * units::in_volts(sources[s].stimulus.at(units::seconds(ctx.time)));
    }
  }

  const Circuit& circuit_;
  std::size_t n_nodes_;
  std::size_t n_unknowns_;
  std::unique_ptr<LinearBackend> backend_;
  std::vector<double> f_;            // residual workspace (reused across solves)
  std::vector<double> dx_;           // Newton update workspace
  std::vector<double> src_targets_;  // per-solve stimulus values
  NewtonDiag diag_;
};

}  // namespace

TransientResult::TransientResult(const Circuit& circuit, std::vector<Duration> time,
                                 std::vector<std::vector<double>> node_volts,
                                 std::vector<std::vector<double>> source_currents)
    : circuit_{&circuit},
      time_{std::move(time)},
      node_volts_{std::move(node_volts)},
      source_currents_{std::move(source_currents)} {}

Waveform TransientResult::node(const std::string& name) const {
  const NodeId id = circuit_->find_node(name);
  Waveform w;
  w.time = time_;
  w.value.reserve(time_.size());
  for (const auto& sample : node_volts_) w.value.push_back(id == kGroundNode ? 0.0 : sample[id - 1]);
  return w;
}

Waveform TransientResult::source_current(const std::string& vsource_name) const {
  const std::size_t idx = circuit_->vsource_index(vsource_name);
  Waveform w;
  w.time = time_;
  w.value.reserve(time_.size());
  for (const auto& sample : source_currents_) w.value.push_back(sample[idx]);
  return w;
}

Energy TransientResult::source_energy(const std::string& vsource_name) const {
  const std::size_t idx = circuit_->vsource_index(vsource_name);
  const auto& src = circuit_->vsources()[idx];
  double acc = 0.0;
  for (std::size_t i = 1; i < time_.size(); ++i) {
    auto power_at = [&](std::size_t k) {
      const double vp = src.pos == kGroundNode ? 0.0 : node_volts_[k][src.pos - 1];
      const double vn = src.neg == kGroundNode ? 0.0 : node_volts_[k][src.neg - 1];
      return (vp - vn) * source_currents_[k][idx];
    };
    acc += 0.5 * (power_at(i) + power_at(i - 1)) * (time_[i].base() - time_[i - 1].base());
  }
  return units::joules(acc);
}

struct Simulator::SolverState {
  System sys;
  SolverState(const Circuit& circuit, const SimOptions& options) : sys{circuit, options} {}
};

Simulator::Simulator(const Circuit& circuit, SimOptions options)
    : circuit_{circuit}, options_{options} {
  PPATC_EXPECT(circuit.node_count() >= 2, "circuit needs at least one non-ground node");
}

Simulator::~Simulator() = default;

Simulator::SolverState& Simulator::state() const {
  // One-shot lazy construction, amortized across the whole run (same contract
  // as a static-local initializer, but per-instance).
  // ppatc-lint: allow(realtime)
  if (!state_) state_ = std::make_unique<SolverState>(circuit_, options_);
  return *state_;
}

std::optional<DcResult> Simulator::dc_operating_point() const {
  const obs::Span span{"spice.dc"};
  obs::flight_mark("spice.deck_nodes", static_cast<std::uint64_t>(circuit_.node_count()));
  System& sys = state().sys;
  std::vector<double> x(sys.unknowns(), 0.0);

  AssemblyContext ctx;
  ctx.circuit = &circuit_;
  ctx.options = options_;
  ctx.gmin = options_.gmin;
  ctx.include_caps = false;
  ctx.time = 0.0;

  auto fail = [&](const char* strategy) -> ConvergenceError {
    std::ostringstream os;
    os << "DC operating point failed to converge (" << strategy
       << "; gmin and source stepping exhausted): " << sys.diag_message()
       << " (limit " << options_.max_newton_iterations << ")";
    const std::string msg = os.str();
    // Pin the failure context into the flight ring before the bundle drains
    // it: which node carried the worst residual, and how far Newton got.
    if (sys.last_diag().worst_node != kGroundNode) {
      obs::flight_mark("spice.fail_node", circuit_.node_name(sys.last_diag().worst_node));
    }
    obs::flight_mark("spice.fail_iterations",
                     static_cast<std::uint64_t>(std::max(sys.last_diag().iterations, 0)));
    obs::notify_failure("spice::ConvergenceError", msg.c_str());
    return ConvergenceError{msg};
  };

  int iters = sys.newton(ctx, x);
  if (iters < 0) {
    // gmin stepping: start with a heavy gmin and relax it geometrically.
    std::fill(x.begin(), x.end(), 0.0);
    double g = 1e-2;
    bool ok = true;
    for (int step = 0; step <= options_.gmin_steps; ++step) {
      ctx.gmin = std::max(g, options_.gmin);
      if (sys.newton(ctx, x) < 0) {
        ok = false;
        break;
      }
      g /= 10.0;
    }
    if (ok) {
      ctx.gmin = options_.gmin;
      iters = sys.newton(ctx, x);
    }
    if (!ok || iters < 0) {
      // Source stepping: ramp all sources from zero.
      std::fill(x.begin(), x.end(), 0.0);
      ctx.gmin = options_.gmin;
      for (int step = 1; step <= 10; ++step) {
        ctx.source_scale = static_cast<double>(step) / 10.0;
        if (sys.newton(ctx, x) < 0) throw fail("source stepping");
      }
      ctx.source_scale = 1.0;
      iters = sys.newton(ctx, x);
      if (iters < 0) throw fail("final solve after source stepping");
    }
  }

  DcResult result;
  result.newton_iterations = iters;
  result.node_volts.assign(circuit_.node_count(), 0.0);
  for (NodeId n = 1; n < circuit_.node_count(); ++n) result.node_volts[n] = x[n - 1];
  result.source_currents.resize(circuit_.vsources().size());
  for (std::size_t s = 0; s < circuit_.vsources().size(); ++s) {
    result.source_currents[s] = x[sys.branch_index(s)];
  }
  return result;
}

std::optional<TransientResult> Simulator::transient(Duration stop, Duration step,
                                                    bool from_ics) const {
  PPATC_EXPECT(stop.base() > 0 && step.base() > 0, "transient needs positive stop and step");
  PPATC_EXPECT(step < stop, "step must be smaller than stop time");

  const obs::Span span{"spice.transient"};
  const auto dc = dc_operating_point();
  if (!dc) return std::nullopt;

  System& sys = state().sys;
  std::vector<double> x(sys.unknowns(), 0.0);
  for (NodeId n = 1; n < circuit_.node_count(); ++n) x[n - 1] = dc->node_volts[n];
  for (std::size_t s = 0; s < circuit_.vsources().size(); ++s) {
    x[sys.branch_index(s)] = dc->source_currents[s];
  }

  // Per-capacitor state: V(a)-V(b) at the previous accepted time point.
  std::vector<double> cap_prev(circuit_.capacitors().size());
  for (std::size_t i = 0; i < circuit_.capacitors().size(); ++i) {
    const auto& c = circuit_.capacitors()[i];
    if (from_ics && c.has_initial) {
      cap_prev[i] = c.initial_volts;
    } else {
      cap_prev[i] = dc->node_volts[c.a] - dc->node_volts[c.b];
    }
  }

  AssemblyContext ctx;
  ctx.circuit = &circuit_;
  ctx.options = options_;
  ctx.gmin = options_.gmin;
  ctx.include_caps = true;
  ctx.dt = step.base();
  ctx.cap_prev = &cap_prev;

  const std::size_t steps = static_cast<std::size_t>(std::ceil(stop.base() / step.base()));
  std::vector<Duration> time;
  std::vector<std::vector<double>> volts;
  std::vector<std::vector<double>> currents;
  time.reserve(steps + 1);
  volts.reserve(steps + 1);
  currents.reserve(steps + 1);

  auto record = [&](double t) {
    time.push_back(units::seconds(t));
    std::vector<double> v(circuit_.node_count() - 1);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = x[i];
    volts.push_back(std::move(v));
    std::vector<double> c(circuit_.vsources().size());
    for (std::size_t s = 0; s < c.size(); ++s) c[s] = x[sys.branch_index(s)];
    currents.push_back(std::move(c));
  };

  record(0.0);
  std::uint64_t accepted_steps = 0;
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t = std::min(static_cast<double>(k) * step.base(), stop.base());
    ctx.time = t;
    ctx.dt = t - time.back().base();
    // Guard against a floating-point residue step at the stop time: a dt many
    // orders below the nominal step would give the capacitor companions
    // conductances ~1e9 S and wreck the Jacobian conditioning.
    if (ctx.dt < 1e-6 * step.base()) break;
    if (sys.newton(ctx, x) < 0) {
      // One retry with two half steps (handles sharp source edges).
      bool ok = true;
      const double t_mid = time.back().base() + ctx.dt / 2.0;
      for (const double tt : {t_mid, t}) {
        ctx.time = tt;
        ctx.dt = tt - (tt == t_mid ? time.back().base() : t_mid);
        if (sys.newton(ctx, x) < 0) {
          ok = false;
          break;
        }
        if (tt == t_mid) {
          for (std::size_t i = 0; i < cap_prev.size(); ++i) {
            const auto& c = circuit_.capacitors()[i];
            cap_prev[i] = sys.volt(x, c.a) - sys.volt(x, c.b);
          }
        }
      }
      if (!ok) {
        std::ostringstream os;
        os << "transient Newton failed to converge at t=" << ctx.time << " s (dt=" << ctx.dt
           << " s, step " << k << "/" << steps << ", half-step retry exhausted): "
           << sys.diag_message() << " (limit " << options_.max_newton_iterations << ")";
        const std::string msg = os.str();
        if (sys.last_diag().worst_node != kGroundNode) {
          obs::flight_mark("spice.fail_node", circuit_.node_name(sys.last_diag().worst_node));
        }
        obs::flight_mark("spice.fail_iterations",
                         static_cast<std::uint64_t>(std::max(sys.last_diag().iterations, 0)));
        obs::notify_failure("spice::ConvergenceError", msg.c_str());
        throw ConvergenceError{msg};
      }
    }
    for (std::size_t i = 0; i < cap_prev.size(); ++i) {
      const auto& c = circuit_.capacitors()[i];
      cap_prev[i] = sys.volt(x, c.a) - sys.volt(x, c.b);
    }
    record(t);
    ++accepted_steps;
  }
  transient_steps_counter().add(accepted_steps);

  return TransientResult{circuit_, std::move(time), std::move(volts), std::move(currents)};
}

}  // namespace ppatc::spice
