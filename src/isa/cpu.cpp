#include "ppatc/isa/cpu.hpp"

#include <bit>
#include <sstream>

#include "ppatc/obs/metrics.hpp"

namespace ppatc::isa {

namespace {
std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

obs::Counter& block_hits_counter() {
  static obs::Counter& c = obs::counter("isa.decoded_block_hits");
  return c;
}
obs::Counter& blocks_decoded_counter() {
  static obs::Counter& c = obs::counter("isa.decoded_blocks");
  return c;
}

// Straight-line span length cap; keeps a pathological branch-free program
// from decoding the whole image into one block.
constexpr std::size_t kMaxBlockInsns = 64;
}  // namespace

// One static handler per pre-decoded instruction variant. Every body is the
// corresponding execute16/execute32 case with the field extraction moved to
// decode time; the sequence of register writes, bus accesses, flag updates,
// and cycle charges is preserved exactly so both engines stay bit-identical.
struct CpuOps {
  using I = Cpu::DecodedInsn;

  // Trap: re-fetch and run the switch path so BusFault/UndefinedInstruction
  // reproduce the interpreter's exact messages and fetch accounting. Decoded
  // with halfwords = 0, so the generic loop neither advances PC nor replays
  // fetch statistics — both happen here, for real.
  static void op_trap(Cpu& cpu, const I&) {
    const std::uint16_t insn = cpu.bus_.fetch16(cpu.pc_);
    if ((insn & 0xF800u) >= 0xE800u) {
      const std::uint16_t lo = cpu.bus_.fetch16(cpu.pc_ + 2);
      cpu.execute32(insn, lo);
      if (!cpu.branched_) cpu.pc_ += 4;
    } else {
      cpu.execute16(insn);
      if (!cpu.branched_) cpu.pc_ += 2;
    }
    cpu.branched_ = true;  // PC fully handled here; skip the generic advance
  }

  // ---- shifts, immediate form (a=Rd, b=Rm, imm=imm5) ----
  static void op_lsl_imm(Cpu& cpu, const I& d) {
    const unsigned imm5 = d.imm;
    const std::uint32_t v = cpu.regs_[d.b];
    const std::uint32_t r = imm5 == 0 ? v : v << imm5;
    if (imm5 != 0) cpu.c_ = ((v >> (32 - imm5)) & 1u) != 0;
    cpu.set_nz(r);
    cpu.regs_[d.a] = r;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_lsr_imm(Cpu& cpu, const I& d) {
    const unsigned sh = d.imm == 0 ? 32 : d.imm;
    const std::uint32_t v = cpu.regs_[d.b];
    cpu.c_ = ((sh <= 32) && ((v >> (sh - 1)) & 1u)) != 0;
    const std::uint32_t r = sh == 32 ? 0 : v >> sh;
    cpu.set_nz(r);
    cpu.regs_[d.a] = r;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_asr_imm(Cpu& cpu, const I& d) {
    const unsigned sh = d.imm == 0 ? 32 : d.imm;
    const auto sv = static_cast<std::int32_t>(cpu.regs_[d.b]);
    cpu.c_ = ((sv >> (sh - 1)) & 1) != 0;
    const auto r = static_cast<std::uint32_t>(sh >= 32 ? (sv >> 31) : (sv >> sh));
    cpu.set_nz(r);
    cpu.regs_[d.a] = r;
    cpu.cycles_ += cpu.cyc_.alu;
  }

  // ---- ADD/SUB 3-register / 3-bit-immediate (a=Rd, b=Rn, c=Rm or imm=imm3) ----
  static void op_add_reg3(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.b], cpu.regs_[d.c], false, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sub_reg3(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.b], ~cpu.regs_[d.c], true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_add_imm3(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.b], d.imm, false, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sub_imm3(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.b], ~d.imm, true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }

  // ---- MOV/CMP/ADD/SUB immediate 8 (a=Rd, imm=imm8) ----
  static void op_mov_imm8(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = d.imm;
    cpu.set_nz(d.imm);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_cmp_imm8(Cpu& cpu, const I& d) {
    cpu.add_with_carry(cpu.regs_[d.a], ~d.imm, true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_add_imm8(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.a], d.imm, false, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sub_imm8(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(cpu.regs_[d.a], ~d.imm, true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }

  // ---- data-processing register (a=Rd, b=Rm) ----
  static void op_and(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd &= cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_eor(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd ^= cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_lsl_reg(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    const unsigned sh = cpu.regs_[d.b] & 0xFFu;
    if (sh != 0) {
      cpu.c_ = sh <= 32 && ((sh == 32 ? rd & 1u : (rd >> (32 - sh)) & 1u) != 0);
      rd = sh >= 32 ? 0 : rd << sh;
    }
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_lsr_reg(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    const unsigned sh = cpu.regs_[d.b] & 0xFFu;
    if (sh != 0) {
      cpu.c_ = sh <= 32 && (((sh == 32 ? rd >> 31 : rd >> (sh - 1)) & 1u) != 0);
      rd = sh >= 32 ? 0 : rd >> sh;
    }
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_asr_reg(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    const unsigned sh = cpu.regs_[d.b] & 0xFFu;
    if (sh != 0) {
      const auto sv = static_cast<std::int32_t>(rd);
      const unsigned eff = sh >= 32 ? 31 : sh - 1;
      cpu.c_ = ((sv >> eff) & 1) != 0;
      rd = static_cast<std::uint32_t>(sh >= 32 ? sv >> 31 : sv >> sh);
    }
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_adc(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd = cpu.add_with_carry(rd, cpu.regs_[d.b], cpu.c_, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sbc(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd = cpu.add_with_carry(rd, ~cpu.regs_[d.b], cpu.c_, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_ror(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    const unsigned sh = cpu.regs_[d.b] & 0xFFu;
    if (sh != 0) {
      const unsigned r = sh & 31u;
      if (r != 0) rd = (rd >> r) | (rd << (32 - r));
      cpu.c_ = (rd >> 31) != 0;
    }
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_tst(Cpu& cpu, const I& d) {
    cpu.set_nz(cpu.regs_[d.a] & cpu.regs_[d.b]);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_rsb(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.add_with_carry(0, ~cpu.regs_[d.b], true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_cmp_reg(Cpu& cpu, const I& d) {
    cpu.add_with_carry(cpu.regs_[d.a], ~cpu.regs_[d.b], true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_cmn(Cpu& cpu, const I& d) {
    cpu.add_with_carry(cpu.regs_[d.a], cpu.regs_[d.b], false, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_orr(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd |= cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_mul(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd *= cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.mul;
  }
  static void op_bic(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd &= ~cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_mvn(Cpu& cpu, const I& d) {
    std::uint32_t& rd = cpu.regs_[d.a];
    rd = ~cpu.regs_[d.b];
    cpu.set_nz(rd);
    cpu.cycles_ += cpu.cyc_.alu;
  }

  // ---- hi-register ops and BX/BLX (a=Rd 0-15, b=Rm 0-15, c=BLX link bit) ----
  static void op_add_hi(Cpu& cpu, const I& d) {
    const std::uint32_t vm = cpu.read_reg_pc_adjusted(d.b);
    const std::uint32_t r = cpu.read_reg_pc_adjusted(d.a) + vm;
    cpu.write_reg_branch_aware(d.a, r);
    cpu.cycles_ += cpu.branched_ ? cpu.cyc_.branch_taken : cpu.cyc_.alu;
  }
  static void op_cmp_hi(Cpu& cpu, const I& d) {
    const std::uint32_t vm = cpu.read_reg_pc_adjusted(d.b);
    cpu.add_with_carry(cpu.read_reg_pc_adjusted(d.a), ~vm, true, true);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_mov_hi(Cpu& cpu, const I& d) {
    cpu.write_reg_branch_aware(d.a, cpu.read_reg_pc_adjusted(d.b));
    cpu.cycles_ += cpu.branched_ ? cpu.cyc_.branch_taken : cpu.cyc_.alu;
  }
  static void op_bx(Cpu& cpu, const I& d) {
    // Read Rm before writing LR: BLX LR must use the pre-link value.
    const std::uint32_t vm = cpu.read_reg_pc_adjusted(d.b);
    if (d.c != 0) cpu.regs_[14] = (cpu.pc_ + 2) | 1u;  // BLX
    cpu.branch_to(vm);
    cpu.cycles_ += cpu.cyc_.bx;
  }

  // ---- loads/stores ----
  static void op_ldr_lit(Cpu& cpu, const I& d) {  // imm = absolute literal address
    cpu.regs_[d.a] = cpu.bus_.read32(d.imm);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_str_reg(Cpu& cpu, const I& d) {
    cpu.bus_.write32(cpu.regs_[d.b] + cpu.regs_[d.c], cpu.regs_[d.a]);
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_strh_reg(Cpu& cpu, const I& d) {
    cpu.bus_.write16(cpu.regs_[d.b] + cpu.regs_[d.c], static_cast<std::uint16_t>(cpu.regs_[d.a]));
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_strb_reg(Cpu& cpu, const I& d) {
    cpu.bus_.write8(cpu.regs_[d.b] + cpu.regs_[d.c], static_cast<std::uint8_t>(cpu.regs_[d.a]));
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_ldrsb_reg(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
        static_cast<std::int8_t>(cpu.bus_.read8(cpu.regs_[d.b] + cpu.regs_[d.c]))));
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_ldr_reg(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read32(cpu.regs_[d.b] + cpu.regs_[d.c]);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_ldrh_reg(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read16(cpu.regs_[d.b] + cpu.regs_[d.c]);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_ldrb_reg(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read8(cpu.regs_[d.b] + cpu.regs_[d.c]);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_ldrsh_reg(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
        static_cast<std::int16_t>(cpu.bus_.read16(cpu.regs_[d.b] + cpu.regs_[d.c]))));
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_str_imm(Cpu& cpu, const I& d) {  // imm pre-scaled (imm5*4)
    cpu.bus_.write32(cpu.regs_[d.b] + d.imm, cpu.regs_[d.a]);
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_ldr_imm(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read32(cpu.regs_[d.b] + d.imm);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_strb_imm(Cpu& cpu, const I& d) {
    cpu.bus_.write8(cpu.regs_[d.b] + d.imm, static_cast<std::uint8_t>(cpu.regs_[d.a]));
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_ldrb_imm(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read8(cpu.regs_[d.b] + d.imm);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_strh_imm(Cpu& cpu, const I& d) {  // imm pre-scaled (imm5*2)
    cpu.bus_.write16(cpu.regs_[d.b] + d.imm, static_cast<std::uint16_t>(cpu.regs_[d.a]));
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_ldrh_imm(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read16(cpu.regs_[d.b] + d.imm);
    cpu.cycles_ += cpu.cyc_.load;
  }
  static void op_str_sp(Cpu& cpu, const I& d) {  // imm pre-scaled (imm8*4)
    cpu.bus_.write32(cpu.regs_[13] + d.imm, cpu.regs_[d.a]);
    cpu.cycles_ += cpu.cyc_.store;
  }
  static void op_ldr_sp(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.bus_.read32(cpu.regs_[13] + d.imm);
    cpu.cycles_ += cpu.cyc_.load;
  }

  // ---- address generation / SP arithmetic ----
  static void op_adr(Cpu& cpu, const I& d) {  // imm = absolute address
    cpu.regs_[d.a] = d.imm;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_add_sp_imm(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.regs_[13] + d.imm;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sp_adj(Cpu& cpu, const I& d) {  // imm = imm7*4, c = subtract bit
    if (d.c != 0) {
      cpu.regs_[13] -= d.imm;
    } else {
      cpu.regs_[13] += d.imm;
    }
    cpu.cycles_ += cpu.cyc_.alu;
  }

  // ---- PUSH/POP (raw = insn with register list, b = count, c = R bit) ----
  static void op_push(Cpu& cpu, const I& d) {
    const std::uint32_t list = d.raw & 0xFFu;
    std::uint32_t addr = cpu.regs_[13] - 4u * d.b;
    cpu.regs_[13] = addr;
    for (int r = 0; r < 8; ++r) {
      if ((list >> r) & 1u) {
        cpu.bus_.write32(addr, cpu.regs_[static_cast<std::size_t>(r)]);
        addr += 4;
      }
    }
    if (d.c != 0) cpu.bus_.write32(addr, cpu.regs_[14]);  // push LR
    cpu.cycles_ += cpu.cyc_.ldm_base + d.b;
  }
  static void op_pop(Cpu& cpu, const I& d) {
    const std::uint32_t list = d.raw & 0xFFu;
    std::uint32_t addr = cpu.regs_[13];
    for (int r = 0; r < 8; ++r) {
      if ((list >> r) & 1u) {
        cpu.regs_[static_cast<std::size_t>(r)] = cpu.bus_.read32(addr);
        addr += 4;
      }
    }
    bool to_pc = false;
    if (d.c != 0) {
      cpu.branch_to(cpu.bus_.read32(addr));
      addr += 4;
      to_pc = true;
    }
    cpu.regs_[13] = addr;
    cpu.cycles_ += cpu.cyc_.ldm_base + d.b + (to_pc ? cpu.cyc_.pop_pc_extra : 0);
  }

  // ---- extend / byte-reverse (a=Rd, b=Rm) ----
  static void op_sxth(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int16_t>(cpu.regs_[d.b])));
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_sxtb(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(cpu.regs_[d.b])));
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_uxth(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.regs_[d.b] & 0xFFFFu;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_uxtb(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = cpu.regs_[d.b] & 0xFFu;
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_rev(Cpu& cpu, const I& d) {
    cpu.regs_[d.a] = __builtin_bswap32(cpu.regs_[d.b]);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_rev16(Cpu& cpu, const I& d) {
    const std::uint32_t v = cpu.regs_[d.b];
    cpu.regs_[d.a] = ((v & 0x00FF'00FFu) << 8) | ((v & 0xFF00'FF00u) >> 8);
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_revsh(Cpu& cpu, const I& d) {
    const auto h =
        static_cast<std::uint16_t>(__builtin_bswap16(static_cast<std::uint16_t>(cpu.regs_[d.b])));
    cpu.regs_[d.a] =
        static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(h)));
    cpu.cycles_ += cpu.cyc_.alu;
  }
  static void op_nop(Cpu& cpu, const I&) { cpu.cycles_ += cpu.cyc_.alu; }

  // ---- STM/LDM (a=Rn, raw = insn with list, b = count) ----
  static void op_stm(Cpu& cpu, const I& d) {
    const std::uint32_t list = d.raw & 0xFFu;
    std::uint32_t addr = cpu.regs_[d.a];
    for (int r = 0; r < 8; ++r) {
      if (((list >> r) & 1u) == 0) continue;
      cpu.bus_.write32(addr, cpu.regs_[static_cast<std::size_t>(r)]);
      addr += 4;
    }
    cpu.regs_[d.a] = addr;  // STMIA always writes back on M0
    cpu.cycles_ += cpu.cyc_.ldm_base + d.b;
  }
  static void op_ldm(Cpu& cpu, const I& d) {
    const std::uint32_t list = d.raw & 0xFFu;
    std::uint32_t addr = cpu.regs_[d.a];
    for (int r = 0; r < 8; ++r) {
      if (((list >> r) & 1u) == 0) continue;
      cpu.regs_[static_cast<std::size_t>(r)] = cpu.bus_.read32(addr);
      addr += 4;
    }
    if (((list >> d.a) & 1u) == 0) cpu.regs_[d.a] = addr;  // writeback unless Rn loaded
    cpu.cycles_ += cpu.cyc_.ldm_base + d.b;
  }

  // ---- branches and SVC (imm = absolute target, c = condition) ----
  static void op_svc(Cpu& cpu, const I&) {
    // SVC: the ISS maps SVC #0 to "halt with r0 as exit code".
    cpu.bus_.write32(kMmioExit, cpu.regs_[0]);
    cpu.cycles_ += cpu.cyc_.branch_taken;
  }
  static void op_b_cond(Cpu& cpu, const I& d) {
    if (cpu.condition_passed(d.c)) {
      cpu.branch_to(d.imm);
      cpu.cycles_ += cpu.cyc_.branch_taken;
    } else {
      cpu.cycles_ += cpu.cyc_.branch_not_taken;
    }
  }
  static void op_b(Cpu& cpu, const I& d) {
    cpu.branch_to(d.imm);
    cpu.cycles_ += cpu.cyc_.branch_taken;
  }
  static void op_bl(Cpu& cpu, const I& d) {  // imm = target, imm2 = link value
    cpu.regs_[14] = d.imm2;
    cpu.branch_to(d.imm);
    cpu.cycles_ += cpu.cyc_.bl;
  }
};

Cpu::Cpu(Bus& bus, CycleModel cycles, Dispatch dispatch)
    : bus_{bus}, cyc_{cycles}, dispatch_{dispatch} {
  DecodedInsn trap;
  trap.fn = &CpuOps::op_trap;
  trap.halfwords = 0;
  out_of_range_block_.insns.push_back(trap);
}

void Cpu::reset(std::uint32_t pc, std::uint32_t sp) {
  PPATC_EXPECT(pc % 2 == 0, "PC must be halfword aligned");
  PPATC_EXPECT(sp % 4 == 0, "SP must be word aligned");
  regs_.fill(0);
  regs_[13] = sp;
  pc_ = pc;
  n_ = z_ = c_ = v_ = false;
  cycles_ = 0;
  instructions_ = 0;
  branched_ = false;
}

std::uint32_t Cpu::reg(int index) const {
  PPATC_EXPECT(index >= 0 && index < 16, "register index out of range");
  if (index == 15) return pc_ + 4;
  return regs_[static_cast<std::size_t>(index)];
}

void Cpu::set_reg(int index, std::uint32_t value) {
  PPATC_EXPECT(index >= 0 && index < 15, "cannot set PC via set_reg; use reset");
  regs_[static_cast<std::size_t>(index)] = value;
}

std::uint32_t Cpu::read_reg_pc_adjusted(int index) const {
  return index == 15 ? pc_ + 4 : regs_[static_cast<std::size_t>(index)];
}

void Cpu::branch_to(std::uint32_t target) {
  pc_ = target & ~1u;  // Thumb bit stripped
  branched_ = true;
}

void Cpu::write_reg_branch_aware(int index, std::uint32_t value) {
  if (index == 15) {
    branch_to(value);
  } else {
    regs_[static_cast<std::size_t>(index)] = value;
  }
}

void Cpu::set_nz(std::uint32_t result) {
  n_ = (result >> 31) != 0;
  z_ = result == 0;
}

std::uint32_t Cpu::add_with_carry(std::uint32_t a, std::uint32_t b, bool carry_in,
                                  bool set_flags) {
  const std::uint64_t usum =
      static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b) + (carry_in ? 1u : 0u);
  const std::int64_t ssum = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) +
                            static_cast<std::int64_t>(static_cast<std::int32_t>(b)) +
                            (carry_in ? 1 : 0);
  const auto result = static_cast<std::uint32_t>(usum);
  if (set_flags) {
    set_nz(result);
    c_ = usum > 0xFFFF'FFFFull;
    v_ = ssum != static_cast<std::int64_t>(static_cast<std::int32_t>(result));
  }
  return result;
}

bool Cpu::condition_passed(unsigned cond) const {
  switch (cond) {
    case 0x0: return z_;                    // EQ
    case 0x1: return !z_;                   // NE
    case 0x2: return c_;                    // CS/HS
    case 0x3: return !c_;                   // CC/LO
    case 0x4: return n_;                    // MI
    case 0x5: return !n_;                   // PL
    case 0x6: return v_;                    // VS
    case 0x7: return !v_;                   // VC
    case 0x8: return c_ && !z_;             // HI
    case 0x9: return !c_ || z_;             // LS
    case 0xA: return n_ == v_;              // GE
    case 0xB: return n_ != v_;              // LT
    case 0xC: return !z_ && (n_ == v_);     // GT
    case 0xD: return z_ || (n_ != v_);      // LE
    case 0xE: return true;                  // AL
    default: return true;
  }
}

bool Cpu::step() {
  if (bus_.halted()) return false;
  const std::uint16_t insn = bus_.fetch16(pc_);
  branched_ = false;
  if ((insn & 0xF800u) >= 0xE800u) {
    // 32-bit encoding (BL and system instructions).
    const std::uint16_t lo = bus_.fetch16(pc_ + 2);
    execute32(insn, lo);
    if (!branched_) pc_ += 4;
  } else {
    execute16(insn);
    if (!branched_) pc_ += 2;
  }
  ++instructions_;
  return !bus_.halted();
}

Cpu::RunResult Cpu::run(std::uint64_t max_instructions) {
  return dispatch_ == Dispatch::kSwitch ? run_switch(max_instructions)
                                        : run_threaded(max_instructions);
}

Cpu::RunResult Cpu::run_switch(std::uint64_t max_instructions) {
  RunResult r;
  const std::uint64_t start_insn = instructions_;
  const std::uint64_t start_cyc = cycles_;
  while (instructions_ - start_insn < max_instructions) {
    if (!step()) break;
  }
  r.instructions = instructions_ - start_insn;
  r.cycles = cycles_ - start_cyc;
  r.halted = bus_.halted();
  return r;
}

Cpu::RunResult Cpu::run_threaded(std::uint64_t max_instructions) {
  RunResult r;
  const std::uint64_t start_insn = instructions_;
  const std::uint64_t start_cyc = cycles_;
  const std::uint64_t start_hits = block_hits_;
  const std::uint64_t start_decoded = blocks_decoded_;
  while (!bus_.halted() && instructions_ - start_insn < max_instructions) {
    const Block& blk = block_at(pc_);
    const DecodedInsn* ins = blk.insns.data();
    const DecodedInsn* const last = ins + (blk.insns.size() - 1);
    // Only the block-ending instruction can write PC, trap, or be a taken
    // branch (decode_block ends a block at anything PC-capable), so the
    // branch bookkeeping runs once per block, not once per instruction. The
    // single reset here keeps `branched_` false for mid-block handlers that
    // read it (hi-register ADD/MOV/CMP cycle costs). Loads/stores can still
    // fault (the exception leaves PC at the faulting instruction, which has
    // not been counted) and a store can halt the bus via MMIO, so the halt
    // and budget checks stay per-instruction.
    branched_ = false;
    bool stopped = false;
    for (; ins != last; ++ins) {
      bus_.note_fetches(ins->halfwords);
      ins->fn(*this, *ins);
      pc_ += static_cast<std::uint32_t>(ins->halfwords) * 2u;
      ++instructions_;
      if (bus_.halted() || instructions_ - start_insn >= max_instructions) {
        stopped = true;
        break;
      }
    }
    if (stopped) continue;  // the outer condition re-checks halt/budget
    // Block ender: same per-instruction sequence as step(). Traps decode with
    // halfwords = 0 and replay their real fetches themselves.
    bus_.note_fetches(ins->halfwords);
    ins->fn(*this, *ins);
    if (!branched_) pc_ += static_cast<std::uint32_t>(ins->halfwords) * 2u;
    ++instructions_;
  }
  block_hits_counter().add(block_hits_ - start_hits);
  blocks_decoded_counter().add(blocks_decoded_ - start_decoded);
  r.instructions = instructions_ - start_insn;
  r.cycles = cycles_ - start_cyc;
  r.halted = bus_.halted();
  return r;
}

const Cpu::Block& Cpu::block_at(std::uint32_t pc) {
  if (block_map_.empty() || cache_epoch_ != bus_.program_epoch()) flush_block_cache();
  // Out-of-range PC: a single trap whose real fetch16 raises the BusFault.
  if (pc > kProgramSize - 2) return out_of_range_block_;
  const auto idx = static_cast<std::size_t>(pc >> 1);
  const std::int32_t cached = block_map_[idx];
  if (cached >= 0) {
    ++block_hits_;
    return blocks_[static_cast<std::size_t>(cached)];
  }
  Block blk;
  decode_block(pc, blk);
  ++blocks_decoded_;
  block_map_[idx] = static_cast<std::int32_t>(blocks_.size());
  blocks_.push_back(std::move(blk));
  return blocks_.back();
}

void Cpu::flush_block_cache() {
  block_map_.assign(kProgramSize / 2, -1);
  blocks_.clear();
  cache_epoch_ = bus_.program_epoch();
}

void Cpu::decode_block(std::uint32_t pc, Block& out) const {
  out.insns.reserve(8);
  std::uint32_t p = pc;
  bool ends = false;
  while (!ends && out.insns.size() < kMaxBlockInsns) {
    const DecodedInsn d = decode_one(p, ends);
    out.insns.push_back(d);
    p += static_cast<std::uint32_t>(d.halfwords) * 2u;
  }
}

Cpu::DecodedInsn Cpu::decode_one(std::uint32_t pc, bool& ends_block) const {
  DecodedInsn d;
  ends_block = false;
  // Anything the decoder can't commit to (undefined encodings, fetches that
  // would fault) becomes a trap and necessarily ends the block.
  const auto trap = [&]() {
    DecodedInsn t;
    t.fn = &CpuOps::op_trap;
    t.halfwords = 0;
    ends_block = true;
    return t;
  };
  if (pc > kProgramSize - 2) return trap();
  const std::uint16_t insn = bus_.peek16(pc);
  d.raw = insn;
  d.halfwords = 1;
  const auto rd0 = static_cast<std::uint8_t>(insn & 7u);
  const auto rn3 = static_cast<std::uint8_t>((insn >> 3) & 7u);
  const auto rm6 = static_cast<std::uint8_t>((insn >> 6) & 7u);
  const auto rd8 = static_cast<std::uint8_t>((insn >> 8) & 7u);

  if ((insn & 0xF800u) >= 0xE800u) {
    // 32-bit encoding (BL and system instructions).
    if (pc > kProgramSize - 4) return trap();
    const std::uint16_t lo = bus_.peek16(pc + 2);
    d.halfwords = 2;
    if ((insn & 0xF800u) == 0xF000u && (lo & 0xD000u) == 0xD000u) {
      const std::uint32_t s = (insn >> 10) & 1u;
      const std::uint32_t imm10 = insn & 0x3FFu;
      const std::uint32_t j1 = (lo >> 13) & 1u;
      const std::uint32_t j2 = (lo >> 11) & 1u;
      const std::uint32_t imm11 = lo & 0x7FFu;
      const std::uint32_t i1 = (~(j1 ^ s)) & 1u;
      const std::uint32_t i2 = (~(j2 ^ s)) & 1u;
      std::uint32_t imm = (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1);
      if (s != 0) imm |= 0xFE00'0000u;  // sign extend from bit 24
      d.imm = pc + 4 + imm;
      d.imm2 = (pc + 4) | 1u;  // return address with Thumb bit
      d.fn = &CpuOps::op_bl;
      ends_block = true;
      return d;
    }
    if ((insn & 0xFFF0u) == 0xF3B0u || (insn & 0xFFE0u) == 0xF3E0u ||
        (insn & 0xFFE0u) == 0xF380u) {
      d.fn = &CpuOps::op_nop;  // DSB/DMB/ISB and MSR/MRS
      return d;
    }
    return trap();
  }

  switch (insn >> 12) {
    case 0x0:
    case 0x1: {
      const unsigned op = (insn >> 11) & 3u;
      if (op != 3) {
        d.a = rd0;
        d.b = rn3;
        d.imm = (insn >> 6) & 31u;
        d.fn = op == 0 ? &CpuOps::op_lsl_imm
                       : op == 1 ? &CpuOps::op_lsr_imm : &CpuOps::op_asr_imm;
      } else {
        const bool imm_form = ((insn >> 10) & 1u) != 0;
        const bool subtract = ((insn >> 9) & 1u) != 0;
        d.a = rd0;
        d.b = rn3;
        if (imm_form) {
          d.imm = rm6;
          d.fn = subtract ? &CpuOps::op_sub_imm3 : &CpuOps::op_add_imm3;
        } else {
          d.c = rm6;
          d.fn = subtract ? &CpuOps::op_sub_reg3 : &CpuOps::op_add_reg3;
        }
      }
      return d;
    }
    case 0x2:
    case 0x3: {
      static constexpr Handler kImm8[4] = {&CpuOps::op_mov_imm8, &CpuOps::op_cmp_imm8,
                                           &CpuOps::op_add_imm8, &CpuOps::op_sub_imm8};
      d.a = rd8;
      d.imm = insn & 0xFFu;
      d.fn = kImm8[(insn >> 11) & 3u];
      return d;
    }
    case 0x4: {
      if ((insn & 0xFC00u) == 0x4000u) {
        static constexpr Handler kDp[16] = {
            &CpuOps::op_and,     &CpuOps::op_eor, &CpuOps::op_lsl_reg, &CpuOps::op_lsr_reg,
            &CpuOps::op_asr_reg, &CpuOps::op_adc, &CpuOps::op_sbc,     &CpuOps::op_ror,
            &CpuOps::op_tst,     &CpuOps::op_rsb, &CpuOps::op_cmp_reg, &CpuOps::op_cmn,
            &CpuOps::op_orr,     &CpuOps::op_mul, &CpuOps::op_bic,     &CpuOps::op_mvn};
        d.a = rd0;
        d.b = rn3;
        d.fn = kDp[(insn >> 6) & 0xFu];
        return d;
      }
      if ((insn & 0xFC00u) == 0x4400u) {
        const unsigned op = (insn >> 8) & 3u;
        d.b = static_cast<std::uint8_t>((insn >> 3) & 0xFu);           // Rm
        d.a = static_cast<std::uint8_t>((insn & 7u) | ((insn >> 4) & 8u));  // Rd
        switch (op) {
          case 0:
            d.fn = &CpuOps::op_add_hi;
            ends_block = d.a == 15;  // ADD pc, ... branches
            break;
          case 1:
            d.fn = &CpuOps::op_cmp_hi;
            break;
          case 2:
            d.fn = &CpuOps::op_mov_hi;
            ends_block = d.a == 15;  // MOV pc, ... branches
            break;
          default:
            d.fn = &CpuOps::op_bx;
            d.c = static_cast<std::uint8_t>((insn >> 7) & 1u);
            ends_block = true;
            break;
        }
        return d;
      }
      // LDR literal: address is PC-relative, resolved now.
      d.a = rd8;
      d.imm = ((pc + 4) & ~3u) + (insn & 0xFFu) * 4;
      d.fn = &CpuOps::op_ldr_lit;
      return d;
    }
    case 0x5: {
      static constexpr Handler kLs[8] = {
          &CpuOps::op_str_reg,   &CpuOps::op_strh_reg, &CpuOps::op_strb_reg,
          &CpuOps::op_ldrsb_reg, &CpuOps::op_ldr_reg,  &CpuOps::op_ldrh_reg,
          &CpuOps::op_ldrb_reg,  &CpuOps::op_ldrsh_reg};
      d.a = rd0;
      d.b = rn3;
      d.c = rm6;
      d.fn = kLs[(insn >> 9) & 7u];
      return d;
    }
    case 0x6: {
      d.a = rd0;
      d.b = rn3;
      d.imm = ((insn >> 6) & 31u) * 4;
      d.fn = ((insn >> 11) & 1u) != 0 ? &CpuOps::op_ldr_imm : &CpuOps::op_str_imm;
      return d;
    }
    case 0x7: {
      d.a = rd0;
      d.b = rn3;
      d.imm = (insn >> 6) & 31u;
      d.fn = ((insn >> 11) & 1u) != 0 ? &CpuOps::op_ldrb_imm : &CpuOps::op_strb_imm;
      return d;
    }
    case 0x8: {
      d.a = rd0;
      d.b = rn3;
      d.imm = ((insn >> 6) & 31u) * 2;
      d.fn = ((insn >> 11) & 1u) != 0 ? &CpuOps::op_ldrh_imm : &CpuOps::op_strh_imm;
      return d;
    }
    case 0x9: {
      d.a = rd8;
      d.imm = (insn & 0xFFu) * 4;
      d.fn = ((insn >> 11) & 1u) != 0 ? &CpuOps::op_ldr_sp : &CpuOps::op_str_sp;
      return d;
    }
    case 0xA: {
      d.a = rd8;
      if (((insn >> 11) & 1u) != 0) {
        d.imm = (insn & 0xFFu) * 4;
        d.fn = &CpuOps::op_add_sp_imm;
      } else {
        d.imm = ((pc + 4) & ~3u) + (insn & 0xFFu) * 4;  // ADR, resolved now
        d.fn = &CpuOps::op_adr;
      }
      return d;
    }
    case 0xB: {
      if ((insn & 0xFF00u) == 0xB000u) {
        d.imm = (insn & 0x7Fu) * 4;
        d.c = static_cast<std::uint8_t>((insn >> 7) & 1u);
        d.fn = &CpuOps::op_sp_adj;
        return d;
      }
      if ((insn & 0xF600u) == 0xB400u) {
        const bool load = ((insn >> 11) & 1u) != 0;
        const bool r_bit = ((insn >> 8) & 1u) != 0;
        const std::uint32_t list = insn & 0xFFu;
        const unsigned count = static_cast<unsigned>(std::popcount(list)) + (r_bit ? 1u : 0u);
        if (count == 0) return trap();  // empty list: UndefinedInstruction
        d.b = static_cast<std::uint8_t>(count);
        d.c = r_bit ? 1 : 0;
        d.fn = load ? &CpuOps::op_pop : &CpuOps::op_push;
        if (load && r_bit) ends_block = true;  // POP {..., pc} branches
        return d;
      }
      if ((insn & 0xFF00u) == 0xB200u) {
        static constexpr Handler kExt[4] = {&CpuOps::op_sxth, &CpuOps::op_sxtb, &CpuOps::op_uxth,
                                            &CpuOps::op_uxtb};
        d.a = rd0;
        d.b = rn3;
        d.fn = kExt[(insn >> 6) & 3u];
        return d;
      }
      if ((insn & 0xFF00u) == 0xBA00u) {
        const unsigned op = (insn >> 6) & 3u;
        if (op == 2) return trap();  // REV variant 2 undefined
        d.a = rd0;
        d.b = rn3;
        d.fn = op == 0 ? &CpuOps::op_rev : op == 1 ? &CpuOps::op_rev16 : &CpuOps::op_revsh;
        return d;
      }
      if ((insn & 0xFF00u) == 0xBF00u) {
        d.fn = &CpuOps::op_nop;  // hints
        return d;
      }
      if ((insn & 0xFF00u) == 0xBE00u) return trap();  // BKPT
      if ((insn & 0xFFE8u) == 0xB660u) {
        d.fn = &CpuOps::op_nop;  // CPS
        return d;
      }
      return trap();
    }
    case 0xC: {
      const std::uint32_t list = insn & 0xFFu;
      const unsigned count = static_cast<unsigned>(std::popcount(list));
      if (count == 0) return trap();  // empty list: UndefinedInstruction
      d.a = rd8;
      d.b = static_cast<std::uint8_t>(count);
      d.fn = ((insn >> 11) & 1u) != 0 ? &CpuOps::op_ldm : &CpuOps::op_stm;
      return d;
    }
    case 0xD: {
      const unsigned cond = (insn >> 8) & 0xFu;
      if (cond == 0xF) {
        d.fn = &CpuOps::op_svc;  // halts the bus; the run loop stops after it
        ends_block = true;
        return d;
      }
      if (cond == 0xE) return trap();  // UDF
      const auto off = static_cast<std::int32_t>(static_cast<std::int8_t>(insn & 0xFFu)) * 2;
      d.c = static_cast<std::uint8_t>(cond);
      d.imm = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + 4 + off);
      d.fn = &CpuOps::op_b_cond;
      ends_block = true;
      return d;
    }
    case 0xE: {
      std::int32_t off = static_cast<std::int32_t>(insn & 0x7FFu);
      if (off & 0x400) off -= 0x800;
      d.imm = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) + 4 + off * 2);
      d.fn = &CpuOps::op_b;
      ends_block = true;
      return d;
    }
    default:
      return trap();
  }
}

void Cpu::execute32(std::uint16_t hi, std::uint16_t lo) {
  // BL: 11110 S imm10 : 11 J1 1 J2 imm11
  if ((hi & 0xF800u) == 0xF000u && (lo & 0xD000u) == 0xD000u) {
    const std::uint32_t s = (hi >> 10) & 1u;
    const std::uint32_t imm10 = hi & 0x3FFu;
    const std::uint32_t j1 = (lo >> 13) & 1u;
    const std::uint32_t j2 = (lo >> 11) & 1u;
    const std::uint32_t imm11 = lo & 0x7FFu;
    const std::uint32_t i1 = (~(j1 ^ s)) & 1u;
    const std::uint32_t i2 = (~(j2 ^ s)) & 1u;
    std::uint32_t imm = (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1);
    if (s != 0) imm |= 0xFE00'0000u;  // sign extend from bit 24
    regs_[14] = (pc_ + 4) | 1u;       // return address with Thumb bit
    branch_to(pc_ + 4 + imm);
    cycles_ += cyc_.bl;
    return;
  }
  // DSB/DMB/ISB and MSR/MRS: treated as architectural NOPs in the ISS.
  if ((hi & 0xFFF0u) == 0xF3B0u || (hi & 0xFFE0u) == 0xF3E0u || (hi & 0xFFE0u) == 0xF380u) {
    cycles_ += cyc_.alu;
    return;
  }
  throw UndefinedInstruction("unsupported 32-bit encoding " + hex(hi) + " " + hex(lo) + " at " +
                             hex(pc_));
}

void Cpu::execute16(std::uint16_t insn) {
  const auto rd0 = static_cast<int>(insn & 7u);          // bits 2:0
  const auto rn3 = static_cast<int>((insn >> 3) & 7u);   // bits 5:3
  const auto rm6 = static_cast<int>((insn >> 6) & 7u);   // bits 8:6
  const auto rd8 = static_cast<int>((insn >> 8) & 7u);   // bits 10:8

  switch (insn >> 12) {
    case 0x0:
    case 0x1: {
      const unsigned op = (insn >> 11) & 3u;
      if (op != 3) {
        // LSL/LSR/ASR immediate.
        const unsigned imm5 = (insn >> 6) & 31u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        if (op == 0) {  // LSL
          r = imm5 == 0 ? v : v << imm5;
          if (imm5 != 0) c_ = ((v >> (32 - imm5)) & 1u) != 0;
        } else if (op == 1) {  // LSR
          const unsigned sh = imm5 == 0 ? 32 : imm5;
          c_ = ((sh <= 32) && ((v >> (sh - 1)) & 1u)) != 0;
          r = sh == 32 ? 0 : v >> sh;
        } else {  // ASR
          const unsigned sh = imm5 == 0 ? 32 : imm5;
          const auto sv = static_cast<std::int32_t>(v);
          c_ = ((sv >> (sh - 1)) & 1) != 0;
          r = static_cast<std::uint32_t>(sh >= 32 ? (sv >> 31) : (sv >> sh));
        }
        set_nz(r);
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
      } else {
        // ADD/SUB register or 3-bit immediate.
        const bool imm_form = ((insn >> 10) & 1u) != 0;
        const bool subtract = ((insn >> 9) & 1u) != 0;
        const std::uint32_t a = regs_[static_cast<std::size_t>(rn3)];
        const std::uint32_t b =
            imm_form ? static_cast<std::uint32_t>(rm6) : regs_[static_cast<std::size_t>(rm6)];
        const std::uint32_t r =
            subtract ? add_with_carry(a, ~b, true, true) : add_with_carry(a, b, false, true);
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
      }
      return;
    }
    case 0x2:
    case 0x3: {
      // MOV/CMP/ADD/SUB immediate 8.
      const unsigned op = (insn >> 11) & 3u;
      const std::uint32_t imm8 = insn & 0xFFu;
      std::uint32_t& rd = regs_[static_cast<std::size_t>(rd8)];
      switch (op) {
        case 0: rd = imm8; set_nz(rd); break;                              // MOV
        case 1: add_with_carry(rd, ~imm8, true, true); break;              // CMP
        case 2: rd = add_with_carry(rd, imm8, false, true); break;         // ADD
        case 3: rd = add_with_carry(rd, ~imm8, true, true); break;         // SUB
      }
      cycles_ += cyc_.alu;
      return;
    }
    case 0x4: {
      if ((insn & 0xFC00u) == 0x4000u) {
        // Data-processing register.
        const unsigned op = (insn >> 6) & 0xFu;
        std::uint32_t& rd = regs_[static_cast<std::size_t>(rd0)];
        const std::uint32_t rm = regs_[static_cast<std::size_t>(rn3)];
        switch (op) {
          case 0x0: rd &= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // AND
          case 0x1: rd ^= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // EOR
          case 0x2: {                                                             // LSL reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              c_ = sh <= 32 && ((sh == 32 ? rd & 1u : (rd >> (32 - sh)) & 1u) != 0);
              rd = sh >= 32 ? 0 : rd << sh;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x3: {                                                             // LSR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              c_ = sh <= 32 && (((sh == 32 ? rd >> 31 : rd >> (sh - 1)) & 1u) != 0);
              rd = sh >= 32 ? 0 : rd >> sh;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x4: {                                                             // ASR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              const auto sv = static_cast<std::int32_t>(rd);
              const unsigned eff = sh >= 32 ? 31 : sh - 1;
              c_ = ((sv >> eff) & 1) != 0;
              rd = static_cast<std::uint32_t>(sh >= 32 ? sv >> 31 : sv >> sh);
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x5: rd = add_with_carry(rd, rm, c_, true); cycles_ += cyc_.alu; break;   // ADC
          case 0x6: rd = add_with_carry(rd, ~rm, c_, true); cycles_ += cyc_.alu; break;  // SBC
          case 0x7: {                                                             // ROR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              const unsigned r = sh & 31u;
              if (r != 0) rd = (rd >> r) | (rd << (32 - r));
              c_ = (rd >> 31) != 0;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x8: set_nz(rd & rm); cycles_ += cyc_.alu; break;                  // TST
          case 0x9: rd = add_with_carry(0, ~rm, true, true); cycles_ += cyc_.alu; break;  // RSB #0
          case 0xA: add_with_carry(rd, ~rm, true, true); cycles_ += cyc_.alu; break;      // CMP
          case 0xB: add_with_carry(rd, rm, false, true); cycles_ += cyc_.alu; break;      // CMN
          case 0xC: rd |= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // ORR
          case 0xD: rd *= rm; set_nz(rd); cycles_ += cyc_.mul; break;             // MUL
          case 0xE: rd &= ~rm; set_nz(rd); cycles_ += cyc_.alu; break;            // BIC
          case 0xF: rd = ~rm; set_nz(rd); cycles_ += cyc_.alu; break;             // MVN
        }
        return;
      }
      if ((insn & 0xFC00u) == 0x4400u) {
        // Hi-register ADD/CMP/MOV and BX/BLX.
        const unsigned op = (insn >> 8) & 3u;
        const int rm = static_cast<int>((insn >> 3) & 0xFu);
        const int rd = static_cast<int>((insn & 7u) | ((insn >> 4) & 8u));
        const std::uint32_t vm = read_reg_pc_adjusted(rm);
        switch (op) {
          case 0: {  // ADD (no flags)
            const std::uint32_t r = read_reg_pc_adjusted(rd) + vm;
            write_reg_branch_aware(rd, r);
            cycles_ += branched_ ? cyc_.branch_taken : cyc_.alu;
            return;
          }
          case 1:  // CMP
            add_with_carry(read_reg_pc_adjusted(rd), ~vm, true, true);
            cycles_ += cyc_.alu;
            return;
          case 2:  // MOV (no flags)
            write_reg_branch_aware(rd, vm);
            cycles_ += branched_ ? cyc_.branch_taken : cyc_.alu;
            return;
          case 3:  // BX / BLX register
            if (((insn >> 7) & 1u) != 0) regs_[14] = (pc_ + 2) | 1u;  // BLX
            branch_to(vm);
            cycles_ += cyc_.bx;
            return;
        }
        return;
      }
      // LDR literal: Rd = mem[Align(PC+4, 4) + imm8*4].
      const std::uint32_t imm8 = insn & 0xFFu;
      const std::uint32_t base = (pc_ + 4) & ~3u;
      regs_[static_cast<std::size_t>(rd8)] = bus_.read32(base + imm8 * 4);
      cycles_ += cyc_.load;
      return;
    }
    case 0x5: {
      // Load/store register offset.
      const unsigned op = (insn >> 9) & 7u;
      const std::uint32_t addr =
          regs_[static_cast<std::size_t>(rn3)] + regs_[static_cast<std::size_t>(rm6)];
      std::uint32_t& rd = regs_[static_cast<std::size_t>(rd0)];
      switch (op) {
        case 0: bus_.write32(addr, rd); cycles_ += cyc_.store; break;   // STR
        case 1: bus_.write16(addr, static_cast<std::uint16_t>(rd)); cycles_ += cyc_.store; break;
        case 2: bus_.write8(addr, static_cast<std::uint8_t>(rd)); cycles_ += cyc_.store; break;
        case 3:  // LDRSB
          rd = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(bus_.read8(addr))));
          cycles_ += cyc_.load;
          break;
        case 4: rd = bus_.read32(addr); cycles_ += cyc_.load; break;    // LDR
        case 5: rd = bus_.read16(addr); cycles_ += cyc_.load; break;    // LDRH
        case 6: rd = bus_.read8(addr); cycles_ += cyc_.load; break;     // LDRB
        case 7:  // LDRSH
          rd = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(bus_.read16(addr))));
          cycles_ += cyc_.load;
          break;
      }
      return;
    }
    case 0x6: {
      // STR/LDR word, imm5*4.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5 * 4;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write32(addr, regs_[static_cast<std::size_t>(rd0)]);
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read32(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x7: {
      // STRB/LDRB imm5.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write8(addr, static_cast<std::uint8_t>(regs_[static_cast<std::size_t>(rd0)]));
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read8(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x8: {
      // STRH/LDRH imm5*2.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5 * 2;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write16(addr, static_cast<std::uint16_t>(regs_[static_cast<std::size_t>(rd0)]));
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read16(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x9: {
      // STR/LDR SP-relative, imm8*4.
      const std::uint32_t imm8 = insn & 0xFFu;
      const std::uint32_t addr = regs_[13] + imm8 * 4;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write32(addr, regs_[static_cast<std::size_t>(rd8)]);
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd8)] = bus_.read32(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0xA: {
      // ADR / ADD Rd, SP, imm8*4.
      const std::uint32_t imm8 = insn & 0xFFu;
      const bool from_sp = ((insn >> 11) & 1u) != 0;
      const std::uint32_t base = from_sp ? regs_[13] : ((pc_ + 4) & ~3u);
      regs_[static_cast<std::size_t>(rd8)] = base + imm8 * 4;
      cycles_ += cyc_.alu;
      return;
    }
    case 0xB: {
      if ((insn & 0xFF00u) == 0xB000u) {
        // ADD/SUB SP, imm7*4.
        const std::uint32_t imm7 = (insn & 0x7Fu) * 4;
        if (((insn >> 7) & 1u) == 0) {
          regs_[13] += imm7;
        } else {
          regs_[13] -= imm7;
        }
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xF600u) == 0xB400u) {
        // PUSH/POP.
        const bool load = ((insn >> 11) & 1u) != 0;
        const bool r_bit = ((insn >> 8) & 1u) != 0;
        const std::uint32_t list = insn & 0xFFu;
        unsigned count = static_cast<unsigned>(std::popcount(list)) + (r_bit ? 1u : 0u);
        if (count == 0) throw UndefinedInstruction("empty register list at " + hex(pc_));
        if (!load) {
          std::uint32_t addr = regs_[13] - 4 * count;
          regs_[13] = addr;
          for (int r = 0; r < 8; ++r) {
            if ((list >> r) & 1u) {
              bus_.write32(addr, regs_[static_cast<std::size_t>(r)]);
              addr += 4;
            }
          }
          if (r_bit) bus_.write32(addr, regs_[14]);  // push LR
          cycles_ += cyc_.ldm_base + count;
        } else {
          std::uint32_t addr = regs_[13];
          for (int r = 0; r < 8; ++r) {
            if ((list >> r) & 1u) {
              regs_[static_cast<std::size_t>(r)] = bus_.read32(addr);
              addr += 4;
            }
          }
          bool to_pc = false;
          if (r_bit) {
            branch_to(bus_.read32(addr));
            addr += 4;
            to_pc = true;
          }
          regs_[13] = addr;
          cycles_ += cyc_.ldm_base + count + (to_pc ? cyc_.pop_pc_extra : 0);
        }
        return;
      }
      if ((insn & 0xFF00u) == 0xB200u) {
        // SXTH/SXTB/UXTH/UXTB.
        const unsigned op = (insn >> 6) & 3u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        switch (op) {
          case 0: r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(v))); break;
          case 1: r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(v))); break;
          case 2: r = v & 0xFFFFu; break;
          case 3: r = v & 0xFFu; break;
        }
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBA00u) {
        // REV/REV16/REVSH.
        const unsigned op = (insn >> 6) & 3u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        if (op == 0) {
          r = __builtin_bswap32(v);
        } else if (op == 1) {
          r = ((v & 0x00FF'00FFu) << 8) | ((v & 0xFF00'FF00u) >> 8);
        } else if (op == 3) {
          const auto h = static_cast<std::uint16_t>(__builtin_bswap16(static_cast<std::uint16_t>(v)));
          r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(h)));
        } else {
          throw UndefinedInstruction("REV variant 2 undefined at " + hex(pc_));
        }
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBF00u) {
        // Hints: NOP/SEV/WFE/WFI/YIELD all retire as NOPs here.
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBE00u) {
        throw UndefinedInstruction("BKPT reached at " + hex(pc_));
      }
      if ((insn & 0xFFE8u) == 0xB660u) {
        cycles_ += cyc_.alu;  // CPS: no interrupts in the ISS
        return;
      }
      throw UndefinedInstruction("unsupported misc encoding " + hex(insn) + " at " + hex(pc_));
    }
    case 0xC: {
      // STM/LDM (always writeback on M0's STMIA; LDM writeback unless Rn in list).
      const bool load = ((insn >> 11) & 1u) != 0;
      const std::uint32_t list = insn & 0xFFu;
      const unsigned count = static_cast<unsigned>(std::popcount(list));
      if (count == 0) throw UndefinedInstruction("empty register list at " + hex(pc_));
      std::uint32_t addr = regs_[static_cast<std::size_t>(rd8)];
      for (int r = 0; r < 8; ++r) {
        if (((list >> r) & 1u) == 0) continue;
        if (load) {
          regs_[static_cast<std::size_t>(r)] = bus_.read32(addr);
        } else {
          bus_.write32(addr, regs_[static_cast<std::size_t>(r)]);
        }
        addr += 4;
      }
      if (!load || ((list >> rd8) & 1u) == 0) regs_[static_cast<std::size_t>(rd8)] = addr;
      cycles_ += cyc_.ldm_base + count;
      return;
    }
    case 0xD: {
      const unsigned cond = (insn >> 8) & 0xFu;
      if (cond == 0xF) {
        // SVC: the ISS maps SVC #0 to "halt with r0 as exit code".
        bus_.write32(kMmioExit, regs_[0]);
        cycles_ += cyc_.branch_taken;
        return;
      }
      if (cond == 0xE) throw UndefinedInstruction("UDF at " + hex(pc_));
      const auto off = static_cast<std::int32_t>(static_cast<std::int8_t>(insn & 0xFFu)) * 2;
      if (condition_passed(cond)) {
        branch_to(static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 4 + off));
        cycles_ += cyc_.branch_taken;
      } else {
        cycles_ += cyc_.branch_not_taken;
      }
      return;
    }
    case 0xE: {
      // Unconditional B, offset11*2.
      std::int32_t off = static_cast<std::int32_t>(insn & 0x7FFu);
      if (off & 0x400) off -= 0x800;
      branch_to(static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 4 + off * 2));
      cycles_ += cyc_.branch_taken;
      return;
    }
    default:
      throw UndefinedInstruction("unsupported encoding " + hex(insn) + " at " + hex(pc_));
  }
}

}  // namespace ppatc::isa
