#include "ppatc/isa/cpu.hpp"

#include <bit>
#include <sstream>

namespace ppatc::isa {

namespace {
std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

Cpu::Cpu(Bus& bus, CycleModel cycles) : bus_{bus}, cyc_{cycles} {}

void Cpu::reset(std::uint32_t pc, std::uint32_t sp) {
  PPATC_EXPECT(pc % 2 == 0, "PC must be halfword aligned");
  PPATC_EXPECT(sp % 4 == 0, "SP must be word aligned");
  regs_.fill(0);
  regs_[13] = sp;
  pc_ = pc;
  n_ = z_ = c_ = v_ = false;
  cycles_ = 0;
  instructions_ = 0;
  branched_ = false;
}

std::uint32_t Cpu::reg(int index) const {
  PPATC_EXPECT(index >= 0 && index < 16, "register index out of range");
  if (index == 15) return pc_ + 4;
  return regs_[static_cast<std::size_t>(index)];
}

void Cpu::set_reg(int index, std::uint32_t value) {
  PPATC_EXPECT(index >= 0 && index < 15, "cannot set PC via set_reg; use reset");
  regs_[static_cast<std::size_t>(index)] = value;
}

std::uint32_t Cpu::read_reg_pc_adjusted(int index) const {
  return index == 15 ? pc_ + 4 : regs_[static_cast<std::size_t>(index)];
}

void Cpu::branch_to(std::uint32_t target) {
  pc_ = target & ~1u;  // Thumb bit stripped
  branched_ = true;
}

void Cpu::write_reg_branch_aware(int index, std::uint32_t value) {
  if (index == 15) {
    branch_to(value);
  } else {
    regs_[static_cast<std::size_t>(index)] = value;
  }
}

void Cpu::set_nz(std::uint32_t result) {
  n_ = (result >> 31) != 0;
  z_ = result == 0;
}

std::uint32_t Cpu::add_with_carry(std::uint32_t a, std::uint32_t b, bool carry_in,
                                  bool set_flags) {
  const std::uint64_t usum =
      static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b) + (carry_in ? 1u : 0u);
  const std::int64_t ssum = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) +
                            static_cast<std::int64_t>(static_cast<std::int32_t>(b)) +
                            (carry_in ? 1 : 0);
  const auto result = static_cast<std::uint32_t>(usum);
  if (set_flags) {
    set_nz(result);
    c_ = usum > 0xFFFF'FFFFull;
    v_ = ssum != static_cast<std::int64_t>(static_cast<std::int32_t>(result));
  }
  return result;
}

bool Cpu::condition_passed(unsigned cond) const {
  switch (cond) {
    case 0x0: return z_;                    // EQ
    case 0x1: return !z_;                   // NE
    case 0x2: return c_;                    // CS/HS
    case 0x3: return !c_;                   // CC/LO
    case 0x4: return n_;                    // MI
    case 0x5: return !n_;                   // PL
    case 0x6: return v_;                    // VS
    case 0x7: return !v_;                   // VC
    case 0x8: return c_ && !z_;             // HI
    case 0x9: return !c_ || z_;             // LS
    case 0xA: return n_ == v_;              // GE
    case 0xB: return n_ != v_;              // LT
    case 0xC: return !z_ && (n_ == v_);     // GT
    case 0xD: return z_ || (n_ != v_);      // LE
    case 0xE: return true;                  // AL
    default: return true;
  }
}

bool Cpu::step() {
  if (bus_.halted()) return false;
  const std::uint16_t insn = bus_.fetch16(pc_);
  branched_ = false;
  if ((insn & 0xF800u) >= 0xE800u) {
    // 32-bit encoding (BL and system instructions).
    const std::uint16_t lo = bus_.fetch16(pc_ + 2);
    execute32(insn, lo);
    if (!branched_) pc_ += 4;
  } else {
    execute16(insn);
    if (!branched_) pc_ += 2;
  }
  ++instructions_;
  return !bus_.halted();
}

Cpu::RunResult Cpu::run(std::uint64_t max_instructions) {
  RunResult r;
  const std::uint64_t start_insn = instructions_;
  const std::uint64_t start_cyc = cycles_;
  while (instructions_ - start_insn < max_instructions) {
    if (!step()) break;
  }
  r.instructions = instructions_ - start_insn;
  r.cycles = cycles_ - start_cyc;
  r.halted = bus_.halted();
  return r;
}

void Cpu::execute32(std::uint16_t hi, std::uint16_t lo) {
  // BL: 11110 S imm10 : 11 J1 1 J2 imm11
  if ((hi & 0xF800u) == 0xF000u && (lo & 0xD000u) == 0xD000u) {
    const std::uint32_t s = (hi >> 10) & 1u;
    const std::uint32_t imm10 = hi & 0x3FFu;
    const std::uint32_t j1 = (lo >> 13) & 1u;
    const std::uint32_t j2 = (lo >> 11) & 1u;
    const std::uint32_t imm11 = lo & 0x7FFu;
    const std::uint32_t i1 = (~(j1 ^ s)) & 1u;
    const std::uint32_t i2 = (~(j2 ^ s)) & 1u;
    std::uint32_t imm = (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1);
    if (s != 0) imm |= 0xFE00'0000u;  // sign extend from bit 24
    regs_[14] = (pc_ + 4) | 1u;       // return address with Thumb bit
    branch_to(pc_ + 4 + imm);
    cycles_ += cyc_.bl;
    return;
  }
  // DSB/DMB/ISB and MSR/MRS: treated as architectural NOPs in the ISS.
  if ((hi & 0xFFF0u) == 0xF3B0u || (hi & 0xFFE0u) == 0xF3E0u || (hi & 0xFFE0u) == 0xF380u) {
    cycles_ += cyc_.alu;
    return;
  }
  throw UndefinedInstruction("unsupported 32-bit encoding " + hex(hi) + " " + hex(lo) + " at " +
                             hex(pc_));
}

void Cpu::execute16(std::uint16_t insn) {
  const auto rd0 = static_cast<int>(insn & 7u);          // bits 2:0
  const auto rn3 = static_cast<int>((insn >> 3) & 7u);   // bits 5:3
  const auto rm6 = static_cast<int>((insn >> 6) & 7u);   // bits 8:6
  const auto rd8 = static_cast<int>((insn >> 8) & 7u);   // bits 10:8

  switch (insn >> 12) {
    case 0x0:
    case 0x1: {
      const unsigned op = (insn >> 11) & 3u;
      if (op != 3) {
        // LSL/LSR/ASR immediate.
        const unsigned imm5 = (insn >> 6) & 31u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        if (op == 0) {  // LSL
          r = imm5 == 0 ? v : v << imm5;
          if (imm5 != 0) c_ = ((v >> (32 - imm5)) & 1u) != 0;
        } else if (op == 1) {  // LSR
          const unsigned sh = imm5 == 0 ? 32 : imm5;
          c_ = ((sh <= 32) && ((v >> (sh - 1)) & 1u)) != 0;
          r = sh == 32 ? 0 : v >> sh;
        } else {  // ASR
          const unsigned sh = imm5 == 0 ? 32 : imm5;
          const auto sv = static_cast<std::int32_t>(v);
          c_ = ((sv >> (sh - 1)) & 1) != 0;
          r = static_cast<std::uint32_t>(sh >= 32 ? (sv >> 31) : (sv >> sh));
        }
        set_nz(r);
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
      } else {
        // ADD/SUB register or 3-bit immediate.
        const bool imm_form = ((insn >> 10) & 1u) != 0;
        const bool subtract = ((insn >> 9) & 1u) != 0;
        const std::uint32_t a = regs_[static_cast<std::size_t>(rn3)];
        const std::uint32_t b =
            imm_form ? static_cast<std::uint32_t>(rm6) : regs_[static_cast<std::size_t>(rm6)];
        const std::uint32_t r =
            subtract ? add_with_carry(a, ~b, true, true) : add_with_carry(a, b, false, true);
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
      }
      return;
    }
    case 0x2:
    case 0x3: {
      // MOV/CMP/ADD/SUB immediate 8.
      const unsigned op = (insn >> 11) & 3u;
      const std::uint32_t imm8 = insn & 0xFFu;
      std::uint32_t& rd = regs_[static_cast<std::size_t>(rd8)];
      switch (op) {
        case 0: rd = imm8; set_nz(rd); break;                              // MOV
        case 1: add_with_carry(rd, ~imm8, true, true); break;              // CMP
        case 2: rd = add_with_carry(rd, imm8, false, true); break;         // ADD
        case 3: rd = add_with_carry(rd, ~imm8, true, true); break;         // SUB
      }
      cycles_ += cyc_.alu;
      return;
    }
    case 0x4: {
      if ((insn & 0xFC00u) == 0x4000u) {
        // Data-processing register.
        const unsigned op = (insn >> 6) & 0xFu;
        std::uint32_t& rd = regs_[static_cast<std::size_t>(rd0)];
        const std::uint32_t rm = regs_[static_cast<std::size_t>(rn3)];
        switch (op) {
          case 0x0: rd &= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // AND
          case 0x1: rd ^= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // EOR
          case 0x2: {                                                             // LSL reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              c_ = sh <= 32 && ((sh == 32 ? rd & 1u : (rd >> (32 - sh)) & 1u) != 0);
              rd = sh >= 32 ? 0 : rd << sh;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x3: {                                                             // LSR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              c_ = sh <= 32 && (((sh == 32 ? rd >> 31 : rd >> (sh - 1)) & 1u) != 0);
              rd = sh >= 32 ? 0 : rd >> sh;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x4: {                                                             // ASR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              const auto sv = static_cast<std::int32_t>(rd);
              const unsigned eff = sh >= 32 ? 31 : sh - 1;
              c_ = ((sv >> eff) & 1) != 0;
              rd = static_cast<std::uint32_t>(sh >= 32 ? sv >> 31 : sv >> sh);
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x5: rd = add_with_carry(rd, rm, c_, true); cycles_ += cyc_.alu; break;   // ADC
          case 0x6: rd = add_with_carry(rd, ~rm, c_, true); cycles_ += cyc_.alu; break;  // SBC
          case 0x7: {                                                             // ROR reg
            const unsigned sh = rm & 0xFFu;
            if (sh != 0) {
              const unsigned r = sh & 31u;
              if (r != 0) rd = (rd >> r) | (rd << (32 - r));
              c_ = (rd >> 31) != 0;
            }
            set_nz(rd);
            cycles_ += cyc_.alu;
            break;
          }
          case 0x8: set_nz(rd & rm); cycles_ += cyc_.alu; break;                  // TST
          case 0x9: rd = add_with_carry(0, ~rm, true, true); cycles_ += cyc_.alu; break;  // RSB #0
          case 0xA: add_with_carry(rd, ~rm, true, true); cycles_ += cyc_.alu; break;      // CMP
          case 0xB: add_with_carry(rd, rm, false, true); cycles_ += cyc_.alu; break;      // CMN
          case 0xC: rd |= rm; set_nz(rd); cycles_ += cyc_.alu; break;             // ORR
          case 0xD: rd *= rm; set_nz(rd); cycles_ += cyc_.mul; break;             // MUL
          case 0xE: rd &= ~rm; set_nz(rd); cycles_ += cyc_.alu; break;            // BIC
          case 0xF: rd = ~rm; set_nz(rd); cycles_ += cyc_.alu; break;             // MVN
        }
        return;
      }
      if ((insn & 0xFC00u) == 0x4400u) {
        // Hi-register ADD/CMP/MOV and BX/BLX.
        const unsigned op = (insn >> 8) & 3u;
        const int rm = static_cast<int>((insn >> 3) & 0xFu);
        const int rd = static_cast<int>((insn & 7u) | ((insn >> 4) & 8u));
        const std::uint32_t vm = read_reg_pc_adjusted(rm);
        switch (op) {
          case 0: {  // ADD (no flags)
            const std::uint32_t r = read_reg_pc_adjusted(rd) + vm;
            write_reg_branch_aware(rd, r);
            cycles_ += branched_ ? cyc_.branch_taken : cyc_.alu;
            return;
          }
          case 1:  // CMP
            add_with_carry(read_reg_pc_adjusted(rd), ~vm, true, true);
            cycles_ += cyc_.alu;
            return;
          case 2:  // MOV (no flags)
            write_reg_branch_aware(rd, vm);
            cycles_ += branched_ ? cyc_.branch_taken : cyc_.alu;
            return;
          case 3:  // BX / BLX register
            if (((insn >> 7) & 1u) != 0) regs_[14] = (pc_ + 2) | 1u;  // BLX
            branch_to(vm);
            cycles_ += cyc_.bx;
            return;
        }
        return;
      }
      // LDR literal: Rd = mem[Align(PC+4, 4) + imm8*4].
      const std::uint32_t imm8 = insn & 0xFFu;
      const std::uint32_t base = (pc_ + 4) & ~3u;
      regs_[static_cast<std::size_t>(rd8)] = bus_.read32(base + imm8 * 4);
      cycles_ += cyc_.load;
      return;
    }
    case 0x5: {
      // Load/store register offset.
      const unsigned op = (insn >> 9) & 7u;
      const std::uint32_t addr =
          regs_[static_cast<std::size_t>(rn3)] + regs_[static_cast<std::size_t>(rm6)];
      std::uint32_t& rd = regs_[static_cast<std::size_t>(rd0)];
      switch (op) {
        case 0: bus_.write32(addr, rd); cycles_ += cyc_.store; break;   // STR
        case 1: bus_.write16(addr, static_cast<std::uint16_t>(rd)); cycles_ += cyc_.store; break;
        case 2: bus_.write8(addr, static_cast<std::uint8_t>(rd)); cycles_ += cyc_.store; break;
        case 3:  // LDRSB
          rd = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(bus_.read8(addr))));
          cycles_ += cyc_.load;
          break;
        case 4: rd = bus_.read32(addr); cycles_ += cyc_.load; break;    // LDR
        case 5: rd = bus_.read16(addr); cycles_ += cyc_.load; break;    // LDRH
        case 6: rd = bus_.read8(addr); cycles_ += cyc_.load; break;     // LDRB
        case 7:  // LDRSH
          rd = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(bus_.read16(addr))));
          cycles_ += cyc_.load;
          break;
      }
      return;
    }
    case 0x6: {
      // STR/LDR word, imm5*4.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5 * 4;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write32(addr, regs_[static_cast<std::size_t>(rd0)]);
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read32(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x7: {
      // STRB/LDRB imm5.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write8(addr, static_cast<std::uint8_t>(regs_[static_cast<std::size_t>(rd0)]));
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read8(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x8: {
      // STRH/LDRH imm5*2.
      const std::uint32_t imm5 = (insn >> 6) & 31u;
      const std::uint32_t addr = regs_[static_cast<std::size_t>(rn3)] + imm5 * 2;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write16(addr, static_cast<std::uint16_t>(regs_[static_cast<std::size_t>(rd0)]));
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd0)] = bus_.read16(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0x9: {
      // STR/LDR SP-relative, imm8*4.
      const std::uint32_t imm8 = insn & 0xFFu;
      const std::uint32_t addr = regs_[13] + imm8 * 4;
      if (((insn >> 11) & 1u) == 0) {
        bus_.write32(addr, regs_[static_cast<std::size_t>(rd8)]);
        cycles_ += cyc_.store;
      } else {
        regs_[static_cast<std::size_t>(rd8)] = bus_.read32(addr);
        cycles_ += cyc_.load;
      }
      return;
    }
    case 0xA: {
      // ADR / ADD Rd, SP, imm8*4.
      const std::uint32_t imm8 = insn & 0xFFu;
      const bool from_sp = ((insn >> 11) & 1u) != 0;
      const std::uint32_t base = from_sp ? regs_[13] : ((pc_ + 4) & ~3u);
      regs_[static_cast<std::size_t>(rd8)] = base + imm8 * 4;
      cycles_ += cyc_.alu;
      return;
    }
    case 0xB: {
      if ((insn & 0xFF00u) == 0xB000u) {
        // ADD/SUB SP, imm7*4.
        const std::uint32_t imm7 = (insn & 0x7Fu) * 4;
        if (((insn >> 7) & 1u) == 0) {
          regs_[13] += imm7;
        } else {
          regs_[13] -= imm7;
        }
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xF600u) == 0xB400u) {
        // PUSH/POP.
        const bool load = ((insn >> 11) & 1u) != 0;
        const bool r_bit = ((insn >> 8) & 1u) != 0;
        const std::uint32_t list = insn & 0xFFu;
        unsigned count = static_cast<unsigned>(std::popcount(list)) + (r_bit ? 1u : 0u);
        if (count == 0) throw UndefinedInstruction("empty register list at " + hex(pc_));
        if (!load) {
          std::uint32_t addr = regs_[13] - 4 * count;
          regs_[13] = addr;
          for (int r = 0; r < 8; ++r) {
            if ((list >> r) & 1u) {
              bus_.write32(addr, regs_[static_cast<std::size_t>(r)]);
              addr += 4;
            }
          }
          if (r_bit) bus_.write32(addr, regs_[14]);  // push LR
          cycles_ += cyc_.ldm_base + count;
        } else {
          std::uint32_t addr = regs_[13];
          for (int r = 0; r < 8; ++r) {
            if ((list >> r) & 1u) {
              regs_[static_cast<std::size_t>(r)] = bus_.read32(addr);
              addr += 4;
            }
          }
          bool to_pc = false;
          if (r_bit) {
            branch_to(bus_.read32(addr));
            addr += 4;
            to_pc = true;
          }
          regs_[13] = addr;
          cycles_ += cyc_.ldm_base + count + (to_pc ? cyc_.pop_pc_extra : 0);
        }
        return;
      }
      if ((insn & 0xFF00u) == 0xB200u) {
        // SXTH/SXTB/UXTH/UXTB.
        const unsigned op = (insn >> 6) & 3u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        switch (op) {
          case 0: r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(v))); break;
          case 1: r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(v))); break;
          case 2: r = v & 0xFFFFu; break;
          case 3: r = v & 0xFFu; break;
        }
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBA00u) {
        // REV/REV16/REVSH.
        const unsigned op = (insn >> 6) & 3u;
        const std::uint32_t v = regs_[static_cast<std::size_t>(rn3)];
        std::uint32_t r = 0;
        if (op == 0) {
          r = __builtin_bswap32(v);
        } else if (op == 1) {
          r = ((v & 0x00FF'00FFu) << 8) | ((v & 0xFF00'FF00u) >> 8);
        } else if (op == 3) {
          const auto h = static_cast<std::uint16_t>(__builtin_bswap16(static_cast<std::uint16_t>(v)));
          r = static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(h)));
        } else {
          throw UndefinedInstruction("REV variant 2 undefined at " + hex(pc_));
        }
        regs_[static_cast<std::size_t>(rd0)] = r;
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBF00u) {
        // Hints: NOP/SEV/WFE/WFI/YIELD all retire as NOPs here.
        cycles_ += cyc_.alu;
        return;
      }
      if ((insn & 0xFF00u) == 0xBE00u) {
        throw UndefinedInstruction("BKPT reached at " + hex(pc_));
      }
      if ((insn & 0xFFE8u) == 0xB660u) {
        cycles_ += cyc_.alu;  // CPS: no interrupts in the ISS
        return;
      }
      throw UndefinedInstruction("unsupported misc encoding " + hex(insn) + " at " + hex(pc_));
    }
    case 0xC: {
      // STM/LDM (always writeback on M0's STMIA; LDM writeback unless Rn in list).
      const bool load = ((insn >> 11) & 1u) != 0;
      const std::uint32_t list = insn & 0xFFu;
      const unsigned count = static_cast<unsigned>(std::popcount(list));
      if (count == 0) throw UndefinedInstruction("empty register list at " + hex(pc_));
      std::uint32_t addr = regs_[static_cast<std::size_t>(rd8)];
      for (int r = 0; r < 8; ++r) {
        if (((list >> r) & 1u) == 0) continue;
        if (load) {
          regs_[static_cast<std::size_t>(r)] = bus_.read32(addr);
        } else {
          bus_.write32(addr, regs_[static_cast<std::size_t>(r)]);
        }
        addr += 4;
      }
      if (!load || ((list >> rd8) & 1u) == 0) regs_[static_cast<std::size_t>(rd8)] = addr;
      cycles_ += cyc_.ldm_base + count;
      return;
    }
    case 0xD: {
      const unsigned cond = (insn >> 8) & 0xFu;
      if (cond == 0xF) {
        // SVC: the ISS maps SVC #0 to "halt with r0 as exit code".
        bus_.write32(kMmioExit, regs_[0]);
        cycles_ += cyc_.branch_taken;
        return;
      }
      if (cond == 0xE) throw UndefinedInstruction("UDF at " + hex(pc_));
      const auto off = static_cast<std::int32_t>(static_cast<std::int8_t>(insn & 0xFFu)) * 2;
      if (condition_passed(cond)) {
        branch_to(static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 4 + off));
        cycles_ += cyc_.branch_taken;
      } else {
        cycles_ += cyc_.branch_not_taken;
      }
      return;
    }
    case 0xE: {
      // Unconditional B, offset11*2.
      std::int32_t off = static_cast<std::int32_t>(insn & 0x7FFu);
      if (off & 0x400) off -= 0x800;
      branch_to(static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) + 4 + off * 2));
      cycles_ += cyc_.branch_taken;
      return;
    }
    default:
      throw UndefinedInstruction("unsupported encoding " + hex(insn) + " at " + hex(pc_));
  }
}

}  // namespace ppatc::isa
