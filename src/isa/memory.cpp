#include "ppatc/isa/memory.hpp"

#include <sstream>

namespace ppatc::isa {

namespace {
std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

Bus::Bus() = default;

void Bus::load_program(std::uint32_t addr, const std::vector<std::uint8_t>& bytes) {
  PPATC_EXPECT(addr >= kProgramBase && addr - kProgramBase + bytes.size() <= kProgramSize,
               "program image does not fit in program memory");
  std::copy(bytes.begin(), bytes.end(), program_.begin() + (addr - kProgramBase));
  ++program_epoch_;
}

void Bus::load_data(std::uint32_t addr, const std::vector<std::uint8_t>& bytes) {
  PPATC_EXPECT(addr >= kDataBase && addr - kDataBase + bytes.size() <= kDataSize,
               "data image does not fit in data memory");
  std::copy(bytes.begin(), bytes.end(), data_.begin() + (addr - kDataBase));
}

Bus::Target Bus::decode(std::uint32_t addr, unsigned size) const {
  // Region tests use offset arithmetic (addr - base <= region size - access
  // size, relying on unsigned wrap for addr < base) instead of addr + size
  // comparisons: near 2^32, addr + size wraps and would misclassify the top
  // few bytes of the address space as program memory.
  if (addr % size != 0) throw BusFault("misaligned " + std::to_string(size) + "-byte access at " + hex(addr));
  if (addr - kProgramBase <= kProgramSize - size) {
    return {Region::kProgram, addr - kProgramBase};
  }
  if (addr - kDataBase <= kDataSize - size) {
    return {Region::kData, addr - kDataBase};
  }
  if (addr - kMmioBase <= 0x10 - size && size == 4) {
    return {Region::kMmio, addr - kMmioBase};
  }
  throw BusFault("bus fault: unmapped access at " + hex(addr));
}

std::uint32_t Bus::read32_slow(std::uint32_t addr) {
  const Target t = decode(addr, 4);
  ++stats_.data_reads;
  const std::uint8_t* p = nullptr;
  if (t.region == Region::kProgram) {
    ++stats_.program_reads;
    p = program_.data() + t.offset;
  } else if (t.region == Region::kData) {
    ++stats_.data_mem_reads;
    p = data_.data() + t.offset;
  } else {
    throw BusFault("MMIO read not supported at " + hex(addr));
  }
  return load_le32(p);
}

std::uint16_t Bus::read16_slow(std::uint32_t addr) {
  const Target t = decode(addr, 2);
  ++stats_.data_reads;
  const std::uint8_t* p = nullptr;
  if (t.region == Region::kProgram) {
    ++stats_.program_reads;
    p = program_.data() + t.offset;
  } else if (t.region == Region::kData) {
    ++stats_.data_mem_reads;
    p = data_.data() + t.offset;
  } else {
    throw BusFault("MMIO halfword access at " + hex(addr));
  }
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint8_t Bus::read8_slow(std::uint32_t addr) {
  const Target t = decode(addr, 1);
  ++stats_.data_reads;
  if (t.region == Region::kProgram) {
    ++stats_.program_reads;
    return program_[t.offset];
  }
  if (t.region == Region::kData) {
    ++stats_.data_mem_reads;
    return data_[t.offset];
  }
  throw BusFault("MMIO byte access at " + hex(addr));
}

void Bus::write32_slow(std::uint32_t addr, std::uint32_t value) {
  const Target t = decode(addr, 4);
  ++stats_.data_writes;
  if (t.region == Region::kMmio) {
    mmio_write(addr, value);
    return;
  }
  if (t.region == Region::kProgram) throw BusFault("write to program memory at " + hex(addr));
  ++stats_.data_mem_writes;
  store_le32(data_.data() + t.offset, value);
}

void Bus::write16_slow(std::uint32_t addr, std::uint16_t value) {
  const Target t = decode(addr, 2);
  ++stats_.data_writes;
  if (t.region != Region::kData) throw BusFault("halfword write outside data memory at " + hex(addr));
  ++stats_.data_mem_writes;
  data_[t.offset] = static_cast<std::uint8_t>(value);
  data_[t.offset + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Bus::write8_slow(std::uint32_t addr, std::uint8_t value) {
  const Target t = decode(addr, 1);
  ++stats_.data_writes;
  if (t.region != Region::kData) throw BusFault("byte write outside data memory at " + hex(addr));
  ++stats_.data_mem_writes;
  data_[t.offset] = value;
}

std::uint16_t Bus::fetch16_slow(std::uint32_t addr) {
  if (addr % 2 != 0) throw BusFault("misaligned fetch at " + hex(addr));
  throw BusFault("fetch outside program memory at " + hex(addr));
}

std::uint16_t Bus::peek16(std::uint32_t addr) const {
  if (addr % 2 != 0) throw BusFault("misaligned fetch at " + hex(addr));
  if (addr < kProgramBase || addr + 2 > kProgramBase + kProgramSize) {
    throw BusFault("fetch outside program memory at " + hex(addr));
  }
  const std::uint32_t off = addr - kProgramBase;
  return static_cast<std::uint16_t>(program_[off] | (program_[off + 1] << 8));
}

std::uint32_t Bus::peek32(std::uint32_t addr) const {
  const Target t = decode(addr, 4);
  const std::uint8_t* p = t.region == Region::kProgram ? program_.data() + t.offset
                          : t.region == Region::kData  ? data_.data() + t.offset
                                                       : nullptr;
  if (p == nullptr) throw BusFault("peek at MMIO " + hex(addr));
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void Bus::poke32(std::uint32_t addr, std::uint32_t value) {
  const Target t = decode(addr, 4);
  std::uint8_t* p = t.region == Region::kProgram ? program_.data() + t.offset
                    : t.region == Region::kData  ? data_.data() + t.offset
                                                 : nullptr;
  if (p == nullptr) throw BusFault("poke at MMIO " + hex(addr));
  p[0] = static_cast<std::uint8_t>(value);
  p[1] = static_cast<std::uint8_t>(value >> 8);
  p[2] = static_cast<std::uint8_t>(value >> 16);
  p[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint8_t Bus::peek8(std::uint32_t addr) const {
  const Target t = decode(addr, 1);
  if (t.region == Region::kProgram) return program_[t.offset];
  if (t.region == Region::kData) return data_[t.offset];
  throw BusFault("peek at MMIO " + hex(addr));
}

void Bus::mmio_write(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kMmioExit:
      halted_ = true;
      exit_code_ = value;
      return;
    case kMmioPutChar:
      console_.push_back(static_cast<char>(value & 0xFF));
      return;
    case kMmioPutWord:
      word_log_.push_back(value);
      return;
    default:
      throw BusFault("write to unknown MMIO register " + hex(addr));
  }
}

}  // namespace ppatc::isa
