// ppatc: ARMv6-M (Cortex-M0 class) instruction-set simulator.
//
// Executes the Thumb instruction set of the Cortex-M0 with a per-instruction
// cycle model matching the M0 technical reference manual (1-cycle ALU,
// 2-cycle loads/stores, 3-cycle taken branches, 1+N LDM/STM, 4-cycle BL).
// This replaces the paper's Synopsys-VCS RTL simulation for the purpose of
// counting execution cycles and eDRAM accesses per workload: the ISS executes
// the same program semantics and reports the same statistics.
//
// `run()` dispatches through a threaded-code engine by default: straight-line
// spans are decoded once into handler-pointer instruction records, cached as
// basic blocks keyed by start PC, and re-executed without touching the
// nested decode switches again. The original switch interpreter remains
// available (Dispatch::kSwitch, and always via `step()`) as the differential
// oracle — both engines produce identical architectural state, cycle counts,
// and AccessStats, which test_isa_dispatch.cpp asserts per workload.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppatc/isa/memory.hpp"

namespace ppatc::isa {

/// Per-class cycle costs (Cortex-M0 TRM defaults; the multiplier is the
/// single-cycle option).
struct CycleModel {
  std::uint64_t alu = 1;
  std::uint64_t load = 2;
  std::uint64_t store = 2;
  std::uint64_t branch_taken = 3;
  std::uint64_t branch_not_taken = 1;
  std::uint64_t bl = 4;
  std::uint64_t bx = 3;
  std::uint64_t mul = 1;
  std::uint64_t ldm_base = 1;      ///< plus 1 per register
  std::uint64_t pop_pc_extra = 3;  ///< POP {..., pc}: N + 1 + this
};

/// Thrown when the ISS encounters an undefined/unsupported encoding.
class UndefinedInstruction : public std::runtime_error {
 public:
  explicit UndefinedInstruction(const std::string& what) : std::runtime_error(what) {}
};

struct CpuOps;

class Cpu {
 public:
  /// Execution engine used by `run()`.
  enum class Dispatch {
    kThreaded,  ///< pre-decoded handler table + basic-block cache (default)
    kSwitch,    ///< original nested-switch interpreter — the differential oracle
  };

  explicit Cpu(Bus& bus, CycleModel cycles = {}, Dispatch dispatch = Dispatch::kThreaded);

  /// Sets PC (halfword-aligned) and SP, clears registers/flags/counters.
  /// Cached decoded blocks survive (the program has not changed).
  void reset(std::uint32_t pc, std::uint32_t sp);

  /// Executes one instruction via the switch interpreter. Returns false once
  /// the bus has halted (MMIO exit) — the halting write itself still
  /// executes.
  bool step();

  struct RunResult {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    bool halted = false;  ///< true if the program exited via MMIO
  };

  /// Runs until MMIO halt or the instruction budget is exhausted, using the
  /// configured dispatch engine.
  RunResult run(std::uint64_t max_instructions);

  [[nodiscard]] std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t sp() const { return regs_[13]; }

  [[nodiscard]] bool flag_n() const { return n_; }
  [[nodiscard]] bool flag_z() const { return z_; }
  [[nodiscard]] bool flag_c() const { return c_; }
  [[nodiscard]] bool flag_v() const { return v_; }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }

  [[nodiscard]] Bus& bus() { return bus_; }

 private:
  friend struct CpuOps;

  struct DecodedInsn;
  using Handler = void (*)(Cpu&, const DecodedInsn&);

  /// One pre-decoded instruction: the handler plus every field it needs,
  /// extracted at decode time. PC-relative quantities (branch targets, LDR
  /// literal addresses, BL link values) are pre-resolved to absolute values —
  /// valid because a block is only ever entered at its start PC.
  struct DecodedInsn {
    Handler fn = nullptr;
    std::uint32_t imm = 0;             ///< immediate / absolute target or address
    std::uint32_t imm2 = 0;            ///< secondary immediate (BL link value)
    std::uint16_t raw = 0;             ///< raw halfword (register lists)
    std::uint8_t a = 0, b = 0, c = 0;  ///< register / operation fields
    std::uint8_t halfwords = 0;        ///< fetches replayed at execution (0 = trap)
  };

  /// Decoded straight-line span: ends at any instruction that can write PC,
  /// at a trap (an encoding the decoder defers to the switch path, e.g. one
  /// that raises UndefinedInstruction), or at the length cap.
  struct Block {
    std::vector<DecodedInsn> insns;
  };

  // r15 as read by instructions: current instruction address + 4.
  [[nodiscard]] std::uint32_t read_reg_pc_adjusted(int index) const;
  void write_reg_branch_aware(int index, std::uint32_t value);
  void branch_to(std::uint32_t target);

  void execute16(std::uint16_t insn);
  void execute32(std::uint16_t hi, std::uint16_t lo);

  // Result discarded by compares (CMP/CMN/TST): only the flags matter there.
  std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b, bool carry_in, bool set_flags);
  void set_nz(std::uint32_t result);
  [[nodiscard]] bool condition_passed(unsigned cond) const;

  RunResult run_switch(std::uint64_t max_instructions);
  RunResult run_threaded(std::uint64_t max_instructions);
  [[nodiscard]] const Block& block_at(std::uint32_t pc);
  void decode_block(std::uint32_t pc, Block& out) const;
  [[nodiscard]] DecodedInsn decode_one(std::uint32_t pc, bool& ends_block) const;
  void flush_block_cache();

  Bus& bus_;
  CycleModel cyc_;
  Dispatch dispatch_;
  std::array<std::uint32_t, 16> regs_{};
  std::uint32_t pc_ = 0;  // address of the current instruction
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  bool branched_ = false;  // set by the current instruction if it wrote PC

  // Decoded-block cache, direct-mapped by pc/2; flushed when the bus program
  // epoch moves (the bus faults stores to program memory, so `load_program`
  // is the only invalidation source). Built lazily on the first threaded run.
  std::vector<std::int32_t> block_map_;  // pc/2 -> index into blocks_, -1 = miss
  std::vector<Block> blocks_;
  Block out_of_range_block_;  // single trap: lets fetch16 raise the exact BusFault
  std::uint32_t cache_epoch_ = 0;
  std::uint64_t block_hits_ = 0;      // flushed to isa.decoded_block_hits per run
  std::uint64_t blocks_decoded_ = 0;  // flushed to isa.decoded_blocks per run
};

}  // namespace ppatc::isa
