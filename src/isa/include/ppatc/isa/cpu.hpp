// ppatc: ARMv6-M (Cortex-M0 class) instruction-set simulator.
//
// Executes the Thumb instruction set of the Cortex-M0 with a per-instruction
// cycle model matching the M0 technical reference manual (1-cycle ALU,
// 2-cycle loads/stores, 3-cycle taken branches, 1+N LDM/STM, 4-cycle BL).
// This replaces the paper's Synopsys-VCS RTL simulation for the purpose of
// counting execution cycles and eDRAM accesses per workload: the ISS executes
// the same program semantics and reports the same statistics.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "ppatc/isa/memory.hpp"

namespace ppatc::isa {

/// Per-class cycle costs (Cortex-M0 TRM defaults; the multiplier is the
/// single-cycle option).
struct CycleModel {
  std::uint64_t alu = 1;
  std::uint64_t load = 2;
  std::uint64_t store = 2;
  std::uint64_t branch_taken = 3;
  std::uint64_t branch_not_taken = 1;
  std::uint64_t bl = 4;
  std::uint64_t bx = 3;
  std::uint64_t mul = 1;
  std::uint64_t ldm_base = 1;      ///< plus 1 per register
  std::uint64_t pop_pc_extra = 3;  ///< POP {..., pc}: N + 1 + this
};

/// Thrown when the ISS encounters an undefined/unsupported encoding.
class UndefinedInstruction : public std::runtime_error {
 public:
  explicit UndefinedInstruction(const std::string& what) : std::runtime_error(what) {}
};

class Cpu {
 public:
  explicit Cpu(Bus& bus, CycleModel cycles = {});

  /// Sets PC (halfword-aligned) and SP, clears registers/flags/counters.
  void reset(std::uint32_t pc, std::uint32_t sp);

  /// Executes one instruction. Returns false once the bus has halted (MMIO
  /// exit) — the halting write itself still executes.
  bool step();

  struct RunResult {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    bool halted = false;  ///< true if the program exited via MMIO
  };

  /// Runs until MMIO halt or the instruction budget is exhausted.
  RunResult run(std::uint64_t max_instructions);

  [[nodiscard]] std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] std::uint32_t sp() const { return regs_[13]; }

  [[nodiscard]] bool flag_n() const { return n_; }
  [[nodiscard]] bool flag_z() const { return z_; }
  [[nodiscard]] bool flag_c() const { return c_; }
  [[nodiscard]] bool flag_v() const { return v_; }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }

  [[nodiscard]] Bus& bus() { return bus_; }

 private:
  // r15 as read by instructions: current instruction address + 4.
  [[nodiscard]] std::uint32_t read_reg_pc_adjusted(int index) const;
  void write_reg_branch_aware(int index, std::uint32_t value);
  void branch_to(std::uint32_t target);

  void execute16(std::uint16_t insn);
  void execute32(std::uint16_t hi, std::uint16_t lo);

  [[nodiscard]] std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b, bool carry_in,
                                             bool set_flags);
  void set_nz(std::uint32_t result);
  [[nodiscard]] bool condition_passed(unsigned cond) const;

  Bus& bus_;
  CycleModel cyc_;
  std::array<std::uint32_t, 16> regs_{};
  std::uint32_t pc_ = 0;  // address of the current instruction
  bool n_ = false, z_ = false, c_ = false, v_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  bool branched_ = false;  // set by the current instruction if it wrote PC
};

}  // namespace ppatc::isa
