// ppatc: memory system of the simulated embedded platform.
//
// The case-study system (paper Fig. 1) has a Cortex-M0 with two single-cycle
// on-chip eDRAM memories: a 64 kB program memory and a 64 kB data memory.
// This bus model maps them at fixed addresses, keeps per-region access
// statistics (the counts the paper extracts from RTL .vcd waveforms: fetches,
// reads, writes), and exposes a small MMIO block for test I/O.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ppatc/common/contract.hpp"

namespace ppatc::isa {

inline constexpr std::uint32_t kProgramBase = 0x0000'0000u;
inline constexpr std::uint32_t kProgramSize = 64u * 1024u;
inline constexpr std::uint32_t kDataBase = 0x2000'0000u;
inline constexpr std::uint32_t kDataSize = 64u * 1024u;
inline constexpr std::uint32_t kMmioBase = 0x4000'0000u;

/// MMIO registers (word access only).
inline constexpr std::uint32_t kMmioExit = kMmioBase + 0x0;      ///< write -> halt, value = exit code
inline constexpr std::uint32_t kMmioPutChar = kMmioBase + 0x4;   ///< write -> append to console
inline constexpr std::uint32_t kMmioPutWord = kMmioBase + 0x8;   ///< write -> record word output

/// Which physical memory an access touched.
enum class Region { kProgram, kData, kMmio };

/// Access statistics per region — the inputs to the eDRAM energy model.
struct AccessStats {
  std::uint64_t fetches = 0;      ///< instruction fetches from program memory
  std::uint64_t data_reads = 0;   ///< data-side reads (either memory)
  std::uint64_t data_writes = 0;  ///< data-side writes
  std::uint64_t program_reads = 0;   ///< data-side reads hitting program memory (literals)
  std::uint64_t data_mem_reads = 0;  ///< data-side reads hitting data memory
  std::uint64_t data_mem_writes = 0;

  [[nodiscard]] std::uint64_t total_memory_accesses() const {
    return fetches + data_reads + data_writes;
  }
};

/// Thrown on access outside the mapped regions or misaligned word access —
/// on real hardware this is a HardFault; in the ISS it indicates a bad
/// program and aborts the run.
class BusFault : public std::runtime_error {
 public:
  explicit BusFault(const std::string& what) : std::runtime_error(what) {}
};

class Bus {
 public:
  Bus();

  /// Loads `bytes` into program memory starting at `addr` (program space).
  void load_program(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);
  /// Initializes data memory starting at `addr` (data space).
  void load_data(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);

  // Data-side accesses (update statistics). The aligned-data-memory case — the
  // overwhelming majority of an ISS run — is inlined; everything else
  // (program-memory literals, MMIO, faults) falls through to the out-of-line
  // slow path, which also owns the fault messages.
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) {
    if (const std::uint32_t off = addr - kDataBase; (addr & 3u) == 0 && off <= kDataSize - 4) {
      ++stats_.data_reads;
      ++stats_.data_mem_reads;
      return load_le32(data_.data() + off);
    }
    return read32_slow(addr);
  }
  [[nodiscard]] std::uint16_t read16(std::uint32_t addr) {
    if (const std::uint32_t off = addr - kDataBase; (addr & 1u) == 0 && off <= kDataSize - 2) {
      ++stats_.data_reads;
      ++stats_.data_mem_reads;
      return static_cast<std::uint16_t>(data_[off] | (data_[off + 1] << 8));
    }
    return read16_slow(addr);
  }
  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) {
    if (const std::uint32_t off = addr - kDataBase; off < kDataSize) {
      ++stats_.data_reads;
      ++stats_.data_mem_reads;
      return data_[off];
    }
    return read8_slow(addr);
  }
  void write32(std::uint32_t addr, std::uint32_t value) {
    if (const std::uint32_t off = addr - kDataBase; (addr & 3u) == 0 && off <= kDataSize - 4) {
      ++stats_.data_writes;
      ++stats_.data_mem_writes;
      store_le32(data_.data() + off, value);
      return;
    }
    write32_slow(addr, value);
  }
  void write16(std::uint32_t addr, std::uint16_t value) {
    if (const std::uint32_t off = addr - kDataBase; (addr & 1u) == 0 && off <= kDataSize - 2) {
      ++stats_.data_writes;
      ++stats_.data_mem_writes;
      data_[off] = static_cast<std::uint8_t>(value);
      data_[off + 1] = static_cast<std::uint8_t>(value >> 8);
      return;
    }
    write16_slow(addr, value);
  }
  void write8(std::uint32_t addr, std::uint8_t value) {
    if (const std::uint32_t off = addr - kDataBase; off < kDataSize) {
      ++stats_.data_writes;
      ++stats_.data_mem_writes;
      data_[off] = value;
      return;
    }
    write8_slow(addr, value);
  }

  /// Instruction fetch (16-bit halfword, program memory only).
  [[nodiscard]] std::uint16_t fetch16(std::uint32_t addr) {
    if ((addr & 1u) == 0 && addr - kProgramBase <= kProgramSize - 2) {
      ++stats_.fetches;
      const std::uint32_t off = addr - kProgramBase;
      return static_cast<std::uint16_t>(program_[off] | (program_[off + 1] << 8));
    }
    return fetch16_slow(addr);
  }

  /// Replays `n` instruction fetches' worth of statistics. The threaded CPU
  /// decodes basic blocks through `peek16` (no side effects) and accounts for
  /// the fetches each decoded instruction WOULD have issued at execution
  /// time, keeping AccessStats identical to the switch interpreter's.
  void note_fetches(std::uint64_t n) { stats_.fetches += n; }

  /// Monotonic counter bumped by every `load_program`; cached decoded blocks
  /// are valid only while the epoch they were built under is current. (The
  /// bus rejects stores to program memory, so this is the only way code can
  /// change.)
  [[nodiscard]] std::uint32_t program_epoch() const { return program_epoch_; }

  // Debug access (no statistics, no MMIO side effects).
  [[nodiscard]] std::uint32_t peek32(std::uint32_t addr) const;
  void poke32(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint8_t peek8(std::uint32_t addr) const;
  /// Program-memory halfword without statistics (decode-time instruction
  /// read). Same bounds/alignment checks as `fetch16`.
  [[nodiscard]] std::uint16_t peek16(std::uint32_t addr) const;

  [[nodiscard]] const AccessStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint32_t exit_code() const { return exit_code_; }
  [[nodiscard]] const std::string& console() const { return console_; }
  [[nodiscard]] const std::vector<std::uint32_t>& word_log() const { return word_log_; }

 private:
  struct Target {
    Region region;
    std::uint32_t offset;
  };
  [[nodiscard]] Target decode(std::uint32_t addr, unsigned size) const;
  void mmio_write(std::uint32_t addr, std::uint32_t value);

  static std::uint32_t load_le32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
  }
  static void store_le32(std::uint8_t* p, std::uint32_t value) {
    p[0] = static_cast<std::uint8_t>(value);
    p[1] = static_cast<std::uint8_t>(value >> 8);
    p[2] = static_cast<std::uint8_t>(value >> 16);
    p[3] = static_cast<std::uint8_t>(value >> 24);
  }

  // Non-data-memory accesses: program-memory literal reads, MMIO, faults.
  [[nodiscard]] std::uint32_t read32_slow(std::uint32_t addr);
  [[nodiscard]] std::uint16_t read16_slow(std::uint32_t addr);
  [[nodiscard]] std::uint8_t read8_slow(std::uint32_t addr);
  void write32_slow(std::uint32_t addr, std::uint32_t value);
  void write16_slow(std::uint32_t addr, std::uint16_t value);
  void write8_slow(std::uint32_t addr, std::uint8_t value);
  [[noreturn]] std::uint16_t fetch16_slow(std::uint32_t addr);

  std::array<std::uint8_t, kProgramSize> program_{};
  std::array<std::uint8_t, kDataSize> data_{};
  std::uint32_t program_epoch_ = 0;
  AccessStats stats_;
  bool halted_ = false;
  std::uint32_t exit_code_ = 0;
  std::string console_;
  std::vector<std::uint32_t> word_log_;
};

}  // namespace ppatc::isa
