// ppatc: two-pass Thumb (ARMv6-M) assembler.
//
// Assembles the workload kernels for the ISS from a compact GNU-as-like
// syntax. Supported, per line:
//
//   label:                     ; labels (also on the same line as code)
//   .align N                   ; pad to N-byte boundary (N power of two)
//   .word  v, v, ...           ; 32-bit values (integers or labels)
//   .space N                   ; N zero bytes
//   .ltorg                     ; flush the pending literal pool here
//   .equ  name, value          ; constant definition
//   <mnemonic> operands        ; the ARMv6-M Thumb instruction set
//
// `ldr rX, =value_or_label` places the constant in the nearest following
// literal pool (.ltorg or end of program) and encodes a PC-relative load.
// Comments start with '@', ';', or '//'. Mnemonics follow UAL: flag-setting
// forms use the trailing 's' (movs/adds/lsls/...), as the M0 requires.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppatc::isa {

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_{line} {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

struct Program {
  std::vector<std::uint8_t> bytes;              ///< program-memory image (base 0)
  std::map<std::string, std::uint32_t> symbols; ///< label -> address
  std::uint32_t entry = 0;                      ///< address of `_start` if defined, else 0

  [[nodiscard]] std::uint32_t symbol(const std::string& name) const;
};

/// Assembles `source`; throws AsmError on any syntax/range problem.
[[nodiscard]] Program assemble(const std::string& source);

}  // namespace ppatc::isa
