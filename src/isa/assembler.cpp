#include "ppatc/isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace ppatc::isa {

std::uint32_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw std::out_of_range("unknown symbol: " + name);
  return it->second;
}

namespace {

// ---------------------------------------------------------------- lexing ----

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string remove_comment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '@' || c == ';') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') return line.substr(0, i);
  }
  return line;
}

// Splits operands on commas, keeping {...} and [...] groups intact.
std::vector<std::string> split_operands(const std::string& s, int line) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : s) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!strip(cur).empty()) out.push_back(strip(cur));
  if (depth != 0) throw AsmError(line, "unbalanced brackets in operands");
  return out;
}

// ------------------------------------------------------------ structures ----

enum class ItemKind { kInsn, kWord, kSpace, kAlign, kPool };

struct Item {
  ItemKind kind = ItemKind::kInsn;
  int line = 0;
  std::string mnemonic;
  std::vector<std::string> operands;
  std::vector<std::string> words;   // .word values
  std::uint32_t space = 0;          // .space size
  std::uint32_t align = 0;          // .align boundary
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  int literal_id = -1;              // for `ldr rd, =expr`
};

struct Literal {
  std::string expr;
  int line = 0;
  std::uint32_t addr = 0;
};

struct Context {
  std::map<std::string, std::uint32_t> symbols;  // labels + .equ
  std::vector<Literal> literals;
};

// --------------------------------------------------------- value parsing ----

bool is_register(const std::string& t) {
  const std::string s = lower(t);
  if (s == "sp" || s == "lr" || s == "pc") return true;
  if (s.size() >= 2 && s[0] == 'r') {
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) return false;
    }
    const int n = std::stoi(s.substr(1));
    return n >= 0 && n <= 15;
  }
  return false;
}

int parse_register(const std::string& t, int line) {
  const std::string s = lower(strip(t));
  if (s == "sp") return 13;
  if (s == "lr") return 14;
  if (s == "pc") return 15;
  if (!is_register(s)) throw AsmError(line, "expected register, got '" + t + "'");
  return std::stoi(s.substr(1));
}

std::optional<std::int64_t> parse_integer(const std::string& t) {
  std::string s = strip(t);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    s = s.substr(1);
    if (s.empty()) return std::nullopt;
  }
  if (s.size() == 3 && s.front() == '\'' && s.back() == '\'') {
    const std::int64_t v = static_cast<unsigned char>(s[1]);
    return negative ? -v : v;
  }
  std::int64_t value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoll(s, &pos, 0);  // handles 0x, 0, decimal
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (pos != s.size()) return std::nullopt;
  return negative ? -value : value;
}

// expr := integer | symbol | symbol ('+'|'-') integer
std::int64_t eval_expr(const std::string& expr, const Context& ctx, int line) {
  const std::string s = strip(expr);
  if (const auto v = parse_integer(s)) return *v;
  std::size_t op = std::string::npos;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i] == '+' || s[i] == '-') {
      op = i;
      break;
    }
  }
  const std::string base = strip(op == std::string::npos ? s : s.substr(0, op));
  const auto it = ctx.symbols.find(base);
  if (it == ctx.symbols.end()) throw AsmError(line, "unknown symbol '" + base + "'");
  std::int64_t value = it->second;
  if (op != std::string::npos) {
    const auto rhs = parse_integer(s.substr(op + 1));
    if (!rhs) throw AsmError(line, "bad expression '" + expr + "'");
    value += (s[op] == '+') ? *rhs : -*rhs;
  }
  return value;
}

std::int64_t parse_immediate(const std::string& t, const Context& ctx, int line) {
  std::string s = strip(t);
  if (!s.empty() && s[0] == '#') s = s.substr(1);
  return eval_expr(s, ctx, line);
}

// reglist := { r0, r2-r5, lr, pc }
struct RegList {
  std::uint32_t low_mask = 0;  // r0..r7
  bool lr = false;
  bool pc = false;
};

RegList parse_reglist(const std::string& t, int line) {
  std::string s = strip(t);
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') {
    throw AsmError(line, "expected register list, got '" + t + "'");
  }
  s = s.substr(1, s.size() - 2);
  RegList out;
  std::istringstream is{s};
  std::string part;
  while (std::getline(is, part, ',')) {
    part = strip(part);
    if (part.empty()) throw AsmError(line, "empty entry in register list");
    const std::size_t dash = part.find('-');
    if (dash != std::string::npos) {
      const int a = parse_register(part.substr(0, dash), line);
      const int b = parse_register(part.substr(dash + 1), line);
      if (a > b || b > 7) throw AsmError(line, "bad register range '" + part + "'");
      for (int r = a; r <= b; ++r) out.low_mask |= 1u << r;
    } else {
      const int r = parse_register(part, line);
      if (r <= 7) {
        out.low_mask |= 1u << r;
      } else if (r == 14) {
        out.lr = true;
      } else if (r == 15) {
        out.pc = true;
      } else {
        throw AsmError(line, "register '" + part + "' not allowed in list");
      }
    }
  }
  return out;
}

// Memory operand: [rn] | [rn, #imm] | [rn, rm]
struct MemOperand {
  int rn = 0;
  bool reg_offset = false;
  int rm = 0;
  std::int64_t imm = 0;
};

MemOperand parse_mem(const std::string& t, const Context& ctx, int line) {
  std::string s = strip(t);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    throw AsmError(line, "expected memory operand, got '" + t + "'");
  }
  s = s.substr(1, s.size() - 2);
  const auto parts = split_operands(s, line);
  if (parts.empty() || parts.size() > 2) throw AsmError(line, "bad memory operand '" + t + "'");
  MemOperand m;
  m.rn = parse_register(parts[0], line);
  if (parts.size() == 2) {
    if (!parts[1].empty() && parts[1][0] == '#') {
      m.imm = parse_immediate(parts[1], ctx, line);
    } else if (is_register(parts[1])) {
      m.reg_offset = true;
      m.rm = parse_register(parts[1], line);
    } else {
      m.imm = parse_immediate(parts[1], ctx, line);
    }
  }
  return m;
}

// ------------------------------------------------------------- encoding ----

void require(bool cond, int line, const std::string& message) {
  if (!cond) throw AsmError(line, message);
}

std::uint16_t low3(int r, int line) {
  require(r >= 0 && r <= 7, line, "register must be r0-r7 for this encoding");
  return static_cast<std::uint16_t>(r);
}

const std::map<std::string, unsigned>& condition_codes() {
  static const std::map<std::string, unsigned> kCodes = {
      {"eq", 0x0}, {"ne", 0x1}, {"cs", 0x2}, {"hs", 0x2}, {"cc", 0x3}, {"lo", 0x3},
      {"mi", 0x4}, {"pl", 0x5}, {"vs", 0x6}, {"vc", 0x7}, {"hi", 0x8}, {"ls", 0x9},
      {"ge", 0xA}, {"lt", 0xB}, {"gt", 0xC}, {"le", 0xD},
  };
  return kCodes;
}

// Data-processing register ops (format 4).
const std::map<std::string, unsigned>& dp_ops() {
  static const std::map<std::string, unsigned> kOps = {
      {"ands", 0x0}, {"eors", 0x1}, {"lsls", 0x2}, {"lsrs", 0x3}, {"asrs", 0x4},
      {"adcs", 0x5}, {"sbcs", 0x6}, {"rors", 0x7}, {"tst", 0x8},  {"rsbs", 0x9},
      {"negs", 0x9}, {"cmp", 0xA},  {"cmn", 0xB},  {"orrs", 0xC}, {"muls", 0xD},
      {"bics", 0xE}, {"mvns", 0xF},
  };
  return kOps;
}

class Encoder {
 public:
  Encoder(const Context& ctx, const std::vector<Literal>& literals)
      : ctx_{ctx}, literals_{literals} {}

  // Encodes one instruction item into 16-bit units.
  std::vector<std::uint16_t> encode(const Item& item) const {
    const auto& m = item.mnemonic;
    const auto& ops = item.operands;
    const int line = item.line;
    const std::uint32_t pc = item.addr;

    auto imm = [&](const std::string& t) { return parse_immediate(t, ctx_, line); };
    auto reg = [&](const std::string& t) { return parse_register(t, line); };

    // --- branches -----------------------------------------------------
    if (m == "b") {
      require(ops.size() == 1, line, "b needs one operand");
      const std::int64_t target = eval_expr(ops[0], ctx_, line);
      const std::int64_t off = target - (static_cast<std::int64_t>(pc) + 4);
      require(off % 2 == 0 && off >= -2048 && off <= 2046, line, "b target out of range");
      return {static_cast<std::uint16_t>(0xE000u | ((off >> 1) & 0x7FFu))};
    }
    if (m.size() == 3 && m[0] == 'b' && condition_codes().contains(m.substr(1))) {
      require(ops.size() == 1, line, m + " needs one operand");
      const unsigned cond = condition_codes().at(m.substr(1));
      const std::int64_t target = eval_expr(ops[0], ctx_, line);
      const std::int64_t off = target - (static_cast<std::int64_t>(pc) + 4);
      require(off % 2 == 0 && off >= -256 && off <= 254, line,
              m + " target out of range (" + std::to_string(off) + ")");
      return {static_cast<std::uint16_t>(0xD000u | (cond << 8) | ((off >> 1) & 0xFFu))};
    }
    if (m == "bl") {
      require(ops.size() == 1, line, "bl needs one operand");
      const std::int64_t target = eval_expr(ops[0], ctx_, line);
      const std::int64_t off = target - (static_cast<std::int64_t>(pc) + 4);
      require(off % 2 == 0 && off >= -(1 << 24) && off < (1 << 24), line, "bl target out of range");
      const auto v = static_cast<std::uint32_t>(off);
      const std::uint32_t s = (v >> 24) & 1u;
      const std::uint32_t i1 = (v >> 23) & 1u;
      const std::uint32_t i2 = (v >> 22) & 1u;
      const std::uint32_t imm10 = (v >> 12) & 0x3FFu;
      const std::uint32_t imm11 = (v >> 1) & 0x7FFu;
      const std::uint32_t j1 = (~(i1 ^ s)) & 1u;
      const std::uint32_t j2 = (~(i2 ^ s)) & 1u;
      return {static_cast<std::uint16_t>(0xF000u | (s << 10) | imm10),
              static_cast<std::uint16_t>(0xD000u | (j1 << 13) | (j2 << 11) | imm11)};
    }
    if (m == "bx" || m == "blx") {
      require(ops.size() == 1, line, m + " needs one register");
      const int rm = reg(ops[0]);
      const std::uint16_t base = m == "bx" ? 0x4700u : 0x4780u;
      return {static_cast<std::uint16_t>(base | (rm << 3))};
    }

    // --- moves & arithmetic --------------------------------------------
    if (m == "movs") {
      require(ops.size() == 2, line, "movs needs two operands");
      const int rd = reg(ops[0]);
      if (is_register(ops[1])) {
        // MOVS rd, rm == LSLS rd, rm, #0
        return {static_cast<std::uint16_t>(0x0000u | (low3(reg(ops[1]), line) << 3) |
                                           low3(rd, line))};
      }
      const std::int64_t v = imm(ops[1]);
      require(v >= 0 && v <= 255, line, "movs immediate must be 0-255");
      return {static_cast<std::uint16_t>(0x2000u | (low3(rd, line) << 8) | (v & 0xFF))};
    }
    if (m == "mov") {
      require(ops.size() == 2 && is_register(ops[1]), line, "mov needs rd, rm");
      const int rd = reg(ops[0]);
      const int rm = reg(ops[1]);
      return {static_cast<std::uint16_t>(0x4600u | ((rd & 8) << 4) | (rm << 3) | (rd & 7))};
    }
    if (m == "adds" || m == "subs") {
      const bool sub = m == "subs";
      if (ops.size() == 3) {
        const int rd = low3(reg(ops[0]), line);
        const int rn = low3(reg(ops[1]), line);
        if (is_register(ops[2])) {
          const int rm = low3(reg(ops[2]), line);
          return {static_cast<std::uint16_t>((sub ? 0x1A00u : 0x1800u) | (rm << 6) | (rn << 3) | rd)};
        }
        const std::int64_t v = imm(ops[2]);
        require(v >= 0 && v <= 7, line, "3-operand immediate must be 0-7");
        return {static_cast<std::uint16_t>((sub ? 0x1E00u : 0x1C00u) | (v << 6) | (rn << 3) | rd)};
      }
      require(ops.size() == 2, line, m + " needs 2 or 3 operands");
      const int rd = low3(reg(ops[0]), line);
      const std::int64_t v = imm(ops[1]);
      require(v >= 0 && v <= 255, line, "immediate must be 0-255");
      return {static_cast<std::uint16_t>((sub ? 0x3800u : 0x3000u) | (rd << 8) | (v & 0xFF))};
    }
    if (m == "add" || m == "sub") {
      require(ops.size() >= 2, line, m + " needs operands");
      const int rd = reg(ops[0]);
      if (rd == 13 && ops.size() == 2) {  // ADD/SUB sp, #imm
        const std::int64_t v = imm(ops[1]);
        require(v >= 0 && v <= 508 && v % 4 == 0, line, "sp adjust must be 0-508, multiple of 4");
        return {static_cast<std::uint16_t>(0xB000u | (m == "sub" ? 0x80u : 0u) | (v / 4))};
      }
      if (ops.size() == 3 && lower(strip(ops[1])) == "sp") {  // ADD rd, sp, #imm
        require(m == "add", line, "sub rd, sp, #imm is not encodable");
        const std::int64_t v = imm(ops[2]);
        require(v >= 0 && v <= 1020 && v % 4 == 0, line, "offset must be 0-1020, multiple of 4");
        return {static_cast<std::uint16_t>(0xA800u | (low3(rd, line) << 8) | (v / 4))};
      }
      if (ops.size() == 3 && lower(strip(ops[1])) == "pc") {  // ADR-ish
        require(m == "add", line, "sub rd, pc is not encodable");
        const std::int64_t v = imm(ops[2]);
        require(v >= 0 && v <= 1020 && v % 4 == 0, line, "offset must be 0-1020, multiple of 4");
        return {static_cast<std::uint16_t>(0xA000u | (low3(rd, line) << 8) | (v / 4))};
      }
      require(m == "add" && ops.size() == 2 && is_register(ops[1]), line,
              "expected add rd, rm (hi-register form)");
      const int rm = reg(ops[1]);
      return {static_cast<std::uint16_t>(0x4400u | ((rd & 8) << 4) | (rm << 3) | (rd & 7))};
    }
    if (m == "cmp") {
      require(ops.size() == 2, line, "cmp needs two operands");
      const int rn = reg(ops[0]);
      if (is_register(ops[1])) {
        const int rm = reg(ops[1]);
        if (rn <= 7 && rm <= 7) {
          return {static_cast<std::uint16_t>(0x4280u | (rm << 3) | rn)};
        }
        return {static_cast<std::uint16_t>(0x4500u | ((rn & 8) << 4) | (rm << 3) | (rn & 7))};
      }
      const std::int64_t v = imm(ops[1]);
      require(v >= 0 && v <= 255, line, "cmp immediate must be 0-255");
      return {static_cast<std::uint16_t>(0x2800u | (low3(rn, line) << 8) | (v & 0xFF))};
    }

    // --- shifts with immediate -----------------------------------------
    if ((m == "lsls" || m == "lsrs" || m == "asrs") && ops.size() == 3) {
      const int rd = low3(reg(ops[0]), line);
      const int rm = low3(reg(ops[1]), line);
      const std::int64_t v = imm(ops[2]);
      require(v >= 0 && v <= 31, line, "shift amount must be 0-31");
      const std::uint16_t op = m == "lsls" ? 0x0000u : m == "lsrs" ? 0x0800u : 0x1000u;
      return {static_cast<std::uint16_t>(op | (v << 6) | (rm << 3) | rd)};
    }

    // --- data-processing register --------------------------------------
    if (dp_ops().contains(m)) {
      const unsigned op = dp_ops().at(m);
      if (m == "rsbs" || m == "negs") {
        // rsbs rd, rn(, #0) / negs rd, rn
        require(ops.size() >= 2, line, m + " needs rd, rn");
        const int rd = low3(reg(ops[0]), line);
        const int rn = low3(reg(ops[1]), line);
        return {static_cast<std::uint16_t>(0x4000u | (op << 6) | (rn << 3) | rd)};
      }
      require(ops.size() == 2, line, m + " needs two register operands");
      const int rd = low3(reg(ops[0]), line);
      const int rm = low3(reg(ops[1]), line);
      return {static_cast<std::uint16_t>(0x4000u | (op << 6) | (rm << 3) | rd)};
    }

    // --- extend / reverse ----------------------------------------------
    if (m == "sxth" || m == "sxtb" || m == "uxth" || m == "uxtb") {
      require(ops.size() == 2, line, m + " needs two registers");
      const unsigned op = m == "sxth" ? 0u : m == "sxtb" ? 1u : m == "uxth" ? 2u : 3u;
      return {static_cast<std::uint16_t>(0xB200u | (op << 6) | (low3(reg(ops[1]), line) << 3) |
                                         low3(reg(ops[0]), line))};
    }
    if (m == "rev" || m == "rev16" || m == "revsh") {
      require(ops.size() == 2, line, m + " needs two registers");
      const unsigned op = m == "rev" ? 0u : m == "rev16" ? 1u : 3u;
      return {static_cast<std::uint16_t>(0xBA00u | (op << 6) | (low3(reg(ops[1]), line) << 3) |
                                         low3(reg(ops[0]), line))};
    }

    // --- loads / stores --------------------------------------------------
    if (m == "ldr" && ops.size() == 2 && !ops[1].empty() && ops[1][0] == '=') {
      require(item.literal_id >= 0, line, "internal: literal not allocated");
      const Literal& lit = literals_[static_cast<std::size_t>(item.literal_id)];
      const std::int64_t off = static_cast<std::int64_t>(lit.addr) - ((pc + 4) & ~3u);
      require(off >= 0 && off <= 1020 && off % 4 == 0, line,
              "literal pool out of range (offset " + std::to_string(off) + "); add .ltorg");
      return {static_cast<std::uint16_t>(0x4800u | (low3(parse_register(ops[0], line), line) << 8) |
                                         (off / 4))};
    }
    if (m == "ldr" || m == "str" || m == "ldrb" || m == "strb" || m == "ldrh" || m == "strh" ||
        m == "ldrsb" || m == "ldrsh") {
      require(ops.size() == 2, line, m + " needs rd, [mem]");
      const int rd = low3(reg(ops[0]), line);
      const MemOperand mem = parse_mem(ops[1], ctx_, line);
      if (mem.reg_offset) {
        static const std::map<std::string, unsigned> kOps = {
            {"str", 0}, {"strh", 1}, {"strb", 2}, {"ldrsb", 3},
            {"ldr", 4}, {"ldrh", 5}, {"ldrb", 6}, {"ldrsh", 7}};
        return {static_cast<std::uint16_t>(0x5000u | (kOps.at(m) << 9) |
                                           (low3(mem.rm, line) << 6) | (low3(mem.rn, line) << 3) |
                                           rd)};
      }
      require(m != "ldrsb" && m != "ldrsh", line, m + " supports only register offsets");
      if (mem.rn == 13) {  // SP-relative
        require(m == "ldr" || m == "str", line, "only word access is SP-relative");
        require(mem.imm >= 0 && mem.imm <= 1020 && mem.imm % 4 == 0, line,
                "SP offset must be 0-1020, multiple of 4");
        const std::uint16_t base = m == "ldr" ? 0x9800u : 0x9000u;
        return {static_cast<std::uint16_t>(base | (rd << 8) | (mem.imm / 4))};
      }
      if (mem.rn == 15) {  // PC-relative literal load
        require(m == "ldr", line, "only ldr supports PC-relative");
        require(mem.imm >= 0 && mem.imm <= 1020 && mem.imm % 4 == 0, line,
                "PC offset must be 0-1020, multiple of 4");
        return {static_cast<std::uint16_t>(0x4800u | (rd << 8) | (mem.imm / 4))};
      }
      const int rn = low3(mem.rn, line);
      if (m == "ldr" || m == "str") {
        require(mem.imm >= 0 && mem.imm <= 124 && mem.imm % 4 == 0, line,
                "word offset must be 0-124, multiple of 4");
        const std::uint16_t base = m == "ldr" ? 0x6800u : 0x6000u;
        return {static_cast<std::uint16_t>(base | ((mem.imm / 4) << 6) | (rn << 3) | rd)};
      }
      if (m == "ldrb" || m == "strb") {
        require(mem.imm >= 0 && mem.imm <= 31, line, "byte offset must be 0-31");
        const std::uint16_t base = m == "ldrb" ? 0x7800u : 0x7000u;
        return {static_cast<std::uint16_t>(base | (mem.imm << 6) | (rn << 3) | rd)};
      }
      require(mem.imm >= 0 && mem.imm <= 62 && mem.imm % 2 == 0, line,
              "halfword offset must be 0-62, multiple of 2");
      const std::uint16_t base = m == "ldrh" ? 0x8800u : 0x8000u;
      return {static_cast<std::uint16_t>(base | ((mem.imm / 2) << 6) | (rn << 3) | rd)};
    }

    // --- stack & multiple ------------------------------------------------
    if (m == "push" || m == "pop") {
      require(ops.size() == 1, line, m + " needs a register list");
      const RegList list = parse_reglist(ops[0], line);
      if (m == "push") {
        require(!list.pc, line, "cannot push pc");
        return {static_cast<std::uint16_t>(0xB400u | (list.lr ? 0x100u : 0u) | list.low_mask)};
      }
      require(!list.lr, line, "cannot pop lr directly; pop pc");
      return {static_cast<std::uint16_t>(0xBC00u | (list.pc ? 0x100u : 0u) | list.low_mask)};
    }
    if (m == "stmia" || m == "stm" || m == "ldmia" || m == "ldm") {
      require(ops.size() == 2, line, m + " needs rn!, {list}");
      std::string rn_text = strip(ops[0]);
      if (!rn_text.empty() && rn_text.back() == '!') rn_text.pop_back();
      const int rn = low3(parse_register(rn_text, line), line);
      const RegList list = parse_reglist(ops[1], line);
      require(!list.lr && !list.pc, line, "only r0-r7 allowed in stm/ldm");
      const std::uint16_t base = (m[0] == 's') ? 0xC000u : 0xC800u;
      return {static_cast<std::uint16_t>(base | (rn << 8) | list.low_mask)};
    }

    // --- misc -------------------------------------------------------------
    if (m == "nop") return {0xBF00u};
    if (m == "svc") {
      require(ops.size() == 1, line, "svc needs an immediate");
      const std::int64_t v = imm(ops[0]);
      require(v >= 0 && v <= 255, line, "svc immediate must be 0-255");
      return {static_cast<std::uint16_t>(0xDF00u | (v & 0xFF))};
    }
    if (m == "adr") {
      require(ops.size() == 2, line, "adr needs rd, label");
      const std::int64_t target = eval_expr(ops[1], ctx_, line);
      const std::int64_t off = target - ((pc + 4) & ~3);
      require(off >= 0 && off <= 1020 && off % 4 == 0, line, "adr target out of range");
      return {static_cast<std::uint16_t>(0xA000u | (low3(reg(ops[0]), line) << 8) | (off / 4))};
    }

    throw AsmError(line, "unknown mnemonic '" + m + "'");
  }

 private:
  const Context& ctx_;
  const std::vector<Literal>& literals_;
};

}  // namespace

Program assemble(const std::string& source) {
  Context ctx;
  std::vector<Item> items;
  std::vector<std::pair<std::string, std::size_t>> pending_labels;  // label -> item index

  // ---- parse ----
  {
    std::istringstream in{source};
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      std::string line = strip(remove_comment(raw));
      // Labels (possibly several) at line start.
      while (true) {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) break;
        const std::string head = strip(line.substr(0, colon));
        bool is_label = !head.empty();
        for (const char c : head) {
          if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '.') {
            is_label = false;
            break;
          }
        }
        if (!is_label) break;
        pending_labels.emplace_back(head, items.size());
        line = strip(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      Item item;
      item.line = line_no;
      const std::size_t sp = line.find_first_of(" \t");
      const std::string head = lower(sp == std::string::npos ? line : line.substr(0, sp));
      const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));

      if (head == ".align") {
        item.kind = ItemKind::kAlign;
        const auto v = parse_integer(rest);
        if (!v || *v <= 0 || (*v & (*v - 1)) != 0) throw AsmError(line_no, ".align needs a power of two");
        item.align = static_cast<std::uint32_t>(*v);
      } else if (head == ".word") {
        item.kind = ItemKind::kWord;
        item.words = split_operands(rest, line_no);
        if (item.words.empty()) throw AsmError(line_no, ".word needs at least one value");
      } else if (head == ".space") {
        item.kind = ItemKind::kSpace;
        const auto v = parse_integer(rest);
        if (!v || *v < 0) throw AsmError(line_no, ".space needs a non-negative size");
        item.space = static_cast<std::uint32_t>(*v);
      } else if (head == ".ltorg" || head == ".pool") {
        item.kind = ItemKind::kPool;
      } else if (head == ".equ" || head == ".set") {
        const auto parts = split_operands(rest, line_no);
        if (parts.size() != 2) throw AsmError(line_no, ".equ needs name, value");
        const auto v = parse_integer(parts[1]);
        if (!v) throw AsmError(line_no, ".equ value must be an integer");
        ctx.symbols[parts[0]] = static_cast<std::uint32_t>(*v);
        continue;
      } else if (head.starts_with(".")) {
        throw AsmError(line_no, "unknown directive '" + head + "'");
      } else {
        item.kind = ItemKind::kInsn;
        item.mnemonic = head;
        item.operands = split_operands(rest, line_no);
      }
      items.push_back(std::move(item));
    }
    // Terminal implicit pool.
    Item pool;
    pool.kind = ItemKind::kPool;
    pool.line = line_no;
    items.push_back(pool);
  }

  // ---- pass 1: addresses, pool layout, labels ----
  std::uint32_t addr = 0;
  std::vector<int> pending_literals;  // literal ids waiting for a pool
  for (auto& item : items) {
    // Attach labels pointing at this item.
    switch (item.kind) {
      case ItemKind::kAlign:
        item.addr = addr;
        item.size = (addr % item.align == 0) ? 0 : item.align - (addr % item.align);
        break;
      case ItemKind::kWord:
        item.addr = addr;
        item.size = static_cast<std::uint32_t>(4 * item.words.size());
        break;
      case ItemKind::kSpace:
        item.addr = addr;
        item.size = item.space;
        break;
      case ItemKind::kPool: {
        std::uint32_t pool_addr = addr;
        if (!pending_literals.empty() && pool_addr % 4 != 0) pool_addr += 4 - pool_addr % 4;
        item.addr = addr;
        for (const int id : pending_literals) {
          ctx.literals[static_cast<std::size_t>(id)].addr = pool_addr;
          pool_addr += 4;
        }
        item.size = pool_addr - addr;
        pending_literals.clear();
        break;
      }
      case ItemKind::kInsn: {
        item.addr = addr;
        item.size = (item.mnemonic == "bl") ? 4u : 2u;
        if (item.mnemonic == "ldr" && item.operands.size() == 2 && !item.operands[1].empty() &&
            item.operands[1][0] == '=') {
          Literal lit;
          lit.expr = strip(item.operands[1].substr(1));
          lit.line = item.line;
          item.literal_id = static_cast<int>(ctx.literals.size());
          ctx.literals.push_back(lit);
          pending_literals.push_back(item.literal_id);
        }
        break;
      }
    }
    addr += item.size;
  }
  for (const auto& [label, index] : pending_labels) {
    const std::uint32_t value =
        index < items.size() ? items[index].addr : addr;
    if (ctx.symbols.contains(label)) {
      throw AsmError(items[std::min(index, items.size() - 1)].line,
                     "duplicate label '" + label + "'");
    }
    ctx.symbols[label] = value;
  }

  // ---- pass 2: encode ----
  Program program;
  program.bytes.assign(addr, 0);
  const Encoder encoder{ctx, ctx.literals};
  auto put16 = [&](std::uint32_t at, std::uint16_t v) {
    program.bytes[at] = static_cast<std::uint8_t>(v);
    program.bytes[at + 1] = static_cast<std::uint8_t>(v >> 8);
  };
  auto put32 = [&](std::uint32_t at, std::uint32_t v) {
    put16(at, static_cast<std::uint16_t>(v));
    put16(at + 2, static_cast<std::uint16_t>(v >> 16));
  };

  for (const auto& item : items) {
    switch (item.kind) {
      case ItemKind::kAlign:
      case ItemKind::kSpace:
        break;  // zero-filled
      case ItemKind::kWord:
        for (std::size_t i = 0; i < item.words.size(); ++i) {
          put32(item.addr + static_cast<std::uint32_t>(4 * i),
                static_cast<std::uint32_t>(eval_expr(item.words[i], ctx, item.line)));
        }
        break;
      case ItemKind::kPool:
        break;  // literal values written below
      case ItemKind::kInsn: {
        const auto units = encoder.encode(item);
        for (std::size_t i = 0; i < units.size(); ++i) {
          put16(item.addr + static_cast<std::uint32_t>(2 * i), units[i]);
        }
        break;
      }
    }
  }
  for (const auto& lit : ctx.literals) {
    put32(lit.addr, static_cast<std::uint32_t>(eval_expr(lit.expr, ctx, lit.line)));
  }

  program.symbols = ctx.symbols;
  if (const auto it = ctx.symbols.find("_start"); it != ctx.symbols.end()) {
    program.entry = it->second;
  }
  return program;
}

}  // namespace ppatc::isa
