// ppatc: the top-level PPAtC framework (paper Sec. III).
//
// A SystemSpec describes one realization of the case-study embedded system
// (Cortex-M0 + 64 kB eDRAM): which technology implements the memory, the
// clock target, VT flavor, floorplan style, and yield. `evaluate` runs the
// full design flow — ISS workload execution (Step 1/4), memory
// characterization (Step 2), synthesis (Step 3), die/floorplan and carbon
// accounting (Step 5) — and returns every Table II row plus the carbon
// profile consumed by the Fig. 5/6 lifetime analyses.
#pragma once

#include <cstdint>
#include <string>

#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/tcdp.hpp"
#include "ppatc/carbon/wafer.hpp"
#include "ppatc/carbon/yield.hpp"
#include "ppatc/memsys/edram.hpp"
#include "ppatc/synth/m0.hpp"
#include "ppatc/workloads/workload.hpp"

namespace ppatc::core {

enum class Technology { kAllSi, kM3dIgzoCnfetSi };

[[nodiscard]] const char* to_string(Technology tech);

struct SystemSpec {
  Technology tech = Technology::kAllSi;
  Frequency fclk = units::megahertz(500);
  device::VtFlavor vt = device::VtFlavor::kRvt;
  /// 2D floorplans place the memory beside the M0 and pay routing overhead;
  /// 3D floorplans stack the memory above the M0 (Fig. 1b) and pay only a
  /// small halo. Calibrated to the Table II total areas.
  double floorplan_overhead_2d = 1.1749;
  double floorplan_overhead_3d = 1.0495;
  /// Die aspect ratio (height / width), from the paper's reported H x W.
  double aspect_ratio = 270.0 / 515.0;
  /// Demonstration yields from the paper (90% Si / 50% M3D) unless replaced.
  double yield = 0.90;

  [[nodiscard]] static SystemSpec all_si();
  [[nodiscard]] static SystemSpec m3d();
};

/// Everything Table II reports for one system, plus the Fig. 5/6 inputs.
struct SystemEvaluation {
  std::string system_name;
  std::string workload_name;

  // Performance.
  std::uint64_t cycles = 0;
  Duration execution_time;
  bool memory_timing_met = false;
  bool m0_timing_met = false;

  // Power / energy.
  Energy m0_energy_per_cycle;      ///< Table II "M0 dynamic energy per cycle"
  Energy memory_energy_per_cycle;  ///< Table II "average memory energy per cycle"
  Power operational_power;         ///< P_operational of Eq. 6

  // Area.
  Area memory_area;   ///< Table II "64 kB memory area footprint"
  Area total_area;    ///< Table II "total area footprint (memory + M0)"
  Length die_height;
  Length die_width;

  // Carbon.
  Carbon embodied_per_wafer;       ///< at the chosen fabrication grid
  std::int64_t dies_per_wafer = 0;
  double yield = 0.0;
  Carbon embodied_per_good_die;    ///< Eq. 5

  /// Profile for the Fig. 5/6 lifetime and isoline analyses.
  [[nodiscard]] carbon::SystemCarbonProfile carbon_profile() const;
};

/// Runs the full design/analysis flow for `spec` on `workload`, with
/// C_embodied computed at `fab_grid`.
[[nodiscard]] SystemEvaluation evaluate(const SystemSpec& spec,
                                        const workloads::Workload& workload,
                                        const carbon::Grid& fab_grid = carbon::grids::us());

/// Same flow, reusing an already-executed workload run (the ISS outcome is
/// hardware-independent, so design-space sweeps execute the program once).
[[nodiscard]] SystemEvaluation evaluate_with_outcome(const SystemSpec& spec,
                                                     const std::string& workload_name,
                                                     const workloads::RunOutcome& run,
                                                     const carbon::Grid& fab_grid =
                                                         carbon::grids::us());

/// Both Table II columns at once (same workload and grid).
struct Table2 {
  SystemEvaluation all_si;
  SystemEvaluation m3d;
};

[[nodiscard]] Table2 table2(const workloads::Workload& workload,
                            const carbon::Grid& fab_grid = carbon::grids::us());

}  // namespace ppatc::core
