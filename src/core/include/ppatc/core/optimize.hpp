// ppatc: carbon-efficient design-space exploration (CORDOBA-flavored).
//
// The paper evaluates two fixed design points; its cited companion work
// (Elgamal et al., "CORDOBA") optimizes designs for carbon efficiency. This
// module closes the loop: enumerate the case-study design space
// (technology x VT flavor x clock frequency), keep the points that close
// timing and meet a performance constraint, and rank them by tCDP over the
// deployment scenario — plus the tCDP-vs-delay Pareto front.
#pragma once

#include <optional>
#include <vector>

#include "ppatc/core/system.hpp"

namespace ppatc::core {

struct DesignSpace {
  std::vector<Technology> technologies{Technology::kAllSi, Technology::kM3dIgzoCnfetSi};
  std::vector<device::VtFlavor> vt_flavors{device::VtFlavor::kHvt, device::VtFlavor::kRvt,
                                           device::VtFlavor::kLvt, device::VtFlavor::kSlvt};
  std::vector<Frequency> clocks{units::megahertz(200), units::megahertz(300),
                                units::megahertz(400), units::megahertz(500),
                                units::megahertz(600), units::megahertz(700),
                                units::megahertz(800)};
};

struct OptimizationGoal {
  /// Each application run must finish within this budget (latency target);
  /// nullopt = unconstrained.
  std::optional<Duration> max_execution_time;
  carbon::OperationalScenario scenario{};
  Duration lifetime = units::months(24.0);
};

struct DesignPoint {
  SystemSpec spec;
  SystemEvaluation evaluation;
  CarbonDelay tcdp;  ///< tCDP over the goal's lifetime (gCO2e.s base)
  Carbon total_carbon;
  bool feasible = false;     ///< timing closed (M0 + memory)
  bool meets_deadline = false;
};

struct OptimizationResult {
  std::vector<DesignPoint> all_points;   ///< every enumerated point
  std::vector<DesignPoint> ranked;       ///< feasible + deadline, best tCDP first
  std::vector<DesignPoint> pareto;       ///< (execution time, total carbon) front
};

/// Non-dominated subset of `points` over (execution time, total carbon),
/// minimizing both and considering only feasible points. Exact duplicates on
/// both axes are mutually non-dominating and all kept. Returned sorted by
/// execution time (carbon as tie-break). O(n log n).
[[nodiscard]] std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

/// Explores `space` for `workload` under `goal`. Infeasible points (timing
/// failures) are kept in all_points with feasible=false for reporting. Grid
/// points are evaluated concurrently on the ppatc::runtime pool; results are
/// identical for any thread count.
[[nodiscard]] OptimizationResult optimize(const DesignSpace& space,
                                          const workloads::Workload& workload,
                                          const OptimizationGoal& goal,
                                          const carbon::Grid& fab_grid = carbon::grids::us());

}  // namespace ppatc::core
