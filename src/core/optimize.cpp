#include "ppatc/core/optimize.hpp"

#include <algorithm>

#include "ppatc/common/contract.hpp"

namespace ppatc::core {

OptimizationResult optimize(const DesignSpace& space, const workloads::Workload& workload,
                            const OptimizationGoal& goal, const carbon::Grid& fab_grid) {
  PPATC_EXPECT(!space.technologies.empty() && !space.vt_flavors.empty() && !space.clocks.empty(),
               "design space must be non-empty");

  // The ISS outcome is hardware-independent: execute once, evaluate many.
  const workloads::RunOutcome run = workloads::run_workload(workload);
  PPATC_ENSURE(run.halted && run.checksum_ok, "workload failed verification: " + workload.name);

  OptimizationResult result;
  for (const Technology tech : space.technologies) {
    for (const device::VtFlavor vt : space.vt_flavors) {
      for (const Frequency fclk : space.clocks) {
        SystemSpec spec =
            tech == Technology::kAllSi ? SystemSpec::all_si() : SystemSpec::m3d();
        spec.vt = vt;
        spec.fclk = fclk;

        DesignPoint point;
        point.spec = spec;
        try {
          point.evaluation = evaluate_with_outcome(spec, workload.name, run, fab_grid);
          point.feasible = point.evaluation.memory_timing_met && point.evaluation.m0_timing_met;
        } catch (const ContractViolation&) {
          point.feasible = false;  // M0 synthesis failed timing at this clock
        }
        if (point.feasible) {
          point.meets_deadline = !goal.max_execution_time.has_value() ||
                                 point.evaluation.execution_time <= *goal.max_execution_time;
          point.tcdp =
              carbon::tcdp(point.evaluation.carbon_profile(), goal.scenario, goal.lifetime);
          point.total_carbon = carbon::total_carbon(point.evaluation.carbon_profile(),
                                                    goal.scenario, goal.lifetime);
        }
        result.all_points.push_back(std::move(point));
      }
    }
  }

  for (const auto& p : result.all_points) {
    if (p.feasible && p.meets_deadline) result.ranked.push_back(p);
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const DesignPoint& a, const DesignPoint& b) { return a.tcdp < b.tcdp; });

  // Pareto front over (execution time, total carbon). tCDP itself already
  // multiplies the two objectives, so the front is taken over the raw axes:
  // slower clocks buy lower lifetime carbon (less sizing energy, less
  // leakage-per-second at the lower supply activity), faster clocks buy
  // latency.
  for (const auto& p : result.all_points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const auto& q : result.all_points) {
      if (!q.feasible || &q == &p) continue;
      const bool no_worse = q.evaluation.execution_time <= p.evaluation.execution_time &&
                            q.total_carbon <= p.total_carbon;
      const bool strictly_better = q.evaluation.execution_time < p.evaluation.execution_time ||
                                   q.total_carbon < p.total_carbon;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.pareto.push_back(p);
  }
  std::sort(result.pareto.begin(), result.pareto.end(), [](const DesignPoint& a,
                                                           const DesignPoint& b) {
    return a.evaluation.execution_time < b.evaluation.execution_time;
  });
  return result;
}

}  // namespace ppatc::core
