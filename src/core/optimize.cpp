#include "ppatc/core/optimize.hpp"

#include <algorithm>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace ppatc::core {

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  // Non-dominated set over (execution time, total carbon), minimizing both.
  // A point is dominated iff some feasible point is no worse on both axes
  // and strictly better on at least one; exact duplicates on both axes are
  // all kept. Sort-by-time-then-sweep-min-carbon gives O(n log n) with the
  // same semantics as the quadratic all-pairs scan.
  std::vector<std::size_t> order;
  order.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].feasible) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& pa = points[a];
    const auto& pb = points[b];
    if (pa.evaluation.execution_time != pb.evaluation.execution_time) {
      return pa.evaluation.execution_time < pb.evaluation.execution_time;
    }
    return pa.total_carbon < pb.total_carbon;
  });

  std::vector<DesignPoint> front;
  std::size_t g = 0;
  bool have_best = false;
  Carbon best_before{};  // min carbon over all strictly-earlier time groups
  while (g < order.size()) {
    // Group of equal execution times; the first entry has the group's
    // minimum carbon thanks to the secondary sort key.
    std::size_t g_end = g + 1;
    while (g_end < order.size() &&
           points[order[g_end]].evaluation.execution_time ==
               points[order[g]].evaluation.execution_time) {
      ++g_end;
    }
    const Carbon group_min = points[order[g]].total_carbon;
    if (!have_best || group_min < best_before) {
      // Keep every group member tied at the minimum (mutually non-dominating
      // exact duplicates); higher-carbon members are dominated within the
      // group.
      for (std::size_t k = g; k < g_end && points[order[k]].total_carbon == group_min; ++k) {
        front.push_back(points[order[k]]);
      }
      best_before = group_min;
      have_best = true;
    }
    g = g_end;
  }
  return front;
}

OptimizationResult optimize(const DesignSpace& space, const workloads::Workload& workload,
                            const OptimizationGoal& goal, const carbon::Grid& fab_grid) {
  PPATC_EXPECT(!space.technologies.empty() && !space.vt_flavors.empty() && !space.clocks.empty(),
               "design space must be non-empty");

  // The ISS outcome is hardware-independent: execute once, evaluate many.
  const workloads::RunOutcome run = workloads::run_workload(workload);
  PPATC_ENSURE(run.halted && run.checksum_ok, "workload failed verification: " + workload.name);

  // Flatten the tech x VT x clock grid so the points can be evaluated
  // concurrently; enumeration order (tech-major) is preserved in all_points.
  std::vector<SystemSpec> specs;
  specs.reserve(space.technologies.size() * space.vt_flavors.size() * space.clocks.size());
  for (const Technology tech : space.technologies) {
    for (const device::VtFlavor vt : space.vt_flavors) {
      for (const Frequency fclk : space.clocks) {
        SystemSpec spec = tech == Technology::kAllSi ? SystemSpec::all_si() : SystemSpec::m3d();
        spec.vt = vt;
        spec.fclk = fclk;
        specs.push_back(spec);
      }
    }
  }

  const obs::Span span{"core.optimize"};
  static obs::Counter& points_counter = obs::counter("core.points_evaluated");
  static obs::Counter& violations_counter = obs::counter("core.contract_violations");

  OptimizationResult result;
  result.all_points.resize(specs.size());
  // Every point is independent (SPICE characterization + synthesis + carbon
  // accounting) and writes only its own slot; contract violations (timing
  // failures) are captured per point so one infeasible corner cannot abort
  // the sweep.
  runtime::parallel_for(specs.size(), [&](std::size_t i) {
    DesignPoint& point = result.all_points[i];
    point.spec = specs[i];
    // Candidate fingerprint: mixes the grid coordinates into one u64 so a
    // crash bundle identifies the exact design point without string payloads.
    obs::flight_mark(
        "core.candidate",
        runtime::splitmix64((static_cast<std::uint64_t>(specs[i].vt) << 32) ^
                            (static_cast<std::uint64_t>(units::in_hertz(specs[i].fclk)) << 8) ^
                            static_cast<std::uint64_t>(i)));
    points_counter.increment();
    try {
      point.evaluation = evaluate_with_outcome(specs[i], workload.name, run, fab_grid);
      point.feasible = point.evaluation.memory_timing_met && point.evaluation.m0_timing_met;
    } catch (const ContractViolation&) {
      point.feasible = false;  // M0 synthesis failed timing at this clock
      violations_counter.increment();
    }
    if (point.feasible) {
      point.meets_deadline = !goal.max_execution_time.has_value() ||
                             point.evaluation.execution_time <= *goal.max_execution_time;
      point.tcdp = carbon::tcdp(point.evaluation.carbon_profile(), goal.scenario, goal.lifetime);
      point.total_carbon =
          carbon::total_carbon(point.evaluation.carbon_profile(), goal.scenario, goal.lifetime);
    }
  });

  for (const auto& p : result.all_points) {
    if (p.feasible && p.meets_deadline) result.ranked.push_back(p);
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const DesignPoint& a, const DesignPoint& b) { return a.tcdp < b.tcdp; });

  // Pareto front over (execution time, total carbon). tCDP itself already
  // multiplies the two objectives, so the front is taken over the raw axes:
  // slower clocks buy lower lifetime carbon (less sizing energy, less
  // leakage-per-second at the lower supply activity), faster clocks buy
  // latency.
  result.pareto = pareto_front(result.all_points);
  return result;
}

}  // namespace ppatc::core
