#include "ppatc/core/system.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::core {

const char* to_string(Technology tech) {
  switch (tech) {
    case Technology::kAllSi: return "M0 + Si eDRAM";
    case Technology::kM3dIgzoCnfetSi: return "M0 + IGZO/CNT/Si M3D-eDRAM";
  }
  return "?";
}

SystemSpec SystemSpec::all_si() {
  SystemSpec s;
  s.tech = Technology::kAllSi;
  s.yield = 0.90;
  s.aspect_ratio = 270.0 / 515.0;
  return s;
}

SystemSpec SystemSpec::m3d() {
  SystemSpec s;
  s.tech = Technology::kM3dIgzoCnfetSi;
  s.yield = 0.50;
  s.aspect_ratio = 159.0 / 334.0;
  return s;
}

carbon::SystemCarbonProfile SystemEvaluation::carbon_profile() const {
  carbon::SystemCarbonProfile p;
  p.name = system_name;
  p.embodied_per_good_die = embodied_per_good_die;
  p.operational_power = operational_power;
  p.standby_power = units::watts(0.0);  // Eq. 6 gates all power by the usage window
  p.execution_time = execution_time;
  return p;
}

SystemEvaluation evaluate(const SystemSpec& spec, const workloads::Workload& workload,
                          const carbon::Grid& fab_grid) {
  // ---- Step 1/4: run the workload, count cycles and memory accesses.
  const workloads::RunOutcome run = workloads::run_workload(workload);
  PPATC_ENSURE(run.halted, "workload did not terminate: " + workload.name);
  PPATC_ENSURE(run.checksum_ok, "workload checksum mismatch: " + workload.name);
  return evaluate_with_outcome(spec, workload.name, run, fab_grid);
}

SystemEvaluation evaluate_with_outcome(const SystemSpec& spec, const std::string& workload_name,
                                       const workloads::RunOutcome& run,
                                       const carbon::Grid& fab_grid) {
  PPATC_EXPECT(spec.yield > 0.0 && spec.yield <= 1.0, "yield must be in (0, 1]");
  PPATC_EXPECT(run.halted && run.checksum_ok, "run outcome must be a verified execution");
  SystemEvaluation ev;
  ev.system_name = to_string(spec.tech);
  ev.workload_name = workload_name;
  ev.cycles = run.cycles;
  ev.execution_time = period(spec.fclk) * static_cast<double>(run.cycles);

  // ---- Step 2: memory design + characterization.
  const memsys::BankConfig bank_cfg = spec.tech == Technology::kAllSi
                                          ? memsys::si_bank_config()
                                          : memsys::m3d_bank_config();
  const memsys::EdramBank bank{bank_cfg};
  ev.memory_timing_met = bank.meets_timing(spec.fclk);
  const memsys::MemoryEnergyReport mem =
      memsys::memory_energy(bank, run.stats, run.cycles, spec.fclk);
  ev.memory_energy_per_cycle = mem.per_cycle;
  ev.memory_area = bank.area();

  // ---- Step 3: M0 synthesis at the target clock (Si CMOS in both designs).
  synth::M0Options m0_opt;
  m0_opt.vt = spec.vt;
  const synth::M0Model m0{m0_opt};
  const synth::M0Synthesis syn = m0.synthesize(spec.fclk);
  ev.m0_timing_met = syn.timing_met;
  PPATC_ENSURE(syn.timing_met, "M0 fails timing at the target clock");
  ev.m0_energy_per_cycle = syn.energy_per_cycle;

  // ---- Floorplan.
  if (spec.tech == Technology::kAllSi) {
    ev.total_area = (m0.area() + bank.area()) * spec.floorplan_overhead_2d;
  } else {
    ev.total_area = max(m0.area(), bank.area()) * spec.floorplan_overhead_3d;
  }
  const double area_mm2 = units::in_square_millimetres(ev.total_area);
  ev.die_height = units::millimetres(std::sqrt(area_mm2 * spec.aspect_ratio));
  ev.die_width = units::millimetres(std::sqrt(area_mm2 / spec.aspect_ratio));

  // ---- Step 5: carbon.
  const carbon::EmbodiedModel embodied = spec.tech == Technology::kAllSi
                                             ? carbon::all_si_embodied_model()
                                             : carbon::m3d_embodied_model();
  ev.embodied_per_wafer = embodied.carbon_per_wafer(fab_grid);
  ev.dies_per_wafer =
      carbon::dies_per_wafer_formula(carbon::DieSpec{ev.die_width, ev.die_height});
  ev.yield = spec.yield;
  ev.embodied_per_good_die =
      ev.embodied_per_wafer / (static_cast<double>(ev.dies_per_wafer) * spec.yield);

  // Operational power: everything (M0 + memory) drawn while running (Eq. 6).
  ev.operational_power =
      (ev.m0_energy_per_cycle + ev.memory_energy_per_cycle) / period(spec.fclk);
  return ev;
}

Table2 table2(const workloads::Workload& workload, const carbon::Grid& fab_grid) {
  return Table2{evaluate(SystemSpec::all_si(), workload, fab_grid),
                evaluate(SystemSpec::m3d(), workload, fab_grid)};
}

}  // namespace ppatc::core
