// ppatc: strong-typed physical quantities.
//
// Every physical value that crosses a module boundary in ppatc is carried by a
// dimensioned wrapper around `double` so that, e.g., an energy can never be
// accidentally passed where a carbon mass is expected, and unit conversions
// (kWh vs J, months vs seconds) happen exactly once, at construction.
//
// Quantity<Tag> is a CRTP-free value wrapper: same-dimension quantities
// support the usual affine arithmetic (+, -, scalar *, /, comparisons, and
// same-dimension division yielding a dimensionless double). Cross-dimension
// products (Power * Time = Energy, CarbonIntensity * Energy = Carbon, ...)
// are declared explicitly in units.hpp so the dimensional algebra stays
// auditable.
#pragma once

#include <cmath>
#include <compare>

namespace ppatc {

template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;

  /// Named raw constructor; prefer the unit-named factories on each alias.
  [[nodiscard]] static constexpr Quantity from_base(double base_value) {
    return Quantity{base_value};
  }

  /// Value in the dimension's base unit (documented per alias in units.hpp).
  [[nodiscard]] constexpr double base() const { return value_; }

  [[nodiscard]] constexpr Quantity operator-() const { return Quantity{-value_}; }

  constexpr Quantity& operator+=(Quantity rhs) {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.value_ + b.value_}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.value_ - b.value_}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.value_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{a.value_ * s}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.value_ / s}; }
  /// Ratio of two same-dimension quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.value_ / b.value_; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(value_); }
  [[nodiscard]] constexpr bool is_nonnegative() const { return value_ >= 0.0; }

 private:
  constexpr explicit Quantity(double v) : value_{v} {}
  double value_{0.0};
};

/// abs() for quantities (useful in tolerance checks).
template <typename Tag>
[[nodiscard]] constexpr Quantity<Tag> abs(Quantity<Tag> q) {
  return q.base() < 0 ? -q : q;
}

/// min/max for quantities.
template <typename Tag>
[[nodiscard]] constexpr Quantity<Tag> min(Quantity<Tag> a, Quantity<Tag> b) {
  return a < b ? a : b;
}
template <typename Tag>
[[nodiscard]] constexpr Quantity<Tag> max(Quantity<Tag> a, Quantity<Tag> b) {
  return a < b ? b : a;
}

}  // namespace ppatc
