// ppatc: concrete unit aliases and the cross-dimension algebra.
//
// Base units (the value stored inside each Quantity):
//   Energy           joule (J)
//   Power            watt (W)
//   Duration         second (s)
//   Area             square centimetre (cm^2)
//   Length           metre (m)
//   Carbon           gram CO2-equivalent (gCO2e)
//   CarbonIntensity  gCO2e per joule
//   CarbonPerArea    gCO2e per cm^2
//   EnergyPerArea    joule per cm^2
//   Voltage          volt; Current ampere; Capacitance farad; Charge coulomb
//   Frequency        hertz; Mass gram; Temperature kelvin
#pragma once

#include "ppatc/common/quantity.hpp"

namespace ppatc {

namespace tag {
struct Energy {};
struct Power {};
struct Duration {};
struct Area {};
struct Length {};
struct Carbon {};
struct CarbonIntensity {};
struct CarbonPerArea {};
struct EnergyPerArea {};
struct Voltage {};
struct Current {};
struct Capacitance {};
struct Charge {};
struct Frequency {};
struct Mass {};
struct Temperature {};
struct CarbonDelay {};  // total carbon x execution time (tCDP), gCO2e.s
struct CarbonPerEnergyTime {};  // tCDP integrand helper (unused placeholder)
}  // namespace tag

using Energy = Quantity<tag::Energy>;
using Power = Quantity<tag::Power>;
using Duration = Quantity<tag::Duration>;
using Area = Quantity<tag::Area>;
using Length = Quantity<tag::Length>;
using Carbon = Quantity<tag::Carbon>;
using CarbonIntensity = Quantity<tag::CarbonIntensity>;
using CarbonPerArea = Quantity<tag::CarbonPerArea>;
using EnergyPerArea = Quantity<tag::EnergyPerArea>;
using Voltage = Quantity<tag::Voltage>;
using Current = Quantity<tag::Current>;
using Capacitance = Quantity<tag::Capacitance>;
using Charge = Quantity<tag::Charge>;
using Frequency = Quantity<tag::Frequency>;
using Mass = Quantity<tag::Mass>;
using Temperature = Quantity<tag::Temperature>;
using CarbonDelay = Quantity<tag::CarbonDelay>;

// ---- Named factories & accessors -------------------------------------------

namespace units {

// Energy
[[nodiscard]] constexpr Energy joules(double v) { return Energy::from_base(v); }
[[nodiscard]] constexpr Energy kilowatt_hours(double v) { return Energy::from_base(v * 3.6e6); }
[[nodiscard]] constexpr Energy watt_hours(double v) { return Energy::from_base(v * 3.6e3); }
[[nodiscard]] constexpr Energy picojoules(double v) { return Energy::from_base(v * 1e-12); }
[[nodiscard]] constexpr Energy femtojoules(double v) { return Energy::from_base(v * 1e-15); }
[[nodiscard]] constexpr double in_joules(Energy e) { return e.base(); }
[[nodiscard]] constexpr double in_kilowatt_hours(Energy e) { return e.base() / 3.6e6; }
[[nodiscard]] constexpr double in_picojoules(Energy e) { return e.base() / 1e-12; }
[[nodiscard]] constexpr double in_femtojoules(Energy e) { return e.base() / 1e-15; }

// Power
[[nodiscard]] constexpr Power watts(double v) { return Power::from_base(v); }
[[nodiscard]] constexpr Power milliwatts(double v) { return Power::from_base(v * 1e-3); }
[[nodiscard]] constexpr Power microwatts(double v) { return Power::from_base(v * 1e-6); }
[[nodiscard]] constexpr Power nanowatts(double v) { return Power::from_base(v * 1e-9); }
[[nodiscard]] constexpr double in_watts(Power p) { return p.base(); }
[[nodiscard]] constexpr double in_milliwatts(Power p) { return p.base() / 1e-3; }
[[nodiscard]] constexpr double in_microwatts(Power p) { return p.base() / 1e-6; }

// Duration
[[nodiscard]] constexpr Duration seconds(double v) { return Duration::from_base(v); }
[[nodiscard]] constexpr Duration nanoseconds(double v) { return Duration::from_base(v * 1e-9); }
[[nodiscard]] constexpr Duration picoseconds(double v) { return Duration::from_base(v * 1e-12); }
[[nodiscard]] constexpr Duration microseconds(double v) { return Duration::from_base(v * 1e-6); }
[[nodiscard]] constexpr Duration milliseconds(double v) { return Duration::from_base(v * 1e-3); }
[[nodiscard]] constexpr Duration hours(double v) { return Duration::from_base(v * 3600.0); }
[[nodiscard]] constexpr Duration days(double v) { return Duration::from_base(v * 86400.0); }
/// A "month" in lifetime accounting is 1/12 of a 365-day year (30.417 days),
/// matching typical lifetime LCA conventions.
[[nodiscard]] constexpr Duration months(double v) { return Duration::from_base(v * (365.0 / 12.0) * 86400.0); }
[[nodiscard]] constexpr double in_seconds(Duration d) { return d.base(); }
[[nodiscard]] constexpr double in_nanoseconds(Duration d) { return d.base() / 1e-9; }
[[nodiscard]] constexpr double in_picoseconds(Duration d) { return d.base() / 1e-12; }
[[nodiscard]] constexpr double in_hours(Duration d) { return d.base() / 3600.0; }
[[nodiscard]] constexpr double in_days(Duration d) { return d.base() / 86400.0; }
[[nodiscard]] constexpr double in_months(Duration d) { return d.base() / ((365.0 / 12.0) * 86400.0); }

// Area
[[nodiscard]] constexpr Area square_centimetres(double v) { return Area::from_base(v); }
[[nodiscard]] constexpr Area square_millimetres(double v) { return Area::from_base(v * 1e-2); }
[[nodiscard]] constexpr Area square_micrometres(double v) { return Area::from_base(v * 1e-8); }
[[nodiscard]] constexpr double in_square_centimetres(Area a) { return a.base(); }
[[nodiscard]] constexpr double in_square_millimetres(Area a) { return a.base() / 1e-2; }
[[nodiscard]] constexpr double in_square_micrometres(Area a) { return a.base() / 1e-8; }

// Length
[[nodiscard]] constexpr Length metres(double v) { return Length::from_base(v); }
[[nodiscard]] constexpr Length millimetres(double v) { return Length::from_base(v * 1e-3); }
[[nodiscard]] constexpr Length micrometres(double v) { return Length::from_base(v * 1e-6); }
[[nodiscard]] constexpr Length nanometres(double v) { return Length::from_base(v * 1e-9); }
[[nodiscard]] constexpr double in_metres(Length l) { return l.base(); }
[[nodiscard]] constexpr double in_millimetres(Length l) { return l.base() / 1e-3; }
[[nodiscard]] constexpr double in_micrometres(Length l) { return l.base() / 1e-6; }
[[nodiscard]] constexpr double in_nanometres(Length l) { return l.base() / 1e-9; }

// Carbon
[[nodiscard]] constexpr Carbon grams_co2e(double v) { return Carbon::from_base(v); }
[[nodiscard]] constexpr Carbon kilograms_co2e(double v) { return Carbon::from_base(v * 1e3); }
[[nodiscard]] constexpr double in_grams_co2e(Carbon c) { return c.base(); }
[[nodiscard]] constexpr double in_kilograms_co2e(Carbon c) { return c.base() / 1e3; }

// Carbon intensity (base: gCO2e/J)
[[nodiscard]] constexpr CarbonIntensity grams_per_kilowatt_hour(double v) {
  return CarbonIntensity::from_base(v / 3.6e6);
}
[[nodiscard]] constexpr double in_grams_per_kilowatt_hour(CarbonIntensity ci) { return ci.base() * 3.6e6; }

// Carbon per area (base: gCO2e/cm^2)
[[nodiscard]] constexpr CarbonPerArea grams_per_square_centimetre(double v) {
  return CarbonPerArea::from_base(v);
}
[[nodiscard]] constexpr CarbonPerArea kilograms_per_square_centimetre(double v) {
  return CarbonPerArea::from_base(v * 1e3);
}
[[nodiscard]] constexpr double in_grams_per_square_centimetre(CarbonPerArea c) { return c.base(); }

// Energy per area (base: J/cm^2)
[[nodiscard]] constexpr EnergyPerArea joules_per_square_centimetre(double v) {
  return EnergyPerArea::from_base(v);
}
[[nodiscard]] constexpr EnergyPerArea kilowatt_hours_per_square_centimetre(double v) {
  return EnergyPerArea::from_base(v * 3.6e6);
}
[[nodiscard]] constexpr double in_kilowatt_hours_per_square_centimetre(EnergyPerArea e) {
  return e.base() / 3.6e6;
}

// Electrical
[[nodiscard]] constexpr Voltage volts(double v) { return Voltage::from_base(v); }
[[nodiscard]] constexpr double in_volts(Voltage v) { return v.base(); }
[[nodiscard]] constexpr Current amperes(double v) { return Current::from_base(v); }
[[nodiscard]] constexpr Current microamperes(double v) { return Current::from_base(v * 1e-6); }
[[nodiscard]] constexpr Current nanoamperes(double v) { return Current::from_base(v * 1e-9); }
[[nodiscard]] constexpr double in_amperes(Current i) { return i.base(); }
[[nodiscard]] constexpr double in_microamperes(Current i) { return i.base() / 1e-6; }
[[nodiscard]] constexpr Capacitance farads(double v) { return Capacitance::from_base(v); }
[[nodiscard]] constexpr Capacitance femtofarads(double v) { return Capacitance::from_base(v * 1e-15); }
[[nodiscard]] constexpr Capacitance attofarads(double v) { return Capacitance::from_base(v * 1e-18); }
[[nodiscard]] constexpr double in_farads(Capacitance c) { return c.base(); }
[[nodiscard]] constexpr double in_femtofarads(Capacitance c) { return c.base() / 1e-15; }
[[nodiscard]] constexpr Charge coulombs(double v) { return Charge::from_base(v); }
[[nodiscard]] constexpr double in_coulombs(Charge q) { return q.base(); }

// Frequency
[[nodiscard]] constexpr Frequency hertz(double v) { return Frequency::from_base(v); }
[[nodiscard]] constexpr Frequency megahertz(double v) { return Frequency::from_base(v * 1e6); }
[[nodiscard]] constexpr Frequency gigahertz(double v) { return Frequency::from_base(v * 1e9); }
[[nodiscard]] constexpr double in_hertz(Frequency f) { return f.base(); }
[[nodiscard]] constexpr double in_megahertz(Frequency f) { return f.base() / 1e6; }

// Mass
[[nodiscard]] constexpr Mass grams(double v) { return Mass::from_base(v); }
[[nodiscard]] constexpr Mass picograms(double v) { return Mass::from_base(v * 1e-12); }
[[nodiscard]] constexpr double in_grams(Mass m) { return m.base(); }

// Temperature
[[nodiscard]] constexpr Temperature kelvin(double v) { return Temperature::from_base(v); }
[[nodiscard]] constexpr double in_kelvin(Temperature t) { return t.base(); }
[[nodiscard]] constexpr Temperature celsius(double v) { return Temperature::from_base(v + 273.15); }

// Carbon-delay product (base: gCO2e.s — equivalently the paper's gCO2e/Hz)
[[nodiscard]] constexpr CarbonDelay gco2e_seconds(double v) { return CarbonDelay::from_base(v); }
[[nodiscard]] constexpr double in_gco2e_seconds(CarbonDelay cd) { return cd.base(); }

}  // namespace units

// ---- Cross-dimension algebra ------------------------------------------------

[[nodiscard]] constexpr Energy operator*(Power p, Duration t) {
  return Energy::from_base(p.base() * t.base());
}
[[nodiscard]] constexpr Energy operator*(Duration t, Power p) { return p * t; }
[[nodiscard]] constexpr Power operator/(Energy e, Duration t) {
  return Power::from_base(e.base() / t.base());
}
[[nodiscard]] constexpr Duration operator/(Energy e, Power p) {
  return Duration::from_base(e.base() / p.base());
}

[[nodiscard]] constexpr Carbon operator*(CarbonIntensity ci, Energy e) {
  return Carbon::from_base(ci.base() * e.base());
}
[[nodiscard]] constexpr Carbon operator*(Energy e, CarbonIntensity ci) { return ci * e; }

[[nodiscard]] constexpr Carbon operator*(CarbonPerArea cpa, Area a) {
  return Carbon::from_base(cpa.base() * a.base());
}
[[nodiscard]] constexpr Carbon operator*(Area a, CarbonPerArea cpa) { return cpa * a; }

[[nodiscard]] constexpr Energy operator*(EnergyPerArea epa, Area a) {
  return Energy::from_base(epa.base() * a.base());
}
[[nodiscard]] constexpr Energy operator*(Area a, EnergyPerArea epa) { return epa * a; }

[[nodiscard]] constexpr EnergyPerArea operator/(Energy e, Area a) {
  return EnergyPerArea::from_base(e.base() / a.base());
}
[[nodiscard]] constexpr CarbonPerArea operator/(Carbon c, Area a) {
  return CarbonPerArea::from_base(c.base() / a.base());
}

[[nodiscard]] constexpr Power operator*(Voltage v, Current i) {
  return Power::from_base(v.base() * i.base());
}
[[nodiscard]] constexpr Power operator*(Current i, Voltage v) { return v * i; }

[[nodiscard]] constexpr Charge operator*(Capacitance c, Voltage v) {
  return Charge::from_base(c.base() * v.base());
}
[[nodiscard]] constexpr Charge operator*(Current i, Duration t) {
  return Charge::from_base(i.base() * t.base());
}
[[nodiscard]] constexpr Energy operator*(Charge q, Voltage v) {
  return Energy::from_base(q.base() * v.base());
}
[[nodiscard]] constexpr Energy operator*(Voltage v, Charge q) { return q * v; }

[[nodiscard]] constexpr CarbonDelay operator*(Carbon c, Duration t) {
  return CarbonDelay::from_base(c.base() * t.base());
}
[[nodiscard]] constexpr CarbonDelay operator*(Duration t, Carbon c) { return c * t; }
[[nodiscard]] constexpr Carbon operator/(CarbonDelay cd, Duration t) {
  return Carbon::from_base(cd.base() / t.base());
}
[[nodiscard]] constexpr Duration operator/(CarbonDelay cd, Carbon c) {
  return Duration::from_base(cd.base() / c.base());
}

[[nodiscard]] constexpr Duration operator/(double cycles, Frequency f) {
  return Duration::from_base(cycles / f.base());
}
[[nodiscard]] constexpr Duration period(Frequency f) { return Duration::from_base(1.0 / f.base()); }

[[nodiscard]] constexpr Area operator*(Length a, Length b) {
  // lengths are stored in metres; area base unit is cm^2 (1 m^2 = 1e4 cm^2)
  return Area::from_base(a.base() * b.base() * 1e4);
}

}  // namespace ppatc
