// ppatc: contract checking.
//
// PPATC_EXPECT / PPATC_ENSURE guard preconditions and postconditions on the
// public API. Violations throw ContractViolation (they indicate a programming
// error by the caller, not an environmental failure), so tests can assert on
// them and library users get an actionable message instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ppatc {

class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace ppatc

#define PPATC_EXPECT(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) ::ppatc::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PPATC_ENSURE(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) ::ppatc::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)
