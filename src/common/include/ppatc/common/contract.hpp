// ppatc: contract checking.
//
// PPATC_EXPECT / PPATC_ENSURE guard preconditions and postconditions on the
// public API. Violations throw ContractViolation (they indicate a programming
// error by the caller, not an environmental failure), so tests can assert on
// them and library users get an actionable message instead of UB.
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ppatc {

class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Called with (kind, full message) just before a ContractViolation is
/// thrown. Must not throw and must tolerate reentrancy (a contract check
/// inside the observer fires the observer again).
using ContractFailureObserver = void (*)(const char* kind, const char* what) noexcept;

inline std::atomic<ContractFailureObserver>& contract_observer_slot() noexcept {
  static std::atomic<ContractFailureObserver> slot{nullptr};
  return slot;
}

}  // namespace detail

/// Installs a process-wide hook observing every contract failure before the
/// throw. The common layer cannot depend on obs, so this function-pointer
/// slot is how the flight recorder's diagnostic writer (obs/diag.cpp) gets
/// told about PPATC_EXPECT / PPATC_ENSURE failures. nullptr uninstalls.
inline void set_contract_failure_observer(detail::ContractFailureObserver fn) noexcept {
  detail::contract_observer_slot().store(fn, std::memory_order_release);
}

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  const std::string what = os.str();
  if (const ContractFailureObserver fn =
          contract_observer_slot().load(std::memory_order_acquire)) {
    fn(kind, what.c_str());
  }
  throw ContractViolation(what);
}
}  // namespace detail

}  // namespace ppatc

#define PPATC_EXPECT(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) ::ppatc::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PPATC_ENSURE(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) ::ppatc::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)
