#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

std::vector<Workload> embench_suite() {
  return {matmult_int(), crc32(),      edn(),        ud(),    aha_mont(),
          sglib_list(),  statemate(), primecount(), qsort_ints()};
}

}  // namespace ppatc::workloads
