// Embench "aha-mont64" flavor: Montgomery modular multiplication. The M0 has
// only a 32x32->32 multiplier, so a software umul64 (four 16x16 partials with
// carry propagation) provides the wide product — mirroring the __aeabi_lmul
// helper calls in real Embench builds. Word size is 32 bits (documented
// adaptation; the arithmetic structure is identical).
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr std::uint32_t kModulus = 0x3B9A'CA07u;  // odd, < 2^31 (final subtract stays in range)
constexpr std::uint32_t kX0 = 0x0123'4567u % kModulus;
constexpr std::uint32_t kY0 = 0x89AB'CDEFu % kModulus;

// nprime = -n^{-1} mod 2^32 via Newton iteration.
constexpr std::uint32_t nprime() {
  std::uint32_t inv = kModulus;  // correct to 3 bits for odd n
  for (int i = 0; i < 5; ++i) inv *= 2u - kModulus * inv;
  return ~inv + 1u;  // -inv
}

std::uint32_t montmul_ref(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t t = static_cast<std::uint64_t>(a) * b;
  const std::uint32_t m = static_cast<std::uint32_t>(t) * nprime();
  const std::uint64_t mn = static_cast<std::uint64_t>(m) * kModulus;
  const std::uint64_t low_sum = static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)) +
                                static_cast<std::uint32_t>(mn);
  std::uint64_t u = (t >> 32) + (mn >> 32) + (low_sum >> 32);
  if (u >= kModulus) u -= kModulus;
  return static_cast<std::uint32_t>(u);
}

std::uint32_t reference_checksum(int repeats) {
  std::uint32_t x = kX0;
  std::uint32_t y = kY0;
  for (int rep = 0; rep < repeats; ++rep) {
    x = montmul_ref(x, y);
    y = montmul_ref(y, x);
  }
  return x + y;
}

}  // namespace

Workload aha_mont(int repeats) {
  Workload w;
  w.name = "aha-mont";
  w.description = "Montgomery modular multiplication chain (32-bit adaptation of aha-mont64), " +
                  std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  const std::string n_str = std::to_string(kModulus);
  const std::string np_str = std::to_string(nprime());
  const std::string x0_str = std::to_string(kX0);
  const std::string y0_str = std::to_string(kY0);
  w.assembly = R"(
.equ EXIT, 0x40000000

_start:
    sub sp, #16               @ [0]=reps [4]=x [8]=y
    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    ldr r0, =)" + x0_str + R"(
    str r0, [sp, #4]
    ldr r0, =)" + y0_str + R"(
    str r0, [sp, #8]
rep_loop:
    ldr r0, [sp, #4]
    ldr r1, [sp, #8]
    bl montmul
    str r0, [sp, #4]          @ x = montmul(x, y)
    ldr r1, [sp, #4]
    ldr r0, [sp, #8]
    bl montmul
    str r0, [sp, #8]          @ y = montmul(y, x)
    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    bne rep_loop
    ldr r0, [sp, #4]
    ldr r1, [sp, #8]
    adds r0, r0, r1
    ldr r1, =EXIT
    str r0, [r1, #0]
.ltorg

@ montmul(r0 = a, r1 = b) -> r0 = a*b*R^-1 mod n. Clobbers r1-r6.
montmul:
    push {r4, r5, r6, r7, lr}
    bl umul64                 @ r0 = t_lo, r1 = t_hi
    movs r7, r1               @ t_hi (umul64 leaves r7 untouched)
    push {r0}                 @ save t_lo
    ldr r1, =)" + np_str + R"(
    muls r0, r1               @ m = t_lo * nprime (mod 2^32)
    ldr r1, =)" + n_str + R"(
    bl umul64                 @ r0 = mn_lo, r1 = mn_hi
    pop {r2}                  @ t_lo
    adds r0, r0, r2           @ low halves; carry out
    adcs r1, r7               @ u = mn_hi + t_hi + carry
    movs r0, r1
    ldr r1, =)" + n_str + R"(
    cmp r0, r1
    blo montmul_done
    subs r0, r0, r1
montmul_done:
    pop {r4, r5, r6, r7, pc}
.ltorg

@ umul64(r0 = a, r1 = b) -> r0 = lo, r1 = hi. Clobbers r2-r6.
umul64:
    uxth r2, r0               @ al
    lsrs r3, r0, #16          @ ah
    uxth r4, r1               @ bl
    lsrs r5, r1, #16          @ bh
    movs r6, r2
    muls r6, r4               @ ll = al*bl
    muls r2, r5               @ lh = al*bh
    muls r4, r3               @ hl = ah*bl
    muls r3, r5               @ hh = ah*bh
    adds r2, r2, r4           @ mid = lh + hl (carry -> hh += 1<<16)
    bcc umul_nc
    movs r4, #1
    lsls r4, r4, #16
    adds r3, r3, r4
umul_nc:
    lsls r4, r2, #16          @ mid << 16
    lsrs r5, r2, #16          @ mid >> 16
    adds r0, r6, r4           @ lo = ll + (mid<<16); carry out
    adcs r5, r3               @ hi = hh + (mid>>16) + carry
    movs r1, r5
    bx lr
)";
  return w;
}

}  // namespace ppatc::workloads
