// Embench "sglib-combined" flavor: singly-linked-list insertion sort plus an
// order-sensitive traversal checksum — pointer chasing with irregular access.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kNodes = 64;
constexpr std::uint32_t kSeed = 31337;

std::uint32_t reference_checksum(int repeats) {
  // Node i: value at DATA + 8i, next pointer at DATA + 8i + 4 (address or 0).
  std::array<std::uint32_t, kNodes> value{};
  std::array<int, kNodes> next{};  // index or -1
  std::uint32_t x = kSeed;
  for (auto& v : value) {
    x = lcg_next(x);
    v = x;
  }
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    int head = -1;
    for (int node = 0; node < kNodes; ++node) {
      // Insert preserving non-decreasing order (unsigned compare).
      int prev = -1;
      int cur = head;
      while (cur != -1 && value[cur] < value[node]) {
        prev = cur;
        cur = next[cur];
      }
      next[node] = cur;
      if (prev == -1) {
        head = node;
      } else {
        next[prev] = node;
      }
    }
    std::uint32_t position = 0;
    for (int cur = head; cur != -1; cur = next[cur]) {
      checksum += value[cur] ^ position;
      ++position;
    }
  }
  return checksum;
}

}  // namespace

Workload sglib_list(int repeats) {
  Workload w;
  w.name = "sglib-list";
  w.description = "linked-list insertion sort + traversal (64 nodes), " +
                  std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ NODES, 0x20000000        @ 64 nodes x 8 bytes: value, next (0 = null)
.equ NEND,  0x20000200
.equ EXIT,  0x40000000

_start:
    sub sp, #8                @ [0]=reps [4]=head
    @ ---- fill node values ----
    ldr r0, =NODES
    ldr r1, =31337
    ldr r2, =1664525
    ldr r3, =1013904223
    movs r4, #64
fillv:
    muls r1, r2
    adds r1, r1, r3
    str r1, [r0, #0]
    adds r0, #8
    subs r4, r4, #1
    bne fillv

    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    movs r0, #0
    str r0, [sp, #4]          @ head = null
    ldr r6, =NODES            @ node = first
insert_loop:
    @ walk: prev (r2) = 0, cur (r3) = head
    movs r2, #0
    ldr r3, [sp, #4]
    ldr r4, [r6, #0]          @ value[node]
walk:
    cmp r3, #0
    beq place
    ldr r5, [r3, #0]          @ value[cur]
    cmp r5, r4
    bhs place                 @ stop at first value >= node's
    movs r2, r3               @ prev = cur
    ldr r3, [r3, #4]          @ cur = next[cur]
    b walk
place:
    str r3, [r6, #4]          @ next[node] = cur
    cmp r2, #0
    bne link_prev
    str r6, [sp, #4]          @ head = node
    b placed
link_prev:
    str r6, [r2, #4]          @ next[prev] = node
placed:
    adds r6, #8               @ ++node
    ldr r0, =NEND
    cmp r6, r0
    blo insert_loop

    @ ---- traversal checksum ----
    ldr r3, [sp, #4]          @ cur = head
    movs r4, #0               @ position
trav:
    cmp r3, #0
    beq trav_done
    ldr r5, [r3, #0]
    eors r5, r4
    adds r7, r7, r5
    adds r4, r4, #1
    ldr r3, [r3, #4]
    b trav
trav_done:
    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    beq done
    b rep_loop
done:
    ldr r1, =EXIT
    str r7, [r1, #0]
)";
  return w;
}

}  // namespace ppatc::workloads
