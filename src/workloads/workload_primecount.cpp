// Embench "primecount": sieve of Eratosthenes over [2, 4096), counting
// primes — byte-array marking with quadratic inner strides.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kLimit = 4096;

std::uint32_t reference_checksum(int repeats) {
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::array<std::uint8_t, kLimit> composite{};
    std::uint32_t count = 0;
    for (std::uint32_t i = 2; i < kLimit; ++i) {
      if (composite[i]) continue;
      ++count;
      for (std::uint32_t j = i * i; j < kLimit; j += i) composite[j] = 1;
    }
    checksum += count;
  }
  return checksum;
}

}  // namespace

Workload primecount(int repeats) {
  Workload w;
  w.name = "primecount";
  w.description = "sieve of Eratosthenes to 4096, " + std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ SIEVE, 0x20000000        @ 4096 flag bytes
.equ LIMIT, 4096
.equ EXIT,  0x40000000

_start:
    sub sp, #8                @ [0]=reps
    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    @ ---- clear the sieve (1024 words) ----
    ldr r0, =SIEVE
    ldr r1, =1024
    movs r2, #0
clear:
    stm r0!, {r2}
    subs r1, r1, #1
    bne clear

    ldr r6, =SIEVE
    movs r4, #0               @ count
    movs r0, #2               @ i
i_loop:
    ldrb r1, [r6, r0]
    cmp r1, #0
    bne not_prime
    adds r4, r4, #1           @ ++count
    @ j = i*i; mark every multiple
    movs r1, r0
    muls r1, r0               @ j = i*i
    ldr r3, =LIMIT
    movs r5, #1
mark:
    cmp r1, r3
    bhs not_prime
    strb r5, [r6, r1]
    adds r1, r1, r0           @ j += i
    b mark
not_prime:
    adds r0, r0, #1
    ldr r3, =LIMIT
    cmp r0, r3
    blo i_loop

    adds r7, r7, r4           @ checksum += count
    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    bne rep_loop

    ldr r1, =EXIT
    str r7, [r1, #0]
)";
  return w;
}

}  // namespace ppatc::workloads
