// Embench "ud" flavor: in-place integer LU elimination on a 10x10 matrix,
// using a software restoring divider (the M0 has no divide instruction; real
// Embench builds call __aeabi_uidiv).
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kN = 10;
constexpr std::uint32_t kSeed = 4242;

// Division semantics shared by the ISS program and the reference: x/0 yields
// all-ones (the ISS routine returns 0xFFFFFFFF on zero divisors).
std::uint32_t udiv(std::uint32_t a, std::uint32_t b) { return b == 0 ? 0xFFFF'FFFFu : a / b; }

std::uint32_t reference_checksum(int repeats) {
  std::array<std::uint32_t, kN * kN> m{};
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint32_t x = kSeed;
    for (auto& v : m) {
      x = lcg_next(x);
      v = x & 0xFFu;
    }
    for (int k = 0; k < kN; ++k) {
      const std::uint32_t pivot = m[k * kN + k];
      for (int i = k + 1; i < kN; ++i) {
        const std::uint32_t f = udiv(m[i * kN + k], pivot);
        for (int j = k; j < kN; ++j) m[i * kN + j] -= f * m[k * kN + j];
      }
    }
    for (const auto v : m) checksum += v;
  }
  return checksum;
}

}  // namespace

Workload ud(int repeats) {
  Workload w;
  w.name = "ud";
  w.description = "10x10 integer LU elimination with software divide, " +
                  std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ MAT,  0x20000000          @ 10x10 uint32, row stride 40
.equ MEND, 0x20000190
.equ EXIT, 0x40000000

_start:
    sub sp, #16               @ [0]=reps [4]=k [8]=i [12]=pivot
    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum

rep_loop:
    @ ---- (re)fill the matrix: 100 words of LCG & 0xFF ----
    ldr r0, =MAT
    ldr r1, =4242
    ldr r2, =1664525
    ldr r3, =1013904223
    movs r4, #100
fill:
    muls r1, r2
    adds r1, r1, r3
    movs r5, #255
    ands r5, r1
    stm r0!, {r5}
    subs r4, r4, #1
    bne fill

    @ ---- LU elimination ----
    movs r0, #0
    str r0, [sp, #4]          @ k = 0
k_loop:
    @ pivot = M[k][k]
    ldr r0, [sp, #4]
    movs r1, #44              @ k*44 = k*40 + k*4
    muls r1, r0
    ldr r2, =MAT
    adds r2, r2, r1
    ldr r3, [r2, #0]
    str r3, [sp, #12]         @ pivot
    @ i = k + 1
    adds r0, r0, #1
    str r0, [sp, #8]
i_loop:
    ldr r0, [sp, #8]
    cmp r0, #10
    bhs i_done
    @ f = udiv(M[i][k], pivot)
    movs r1, #40
    muls r1, r0               @ i*40
    ldr r2, [sp, #4]
    lsls r3, r2, #2           @ k*4
    adds r1, r1, r3
    ldr r2, =MAT
    adds r2, r2, r1           @ &M[i][k]
    movs r6, r2               @ save row cursor
    ldr r0, [r2, #0]
    ldr r1, [sp, #12]
    bl udiv32                 @ r0 = quotient, clobbers r1-r3
    movs r4, r0               @ f
    @ row update: for j = k..9: M[i][j] -= f * M[k][j]
    movs r1, r6               @ pij = &M[i][k]
    ldr r0, [sp, #4]
    movs r2, #44
    muls r2, r0
    ldr r3, =MAT
    adds r0, r3, r2           @ pkj = &M[k][k]
    @ row k end = &M[k][0] + 40
    ldr r2, [sp, #4]
    movs r3, #40
    muls r3, r2
    ldr r2, =MAT
    adds r2, r2, r3
    adds r2, #40              @ end of row k
j_loop:
    ldr r3, [r0, #0]          @ M[k][j]
    muls r3, r4
    ldr r5, [r1, #0]          @ M[i][j]
    subs r5, r5, r3
    str r5, [r1, #0]
    adds r0, #4
    adds r1, #4
    cmp r0, r2
    blo j_loop
    @ ++i
    ldr r0, [sp, #8]
    adds r0, r0, #1
    str r0, [sp, #8]
    b i_loop
i_done:
    ldr r0, [sp, #4]
    adds r0, r0, #1
    str r0, [sp, #4]
    cmp r0, #10
    blo k_loop

    @ ---- checksum += sum of matrix ----
    ldr r0, =MAT
    ldr r1, =MEND
sum_loop:
    ldm r0!, {r2}
    adds r7, r7, r2
    cmp r0, r1
    blo sum_loop

    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    beq done
    b rep_loop
done:
    ldr r1, =EXIT
    str r7, [r1, #0]
.ltorg

@ uint32 udiv32(r0 dividend, r1 divisor) -> r0 quotient; clobbers r2, r3.
udiv32:
    cmp r1, #0
    bne udiv_ok
    ldr r0, =0xFFFFFFFF
    bx lr
udiv_ok:
    movs r2, #0               @ remainder
    movs r3, #32
udiv_loop:
    adds r0, r0, r0           @ carry <- top bit of dividend/quotient
    adcs r2, r2               @ remainder = remainder*2 + carry
    cmp r2, r1
    blo udiv_skip
    subs r2, r2, r1
    adds r0, r0, #1
udiv_skip:
    subs r3, r3, #1
    bne udiv_loop
    bx lr
)";
  return w;
}

}  // namespace ppatc::workloads
