#include "ppatc/workloads/workload.hpp"

#include "ppatc/isa/assembler.hpp"

namespace ppatc::workloads {

RunOutcome run_workload(const Workload& workload) {
  const isa::Program program = isa::assemble(workload.assembly);
  isa::Bus bus;
  bus.load_program(0, program.bytes);
  isa::Cpu cpu{bus};
  // Stack at the top of data memory, growing down.
  cpu.reset(program.entry, isa::kDataBase + isa::kDataSize - 16);
  const auto run = cpu.run(workload.instruction_budget);

  RunOutcome out;
  out.halted = run.halted;
  out.checksum = bus.exit_code();
  out.checksum_ok = run.halted && out.checksum == workload.expected_checksum;
  out.instructions = run.instructions;
  out.cycles = run.cycles;
  out.stats = bus.stats();
  return out;
}

}  // namespace ppatc::workloads
