// Recursive Fibonacci — exercises BL/BX, PUSH/POP and deep call stacks.
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {
std::uint32_t fib_ref(std::uint32_t n) { return n < 2 ? n : fib_ref(n - 1) + fib_ref(n - 2); }
}  // namespace

Workload fib(int n) {
  Workload w;
  w.name = "fib";
  w.description = "recursive fibonacci(" + std::to_string(n) + ")";
  w.expected_checksum = fib_ref(static_cast<std::uint32_t>(n));
  w.assembly = R"(
.equ EXIT, 0x40000000

_start:
    movs r0, #)" + std::to_string(n) + R"(
    bl fib
    ldr r1, =EXIT
    str r0, [r1, #0]

@ uint32 fib(uint32 n) — recursive
fib:
    cmp r0, #2
    bhs fib_rec
    bx lr                     @ fib(0)=0, fib(1)=1
fib_rec:
    push {r4, lr}
    movs r4, r0
    subs r0, r0, #1
    bl fib
    movs r1, r0               @ save fib(n-1)
    push {r1}
    subs r0, r4, #2
    bl fib
    pop {r1}
    adds r0, r0, r1
    pop {r4, pc}
)";
  return w;
}

}  // namespace ppatc::workloads
