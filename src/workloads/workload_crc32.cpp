// Embench "crc32": table-driven CRC-32 over a 4 kB buffer.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr std::uint32_t kPoly = 0xEDB8'8320u;
constexpr std::uint32_t kSeed = 0xC0FFEEu;
constexpr int kBufWords = 1024;  // 4 kB

std::uint32_t reference_checksum(int repeats) {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  std::array<std::uint8_t, kBufWords * 4> buf{};
  std::uint32_t x = kSeed;
  for (int w = 0; w < kBufWords; ++w) {
    x = lcg_next(x);
    buf[4 * w + 0] = static_cast<std::uint8_t>(x);
    buf[4 * w + 1] = static_cast<std::uint8_t>(x >> 8);
    buf[4 * w + 2] = static_cast<std::uint8_t>(x >> 16);
    buf[4 * w + 3] = static_cast<std::uint8_t>(x >> 24);
  }
  std::uint32_t crc = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    crc = 0xFFFF'FFFFu;
    for (const std::uint8_t b : buf) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
    crc ^= 0xFFFF'FFFFu;
  }
  return crc;
}

}  // namespace

Workload crc32(int repeats) {
  Workload w;
  w.name = "crc32";
  w.description = "table-driven CRC-32 over 4 kB, " + std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ TABLE, 0x20000000        @ 256 words
.equ BUF,   0x20000400        @ 4096 bytes
.equ BUFEND,0x20001400
.equ EXIT,  0x40000000

_start:
    sub sp, #8                @ [0]=reps
    @ ---- build the CRC table ----
    ldr r0, =TABLE
    movs r1, #0               @ i
tbl_i:
    movs r2, r1               @ c = i
    movs r3, #8
    ldr r4, =0xEDB88320
tbl_k:
    movs r5, #1
    ands r5, r2               @ c & 1
    lsrs r2, r2, #1
    cmp r5, #0
    beq tbl_noxor
    eors r2, r4
tbl_noxor:
    subs r3, r3, #1
    bne tbl_k
    stm r0!, {r2}
    adds r1, r1, #1
    cmp r1, #255
    bls tbl_i

    @ ---- fill the buffer with LCG words ----
    ldr r0, =BUF
    ldr r1, =0xC0FFEE
    ldr r2, =1664525
    ldr r3, =1013904223
    ldr r4, =1024
fill:
    muls r1, r2
    adds r1, r1, r3
    stm r0!, {r1}
    subs r4, r4, #1
    bne fill

    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
rep_loop:
    ldr r0, =0xFFFFFFFF       @ crc
    ldr r1, =BUF              @ ptr
    ldr r2, =BUFEND
    ldr r3, =TABLE
byte_loop:
    ldrb r4, [r1, #0]
    adds r1, r1, #1
    eors r4, r0               @ crc ^ byte
    uxtb r4, r4
    lsls r4, r4, #2
    ldr r4, [r3, r4]          @ table entry
    lsrs r0, r0, #8
    eors r0, r4
    cmp r1, r2
    blo byte_loop
    mvns r0, r0               @ crc ^= ~0
    ldr r1, [sp, #0]
    subs r1, r1, #1
    str r1, [sp, #0]
    bne rep_loop

    ldr r1, =EXIT
    str r0, [r1, #0]
)";
  return w;
}

}  // namespace ppatc::workloads
