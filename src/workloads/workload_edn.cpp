// Embench "edn" flavor: int16 signal-processing kernels (dot product and
// scaled vector multiply), exercising ldrsh/strh and the MAC pattern.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kLen = 256;
constexpr std::uint32_t kSeed = 777;

std::uint32_t reference_checksum(int repeats) {
  std::array<std::int16_t, kLen> xs{};
  std::array<std::int16_t, kLen> ys{};
  std::uint32_t x = kSeed;
  for (auto& v : xs) {
    x = lcg_next(x);
    v = static_cast<std::int16_t>(x & 0xFFFFu);
  }
  for (auto& v : ys) {
    x = lcg_next(x);
    v = static_cast<std::int16_t>(x & 0xFFFFu);
  }
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    // dot product
    std::uint32_t dot = 0;
    for (int i = 0; i < kLen; ++i) {
      dot += static_cast<std::uint32_t>(static_cast<std::int32_t>(xs[i]) *
                                        static_cast<std::int32_t>(ys[i]));
    }
    checksum += dot;
    // vec_mpy: y[i] += (x[i] * 13) >> 4 (stored back as int16)
    for (int i = 0; i < kLen; ++i) {
      const std::int32_t t = (static_cast<std::int32_t>(xs[i]) * 13) >> 4;
      ys[i] = static_cast<std::int16_t>(static_cast<std::int32_t>(ys[i]) + t);
    }
  }
  return checksum;
}

}  // namespace

Workload edn(int repeats) {
  Workload w;
  w.name = "edn";
  w.description = "int16 dot-product + vec_mpy kernels, " + std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ XS,   0x20000000         @ 256 int16
.equ YS,   0x20000200
.equ YEND, 0x20000400
.equ EXIT, 0x40000000

_start:
    sub sp, #8                @ [0]=reps
    @ ---- fill xs and ys (512 halfwords) ----
    ldr r0, =XS
    ldr r1, =777
    ldr r2, =1664525
    ldr r3, =1013904223
    ldr r4, =512
fill:
    muls r1, r2
    adds r1, r1, r3
    strh r1, [r0, #0]
    adds r0, #2
    subs r4, r4, #1
    bne fill

    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    @ ---- dot product ----
    ldr r0, =XS
    ldr r1, =YS
    movs r2, #0               @ offset
    movs r3, #0               @ acc
dot_loop:
    ldrsh r4, [r0, r2]
    ldrsh r5, [r1, r2]
    muls r4, r5
    adds r3, r3, r4
    adds r2, r2, #2
    ldr r6, =512
    cmp r2, r6
    blo dot_loop
    adds r7, r7, r3           @ checksum += dot

    @ ---- vec_mpy: ys[i] += (xs[i] * 13) >> 4 ----
    ldr r0, =XS
    ldr r1, =YS
    movs r2, #0
vm_loop:
    ldrsh r4, [r0, r2]
    movs r5, #13
    muls r4, r5
    asrs r4, r4, #4
    ldrsh r5, [r1, r2]
    adds r5, r5, r4
    strh r5, [r1, r2]         @ needs reg-offset store
    adds r2, r2, #2
    ldr r6, =512
    cmp r2, r6
    blo vm_loop

    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    bne rep_loop

    ldr r1, =EXIT
    str r7, [r1, #0]
)";
  return w;
}

}  // namespace ppatc::workloads
