// ppatc: Embench-style workload kernels for the ISS.
//
// The paper's case study runs applications from the Embench-IoT suite on the
// Cortex-M0 and extracts cycle counts and eDRAM access counts from RTL
// simulation. Here each workload is re-implemented as a self-contained Thumb
// assembly program (same algorithm and working-set scale as its Embench
// counterpart, self-initializing via a deterministic LCG) together with a
// native C++ reference model. The ISS result must match the reference
// checksum exactly, which the test suite enforces — the access statistics
// that feed the carbon model are therefore produced by verified executions.
//
// Absolute cycle counts differ from the paper (different compiler, hand
// assembly): EXPERIMENTS.md reports paper-vs-measured for each.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ppatc/isa/cpu.hpp"

namespace ppatc::workloads {

struct Workload {
  std::string name;          ///< Embench-style name, e.g. "matmult-int"
  std::string description;
  std::string assembly;      ///< Thumb source for ppatc::isa::assemble
  std::uint32_t expected_checksum = 0;  ///< from the native reference model
  std::uint64_t instruction_budget = 200'000'000;  ///< runaway guard
};

/// Outcome of executing a workload on the ISS.
struct RunOutcome {
  bool halted = false;
  std::uint32_t checksum = 0;       ///< the program's MMIO exit value
  bool checksum_ok = false;         ///< checksum == workload.expected_checksum
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  isa::AccessStats stats;           ///< memory accesses for the energy model
};

/// Assembles and runs a workload on a fresh system.
[[nodiscard]] RunOutcome run_workload(const Workload& workload);

// ---- the suite -------------------------------------------------------------

/// Dense integer matrix multiply (Embench "matmult-int"): 20x20 int32,
/// `repeats` passes. repeats=208 lands near the paper's ~20M-cycle scale.
[[nodiscard]] Workload matmult_int(int repeats = 208);

/// Table-driven CRC-32 over a 4 kB buffer (Embench "crc32").
[[nodiscard]] Workload crc32(int repeats = 48);

/// Vector multiply-accumulate / dot-product kernels (Embench "edn" core).
[[nodiscard]] Workload edn(int repeats = 40);

/// Integer LU decomposition with software division (Embench "ud").
[[nodiscard]] Workload ud(int repeats = 120);

/// Montgomery modular multiplication, 32-bit adaptation of Embench
/// "aha-mont64" (the M0 has no 64-bit multiplier; a software mulhi is used).
[[nodiscard]] Workload aha_mont(int repeats = 2200);

/// Linked-list insertion sort + traversal (Embench "sglib-combined" flavor).
[[nodiscard]] Workload sglib_list(int repeats = 28);

/// Table-driven state machine (Embench "statemate" flavor).
[[nodiscard]] Workload statemate(int repeats = 30);

/// Sieve of Eratosthenes prime counting (Embench "primecount").
[[nodiscard]] Workload primecount(int repeats = 40);

/// Recursive quicksort of 256 uint32 (Embench "wikisort" flavor) — deep
/// recursion and stack traffic.
[[nodiscard]] Workload qsort_ints(int repeats = 24);

/// Tiny recursive Fibonacci — not part of Embench; used by tests and docs.
[[nodiscard]] Workload fib(int n = 15);

/// All Embench-style workloads at their default scales (excludes fib).
[[nodiscard]] std::vector<Workload> embench_suite();

// ---- shared helpers (used by the reference models and generators) ----------

/// The deterministic data generator both the assembly and reference use:
/// x <- x * 1664525 + 1013904223.
[[nodiscard]] constexpr std::uint32_t lcg_next(std::uint32_t x) {
  return x * 1664525u + 1013904223u;
}

}  // namespace ppatc::workloads
