// Embench "wikisort"-flavor kernel: recursive quicksort (Lomuto partition)
// of 256 uint32 values — deep recursion, data-dependent branches, heavy
// stack traffic.
#include <algorithm>
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kCount = 256;
constexpr std::uint32_t kSeed = 97531;

std::uint32_t reference_checksum(int repeats) {
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::array<std::uint32_t, kCount> a{};
    std::uint32_t x = kSeed;
    for (auto& v : a) {
      x = lcg_next(x);
      v = x;
    }
    std::sort(a.begin(), a.end());  // values only; any correct sort matches
    for (int i = 0; i < kCount; ++i) checksum += a[i] ^ static_cast<std::uint32_t>(i);
  }
  return checksum;
}

}  // namespace

Workload qsort_ints(int repeats) {
  Workload w;
  w.name = "qsort";
  w.description = "recursive quicksort of 256 uint32, " + std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ DATA, 0x20000000         @ 256 words
.equ DEND, 0x20000400
.equ EXIT, 0x40000000

_start:
    sub sp, #8                @ [0]=reps
    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    @ ---- fill with LCG ----
    ldr r0, =DATA
    ldr r1, =97531
    ldr r2, =1664525
    ldr r3, =1013904223
    movs r4, #0
fill:
    muls r1, r2
    adds r1, r1, r3
    stm r0!, {r1}
    adds r4, r4, #1
    cmp r4, #255
    bls fill

    @ ---- sort ----
    ldr r0, =DATA
    ldr r1, =DEND-4           @ inclusive last element
    bl qsort

    @ ---- order-sensitive checksum ----
    ldr r0, =DATA
    movs r4, #0               @ index
sum:
    ldm r0!, {r5}
    eors r5, r4
    adds r7, r7, r5
    adds r4, r4, #1
    cmp r4, #255
    bls sum

    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    beq done
    b rep_loop
done:
    ldr r1, =EXIT
    str r7, [r1, #0]
.ltorg

@ qsort(r0 = lo ptr, r1 = hi ptr, both inclusive). Clobbers r2-r6.
qsort:
    cmp r0, r1
    blo qs_go
    bx lr
qs_go:
    push {r4, r5, r6, lr}
    sub sp, #12               @ [0]=lo [4]=hi [8]=p
    str r0, [sp, #0]
    str r1, [sp, #4]
    @ Lomuto partition with pivot = *hi
    ldr r4, [r1, #0]          @ pivot value
    movs r2, r0               @ store pointer (p)
    movs r3, r0               @ scan pointer
part_loop:
    cmp r3, r1
    bhs part_done
    ldr r5, [r3, #0]
    cmp r5, r4
    bhs part_next             @ keep elements >= pivot on the right
    ldr r6, [r2, #0]
    str r5, [r2, #0]
    str r6, [r3, #0]
    adds r2, #4
part_next:
    adds r3, #4
    b part_loop
part_done:
    ldr r5, [r2, #0]          @ swap *p <-> *hi (pivot into place)
    str r4, [r2, #0]
    str r5, [r1, #0]
    str r2, [sp, #8]
    @ left half: qsort(lo, p-4) when p > lo
    ldr r0, [sp, #0]
    ldr r1, [sp, #8]
    cmp r1, r0
    bls qs_right
    subs r1, r1, #4
    bl qsort
qs_right:
    ldr r0, [sp, #8]
    adds r0, r0, #4
    ldr r1, [sp, #4]
    cmp r0, r1
    bhi qs_out                @ p+4 > hi: nothing on the right
    bl qsort
qs_out:
    add sp, #12
    pop {r4, r5, r6, pc}
)";
  return w;
}

}  // namespace ppatc::workloads
