// Embench "statemate" flavor: table-driven finite state machine with a
// data-dependent, branch-free dispatch — dominated by dependent byte loads.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kStates = 64;
constexpr int kInputs = 16;
constexpr int kSteps = 4096;
constexpr std::uint32_t kTableSeed = 909090;
constexpr std::uint32_t kInputSeed = 606060;

std::uint32_t reference_checksum(int repeats) {
  std::array<std::uint8_t, kStates * kInputs> table{};
  std::uint32_t x = kTableSeed;
  for (auto& t : table) {
    x = lcg_next(x);
    t = static_cast<std::uint8_t>((x >> 16) & (kStates - 1));
  }
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint32_t state = 0;
    std::uint32_t in = kInputSeed;
    for (int s = 0; s < kSteps; ++s) {
      in = lcg_next(in);
      const std::uint32_t input = (in >> 8) & (kInputs - 1);
      state = table[state * kInputs + input];
      checksum += state;
    }
  }
  return checksum;
}

}  // namespace

Workload statemate(int repeats) {
  Workload w;
  w.name = "statemate";
  w.description = "table-driven FSM (64 states x 16 inputs, 4096 steps), " +
                  std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ TABLE, 0x20000000        @ 1024 bytes
.equ EXIT,  0x40000000

_start:
    sub sp, #8                @ [0]=reps
    @ ---- fill the transition table ----
    ldr r0, =TABLE
    ldr r1, =909090
    ldr r2, =1664525
    ldr r3, =1013904223
    ldr r4, =1024
fillt:
    muls r1, r2
    adds r1, r1, r3
    lsrs r5, r1, #16
    movs r6, #63
    ands r5, r6
    strb r5, [r0, #0]
    adds r0, #1
    subs r4, r4, #1
    bne fillt

    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    movs r0, #0               @ state
    ldr r1, =606060           @ input LCG
    ldr r2, =1664525
    ldr r3, =1013904223
    ldr r4, =4096             @ steps
    ldr r6, =TABLE
step_loop:
    muls r1, r2
    adds r1, r1, r3
    lsrs r5, r1, #8
    @ input = r5 & 15; index = state*16 + input
    lsls r0, r0, #4
    @ keep only the low 4 bits of r5 via shifts (r2/r3 hold LCG constants)
    lsls r5, r5, #28
    lsrs r5, r5, #28
    adds r5, r5, r0
    ldrb r0, [r6, r5]         @ state = table[index]
    adds r7, r7, r0           @ checksum += state
    subs r4, r4, #1
    bne step_loop
    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    bne rep_loop

    ldr r1, =EXIT
    str r7, [r1, #0]
)";
  return w;
}

}  // namespace ppatc::workloads
