// Embench "matmult-int": dense 20x20 int32 matrix multiplication.
#include <array>
#include <cstdint>

#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {

namespace {

constexpr int kN = 20;
constexpr std::uint32_t kSeed = 12345;

// Native reference model: identical data generation and arithmetic (uint32
// wraparound) to the assembly program.
std::uint32_t reference_checksum(int repeats) {
  std::array<std::uint32_t, kN * kN> a{};
  std::array<std::uint32_t, kN * kN> b{};
  std::uint32_t x = kSeed;
  for (auto& v : a) {
    x = lcg_next(x);
    v = x;
  }
  for (auto& v : b) {
    x = lcg_next(x);
    v = x;
  }
  std::uint32_t checksum = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    for (int i = 0; i < kN; ++i) {
      for (int j = 0; j < kN; ++j) {
        std::uint32_t acc = 0;
        for (int k = 0; k < kN; ++k) acc += a[i * kN + k] * b[k * kN + j];
        checksum += acc;
      }
    }
  }
  return checksum;
}

}  // namespace

Workload matmult_int(int repeats) {
  Workload w;
  w.name = "matmult-int";
  w.description = "20x20 int32 matrix multiply, " + std::to_string(repeats) + " repeats";
  w.expected_checksum = reference_checksum(repeats);
  const std::string reps = std::to_string(repeats);
  w.assembly = R"(
.equ DATA,   0x20000000       @ A at +0, B at +1600, C at +3200
.equ BBASE,  0x20000640
.equ CBASE,  0x20000C80
.equ AEND,   0x20000640
.equ EXIT,   0x40000000

_start:
    sub sp, #16               @ [0]=reps [4]=aRow [8]=bcol [12]=jn
    @ ---- fill A and B (800 words) with the LCG ----
    ldr r0, =DATA
    ldr r1, =12345
    ldr r2, =1664525
    ldr r3, =1013904223
    ldr r4, =800
init:
    muls r1, r2
    adds r1, r1, r3
    stm r0!, {r1}
    subs r4, r4, #1
    bne init

    ldr r0, =)" + reps + R"(
    str r0, [sp, #0]
    movs r7, #0               @ checksum
rep_loop:
    ldr r4, =CBASE            @ C write pointer (row-major)
    ldr r0, =DATA
    str r0, [sp, #4]          @ aRow = &A[0][0]
i_loop:
    ldr r0, =BBASE
    str r0, [sp, #8]          @ bcol = &B[0][j=0]
    movs r0, #20
    str r0, [sp, #12]         @ jn = N
j_loop:
    movs r0, #0               @ acc
    ldr r1, [sp, #4]          @ aptr = aRow
    ldr r2, [sp, #8]          @ bptr = bcol
    movs r3, #20              @ k
inner:
    ldm r1!, {r5}             @ a[i][k]
    ldr r6, [r2, #0]          @ b[k][j]
    muls r5, r6
    adds r0, r0, r5
    adds r2, #80              @ bptr += N*4
    subs r3, r3, #1
    bne inner
    stm r4!, {r0}             @ C[i][j] = acc
    adds r7, r7, r0           @ checksum += acc
    ldr r0, [sp, #8]
    adds r0, #4
    str r0, [sp, #8]          @ bcol += 4
    ldr r0, [sp, #12]
    subs r0, r0, #1
    str r0, [sp, #12]
    bne j_loop
    ldr r0, [sp, #4]
    adds r0, #80
    str r0, [sp, #4]          @ aRow += N*4
    ldr r1, =AEND
    cmp r0, r1
    blo i_loop
    ldr r0, [sp, #0]
    subs r0, r0, #1
    str r0, [sp, #0]
    bne rep_loop

    ldr r1, =EXIT
    str r7, [r1, #0]          @ exit(checksum)
.ltorg
)";
  return w;
}

}  // namespace ppatc::workloads
