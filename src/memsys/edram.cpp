#include "ppatc/memsys/edram.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::memsys {

EdramBank::EdramBank(BankConfig config, Voltage sense_margin)
    : config_{std::move(config)},
      cell_{characterize(config_.cell, sense_margin)},
      sub_{characterize_subarray(config_.subarray, config_.cell, cell_)} {
  PPATC_EXPECT(config_.capacity_bytes % (sub_.bits / 8) == 0,
               "capacity must be a whole number of sub-arrays");
}

int EdramBank::subarray_count() const {
  return static_cast<int>(config_.capacity_bytes / (sub_.bits / 8));
}

std::uint64_t EdramBank::total_rows() const {
  return static_cast<std::uint64_t>(subarray_count()) * config_.subarray.rows;
}

Area EdramBank::area() const {
  const Area array = sub_.array_area * subarray_count();
  const Area periphery = array * config_.periphery_area_fraction;
  if (config_.cell.stacked_over_periphery) {
    // Cells live on the BEOL tiers directly above the Si periphery: the die
    // footprint is whichever is larger.
    return max(array, periphery);
  }
  return array + periphery;
}

Length EdramBank::side() const {
  return units::millimetres(std::sqrt(units::in_square_millimetres(area())));
}

namespace {
Energy bus_energy(const BankConfig& cfg, Length side) {
  const double len_um = units::in_micrometres(side) * cfg.bus_route_factor;
  const double cap_f = cfg.bus_bits * units::in_farads(cfg.subarray.wire_cap_per_um) * len_um;
  const double vdd = units::in_volts(cfg.cell.vdd);
  return units::joules(cfg.bus_activity * cap_f * vdd * vdd);
}
}  // namespace

Energy EdramBank::read_access_energy() const {
  return sub_.read_energy + bus_energy(config_, side());
}

Energy EdramBank::write_access_energy() const {
  return sub_.write_energy + bus_energy(config_, side());
}

Power EdramBank::refresh_power() const {
  const double rows_per_second =
      static_cast<double>(total_rows()) / units::in_seconds(cell_.retention);
  return units::watts(units::in_joules(sub_.refresh_row_energy) * rows_per_second);
}

Power EdramBank::static_power() const {
  const Power periph = config_.periph_static_per_subarray * subarray_count();
  const Power repeaters =
      config_.repeater_leak_per_mm * (units::in_millimetres(side()) * config_.bus_route_factor);
  return periph + repeaters;
}

Duration EdramBank::access_delay() const {
  // Sub-array access plus one global bus traversal (repeatered wire,
  // ~80 ps/mm at this pitch) plus decoder depth (~7 gate delays, ~15 ps each).
  const double bus_ps = 80.0 * units::in_millimetres(side()) * config_.bus_route_factor;
  return sub_.access_delay + units::picoseconds(bus_ps + 7 * 15.0);
}

bool EdramBank::meets_timing(Frequency fclk) const { return access_delay() < period(fclk); }

BankConfig si_bank_config() {
  BankConfig cfg;
  cfg.cell = all_si_cell();
  return cfg;
}

BankConfig m3d_bank_config() {
  BankConfig cfg;
  cfg.cell = m3d_igzo_cnfet_cell();
  return cfg;
}

MemoryEnergyReport memory_energy(const EdramBank& bank, const isa::AccessStats& stats,
                                 std::uint64_t cycles, Frequency fclk) {
  PPATC_EXPECT(cycles > 0, "cycle count must be positive");
  MemoryEnergyReport r;
  // All accesses (fetches, data reads, data writes) are charged to the bank
  // model; Table II accounts the memory as one 64 kB block.
  const std::uint64_t reads = stats.fetches + stats.data_reads;
  const std::uint64_t writes = stats.data_writes;
  r.access_energy =
      bank.read_access_energy() * static_cast<double>(reads) +
      bank.write_access_energy() * static_cast<double>(writes);
  const Duration runtime = period(fclk) * static_cast<double>(cycles);
  r.refresh_energy = bank.refresh_power() * runtime;
  r.static_energy = bank.static_power() * runtime;
  r.total = r.access_energy + r.refresh_energy + r.static_energy;
  r.per_cycle = r.total / static_cast<double>(cycles);
  return r;
}

}  // namespace ppatc::memsys
