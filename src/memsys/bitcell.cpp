#include "ppatc/memsys/bitcell.hpp"

#include "ppatc/common/contract.hpp"
#include "ppatc/device/library.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/circuit.hpp"
#include "ppatc/spice/simulator.hpp"

namespace ppatc::memsys {

namespace {

// Wall-clock distribution of a single corner SPICE solve, in microseconds.
// The edges span fast RC-ish decks (tens of us) through pathological
// Newton-heavy corners (tens of ms); anything slower lands in the overflow
// bucket.
obs::Histogram& corner_latency_histogram() {
  static obs::Histogram& h = obs::histogram(
      "memsys.corner_solve_us",
      {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0, 50000.0});
  return h;
}

// Runs one corner under a named span and records its latency. The gate bool
// is read once so the disabled path costs a branch, not two clock reads.
template <typename Fn>
void timed_corner(const char* name, Fn&& fn) {
  // ppatc-lint: allow(obs-name-literal) — both callers pass string literals
  const obs::Span span{name};
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
  fn();
  if (timed) {
    corner_latency_histogram().record(static_cast<double>(obs::monotonic_ns() - t0) * 1e-3);
  }
}

// ---- corner decks ---------------------------------------------------------
// Each corner is an independent SPICE deck writing disjoint fields of `out`,
// so corners can run as separate pool tasks — within one cell and across a
// batch. Same-shape decks share the interned MNA pattern and pivot program,
// so only the first solve of each topology pays symbolic analysis.

// Write delay: WWL pulses to VWWL, WBL holds VDD, SN charges from 0.
void write_corner(const CellSpec& cell, const spice::SimOptions& options,
                  CellCharacteristics& out) {
  // Flight-marked up front: a crash bundle names the deck and corner that
  // were in flight on each worker, not just the batch that submitted them.
  obs::flight_mark("memsys.deck", std::string_view{cell.name});
  obs::flight_mark("memsys.corner", std::string_view{"write"});
  const double vdd = units::in_volts(cell.vdd);
  spice::Circuit ckt;
  ckt.add_vsource("vwbl", "wbl", "0", spice::Stimulus::dc(cell.vdd));
  ckt.add_vsource("vwwl", "wwl", "0",
                  spice::Stimulus::pwl({{units::picoseconds(0), cell.vhold},
                                        {units::picoseconds(20), cell.vwwl}}));
  ckt.add_fet("mw", cell.write_fet, cell.write_width, "wbl", "wwl", "sn");
  ckt.add_capacitor_ic("sn", "0", cell.storage_cap, units::volts(0.0));
  // The read FET gate loads SN.
  const device::VirtualSourceFet read_fet{cell.read_fet, cell.read_width};
  ckt.add_capacitor("sn", "0", read_fet.gate_capacitance());

  // Pick a horizon long enough for slow (IGZO) writes.
  const spice::Simulator sim{ckt, options};
  const Duration stop = units::nanoseconds(8.0);
  const auto tr = sim.transient(stop, units::picoseconds(5.0), /*from_ics=*/true);
  PPATC_ENSURE(tr.has_value(), "write-delay transient failed to converge");
  const auto sn = tr->node("sn");
  const Duration t90 = spice::cross_time(sn, 0.9 * vdd, spice::Edge::kRise);
  PPATC_ENSURE(t90.base() > 0, "storage node never reached 90% of VDD during write");
  out.write_delay = t90 - units::picoseconds(20);
  out.write_energy = tr->source_energy("vwbl") + tr->source_energy("vwwl");
}

// Read delay: SN holds VDD, RBL (pre-charged to VDD) discharges through the
// read stack once RWL asserts.
void read_corner(const CellSpec& cell, const spice::SimOptions& options,
                 CellCharacteristics& out) {
  obs::flight_mark("memsys.deck", std::string_view{cell.name});
  obs::flight_mark("memsys.corner", std::string_view{"read"});
  const double vdd = units::in_volts(cell.vdd);
  spice::Circuit ckt;
  ckt.add_vsource("vsn", "sn", "0", spice::Stimulus::dc(cell.vdd));
  ckt.add_vsource("vrwl", "rwl", "0",
                  spice::Stimulus::pwl({{units::picoseconds(0), units::volts(0)},
                                        {units::picoseconds(20), cell.vdd}}));
  // Read stack: RBL -> read FET (gate = SN) -> mid -> select FET (gate = RWL) -> GND.
  ckt.add_fet("mr", cell.read_fet, cell.read_width, "rbl", "sn", "mid");
  ckt.add_fet("ms", cell.select_fet, cell.select_width, "mid", "rwl", "0");
  ckt.add_capacitor_ic("rbl", "0", cell.rbl_cap, cell.vdd);
  ckt.add_capacitor("mid", "0", units::attofarads(80.0));

  const spice::Simulator sim{ckt, options};
  const auto tr = sim.transient(units::nanoseconds(2.0), units::picoseconds(2.0),
                                /*from_ics=*/true);
  PPATC_ENSURE(tr.has_value(), "read-delay transient failed to converge");
  const auto rbl = tr->node("rbl");
  const Duration t50 = spice::cross_time(rbl, 0.5 * vdd, spice::Edge::kFall);
  PPATC_ENSURE(t50.base() > 0, "read bitline never discharged to VDD/2");
  out.read_delay = t50 - units::picoseconds(20);
}

// Retention: analytic decay from the DC off-current at the hold bias.
// SN sits at VDD, WBL at 0 (worst case), WWL at the hold level:
// Vgs = vhold - 0 relative to the WBL side acting as source.
void retention_analytic(const CellSpec& cell, Voltage sense_margin, CellCharacteristics& out) {
  const device::VirtualSourceFet wfet{cell.write_fet, cell.write_width};
  // Conservative: evaluate leakage at the start of the decay (largest Vds).
  // SN (at VDD) is the drain, WBL (at 0) the source, WWL at the hold level.
  const Current leak = abs(wfet.drain_current(cell.vhold, cell.vdd)) + cell.leak_floor;
  out.hold_leakage = leak;
  const double amps = units::in_amperes(leak);
  PPATC_ENSURE(amps > 0, "off-current must be positive");
  const double dq = units::in_farads(cell.storage_cap) * units::in_volts(sense_margin);
  out.retention = units::seconds(dq / amps);
}

}  // namespace

CellSpec m3d_igzo_cnfet_cell() {
  CellSpec c;
  c.name = "m3d-igzo-cnfet-3t";
  c.write_fet = device::igzo_fet();
  // The paper's Step 2 adjusts the VT of each bit-cell FET: the IGZO write
  // device is tuned down so the boosted WWL (1.3 V) completes a write within
  // the 500 MHz cycle, while the -0.4 V hold level keeps it many decades
  // below threshold for retention.
  c.write_fet.vt_volts = 0.42;
  c.write_width = units::micrometres(0.120);
  // "V_GS significantly below V_T" (paper Sec. II-A): a negative WWL hold
  // rail puts the write FET ~13 decades below threshold.
  c.vhold = units::volts(-0.8);
  c.read_fet = device::cnfet(device::Polarity::kNmos);
  c.select_fet = device::cnfet(device::Polarity::kNmos);
  // BEOL oxide channel: no junction, no GIDL — leakage is set by the
  // (ultra-low) sub-threshold current alone.
  c.leak_floor = units::amperes(1e-19);
  // M3D: write FET on the IGZO tier, read stack on the CNFET tiers, cells
  // directly above the Si periphery. Per-bit footprint is set by the densest
  // tier, not the sum of all three.
  c.footprint = units::square_micrometres(0.0476);
  c.stacked_over_periphery = true;
  return c;
}

CellSpec all_si_cell() {
  CellSpec c;
  c.name = "all-si-3t";
  // HVT write FET for the lowest available leakage; RVT read stack for speed.
  c.write_fet = device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kHvt);
  c.read_fet = device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kRvt);
  c.select_fet = device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kRvt);
  // Planar 3T layout next to (not above) the periphery.
  c.footprint = units::square_micrometres(0.098);
  c.stacked_over_periphery = false;
  return c;
}

CellCharacteristics characterize(const CellSpec& cell, Voltage sense_margin,
                                 const spice::SimOptions& options) {
  PPATC_EXPECT(units::in_volts(sense_margin) > 0, "sense margin must be positive");
  const obs::Span span{"memsys.characterize"};
  CellCharacteristics out;

  // The write-delay and read-delay corners are independent circuits, so the
  // two SPICE transients run concurrently; each writes disjoint fields of
  // `out`.
  runtime::parallel_invoke(
      [&] { timed_corner("memsys.write_corner", [&] { write_corner(cell, options, out); }); },
      [&] { timed_corner("memsys.read_corner", [&] { read_corner(cell, options, out); }); });

  retention_analytic(cell, sense_margin, out);
  return out;
}

std::vector<CellCharacteristics> characterize_batch(const std::vector<CellSpec>& cells,
                                                    Voltage sense_margin,
                                                    const spice::SimOptions& options) {
  PPATC_EXPECT(units::in_volts(sense_margin) > 0, "sense margin must be positive");
  std::vector<CellCharacteristics> out(cells.size());
  // Flattened to one task per SPICE corner (2 per cell) instead of one per
  // cell: corners from different cells backfill idle workers while a slow
  // corner (e.g. the 8 ns IGZO write transient) runs, and the pool sees 2N
  // units of work instead of N nested pairs. Each task writes disjoint fields
  // of a distinct slot, so the results match per-cell characterize() exactly.
  runtime::parallel_for(2 * cells.size(), [&](std::size_t t) {
    const std::size_t i = t / 2;
    if (t % 2 == 0) {
      timed_corner("memsys.write_corner", [&] { write_corner(cells[i], options, out[i]); });
    } else {
      timed_corner("memsys.read_corner", [&] { read_corner(cells[i], options, out[i]); });
    }
  });
  // Retention is a closed-form evaluation — not worth a pool task.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    retention_analytic(cells[i], sense_margin, out[i]);
  }
  return out;
}

}  // namespace ppatc::memsys
