// ppatc: the 3-transistor eDRAM bit cell (paper Fig. 3a) and its SPICE
// characterization.
//
// Topology: a write transistor couples the write bitline (WBL) onto the
// storage node (SN) when the write wordline (WWL) is asserted; SN gates a
// read transistor in series with a read-select transistor, discharging the
// pre-charged read bitline (RBL) when a '1' is stored and the read wordline
// (RWL) is asserted.
//
// Two technology variants are analyzed:
//  * M3D cell — IGZO write FET (ultra-low I_OFF -> long retention) + two
//    CNFET read FETs (high I_EFF -> fast reads), stacked over Si periphery.
//  * all-Si cell — Si FETs throughout (fast writes, but orders of magnitude
//    shorter retention -> frequent refresh).
//
// Write/read delays are measured with transient SPICE runs on the in-repo
// simulator; retention is computed analytically from the DC off-current at
// the hold bias (the decay is far too slow to simulate — up to 1000+ s).
#pragma once

#include <string>
#include <vector>

#include "ppatc/common/units.hpp"
#include "ppatc/device/vs_model.hpp"
#include "ppatc/spice/simulator.hpp"

namespace ppatc::memsys {

/// One 3T bit-cell design.
struct CellSpec {
  std::string name;
  device::VsParams write_fet;   ///< WBL -> SN pass transistor
  device::VsParams read_fet;    ///< SN-gated pull-down
  device::VsParams select_fet;  ///< RWL-gated series select
  Length write_width = units::micrometres(0.054);
  Length read_width = units::micrometres(0.054);
  Length select_width = units::micrometres(0.054);
  Voltage vdd = units::volts(0.7);
  Voltage vwwl = units::volts(1.3);       ///< boosted write wordline (paper Step 2)
  Voltage vhold = units::volts(-0.4);     ///< WWL hold level (below VT for low leak)
  Capacitance storage_cap = units::femtofarads(1.0);
  Capacitance rbl_cap = units::femtofarads(18.0);  ///< read bitline loading (128 rows)
  /// Leakage floor the compact model cannot see: junction/GIDL leakage for a
  /// Si access FET (~pA), essentially absent for a BEOL oxide channel.
  Current leak_floor = units::amperes(5e-12);
  Area footprint = units::square_micrometres(0.098);  ///< layout footprint per bit
  bool stacked_over_periphery = false;  ///< M3D: cells above the Si periphery
};

/// Results of characterizing a cell.
struct CellCharacteristics {
  Duration write_delay;    ///< WBL=VDD -> SN reaching 90% of its final level
  Duration read_delay;     ///< RWL assert -> RBL falling to VDD/2 (reading '1')
  Duration retention;      ///< SN decay to the sensing margin at hold bias
  Current hold_leakage;    ///< write-FET off-current at the hold bias
  Energy write_energy;     ///< energy drawn from WBL+WWL drivers for one write
};

/// The paper's two cell designs.
[[nodiscard]] CellSpec m3d_igzo_cnfet_cell();
[[nodiscard]] CellSpec all_si_cell();

/// Characterizes `cell` with SPICE transients + analytic retention.
/// `sense_margin` is the SN voltage loss that still senses correctly.
/// The independent write/read corner transients are simulated concurrently
/// on the ppatc::runtime pool. `options` tunes the underlying solver (the
/// defaults match per-corner Simulator construction; tests inject crippled
/// iteration limits here to exercise the failure paths).
[[nodiscard]] CellCharacteristics characterize(const CellSpec& cell,
                                               Voltage sense_margin = units::volts(0.2),
                                               const spice::SimOptions& options = {});

/// Characterizes a batch of independent cell designs concurrently (SPICE
/// corner characterization across design variants). out[i] corresponds to
/// cells[i]; results are identical for any thread count. `options` as in
/// characterize().
[[nodiscard]] std::vector<CellCharacteristics> characterize_batch(
    const std::vector<CellSpec>& cells, Voltage sense_margin = units::volts(0.2),
    const spice::SimOptions& options = {});

}  // namespace ppatc::memsys
