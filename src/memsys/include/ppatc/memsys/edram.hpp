// ppatc: 64 kB eDRAM bank model (the paper's program/data memories).
//
// A bank is 32 x 2 kB sub-arrays plus periphery: row/column decoders, sense
// amplifiers, write drivers, a refresh controller, and the global bus that
// connects sub-arrays to the CPU interface. The model composes the SPICE-
// characterized cell and sub-array numbers with bank-level contributions:
//
//   * global bus switching energy, proportional to the bank's linear size;
//   * peripheral static power (decoders/SAs/drivers are Si CMOS at 0.7 V in
//     BOTH designs — the M3D advantage enters through smaller area, hence
//     shorter, less-buffered global wires);
//   * retention-driven refresh (the Si cell retains ~tens of us and needs
//     continuous refresh; the IGZO cell retains >1000 s and effectively
//     never refreshes during the 2 h/day usage window).
//
// The two free coefficients (per-sub-array static power, per-mm repeater
// leakage) are calibrated once so the matmult-int workload reproduces the
// paper's Table II average memory energies (18.0 / 15.5 pJ per cycle).
#pragma once

#include <cstdint>

#include "ppatc/isa/memory.hpp"
#include "ppatc/memsys/subarray.hpp"

namespace ppatc::memsys {

struct BankConfig {
  CellSpec cell;
  SubArraySpec subarray;
  std::uint32_t capacity_bytes = 64 * 1024;
  int bus_bits = 50;  ///< address + data + control wires to the CPU interface
  /// Switching activity of the global bus per access.
  double bus_activity = 0.5;
  /// Routing detour factor for the global bus (layout is never a straight line).
  double bus_route_factor = 2.0;
  /// Calibrated: static power of one sub-array's periphery slice.
  Power periph_static_per_subarray = units::microwatts(177.7);
  /// Calibrated: leakage of global-bus repeaters/buffers per mm of bus.
  Power repeater_leak_per_mm = units::milliwatts(5.074);
  /// Peripheral (decoder/SA/driver) area as a fraction of the cell-array
  /// area for a side-by-side (2D) floorplan.
  double periphery_area_fraction = 0.32;
};

/// Fully characterized bank.
class EdramBank {
 public:
  EdramBank(BankConfig config, Voltage sense_margin = units::volts(0.2));

  [[nodiscard]] const BankConfig& config() const { return config_; }
  [[nodiscard]] const CellCharacteristics& cell() const { return cell_; }
  [[nodiscard]] const SubArrayCharacteristics& subarray() const { return sub_; }

  [[nodiscard]] int subarray_count() const;
  [[nodiscard]] std::uint64_t total_rows() const;

  /// Die area of the bank. For a stacked (M3D) cell the footprint is the
  /// larger of the cell array and the periphery beneath it; for a planar
  /// cell the two add.
  [[nodiscard]] Area area() const;
  /// Linear size used for global bus length (sqrt of area).
  [[nodiscard]] Length side() const;

  /// Energy of one read / write access including the global bus.
  [[nodiscard]] Energy read_access_energy() const;
  [[nodiscard]] Energy write_access_energy() const;

  /// Continuous refresh power demanded by the cell's retention (all rows
  /// refreshed once per retention period).
  [[nodiscard]] Power refresh_power() const;

  /// Static power of periphery + bus repeaters.
  [[nodiscard]] Power static_power() const;

  /// Single-cycle access feasibility at the target clock.
  [[nodiscard]] bool meets_timing(Frequency fclk) const;
  [[nodiscard]] Duration access_delay() const;

 private:
  BankConfig config_;
  CellCharacteristics cell_;
  SubArrayCharacteristics sub_;
};

/// The paper's two memory designs.
[[nodiscard]] BankConfig si_bank_config();
[[nodiscard]] BankConfig m3d_bank_config();

/// Energy accounting for the full memory system (program + data banks, both
/// built from the same BankConfig) running a workload.
struct MemoryEnergyReport {
  Energy access_energy;    ///< reads + writes + fetches
  Energy refresh_energy;   ///< over the run
  Energy static_energy;    ///< periphery + repeaters over the run
  Energy total;
  Energy per_cycle;        ///< total / cycles — the Table II row
};

[[nodiscard]] MemoryEnergyReport memory_energy(const EdramBank& bank, const isa::AccessStats& stats,
                                               std::uint64_t cycles, Frequency fclk);

}  // namespace ppatc::memsys
