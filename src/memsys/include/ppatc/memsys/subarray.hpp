// ppatc: eDRAM sub-array model.
//
// The paper partitions each 64 kB memory into 2 kB sub-arrays (512 32-bit
// words) to keep word/bitline loading — and therefore access time — small
// enough for single-cycle access at 500 MHz (Step 2 of the design flow).
// This model derives per-access energies and delays from the cell
// characterization plus explicit wire/gate capacitance accounting.
#pragma once

#include <cstdint>

#include "ppatc/memsys/bitcell.hpp"

namespace ppatc::memsys {

struct SubArraySpec {
  int rows = 128;
  int cols = 128;             ///< bits per row (4:1 column mux for 32-bit words)
  int word_bits = 32;
  Length cell_width = units::nanometres(260);   ///< along the wordline
  Length cell_height = units::nanometres(175);  ///< along the bitline
  Capacitance wire_cap_per_um = units::attofarads(200);  ///< M1-class wire
  Capacitance sense_amp_cap = units::femtofarads(2.0);   ///< per sensed column
  Capacitance driver_cap = units::femtofarads(4.0);      ///< per driven line
};

/// Derived electrical properties of one sub-array built from `cell`s.
struct SubArrayCharacteristics {
  Capacitance wordline_cap;   ///< gates + wire across one row
  Capacitance bitline_cap;    ///< drains + wire down one column
  Energy read_energy;         ///< one 32-bit word read
  Energy write_energy;        ///< one 32-bit word write
  Energy refresh_row_energy;  ///< read + write-back of one full row
  Duration access_delay;      ///< cell read delay + RC of the lines
  Area array_area;            ///< cells only
  std::uint64_t bits = 0;
};

[[nodiscard]] SubArrayCharacteristics characterize_subarray(const SubArraySpec& spec,
                                                            const CellSpec& cell,
                                                            const CellCharacteristics& cc);

}  // namespace ppatc::memsys
