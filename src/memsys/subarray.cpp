#include "ppatc/memsys/subarray.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::memsys {

SubArrayCharacteristics characterize_subarray(const SubArraySpec& spec, const CellSpec& cell,
                                              const CellCharacteristics& cc) {
  PPATC_EXPECT(spec.rows > 0 && spec.cols > 0 && spec.word_bits > 0, "geometry must be positive");
  PPATC_EXPECT(spec.cols % spec.word_bits == 0, "columns must be a multiple of the word width");

  SubArrayCharacteristics out;
  out.bits = static_cast<std::uint64_t>(spec.rows) * spec.cols;

  const double vdd = units::in_volts(cell.vdd);
  const double vwwl = units::in_volts(cell.vwwl);

  // Gate/drain loading per cell on the lines.
  const device::VirtualSourceFet wfet{cell.write_fet, cell.write_width};
  const device::VirtualSourceFet sfet{cell.select_fet, cell.select_width};
  const double gate_f = units::in_farads(wfet.gate_capacitance());
  const double sel_gate_f = units::in_farads(sfet.gate_capacitance());
  // Junction/contact cap per cell on a bitline: approximated as 40% of the
  // access-device gate cap (fringe-dominated at these dimensions).
  const double drain_f = 0.4 * gate_f;

  const double wl_len_um = spec.cols * units::in_micrometres(spec.cell_width);
  const double bl_len_um = spec.rows * units::in_micrometres(spec.cell_height);
  const double wire_f_per_um = units::in_farads(spec.wire_cap_per_um) * 1e0;

  const double wwl_f = spec.cols * gate_f + wl_len_um * wire_f_per_um;
  const double rwl_f = spec.cols * sel_gate_f + wl_len_um * wire_f_per_um;
  const double bl_f = spec.rows * drain_f + bl_len_um * wire_f_per_um;

  out.wordline_cap = units::farads(wwl_f);
  out.bitline_cap = units::farads(bl_f);

  const double driver_f = units::in_farads(spec.driver_cap);
  const double sa_f = units::in_farads(spec.sense_amp_cap);

  // Read: fire RWL (full swing), pre-charge/discharge all bitlines in the
  // row's column group by ~VDD/2 average, sense `word_bits` columns.
  const double e_read = (rwl_f + driver_f) * vdd * vdd +
                        spec.cols * (bl_f * vdd * (0.5 * vdd)) +
                        spec.word_bits * sa_f * vdd * vdd;
  // Write: fire WWL at the boosted level, drive `word_bits` write bitlines
  // full swing (worst case), plus the cell storage charge itself.
  const double e_write = (wwl_f + driver_f) * vwwl * vwwl +
                         spec.word_bits * ((bl_f + driver_f) * vdd * vdd) +
                         spec.word_bits * units::in_farads(cell.storage_cap) * vdd * vdd;
  // Refresh: read the full row then write it back (all columns).
  const double e_refresh = (rwl_f + wwl_f + 2 * driver_f) * vdd * vdd +
                           spec.cols * (bl_f * vdd * vdd) +
                           spec.cols * units::in_farads(cell.storage_cap) * vdd * vdd;

  out.read_energy = units::joules(e_read);
  out.write_energy = units::joules(e_write);
  out.refresh_row_energy = units::joules(e_refresh);

  // Access delay: cell read delay (characterized with the bitline load) plus
  // a wordline RC term (wire resistance ~ 40 ohm/um at this pitch).
  const double r_wl = 40.0 * wl_len_um;
  const double wl_rc = 0.69 * r_wl * wwl_f;
  out.access_delay = cc.read_delay + units::seconds(wl_rc);

  out.array_area = cell.footprint * static_cast<double>(out.bits);
  return out;
}

}  // namespace ppatc::memsys
