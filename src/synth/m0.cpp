#include "ppatc/synth/m0.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::synth {

M0Model::M0Model(M0Options options) : options_{options} {
  PPATC_EXPECT(options_.logic_depth_fo4 > 0 && options_.gate_count > 0, "model sizes must be positive");
  PPATC_EXPECT(options_.activity > 0 && options_.activity <= 1.0, "activity must be in (0,1]");
}

Duration M0Model::fo4_delay() const {
  // Fanout-of-4 inverter: the load is 4x the input gate capacitance plus a
  // local-wire allowance; the drive is the N/P-averaged effective current.
  const double w_um = 0.10;  // reference inverter width per device
  const device::VirtualSourceFet n{device::silicon_finfet(device::Polarity::kNmos, options_.vt), w_um};
  const device::VirtualSourceFet p{device::silicon_finfet(device::Polarity::kPmos, options_.vt),
                                   1.3 * w_um};
  const double c_in = units::in_farads(n.gate_capacitance()) + units::in_farads(p.gate_capacitance());
  const double c_wire = 0.10e-15;  // 0.1 fF local wire
  const double c_load = 4.0 * c_in + c_wire;
  const double ieff =
      0.5 * (units::in_amperes(n.effective_current(options_.vdd)) +
             units::in_amperes(p.effective_current(options_.vdd)));
  const double vdd = units::in_volts(options_.vdd);
  // Average of rise/fall: t = C V / (2 I_eff) per edge, ~1.1x for slope.
  return units::seconds(1.1 * c_load * vdd / (2.0 * ieff));
}

Frequency M0Model::fmax() const {
  const double tmin = options_.logic_depth_fo4 * units::in_seconds(fo4_delay());
  // 8% hold/setup/clock-uncertainty derate.
  return units::hertz(1.0 / (tmin * 1.08));
}

Area M0Model::area() const {
  return units::square_micrometres(options_.gate_count * options_.area_per_gate_um2);
}

Power M0Model::leakage_power() const {
  const device::VirtualSourceFet n{
      device::silicon_finfet(device::Polarity::kNmos, options_.vt), 1.0};
  const device::VirtualSourceFet p{
      device::silicon_finfet(device::Polarity::kPmos, options_.vt), 1.0};
  const double ioff_per_um = 0.5 * (units::in_amperes(n.off_current(options_.vdd)) +
                                    units::in_amperes(p.off_current(options_.vdd)));
  const double total_w = options_.gate_count * units::in_micrometres(options_.avg_gate_width);
  // Half of the width leaks at any input state.
  return units::watts(0.5 * total_w * ioff_per_um * units::in_volts(options_.vdd));
}

M0Synthesis M0Model::synthesize(Frequency target) const {
  PPATC_EXPECT(units::in_hertz(target) > 0, "target clock must be positive");
  M0Synthesis r;
  r.fmax = fmax();
  r.area = area();
  const double x = target / r.fmax;
  if (x >= 1.0) {
    r.timing_met = false;
    return r;
  }
  r.timing_met = true;
  // After sizing, synthesis leaves ~4% slack at the target.
  r.critical_path = period(target) * 0.96;

  const double sizing = 1.0 + options_.sizing_strength * x / (1.0 - x);
  const double vdd = units::in_volts(options_.vdd);
  const double cap_f = options_.gate_count * options_.switched_cap_per_gate_ff * 1e-15;
  r.dynamic_energy_per_cycle =
      units::joules(options_.activity * cap_f * vdd * vdd * sizing);
  r.leakage_power = leakage_power() * sizing;  // upsized gates leak more
  r.energy_per_cycle = r.dynamic_energy_per_cycle + r.leakage_power * period(target);
  return r;
}

std::vector<SweepPoint> figure4_sweep(Frequency lo, Frequency hi, Frequency step) {
  PPATC_EXPECT(lo <= hi && units::in_hertz(step) > 0, "invalid sweep range");
  std::vector<SweepPoint> out;
  using device::VtFlavor;
  for (const VtFlavor vt : {VtFlavor::kHvt, VtFlavor::kRvt, VtFlavor::kLvt, VtFlavor::kSlvt}) {
    M0Options opt;
    opt.vt = vt;
    const M0Model model{opt};
    for (double f = units::in_hertz(lo); f <= units::in_hertz(hi) * (1 + 1e-9);
         f += units::in_hertz(step)) {
      SweepPoint p;
      p.vt = vt;
      p.fclk = units::hertz(f);
      const M0Synthesis s = model.synthesize(p.fclk);
      if (s.timing_met) p.result = s;
      out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace ppatc::synth
