// ppatc: analytic synthesis/place-and-route model of the Cortex-M0 block.
//
// The paper obtains the M0's energy per cycle and critical path from Cadence
// Genus/Innovus runs over a sweep of target clock frequencies (100 MHz..1 GHz)
// and ASAP7 VT flavors (Fig. 4). This substrate reproduces the same surface
// analytically:
//
//   * gate delay per VT flavor from the virtual-source device models (FO4
//     delay ~ C_load * VDD / I_EFF), with a fixed logic depth for the M0's
//     critical path;
//   * timing closure: a target clock is met only below f_max(VT); as the
//     target approaches f_max the synthesizer upsizes gates and inserts
//     buffers, raising switched capacitance — modeled with the standard
//     sizing curve s(f) = 1 + k * x/(1-x), x = f/f_max;
//   * leakage per VT from the device I_OFF, charged per cycle as P_leak/f.
//
// Calibration: the RVT point at 500 MHz reproduces the paper's 1.42 pJ/cycle
// (Table II), and the block footprint reproduces the Table II die areas.
#pragma once

#include <optional>
#include <vector>

#include "ppatc/common/units.hpp"
#include "ppatc/device/library.hpp"

namespace ppatc::synth {

struct M0Options {
  device::VtFlavor vt = device::VtFlavor::kRvt;
  Voltage vdd = units::volts(0.7);
  double logic_depth_fo4 = 83.0;     ///< critical path incl. single-cycle eDRAM round trip
  double gate_count = 14000.0;        ///< synthesized gate equivalents
  Length avg_gate_width = units::micrometres(0.25);  ///< total transistor width per gate
  double activity = 0.12;             ///< average switching activity
  double sizing_strength = 0.35;      ///< k in s(f) = 1 + k x/(1-x)
  /// Switched capacitance per gate equivalent (fF); calibrated so RVT at
  /// 500 MHz lands on Table II's 1.42 pJ/cycle.
  double switched_cap_per_gate_ff = 1.272;
  /// Block footprint per gate equivalent (um^2), including bus fabric, clock
  /// tree and whitespace; calibrated to the Table II die areas.
  double area_per_gate_um2 = 3.607;
};

/// One synthesis run at a target clock.
struct M0Synthesis {
  bool timing_met = false;
  Frequency fmax;                 ///< highest closable clock for this VT
  Duration critical_path;         ///< at the target clock (after sizing)
  Energy dynamic_energy_per_cycle;
  Power leakage_power;
  Energy energy_per_cycle;        ///< dynamic + leakage/f (the Fig. 4 y-axis)
  Area area;
};

class M0Model {
 public:
  explicit M0Model(M0Options options = {});

  [[nodiscard]] const M0Options& options() const { return options_; }

  /// FO4 inverter delay for this VT flavor (from the device models).
  [[nodiscard]] Duration fo4_delay() const;
  /// Highest clock at which timing closes.
  [[nodiscard]] Frequency fmax() const;
  /// Synthesis at `target`; timing_met=false (with zeroed energies) above fmax.
  [[nodiscard]] M0Synthesis synthesize(Frequency target) const;
  /// Block footprint (VT-independent).
  [[nodiscard]] Area area() const;
  /// Leakage power of the block for this VT flavor.
  [[nodiscard]] Power leakage_power() const;

 private:
  M0Options options_;
};

/// One point of the Fig. 4 sweep.
struct SweepPoint {
  device::VtFlavor vt;
  Frequency fclk;
  std::optional<M0Synthesis> result;  ///< nullopt if timing failed
};

/// The paper's Fig. 4 sweep: f from `lo` to `hi` in `step`, all VT flavors.
[[nodiscard]] std::vector<SweepPoint> figure4_sweep(Frequency lo = units::megahertz(100),
                                                    Frequency hi = units::megahertz(1000),
                                                    Frequency step = units::megahertz(100));

}  // namespace ppatc::synth
