// ppatc: deterministic parallel-evaluation runtime.
//
// The paper's headline analyses — Monte Carlo tCDP-ratio distributions,
// isoline/colormap sweeps, and design-space search — are embarrassingly
// parallel. This layer provides a fixed thread pool with chunked
// `parallel_for` / `parallel_reduce` primitives designed so that every
// caller produces BIT-IDENTICAL output regardless of the number of worker
// threads:
//
//  * work is split into chunks whose count depends only on the problem size
//    and a caller-chosen grain — never on the thread count;
//  * each chunk writes to pre-allocated, index-addressed output slots (or
//    owns a counter-seeded RNG stream, see `splitmix64`);
//  * reductions combine per-chunk partials in ascending chunk order.
//
// Pool size defaults to `std::thread::hardware_concurrency()` and can be
// overridden with the `PPATC_THREADS` environment variable (or
// `set_thread_count`). A pool of size 1 runs everything inline on the
// calling thread — the serial fallback. Nested parallel regions (a task that
// itself calls `parallel_for`) execute inline rather than deadlocking the
// pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace ppatc::runtime {

/// SplitMix64 mixing step (Steele et al.). Used to derive statistically
/// independent per-chunk RNG seeds from `master_seed ^ chunk_index`; the
/// avalanche guarantees nearby counters map to uncorrelated streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-chunk seed for counter-based RNG streams: chunk `c` of a run with
/// master seed `s` always draws from `mt19937_64{splitmix64(s ^ c)}`,
/// independent of which thread executes it.
constexpr std::uint64_t chunk_seed(std::uint64_t master_seed, std::uint64_t chunk_index) noexcept {
  return splitmix64(master_seed ^ chunk_index);
}

/// Threads the global pool would use if created now: `PPATC_THREADS` if set
/// to a positive integer, else `std::thread::hardware_concurrency()` (>= 1).
[[nodiscard]] std::size_t default_thread_count();

/// Size of the global pool (creating it on first use).
[[nodiscard]] std::size_t thread_count();

/// Rebuilds the global pool with `n` threads (0 = `default_thread_count()`).
/// Must not be called concurrently with parallel work; intended for tests
/// and benchmarks that compare thread counts.
void set_thread_count(std::size_t n);

/// Fixed-size pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Runs `task(i)` for every i in [0, num_tasks), distributing indices over
  /// the workers plus the calling thread; blocks until all complete. The
  /// first exception thrown by any task is rethrown here (remaining indices
  /// are abandoned). Runs inline when the pool has one thread, num_tasks<=1,
  /// or the caller is itself a pool task (nested region).
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& task);

  /// Process-wide pool, lazily built with `default_thread_count()` threads.
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Half-open index range [begin, end) forming chunk `index` of a loop.
struct ChunkRange {
  std::size_t index;
  std::size_t begin;
  std::size_t end;
};

/// Number of grain-sized chunks covering n items (thread-count independent).
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// Runs `body(ChunkRange)` over [0, n) split into grain-sized chunks on the
/// global pool. The chunk decomposition depends only on (n, grain), so any
/// body that writes chunk-local output slots is thread-count invariant.
template <class Body>
void parallel_for_chunks(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  ThreadPool::global().run(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    body(ChunkRange{c, begin, end});
  });
}

/// Element-wise parallel loop: `body(i)` for i in [0, n). `grain` batches
/// consecutive indices per task to amortize dispatch for cheap bodies.
template <class Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 1) {
  parallel_for_chunks(n, grain, [&](const ChunkRange& r) {
    for (std::size_t i = r.begin; i < r.end; ++i) body(i);
  });
}

/// Deterministic parallel reduction. `map(begin, end)` folds one chunk into
/// a partial of type T; partials are combined with `combine(acc, partial)`
/// in ascending chunk order, so floating-point results do not depend on the
/// thread count (only on `grain`).
template <class T, class Map, class Combine>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t grain, T init, Map&& map,
                                Combine&& combine) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  std::vector<T> partials(chunks, init);
  parallel_for_chunks(n, grain,
                      [&](const ChunkRange& r) { partials[r.index] = map(r.begin, r.end); });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partials[c]));
  return acc;
}

namespace detail {
void invoke_tasks(const std::function<void()>* tasks, std::size_t count);
}  // namespace detail

/// Runs a fixed set of independent callables concurrently and waits for all
/// of them (e.g. independent SPICE corner transients).
template <class... Fns>
void parallel_invoke(Fns&&... fns) {
  const std::function<void()> tasks[] = {std::function<void()>(std::forward<Fns>(fns))...};
  detail::invoke_tasks(tasks, sizeof...(Fns));
}

}  // namespace ppatc::runtime
