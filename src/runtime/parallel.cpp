#include "ppatc/runtime/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/prof.hpp"
#include "ppatc/obs/trace.hpp"

namespace ppatc::runtime {

namespace {

// Set while a thread is executing pool tasks (worker threads permanently,
// the submitting thread for the duration of its participation). Nested
// parallel regions detect this and run inline instead of re-entering the
// pool, which would deadlock the submitting wait.
thread_local bool t_inside_pool_task = false;

// Pool metrics. Chunk/batch counts are thread-count invariant (the chunk
// decomposition is); the *_ns counters measure this run's scheduling and are
// not expected to be deterministic.
obs::Counter& chunks_counter() {
  static obs::Counter& c = obs::counter("runtime.chunks_executed");
  return c;
}
obs::Counter& batches_counter() {
  static obs::Counter& c = obs::counter("runtime.batches");
  return c;
}
obs::Counter& inline_batches_counter() {
  static obs::Counter& c = obs::counter("runtime.inline_batches");
  return c;
}
obs::Counter& busy_counter() {
  static obs::Counter& c = obs::counter("runtime.worker_busy_ns");
  return c;
}
obs::Counter& wait_counter() {
  static obs::Counter& c = obs::counter("runtime.queue_wait_ns");
  return c;
}

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("PPATC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;

  // Current batch. `generation` increments per batch so sleeping workers can
  // tell a new batch from a spurious wake.
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t num_tasks = 0;
  std::uint64_t submit_span = 0;  // submitting thread's span, for worker parenting
  std::uint64_t submit_ns = 0;    // batch submit time (0 when metrics are off)
  std::atomic<std::size_t> next_index{0};
  std::atomic<bool> cancelled{false};
  std::size_t workers_active = 0;
  std::uint64_t generation = 0;
  bool stopping = false;

  std::mutex error_mutex;
  std::exception_ptr error;

  // Claims indices until the batch is exhausted (or cancelled by a thrown
  // exception) and records the first error.
  void drain() {
    // Profiler arming poll: one relaxed load when nothing changed. Every
    // thread that executes batches — pool workers and the submitting thread —
    // passes through here, so start/stop_profiler reaches them all without
    // interrupting anyone.
    obs::detail::prof_poll_thread();
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    std::uint64_t executed = 0;
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) break;
      try {
        // Flight-marked before the task runs: a crash bundle shows each
        // worker's in-flight chunk, not just the last completed one.
        obs::flight_mark("runtime.chunk.index", static_cast<std::uint64_t>(i));
        (*task)(i);
        ++executed;
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock{error_mutex};
        if (!error) error = std::current_exception();
      }
    }
    if (executed != 0) chunks_counter().add(executed);
    if (timed) busy_counter().add(obs::monotonic_ns() - t0);
  }

  void worker_loop() {
    t_inside_pool_task = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock{mutex};
      work_ready.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      const std::uint64_t parent_span = submit_span;
      const std::uint64_t submitted_ns = submit_ns;
      lock.unlock();
      if (submitted_ns != 0) wait_counter().add(obs::monotonic_ns() - submitted_ns);
      {
        // Re-parent this worker to the submitting region so spans opened
        // inside the tasks chain back to the span that submitted the batch.
        const obs::ParentScope parent{parent_span};
        const obs::Span span{"runtime.drain"};
        drain();
      }
      lock.lock();
      if (--workers_active == 0) batch_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_{std::make_unique<Impl>()} {
  if (threads == 0) threads = 1;
  // The submitting thread always participates, so a pool of size N keeps
  // N-1 dedicated workers.
  impl_->workers.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{impl_->mutex};
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

std::size_t ThreadPool::size() const noexcept { return impl_->workers.size() + 1; }

void ThreadPool::run(std::size_t num_tasks, const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || impl_->workers.empty() || t_inside_pool_task) {
    // Serial fallback: same tasks, same order, same thread.
    inline_batches_counter().increment();
    for (std::size_t i = 0; i < num_tasks; ++i) {
      obs::flight_mark("runtime.chunk.index", static_cast<std::uint64_t>(i));
      task(i);
    }
    chunks_counter().add(num_tasks);
    return;
  }
  const obs::Span span{"runtime.batch"};
  batches_counter().increment();
  {
    const std::lock_guard<std::mutex> lock{impl_->mutex};
    impl_->task = &task;
    impl_->num_tasks = num_tasks;
    impl_->next_index.store(0, std::memory_order_relaxed);
    impl_->cancelled.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->workers_active = impl_->workers.size();
    impl_->submit_span = obs::current_span_id();
    impl_->submit_ns = obs::metrics_enabled() ? obs::monotonic_ns() : 0;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  t_inside_pool_task = true;
  impl_->drain();
  t_inside_pool_task = false;
  std::unique_lock<std::mutex> lock{impl_->mutex};
  impl_->batch_done.wait(lock, [&] { return impl_->workers_active == 0; });
  impl_->task = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool& global_pool(std::size_t requested) {
  const std::lock_guard<std::mutex> lock{g_pool_mutex};
  if (!g_pool || (requested != 0 && g_pool->size() != requested)) {
    g_pool.reset();  // join the old workers before replacing
    g_pool = std::make_unique<ThreadPool>(requested != 0 ? requested : default_thread_count());
  }
  return *g_pool;
}

}  // namespace

ThreadPool& ThreadPool::global() { return global_pool(0); }

std::size_t thread_count() { return ThreadPool::global().size(); }

void set_thread_count(std::size_t n) { global_pool(n == 0 ? default_thread_count() : n); }

namespace detail {

void invoke_tasks(const std::function<void()>* tasks, std::size_t count) {
  ThreadPool::global().run(count, [&](std::size_t i) { tasks[i](); });
}

}  // namespace detail

}  // namespace ppatc::runtime
