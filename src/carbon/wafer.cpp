#include "ppatc/carbon/wafer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

namespace {
void check(const DieSpec& die, const WaferSpec& wafer) {
  PPATC_EXPECT(units::in_millimetres(die.width) > 0 && units::in_millimetres(die.height) > 0,
               "die dimensions must be positive");
  PPATC_EXPECT(units::in_millimetres(wafer.diameter) > 0, "wafer diameter must be positive");
  PPATC_EXPECT(wafer.edge_clearance.is_nonnegative() && wafer.die_spacing.is_nonnegative() &&
                   wafer.flat_height.is_nonnegative(),
               "wafer margins cannot be negative");
  PPATC_EXPECT(units::in_millimetres(die.width) <
                   units::in_millimetres(wafer.diameter) - 2 * units::in_millimetres(wafer.edge_clearance),
               "die does not fit on the wafer");
}
}  // namespace

std::int64_t dies_per_wafer_formula(const DieSpec& die, const WaferSpec& wafer) {
  check(die, wafer);
  const double d_eff =
      units::in_millimetres(wafer.diameter) - units::in_millimetres(wafer.edge_clearance);
  const double s = (units::in_millimetres(die.width) + units::in_millimetres(wafer.die_spacing)) *
                   (units::in_millimetres(die.height) + units::in_millimetres(wafer.die_spacing));
  const double gross = std::numbers::pi * d_eff * d_eff / (4.0 * s);
  const double perimeter_loss = std::numbers::pi * d_eff / std::sqrt(2.0 * s);
  const double dpw = gross - perimeter_loss;
  return dpw > 0 ? static_cast<std::int64_t>(dpw) : 0;
}

std::int64_t dies_per_wafer_grid(const DieSpec& die, const WaferSpec& wafer) {
  check(die, wafer);
  const double r =
      units::in_millimetres(wafer.diameter) / 2.0 - units::in_millimetres(wafer.edge_clearance);
  const double sx = units::in_millimetres(die.width) + units::in_millimetres(wafer.die_spacing);
  const double sy = units::in_millimetres(die.height) + units::in_millimetres(wafer.die_spacing);
  // Flat/notch: dies whose lowest edge dips below y = -(r - flat_height)
  // are excluded (flat height measured from the wafer edge inward).
  const double flat_y = -(r - units::in_millimetres(wafer.flat_height) / 2.0);

  const auto inside = [&](double x, double y) { return x * x + y * y <= r * r; };

  std::int64_t count = 0;
  const auto cols = static_cast<std::int64_t>(std::ceil(2.0 * r / sx));
  const auto rows = static_cast<std::int64_t>(std::ceil(2.0 * r / sy));
  // Grid centred on the wafer centre (standard stepper layout).
  for (std::int64_t i = -cols / 2 - 1; i <= cols / 2 + 1; ++i) {
    for (std::int64_t j = -rows / 2 - 1; j <= rows / 2 + 1; ++j) {
      const double x0 = static_cast<double>(i) * sx - sx / 2.0;
      const double y0 = static_cast<double>(j) * sy - sy / 2.0;
      const double x1 = x0 + sx;
      const double y1 = y0 + sy;
      if (y0 < flat_y) continue;
      if (inside(x0, y0) && inside(x0, y1) && inside(x1, y0) && inside(x1, y1)) ++count;
    }
  }
  return count;
}

}  // namespace ppatc::carbon
