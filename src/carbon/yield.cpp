#include "ppatc/carbon/yield.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

YieldModel fixed_yield(double yield) {
  PPATC_EXPECT(yield > 0.0 && yield <= 1.0, "yield must be in (0, 1]");
  return [yield](Area) { return yield; };
}

YieldModel poisson_yield(double defects_per_cm2) {
  PPATC_EXPECT(defects_per_cm2 >= 0.0, "defect density cannot be negative");
  return [defects_per_cm2](Area a) {
    return std::exp(-units::in_square_centimetres(a) * defects_per_cm2);
  };
}

YieldModel murphy_yield(double defects_per_cm2) {
  PPATC_EXPECT(defects_per_cm2 >= 0.0, "defect density cannot be negative");
  return [defects_per_cm2](Area a) {
    const double ad = units::in_square_centimetres(a) * defects_per_cm2;
    if (ad < 1e-12) return 1.0;
    const double f = (1.0 - std::exp(-ad)) / ad;
    return f * f;
  };
}

YieldModel seeds_yield(double defects_per_cm2) {
  PPATC_EXPECT(defects_per_cm2 >= 0.0, "defect density cannot be negative");
  return [defects_per_cm2](Area a) {
    return 1.0 / (1.0 + units::in_square_centimetres(a) * defects_per_cm2);
  };
}

YieldModel stacked_yield(std::vector<YieldModel> tiers) {
  PPATC_EXPECT(!tiers.empty(), "stacked yield needs at least one tier");
  return [tiers = std::move(tiers)](Area a) {
    double y = 1.0;
    for (const auto& t : tiers) y *= t(a);
    return y;
  };
}

YieldModel paper_si_yield() { return fixed_yield(0.90); }
YieldModel paper_m3d_yield() { return fixed_yield(0.50); }

}  // namespace ppatc::carbon
