#include "ppatc/carbon/embodied.hpp"

#include <numbers>

#include "ppatc/carbon/flows.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

Area wafer_300mm_area() {
  constexpr double radius_cm = 15.0;
  return units::square_centimetres(std::numbers::pi * radius_cm * radius_cm);
}

CarbonPerArea in7_reference_gpa() { return units::grams_per_square_centimetre(200.0); }

EmbodiedModel::EmbodiedModel(ProcessFlow flow, StepEnergyTable table, CarbonPerArea extra_mpa)
    : flow_{std::move(flow)}, table_{table}, extra_mpa_{extra_mpa} {
  PPATC_EXPECT(extra_mpa_.is_nonnegative(), "extra MPA cannot be negative");
}

Energy EmbodiedModel::energy_per_wafer() const { return flow_.energy_per_wafer(table_); }

EnergyPerArea EmbodiedModel::epa() const { return energy_per_wafer() / wafer_300mm_area(); }

CarbonPerArea EmbodiedModel::gpa() const {
  const double ratio = energy_per_wafer() / in7_reference_energy_per_wafer();
  return in7_reference_gpa() * ratio;
}

CarbonPerArea EmbodiedModel::mpa() const { return silicon_wafer_mpa() + extra_mpa_; }

EmbodiedBreakdown EmbodiedModel::per_wafer(const Grid& fab_grid) const {
  const Area area = wafer_300mm_area();
  EmbodiedBreakdown b;
  b.materials = mpa() * area;
  b.gases = gpa() * area;
  b.fab_energy = fab_grid.intensity * (energy_per_wafer() * kFacilityOverhead);
  return b;
}

Carbon EmbodiedModel::carbon_per_wafer(const Grid& fab_grid) const {
  return per_wafer(fab_grid).total();
}

EmbodiedModel all_si_embodied_model() { return EmbodiedModel{all_si_7nm_flow()}; }

EmbodiedModel m3d_embodied_model() {
  const Area wafer = wafer_300mm_area();
  const CarbonPerArea extra = cnt_mpa(CntFilmSpec{}, wafer) + igzo_mpa(IgzoFilmSpec{});
  return EmbodiedModel{m3d_igzo_cnfet_flow(), StepEnergyTable::calibrated(), extra};
}

}  // namespace ppatc::carbon
