#include "ppatc/carbon/resources.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

WaterTable WaterTable::typical() {
  WaterTable t;
  // Litres UPW per 300 mm wafer per step. Wet cleans and CMP dominate;
  // values chosen so the full all-Si flow lands in the LCA-reported
  // several-m^3-per-wafer range (Boyd 2011).
  t.area_litres_[static_cast<std::size_t>(ProcessArea::kDryEtch)] = 8.0;    // chamber rinse
  t.area_litres_[static_cast<std::size_t>(ProcessArea::kMetallization)] = 45.0;  // CMP slurry+rinse
  t.area_litres_[static_cast<std::size_t>(ProcessArea::kMetrology)] = 1.0;
  t.area_litres_[static_cast<std::size_t>(ProcessArea::kWetEtch)] = 80.0;   // bath + cascade rinse
  t.area_litres_[static_cast<std::size_t>(ProcessArea::kDeposition)] = 6.0;
  t.litho_litres_ = 25.0;  // develop + post-exposure rinse
  t.feol_litres_ = 4200.0;
  return t;
}

double WaterTable::litres(ProcessArea area, LithoClass litho) const {
  if (area == ProcessArea::kLithography) {
    PPATC_EXPECT(litho != LithoClass::kNone, "lithography step requires an exposure class");
    return litho_litres_;
  }
  return area_litres_[static_cast<std::size_t>(area)];
}

void WaterTable::set_litres(ProcessArea area, double litres_per_step) {
  PPATC_EXPECT(litres_per_step >= 0.0, "water usage cannot be negative");
  if (area == ProcessArea::kLithography) {
    litho_litres_ = litres_per_step;
  } else {
    area_litres_[static_cast<std::size_t>(area)] = litres_per_step;
  }
}

double water_litres_per_wafer(const ProcessFlow& flow, const WaterTable& table) {
  double total = table.feol_litres();
  for (const auto& s : flow.steps()) total += table.litres(s.area, s.litho) * s.count;
  return total;
}

double water_litres_per_good_die(const ProcessFlow& flow, const WaterTable& table,
                                 std::int64_t dies_per_wafer, double yield) {
  PPATC_EXPECT(dies_per_wafer > 0, "dies per wafer must be positive");
  PPATC_EXPECT(yield > 0.0 && yield <= 1.0, "yield must be in (0, 1]");
  return water_litres_per_wafer(flow, table) / (static_cast<double>(dies_per_wafer) * yield);
}

CostTable CostTable::typical() {
  CostTable t;
  // Dollars per 300 mm wafer per step; EUV exposures dominate BEOL cost.
  t.area_dollars_[static_cast<std::size_t>(ProcessArea::kDryEtch)] = 14.0;
  t.area_dollars_[static_cast<std::size_t>(ProcessArea::kMetallization)] = 18.0;
  t.area_dollars_[static_cast<std::size_t>(ProcessArea::kMetrology)] = 4.0;
  t.area_dollars_[static_cast<std::size_t>(ProcessArea::kWetEtch)] = 6.0;
  t.area_dollars_[static_cast<std::size_t>(ProcessArea::kDeposition)] = 12.0;
  t.litho_dollars_[static_cast<std::size_t>(LithoClass::kEuv36nm)] = 110.0;
  t.litho_dollars_[static_cast<std::size_t>(LithoClass::kEuv42nm)] = 100.0;
  t.litho_dollars_[static_cast<std::size_t>(LithoClass::kDuv193i64nm)] = 35.0;
  t.litho_dollars_[static_cast<std::size_t>(LithoClass::kDuv193i80nm)] = 35.0;
  t.feol_dollars_ = 3400.0;
  t.materials_dollars_ = 550.0;
  return t;
}

double CostTable::dollars(ProcessArea area, LithoClass litho) const {
  if (area == ProcessArea::kLithography) {
    PPATC_EXPECT(litho != LithoClass::kNone, "lithography step requires an exposure class");
    return litho_dollars_[static_cast<std::size_t>(litho)];
  }
  return area_dollars_[static_cast<std::size_t>(area)];
}

void CostTable::set_dollars(ProcessArea area, double dollars_per_step) {
  PPATC_EXPECT(area != ProcessArea::kLithography, "use set_litho_dollars for lithography");
  PPATC_EXPECT(dollars_per_step >= 0.0, "cost cannot be negative");
  area_dollars_[static_cast<std::size_t>(area)] = dollars_per_step;
}

void CostTable::set_litho_dollars(LithoClass litho, double dollars_per_exposure) {
  PPATC_EXPECT(litho != LithoClass::kNone, "cannot set cost for LithoClass::kNone");
  PPATC_EXPECT(dollars_per_exposure >= 0.0, "cost cannot be negative");
  litho_dollars_[static_cast<std::size_t>(litho)] = dollars_per_exposure;
}

double cost_dollars_per_wafer(const ProcessFlow& flow, const CostTable& table) {
  double total = table.feol_dollars() + table.wafer_materials_dollars();
  for (const auto& s : flow.steps()) total += table.dollars(s.area, s.litho) * s.count;
  return total;
}

double cost_dollars_per_good_die(const ProcessFlow& flow, const CostTable& table,
                                 std::int64_t dies_per_wafer, double yield) {
  PPATC_EXPECT(dies_per_wafer > 0, "dies per wafer must be positive");
  PPATC_EXPECT(yield > 0.0 && yield <= 1.0, "yield must be in (0, 1]");
  return cost_dollars_per_wafer(flow, table) / (static_cast<double>(dies_per_wafer) * yield);
}

}  // namespace ppatc::carbon
