#include "ppatc/carbon/isoline.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace ppatc::carbon {

namespace {
obs::Counter& bisection_counter() {
  static obs::Counter& c = obs::counter("carbon.bisection_iterations");
  return c;
}
}  // namespace

double AxisSpec::at(int i) const {
  PPATC_EXPECT(i >= 0 && i < samples, "axis index out of range");
  PPATC_EXPECT(samples >= 2 && hi > lo, "axis needs at least two increasing samples");
  return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(samples - 1);
}

SystemCarbonProfile scaled_profile(const SystemCarbonProfile& profile, double embodied_scale,
                                   double energy_scale) {
  PPATC_EXPECT(embodied_scale >= 0.0 && energy_scale >= 0.0, "scales cannot be negative");
  SystemCarbonProfile s = profile;
  s.embodied_per_good_die = profile.embodied_per_good_die * embodied_scale;
  s.operational_power = profile.operational_power * energy_scale;
  s.standby_power = profile.standby_power * energy_scale;
  return s;
}

TcdpMap tcdp_map(const SystemCarbonProfile& candidate, const SystemCarbonProfile& baseline,
                 const OperationalScenario& scenario, Duration lifetime, AxisSpec embodied_axis,
                 AxisSpec energy_axis) {
  const obs::Span span{"carbon.tcdp_map"};
  TcdpMap map;
  map.embodied_axis = embodied_axis;
  map.energy_axis = energy_axis;
  const CarbonDelay base = tcdp(baseline, scenario, lifetime);
  map.ratio.resize(static_cast<std::size_t>(energy_axis.samples));
  // Rows are independent: each task fills its own pre-allocated row, so the
  // map is identical for any thread count.
  runtime::parallel_for(static_cast<std::size_t>(energy_axis.samples), [&](std::size_t yi) {
    auto& row = map.ratio[yi];
    row.resize(static_cast<std::size_t>(embodied_axis.samples));
    for (int xi = 0; xi < embodied_axis.samples; ++xi) {
      const auto scaled =
          scaled_profile(candidate, embodied_axis.at(xi), energy_axis.at(static_cast<int>(yi)));
      row[static_cast<std::size_t>(xi)] = tcdp(scaled, scenario, lifetime) / base;
    }
  });
  return map;
}

namespace {

// Bisection for the y (energy scale) where the candidate's tCDP equals
// `base_tcdp`. The baseline tCDP is an invariant of the whole sweep, so
// callers compute it once and pass it in instead of re-deriving it for
// every isoline point.
std::optional<double> energy_scale_at_parity(const SystemCarbonProfile& candidate,
                                             const OperationalScenario& scenario, Duration lifetime,
                                             double embodied_scale, CarbonDelay base_tcdp,
                                             double y_lo_bound, double y_hi_bound) {
  PPATC_EXPECT(y_lo_bound > 0.0 && y_hi_bound > y_lo_bound, "invalid y bounds");
  auto ratio_at = [&](double y) {
    return tcdp(scaled_profile(candidate, embodied_scale, y), scenario, lifetime) / base_tcdp;
  };
  // tCDP of the candidate is strictly increasing in y (operational power
  // scale), so parity has at most one root.
  const double lo_r = ratio_at(y_lo_bound);
  const double hi_r = ratio_at(y_hi_bound);
  if (lo_r > 1.0 || hi_r < 1.0) return std::nullopt;
  double lo = y_lo_bound;
  double hi = y_hi_bound;
  std::uint64_t iterations = 0;
  for (int i = 0; i < 100 && (hi - lo) > 1e-9 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    (ratio_at(mid) < 1.0 ? lo : hi) = mid;
    ++iterations;
  }
  bisection_counter().add(iterations);
  return 0.5 * (lo + hi);
}

}  // namespace

std::optional<double> isoline_energy_scale(const SystemCarbonProfile& candidate,
                                           const SystemCarbonProfile& baseline,
                                           const OperationalScenario& scenario, Duration lifetime,
                                           double embodied_scale, double y_lo_bound,
                                           double y_hi_bound) {
  const CarbonDelay base = tcdp(baseline, scenario, lifetime);
  return energy_scale_at_parity(candidate, scenario, lifetime, embodied_scale, base, y_lo_bound,
                                y_hi_bound);
}

std::vector<IsolinePoint> tcdp_isoline(const SystemCarbonProfile& candidate,
                                       const SystemCarbonProfile& baseline,
                                       const OperationalScenario& scenario, Duration lifetime,
                                       AxisSpec embodied_axis) {
  const obs::Span span{"carbon.tcdp_isoline"};
  const CarbonDelay base = tcdp(baseline, scenario, lifetime);
  std::vector<IsolinePoint> line(static_cast<std::size_t>(embodied_axis.samples));
  // Each point owns one pre-allocated slot and its bisection is independent
  // of every other point's, so the line is thread-count invariant.
  runtime::parallel_for(line.size(), [&](std::size_t xi) {
    const double x = embodied_axis.at(static_cast<int>(xi));
    line[xi] = {x, energy_scale_at_parity(candidate, scenario, lifetime, x, base,
                                          kIsolineYLoBound, kIsolineYHiBound)};
  });
  return line;
}

namespace {
DiurnalIntensity scaled_intensity(const DiurnalIntensity& base, double factor) {
  std::array<CarbonIntensity, 24> h{};
  for (int i = 0; i < 24; ++i) h[static_cast<std::size_t>(i)] = base.at_hour(i + 0.5) * factor;
  return DiurnalIntensity::hourly(h);
}
}  // namespace

std::vector<IsolineVariant> isoline_variants(const SystemCarbonProfile& candidate,
                                             const SystemCarbonProfile& baseline,
                                             const OperationalScenario& scenario, Duration lifetime,
                                             const VariantSpec& spec, AxisSpec embodied_axis) {
  std::vector<IsolineVariant> out;
  auto add = [&](std::string label, const SystemCarbonProfile& cand,
                 const OperationalScenario& scen, Duration life) {
    out.push_back({std::move(label), tcdp_isoline(cand, baseline, scen, life, embodied_axis)});
  };

  add("nominal", candidate, scenario, lifetime);

  add("lifetime +" + std::to_string(static_cast<int>(units::in_months(spec.lifetime_delta))) + "mo",
      candidate, scenario, lifetime + spec.lifetime_delta);
  add("lifetime -" + std::to_string(static_cast<int>(units::in_months(spec.lifetime_delta))) + "mo",
      candidate, scenario, lifetime - spec.lifetime_delta);

  OperationalScenario ci_up = scenario;
  ci_up.use_intensity = scaled_intensity(scenario.use_intensity, spec.ci_factor);
  add("CI_use x" + std::to_string(static_cast<int>(spec.ci_factor)), candidate, ci_up, lifetime);
  OperationalScenario ci_down = scenario;
  ci_down.use_intensity = scaled_intensity(scenario.use_intensity, 1.0 / spec.ci_factor);
  add("CI_use /" + std::to_string(static_cast<int>(spec.ci_factor)), candidate, ci_down, lifetime);

  // Yield variants rescale the candidate's embodied carbon per good die:
  // C / (N * Y) so halving yield doubles embodied carbon.
  SystemCarbonProfile y_low = candidate;
  y_low.embodied_per_good_die =
      candidate.embodied_per_good_die * (spec.yield_nominal / spec.yield_low);
  add("yield " + std::to_string(static_cast<int>(spec.yield_low * 100)) + "%", y_low, scenario,
      lifetime);
  SystemCarbonProfile y_high = candidate;
  y_high.embodied_per_good_die =
      candidate.embodied_per_good_die * (spec.yield_nominal / spec.yield_high);
  add("yield " + std::to_string(static_cast<int>(spec.yield_high * 100)) + "%", y_high, scenario,
      lifetime);

  return out;
}

}  // namespace ppatc::carbon
