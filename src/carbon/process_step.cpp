#include "ppatc/carbon/process_step.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

const char* to_string(ProcessArea area) {
  switch (area) {
    case ProcessArea::kDryEtch: return "dry etch";
    case ProcessArea::kLithography: return "lithography";
    case ProcessArea::kMetallization: return "metallization";
    case ProcessArea::kMetrology: return "metrology";
    case ProcessArea::kWetEtch: return "wet etch";
    case ProcessArea::kDeposition: return "deposition";
  }
  return "?";
}

const char* to_string(LithoClass litho) {
  switch (litho) {
    case LithoClass::kNone: return "none";
    case LithoClass::kEuv36nm: return "EUV (36 nm class)";
    case LithoClass::kEuv42nm: return "EUV (42 nm class)";
    case LithoClass::kDuv193i64nm: return "193i (64 nm class)";
    case LithoClass::kDuv193i80nm: return "193i (80 nm class)";
  }
  return "?";
}

StepEnergyTable StepEnergyTable::calibrated() {
  StepEnergyTable t;
  // kWh per 300 mm wafer per step; adapted from the per-process-area totals
  // for metal-layer fabrication in Bardon et al. [4] (the paper's Fig. 2d).
  // The deposition value reproduces the paper's worked example exactly
  // (4 kWh over 3 steps -> 1.333 kWh/step).
  t.area_kwh_[static_cast<std::size_t>(ProcessArea::kDryEtch)] = 1.5;
  t.area_kwh_[static_cast<std::size_t>(ProcessArea::kMetallization)] = 2.2;
  t.area_kwh_[static_cast<std::size_t>(ProcessArea::kMetrology)] = 0.1;
  t.area_kwh_[static_cast<std::size_t>(ProcessArea::kWetEtch)] = 0.55;
  t.area_kwh_[static_cast<std::size_t>(ProcessArea::kDeposition)] = 4.0 / 3.0;
  // Exposure energies by class. Together with the non-litho pair steps these
  // give metal/via-pair energies of 29.32 / 29.27 / 29.10 / 29.10 kWh for the
  // 36/48/64/80 nm-pitch classes — nearly pitch-independent, consistent with
  // [4] where etch/deposition/CMP dominate per-layer energy. These values pin
  // the full-flow EPA ratios to the paper's 0.79x (all-Si) and 1.22x (M3D).
  t.litho_kwh_[static_cast<std::size_t>(LithoClass::kEuv36nm)] = 13.32;
  t.litho_kwh_[static_cast<std::size_t>(LithoClass::kEuv42nm)] = 13.27;
  t.litho_kwh_[static_cast<std::size_t>(LithoClass::kDuv193i64nm)] = 13.10;
  t.litho_kwh_[static_cast<std::size_t>(LithoClass::kDuv193i80nm)] = 13.10;
  return t;
}

Energy StepEnergyTable::step_energy(ProcessArea area) const {
  PPATC_EXPECT(area != ProcessArea::kLithography,
               "lithography energy depends on the exposure class; use litho_energy()");
  return units::kilowatt_hours(area_kwh_[static_cast<std::size_t>(area)]);
}

Energy StepEnergyTable::litho_energy(LithoClass litho) const {
  PPATC_EXPECT(litho != LithoClass::kNone, "lithography step requires an exposure class");
  return units::kilowatt_hours(litho_kwh_[static_cast<std::size_t>(litho)]);
}

Energy StepEnergyTable::energy(ProcessArea area, LithoClass litho) const {
  return area == ProcessArea::kLithography ? litho_energy(litho) : step_energy(area);
}

void StepEnergyTable::set_step_energy(ProcessArea area, Energy e) {
  PPATC_EXPECT(area != ProcessArea::kLithography, "use set_litho_energy for lithography");
  PPATC_EXPECT(e.is_nonnegative(), "step energy cannot be negative");
  area_kwh_[static_cast<std::size_t>(area)] = units::in_kilowatt_hours(e);
}

void StepEnergyTable::set_litho_energy(LithoClass litho, Energy e) {
  PPATC_EXPECT(litho != LithoClass::kNone, "cannot set energy for LithoClass::kNone");
  PPATC_EXPECT(e.is_nonnegative(), "step energy cannot be negative");
  litho_kwh_[static_cast<std::size_t>(litho)] = units::in_kilowatt_hours(e);
}

}  // namespace ppatc::carbon
