#include "ppatc/carbon/operational.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

Carbon operational_carbon(const OperationalScenario& scenario, Power p, Duration lifetime) {
  PPATC_EXPECT(p.is_nonnegative(), "operational power cannot be negative");
  PPATC_EXPECT(lifetime.is_nonnegative(), "lifetime cannot be negative");
  const CarbonIntensity ci =
      scenario.use_intensity.mean_over_window(scenario.window.start_hour, scenario.window.end_hour);
  const Energy e = p * lifetime * scenario.window.duty_cycle();
  return ci * e;
}

Carbon standby_carbon(const OperationalScenario& scenario, Power p, Duration lifetime) {
  PPATC_EXPECT(p.is_nonnegative(), "standby power cannot be negative");
  PPATC_EXPECT(lifetime.is_nonnegative(), "lifetime cannot be negative");
  return scenario.use_intensity.daily_mean() * (p * lifetime);
}

Carbon operational_carbon_integral(const DiurnalIntensity& ci,
                                   const std::function<Power(double hour)>& power_at,
                                   Duration lifetime, Duration step) {
  PPATC_EXPECT(step.base() > 0, "integration step must be positive");
  PPATC_EXPECT(lifetime.is_nonnegative(), "lifetime cannot be negative");
  const double t_end = units::in_seconds(lifetime);
  const double dt = units::in_seconds(step);
  auto integrand = [&](double t_s) {
    const double hour = std::fmod(t_s / 3600.0, 24.0);
    return ci.at_hour(hour).base() * units::in_watts(power_at(hour));
  };
  double acc = 0.0;
  double t = 0.0;
  while (t < t_end) {
    const double h = std::min(dt, t_end - t);
    acc += 0.5 * (integrand(t) + integrand(t + h)) * h;
    t += h;
  }
  return units::grams_co2e(acc);
}

}  // namespace ppatc::carbon
