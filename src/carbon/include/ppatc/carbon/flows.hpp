// ppatc: the two fabrication flows analyzed by the paper (Fig. 2a/b).
//
//  * all-Si 7 nm (ASAP7-style): Si FinFET FEOL/MOL + 9-layer BEOL
//    (M1–M3 @ 36 nm, M4–M5 @ 48 nm, M6–M7 @ 64 nm, M8–M9 @ 80 nm).
//  * M3D IGZO/CNFET/Si: identical through M4, then two CNFET tiers and one
//    IGZO-FET tier interleaved with 36 nm-pitch metal levels (M5–M10), topped
//    by five metal layers (M11–M15) at the all-Si M5–M9 dimensions.
//
// Both flows lump their FEOL+MOL at the imec iN7-EUV value (436 kWh/wafer),
// exactly as the paper does.
#pragma once

#include "ppatc/carbon/process_flow.hpp"

namespace ppatc::carbon {

/// FEOL + MOL electrical energy, equated to the imec iN7-EUV front end [4].
[[nodiscard]] Energy feol_mol_energy_per_wafer();

/// Full-flow electrical energy of the imec iN7-EUV reference node, used as
/// the denominator of the paper's Eq. 3 GPA scaling. Back-solved from the
/// paper's Table II embodied-carbon anchors (see DESIGN.md).
[[nodiscard]] Energy in7_reference_energy_per_wafer();

/// Options for the M3D flow construction.
struct M3dFlowOptions {
  int cnfet_tiers = 2;
  int igzo_tiers = 1;
};

/// The baseline all-Si 7 nm process flow (Fig. 2a).
[[nodiscard]] ProcessFlow all_si_7nm_flow();

/// The monolithic-3D IGZO/CNFET/Si process flow (Fig. 2b).
[[nodiscard]] ProcessFlow m3d_igzo_cnfet_flow(const M3dFlowOptions& options = {});

/// Step sequence of one BEOL CNFET device tier (appended in place).
void append_cnfet_tier(ProcessFlow& flow, int tier_index);

/// Step sequence of one BEOL IGZO-FET device tier (appended in place).
void append_igzo_tier(ProcessFlow& flow, int tier_index);

}  // namespace ppatc::carbon
