// ppatc: materials-procurement carbon (the MPA term of Eq. 2).
//
// The paper sets MPA = 500 gCO2e/cm^2 for the Si wafer (3.5e5 gCO2e per
// 300 mm wafer, from semiconductor LCAs [30]) and adds the footprint of any
// emerging-material synthesis: for CNTs, ~14 kgCO2e per gram of CNT averaged
// across synthesis methods [31], applied to the (picogram-scale) CNT mass a
// wafer actually carries. The same accounting hook exists for IGZO targets.
#pragma once

#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// Baseline Si-wafer materials footprint per area: 500 gCO2e/cm^2 [30].
[[nodiscard]] CarbonPerArea silicon_wafer_mpa();

/// CNT synthesis footprint per mass: ~14 kgCO2e/g (LCA average) [31].
[[nodiscard]] Carbon cnt_synthesis_carbon_per_gram();

/// Geometry of the deposited CNT films, to compute per-wafer CNT mass.
struct CntFilmSpec {
  double cnts_per_um = 200.0;        ///< CNT areal density
  Length diameter = units::nanometres(1.4);  ///< target CNT diameter (1–2 nm)
  double coverage_fraction = 0.35;   ///< fraction of wafer area under CNT film
  int tiers = 2;                     ///< number of CNFET tiers in the stack
};

/// Total CNT mass on one 300 mm wafer for the given film spec. SWCNT linear
/// mass density scales with diameter: ~(d/1 nm) * 1.95e-21 kg/nm of tube.
[[nodiscard]] Mass cnt_mass_per_wafer(const CntFilmSpec& spec, Area wafer_area);

/// MPA contribution of the CNTs (carbon per wafer area).
[[nodiscard]] CarbonPerArea cnt_mpa(const CntFilmSpec& spec, Area wafer_area);

/// IGZO sputter-target materials footprint per area. Modeled as a thin-film
/// mass times an indium-dominated embodied factor (~200 gCO2e per gram of
/// target material); like the CNT term this is negligible next to the Si
/// wafer but is accounted explicitly.
struct IgzoFilmSpec {
  Length thickness = units::nanometres(10.0);
  double coverage_fraction = 0.35;
  int tiers = 1;
  double density_g_per_cm3 = 6.1;
  double carbon_per_gram_g = 200.0;
  double deposition_yield = 0.3;  ///< fraction of sputtered target mass landing on wafer
};

[[nodiscard]] CarbonPerArea igzo_mpa(const IgzoFilmSpec& spec);

}  // namespace ppatc::carbon
