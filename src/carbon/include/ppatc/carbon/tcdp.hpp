// ppatc: total carbon, carbon-delay product, and lifetime analyses (Fig. 5).
//
// tC(t_life) = C_embodied(per good die) + C_operational(t_life); the paper's
// carbon-efficiency metric is tCDP = tC * (application execution time)
// [Elgamal et al., CORDOBA]. Because both case-study designs run at the same
// f_CLK with the same cycle count, their tCDP ratio equals their tC ratio —
// but the API keeps execution time explicit so designs with different
// performance compare correctly, and the ratio converges to the energy-delay
// product ratio as C_operational dominates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ppatc/carbon/operational.hpp"
#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// Everything the lifetime analyses need to know about one realized system.
struct SystemCarbonProfile {
  std::string name;
  Carbon embodied_per_good_die;  ///< Eq. 5 output
  Power operational_power;       ///< P_operational of Eq. 6-8 (active window only)
  Power standby_power{};         ///< always-on draw (0 in the paper's setup)
  Duration execution_time;       ///< one application run: N_cycles * T_clk
};

/// C_operational(t_life) for a profile under a scenario.
[[nodiscard]] Carbon operational_carbon(const SystemCarbonProfile& profile,
                                        const OperationalScenario& scenario, Duration lifetime);

/// tC(t_life) = C_embodied + C_operational(t_life).
[[nodiscard]] Carbon total_carbon(const SystemCarbonProfile& profile,
                                  const OperationalScenario& scenario, Duration lifetime);

/// tCDP(t_life): total carbon times execution time, as a dimensioned
/// CarbonDelay (base gCO2e.s, equivalently the paper's gCO2e/Hz). Use
/// units::in_gco2e_seconds() where a raw double is needed.
[[nodiscard]] CarbonDelay tcdp(const SystemCarbonProfile& profile,
                               const OperationalScenario& scenario, Duration lifetime);

/// One row of the Fig. 5 series.
struct LifetimePoint {
  Duration lifetime;
  Carbon embodied;
  Carbon operational;
  Carbon total;
  CarbonDelay tcdp;
};

/// Fig. 5 series: per-month samples from 1..months.
[[nodiscard]] std::vector<LifetimePoint> lifetime_series(const SystemCarbonProfile& profile,
                                                         const OperationalScenario& scenario,
                                                         int months);

/// Lifetime at which C_operational first equals C_embodied ("embodied
/// dominates until ..."); nullopt if it never does within `horizon`.
[[nodiscard]] std::optional<Duration> embodied_dominance_end(const SystemCarbonProfile& profile,
                                                             const OperationalScenario& scenario,
                                                             Duration horizon);

/// Lifetime at which profiles a and b swap total-carbon ordering; nullopt if
/// they never cross within `horizon`.
[[nodiscard]] std::optional<Duration> total_carbon_crossover(const SystemCarbonProfile& a,
                                                             const SystemCarbonProfile& b,
                                                             const OperationalScenario& scenario,
                                                             Duration horizon);

/// tCDP(a) / tCDP(b) at a given lifetime (>1 means b is more carbon-efficient).
[[nodiscard]] double tcdp_ratio(const SystemCarbonProfile& a, const SystemCarbonProfile& b,
                                const OperationalScenario& scenario, Duration lifetime);

/// Limit of tcdp_ratio as lifetime -> infinity: the energy-delay-product
/// ratio (weighted by CI, which cancels for a shared scenario; the scenario
/// is needed to weight standby vs active power).
[[nodiscard]] double asymptotic_edp_ratio(const SystemCarbonProfile& a,
                                          const SystemCarbonProfile& b,
                                          const OperationalScenario& scenario);

}  // namespace ppatc::carbon
