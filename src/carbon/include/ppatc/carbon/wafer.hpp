// ppatc: die-per-wafer estimation (Eq. 5's N_diePerWafer, reference [39]).
//
// Two estimators are provided:
//  * the closed-form anysilicon formula
//        DPW = pi*(d_eff/2)^2 / S  -  pi*d_eff / sqrt(2*S)
//    with d_eff = wafer diameter minus edge clearance and S the die footprint
//    including scribe/spacing; and
//  * an exact grid-placement count that tiles the usable disc with dies and
//    counts those whose four corners (and the flat/notch exclusion) fit —
//    useful as a cross-check and for small wafers where the formula's
//    perimeter correction is inaccurate.
#pragma once

#include <cstdint>

#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

struct DieSpec {
  Length width;    ///< die width (reticle X)
  Length height;   ///< die height (reticle Y)
};

struct WaferSpec {
  Length diameter = units::millimetres(300.0);
  Length edge_clearance = units::millimetres(5.0);   ///< unusable rim
  Length die_spacing = units::millimetres(0.1);      ///< scribe, both axes
  Length flat_height = units::millimetres(10.0);     ///< flat/notch exclusion height
};

/// Closed-form estimate (reference [39]); matches the paper's Table II die
/// counts to <0.1%.
[[nodiscard]] std::int64_t dies_per_wafer_formula(const DieSpec& die, const WaferSpec& wafer = {});

/// Exact count of grid-placed dies fully inside the usable disc minus the
/// flat/notch chord.
[[nodiscard]] std::int64_t dies_per_wafer_grid(const DieSpec& die, const WaferSpec& wafer = {});

}  // namespace ppatc::carbon
