// ppatc: water and cost accounting for fabrication flows.
//
// The paper's conclusion names cost and water consumption as the natural
// extensions of its carbon methodology ("this type of analysis can be
// extended to consider factors such as cost, ... water consumption, and
// more"). This module implements both with the same machinery as EPA: a
// per-step table applied to the Eq. 4 step inventories, plus lumped FEOL
// and materials terms.
//
//  * Water: ultrapure-water (UPW) usage per step, dominated by wet cleans
//    and CMP; full-flow totals land in the several-m^3-per-wafer range
//    reported by semiconductor LCAs (Boyd 2011).
//  * Cost: per-step processing cost (EUV exposures dominate) plus wafer
//    materials — the "C" of the PPACE methodology the paper builds on
//    (Bardon et al., IEDM 2020).
#pragma once

#include <array>
#include <cstdint>
#include "ppatc/carbon/process_flow.hpp"
#include "ppatc/carbon/yield.hpp"

namespace ppatc::carbon {

/// Litres of ultrapure water per wafer per step, by process area /
/// exposure class.
class WaterTable {
 public:
  [[nodiscard]] static WaterTable typical();

  /// Litres for one step.
  [[nodiscard]] double litres(ProcessArea area, LithoClass litho) const;
  void set_litres(ProcessArea area, double litres_per_step);

  /// Lumped FEOL+MOL water (litres/wafer).
  [[nodiscard]] double feol_litres() const { return feol_litres_; }
  void set_feol_litres(double litres) { feol_litres_ = litres; }

 private:
  std::array<double, kProcessAreaCount> area_litres_{};
  double litho_litres_ = 0.0;  // develop/rinse, class-independent
  double feol_litres_ = 0.0;
};

/// Total UPW per wafer for a flow.
[[nodiscard]] double water_litres_per_wafer(const ProcessFlow& flow, const WaterTable& table);

/// UPW per good die (same accounting shape as Eq. 5).
[[nodiscard]] double water_litres_per_good_die(const ProcessFlow& flow, const WaterTable& table,
                                               std::int64_t dies_per_wafer, double yield);

/// U.S. dollars per wafer per step, by process area / exposure class.
class CostTable {
 public:
  [[nodiscard]] static CostTable typical();

  [[nodiscard]] double dollars(ProcessArea area, LithoClass litho) const;
  void set_dollars(ProcessArea area, double dollars_per_step);
  void set_litho_dollars(LithoClass litho, double dollars_per_exposure);

  [[nodiscard]] double feol_dollars() const { return feol_dollars_; }
  void set_feol_dollars(double d) { feol_dollars_ = d; }
  [[nodiscard]] double wafer_materials_dollars() const { return materials_dollars_; }
  void set_wafer_materials_dollars(double d) { materials_dollars_ = d; }

 private:
  std::array<double, kProcessAreaCount> area_dollars_{};
  std::array<double, kLithoClassCount> litho_dollars_{};
  double feol_dollars_ = 0.0;
  double materials_dollars_ = 0.0;
};

[[nodiscard]] double cost_dollars_per_wafer(const ProcessFlow& flow, const CostTable& table);

[[nodiscard]] double cost_dollars_per_good_die(const ProcessFlow& flow, const CostTable& table,
                                               std::int64_t dies_per_wafer, double yield);

}  // namespace ppatc::carbon
