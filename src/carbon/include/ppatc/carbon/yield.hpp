// ppatc: die yield models (Eq. 5's Yield term).
//
// The paper demonstrates with fixed yields (90% Si eDRAM, 50% M3D-eDRAM) but
// notes "designers can choose arbitrary yield models"; this header provides
// the standard defect-density families plus a stacked-tier composition rule
// for M3D processes (a die is good only if every tier yields).
#pragma once

#include <functional>
#include <vector>

#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// A yield model maps die area to the probability a die is functional.
using YieldModel = std::function<double(Area die_area)>;

/// Area-independent yield (the paper's demonstration values).
[[nodiscard]] YieldModel fixed_yield(double yield);

/// Poisson: Y = exp(-A * D0), D0 in defects/cm^2.
[[nodiscard]] YieldModel poisson_yield(double defects_per_cm2);

/// Murphy: Y = ((1 - exp(-A*D0)) / (A*D0))^2.
[[nodiscard]] YieldModel murphy_yield(double defects_per_cm2);

/// Seeds (Bose-Einstein with n=1): Y = 1 / (1 + A*D0).
[[nodiscard]] YieldModel seeds_yield(double defects_per_cm2);

/// Stacked-tier yield: the product of per-tier yields (each evaluated at the
/// same die footprint — M3D tiers share the footprint).
[[nodiscard]] YieldModel stacked_yield(std::vector<YieldModel> tiers);

/// The paper's demonstration values.
[[nodiscard]] YieldModel paper_si_yield();   ///< fixed 90%
[[nodiscard]] YieldModel paper_m3d_yield();  ///< fixed 50%

}  // namespace ppatc::carbon
