// ppatc: embodied carbon of a fabrication process (the paper's Eq. 2-4).
//
//   C_embodied = (MPA + GPA + CI_fab * EPA_f) * Area,   EPA_f = 1.4 * EPA
//
// MPA: materials procurement per area (Si wafer + emerging-material adders).
// GPA: abated high-GWP process-gas emissions per area, scaled from the imec
//      iN7-EUV value by the EPA ratio (Eq. 3).
// EPA: electrical fabrication energy per area from the process-flow model
//      (Eq. 4), with a 40% facility overhead (2015 ITRS).
#pragma once

#include "ppatc/carbon/grid.hpp"
#include "ppatc/carbon/materials.hpp"
#include "ppatc/carbon/process_flow.hpp"

namespace ppatc::carbon {

/// Standard 300 mm wafer area (706.86 cm^2).
[[nodiscard]] Area wafer_300mm_area();

/// GPA of the imec iN7-EUV reference: 0.20 kgCO2e/cm^2 [4].
[[nodiscard]] CarbonPerArea in7_reference_gpa();

/// Facility (HVAC, abatement, sub-fab) energy overhead factor from the 2015
/// ITRS ESH chapter: EPA_f = 1.4 * EPA.
inline constexpr double kFacilityOverhead = 1.4;

/// Per-wafer embodied-carbon breakdown.
struct EmbodiedBreakdown {
  Carbon materials;    ///< MPA * area
  Carbon gases;        ///< GPA * area
  Carbon fab_energy;   ///< CI_fab * EPA_f * area
  [[nodiscard]] Carbon total() const { return materials + gases + fab_energy; }
};

/// Embodied-carbon model for one fabrication process.
class EmbodiedModel {
 public:
  /// `extra_mpa` carries emerging-material adders (CNT/IGZO synthesis).
  EmbodiedModel(ProcessFlow flow, StepEnergyTable table = StepEnergyTable::calibrated(),
                CarbonPerArea extra_mpa = CarbonPerArea{});

  [[nodiscard]] const ProcessFlow& flow() const { return flow_; }

  /// EPA: fabrication energy per wafer area (before facility overhead).
  [[nodiscard]] EnergyPerArea epa() const;
  /// Fabrication energy per 300 mm wafer (before facility overhead).
  [[nodiscard]] Energy energy_per_wafer() const;
  /// GPA via Eq. 3: GPA_iN7 * EPA_process / EPA_iN7.
  [[nodiscard]] CarbonPerArea gpa() const;
  /// MPA: Si wafer baseline + extra adders.
  [[nodiscard]] CarbonPerArea mpa() const;

  /// Eq. 2 evaluated per 300 mm wafer with the given fabrication grid.
  [[nodiscard]] EmbodiedBreakdown per_wafer(const Grid& fab_grid) const;
  [[nodiscard]] Carbon carbon_per_wafer(const Grid& fab_grid) const;

 private:
  ProcessFlow flow_;
  StepEnergyTable table_;
  CarbonPerArea extra_mpa_;
};

/// Convenience: the paper's two processes as ready-made embodied models (the
/// M3D model includes the CNT + IGZO materials adders).
[[nodiscard]] EmbodiedModel all_si_embodied_model();
[[nodiscard]] EmbodiedModel m3d_embodied_model();

}  // namespace ppatc::carbon
