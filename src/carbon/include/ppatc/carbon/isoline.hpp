// ppatc: tCDP trade-space maps and isolines (the paper's Fig. 6).
//
// The design question "when is M3D more carbon-efficient than all-Si?" is
// visualized over a 2-D space: the x-axis scales the M3D design's embodied
// carbon and the y-axis scales its operational energy. Each grid point holds
// the tCDP ratio of the scaled M3D design versus the unscaled baseline; the
// tCDP isoline is the ratio=1 boundary. Scenario perturbations (lifetime,
// CI_use, yield — Fig. 6b) shift the isoline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ppatc/carbon/tcdp.hpp"

namespace ppatc::carbon {

/// Axis specification: `samples` points from lo to hi inclusive.
struct AxisSpec {
  double lo = 0.25;
  double hi = 4.0;
  int samples = 16;  ///< default grid steps by 0.25, so x = 1.0 is sampled

  [[nodiscard]] double at(int i) const;
};

/// A candidate profile with its embodied carbon scaled by x and operational
/// (and standby) power scaled by y.
[[nodiscard]] SystemCarbonProfile scaled_profile(const SystemCarbonProfile& profile,
                                                 double embodied_scale, double energy_scale);

/// The Fig. 6a colormap: ratio[yi][xi] = tCDP(scaled candidate) /
/// tCDP(baseline). Values < 1 mean the candidate (M3D) is more
/// carbon-efficient at that point.
struct TcdpMap {
  AxisSpec embodied_axis;  ///< x: C_embodied scale of the candidate
  AxisSpec energy_axis;    ///< y: E_operational scale of the candidate
  std::vector<std::vector<double>> ratio;  ///< [y index][x index]
};

[[nodiscard]] TcdpMap tcdp_map(const SystemCarbonProfile& candidate,
                               const SystemCarbonProfile& baseline,
                               const OperationalScenario& scenario, Duration lifetime,
                               AxisSpec embodied_axis = {}, AxisSpec energy_axis = {});

/// Default energy-scale search window for isoline parity bisection.
inline constexpr double kIsolineYLoBound = 1e-4;
inline constexpr double kIsolineYHiBound = 1e4;

/// One isoline point: at embodied scale x, the energy scale y where the tCDP
/// ratio is exactly 1. nullopt where no y in [y_lo_bound, y_hi_bound] reaches
/// parity (the candidate wins or loses for every y).
[[nodiscard]] std::optional<double> isoline_energy_scale(
    const SystemCarbonProfile& candidate, const SystemCarbonProfile& baseline,
    const OperationalScenario& scenario, Duration lifetime, double embodied_scale,
    double y_lo_bound = kIsolineYLoBound, double y_hi_bound = kIsolineYHiBound);

/// The full isoline sampled over the embodied axis.
struct IsolinePoint {
  double embodied_scale;
  std::optional<double> energy_scale;
};

[[nodiscard]] std::vector<IsolinePoint> tcdp_isoline(const SystemCarbonProfile& candidate,
                                                     const SystemCarbonProfile& baseline,
                                                     const OperationalScenario& scenario,
                                                     Duration lifetime, AxisSpec embodied_axis = {});

/// Fig. 6b: a named scenario perturbation and its isoline.
struct IsolineVariant {
  std::string label;
  std::vector<IsolinePoint> isoline;
};

/// Inputs for the Fig. 6b variants, applied to the *candidate* profile /
/// scenario as in the paper: lifetime +/- delta, CI_use x/÷ factor, and
/// candidate yield set to given values (which rescale its embodied carbon).
struct VariantSpec {
  Duration lifetime_delta = units::months(6.0);
  double ci_factor = 3.0;
  double yield_low = 0.10;
  double yield_high = 0.90;
  double yield_nominal = 0.50;
};

[[nodiscard]] std::vector<IsolineVariant> isoline_variants(const SystemCarbonProfile& candidate,
                                                           const SystemCarbonProfile& baseline,
                                                           const OperationalScenario& scenario,
                                                           Duration lifetime,
                                                           const VariantSpec& spec = {},
                                                           AxisSpec embodied_axis = {});

}  // namespace ppatc::carbon
