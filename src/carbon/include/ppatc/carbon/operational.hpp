// ppatc: operational carbon (the paper's Eq. 1 and its Eq. 6-8 reduction).
//
// The general form is C_operational = integral of CI_use(t) * P(t) dt over
// the system lifetime (Eq. 1). For the paper's usage pattern — the device
// runs its application during a fixed daily window (8-10 pm) and is otherwise
// off — P(t) = P_operational * indicator(window), and the integral reduces to
//
//   C_op = mean(CI_use over window) * P_operational * t_life * (window/24 h)
//
// (Eq. 8). Both forms are implemented; tests verify they agree.
#pragma once

#include <functional>

#include "ppatc/carbon/grid.hpp"
#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// Daily usage window, local time. The paper uses 20:00-22:00 (2 h/day).
struct UsageWindow {
  double start_hour = 20.0;
  double end_hour = 22.0;

  [[nodiscard]] double hours_per_day() const { return end_hour - start_hour; }
  [[nodiscard]] double duty_cycle() const { return hours_per_day() / 24.0; }
};

/// Operational-carbon scenario: where the device runs and when.
struct OperationalScenario {
  DiurnalIntensity use_intensity = DiurnalIntensity::flat(grids::us().intensity);
  UsageWindow window{};
};

/// Eq. 8: closed-form operational carbon for power `p` drawn only during the
/// daily window, over `lifetime`.
[[nodiscard]] Carbon operational_carbon(const OperationalScenario& scenario, Power p,
                                        Duration lifetime);

/// Always-on contribution (e.g. retention refresh while idle): power drawn
/// 24 h/day at the profile's daily-mean CI.
[[nodiscard]] Carbon standby_carbon(const OperationalScenario& scenario, Power p,
                                    Duration lifetime);

/// Eq. 1 evaluated numerically: integrates CI_use(t) * P(t) over the lifetime
/// with per-`step` trapezoids, where `power_at` gives P as a function of the
/// hour of day in [0, 24). Used to validate the Eq. 8 reduction and to model
/// arbitrary usage patterns.
[[nodiscard]] Carbon operational_carbon_integral(const DiurnalIntensity& ci,
                                                 const std::function<Power(double hour)>& power_at,
                                                 Duration lifetime, Duration step);

}  // namespace ppatc::carbon
