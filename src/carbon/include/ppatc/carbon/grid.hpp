// ppatc: electricity carbon-intensity data.
//
// Carbon intensity (CI) converts electrical energy into equivalent CO2
// emissions. The paper uses one CI for fabrication (CI_fab, set by the
// foundry's grid) and one for operation (CI_use, set by where the device is
// used, potentially varying by time of day — Eq. 1/6-8). This header provides
// the four grids of Fig. 2c plus a diurnal profile type for CI_use(t).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// A named grid with a (flat) average carbon intensity.
struct Grid {
  std::string name;
  CarbonIntensity intensity;
};

namespace grids {
/// U.S. average grid: 380 gCO2e/kWh [4], [20].
[[nodiscard]] Grid us();
/// Coal-dominated grid: 820 gCO2e/kWh.
[[nodiscard]] Grid coal();
/// Solar generation: 48 gCO2e/kWh (lifecycle).
[[nodiscard]] Grid solar();
/// Taiwanese grid: 563 gCO2e/kWh.
[[nodiscard]] Grid taiwan();
/// The four grids of the paper's Fig. 2c, in its order.
[[nodiscard]] std::vector<Grid> figure2c();
}  // namespace grids

/// CI_use(t) as 24 hourly values (local time), repeating daily. A flat
/// profile models a constant-CI grid; a shaped profile captures e.g. the
/// evening ramp when solar generation drops.
class DiurnalIntensity {
 public:
  /// Flat profile at the grid's average intensity.
  [[nodiscard]] static DiurnalIntensity flat(CarbonIntensity ci);
  /// Explicit 24 hourly values.
  [[nodiscard]] static DiurnalIntensity hourly(std::array<CarbonIntensity, 24> values);
  /// Flat profile scaled by a smooth evening peak: value(h) =
  /// base * (1 + peak_fraction * bump(h)), bump centred at 20:00.
  [[nodiscard]] static DiurnalIntensity with_evening_peak(CarbonIntensity base,
                                                          double peak_fraction);

  /// CI at hour-of-day h in [0, 24).
  [[nodiscard]] CarbonIntensity at_hour(double h) const;

  /// Mean CI over the daily window [start_hour, end_hour) — the paper's
  /// \bar{CI}_{use,8to10pm} for start=20, end=22.
  [[nodiscard]] CarbonIntensity mean_over_window(double start_hour, double end_hour) const;

  /// Mean over the full day.
  [[nodiscard]] CarbonIntensity daily_mean() const;

 private:
  std::array<CarbonIntensity, 24> hourly_{};
};

}  // namespace ppatc::carbon
