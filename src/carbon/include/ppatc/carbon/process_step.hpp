// ppatc: fabrication process steps and per-step energy accounting.
//
// The paper (Sec. II-C) classifies every fabrication step into one of six
// process areas — dry etch, lithography, metallization, metrology, wet etch,
// deposition — and derives a per-step energy for each area by dividing the
// per-area energy totals reported for metal-layer fabrication (Bardon et al.,
// IEDM 2020; the paper's Fig. 2d) by the number of steps in that area. This
// header provides that machinery: the process-area taxonomy, the lithography
// exposure classes, and the calibrated per-step energy table.
//
// Calibration (documented in DESIGN.md): per-step energies are chosen so that
// (a) the paper's worked example holds exactly (3 deposition steps totalling
// 4 kWh/wafer -> 1.333 kWh/step), and (b) the full-flow EPA ratios versus the
// imec iN7-EUV reference match the two ratios the paper states: 0.79x for the
// all-Si process and 1.22x for the M3D process. Exposure energy is
// pitch-dependent (finer pitch -> higher dose), which is how the per-pitch
// metal/via-pair energies of reference [4] are represented here.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// The six process areas of the paper's step taxonomy (Eq. 4 rows).
enum class ProcessArea : std::size_t {
  kDryEtch = 0,
  kLithography,
  kMetallization,
  kMetrology,
  kWetEtch,
  kDeposition,
};
inline constexpr std::size_t kProcessAreaCount = 6;

[[nodiscard]] const char* to_string(ProcessArea area);

/// Lithography exposure class for a patterning step: technology + pitch
/// class. Only lithography steps differentiate; all other areas have
/// class-independent per-step energies.
enum class LithoClass : std::size_t {
  kNone = 0,      ///< not a lithography step
  kEuv36nm,       ///< EUV single exposure, 36 nm-pitch class (device tiers too)
  kEuv42nm,       ///< EUV single exposure, 42 nm-pitch class (models 48 nm layers)
  kDuv193i64nm,   ///< 193 nm immersion single exposure, 64 nm-pitch class
  kDuv193i80nm,   ///< 193 nm immersion single exposure, 80 nm-pitch class
};
inline constexpr std::size_t kLithoClassCount = 5;

[[nodiscard]] const char* to_string(LithoClass litho);

/// Per-step electrical fabrication energy, per 300 mm wafer.
class StepEnergyTable {
 public:
  /// The calibrated default table (see file comment).
  [[nodiscard]] static StepEnergyTable calibrated();

  /// Energy of one step of `area` (non-lithography areas).
  [[nodiscard]] Energy step_energy(ProcessArea area) const;
  /// Energy of one lithography exposure of the given class.
  [[nodiscard]] Energy litho_energy(LithoClass litho) const;
  /// Dispatch on (area, litho).
  [[nodiscard]] Energy energy(ProcessArea area, LithoClass litho) const;

  void set_step_energy(ProcessArea area, Energy e);
  void set_litho_energy(LithoClass litho, Energy e);

 private:
  std::array<double, kProcessAreaCount> area_kwh_{};   // litho slot unused
  std::array<double, kLithoClassCount> litho_kwh_{};   // kNone slot unused
};

/// One entry of a process flow: `count` repetitions of a step in `area`
/// (with an exposure class if it is a lithography step).
struct ProcessStep {
  ProcessArea area;
  LithoClass litho = LithoClass::kNone;
  double count = 1.0;
  std::string label;  ///< human-readable, e.g. "CNT deposition (incubation)"
};

}  // namespace ppatc::carbon
