// ppatc: uncertainty quantification for carbon accounting (Sec. III-D).
//
// Carbon accounting inputs — C_embodied, lifetime, CI_use, yield — carry
// substantial uncertainty. Two complementary tools are provided:
//
//  * Interval: conservative interval arithmetic. Propagating input intervals
//    through tC/tCDP gives guaranteed bounds: if the tCDP-ratio interval's
//    upper bound is below 1, the candidate wins for EVERY parameter
//    combination in the box (the paper's "robust comparison").
//  * Monte Carlo sampling (seeded, reproducible) for distributional output
//    (quantiles of the tCDP ratio, probability the candidate wins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ppatc/carbon/tcdp.hpp"

namespace ppatc::carbon {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] static Interval point(double v) { return {v, v}; }
  /// Interval v * [1/f, f] (multiplicative uncertainty, f >= 1).
  [[nodiscard]] static Interval factor(double v, double f);
  /// Interval [v - d, v + d].
  [[nodiscard]] static Interval plus_minus(double v, double d) { return {v - d, v + d}; }

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] double mid() const { return 0.5 * (lo + hi); }
  [[nodiscard]] bool contains(double v) const { return v >= lo && v <= hi; }
  [[nodiscard]] bool entirely_below(double v) const { return hi < v; }
  [[nodiscard]] bool entirely_above(double v) const { return lo > v; }
};

[[nodiscard]] Interval operator+(Interval a, Interval b);
[[nodiscard]] Interval operator-(Interval a, Interval b);
[[nodiscard]] Interval operator*(Interval a, Interval b);
[[nodiscard]] Interval operator/(Interval a, Interval b);
[[nodiscard]] Interval operator*(double s, Interval a);

/// Uncertain inputs for one design under comparison. Yields divide embodied
/// carbon; CI and lifetime are shared scenario knobs (see TcdpComparison).
struct UncertainProfile {
  Interval embodied_per_good_die_g;  ///< gCO2e at nominal yield
  Interval operational_power_w;
  Interval standby_power_w{0.0, 0.0};
  Duration execution_time{};  ///< treated as exact (no interval)
};

/// Shared scenario uncertainty.
struct UncertainScenario {
  Interval ci_use_g_per_kwh;  ///< mean CI over the usage window
  Interval lifetime_months;
  double duty_cycle = 2.0 / 24.0;
};

/// Interval of tC (grams) for a profile under the scenario box.
[[nodiscard]] Interval total_carbon_interval(const UncertainProfile& p,
                                             const UncertainScenario& s);

/// Interval of tCDP(candidate)/tCDP(baseline). Note: lifetime and CI are
/// correlated between the two designs (same deployment), so the ratio is
/// evaluated at the box corners of the SHARED knobs with per-design interval
/// arithmetic inside — tighter than naive independent division.
[[nodiscard]] Interval tcdp_ratio_interval(const UncertainProfile& candidate,
                                           const UncertainProfile& baseline,
                                           const UncertainScenario& scenario);

/// Verdict of a robust comparison.
enum class RobustVerdict {
  kCandidateAlwaysWins,   ///< ratio interval entirely below 1
  kBaselineAlwaysWins,    ///< ratio interval entirely above 1
  kIndeterminate,         ///< interval straddles 1
};

[[nodiscard]] RobustVerdict robust_compare(const UncertainProfile& candidate,
                                           const UncertainProfile& baseline,
                                           const UncertainScenario& scenario);

/// Monte Carlo summary of the tCDP ratio distribution.
struct MonteCarloSummary {
  double mean = 0.0;
  double p05 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double probability_candidate_wins = 0.0;  ///< P(ratio < 1)
  std::size_t samples = 0;
};

/// Uniform sampling within all input intervals (independent draws except the
/// shared scenario knobs, which are drawn once per sample). Deterministic for
/// a given seed.
[[nodiscard]] MonteCarloSummary monte_carlo_tcdp_ratio(const UncertainProfile& candidate,
                                                       const UncertainProfile& baseline,
                                                       const UncertainScenario& scenario,
                                                       std::size_t samples, std::uint64_t seed);

}  // namespace ppatc::carbon
