// ppatc: process flows — ordered step inventories with energy accounting.
//
// A ProcessFlow is the N^(flow)_step column of the paper's Eq. 4: how many
// times each process step is used in a full wafer flow. EPA is the inner
// product of that column with the per-step energy table, plus any lumped
// front-end contribution (the paper equates FEOL+MOL energy of both processes
// to the imec iN7 value, 436 kWh/wafer).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ppatc/carbon/process_step.hpp"
#include "ppatc/common/units.hpp"

namespace ppatc::carbon {

/// Interconnect pitch classes used by the paper's metal stacks (ASAP7).
enum class MetalPitch {
  k36nm,  ///< M1–M3 class, EUV single exposure
  k48nm,  ///< modeled with the 42 nm-pitch EUV layer energy (paper Sec. II-C)
  k64nm,  ///< 193i single exposure
  k80nm,  ///< 193i single exposure
};

[[nodiscard]] const char* to_string(MetalPitch pitch);
[[nodiscard]] LithoClass litho_for(MetalPitch pitch);

class ProcessFlow {
 public:
  explicit ProcessFlow(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends `count` repetitions of one step.
  ProcessFlow& add_step(ProcessArea area, double count, std::string label,
                        LithoClass litho = LithoClass::kNone);

  /// Appends the canonical step sequence of one metal layer + its landing via
  /// at the given pitch: 1 exposure, 4 dry etches, 3 depositions,
  /// 2 metallization steps, 2 wet cleans, 5 metrology passes.
  ProcessFlow& add_metal_via_pair(MetalPitch pitch, std::string label);

  /// Appends a standalone via level (no metal line): 1 exposure, 1 dry etch,
  /// 1 metallization, 1 metrology.
  ProcessFlow& add_via_only(MetalPitch pitch, std::string label);

  /// Adds a lumped energy contribution that is not decomposed into steps
  /// (e.g. the imec iN7 FEOL+MOL block).
  ProcessFlow& add_lumped(Energy per_wafer, std::string label);

  [[nodiscard]] const std::vector<ProcessStep>& steps() const { return steps_; }

  /// Total step count per process area (the Eq. 4 column vector).
  [[nodiscard]] std::array<double, kProcessAreaCount> step_count_by_area() const;

  /// Electrical fabrication energy per wafer (EPA * wafer area), i.e. the
  /// Eq. 4 matrix product evaluated for this flow.
  [[nodiscard]] Energy energy_per_wafer(const StepEnergyTable& table) const;

  /// Energy of the decomposed steps only (excluding lumped blocks).
  [[nodiscard]] Energy step_energy_per_wafer(const StepEnergyTable& table) const;

  /// Lumped contributions only.
  [[nodiscard]] Energy lumped_energy_per_wafer() const;

  /// Per-area energy breakdown of the decomposed steps (for Fig. 2d-style
  /// reporting).
  [[nodiscard]] std::array<Energy, kProcessAreaCount> energy_by_area(
      const StepEnergyTable& table) const;

 private:
  std::string name_;
  std::vector<ProcessStep> steps_;
  std::vector<std::pair<Energy, std::string>> lumped_;
};

}  // namespace ppatc::carbon
