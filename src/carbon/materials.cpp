#include "ppatc/carbon/materials.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

CarbonPerArea silicon_wafer_mpa() { return units::grams_per_square_centimetre(500.0); }

Carbon cnt_synthesis_carbon_per_gram() { return units::kilograms_co2e(14.0); }

Mass cnt_mass_per_wafer(const CntFilmSpec& spec, Area wafer_area) {
  PPATC_EXPECT(spec.cnts_per_um > 0 && spec.diameter.base() > 0, "CNT film spec must be positive");
  PPATC_EXPECT(spec.coverage_fraction >= 0 && spec.coverage_fraction <= 1.0,
               "coverage fraction must be in [0,1]");
  PPATC_EXPECT(spec.tiers >= 0, "tier count must be >= 0");
  // Linear mass density of a SWCNT scales with diameter:
  // lambda ~= (d / 1 nm) * 1.95e-21 g per nm of tube length.
  const double lambda_g_per_nm = units::in_nanometres(spec.diameter) * 1.95e-21;
  // Total tube length per cm^2 of film: density [1/um] * 1 cm of tube per cm
  // of width, i.e. (cnts_per_um * 1e4 per cm) * 1 cm = 1e4*density cm of tube
  // per cm^2 = density * 1e4 * 1e7 nm/cm^2.
  const double tube_nm_per_cm2 = spec.cnts_per_um * 1e4 * 1e7;
  const double film_area_cm2 =
      units::in_square_centimetres(wafer_area) * spec.coverage_fraction * spec.tiers;
  return units::grams(lambda_g_per_nm * tube_nm_per_cm2 * film_area_cm2);
}

CarbonPerArea cnt_mpa(const CntFilmSpec& spec, Area wafer_area) {
  const Mass m = cnt_mass_per_wafer(spec, wafer_area);
  const Carbon total = units::grams_co2e(units::in_grams(m) *
                                         units::in_grams_co2e(cnt_synthesis_carbon_per_gram()));
  return total / wafer_area;
}

CarbonPerArea igzo_mpa(const IgzoFilmSpec& spec) {
  PPATC_EXPECT(spec.thickness.base() > 0 && spec.density_g_per_cm3 > 0,
               "IGZO film spec must be positive");
  PPATC_EXPECT(spec.deposition_yield > 0 && spec.deposition_yield <= 1.0,
               "deposition yield must be in (0,1]");
  // Film mass per cm^2: thickness [cm] * density, inflated by sputter losses.
  const double thickness_cm = units::in_nanometres(spec.thickness) * 1e-7;
  const double mass_g_per_cm2 = thickness_cm * spec.density_g_per_cm3 *
                                spec.coverage_fraction * spec.tiers / spec.deposition_yield;
  return units::grams_per_square_centimetre(mass_g_per_cm2 * spec.carbon_per_gram_g);
}

}  // namespace ppatc::carbon
