#include "ppatc/carbon/grid.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

namespace grids {

Grid us() { return {"U.S.", units::grams_per_kilowatt_hour(380.0)}; }
Grid coal() { return {"coal", units::grams_per_kilowatt_hour(820.0)}; }
Grid solar() { return {"solar", units::grams_per_kilowatt_hour(48.0)}; }
Grid taiwan() { return {"Taiwan", units::grams_per_kilowatt_hour(563.0)}; }

std::vector<Grid> figure2c() { return {us(), coal(), solar(), taiwan()}; }

}  // namespace grids

DiurnalIntensity DiurnalIntensity::flat(CarbonIntensity ci) {
  PPATC_EXPECT(ci.is_nonnegative(), "carbon intensity cannot be negative");
  DiurnalIntensity d;
  d.hourly_.fill(ci);
  return d;
}

DiurnalIntensity DiurnalIntensity::hourly(std::array<CarbonIntensity, 24> values) {
  for (const auto& v : values) PPATC_EXPECT(v.is_nonnegative(), "carbon intensity cannot be negative");
  DiurnalIntensity d;
  d.hourly_ = values;
  return d;
}

DiurnalIntensity DiurnalIntensity::with_evening_peak(CarbonIntensity base, double peak_fraction) {
  PPATC_EXPECT(peak_fraction >= -1.0, "peak fraction below -1 would make CI negative");
  DiurnalIntensity d;
  for (int h = 0; h < 24; ++h) {
    // Gaussian bump centred at 20:00 with ~3 h half-width, wrapped circularly.
    double dist = std::abs(h + 0.5 - 20.0);
    dist = std::min(dist, 24.0 - dist);
    const double bump = std::exp(-(dist * dist) / (2.0 * 3.0 * 3.0));
    d.hourly_[h] = base * (1.0 + peak_fraction * bump);
  }
  return d;
}

CarbonIntensity DiurnalIntensity::at_hour(double h) const {
  PPATC_EXPECT(h >= 0.0 && h < 24.0, "hour of day must be in [0, 24)");
  return hourly_[static_cast<std::size_t>(h)];
}

CarbonIntensity DiurnalIntensity::mean_over_window(double start_hour, double end_hour) const {
  PPATC_EXPECT(start_hour >= 0.0 && start_hour < 24.0, "window start must be in [0, 24)");
  PPATC_EXPECT(end_hour > start_hour && end_hour <= 24.0,
               "window end must be after start and within the day");
  // Integrate the piecewise-constant profile over [start, end).
  double total_gj = 0.0;  // gCO2e/J * hours
  double width = 0.0;
  for (int h = 0; h < 24; ++h) {
    const double lo = std::max(start_hour, static_cast<double>(h));
    const double hi = std::min(end_hour, static_cast<double>(h + 1));
    if (hi <= lo) continue;
    total_gj += hourly_[h].base() * (hi - lo);
    width += hi - lo;
  }
  return CarbonIntensity::from_base(total_gj / width);
}

CarbonIntensity DiurnalIntensity::daily_mean() const { return mean_over_window(0.0, 24.0); }

}  // namespace ppatc::carbon
