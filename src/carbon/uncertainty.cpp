#include "ppatc/carbon/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

Interval Interval::factor(double v, double f) {
  PPATC_EXPECT(f >= 1.0, "multiplicative uncertainty factor must be >= 1");
  return {v / f, v * f};
}

Interval operator+(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }
Interval operator-(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }

Interval operator*(Interval a, Interval b) {
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval operator/(Interval a, Interval b) {
  PPATC_EXPECT(!(b.lo <= 0.0 && b.hi >= 0.0), "interval division by an interval containing zero");
  return a * Interval{1.0 / b.hi, 1.0 / b.lo};
}

Interval operator*(double s, Interval a) {
  return s >= 0 ? Interval{s * a.lo, s * a.hi} : Interval{s * a.hi, s * a.lo};
}

namespace {

// tC in grams for scalar inputs.
double tc_scalar(double embodied_g, double p_op_w, double p_sb_w, double ci_g_per_kwh,
                 double months, double duty) {
  const double seconds = months * (365.0 / 12.0) * 86400.0;
  const double ci_g_per_j = ci_g_per_kwh / 3.6e6;
  return embodied_g + ci_g_per_j * (p_op_w * duty + p_sb_w) * seconds;
}

}  // namespace

Interval total_carbon_interval(const UncertainProfile& p, const UncertainScenario& s) {
  const Interval ci_g_per_j = (1.0 / 3.6e6) * s.ci_use_g_per_kwh;
  const Interval seconds = ((365.0 / 12.0) * 86400.0) * s.lifetime_months;
  const Interval power = s.duty_cycle * p.operational_power_w + p.standby_power_w;
  return p.embodied_per_good_die_g + ci_g_per_j * power * seconds;
}

Interval tcdp_ratio_interval(const UncertainProfile& candidate, const UncertainProfile& baseline,
                             const UncertainScenario& scenario) {
  PPATC_EXPECT(candidate.execution_time_s > 0 && baseline.execution_time_s > 0,
               "execution times must be positive");
  // The shared knobs (CI, lifetime) are perfectly correlated between the two
  // designs. Evaluate the ratio at the 4 corners of the shared box with
  // per-design interval arithmetic inside, and take the envelope.
  Interval envelope{std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
  for (const double ci : {scenario.ci_use_g_per_kwh.lo, scenario.ci_use_g_per_kwh.hi}) {
    for (const double months : {scenario.lifetime_months.lo, scenario.lifetime_months.hi}) {
      UncertainScenario pinned = scenario;
      pinned.ci_use_g_per_kwh = Interval::point(ci);
      pinned.lifetime_months = Interval::point(months);
      const Interval tc_c = total_carbon_interval(candidate, pinned);
      const Interval tc_b = total_carbon_interval(baseline, pinned);
      const Interval r = (candidate.execution_time_s / baseline.execution_time_s) * (tc_c / tc_b);
      envelope.lo = std::min(envelope.lo, r.lo);
      envelope.hi = std::max(envelope.hi, r.hi);
    }
  }
  return envelope;
}

RobustVerdict robust_compare(const UncertainProfile& candidate, const UncertainProfile& baseline,
                             const UncertainScenario& scenario) {
  const Interval r = tcdp_ratio_interval(candidate, baseline, scenario);
  if (r.entirely_below(1.0)) return RobustVerdict::kCandidateAlwaysWins;
  if (r.entirely_above(1.0)) return RobustVerdict::kBaselineAlwaysWins;
  return RobustVerdict::kIndeterminate;
}

MonteCarloSummary monte_carlo_tcdp_ratio(const UncertainProfile& candidate,
                                         const UncertainProfile& baseline,
                                         const UncertainScenario& scenario, std::size_t samples,
                                         std::uint64_t seed) {
  PPATC_EXPECT(samples >= 2, "need at least two samples");
  std::mt19937_64 rng{seed};
  auto draw = [&](Interval iv) {
    if (iv.width() <= 0.0) return iv.lo;
    std::uniform_real_distribution<double> d{iv.lo, iv.hi};
    return d(rng);
  };

  std::vector<double> ratios;
  ratios.reserve(samples);
  double sum = 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double ci = draw(scenario.ci_use_g_per_kwh);
    const double months = draw(scenario.lifetime_months);
    const double tc_c =
        tc_scalar(draw(candidate.embodied_per_good_die_g), draw(candidate.operational_power_w),
                  draw(candidate.standby_power_w), ci, months, scenario.duty_cycle);
    const double tc_b =
        tc_scalar(draw(baseline.embodied_per_good_die_g), draw(baseline.operational_power_w),
                  draw(baseline.standby_power_w), ci, months, scenario.duty_cycle);
    const double r =
        (tc_c * candidate.execution_time_s) / (tc_b * baseline.execution_time_s);
    ratios.push_back(r);
    sum += r;
    if (r < 1.0) ++wins;
  }
  std::sort(ratios.begin(), ratios.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(ratios.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double f = pos - static_cast<double>(i);
    return i + 1 < ratios.size() ? ratios[i] * (1 - f) + ratios[i + 1] * f : ratios.back();
  };

  MonteCarloSummary s;
  s.samples = samples;
  s.mean = sum / static_cast<double>(samples);
  s.p05 = quantile(0.05);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.probability_candidate_wins = static_cast<double>(wins) / static_cast<double>(samples);
  return s;
}

}  // namespace ppatc::carbon
