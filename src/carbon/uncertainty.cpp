#include "ppatc/carbon/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace ppatc::carbon {

Interval Interval::factor(double v, double f) {
  PPATC_EXPECT(f >= 1.0, "multiplicative uncertainty factor must be >= 1");
  return {v / f, v * f};
}

Interval operator+(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }
Interval operator-(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }

Interval operator*(Interval a, Interval b) {
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval operator/(Interval a, Interval b) {
  PPATC_EXPECT(!(b.lo <= 0.0 && b.hi >= 0.0), "interval division by an interval containing zero");
  return a * Interval{1.0 / b.hi, 1.0 / b.lo};
}

Interval operator*(double s, Interval a) {
  return s >= 0 ? Interval{s * a.lo, s * a.hi} : Interval{s * a.hi, s * a.lo};
}

namespace {

// tC in grams for scalar inputs.
double tc_scalar(double embodied_g, double p_op_w, double p_sb_w, double ci_g_per_kwh,
                 double months, double duty) {
  const double seconds = months * (365.0 / 12.0) * 86400.0;
  const double ci_g_per_j = ci_g_per_kwh / 3.6e6;
  return embodied_g + ci_g_per_j * (p_op_w * duty + p_sb_w) * seconds;
}

}  // namespace

Interval total_carbon_interval(const UncertainProfile& p, const UncertainScenario& s) {
  const Interval ci_g_per_j = (1.0 / 3.6e6) * s.ci_use_g_per_kwh;
  const Interval seconds = ((365.0 / 12.0) * 86400.0) * s.lifetime_months;
  const Interval power = s.duty_cycle * p.operational_power_w + p.standby_power_w;
  return p.embodied_per_good_die_g + ci_g_per_j * power * seconds;
}

Interval tcdp_ratio_interval(const UncertainProfile& candidate, const UncertainProfile& baseline,
                             const UncertainScenario& scenario) {
  PPATC_EXPECT(candidate.execution_time.base() > 0 && baseline.execution_time.base() > 0,
               "execution times must be positive");
  // The shared knobs (CI, lifetime) are perfectly correlated between the two
  // designs. Evaluate the ratio at the 4 corners of the shared box with
  // per-design interval arithmetic inside, and take the envelope.
  Interval envelope{std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
  for (const double ci : {scenario.ci_use_g_per_kwh.lo, scenario.ci_use_g_per_kwh.hi}) {
    for (const double months : {scenario.lifetime_months.lo, scenario.lifetime_months.hi}) {
      UncertainScenario pinned = scenario;
      pinned.ci_use_g_per_kwh = Interval::point(ci);
      pinned.lifetime_months = Interval::point(months);
      const Interval tc_c = total_carbon_interval(candidate, pinned);
      const Interval tc_b = total_carbon_interval(baseline, pinned);
      const Interval r = (candidate.execution_time / baseline.execution_time) * (tc_c / tc_b);
      envelope.lo = std::min(envelope.lo, r.lo);
      envelope.hi = std::max(envelope.hi, r.hi);
    }
  }
  return envelope;
}

RobustVerdict robust_compare(const UncertainProfile& candidate, const UncertainProfile& baseline,
                             const UncertainScenario& scenario) {
  const Interval r = tcdp_ratio_interval(candidate, baseline, scenario);
  if (r.entirely_below(1.0)) return RobustVerdict::kCandidateAlwaysWins;
  if (r.entirely_above(1.0)) return RobustVerdict::kBaselineAlwaysWins;
  return RobustVerdict::kIndeterminate;
}

MonteCarloSummary monte_carlo_tcdp_ratio(const UncertainProfile& candidate,
                                         const UncertainProfile& baseline,
                                         const UncertainScenario& scenario, std::size_t samples,
                                         std::uint64_t seed) {
  PPATC_EXPECT(samples >= 2, "need at least two samples");
  const obs::Span span{"carbon.monte_carlo"};
  static obs::Counter& samples_counter = obs::counter("carbon.mc_samples");
  static obs::Gauge& rate_gauge = obs::gauge("carbon.mc_samples_per_sec");
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
  // Counter-based seeding: chunk c always draws from the RNG stream
  // mt19937_64{splitmix64(seed ^ c)}, and the chunk layout depends only on
  // (samples, kChunkSamples) — so the full sample set is bit-identical for
  // any thread count, including the serial fallback.
  constexpr std::size_t kChunkSamples = 4096;
  struct Partial {
    double sum = 0.0;
    std::size_t wins = 0;
  };
  std::vector<double> ratios(samples);
  std::vector<Partial> partials(runtime::chunk_count(samples, kChunkSamples));
  runtime::parallel_for_chunks(samples, kChunkSamples, [&](const runtime::ChunkRange& chunk) {
    const std::uint64_t stream_seed = runtime::chunk_seed(seed, chunk.index);
    // A crash bundle carrying this seed pins the exact RNG stream that was
    // being drawn when the process died — the chunk replays standalone.
    obs::flight_mark("carbon.mc_seed", stream_seed);
    std::mt19937_64 rng{stream_seed};
    auto draw = [&](Interval iv) {
      if (iv.width() <= 0.0) return iv.lo;
      std::uniform_real_distribution<double> d{iv.lo, iv.hi};
      return d(rng);
    };
    Partial part;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      const double ci = draw(scenario.ci_use_g_per_kwh);
      const double months = draw(scenario.lifetime_months);
      const double tc_c =
          tc_scalar(draw(candidate.embodied_per_good_die_g), draw(candidate.operational_power_w),
                    draw(candidate.standby_power_w), ci, months, scenario.duty_cycle);
      const double tc_b =
          tc_scalar(draw(baseline.embodied_per_good_die_g), draw(baseline.operational_power_w),
                    draw(baseline.standby_power_w), ci, months, scenario.duty_cycle);
      const double r = (tc_c * units::in_seconds(candidate.execution_time)) /
                       (tc_b * units::in_seconds(baseline.execution_time));
      ratios[i] = r;
      part.sum += r;
      if (r < 1.0) ++part.wins;
    }
    partials[chunk.index] = part;
  });
  double sum = 0.0;
  std::size_t wins = 0;
  for (const Partial& p : partials) {
    sum += p.sum;
    wins += p.wins;
  }
  samples_counter.add(samples);
  if (timed) {
    const double elapsed_s = static_cast<double>(obs::monotonic_ns() - t0) * 1e-9;
    if (elapsed_s > 0.0) rate_gauge.set(static_cast<double>(samples) / elapsed_s);
  }

  // Quantiles via nth_element instead of a full sort: each extraction is
  // O(n), and ascending positions let later selections work on the upper
  // partition left by earlier ones. Selection yields the same order
  // statistics a full sort would, so results are unchanged.
  std::size_t partitioned_from = 0;
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(ratios.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double f = pos - static_cast<double>(i);
    const auto begin = ratios.begin() + static_cast<std::ptrdiff_t>(partitioned_from);
    const auto nth = ratios.begin() + static_cast<std::ptrdiff_t>(i);
    std::nth_element(begin, nth, ratios.end());
    partitioned_from = i;
    if (i + 1 >= ratios.size() || f <= 0.0) return ratios[i];
    // The interpolation partner is the minimum of the upper partition.
    const double next = *std::min_element(nth + 1, ratios.end());
    return ratios[i] * (1 - f) + next * f;
  };

  MonteCarloSummary s;
  s.samples = samples;
  s.mean = sum / static_cast<double>(samples);
  s.p05 = quantile(0.05);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.probability_candidate_wins = static_cast<double>(wins) / static_cast<double>(samples);
  return s;
}

}  // namespace ppatc::carbon
