#include "ppatc/carbon/process_flow.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

const char* to_string(MetalPitch pitch) {
  switch (pitch) {
    case MetalPitch::k36nm: return "36 nm";
    case MetalPitch::k48nm: return "48 nm";
    case MetalPitch::k64nm: return "64 nm";
    case MetalPitch::k80nm: return "80 nm";
  }
  return "?";
}

LithoClass litho_for(MetalPitch pitch) {
  switch (pitch) {
    case MetalPitch::k36nm: return LithoClass::kEuv36nm;
    case MetalPitch::k48nm: return LithoClass::kEuv42nm;
    case MetalPitch::k64nm: return LithoClass::kDuv193i64nm;
    case MetalPitch::k80nm: return LithoClass::kDuv193i80nm;
  }
  return LithoClass::kNone;
}

ProcessFlow::ProcessFlow(std::string name) : name_{std::move(name)} {}

ProcessFlow& ProcessFlow::add_step(ProcessArea area, double count, std::string label,
                                   LithoClass litho) {
  PPATC_EXPECT(count > 0.0, "step count must be positive");
  PPATC_EXPECT((area == ProcessArea::kLithography) == (litho != LithoClass::kNone),
               "lithography steps (and only those) must carry an exposure class");
  steps_.push_back({area, litho, count, std::move(label)});
  return *this;
}

ProcessFlow& ProcessFlow::add_metal_via_pair(MetalPitch pitch, std::string label) {
  const LithoClass m = litho_for(pitch);
  const std::string p = std::string{to_string(pitch)} + " " + label;
  add_step(ProcessArea::kLithography, 1, p + ": exposure", m);
  add_step(ProcessArea::kDryEtch, 4, p + ": trench/via etch");
  add_step(ProcessArea::kDeposition, 3, p + ": liner/barrier/dielectric deposition");
  add_step(ProcessArea::kMetallization, 2, p + ": fill + CMP");
  add_step(ProcessArea::kWetEtch, 2, p + ": wet clean");
  add_step(ProcessArea::kMetrology, 5, p + ": inspection");
  return *this;
}

ProcessFlow& ProcessFlow::add_via_only(MetalPitch pitch, std::string label) {
  const LithoClass m = litho_for(pitch);
  const std::string p = std::string{to_string(pitch)} + " " + label;
  add_step(ProcessArea::kLithography, 1, p + ": exposure", m);
  add_step(ProcessArea::kDryEtch, 1, p + ": via etch");
  add_step(ProcessArea::kMetallization, 1, p + ": fill + CMP");
  add_step(ProcessArea::kMetrology, 1, p + ": inspection");
  return *this;
}

ProcessFlow& ProcessFlow::add_lumped(Energy per_wafer, std::string label) {
  PPATC_EXPECT(per_wafer.is_nonnegative(), "lumped energy cannot be negative");
  lumped_.emplace_back(per_wafer, std::move(label));
  return *this;
}

std::array<double, kProcessAreaCount> ProcessFlow::step_count_by_area() const {
  std::array<double, kProcessAreaCount> counts{};
  for (const auto& s : steps_) counts[static_cast<std::size_t>(s.area)] += s.count;
  return counts;
}

Energy ProcessFlow::step_energy_per_wafer(const StepEnergyTable& table) const {
  Energy total{};
  for (const auto& s : steps_) total += table.energy(s.area, s.litho) * s.count;
  return total;
}

Energy ProcessFlow::lumped_energy_per_wafer() const {
  Energy total{};
  for (const auto& [e, label] : lumped_) total += e;
  return total;
}

Energy ProcessFlow::energy_per_wafer(const StepEnergyTable& table) const {
  return step_energy_per_wafer(table) + lumped_energy_per_wafer();
}

std::array<Energy, kProcessAreaCount> ProcessFlow::energy_by_area(
    const StepEnergyTable& table) const {
  std::array<Energy, kProcessAreaCount> by_area{};
  for (const auto& s : steps_) {
    by_area[static_cast<std::size_t>(s.area)] += table.energy(s.area, s.litho) * s.count;
  }
  return by_area;
}

}  // namespace ppatc::carbon
