#include "ppatc/carbon/flows.hpp"

#include <string>

#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {

Energy feol_mol_energy_per_wafer() { return units::kilowatt_hours(436.0); }

Energy in7_reference_energy_per_wafer() { return units::kilowatt_hours(884.7); }

ProcessFlow all_si_7nm_flow() {
  ProcessFlow flow{"all-Si 7nm"};
  flow.add_lumped(feol_mol_energy_per_wafer(), "Si FinFET FEOL + MOL (iN7-equivalent)");
  // ASAP7 metal stack: M1–M3 @ 36 nm, M4–M5 @ 48 nm, M6–M7 @ 64 nm,
  // M8–M9 @ 80 nm (each level fabricated as a metal/via pair).
  for (int m = 1; m <= 3; ++m) flow.add_metal_via_pair(MetalPitch::k36nm, "M" + std::to_string(m));
  for (int m = 4; m <= 5; ++m) flow.add_metal_via_pair(MetalPitch::k48nm, "M" + std::to_string(m));
  for (int m = 6; m <= 7; ++m) flow.add_metal_via_pair(MetalPitch::k64nm, "M" + std::to_string(m));
  for (int m = 8; m <= 9; ++m) flow.add_metal_via_pair(MetalPitch::k80nm, "M" + std::to_string(m));
  return flow;
}

void append_cnfet_tier(ProcessFlow& flow, int tier_index) {
  const std::string t = "CNFET tier " + std::to_string(tier_index);
  flow.add_step(ProcessArea::kDeposition, 1, t + ": isolation oxide deposition");
  flow.add_step(ProcessArea::kDeposition, 1, t + ": CNT deposition (wet incubation, ~2 nm)");
  flow.add_step(ProcessArea::kLithography, 1, t + ": active-region exposure", LithoClass::kEuv36nm);
  flow.add_step(ProcessArea::kDryEtch, 1, t + ": active-region O2 plasma etch");
  flow.add_step(ProcessArea::kLithography, 1, t + ": source/drain exposure", LithoClass::kEuv36nm);
  flow.add_step(ProcessArea::kMetallization, 1, t + ": source/drain metal deposition (40 nm)");
  flow.add_step(ProcessArea::kWetEtch, 1, t + ": source/drain lift-off");
  flow.add_step(ProcessArea::kDeposition, 1, t + ": high-k gate dielectric deposition (2 nm)");
  flow.add_step(ProcessArea::kLithography, 1, t + ": gate exposure (30 nm Lg)", LithoClass::kEuv36nm);
  flow.add_step(ProcessArea::kMetallization, 1, t + ": gate metal deposition");
  flow.add_step(ProcessArea::kDryEtch, 1, t + ": gate etch");
  flow.add_step(ProcessArea::kWetEtch, 1, t + ": source/drain expose wet etch");
  flow.add_step(ProcessArea::kWetEtch, 1, t + ": post-tier clean");
  flow.add_step(ProcessArea::kMetrology, 3, t + ": inline inspection");
}

void append_igzo_tier(ProcessFlow& flow, int tier_index) {
  const std::string t = "IGZO tier " + std::to_string(tier_index);
  flow.add_step(ProcessArea::kDeposition, 1, t + ": IGZO RF sputter deposition (10 nm)");
  flow.add_step(ProcessArea::kLithography, 1, t + ": active-region exposure", LithoClass::kEuv36nm);
  flow.add_step(ProcessArea::kWetEtch, 1, t + ": active-region wet etch");
  flow.add_step(ProcessArea::kDeposition, 1, t + ": high-k gate dielectric deposition");
  flow.add_step(ProcessArea::kLithography, 1, t + ": gate exposure", LithoClass::kEuv36nm);
  flow.add_step(ProcessArea::kMetallization, 1, t + ": gate metal deposition");
  flow.add_step(ProcessArea::kDryEtch, 1, t + ": gate etch");
  flow.add_step(ProcessArea::kWetEtch, 1, t + ": post-tier clean");
  flow.add_step(ProcessArea::kMetrology, 2, t + ": inline inspection");
}

ProcessFlow m3d_igzo_cnfet_flow(const M3dFlowOptions& options) {
  PPATC_EXPECT(options.cnfet_tiers >= 0 && options.igzo_tiers >= 0, "tier counts must be >= 0");
  ProcessFlow flow{"M3D IGZO/CNFET/Si 7nm"};
  flow.add_lumped(feol_mol_energy_per_wafer(), "Si FinFET FEOL + MOL (iN7-equivalent)");

  // Identical to the all-Si process through M4.
  for (int m = 1; m <= 3; ++m) flow.add_metal_via_pair(MetalPitch::k36nm, "M" + std::to_string(m));
  flow.add_metal_via_pair(MetalPitch::k48nm, "M4");

  int metal = 5;
  // CNFET tiers: each tier is followed by its contact level (a 36 nm
  // metal/via pair, e.g. M5+VCNT1), then an inter-tier routing level (36 nm
  // pair) plus the standalone via that lands on the next tier (e.g. V6).
  for (int tier = 1; tier <= options.cnfet_tiers; ++tier) {
    append_cnfet_tier(flow, tier);
    flow.add_metal_via_pair(MetalPitch::k36nm,
                            "M" + std::to_string(metal) + "+VCNT" + std::to_string(tier));
    ++metal;
    flow.add_metal_via_pair(MetalPitch::k36nm, "M" + std::to_string(metal) + " (inter-tier)");
    flow.add_via_only(MetalPitch::k36nm, "V" + std::to_string(metal) + " (tier landing)");
    ++metal;
  }

  // IGZO tiers: source/drain + landing via modeled as a 36 nm pair (paper:
  // "IGZO source/drain and V8"), then two 36 nm routing levels (M9–M10).
  for (int tier = 1; tier <= options.igzo_tiers; ++tier) {
    append_igzo_tier(flow, tier);
    flow.add_metal_via_pair(MetalPitch::k36nm, "IGZO S/D + V" + std::to_string(metal + 3));
    flow.add_metal_via_pair(MetalPitch::k36nm, "M" + std::to_string(metal));
    ++metal;
    flow.add_metal_via_pair(MetalPitch::k36nm, "M" + std::to_string(metal));
    ++metal;
  }

  // Top-of-stack routing at the all-Si M5–M9 dimensions: 48, 64, 64, 80, 80.
  flow.add_metal_via_pair(MetalPitch::k48nm, "M" + std::to_string(metal++));
  flow.add_metal_via_pair(MetalPitch::k64nm, "M" + std::to_string(metal++));
  flow.add_metal_via_pair(MetalPitch::k64nm, "M" + std::to_string(metal++));
  flow.add_metal_via_pair(MetalPitch::k80nm, "M" + std::to_string(metal++));
  flow.add_metal_via_pair(MetalPitch::k80nm, "M" + std::to_string(metal++));
  return flow;
}

}  // namespace ppatc::carbon
