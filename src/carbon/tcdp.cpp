#include "ppatc/carbon/tcdp.hpp"

#include <cmath>

#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"

namespace ppatc::carbon {

namespace {

// Shared with isoline.cpp: every carbon-side root finder feeds one counter,
// so a sweep's total bisection work is visible in the metrics report.
obs::Counter& bisection_counter() {
  static obs::Counter& c = obs::counter("carbon.bisection_iterations");
  return c;
}

// Bisection for the smallest t in (0, horizon] with f(t) >= 0, given f is
// continuous and f(0) < 0. Returns nullopt if f stays negative.
std::optional<Duration> first_nonnegative(const std::function<double(Duration)>& f,
                                          Duration horizon) {
  const double t_end = units::in_seconds(horizon);
  if (f(horizon) < 0.0) return std::nullopt;
  double lo = 0.0;
  double hi = t_end;
  std::uint64_t iterations = 0;
  for (int i = 0; i < 200 && (hi - lo) > 1.0; ++i) {
    const double mid = 0.5 * (lo + hi);
    (f(units::seconds(mid)) < 0.0 ? lo : hi) = mid;
    ++iterations;
  }
  bisection_counter().add(iterations);
  return units::seconds(hi);
}

}  // namespace

Carbon operational_carbon(const SystemCarbonProfile& profile, const OperationalScenario& scenario,
                          Duration lifetime) {
  return operational_carbon(scenario, profile.operational_power, lifetime) +
         standby_carbon(scenario, profile.standby_power, lifetime);
}

Carbon total_carbon(const SystemCarbonProfile& profile, const OperationalScenario& scenario,
                    Duration lifetime) {
  return profile.embodied_per_good_die + operational_carbon(profile, scenario, lifetime);
}

CarbonDelay tcdp(const SystemCarbonProfile& profile, const OperationalScenario& scenario,
                 Duration lifetime) {
  PPATC_EXPECT(profile.execution_time.base() > 0, "execution time must be positive");
  return total_carbon(profile, scenario, lifetime) * profile.execution_time;
}

std::vector<LifetimePoint> lifetime_series(const SystemCarbonProfile& profile,
                                           const OperationalScenario& scenario, int months) {
  PPATC_EXPECT(months >= 1, "series needs at least one month");
  std::vector<LifetimePoint> series;
  series.reserve(static_cast<std::size_t>(months));
  for (int m = 1; m <= months; ++m) {
    const Duration t = units::months(m);
    LifetimePoint p;
    p.lifetime = t;
    p.embodied = profile.embodied_per_good_die;
    p.operational = operational_carbon(profile, scenario, t);
    p.total = p.embodied + p.operational;
    p.tcdp = tcdp(profile, scenario, t);
    series.push_back(p);
  }
  return series;
}

std::optional<Duration> embodied_dominance_end(const SystemCarbonProfile& profile,
                                               const OperationalScenario& scenario,
                                               Duration horizon) {
  return first_nonnegative(
      [&](Duration t) {
        return units::in_grams_co2e(operational_carbon(profile, scenario, t)) -
               units::in_grams_co2e(profile.embodied_per_good_die);
      },
      horizon);
}

std::optional<Duration> total_carbon_crossover(const SystemCarbonProfile& a,
                                               const SystemCarbonProfile& b,
                                               const OperationalScenario& scenario,
                                               Duration horizon) {
  const double at_zero = units::in_grams_co2e(a.embodied_per_good_die) -
                         units::in_grams_co2e(b.embodied_per_good_die);
  if (at_zero == 0.0) return units::seconds(0.0);
  // Normalize so the difference starts negative.
  const double sign = at_zero < 0.0 ? 1.0 : -1.0;
  return first_nonnegative(
      [&](Duration t) {
        return sign * (units::in_grams_co2e(total_carbon(a, scenario, t)) -
                       units::in_grams_co2e(total_carbon(b, scenario, t)));
      },
      horizon);
}

double tcdp_ratio(const SystemCarbonProfile& a, const SystemCarbonProfile& b,
                  const OperationalScenario& scenario, Duration lifetime) {
  return tcdp(a, scenario, lifetime) / tcdp(b, scenario, lifetime);
}

double asymptotic_edp_ratio(const SystemCarbonProfile& a, const SystemCarbonProfile& b,
                            const OperationalScenario& scenario) {
  // For long lifetimes tC -> C_op ~ CI * P_effective * t, so the tCDP ratio
  // tends to (P_a * T_a) / (P_b * T_b): the energy-delay-product ratio.
  // Standby power runs 24 h/day, so it is weighted up by 1/duty relative to
  // the window-gated operational power.
  const double inv_duty = 1.0 / scenario.window.duty_cycle();
  const double pa =
      units::in_watts(a.operational_power) + units::in_watts(a.standby_power) * inv_duty;
  const double pb =
      units::in_watts(b.operational_power) + units::in_watts(b.standby_power) * inv_duty;
  return (pa * units::in_seconds(a.execution_time)) / (pb * units::in_seconds(b.execution_time));
}

}  // namespace ppatc::carbon
