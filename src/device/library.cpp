#include "ppatc/device/library.hpp"

#include "ppatc/common/contract.hpp"

namespace ppatc::device {

const char* to_string(VtFlavor flavor) {
  switch (flavor) {
    case VtFlavor::kHvt: return "HVT";
    case VtFlavor::kRvt: return "RVT";
    case VtFlavor::kLvt: return "LVT";
    case VtFlavor::kSlvt: return "SLVT";
  }
  return "?";
}

VsParams silicon_finfet(Polarity polarity, VtFlavor flavor) {
  VsParams p;
  p.polarity = polarity;
  p.gate_length = units::nanometres(21.0);  // ASAP7 drawn 20 nm, effective ~21 nm
  p.cinv_ff_per_um2 = 20.0;
  p.cpar_ff_per_um = 0.18;
  p.alpha = 3.5;
  p.beta = 1.8;
  p.dibl_mv_per_v = 30.0;
  if (polarity == Polarity::kNmos) {
    p.vx0_cm_per_s = 0.85e7;
    p.mobility_cm2_per_vs = 200.0;
    p.ss_mv_per_decade = 65.0;
    p.rs_ohm_um = 90.0;
  } else {
    p.vx0_cm_per_s = 0.70e7;
    p.mobility_cm2_per_vs = 150.0;
    p.ss_mv_per_decade = 70.0;
    p.rs_ohm_um = 110.0;
  }
  // VT values place I_OFF in the ASAP7 documentation ranges (HVT ~0.1 nA/um
  // ... SLVT ~20 nA/um at 0.7 V) given this model's sub-threshold shape.
  switch (flavor) {
    case VtFlavor::kHvt: p.vt_volts = 0.48; break;
    case VtFlavor::kRvt: p.vt_volts = 0.42; break;
    case VtFlavor::kLvt: p.vt_volts = 0.37; break;
    case VtFlavor::kSlvt: p.vt_volts = 0.32; break;
  }
  p.name = std::string{"si7_"} + (polarity == Polarity::kNmos ? "n" : "p") + "_" + to_string(flavor);
  return p;
}

VsParams cnfet(Polarity polarity, const CnfetOptions& options) {
  PPATC_EXPECT(options.metallic_fraction >= 0.0 && options.metallic_fraction <= 1.0 / 3.0,
               "metallic fraction must be in [0, 1/3] (1/3 is as-grown)");
  PPATC_EXPECT(options.cnts_per_um > 0.0, "CNT density must be positive");
  VsParams p;
  p.polarity = polarity;
  p.gate_length = units::nanometres(30.0);  // paper: 30 nm CNFET gate length
  // Quantum-capacitance-limited gate stack: lower Cinv than Si FinFET, but
  // much higher injection velocity -> higher I_EFF per width.
  p.cinv_ff_per_um2 = 11.0;
  p.cpar_ff_per_um = 0.12;
  p.vx0_cm_per_s = 3.3e7;
  p.mobility_cm2_per_vs = 1500.0;
  // Small-bandgap CNTs (0.43..0.85 eV) leak more: softer slope + band-to-band
  // contribution folded into SS, plus the metallic-CNT ohmic shunt.
  p.ss_mv_per_decade = 78.0;
  p.dibl_mv_per_v = 45.0;
  p.rs_ohm_um = 180.0;
  p.vt_volts = 0.32;
  p.alpha = 3.5;
  p.beta = 1.6;
  p.shunt_siemens_per_um =
      options.metallic_fraction * options.cnts_per_um * options.metallic_conductance_us * 1e-6;
  p.name = std::string{"cnfet_"} + (polarity == Polarity::kNmos ? "n" : "p");
  return p;
}

VsParams igzo_fet() {
  VsParams p;
  p.polarity = Polarity::kNmos;
  p.name = "igzo_n";
  p.gate_length = units::nanometres(44.0);  // Samanta VLSI 2020 measured card
  p.mobility_cm2_per_vs = 1.0;
  p.ss_mv_per_decade = 90.0;
  // Low mobility makes the device drift-limited: modest injection velocity.
  p.vx0_cm_per_s = 2.5e5;
  p.cinv_ff_per_um2 = 15.0;
  p.cpar_ff_per_um = 0.10;
  // Enhancement-mode, high VT: with Eg ~ 3.5 eV there is no band-to-band or
  // GIDL floor, so sub-threshold extrapolation holds for many decades and
  // I_OFF at the hold bias reaches the attoampere regime (Belmonte 2023).
  p.vt_volts = 0.80;
  p.dibl_mv_per_v = 15.0;
  p.rs_ohm_um = 500.0;
  p.alpha = 3.5;
  p.beta = 1.8;
  return p;
}

Temperature process_temperature(const VsParams& params) {
  // Si FinFETs need dopant activation anneals; CNT deposition is a
  // room-temperature wet process (solution incubation) followed by <=200 C
  // bakes; IGZO is RF-sputtered below 300 C.
  if (params.name.rfind("si7_", 0) == 0) return units::celsius(1050.0);
  if (params.name.rfind("cnfet_", 0) == 0) return units::celsius(200.0);
  if (params.name.rfind("igzo_", 0) == 0) return units::celsius(250.0);
  return units::celsius(400.0);
}

bool beol_compatible(const VsParams& params) {
  return process_temperature(params) < units::celsius(300.0);
}

}  // namespace ppatc::device
