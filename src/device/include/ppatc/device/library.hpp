// ppatc: technology cards for the three FET families of the paper (Table I).
//
//  * Si FinFET @ 7 nm (ASAP7-style), four threshold flavors (HVT, RVT, LVT,
//    SLVT) for both polarities — bottom-tier only (requires >1000 C anneals).
//  * CNFET (VS-CNFET, Lee et al. TED 2015): high I_EFF, BEOL-compatible,
//    subject to metallic-CNT leakage unless removed.
//  * IGZO FET (virtual-source card, Samanta VLSI 2020 / Belmonte IEDM 2021):
//    low mobility (1 cm^2/V.s), SS = 90 mV/dec, ultra-low I_OFF, NMOS only,
//    BEOL-compatible.
//
// Cards are returned by value so callers may tweak individual parameters
// (e.g. metallic-CNT fraction sweeps in the ablation bench).
#pragma once

#include "ppatc/device/vs_model.hpp"

namespace ppatc::device {

/// ASAP7-style threshold-voltage flavor.
enum class VtFlavor { kHvt, kRvt, kLvt, kSlvt };

[[nodiscard]] const char* to_string(VtFlavor flavor);

/// 7 nm Si FinFET card. DIBL/SS/velocity chosen to land I_ON, I_OFF in the
/// ranges of the ASAP7 PDK documentation at VDD = 0.7 V.
[[nodiscard]] VsParams silicon_finfet(Polarity polarity, VtFlavor flavor);

/// Options controlling CNFET non-idealities.
struct CnfetOptions {
  double cnts_per_um = 200.0;          ///< CNT areal density under the gate.
  double metallic_fraction = 1e-6;     ///< Fraction of metallic CNTs remaining
                                       ///< after removal (1/3 as-grown).
  double metallic_conductance_us = 20.0;  ///< On-conductance per metallic CNT (uS).
};

/// BEOL-compatible CNFET card (high I_EFF; I_OFF degraded by metallic CNTs).
[[nodiscard]] VsParams cnfet(Polarity polarity, const CnfetOptions& options = {});

/// BEOL-compatible IGZO FET card (NMOS only — IGZO is an n-type oxide
/// semiconductor; the paper's bit cell uses it solely as the write transistor).
[[nodiscard]] VsParams igzo_fet();

/// Maximum processing temperature of each card's fabrication flow; used by
/// the process-flow model to check BEOL compatibility (< 300 C).
[[nodiscard]] Temperature process_temperature(const VsParams& params);

/// True if the card can be fabricated in upper (BEOL) tiers of an M3D stack.
[[nodiscard]] bool beol_compatible(const VsParams& params);

}  // namespace ppatc::device
