// ppatc: virtual-source (VS) FET compact model.
//
// Implements the semi-empirical short-channel MOSFET model of Khakifirooz et
// al. (IEEE TED 2009), the same model family the paper uses for its SPICE
// simulations: ASAP7 Si FinFETs, VS-CNFET (Lee et al., TED 2015), and an
// IGZO FET virtual-source card with experimentally measured mobility
// (1 cm^2/V.s) and sub-threshold slope (90 mV/dec) [Samanta, VLSI 2020].
//
// The model is charge-based: the drain current per unit width is
//     Id/W = Q_ix0 * v_x0 * F_sat(Vds)
// where Q_ix0 is the virtual-source charge (empirical smooth function of Vgs
// spanning sub-threshold to strong inversion), v_x0 the injection velocity,
// and F_sat a saturation blending function. Metallic-CNT leakage (for CNFETs
// before/after imperfect metallic-CNT removal) is modeled as an additional
// ohmic shunt conductance proportional to the metallic fraction.
#pragma once

#include <string>
#include <utility>

#include "ppatc/common/units.hpp"

namespace ppatc::device {

enum class Polarity { kNmos, kPmos };

/// Parameters for the virtual-source model. All per-width quantities are
/// normalized to A/um, F/um etc. so that a transistor instance is
/// (params, width).
struct VsParams {
  std::string name;                 ///< Human-readable technology card name.
  Polarity polarity = Polarity::kNmos;
  double vt_volts = 0.25;           ///< Saturation threshold voltage (magnitude).
  double ss_mv_per_decade = 65.0;   ///< Sub-threshold slope at 300 K.
  double vx0_cm_per_s = 1.0e7;      ///< Virtual-source injection velocity.
  double mobility_cm2_per_vs = 250; ///< Low-field apparent mobility.
  Length gate_length = units::nanometres(21.0);  ///< Effective channel length.
  double cinv_ff_per_um2 = 25.0;    ///< Inversion gate capacitance density (fF/um^2).
  double cpar_ff_per_um = 0.18;     ///< Parasitic (fringe+overlap) cap per um width.
  double alpha = 3.5;               ///< Empirical VT shift between sat/lin.
  double beta = 1.8;                ///< Saturation-blend exponent.
  double rs_ohm_um = 100.0;         ///< Source access resistance (ohm.um).
  double dibl_mv_per_v = 30.0;      ///< Drain-induced barrier lowering.
  double shunt_siemens_per_um = 0.0;///< Ohmic shunt (metallic CNTs); 0 for MOS.
  Temperature temperature = units::kelvin(300.0);
};

/// One FET instance: a technology card plus a drawn width.
class VirtualSourceFet {
 public:
  VirtualSourceFet(VsParams params, Length width);
  /// Compat shim: drawn width given as raw microns.
  // ppatc-lint: allow(unit-typed-api) — thin double compat shim for existing call sites
  VirtualSourceFet(VsParams params, double width_um)
      : VirtualSourceFet{std::move(params), units::micrometres(width_um)} {}

  [[nodiscard]] const VsParams& params() const { return params_; }
  [[nodiscard]] Length width() const { return units::micrometres(width_um_); }
  [[nodiscard]] double width_um() const { return width_um_; }

  /// Drain current for terminal voltages (polarity handled internally: for
  /// PMOS pass actual signed voltages; the model mirrors them).
  [[nodiscard]] Current drain_current(Voltage vgs, Voltage vds) const;

  /// Per-width drain current in A/um for NMOS-normalized (positive) biases.
  [[nodiscard]] double drain_current_per_um(double vgs, double vds) const;

  /// I_OFF: |Id| at Vgs = 0, |Vds| = Vdd.
  [[nodiscard]] Current off_current(Voltage vdd) const;
  /// I_ON: |Id| at |Vgs| = |Vds| = Vdd.
  [[nodiscard]] Current on_current(Voltage vdd) const;
  /// Effective drive current I_EFF = (I_H + I_L) / 2 with
  /// I_H = Id(Vgs=Vdd, Vds=Vdd/2), I_L = Id(Vgs=Vdd/2, Vds=Vdd).
  [[nodiscard]] Current effective_current(Voltage vdd) const;

  /// Total gate capacitance (intrinsic inversion + parasitic).
  [[nodiscard]] Capacitance gate_capacitance() const;

  /// Sub-threshold ideality factor n = SS / (kT/q * ln 10).
  [[nodiscard]] double ideality() const;

  /// Thermal voltage kT/q in volts.
  [[nodiscard]] double thermal_voltage() const;

 private:
  /// Bias-independent quantities of drain_current_per_um, precomputed once at
  /// construction. Every field is the exact double the per-call expression
  /// used to produce (same operations, same association order), so hoisting
  /// them cannot change any computed current — drain_current_per_um runs in
  /// the SPICE Newton inner loop (7 evaluations per FET per iteration for the
  /// value and its central-difference partials), where the repeated unit
  /// conversions and parameter products were measurable overhead.
  struct Derived {
    double vt_therm = 0.0;      ///< thermal_voltage()
    double phi_t_n = 0.0;       ///< ideality() * vt_therm
    double dibl_v = 0.0;        ///< dibl_mv_per_v * 1e-3
    double alpha_vt = 0.0;      ///< alpha * vt_therm
    double half_alpha_vt = 0.0; ///< alpha_vt / 2.0
    double cinv = 0.0;          ///< cinv_ff_per_um2 * 1e-15 * 1e8 (F/cm^2)
    double cphi = 0.0;          ///< cinv * phi_t_n
    double vdsat_strong = 0.0;  ///< vx0 * Leff[cm] / mobility
    double inv_beta = 0.0;      ///< 1.0 / beta
  };

  VsParams params_;
  double width_um_;
  Derived d_;
};

}  // namespace ppatc::device
