#include "ppatc/device/vs_model.hpp"

#include <algorithm>
#include <cmath>

#include "ppatc/common/contract.hpp"

namespace ppatc::device {

namespace {
constexpr double kBoltzmannOverQ = 8.617333262e-5;  // V/K
constexpr double kLn10 = 2.302585092994046;
}  // namespace

VirtualSourceFet::VirtualSourceFet(VsParams params, Length width)
    : params_{std::move(params)}, width_um_{units::in_micrometres(width)} {
  PPATC_EXPECT(width_um_ > 0.0, "FET width must be positive");
  PPATC_EXPECT(params_.vt_volts > 0.0, "|VT| must be positive");
  PPATC_EXPECT(params_.ss_mv_per_decade >= 59.0,
               "sub-threshold slope cannot beat the thermionic limit at 300 K");
  PPATC_EXPECT(params_.vx0_cm_per_s > 0.0 && params_.mobility_cm2_per_vs > 0.0,
               "transport parameters must be positive");
  PPATC_EXPECT(units::in_nanometres(params_.gate_length) > 0.0, "gate length must be positive");

  // Bias-independent hoists for drain_current_per_um. Each expression is the
  // per-call one verbatim so the cached double is bit-identical to what the
  // inner loop used to recompute.
  d_.vt_therm = thermal_voltage();
  d_.phi_t_n = ideality() * d_.vt_therm;
  d_.dibl_v = params_.dibl_mv_per_v * 1e-3;
  d_.alpha_vt = params_.alpha * d_.vt_therm;
  d_.half_alpha_vt = d_.alpha_vt / 2.0;
  d_.cinv = params_.cinv_ff_per_um2 * 1e-15 * 1e8;  // F/cm^2
  d_.cphi = d_.cinv * d_.phi_t_n;
  d_.vdsat_strong =
      params_.vx0_cm_per_s * (units::in_nanometres(params_.gate_length) * 1e-7) /
      params_.mobility_cm2_per_vs;
  d_.inv_beta = 1.0 / params_.beta;
}

double VirtualSourceFet::thermal_voltage() const {
  return kBoltzmannOverQ * units::in_kelvin(params_.temperature);
}

double VirtualSourceFet::ideality() const {
  return params_.ss_mv_per_decade * 1e-3 / (thermal_voltage() * kLn10);
}

double VirtualSourceFet::drain_current_per_um(double vgs, double vds) const {
  // NMOS-normalized evaluation; vds may be negative (symmetric conduction is
  // approximated by source/drain swap).
  bool swapped = false;
  if (vds < 0.0) {
    // Swap source and drain: Vgs' = Vgs - Vds, Vds' = -Vds.
    vgs = vgs - vds;
    vds = -vds;
    swapped = true;
  }

  const double vt_therm = d_.vt_therm;
  const double phi_t_n = d_.phi_t_n;

  // DIBL-corrected threshold.
  const double vt_eff = params_.vt_volts - d_.dibl_v * vds;

  // Inversion-transition function Ff: ~1 in sub-threshold, ~0 in strong inv.
  const double alpha_vt = d_.alpha_vt;
  const double ff =
      1.0 / (1.0 + std::exp(std::clamp((vgs - (vt_eff - d_.half_alpha_vt)) / alpha_vt, -60.0, 60.0)));

  // Virtual-source charge (F/um^2 * V -> C/um^2).
  const double eta = std::clamp((vgs - (vt_eff - alpha_vt * ff)) / phi_t_n, -60.0, 60.0);
  const double q_ix0 = d_.cphi * std::log1p(std::exp(eta));  // C/cm^2

  // Saturation voltage: drift-limited in strong inversion, thermal-limited in
  // sub-threshold; Ff blends the two.
  const double vdsat = d_.vdsat_strong * (1.0 - ff) + vt_therm * ff;
  const double x = vds / std::max(vdsat, 1e-9);
  const double fsat = x / std::pow(1.0 + std::pow(x, params_.beta), d_.inv_beta);

  // Current per width: Q * v. Convert to A/um (1 cm = 1e4 um).
  double id = q_ix0 * params_.vx0_cm_per_s * fsat / 1e4;  // A/um

  // First-order source-resistance degradation: one fixed-point iteration of
  // Vgs_int = Vgs - Id*Rs (Rs is in ohm.um, Id in A/um, so Id*Rs is volts).
  if (params_.rs_ohm_um > 0.0 && id > 0.0) {
    const double vgs_int = vgs - id * params_.rs_ohm_um;
    const double eta2 = std::clamp((vgs_int - (vt_eff - alpha_vt * ff)) / phi_t_n, -60.0, 60.0);
    const double q2 = d_.cphi * std::log1p(std::exp(eta2));
    id = q2 * params_.vx0_cm_per_s * fsat / 1e4;
  }

  // Metallic-CNT (or generic) ohmic shunt.
  id += params_.shunt_siemens_per_um * vds;

  return swapped ? -id : id;
}

Current VirtualSourceFet::drain_current(Voltage vgs, Voltage vds) const {
  double g = units::in_volts(vgs);
  double d = units::in_volts(vds);
  if (params_.polarity == Polarity::kPmos) {
    // Mirror into NMOS space.
    g = -g;
    d = -d;
    return units::amperes(-drain_current_per_um(g, d) * width_um_);
  }
  return units::amperes(drain_current_per_um(g, d) * width_um_);
}

Current VirtualSourceFet::off_current(Voltage vdd) const {
  const double v = std::abs(units::in_volts(vdd));
  return units::amperes(std::abs(drain_current_per_um(0.0, v)) * width_um_);
}

Current VirtualSourceFet::on_current(Voltage vdd) const {
  const double v = std::abs(units::in_volts(vdd));
  return units::amperes(std::abs(drain_current_per_um(v, v)) * width_um_);
}

Current VirtualSourceFet::effective_current(Voltage vdd) const {
  const double v = std::abs(units::in_volts(vdd));
  const double ih = drain_current_per_um(v, v / 2.0);
  const double il = drain_current_per_um(v / 2.0, v);
  return units::amperes(0.5 * (ih + il) * width_um_);
}

Capacitance VirtualSourceFet::gate_capacitance() const {
  const double lg_um = units::in_nanometres(params_.gate_length) * 1e-3;
  const double c_int_ff = params_.cinv_ff_per_um2 * lg_um * width_um_;
  const double c_par_ff = params_.cpar_ff_per_um * width_um_;
  return units::femtofarads(c_int_ff + c_par_ff);
}

}  // namespace ppatc::device
