file(REMOVE_RECURSE
  "libppatc_core.a"
)
