file(REMOVE_RECURSE
  "CMakeFiles/ppatc_core.dir/optimize.cpp.o"
  "CMakeFiles/ppatc_core.dir/optimize.cpp.o.d"
  "CMakeFiles/ppatc_core.dir/system.cpp.o"
  "CMakeFiles/ppatc_core.dir/system.cpp.o.d"
  "libppatc_core.a"
  "libppatc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
