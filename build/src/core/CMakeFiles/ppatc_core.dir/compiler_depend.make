# Empty compiler generated dependencies file for ppatc_core.
# This may be replaced when dependencies are built.
