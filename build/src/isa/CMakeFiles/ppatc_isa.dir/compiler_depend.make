# Empty compiler generated dependencies file for ppatc_isa.
# This may be replaced when dependencies are built.
