file(REMOVE_RECURSE
  "libppatc_isa.a"
)
