file(REMOVE_RECURSE
  "CMakeFiles/ppatc_isa.dir/assembler.cpp.o"
  "CMakeFiles/ppatc_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/ppatc_isa.dir/cpu.cpp.o"
  "CMakeFiles/ppatc_isa.dir/cpu.cpp.o.d"
  "CMakeFiles/ppatc_isa.dir/memory.cpp.o"
  "CMakeFiles/ppatc_isa.dir/memory.cpp.o.d"
  "libppatc_isa.a"
  "libppatc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
