# Empty dependencies file for ppatc_spice.
# This may be replaced when dependencies are built.
