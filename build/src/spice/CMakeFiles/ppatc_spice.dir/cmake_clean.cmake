file(REMOVE_RECURSE
  "CMakeFiles/ppatc_spice.dir/circuit.cpp.o"
  "CMakeFiles/ppatc_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/ppatc_spice.dir/simulator.cpp.o"
  "CMakeFiles/ppatc_spice.dir/simulator.cpp.o.d"
  "CMakeFiles/ppatc_spice.dir/waveform.cpp.o"
  "CMakeFiles/ppatc_spice.dir/waveform.cpp.o.d"
  "libppatc_spice.a"
  "libppatc_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
