file(REMOVE_RECURSE
  "libppatc_spice.a"
)
