
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/runner.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/runner.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/runner.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/workload_crc32.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_crc32.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_crc32.cpp.o.d"
  "/root/repo/src/workloads/workload_edn.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_edn.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_edn.cpp.o.d"
  "/root/repo/src/workloads/workload_fib.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_fib.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_fib.cpp.o.d"
  "/root/repo/src/workloads/workload_matmult.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_matmult.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_matmult.cpp.o.d"
  "/root/repo/src/workloads/workload_mont.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_mont.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_mont.cpp.o.d"
  "/root/repo/src/workloads/workload_primecount.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_primecount.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_primecount.cpp.o.d"
  "/root/repo/src/workloads/workload_qsort.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_qsort.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_qsort.cpp.o.d"
  "/root/repo/src/workloads/workload_sglib.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_sglib.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_sglib.cpp.o.d"
  "/root/repo/src/workloads/workload_statemate.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_statemate.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_statemate.cpp.o.d"
  "/root/repo/src/workloads/workload_ud.cpp" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_ud.cpp.o" "gcc" "src/workloads/CMakeFiles/ppatc_workloads.dir/workload_ud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ppatc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
