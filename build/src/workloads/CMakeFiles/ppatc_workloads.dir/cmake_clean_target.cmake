file(REMOVE_RECURSE
  "libppatc_workloads.a"
)
