# Empty compiler generated dependencies file for ppatc_workloads.
# This may be replaced when dependencies are built.
