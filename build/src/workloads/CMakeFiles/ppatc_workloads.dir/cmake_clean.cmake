file(REMOVE_RECURSE
  "CMakeFiles/ppatc_workloads.dir/runner.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/suite.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_crc32.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_crc32.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_edn.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_edn.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_fib.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_fib.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_matmult.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_matmult.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_mont.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_mont.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_primecount.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_primecount.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_qsort.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_qsort.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_sglib.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_sglib.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_statemate.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_statemate.cpp.o.d"
  "CMakeFiles/ppatc_workloads.dir/workload_ud.cpp.o"
  "CMakeFiles/ppatc_workloads.dir/workload_ud.cpp.o.d"
  "libppatc_workloads.a"
  "libppatc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
