# Empty dependencies file for ppatc_device.
# This may be replaced when dependencies are built.
