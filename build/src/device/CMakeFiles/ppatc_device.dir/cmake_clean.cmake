file(REMOVE_RECURSE
  "CMakeFiles/ppatc_device.dir/library.cpp.o"
  "CMakeFiles/ppatc_device.dir/library.cpp.o.d"
  "CMakeFiles/ppatc_device.dir/vs_model.cpp.o"
  "CMakeFiles/ppatc_device.dir/vs_model.cpp.o.d"
  "libppatc_device.a"
  "libppatc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
