file(REMOVE_RECURSE
  "libppatc_device.a"
)
