file(REMOVE_RECURSE
  "libppatc_carbon.a"
)
