# Empty dependencies file for ppatc_carbon.
# This may be replaced when dependencies are built.
