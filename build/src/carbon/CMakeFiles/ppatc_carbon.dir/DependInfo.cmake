
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carbon/embodied.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/embodied.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/embodied.cpp.o.d"
  "/root/repo/src/carbon/flows.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/flows.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/flows.cpp.o.d"
  "/root/repo/src/carbon/grid.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/grid.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/grid.cpp.o.d"
  "/root/repo/src/carbon/isoline.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/isoline.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/isoline.cpp.o.d"
  "/root/repo/src/carbon/materials.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/materials.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/materials.cpp.o.d"
  "/root/repo/src/carbon/operational.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/operational.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/operational.cpp.o.d"
  "/root/repo/src/carbon/process_flow.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/process_flow.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/process_flow.cpp.o.d"
  "/root/repo/src/carbon/process_step.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/process_step.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/process_step.cpp.o.d"
  "/root/repo/src/carbon/resources.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/resources.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/resources.cpp.o.d"
  "/root/repo/src/carbon/tcdp.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/tcdp.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/tcdp.cpp.o.d"
  "/root/repo/src/carbon/uncertainty.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/uncertainty.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/uncertainty.cpp.o.d"
  "/root/repo/src/carbon/wafer.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/wafer.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/wafer.cpp.o.d"
  "/root/repo/src/carbon/yield.cpp" "src/carbon/CMakeFiles/ppatc_carbon.dir/yield.cpp.o" "gcc" "src/carbon/CMakeFiles/ppatc_carbon.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
