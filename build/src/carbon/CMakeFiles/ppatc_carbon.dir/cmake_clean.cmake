file(REMOVE_RECURSE
  "CMakeFiles/ppatc_carbon.dir/embodied.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/embodied.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/flows.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/flows.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/grid.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/grid.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/isoline.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/isoline.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/materials.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/materials.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/operational.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/operational.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/process_flow.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/process_flow.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/process_step.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/process_step.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/resources.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/resources.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/tcdp.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/tcdp.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/uncertainty.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/uncertainty.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/wafer.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/wafer.cpp.o.d"
  "CMakeFiles/ppatc_carbon.dir/yield.cpp.o"
  "CMakeFiles/ppatc_carbon.dir/yield.cpp.o.d"
  "libppatc_carbon.a"
  "libppatc_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
