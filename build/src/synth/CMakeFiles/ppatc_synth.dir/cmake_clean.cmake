file(REMOVE_RECURSE
  "CMakeFiles/ppatc_synth.dir/m0.cpp.o"
  "CMakeFiles/ppatc_synth.dir/m0.cpp.o.d"
  "libppatc_synth.a"
  "libppatc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
