file(REMOVE_RECURSE
  "libppatc_synth.a"
)
