# Empty dependencies file for ppatc_synth.
# This may be replaced when dependencies are built.
