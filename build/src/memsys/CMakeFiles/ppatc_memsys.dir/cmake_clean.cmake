file(REMOVE_RECURSE
  "CMakeFiles/ppatc_memsys.dir/bitcell.cpp.o"
  "CMakeFiles/ppatc_memsys.dir/bitcell.cpp.o.d"
  "CMakeFiles/ppatc_memsys.dir/edram.cpp.o"
  "CMakeFiles/ppatc_memsys.dir/edram.cpp.o.d"
  "CMakeFiles/ppatc_memsys.dir/subarray.cpp.o"
  "CMakeFiles/ppatc_memsys.dir/subarray.cpp.o.d"
  "libppatc_memsys.a"
  "libppatc_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppatc_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
