
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsys/bitcell.cpp" "src/memsys/CMakeFiles/ppatc_memsys.dir/bitcell.cpp.o" "gcc" "src/memsys/CMakeFiles/ppatc_memsys.dir/bitcell.cpp.o.d"
  "/root/repo/src/memsys/edram.cpp" "src/memsys/CMakeFiles/ppatc_memsys.dir/edram.cpp.o" "gcc" "src/memsys/CMakeFiles/ppatc_memsys.dir/edram.cpp.o.d"
  "/root/repo/src/memsys/subarray.cpp" "src/memsys/CMakeFiles/ppatc_memsys.dir/subarray.cpp.o" "gcc" "src/memsys/CMakeFiles/ppatc_memsys.dir/subarray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/ppatc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ppatc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ppatc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
