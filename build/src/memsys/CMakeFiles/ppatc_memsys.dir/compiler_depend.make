# Empty compiler generated dependencies file for ppatc_memsys.
# This may be replaced when dependencies are built.
