file(REMOVE_RECURSE
  "libppatc_memsys.a"
)
