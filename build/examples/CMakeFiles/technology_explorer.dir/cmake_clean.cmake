file(REMOVE_RECURSE
  "CMakeFiles/technology_explorer.dir/technology_explorer.cpp.o"
  "CMakeFiles/technology_explorer.dir/technology_explorer.cpp.o.d"
  "technology_explorer"
  "technology_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technology_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
