# Empty compiler generated dependencies file for technology_explorer.
# This may be replaced when dependencies are built.
