# Empty dependencies file for iss_demo.
# This may be replaced when dependencies are built.
