file(REMOVE_RECURSE
  "CMakeFiles/iss_demo.dir/iss_demo.cpp.o"
  "CMakeFiles/iss_demo.dir/iss_demo.cpp.o.d"
  "iss_demo"
  "iss_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
