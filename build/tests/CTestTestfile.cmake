# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_carbon_process[1]_include.cmake")
include("/root/repo/build/tests/test_carbon_embodied[1]_include.cmake")
include("/root/repo/build/tests/test_wafer_yield[1]_include.cmake")
include("/root/repo/build/tests/test_operational_tcdp[1]_include.cmake")
include("/root/repo/build/tests/test_isoline_uncertainty[1]_include.cmake")
include("/root/repo/build/tests/test_isa_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_memsys[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_resources_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
