# Empty compiler generated dependencies file for test_isoline_uncertainty.
# This may be replaced when dependencies are built.
