file(REMOVE_RECURSE
  "CMakeFiles/test_isoline_uncertainty.dir/test_isoline_uncertainty.cpp.o"
  "CMakeFiles/test_isoline_uncertainty.dir/test_isoline_uncertainty.cpp.o.d"
  "test_isoline_uncertainty"
  "test_isoline_uncertainty.pdb"
  "test_isoline_uncertainty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isoline_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
