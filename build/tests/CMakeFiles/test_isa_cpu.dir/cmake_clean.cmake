file(REMOVE_RECURSE
  "CMakeFiles/test_isa_cpu.dir/test_isa_cpu.cpp.o"
  "CMakeFiles/test_isa_cpu.dir/test_isa_cpu.cpp.o.d"
  "test_isa_cpu"
  "test_isa_cpu.pdb"
  "test_isa_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
