# Empty dependencies file for test_isa_cpu.
# This may be replaced when dependencies are built.
