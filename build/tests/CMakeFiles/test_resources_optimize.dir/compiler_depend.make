# Empty compiler generated dependencies file for test_resources_optimize.
# This may be replaced when dependencies are built.
