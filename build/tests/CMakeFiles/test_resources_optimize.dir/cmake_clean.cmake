file(REMOVE_RECURSE
  "CMakeFiles/test_resources_optimize.dir/test_resources_optimize.cpp.o"
  "CMakeFiles/test_resources_optimize.dir/test_resources_optimize.cpp.o.d"
  "test_resources_optimize"
  "test_resources_optimize.pdb"
  "test_resources_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resources_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
