file(REMOVE_RECURSE
  "CMakeFiles/test_carbon_embodied.dir/test_carbon_embodied.cpp.o"
  "CMakeFiles/test_carbon_embodied.dir/test_carbon_embodied.cpp.o.d"
  "test_carbon_embodied"
  "test_carbon_embodied.pdb"
  "test_carbon_embodied[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_carbon_embodied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
