# Empty compiler generated dependencies file for test_carbon_embodied.
# This may be replaced when dependencies are built.
