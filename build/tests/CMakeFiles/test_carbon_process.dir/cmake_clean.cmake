file(REMOVE_RECURSE
  "CMakeFiles/test_carbon_process.dir/test_carbon_process.cpp.o"
  "CMakeFiles/test_carbon_process.dir/test_carbon_process.cpp.o.d"
  "test_carbon_process"
  "test_carbon_process.pdb"
  "test_carbon_process[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_carbon_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
