# Empty compiler generated dependencies file for test_carbon_process.
# This may be replaced when dependencies are built.
