file(REMOVE_RECURSE
  "CMakeFiles/test_wafer_yield.dir/test_wafer_yield.cpp.o"
  "CMakeFiles/test_wafer_yield.dir/test_wafer_yield.cpp.o.d"
  "test_wafer_yield"
  "test_wafer_yield.pdb"
  "test_wafer_yield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wafer_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
