# Empty compiler generated dependencies file for test_wafer_yield.
# This may be replaced when dependencies are built.
