file(REMOVE_RECURSE
  "CMakeFiles/test_operational_tcdp.dir/test_operational_tcdp.cpp.o"
  "CMakeFiles/test_operational_tcdp.dir/test_operational_tcdp.cpp.o.d"
  "test_operational_tcdp"
  "test_operational_tcdp.pdb"
  "test_operational_tcdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operational_tcdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
