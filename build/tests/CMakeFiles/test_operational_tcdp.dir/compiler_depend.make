# Empty compiler generated dependencies file for test_operational_tcdp.
# This may be replaced when dependencies are built.
