// Unit + property tests for the virtual-source FET models and technology
// cards (paper Table I: I_EFF / I_OFF / BEOL-compatibility ordering).
#include <gtest/gtest.h>

#include "ppatc/common/contract.hpp"
#include "ppatc/device/library.hpp"
#include "ppatc/device/vs_model.hpp"

namespace ppatc::device {
namespace {

using ppatc::units::amperes;
using ppatc::units::in_amperes;
using ppatc::units::in_femtofarads;
using ppatc::units::volts;

const Voltage kVdd = volts(0.7);

TEST(VsModel, RejectsNonPositiveWidth) {
  EXPECT_THROW(VirtualSourceFet(silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 0.0),
               ContractViolation);
  EXPECT_THROW(VirtualSourceFet(silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), -1.0),
               ContractViolation);
}

TEST(VsModel, RejectsSubThermionicSlope) {
  VsParams p = silicon_finfet(Polarity::kNmos, VtFlavor::kRvt);
  p.ss_mv_per_decade = 45.0;  // below the 59 mV/dec limit at 300 K
  EXPECT_THROW(VirtualSourceFet(p, 1.0), ContractViolation);
}

TEST(VsModel, CurrentScalesLinearlyWithWidth) {
  const VsParams card = silicon_finfet(Polarity::kNmos, VtFlavor::kRvt);
  const VirtualSourceFet narrow{card, 1.0};
  const VirtualSourceFet wide{card, 3.0};
  EXPECT_NEAR(in_amperes(wide.on_current(kVdd)), 3.0 * in_amperes(narrow.on_current(kVdd)), 1e-12);
}

TEST(VsModel, DrainCurrentMonotonicInVgs) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 0.9; vgs += 0.05) {
    const double id = in_amperes(fet.drain_current(volts(vgs), kVdd));
    EXPECT_GT(id, prev) << "Id must increase with Vgs at vgs=" << vgs;
    prev = id;
  }
}

TEST(VsModel, DrainCurrentMonotonicInVds) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  double prev = -1.0;
  for (double vds = 0.01; vds <= 0.9; vds += 0.05) {
    const double id = in_amperes(fet.drain_current(kVdd, volts(vds)));
    EXPECT_GE(id, prev) << "Id must not decrease with Vds at vds=" << vds;
    prev = id;
  }
}

TEST(VsModel, ZeroVdsGivesZeroCurrent) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  EXPECT_NEAR(in_amperes(fet.drain_current(kVdd, volts(0.0))), 0.0, 1e-15);
}

TEST(VsModel, ReverseVdsGivesReverseCurrent) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  const double fwd = in_amperes(fet.drain_current(volts(0.7), volts(0.3)));
  const double rev = in_amperes(fet.drain_current(volts(0.7 - 0.3 + 0.7 - 0.7), volts(-0.3)));
  // Source/drain swap: Id(vgs, -vds) = -Id(vgs + vds, vds) evaluated w.r.t.
  // the swapped terminal. Just require the sign to flip and magnitude > 0.
  EXPECT_GT(fwd, 0.0);
  EXPECT_LT(rev, 0.0);
}

TEST(VsModel, PmosMirrorsNmos) {
  const VirtualSourceFet p{silicon_finfet(Polarity::kPmos, VtFlavor::kRvt), 1.0};
  // Conducting PMOS: negative Vgs/Vds -> negative drain current.
  EXPECT_LT(in_amperes(p.drain_current(volts(-0.7), volts(-0.7))), 0.0);
  // Off PMOS at Vgs=0: tiny current.
  EXPECT_LT(in_amperes(p.off_current(kVdd)), 1e-6);
  EXPECT_GT(in_amperes(p.on_current(kVdd)), 1e-5);
}

TEST(VsModel, IeffBetweenIlAndIh) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  const double ih = in_amperes(fet.drain_current(volts(0.7), volts(0.35)));
  const double il = in_amperes(fet.drain_current(volts(0.35), volts(0.7)));
  const double ieff = in_amperes(fet.effective_current(kVdd));
  EXPECT_NEAR(ieff, 0.5 * (ih + il), 1e-12);
  EXPECT_LT(ieff, in_amperes(fet.on_current(kVdd)));
}

TEST(VsModel, SubthresholdSlopeMatchesParameter) {
  VsParams card = silicon_finfet(Polarity::kNmos, VtFlavor::kRvt);
  card.rs_ohm_um = 0.0;  // isolate the exponential region
  const VirtualSourceFet fet{card, 1.0};
  const double i1 = in_amperes(fet.drain_current(volts(0.00), kVdd));
  const double i2 = in_amperes(fet.drain_current(volts(0.10), kVdd));
  const double decades = std::log10(i2 / i1);
  const double ss_measured = 100.0 / decades;  // mV per decade over 100 mV
  // The alpha-blend VT shift softens the slope slightly vs the ideal value.
  EXPECT_NEAR(ss_measured, card.ss_mv_per_decade, 4.0);
}

TEST(VsModel, GateCapacitanceScalesWithWidth) {
  const VsParams card = silicon_finfet(Polarity::kNmos, VtFlavor::kRvt);
  const VirtualSourceFet a{card, 1.0};
  const VirtualSourceFet b{card, 2.0};
  EXPECT_NEAR(2.0 * in_femtofarads(a.gate_capacitance()), in_femtofarads(b.gate_capacitance()),
              1e-9);
}

TEST(VsModel, IdealityFromSlope) {
  const VirtualSourceFet fet{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  // n = SS / (kT/q ln10) = 65 / 59.6 at 300 K.
  EXPECT_NEAR(fet.ideality(), 65.0 / 59.6, 0.01);
  EXPECT_NEAR(fet.thermal_voltage(), 0.02585, 1e-4);
}

// ---- VT flavor ordering (parameterized over polarity) ----------------------

class VtOrdering : public ::testing::TestWithParam<Polarity> {};

TEST_P(VtOrdering, IoffIncreasesFromHvtToSlvt) {
  const Polarity pol = GetParam();
  double prev = 0.0;
  for (const auto vt : {VtFlavor::kHvt, VtFlavor::kRvt, VtFlavor::kLvt, VtFlavor::kSlvt}) {
    const VirtualSourceFet fet{silicon_finfet(pol, vt), 1.0};
    const double ioff = in_amperes(fet.off_current(kVdd));
    EXPECT_GT(ioff, prev) << to_string(vt);
    prev = ioff;
  }
}

TEST_P(VtOrdering, IeffIncreasesFromHvtToSlvt) {
  const Polarity pol = GetParam();
  double prev = 0.0;
  for (const auto vt : {VtFlavor::kHvt, VtFlavor::kRvt, VtFlavor::kLvt, VtFlavor::kSlvt}) {
    const VirtualSourceFet fet{silicon_finfet(pol, vt), 1.0};
    const double ieff = in_amperes(fet.effective_current(kVdd));
    EXPECT_GT(ieff, prev) << to_string(vt);
    prev = ieff;
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolarities, VtOrdering,
                         ::testing::Values(Polarity::kNmos, Polarity::kPmos));

// ---- Table I orderings ------------------------------------------------------

TEST(TableI, SiIoffInAsap7Range) {
  // HVT ~0.1 nA/um ... SLVT ~tens of nA/um at 0.7 V.
  const VirtualSourceFet hvt{silicon_finfet(Polarity::kNmos, VtFlavor::kHvt), 1.0};
  const VirtualSourceFet slvt{silicon_finfet(Polarity::kNmos, VtFlavor::kSlvt), 1.0};
  EXPECT_LT(in_amperes(hvt.off_current(kVdd)), 1e-9);
  EXPECT_GT(in_amperes(hvt.off_current(kVdd)), 1e-12);
  EXPECT_LT(in_amperes(slvt.off_current(kVdd)), 1e-7);
  EXPECT_GT(in_amperes(slvt.off_current(kVdd)), 1e-9);
}

TEST(TableI, CnfetHasHigherIeffThanSi) {
  const VirtualSourceFet cn{cnfet(Polarity::kNmos), 1.0};
  const VirtualSourceFet si{silicon_finfet(Polarity::kNmos, VtFlavor::kRvt), 1.0};
  EXPECT_GT(in_amperes(cn.effective_current(kVdd)), in_amperes(si.effective_current(kVdd)));
}

TEST(TableI, IgzoHasLowestIeff) {
  const VirtualSourceFet igzo{igzo_fet(), 1.0};
  const VirtualSourceFet si{silicon_finfet(Polarity::kNmos, VtFlavor::kHvt), 1.0};
  EXPECT_LT(in_amperes(igzo.effective_current(kVdd)), in_amperes(si.effective_current(kVdd)));
}

TEST(TableI, IgzoHasUltraLowIoff) {
  const VirtualSourceFet igzo{igzo_fet(), 1.0};
  const VirtualSourceFet si_hvt{silicon_finfet(Polarity::kNmos, VtFlavor::kHvt), 1.0};
  EXPECT_LT(in_amperes(igzo.off_current(kVdd)), 1e-3 * in_amperes(si_hvt.off_current(kVdd)));
}

TEST(TableI, MetallicCntsDegradeIoff) {
  CnfetOptions clean;
  clean.metallic_fraction = 0.0;
  CnfetOptions dirty;
  dirty.metallic_fraction = 1e-3;
  const VirtualSourceFet fc{cnfet(Polarity::kNmos, clean), 1.0};
  const VirtualSourceFet fd{cnfet(Polarity::kNmos, dirty), 1.0};
  EXPECT_GT(in_amperes(fd.off_current(kVdd)), 10.0 * in_amperes(fc.off_current(kVdd)));
  // On-current barely changes.
  EXPECT_NEAR(in_amperes(fd.on_current(kVdd)) / in_amperes(fc.on_current(kVdd)), 1.0, 0.02);
}

TEST(TableI, AsGrownMetallicFractionIsWorstAllowed) {
  CnfetOptions as_grown;
  as_grown.metallic_fraction = 1.0 / 3.0;
  EXPECT_NO_THROW(cnfet(Polarity::kNmos, as_grown));
  CnfetOptions invalid;
  invalid.metallic_fraction = 0.5;
  EXPECT_THROW(cnfet(Polarity::kNmos, invalid), ContractViolation);
}

TEST(TableI, BeolCompatibility) {
  EXPECT_FALSE(beol_compatible(silicon_finfet(Polarity::kNmos, VtFlavor::kRvt)));
  EXPECT_TRUE(beol_compatible(cnfet(Polarity::kNmos)));
  EXPECT_TRUE(beol_compatible(igzo_fet()));
}

TEST(TableI, ProcessTemperatures) {
  using ppatc::units::in_kelvin;
  EXPECT_GT(in_kelvin(process_temperature(silicon_finfet(Polarity::kNmos, VtFlavor::kRvt))),
            273.15 + 1000.0);
  EXPECT_LT(in_kelvin(process_temperature(cnfet(Polarity::kNmos))), 273.15 + 300.0);
  EXPECT_LT(in_kelvin(process_temperature(igzo_fet())), 273.15 + 300.0);
}

TEST(Library, FlavorNames) {
  EXPECT_STREQ(to_string(VtFlavor::kHvt), "HVT");
  EXPECT_STREQ(to_string(VtFlavor::kRvt), "RVT");
  EXPECT_STREQ(to_string(VtFlavor::kLvt), "LVT");
  EXPECT_STREQ(to_string(VtFlavor::kSlvt), "SLVT");
}

TEST(Library, IgzoMatchesMeasuredCard) {
  const VsParams p = igzo_fet();
  EXPECT_DOUBLE_EQ(p.mobility_cm2_per_vs, 1.0);   // paper: 1 cm^2/V.s
  EXPECT_DOUBLE_EQ(p.ss_mv_per_decade, 90.0);     // paper: 90 mV/dec
  EXPECT_DOUBLE_EQ(units::in_nanometres(p.gate_length), 44.0);       // paper: 44 nm gate length
  EXPECT_EQ(p.polarity, Polarity::kNmos);         // IGZO is n-type only
}

TEST(Library, CnfetGateLengthMatchesPaper) {
  EXPECT_DOUBLE_EQ(units::in_nanometres(cnfet(Polarity::kNmos).gate_length), 30.0);
}

}  // namespace
}  // namespace ppatc::device
