// Cross-module integration tests: the paper's headline results, end to end.
#include <gtest/gtest.h>

#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/core/system.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;

const core::Table2& t2() {
  static const core::Table2 table = core::table2(workloads::matmult_int());
  return table;
}

carbon::OperationalScenario us_scenario() {
  carbon::OperationalScenario s;
  s.use_intensity = carbon::DiurnalIntensity::flat(carbon::grids::us().intensity);
  return s;
}

TEST(Headline, M3dIs1p02xMoreCarbonEfficientAt24Months) {
  // The paper's abstract: tCDP(all-Si) / tCDP(M3D) = 1.02x at 24 months.
  const double ratio = carbon::tcdp_ratio(t2().all_si.carbon_profile(),
                                          t2().m3d.carbon_profile(), us_scenario(),
                                          units::months(24.0));
  EXPECT_NEAR(ratio, 1.02, 0.01);
}

TEST(Headline, EmbodiedDominatesUntil14And19Months) {
  // Paper Fig. 5: C_embodied dominates until ~14 months (all-Si) and
  // ~19 months (M3D).
  const auto si_end = carbon::embodied_dominance_end(t2().all_si.carbon_profile(), us_scenario(),
                                                     units::months(48.0));
  const auto m3d_end = carbon::embodied_dominance_end(t2().m3d.carbon_profile(), us_scenario(),
                                                      units::months(48.0));
  ASSERT_TRUE(si_end.has_value());
  ASSERT_TRUE(m3d_end.has_value());
  EXPECT_NEAR(in_months(*si_end), 14.0, 1.0);
  EXPECT_NEAR(in_months(*m3d_end), 19.0, 1.0);
}

TEST(Headline, TotalCarbonCrossoverExists) {
  // M3D starts with more total carbon (embodied) and ends with less
  // (operational savings); the designs cross within the product horizon.
  const auto cross =
      carbon::total_carbon_crossover(t2().m3d.carbon_profile(), t2().all_si.carbon_profile(),
                                     us_scenario(), units::months(36.0));
  ASSERT_TRUE(cross.has_value());
  // Our calibrated models cross at ~18 months. (The paper's prose says 11
  // months, which is inconsistent with its own Table II rows — from 3.63 g vs
  // 3.11 g embodied and a 1.25 mW power delta the crossover algebraically
  // falls at ~18 months; see EXPERIMENTS.md.)
  EXPECT_GT(in_months(*cross), 12.0);
  EXPECT_LT(in_months(*cross), 24.0);
}

TEST(Headline, TcdpRatioSeriesMatchesFig5Shape) {
  const auto si = t2().all_si.carbon_profile();
  const auto m3d = t2().m3d.carbon_profile();
  const auto s = us_scenario();
  // Month 1: M3D worse (embodied-dominated). Month 24: M3D better.
  EXPECT_GT(carbon::tcdp_ratio(m3d, si, s, units::months(1.0)), 1.10);
  EXPECT_LT(carbon::tcdp_ratio(m3d, si, s, units::months(24.0)), 1.0);
  // The ratio falls monotonically toward the EDP limit.
  double prev = 10.0;
  for (int m = 1; m <= 48; m += 3) {
    const double r = carbon::tcdp_ratio(m3d, si, s, units::months(m));
    EXPECT_LT(r, prev);
    prev = r;
  }
  const double edp_limit = carbon::asymptotic_edp_ratio(m3d, si, s);
  EXPECT_GT(prev, edp_limit);
  EXPECT_NEAR(carbon::tcdp_ratio(m3d, si, s, units::months(600.0)), edp_limit, 0.01);
}

TEST(Fig6, NominalIsolinePassesNearUnitScales) {
  // At 24 months the unscaled M3D design has tCDP ratio just below 1, so the
  // isoline at x=1 must sit slightly above y=1.
  const auto y = carbon::isoline_energy_scale(t2().m3d.carbon_profile(),
                                              t2().all_si.carbon_profile(), us_scenario(),
                                              units::months(24.0), 1.0);
  ASSERT_TRUE(y.has_value());
  EXPECT_GT(*y, 1.0);
  EXPECT_LT(*y, 1.2);
}

TEST(Fig6, VariantsBracketTheNominalIsoline) {
  const auto variants =
      carbon::isoline_variants(t2().m3d.carbon_profile(), t2().all_si.carbon_profile(),
                               us_scenario(), units::months(24.0));
  ASSERT_EQ(variants.size(), 7u);
  // All variants produce at least some isoline points in the plotted box.
  for (const auto& v : variants) {
    int defined = 0;
    for (const auto& pt : v.isoline) {
      if (pt.energy_scale) ++defined;
    }
    EXPECT_GT(defined, 0) << v.label;
  }
}

TEST(Uncertainty, RobustVerdictOnTheCaseStudy) {
  // With +/-20% embodied uncertainty, +/-6 months lifetime and +/-3x CI the
  // 24-month comparison is indeterminate — exactly the paper's point about
  // needing robust regions rather than point estimates.
  carbon::UncertainProfile m3d;
  m3d.embodied_per_good_die_g =
      carbon::Interval::factor(in_grams_co2e(t2().m3d.embodied_per_good_die), 1.2);
  m3d.operational_power_w = carbon::Interval::point(in_watts(t2().m3d.operational_power));
  m3d.execution_time = t2().m3d.execution_time;
  carbon::UncertainProfile si;
  si.embodied_per_good_die_g =
      carbon::Interval::factor(in_grams_co2e(t2().all_si.embodied_per_good_die), 1.2);
  si.operational_power_w = carbon::Interval::point(in_watts(t2().all_si.operational_power));
  si.execution_time = t2().all_si.execution_time;
  carbon::UncertainScenario scen;
  scen.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
  scen.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);

  EXPECT_EQ(carbon::robust_compare(m3d, si, scen), carbon::RobustVerdict::kIndeterminate);

  // Monte Carlo still quantifies the odds.
  const auto mc = carbon::monte_carlo_tcdp_ratio(m3d, si, scen, 4000, 2026);
  EXPECT_GT(mc.probability_candidate_wins, 0.05);
  EXPECT_LT(mc.probability_candidate_wins, 0.95);
}

TEST(Uncertainty, LongLifetimeMakesM3dRobustWinner) {
  // At 5x the lifetime, the operational savings dominate every corner of a
  // modest uncertainty box.
  carbon::UncertainProfile m3d;
  m3d.embodied_per_good_die_g =
      carbon::Interval::factor(in_grams_co2e(t2().m3d.embodied_per_good_die), 1.1);
  m3d.operational_power_w = carbon::Interval::point(in_watts(t2().m3d.operational_power));
  m3d.execution_time = t2().m3d.execution_time;
  carbon::UncertainProfile si;
  si.embodied_per_good_die_g =
      carbon::Interval::factor(in_grams_co2e(t2().all_si.embodied_per_good_die), 1.1);
  si.operational_power_w = carbon::Interval::point(in_watts(t2().all_si.operational_power));
  si.execution_time = t2().all_si.execution_time;
  carbon::UncertainScenario scen;
  scen.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 1.5);
  scen.lifetime_months = carbon::Interval::plus_minus(120.0, 12.0);

  EXPECT_EQ(carbon::robust_compare(m3d, si, scen),
            carbon::RobustVerdict::kCandidateAlwaysWins);
}

TEST(CrossWorkload, AllKernelsFlowThroughTheFullPipeline) {
  // Every Embench-style kernel (at reduced scale) runs through evaluate()
  // and produces self-consistent PPAtC numbers.
  const workloads::Workload kernels[] = {workloads::crc32(2), workloads::edn(2),
                                         workloads::ud(2),    workloads::aha_mont(16),
                                         workloads::sglib_list(2), workloads::statemate(2)};
  for (const auto& w : kernels) {
    const auto ev = core::evaluate(core::SystemSpec::m3d(), w);
    EXPECT_GT(ev.cycles, 0u) << w.name;
    EXPECT_GT(in_picojoules(ev.memory_energy_per_cycle), 1.0) << w.name;
    EXPECT_LT(in_picojoules(ev.memory_energy_per_cycle), 100.0) << w.name;
    EXPECT_GT(in_milliwatts(ev.operational_power), 1.0) << w.name;
  }
}

TEST(CrossWorkload, MemoryBoundKernelsBurnMoreMemoryEnergyPerCycle) {
  // matmult (heavy loads) vs aha-mont (register-dominated): the memory
  // energy per cycle must reflect the access density.
  const auto mem_heavy = core::evaluate(core::SystemSpec::all_si(), workloads::matmult_int(2));
  const auto reg_heavy = core::evaluate(core::SystemSpec::all_si(), workloads::aha_mont(64));
  EXPECT_GT(in_picojoules(mem_heavy.memory_energy_per_cycle),
            in_picojoules(reg_heavy.memory_energy_per_cycle));
}

}  // namespace
}  // namespace ppatc
