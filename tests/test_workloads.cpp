// Tests for the Embench-style workload suite: every kernel's ISS execution
// must reproduce its native reference checksum exactly, with sane statistics.
#include <gtest/gtest.h>

#include "ppatc/isa/assembler.hpp"
#include "ppatc/workloads/workload.hpp"

namespace ppatc::workloads {
namespace {

// Small scales keep the suite fast; full scales are covered by one test and
// the benches.
class WorkloadChecksum : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadChecksum, IssMatchesNativeReference) {
  const Workload& w = GetParam();
  const RunOutcome r = run_workload(w);
  EXPECT_TRUE(r.halted) << w.name;
  EXPECT_TRUE(r.checksum_ok) << w.name << ": got " << std::hex << r.checksum << ", want "
                             << w.expected_checksum;
}

TEST_P(WorkloadChecksum, StatisticsAreConsistent) {
  const Workload& w = GetParam();
  const RunOutcome r = run_workload(w);
  // One fetch per retired 16-bit instruction plus one extra per 32-bit BL.
  EXPECT_GE(r.stats.fetches, r.instructions) << w.name;
  EXPECT_LE(r.stats.fetches, 2 * r.instructions) << w.name;
  // Cycles >= instructions (every instruction costs at least one cycle).
  EXPECT_GE(r.cycles, r.instructions) << w.name;
  // Data-side splits add up.
  EXPECT_EQ(r.stats.data_reads, r.stats.program_reads + r.stats.data_mem_reads) << w.name;
  // Every workload writes its exit code (1 MMIO write minimum).
  EXPECT_GE(r.stats.data_writes, r.stats.data_mem_writes + 1) << w.name;
}

INSTANTIATE_TEST_SUITE_P(SmallScale, WorkloadChecksum,
                         ::testing::Values(matmult_int(2), crc32(2), edn(2), ud(2), aha_mont(16),
                                           sglib_list(2), statemate(2), primecount(2),
                                           qsort_ints(2), fib(10)),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Workloads, DeterministicAcrossRuns) {
  const Workload w = crc32(3);
  const RunOutcome a = run_workload(w);
  const RunOutcome b = run_workload(w);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats.data_reads, b.stats.data_reads);
}

TEST(Workloads, CyclesScaleLinearlyWithRepeats) {
  const RunOutcome r2 = run_workload(edn(2));
  const RunOutcome r8 = run_workload(edn(8));
  // Subtract the shared init cost: the incremental cost per repeat is flat.
  const double per_rep = static_cast<double>(r8.cycles - r2.cycles) / 6.0;
  const double estimate_r2 = static_cast<double>(r2.cycles) - 2.0 * per_rep;  // init estimate
  EXPECT_GT(per_rep, 0.0);
  EXPECT_GE(estimate_r2, 0.0);
  const RunOutcome r4 = run_workload(edn(4));
  EXPECT_NEAR(static_cast<double>(r4.cycles), estimate_r2 + 4.0 * per_rep,
              0.01 * static_cast<double>(r4.cycles));
}

TEST(Workloads, DefaultMatmultHitsPaperCycleScale) {
  // The paper's matmult-int run takes 20,047,348 cycles; our default scale
  // must land within 1%.
  const RunOutcome r = run_workload(matmult_int());
  EXPECT_TRUE(r.checksum_ok);
  EXPECT_NEAR(static_cast<double>(r.cycles), 20047348.0, 0.01 * 20047348.0);
}

TEST(Workloads, SuiteContainsNineKernels) {
  const auto suite = embench_suite();
  EXPECT_EQ(suite.size(), 9u);
  for (const auto& w : suite) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_FALSE(w.assembly.empty());
    EXPECT_FALSE(w.description.empty());
  }
}

TEST(Workloads, FibMatchesClosedForm) {
  EXPECT_EQ(run_workload(fib(1)).checksum, 1u);
  EXPECT_EQ(run_workload(fib(2)).checksum, 1u);
  EXPECT_EQ(run_workload(fib(10)).checksum, 55u);
  EXPECT_EQ(run_workload(fib(15)).checksum, 610u);
}

TEST(Workloads, MatmultReadsDominateWrites) {
  // Matrix multiply reads two operands per MAC but writes once per output:
  // reads must far exceed writes.
  const RunOutcome r = run_workload(matmult_int(2));
  EXPECT_GT(r.stats.data_mem_reads, 5 * r.stats.data_mem_writes);
}

TEST(Workloads, UdExercisesSoftwareDivision) {
  // The LU kernel's cycle count per repeat is far above the matrix size
  // because of the 32-iteration shift-subtract divides.
  const RunOutcome r = run_workload(ud(1));
  EXPECT_TRUE(r.checksum_ok);
  EXPECT_GT(r.cycles, 10000u);  // 10x10 matrix, but heavy on division
}

TEST(Workloads, QsortProducesSortedMemory) {
  // Beyond the checksum: the data memory must actually be sorted.
  const Workload w = qsort_ints(1);
  const isa::Program p = isa::assemble(w.assembly);
  isa::Bus bus;
  bus.load_program(0, p.bytes);
  isa::Cpu cpu{bus};
  cpu.reset(p.entry, isa::kDataBase + isa::kDataSize - 16);
  (void)cpu.run(50'000'000);
  ASSERT_TRUE(bus.halted());
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const std::uint32_t v = bus.peek32(0x2000'0000u + 4 * i);
    EXPECT_GE(v, prev) << "index " << i;
    prev = v;
  }
}

TEST(Workloads, PrimecountMatchesKnownPi) {
  // pi(4096) = 564 primes below 4096.
  EXPECT_EQ(run_workload(primecount(1)).checksum, 564u);
}

TEST(Workloads, LcgMatchesConstants) {
  // Golden values for the shared generator.
  std::uint32_t x = 12345;
  x = lcg_next(x);
  EXPECT_EQ(x, 12345u * 1664525u + 1013904223u);
}

}  // namespace
}  // namespace ppatc::workloads
