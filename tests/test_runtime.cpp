// Tests for the ppatc::runtime parallel-evaluation layer: pool primitives
// (parallel_for / parallel_reduce / parallel_invoke, chunking, exceptions)
// and the thread-count invariance of every ported hot path — Monte Carlo,
// tcdp_map / isoline, design-space optimize, and batch SPICE
// characterization must be bit-identical at 1 and N threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/core/optimize.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;

TEST(Runtime, SplitMix64MatchesReferenceVectors) {
  // splitmix64(s) equals the first output of the canonical SplitMix64 stream
  // seeded with s, so splitmix64(0) and splitmix64(gamma) reproduce the first
  // two outputs of the stream seeded with 0.
  EXPECT_EQ(runtime::splitmix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(runtime::splitmix64(0x9E3779B97F4A7C15ULL), 0x6E789E6AA1B965F4ULL);
}

TEST(Runtime, ChunkCountCoversRange) {
  EXPECT_EQ(runtime::chunk_count(0, 4), 0u);
  EXPECT_EQ(runtime::chunk_count(1, 4), 1u);
  EXPECT_EQ(runtime::chunk_count(4, 4), 1u);
  EXPECT_EQ(runtime::chunk_count(5, 4), 2u);
  EXPECT_EQ(runtime::chunk_count(8, 4), 2u);
}

TEST(Runtime, ThreadCountRespectsOverride) {
  runtime::set_thread_count(3);
  EXPECT_EQ(runtime::thread_count(), 3u);
  runtime::set_thread_count(1);
  EXPECT_EQ(runtime::thread_count(), 1u);
  runtime::set_thread_count(0);  // back to the default
  EXPECT_GE(runtime::thread_count(), 1u);
}

TEST(Runtime, ParallelForVisitsEveryIndexExactlyOnce) {
  runtime::set_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Runtime, ParallelForEmptyRangeDoesNothing) {
  runtime::set_thread_count(4);
  std::atomic<int> calls{0};
  runtime::parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Runtime, ParallelForFewerItemsThanChunks) {
  runtime::set_thread_count(8);  // more workers than items
  std::vector<std::atomic<int>> hits(3);
  runtime::parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runtime, ParallelForChunksDecompositionIsThreadCountInvariant) {
  for (const std::size_t threads : {1u, 4u}) {
    runtime::set_thread_count(threads);
    std::vector<runtime::ChunkRange> seen(runtime::chunk_count(10, 4));
    runtime::parallel_for_chunks(10, 4, [&](const runtime::ChunkRange& r) { seen[r.index] = r; });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].begin, 0u);
    EXPECT_EQ(seen[0].end, 4u);
    EXPECT_EQ(seen[1].begin, 4u);
    EXPECT_EQ(seen[1].end, 8u);
    EXPECT_EQ(seen[2].begin, 8u);
    EXPECT_EQ(seen[2].end, 10u);
  }
}

TEST(Runtime, ParallelReduceMatchesSerialSum) {
  runtime::set_thread_count(4);
  constexpr std::size_t kN = 12345;
  const double sum = runtime::parallel_reduce(
      kN, 128, 0.0,
      [](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) s += static_cast<double>(i);
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(Runtime, ParallelReduceEmptyRangeReturnsInit) {
  const double r = runtime::parallel_reduce(
      0, 16, 42.0, [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(Runtime, ParallelReduceIsBitIdenticalAcrossThreadCounts) {
  // Sum of values whose FP addition is order-sensitive; the in-order chunk
  // combine must make the result depend only on the grain.
  auto run = [] {
    return runtime::parallel_reduce(
        100000, 1024, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += 1.0 / static_cast<double>(i + 1) * (i % 3 == 0 ? 1e-8 : 1e8);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  runtime::set_thread_count(1);
  const double serial = run();
  runtime::set_thread_count(4);
  const double parallel = run();
  EXPECT_EQ(serial, parallel);  // bitwise, not NEAR
}

TEST(Runtime, ExceptionPropagatesToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    runtime::set_thread_count(threads);
    EXPECT_THROW(runtime::parallel_for(100,
                                       [](std::size_t i) {
                                         if (i == 37) throw std::runtime_error("boom");
                                       }),
                 std::runtime_error);
  }
}

TEST(Runtime, PoolSurvivesAnExceptionAndKeepsWorking) {
  runtime::set_thread_count(4);
  EXPECT_THROW(runtime::parallel_for(8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> calls{0};
  runtime::parallel_for(64, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64);
}

TEST(Runtime, ParallelInvokeRunsAllTasks) {
  runtime::set_thread_count(4);
  std::atomic<int> a{0}, b{0}, c{0};
  runtime::parallel_invoke([&] { a = 1; }, [&] { b = 2; }, [&] { c = 3; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
  EXPECT_EQ(c.load(), 3);
}

TEST(Runtime, NestedParallelRegionsRunInlineWithoutDeadlock) {
  runtime::set_thread_count(4);
  std::atomic<int> inner_total{0};
  runtime::parallel_for(8, [&](std::size_t) {
    runtime::parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

// ---- thread-count invariance of the ported hot paths -----------------------

carbon::UncertainProfile uprofile(double emb_g, double factor, double p_mw) {
  carbon::UncertainProfile p;
  p.embodied_per_good_die_g = carbon::Interval::factor(emb_g, factor);
  p.operational_power_w = carbon::Interval::point(p_mw * 1e-3);
  p.execution_time = seconds(0.040);
  return p;
}

carbon::UncertainScenario uscenario() {
  carbon::UncertainScenario s;
  s.ci_use_g_per_kwh = carbon::Interval::plus_minus(380.0, 50.0);
  s.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
  return s;
}

TEST(RuntimeInvariance, MonteCarloIsBitIdenticalAcrossThreadCounts) {
  const auto c = uprofile(3.6, 1.2, 8.5);
  const auto b = uprofile(3.1, 1.2, 9.7);
  // 10000 samples spans multiple 4096-sample chunks.
  runtime::set_thread_count(1);
  const auto serial = carbon::monte_carlo_tcdp_ratio(c, b, uscenario(), 10000, 42);
  runtime::set_thread_count(4);
  const auto parallel = carbon::monte_carlo_tcdp_ratio(c, b, uscenario(), 10000, 42);
  EXPECT_EQ(serial.mean, parallel.mean);
  EXPECT_EQ(serial.p05, parallel.p05);
  EXPECT_EQ(serial.p50, parallel.p50);
  EXPECT_EQ(serial.p95, parallel.p95);
  EXPECT_EQ(serial.probability_candidate_wins, parallel.probability_candidate_wins);
}

carbon::SystemCarbonProfile sprofile(const std::string& name, double emb_g, double p_mw) {
  carbon::SystemCarbonProfile p;
  p.name = name;
  p.embodied_per_good_die = grams_co2e(emb_g);
  p.operational_power = milliwatts(p_mw);
  p.execution_time = milliseconds(40.0);
  return p;
}

TEST(RuntimeInvariance, TcdpMapAndIsolineAreBitIdenticalAcrossThreadCounts) {
  const auto cand = sprofile("m3d", 3.6, 8.5);
  const auto base = sprofile("si", 3.1, 9.7);
  carbon::OperationalScenario scen;
  scen.use_intensity = carbon::DiurnalIntensity::flat(carbon::grids::us().intensity);

  runtime::set_thread_count(1);
  const auto map1 = carbon::tcdp_map(cand, base, scen, months(24.0));
  const auto line1 = carbon::tcdp_isoline(cand, base, scen, months(24.0));
  runtime::set_thread_count(4);
  const auto map4 = carbon::tcdp_map(cand, base, scen, months(24.0));
  const auto line4 = carbon::tcdp_isoline(cand, base, scen, months(24.0));

  ASSERT_EQ(map1.ratio.size(), map4.ratio.size());
  for (std::size_t y = 0; y < map1.ratio.size(); ++y) {
    ASSERT_EQ(map1.ratio[y].size(), map4.ratio[y].size());
    for (std::size_t x = 0; x < map1.ratio[y].size(); ++x) {
      EXPECT_EQ(map1.ratio[y][x], map4.ratio[y][x]) << "y=" << y << " x=" << x;
    }
  }
  ASSERT_EQ(line1.size(), line4.size());
  for (std::size_t i = 0; i < line1.size(); ++i) {
    EXPECT_EQ(line1[i].embodied_scale, line4[i].embodied_scale);
    ASSERT_EQ(line1[i].energy_scale.has_value(), line4[i].energy_scale.has_value());
    if (line1[i].energy_scale) EXPECT_EQ(*line1[i].energy_scale, *line4[i].energy_scale);
  }
}

TEST(RuntimeInvariance, OptimizeIsBitIdenticalAcrossThreadCounts) {
  core::DesignSpace space;
  space.vt_flavors = {device::VtFlavor::kRvt};
  space.clocks = {megahertz(400), megahertz(500)};
  core::OptimizationGoal goal;
  goal.scenario.use_intensity = carbon::DiurnalIntensity::flat(carbon::grids::us().intensity);
  const auto workload = workloads::crc32(1);

  runtime::set_thread_count(1);
  const auto serial = core::optimize(space, workload, goal);
  runtime::set_thread_count(4);
  const auto parallel = core::optimize(space, workload, goal);

  ASSERT_EQ(serial.all_points.size(), parallel.all_points.size());
  for (std::size_t i = 0; i < serial.all_points.size(); ++i) {
    const auto& a = serial.all_points[i];
    const auto& b = parallel.all_points[i];
    EXPECT_EQ(a.spec.tech, b.spec.tech);
    EXPECT_EQ(a.spec.fclk, b.spec.fclk);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.meets_deadline, b.meets_deadline);
    EXPECT_EQ(a.tcdp, b.tcdp);
    EXPECT_EQ(a.total_carbon, b.total_carbon);
    EXPECT_EQ(a.evaluation.execution_time, b.evaluation.execution_time);
  }
  ASSERT_EQ(serial.ranked.size(), parallel.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].tcdp, parallel.ranked[i].tcdp);
  }
  ASSERT_EQ(serial.pareto.size(), parallel.pareto.size());
  for (std::size_t i = 0; i < serial.pareto.size(); ++i) {
    EXPECT_EQ(serial.pareto[i].tcdp, parallel.pareto[i].tcdp);
  }
}

TEST(RuntimeInvariance, CharacterizeBatchMatchesIndividualRuns) {
  const std::vector<memsys::CellSpec> cells = {memsys::all_si_cell(), memsys::m3d_igzo_cnfet_cell()};
  runtime::set_thread_count(1);
  const auto one_by_one_0 = memsys::characterize(cells[0]);
  const auto one_by_one_1 = memsys::characterize(cells[1]);
  runtime::set_thread_count(4);
  const auto batch = memsys::characterize_batch(cells);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].write_delay, one_by_one_0.write_delay);
  EXPECT_EQ(batch[0].read_delay, one_by_one_0.read_delay);
  EXPECT_EQ(batch[0].retention, one_by_one_0.retention);
  EXPECT_EQ(batch[1].write_delay, one_by_one_1.write_delay);
  EXPECT_EQ(batch[1].read_delay, one_by_one_1.read_delay);
  EXPECT_EQ(batch[1].retention, one_by_one_1.retention);
}

// ---- Pareto front: O(n log n) sweep vs the reference quadratic scan ---------

core::DesignPoint dpoint(double time_s, double carbon_g, bool feasible = true) {
  core::DesignPoint p;
  p.evaluation.execution_time = seconds(time_s);
  p.total_carbon = grams_co2e(carbon_g);
  p.feasible = feasible;
  return p;
}

// The seed implementation's all-pairs dominance scan, kept as the semantic
// reference for tie handling.
std::vector<core::DesignPoint> naive_pareto(const std::vector<core::DesignPoint>& points) {
  std::vector<core::DesignPoint> front;
  for (const auto& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const auto& q : points) {
      if (!q.feasible || &q == &p) continue;
      const bool no_worse = q.evaluation.execution_time <= p.evaluation.execution_time &&
                            q.total_carbon <= p.total_carbon;
      const bool strictly_better = q.evaluation.execution_time < p.evaluation.execution_time ||
                                   q.total_carbon < p.total_carbon;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  std::sort(front.begin(), front.end(), [](const core::DesignPoint& a, const core::DesignPoint& b) {
    if (a.evaluation.execution_time != b.evaluation.execution_time) {
      return a.evaluation.execution_time < b.evaluation.execution_time;
    }
    return a.total_carbon < b.total_carbon;
  });
  return front;
}

void expect_same_front(const std::vector<core::DesignPoint>& points) {
  const auto fast = core::pareto_front(points);
  const auto slow = naive_pareto(points);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].evaluation.execution_time, slow[i].evaluation.execution_time) << i;
    EXPECT_EQ(fast[i].total_carbon, slow[i].total_carbon) << i;
  }
}

TEST(ParetoFront, MatchesNaiveScanOnGeneralSet) {
  expect_same_front({dpoint(1.0, 9.0), dpoint(2.0, 5.0), dpoint(3.0, 2.0), dpoint(2.5, 6.0),
                     dpoint(1.5, 9.5), dpoint(4.0, 1.0), dpoint(0.5, 20.0)});
}

TEST(ParetoFront, KeepsExactDuplicates) {
  // Identical (time, carbon) pairs do not dominate each other: both stay.
  expect_same_front({dpoint(1.0, 5.0), dpoint(1.0, 5.0), dpoint(2.0, 1.0)});
}

TEST(ParetoFront, EqualTimeTiesKeepOnlyMinCarbon) {
  expect_same_front({dpoint(1.0, 5.0), dpoint(1.0, 4.0), dpoint(1.0, 4.0), dpoint(2.0, 3.0)});
}

TEST(ParetoFront, EqualCarbonAtLaterTimeIsDominated) {
  expect_same_front({dpoint(1.0, 5.0), dpoint(2.0, 5.0), dpoint(3.0, 4.0)});
}

TEST(ParetoFront, SkipsInfeasiblePoints) {
  expect_same_front({dpoint(1.0, 5.0), dpoint(0.5, 0.5, /*feasible=*/false), dpoint(2.0, 3.0)});
}

TEST(ParetoFront, EmptyAndSingleton) {
  expect_same_front({});
  expect_same_front({dpoint(1.0, 1.0)});
  expect_same_front({dpoint(1.0, 1.0, /*feasible=*/false)});
}

TEST(ParetoFront, RandomizedAgreementWithReference) {
  // Deterministic pseudo-random point clouds with heavy tie density (values
  // snapped to a coarse lattice) to stress the group handling.
  std::uint64_t state = 12345;
  auto next = [&] {
    state = runtime::splitmix64(state);
    return static_cast<double>(state % 8) * 0.5 + 0.5;
  };
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::DesignPoint> points;
    for (int i = 0; i < 40; ++i) points.push_back(dpoint(next(), next(), next() > 1.0));
    expect_same_front(points);
  }
}

}  // namespace
}  // namespace ppatc
