// Tests for the water/cost resource models and the design-space optimizer.
#include <gtest/gtest.h>

#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/resources.hpp"
#include "ppatc/core/optimize.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;

// ---- water ------------------------------------------------------------------

TEST(Water, FullFlowLandsInLcaRange) {
  // Semiconductor LCAs report several cubic metres of UPW per wafer.
  const auto table = carbon::WaterTable::typical();
  const double si = carbon::water_litres_per_wafer(carbon::all_si_7nm_flow(), table);
  EXPECT_GT(si, 3000.0);
  EXPECT_LT(si, 20000.0);
}

TEST(Water, M3dUsesMoreWaterThanAllSi) {
  const auto table = carbon::WaterTable::typical();
  const double si = carbon::water_litres_per_wafer(carbon::all_si_7nm_flow(), table);
  const double m3d = carbon::water_litres_per_wafer(carbon::m3d_igzo_cnfet_flow(), table);
  EXPECT_GT(m3d, si);          // more steps -> more water
  EXPECT_LT(m3d, 2.0 * si);    // but not absurdly more
}

TEST(Water, PerGoodDieAccountingMatchesEq5Shape) {
  const auto table = carbon::WaterTable::typical();
  const auto flow = carbon::all_si_7nm_flow();
  const double per_wafer = carbon::water_litres_per_wafer(flow, table);
  EXPECT_NEAR(carbon::water_litres_per_good_die(flow, table, 299127, 0.9),
              per_wafer / (299127.0 * 0.9), 1e-12);
  EXPECT_THROW((void)carbon::water_litres_per_good_die(flow, table, 0, 0.9), ContractViolation);
  EXPECT_THROW((void)carbon::water_litres_per_good_die(flow, table, 100, 0.0), ContractViolation);
}

TEST(Water, WetStepsDominate) {
  const auto table = carbon::WaterTable::typical();
  EXPECT_GT(table.litres(carbon::ProcessArea::kWetEtch, carbon::LithoClass::kNone),
            table.litres(carbon::ProcessArea::kDryEtch, carbon::LithoClass::kNone));
  EXPECT_GT(table.litres(carbon::ProcessArea::kMetallization, carbon::LithoClass::kNone),
            table.litres(carbon::ProcessArea::kMetrology, carbon::LithoClass::kNone));
}

TEST(Water, TableIsAdjustable) {
  auto table = carbon::WaterTable::typical();
  table.set_litres(carbon::ProcessArea::kWetEtch, 0.0);
  const double reduced = carbon::water_litres_per_wafer(carbon::all_si_7nm_flow(), table);
  const double baseline =
      carbon::water_litres_per_wafer(carbon::all_si_7nm_flow(), carbon::WaterTable::typical());
  EXPECT_LT(reduced, baseline);
  EXPECT_THROW(table.set_litres(carbon::ProcessArea::kDryEtch, -1.0), ContractViolation);
}

// ---- cost -------------------------------------------------------------------

TEST(Cost, WaferCostInFoundryRange) {
  const auto table = carbon::CostTable::typical();
  const double si = carbon::cost_dollars_per_wafer(carbon::all_si_7nm_flow(), table);
  // Leading-edge 7 nm wafers are thousands of dollars.
  EXPECT_GT(si, 4000.0);
  EXPECT_LT(si, 12000.0);
}

TEST(Cost, M3dCostsMorePerWaferButScalesPerDie) {
  const auto table = carbon::CostTable::typical();
  const double si_wafer = carbon::cost_dollars_per_wafer(carbon::all_si_7nm_flow(), table);
  const double m3d_wafer = carbon::cost_dollars_per_wafer(carbon::m3d_igzo_cnfet_flow(), table);
  EXPECT_GT(m3d_wafer, si_wafer);
  // Per good die (paper's Table II die counts and yields): the M3D design's
  // smaller die claws back much of the wafer-cost premium.
  const double si_die =
      carbon::cost_dollars_per_good_die(carbon::all_si_7nm_flow(), table, 299127, 0.9);
  const double m3d_die =
      carbon::cost_dollars_per_good_die(carbon::m3d_igzo_cnfet_flow(), table, 606238, 0.5);
  EXPECT_LT(m3d_die / si_die, m3d_wafer / si_wafer);
}

TEST(Cost, EuvExposuresDominateBeolCost) {
  const auto table = carbon::CostTable::typical();
  EXPECT_GT(table.dollars(carbon::ProcessArea::kLithography, carbon::LithoClass::kEuv36nm),
            2.0 * table.dollars(carbon::ProcessArea::kLithography,
                                carbon::LithoClass::kDuv193i64nm));
}

TEST(Cost, SettersValidate) {
  auto table = carbon::CostTable::typical();
  EXPECT_THROW(table.set_dollars(carbon::ProcessArea::kLithography, 1.0), ContractViolation);
  EXPECT_THROW(table.set_litho_dollars(carbon::LithoClass::kNone, 1.0), ContractViolation);
  EXPECT_THROW(table.set_dollars(carbon::ProcessArea::kDryEtch, -1.0), ContractViolation);
  table.set_litho_dollars(carbon::LithoClass::kEuv36nm, 200.0);
  EXPECT_DOUBLE_EQ(
      table.dollars(carbon::ProcessArea::kLithography, carbon::LithoClass::kEuv36nm), 200.0);
}

// ---- optimizer --------------------------------------------------------------

const core::OptimizationResult& opt() {
  static const core::OptimizationResult r = [] {
    core::OptimizationGoal goal;
    goal.max_execution_time = units::milliseconds(3.0);  // deadline for the small workload
    return core::optimize(core::DesignSpace{}, workloads::crc32(4), goal);
  }();
  return r;
}

TEST(Optimize, EnumeratesTheFullSpace) {
  // 2 technologies x 4 VT flavors x 7 clocks.
  EXPECT_EQ(opt().all_points.size(), 56u);
}

TEST(Optimize, InfeasiblePointsAreReportedNotDropped) {
  int infeasible = 0;
  for (const auto& p : opt().all_points) {
    if (!p.feasible) ++infeasible;
  }
  EXPECT_GT(infeasible, 0);  // HVT cannot close 800 MHz
  for (const auto& p : opt().ranked) EXPECT_TRUE(p.feasible && p.meets_deadline);
}

TEST(Optimize, RankedIsSortedByTcdp) {
  const auto& r = opt().ranked;
  ASSERT_GT(r.size(), 2u);
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_LE(r[i - 1].tcdp, r[i].tcdp);
}

TEST(Optimize, WinnerIsM3dAtLongLifetime) {
  // At the 24-month default the M3D memory's lower energy wins the ranking.
  ASSERT_FALSE(opt().ranked.empty());
  EXPECT_EQ(opt().ranked.front().spec.tech, core::Technology::kM3dIgzoCnfetSi);
}

TEST(Optimize, ParetoFrontIsNondominatedAndSorted) {
  const auto& front = opt().pareto;
  ASSERT_GT(front.size(), 1u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    // Sorted by execution time; total carbon must strictly improve as delay
    // grows (otherwise the slower point would be dominated).
    EXPECT_GE(in_seconds(front[i].evaluation.execution_time),
              in_seconds(front[i - 1].evaluation.execution_time));
    EXPECT_LT(in_grams_co2e(front[i].total_carbon), in_grams_co2e(front[i - 1].total_carbon));
  }
}

TEST(Optimize, DeadlinePrunesSlowClocks) {
  // Derive a deadline that only clocks >= 700 MHz can meet for this program.
  const auto probe = workloads::run_workload(workloads::crc32(1));
  core::OptimizationGoal tight;
  tight.max_execution_time = units::seconds(static_cast<double>(probe.cycles) / 650e6);
  const auto r = core::optimize(core::DesignSpace{}, workloads::crc32(1), tight);
  for (const auto& p : r.ranked) {
    EXPECT_GE(in_megahertz(p.spec.fclk), 700.0);
  }
  EXPECT_FALSE(r.ranked.empty());
}

TEST(Optimize, UnconstrainedPrefersSlowestClock) {
  // Without a deadline, lower clocks lower tCDP (less sizing, less leakage
  // per cycle is offset by longer runtime — the net winner is decided by the
  // model; assert only that the result is feasible and consistent).
  core::OptimizationGoal open_goal;
  const auto r = core::optimize(core::DesignSpace{}, workloads::crc32(1), open_goal);
  ASSERT_FALSE(r.ranked.empty());
  const auto& best = r.ranked.front();
  EXPECT_TRUE(best.feasible);
  // The best point's tCDP really is the minimum over the ranked set.
  for (const auto& p : r.ranked) EXPECT_GE(p.tcdp, best.tcdp);
}

TEST(Optimize, RejectsEmptySpace) {
  core::DesignSpace empty;
  empty.clocks.clear();
  EXPECT_THROW((void)core::optimize(empty, workloads::fib(5), core::OptimizationGoal{}),
               ContractViolation);
}

}  // namespace
}  // namespace ppatc
