// Tests for ppatc::obs: metrics registry semantics, scoped-span tracing
// (including parenting across the runtime pool's worker threads), exported
// JSON validity, disabled-mode no-ops, and — the load-bearing property —
// bit-determinism of the pipeline counters across thread counts.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/circuit.hpp"
#include "ppatc/spice/simulator.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;
using testutil::JsonValidator;

// Fixture: every test starts from a clean, enabled observability state and
// leaves the process with obs disabled and the pool at its default size, so
// test order cannot leak state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    obs::reset_metrics();
    obs::reset_trace();
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    runtime::set_thread_count(0);
  }
};

// ---------------------------------------------------------------------------
// Metrics registry.

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  obs::Counter& c = obs::counter("test.threads");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(obs::metrics_snapshot().counter_or("test.threads"), kThreads * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  obs::Counter& a = obs::counter("test.same");
  obs::Counter& b = obs::counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::Gauge& g = obs::gauge("test.disabled_gauge");
  obs::Histogram& h = obs::histogram("test.disabled_hist", {1.0, 2.0});
  obs::set_metrics_enabled(false);
  c.add(5);
  g.set(7.0);
  h.record(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total_count(), 0u);
}

TEST_F(ObsTest, HistogramBucketEdgeSemantics) {
  // Bucket i counts edges[i-1] < v <= edges[i]; the last bucket is overflow.
  obs::Histogram& h = obs::histogram("test.hist", {1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 7.0}) h.record(v);
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5 and the on-edge 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5 and the on-edge 2.0
  EXPECT_EQ(counts[2], 1u);  // 3.0
  EXPECT_EQ(counts[3], 1u);  // 7.0 overflows
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 7.0);
}

TEST_F(ObsTest, HistogramReRegistrationWithDifferentEdgesThrows) {
  (void)obs::histogram("test.hist_edges", {1.0, 2.0});
  EXPECT_NO_THROW((void)obs::histogram("test.hist_edges", {1.0, 2.0}));
  EXPECT_THROW((void)obs::histogram("test.hist_edges", {1.0, 3.0}), ContractViolation);
}

TEST_F(ObsTest, MetricsJsonIsValid) {
  obs::counter("test.json_counter").add(2);
  obs::gauge("test.json_gauge").set(1.25);
  obs::histogram("test.json_hist", {10.0, 20.0}).record(15.0);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
}

TEST_F(ObsTest, EmptyMetricsSnapshotExportsValidJson) {
  // No metric was ever touched: the export must still be a valid document
  // with all three (empty) sections, not "" or a dangling comma.
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST_F(ObsTest, MetricNamesWithQuotesAndBackslashesAreEscaped) {
  obs::counter("test.\"quoted\".name").add(1);
  obs::gauge("test.back\\slash").set(2.0);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos) << json;
}

TEST_F(ObsTest, ParseMetricsEnvSemantics) {
  // PPATC_METRICS unset / "" / "0" -> disabled ("0" used to be treated as an
  // output path named `0`); "1" -> enabled with no report path; anything else
  // is an output path.
  EXPECT_FALSE(obs::detail::parse_metrics_env(nullptr).enabled);
  EXPECT_FALSE(obs::detail::parse_metrics_env("").enabled);
  EXPECT_FALSE(obs::detail::parse_metrics_env("0").enabled);
  const obs::detail::MetricsEnv on = obs::detail::parse_metrics_env("1");
  EXPECT_TRUE(on.enabled);
  EXPECT_TRUE(on.path.empty());
  const obs::detail::MetricsEnv file = obs::detail::parse_metrics_env("/tmp/m.json");
  EXPECT_TRUE(file.enabled);
  EXPECT_EQ(file.path, "/tmp/m.json");
}

TEST_F(ObsTest, HistogramQuantilesAreInterpolated) {
  obs::Histogram& h = obs::histogram("test.quantiles", {10.0, 20.0, 30.0});
  // 100 samples uniformly on (0, 30]: ~p50 near 15, p95 near 28.5.
  for (int i = 1; i <= 100; ++i) h.record(0.3 * i);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const auto it = snap.histograms.find("test.quantiles");
  ASSERT_NE(it, snap.histograms.end());
  const auto& hs = it->second;
  EXPECT_NEAR(hs.quantile(0.50), 15.0, 1.0);
  EXPECT_NEAR(hs.quantile(0.95), 28.5, 1.0);
  // p100 stays inside the histogram's range; overflow clamps to the top edge.
  EXPECT_LE(hs.quantile(1.0), 30.0);
  // The quantile estimates ride along in both export formats.
  const std::string json = obs::metrics_to_json();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  const std::string text = obs::metrics_to_text();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST_F(ObsTest, HistogramQuantileOverflowClampsToTopEdge) {
  obs::Histogram& h = obs::histogram("test.quantile_overflow", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.record(100.0);  // everything overflows
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const auto& hs = snap.histograms.at("test.quantile_overflow");
  EXPECT_EQ(hs.quantile(0.5), 2.0);
  EXPECT_EQ(hs.quantile(0.99), 2.0);
}

TEST_F(ObsTest, EmptyHistogramQuantileIsZero) {
  (void)obs::histogram("test.quantile_empty", {1.0, 2.0});
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.histograms.at("test.quantile_empty").quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Tracing.

TEST_F(ObsTest, SpanNestingSingleThread) {
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    const obs::Span outer{"outer"};
    outer_id = outer.id();
    EXPECT_EQ(obs::current_span_id(), outer_id);
    {
      const obs::Span inner{"inner"};
      inner_id = inner.id();
      EXPECT_EQ(obs::current_span_id(), inner_id);
    }
    EXPECT_EQ(obs::current_span_id(), outer_id);
  }
  EXPECT_EQ(obs::current_span_id(), 0u);

  const std::vector<obs::SpanRecord> spans = obs::trace_snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::uint64_t, obs::SpanRecord> by_id;
  for (const auto& s : spans) by_id[s.id] = s;
  ASSERT_TRUE(by_id.count(outer_id) == 1 && by_id.count(inner_id) == 1);
  EXPECT_EQ(by_id[outer_id].parent, 0u);
  EXPECT_EQ(by_id[inner_id].parent, outer_id);
  EXPECT_GE(by_id[outer_id].dur_ns, by_id[inner_id].dur_ns);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  obs::set_tracing_enabled(false);
  {
    const obs::Span s{"ghost"};
    EXPECT_EQ(s.id(), 0u);
    EXPECT_EQ(obs::current_span_id(), 0u);
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

// Worker-side spans must chain back to the submitting region regardless of
// the thread count (inline execution, or via the pool's re-parenting).
void expect_chunks_parent_to_region(std::size_t threads) {
  runtime::set_thread_count(threads);
  obs::reset_trace();
  std::uint64_t region_id = 0;
  {
    const obs::Span region{"region"};
    region_id = region.id();
    ASSERT_NE(region_id, 0u);
    runtime::parallel_for(8, [](std::size_t) { const obs::Span chunk{"chunk"}; });
  }
  const std::vector<obs::SpanRecord> spans = obs::trace_snapshot();
  std::map<std::uint64_t, obs::SpanRecord> by_id;
  for (const auto& s : spans) by_id[s.id] = s;

  std::size_t chunks = 0;
  for (const auto& s : spans) {
    if (s.name != "chunk") continue;
    ++chunks;
    // Walk ancestors (chunk -> [runtime.drain ->] runtime.batch -> region on
    // pooled runs; chunk -> region inline).
    std::uint64_t id = s.parent;
    bool reached_region = false;
    for (int hops = 0; id != 0 && hops < 16; ++hops) {
      if (id == region_id) {
        reached_region = true;
        break;
      }
      const auto it = by_id.find(id);
      ASSERT_NE(it, by_id.end()) << "dangling parent id " << id << " at " << threads << " threads";
      id = it->second.parent;
    }
    EXPECT_TRUE(reached_region) << "chunk span not parented to region at " << threads
                                << " threads";
  }
  EXPECT_EQ(chunks, 8u);
}

TEST_F(ObsTest, WorkerSpansParentToSubmittingRegionSerial) {
  expect_chunks_parent_to_region(1);
}

TEST_F(ObsTest, WorkerSpansParentToSubmittingRegionPooled) {
  expect_chunks_parent_to_region(4);
}

TEST_F(ObsTest, TraceJsonIsValidChromeFormat) {
  {
    const obs::Span outer{"json_outer"};
    const obs::Span inner{"json_inner"};
  }
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"json_inner\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "ppatc_trace_roundtrip.json";
  obs::write_trace(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string from_disk;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) from_disk.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonValidator::valid(from_disk));
  EXPECT_EQ(from_disk, json + "\n");  // write_trace terminates the file with a newline
}

TEST_F(ObsTest, EmptyTraceExportsValidJson) {
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTest, ExportWithSpanStillOpenIsValidAndOmitsIt) {
  const obs::Span open{"still_open"};
  {
    const obs::Span closed{"already_closed"};
  }
  // Exporting mid-span must not emit a half-written record for the open span.
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"already_closed\""), std::string::npos);
  EXPECT_EQ(json.find("\"still_open\""), std::string::npos);
}

TEST_F(ObsTest, SpanNamesWithQuotesAndBackslashesAreEscaped) {
  {
    const obs::Span s1{"span \"quoted\""};
    const obs::Span s2{"span\\back"};
  }
  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("span \\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("span\\\\back"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Pipeline counters: determinism and coverage.

TEST_F(ObsTest, SpiceCountersAreDeterministicForFixedSolve) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0",
                spice::Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-9), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", femtofarads(10.0));
  const spice::Simulator sim{c};

  auto run_once = [&] {
    obs::reset_metrics();
    const auto tr = sim.transient(nanoseconds(100.0), picoseconds(10.0));
    ASSERT_TRUE(tr.has_value());
    return;
  };
  run_once();
  const obs::MetricsSnapshot first = obs::metrics_snapshot();
  run_once();
  const obs::MetricsSnapshot second = obs::metrics_snapshot();

  EXPECT_GT(first.counter_or("spice.newton_iterations"), 0u);
  EXPECT_GT(first.counter_or("spice.newton_solves"), 0u);
  EXPECT_GT(first.counter_or("spice.transient_steps"), 0u);
  EXPECT_EQ(first.counter_or("spice.newton_nonconvergence"), 0u);
  for (const char* key : {"spice.newton_iterations", "spice.newton_solves",
                          "spice.transient_steps", "spice.newton_nonconvergence"}) {
    EXPECT_EQ(first.counter_or(key), second.counter_or(key)) << key;
  }
}

TEST_F(ObsTest, MonteCarloCountersAreBitDeterministicAcrossThreadCounts) {
  carbon::UncertainProfile cand;
  cand.embodied_per_good_die_g = carbon::Interval::factor(9000.0, 1.5);
  cand.operational_power_w = carbon::Interval::factor(0.8, 1.2);
  cand.standby_power_w = carbon::Interval::point(0.02);
  cand.execution_time = seconds(0.8);
  carbon::UncertainProfile base;
  base.embodied_per_good_die_g = carbon::Interval::factor(12000.0, 1.5);
  base.operational_power_w = carbon::Interval::factor(1.0, 1.2);
  base.standby_power_w = carbon::Interval::point(0.05);
  base.execution_time = seconds(1.0);
  carbon::UncertainScenario scen;
  scen.ci_use_g_per_kwh = carbon::Interval::factor(300.0, 2.0);
  scen.lifetime_months = carbon::Interval::plus_minus(36.0, 12.0);

  constexpr std::size_t kSamples = 10'000;
  auto run_at = [&](std::size_t threads, carbon::MonteCarloSummary* summary) {
    runtime::set_thread_count(threads);
    obs::reset_metrics();
    *summary = carbon::monte_carlo_tcdp_ratio(cand, base, scen, kSamples, 42);
    return obs::metrics_snapshot();
  };
  carbon::MonteCarloSummary s1;
  carbon::MonteCarloSummary s4;
  const obs::MetricsSnapshot m1 = run_at(1, &s1);
  const obs::MetricsSnapshot m4 = run_at(4, &s4);

  // The sampled results themselves are thread-count invariant...
  EXPECT_EQ(s1.mean, s4.mean);
  EXPECT_EQ(s1.p50, s4.p50);
  EXPECT_EQ(s1.probability_candidate_wins, s4.probability_candidate_wins);

  // ...and so is every counter fed by deterministic quantities.
  EXPECT_EQ(m1.counter_or("carbon.mc_samples"), kSamples);
  EXPECT_EQ(m4.counter_or("carbon.mc_samples"), kSamples);
  const std::uint64_t chunks = runtime::chunk_count(kSamples, 4096);
  EXPECT_EQ(m1.counter_or("runtime.chunks_executed"), chunks);
  EXPECT_EQ(m4.counter_or("runtime.chunks_executed"), chunks);
  // A single parallel region runs either pooled or inline depending on the
  // thread count, but exactly one batch happens either way.
  EXPECT_EQ(m1.counter_or("runtime.batches") + m1.counter_or("runtime.inline_batches"), 1u);
  EXPECT_EQ(m4.counter_or("runtime.batches") + m4.counter_or("runtime.inline_batches"), 1u);
}

TEST_F(ObsTest, NonConvergenceThrowsWithDiagnosticsAndCounts) {
  spice::Circuit c;
  c.add_vsource("vin", "in", "0", spice::Stimulus::dc(volts(1.0)));
  c.add_resistor("in", "out", 1000.0);
  c.add_resistor("out", "0", 1000.0);
  spice::SimOptions opts;
  opts.max_newton_iterations = 0;  // no Newton budget: every strategy must fail
  const spice::Simulator sim{c, opts};
  try {
    (void)sim.dc_operating_point();
    FAIL() << "expected ConvergenceError";
  } catch (const spice::ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed to converge"), std::string::npos) << what;
    EXPECT_NE(what.find("iteration"), std::string::npos) << what;
  }
  EXPECT_GT(obs::metrics_snapshot().counter_or("spice.newton_nonconvergence"), 0u);
}

}  // namespace
}  // namespace ppatc
