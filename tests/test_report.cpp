// Tests for ppatc::obs::report: manifest building and serialization, the
// JSON round-trip (including hostile key names), tolerance semantics of the
// drift gate, perturbation detection with offending-key naming, and the
// thread-count invariance that makes committed goldens possible.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "json_validator.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/report.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;
using testutil::JsonValidator;

obs::RunManifest small_manifest() {
  obs::RunManifest m{"unit_test"};
  m.set_provenance("git_sha", "deadbeef");
  m.set_provenance("timestamp_utc", "2026-08-07T00:00:00Z");
  m.set_provenance("threads", "1");
  m.set_config("grid", "us");
  m.set_config("lifetime", months(24.0));
  m.set_config("VDD", volts(0.7));
  m.record("plain", 1.5, "x");
  m.record("tight", 2.0, "pJ", {.abs_tol = 1e-12, .rel_tol = 0.0});
  m.record("loose", 3.0, "months", {.rel_tol = 1e-4});
  m.record_vs_paper("headline", 1.309, 1.31, "x");
  m.record_text("verdict", "OK");
  return m;
}

TEST(Report, ManifestJsonIsValidAndStable) {
  const obs::RunManifest m = small_manifest();
  const std::string json = m.to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  // Stable: serializing twice gives byte-identical output.
  EXPECT_EQ(json, small_manifest().to_json());
  // Sections appear in fixed alphabetical order.
  EXPECT_LT(json.find("\"artifact\""), json.find("\"config\""));
  EXPECT_LT(json.find("\"config\""), json.find("\"provenance\""));
  EXPECT_LT(json.find("\"provenance\""), json.find("\"results\""));
  EXPECT_LT(json.find("\"results\""), json.find("\"schema_version\""));
}

TEST(Report, JsonRoundTripPreservesEverything) {
  const obs::RunManifest built = small_manifest();
  const obs::Manifest m = obs::parse_manifest(built.to_json());
  EXPECT_EQ(m.schema_version, obs::kManifestSchemaVersion);
  EXPECT_EQ(m.artifact, "unit_test");
  EXPECT_EQ(m.provenance.at("git_sha"), "deadbeef");
  EXPECT_EQ(m.config.at("grid"), "us");
  // Units-typed config is rendered in the base unit with its symbol.
  EXPECT_EQ(m.config.at("VDD"), "0.69999999999999996 V");
  EXPECT_NE(m.config.at("lifetime").find(" s"), std::string::npos);
  ASSERT_EQ(m.results.size(), 4u);
  EXPECT_EQ(m.results.at("plain").value, 1.5);
  EXPECT_EQ(m.results.at("plain").unit, "x");
  EXPECT_EQ(m.results.at("plain").rel_tol, obs::kDefaultRelTol);
  EXPECT_EQ(m.results.at("tight").abs_tol, 1e-12);
  EXPECT_EQ(m.results.at("tight").rel_tol, 0.0);
  EXPECT_EQ(m.results.at("loose").rel_tol, 1e-4);
  EXPECT_TRUE(m.results.at("headline").has_paper);
  EXPECT_EQ(m.results.at("headline").paper, 1.31);
  EXPECT_FALSE(m.results.at("plain").has_paper);
  EXPECT_EQ(m.text_results.at("verdict"), "OK");
  // And the round trip is a fixed point: parse(serialize(parse(x))) == x.
  EXPECT_EQ(obs::manifest_to_json(m), built.to_json());
}

TEST(Report, HostileKeyNamesSurviveTheRoundTrip) {
  obs::RunManifest m{"weird \"artifact\"\\name"};
  m.record("key with \"quotes\"", 1.0, "x");
  m.record("back\\slash\tand\ttabs", 2.0, "x");
  m.record_text("newline\nkey", "value\nwith\nnewlines");
  const std::string json = m.to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  const obs::Manifest parsed = obs::parse_manifest(json);
  EXPECT_EQ(parsed.artifact, "weird \"artifact\"\\name");
  EXPECT_EQ(parsed.results.at("key with \"quotes\"").value, 1.0);
  EXPECT_EQ(parsed.results.at("back\\slash\tand\ttabs").value, 2.0);
  EXPECT_EQ(parsed.text_results.at("newline\nkey"), "value\nwith\nnewlines");
}

TEST(Report, RecordContractViolations) {
  obs::RunManifest m{"contracts"};
  m.record("once", 1.0, "x");
  EXPECT_THROW(m.record("once", 2.0, "x"), ContractViolation);  // duplicate key
  EXPECT_THROW(m.record("", 1.0, "x"), ContractViolation);      // empty name
  EXPECT_THROW(m.record("nan", std::nan(""), "x"), ContractViolation);
  EXPECT_THROW(m.record("neg_tol", 1.0, "x", {.abs_tol = -1.0}), ContractViolation);
  m.record_text("t", "v");
  EXPECT_THROW(m.record_text("t", "other"), ContractViolation);
}

TEST(Report, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)obs::parse_manifest(""), ContractViolation);
  EXPECT_THROW((void)obs::parse_manifest("{"), ContractViolation);
  EXPECT_THROW((void)obs::parse_manifest("[1,2,3]"), ContractViolation);
  EXPECT_THROW((void)obs::parse_manifest("{\"results\":{\"k\":{\"value\":}}}"),
               ContractViolation);
  EXPECT_THROW((void)obs::read_manifest("/nonexistent/path/manifest.json"), ContractViolation);
}

TEST(Report, CleanDiffOnIdenticalManifests) {
  const obs::Manifest m = obs::parse_manifest(small_manifest().to_json());
  const obs::DiffReport d = obs::diff_manifests(m, m);
  EXPECT_TRUE(d.clean());
  EXPECT_TRUE(d.offending_keys().empty());
  EXPECT_EQ(d.numeric.size(), 4u);
  for (const auto& k : d.numeric) EXPECT_TRUE(k.within) << k.key;
  EXPECT_TRUE(JsonValidator::valid(obs::diff_to_json(d)));
  EXPECT_NE(obs::format_diff(d).find("OK"), std::string::npos);
}

TEST(Report, ToleranceSemantics) {
  // A run value matches iff |run - golden| <= max(abs_tol, rel_tol * |golden|),
  // with the tolerances read from the *golden* side.
  obs::RunManifest golden_b{"tol"};
  golden_b.record("r", 100.0, "x", {.abs_tol = 0.5, .rel_tol = 1e-3});
  const obs::Manifest golden = obs::parse_manifest(golden_b.to_json());

  auto run_with = [](double v, obs::Tolerance tol) {
    obs::RunManifest m{"tol"};
    m.record("r", v, "x", tol);
    return obs::parse_manifest(m.to_json());
  };
  // allowed = max(0.5, 1e-3 * 100) = 0.5.
  EXPECT_TRUE(obs::diff_manifests(run_with(100.49, {}), golden).clean());
  EXPECT_FALSE(obs::diff_manifests(run_with(100.51, {}), golden).clean());
  // The run side's (tighter) tolerance does not matter.
  EXPECT_TRUE(
      obs::diff_manifests(run_with(100.49, {.abs_tol = 0.0, .rel_tol = 0.0}), golden).clean());
  const obs::DiffReport d = obs::diff_manifests(run_with(100.51, {}), golden);
  ASSERT_EQ(d.numeric.size(), 1u);
  EXPECT_EQ(d.numeric[0].allowed, 0.5);
  EXPECT_NEAR(d.numeric[0].abs_delta, 0.51, 1e-9);
  EXPECT_FALSE(d.numeric[0].within);
  ASSERT_EQ(d.offending_keys().size(), 1u);
  EXPECT_EQ(d.offending_keys()[0], "r");
}

TEST(Report, PerturbationIsDetectedAndNamed) {
  const obs::Manifest golden = obs::parse_manifest(small_manifest().to_json());
  obs::Manifest run = golden;
  run.results["plain"].value *= 1.001;  // far outside the 1e-7 default rel_tol
  const obs::DiffReport d = obs::diff_manifests(run, golden);
  EXPECT_FALSE(d.clean());
  const auto keys = d.offending_keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "plain");
  EXPECT_NE(obs::format_diff(d).find("DRIFT"), std::string::npos);
  EXPECT_NE(obs::format_diff(d).find("plain"), std::string::npos);
}

TEST(Report, AddedRemovedAndMismatchedKeys) {
  const obs::Manifest golden = obs::parse_manifest(small_manifest().to_json());
  obs::Manifest run = golden;
  run.results.erase("loose");
  run.results["extra"] = {.value = 9.0, .unit = "x"};
  run.text_results["verdict"] = "VIOLATED";
  run.config["grid"] = "france";
  const obs::DiffReport d = obs::diff_manifests(run, golden);
  EXPECT_FALSE(d.clean());
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], "extra");
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], "loose");
  EXPECT_EQ(d.mismatched.size(), 2u);  // text:verdict and config:grid
  const auto keys = d.offending_keys();
  EXPECT_EQ(keys.size(), 4u);
}

TEST(Report, UnitChangeIsAMismatch) {
  const obs::Manifest golden = obs::parse_manifest(small_manifest().to_json());
  obs::Manifest run = golden;
  run.results["plain"].unit = "pJ";
  const obs::DiffReport d = obs::diff_manifests(run, golden);
  EXPECT_FALSE(d.clean());
  EXPECT_FALSE(d.mismatched.empty());
}

TEST(Report, SchemaAndArtifactMismatchFailTheGate) {
  const obs::Manifest golden = obs::parse_manifest(small_manifest().to_json());
  obs::Manifest run = golden;
  run.schema_version = obs::kManifestSchemaVersion + 1;
  EXPECT_FALSE(obs::diff_manifests(run, golden).clean());
  run = golden;
  run.artifact = "someone_else";
  EXPECT_FALSE(obs::diff_manifests(run, golden).clean());
}

TEST(Report, ProvenanceDifferencesAreInformationalOnly) {
  const obs::Manifest golden = obs::parse_manifest(small_manifest().to_json());
  obs::Manifest run = golden;
  run.provenance["git_sha"] = "cafef00d";
  run.provenance["threads"] = "4";
  const obs::DiffReport d = obs::diff_manifests(run, golden);
  EXPECT_TRUE(d.clean());
  EXPECT_FALSE(d.provenance_notes.empty());
}

TEST(Report, CaptureObservabilityFoldsMetricsAndSpans) {
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  obs::reset_metrics();
  obs::reset_trace();
  obs::counter("report.test_counter").add(3);
  obs::gauge("report.test_gauge").set(2.5);
  obs::histogram("report.test_hist", {1.0, 10.0}).record(5.0);
  {
    const obs::Span s{"report.test_span"};
  }
  obs::RunManifest m{"obs_fold"};
  m.capture_observability();
  const obs::Manifest parsed = obs::parse_manifest(m.to_json());
  EXPECT_EQ(parsed.counters.at("report.test_counter"), 3u);
  EXPECT_EQ(parsed.gauges.at("report.test_gauge"), 2.5);
  // One sample in bucket (1, 10]: the interpolated p50 lands on the bucket's
  // upper edge.
  EXPECT_EQ(parsed.histograms.at("report.test_hist").at("p50"), 10.0);
  ASSERT_EQ(parsed.spans.count("report.test_span"), 1u);
  EXPECT_EQ(parsed.spans.at("report.test_span").count, 1u);
  EXPECT_GE(parsed.spans.at("report.test_span").total_ms, 0.0);
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
}

// The property the committed goldens rely on: a manifest of evaluation
// results is bit-identical no matter the thread count (PR 1's determinism
// guarantee surfaced at the report layer). Only `results` and `config` need
// to match — observability sections carry wall times and are informational.
TEST(Report, ResultsAreThreadCountInvariant) {
  auto manifest_at = [](std::size_t threads) {
    runtime::set_thread_count(threads);
    carbon::UncertainProfile cand;
    cand.embodied_per_good_die_g = carbon::Interval::factor(3.63, 1.2);
    cand.operational_power_w = carbon::Interval::point(8.46e-3);
    cand.execution_time = seconds(0.040);
    carbon::UncertainProfile base;
    base.embodied_per_good_die_g = carbon::Interval::factor(3.11, 1.2);
    base.operational_power_w = carbon::Interval::point(9.71e-3);
    base.execution_time = seconds(0.040);
    carbon::UncertainScenario scen;
    scen.ci_use_g_per_kwh = carbon::Interval::factor(380.0, 3.0);
    scen.lifetime_months = carbon::Interval::plus_minus(24.0, 6.0);
    const auto mc = carbon::monte_carlo_tcdp_ratio(cand, base, scen, 20000, 20251204);
    obs::RunManifest m{"invariance"};
    m.set_provenance("threads", std::to_string(threads));
    m.record("mean", mc.mean, "x");
    m.record("p05", mc.p05, "x");
    m.record("p50", mc.p50, "x");
    m.record("p95", mc.p95, "x");
    m.record("P(win)", mc.probability_candidate_wins, "frac");
    runtime::set_thread_count(0);
    return obs::parse_manifest(m.to_json());
  };
  const obs::Manifest at1 = manifest_at(1);
  const obs::Manifest at4 = manifest_at(4);
  const obs::DiffReport d = obs::diff_manifests(at4, at1);
  EXPECT_TRUE(d.clean()) << obs::format_diff(d);
  // Stronger than within-tolerance: the serialized results are byte-equal.
  EXPECT_EQ(obs::manifest_to_json(at1).substr(obs::manifest_to_json(at1).find("\"results\"")),
            obs::manifest_to_json(at4).substr(obs::manifest_to_json(at4).find("\"results\"")));
}

TEST(Report, ManifestOutPathSemantics) {
  ::unsetenv("BENCH_MANIFEST_OUT");
  EXPECT_EQ(obs::manifest_out_path(), nullptr);
  ::setenv("BENCH_MANIFEST_OUT", "", 1);
  EXPECT_EQ(obs::manifest_out_path(), nullptr);
  ::setenv("BENCH_MANIFEST_OUT", "0", 1);
  EXPECT_EQ(obs::manifest_out_path(), nullptr);
  ::setenv("BENCH_MANIFEST_OUT", "/tmp/manifest.json", 1);
  ASSERT_NE(obs::manifest_out_path(), nullptr);
  EXPECT_STREQ(obs::manifest_out_path(), "/tmp/manifest.json");
  ::unsetenv("BENCH_MANIFEST_OUT");
}

// ---- perf comparison (the perf-smoke gate) ---------------------------------

// A baseline manifest shaped like the bench_perf one: a latency histogram,
// throughput gauges, and a recorded result with a rate unit.
obs::Manifest perf_baseline() {
  obs::Manifest m;
  m.gauges["isa.insn_per_sec"] = 100.0e6;
  m.gauges["carbon.mc_samples_per_sec"] = 2.0e6;
  m.histograms["memsys.corner_solve_us"] = {{"p50", 200.0}, {"p95", 800.0}, {"p99", 1500.0}};
  obs::ManifestResult r;
  r.value = 50.0;
  r.unit = "samples/s";
  m.results.emplace("throughput result", r);
  return m;
}

TEST(PerfCompare, IdenticalManifestsPass) {
  const obs::Manifest b = perf_baseline();
  const obs::PerfReport p = obs::perf_compare_manifests(b, b);
  EXPECT_TRUE(p.pass());
  EXPECT_TRUE(p.missing.empty());
  // p50 + p95 (never p99) + two gauges + one result.
  EXPECT_EQ(p.deltas.size(), 5u);
  for (const auto& d : p.deltas) {
    EXPECT_FALSE(d.regressed) << d.key;
    EXPECT_EQ(d.change, 0.0) << d.key;
  }
}

TEST(PerfCompare, DirectionIsInferredPerMetric) {
  const obs::Manifest base = perf_baseline();
  obs::Manifest run = base;
  // Throughput halved: regression. Latency halved: improvement.
  run.gauges["isa.insn_per_sec"] = 50.0e6;
  run.histograms["memsys.corner_solve_us"]["p50"] = 100.0;
  const obs::PerfReport p = obs::perf_compare_manifests(run, base);
  EXPECT_FALSE(p.pass());
  const auto offending = p.offending_keys();
  ASSERT_EQ(offending.size(), 1u);
  EXPECT_EQ(offending[0], "gauge:isa.insn_per_sec");
  for (const auto& d : p.deltas) {
    if (d.key == "gauge:isa.insn_per_sec") {
      EXPECT_TRUE(d.higher_is_better);
      EXPECT_TRUE(d.regressed);
    } else if (d.key == "hist:memsys.corner_solve_us/p50") {
      EXPECT_FALSE(d.higher_is_better);
      EXPECT_FALSE(d.regressed);  // got faster — improvements never fail
    }
  }
}

TEST(PerfCompare, ResultUnitSuffixMeansThroughput) {
  const obs::Manifest base = perf_baseline();
  obs::Manifest run = base;
  run.results["throughput result"].value = 10.0;  // -80% of a "samples/s" result
  EXPECT_FALSE(obs::perf_compare_manifests(run, base).pass());
  run.results["throughput result"].value = 500.0;  // 10x faster
  EXPECT_TRUE(obs::perf_compare_manifests(run, base).pass());
}

TEST(PerfCompare, ToleranceBoundsTheBadDirection) {
  const obs::Manifest base = perf_baseline();
  obs::Manifest run = base;
  run.histograms["memsys.corner_solve_us"]["p95"] = 800.0 * 1.14;  // +14% < 15%
  EXPECT_TRUE(obs::perf_compare_manifests(run, base).pass());
  run.histograms["memsys.corner_solve_us"]["p95"] = 800.0 * 1.16;  // +16% > 15%
  EXPECT_FALSE(obs::perf_compare_manifests(run, base).pass());
  // A wider explicit tolerance re-admits the same run.
  EXPECT_TRUE(obs::perf_compare_manifests(run, base, 0.25).pass());
}

TEST(PerfCompare, MissingBaselineMetricFailsExtraRunMetricDoesNot) {
  const obs::Manifest base = perf_baseline();
  obs::Manifest run = base;
  run.gauges.erase("carbon.mc_samples_per_sec");
  run.gauges["new.instrumentation"] = 42.0;  // only in the run: ignored
  const obs::PerfReport p = obs::perf_compare_manifests(run, base);
  EXPECT_FALSE(p.pass());
  ASSERT_EQ(p.missing.size(), 1u);
  EXPECT_EQ(p.missing[0], "gauge:carbon.mc_samples_per_sec");
  for (const auto& d : p.deltas) EXPECT_NE(d.key, "gauge:new.instrumentation");
}

TEST(PerfCompare, FormatNamesEveryMetricAndTheVerdict) {
  const obs::Manifest base = perf_baseline();
  obs::Manifest run = base;
  run.gauges["isa.insn_per_sec"] = 10.0e6;
  const obs::PerfReport p = obs::perf_compare_manifests(run, base);
  const std::string text = obs::format_perf_compare(p);
  EXPECT_NE(text.find("gauge:isa.insn_per_sec"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("PERF REGRESSION"), std::string::npos);
  EXPECT_NE(obs::format_perf_compare(obs::perf_compare_manifests(base, base)).find("PERF OK"),
            std::string::npos);
}

// ---- time-resolved metrics in the manifest ---------------------------------

TEST(Report, CaptureObservabilityFoldsTheMetricsSeries) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::reset_metrics_series();
  obs::counter("series.test_counter").add(1);
  obs::append_metrics_sample();
  obs::counter("series.test_counter").add(2);
  obs::append_metrics_sample();
  obs::RunManifest m{"series_fold"};
  m.capture_observability();
  ASSERT_EQ(m.manifest().metrics_series.size(), 2u);
  EXPECT_LE(m.manifest().metrics_series[0].t_ms, m.manifest().metrics_series[1].t_ms);
  EXPECT_EQ(m.manifest().metrics_series[0].values.at("counter:series.test_counter"), 1.0);
  EXPECT_EQ(m.manifest().metrics_series[1].values.at("counter:series.test_counter"), 3.0);
  obs::reset_metrics_series();
  obs::set_metrics_enabled(false);
}

TEST(Report, MetricsSeriesSurvivesTheJsonRoundTrip) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::reset_metrics_series();
  obs::counter("series.rt_counter").add(5);
  obs::gauge("series.rt_gauge").set(1.25);
  obs::append_metrics_sample();
  obs::RunManifest m{"series_rt"};
  m.capture_observability();
  const std::string json = m.to_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"metrics_series\""), std::string::npos);
  const obs::Manifest parsed = obs::parse_manifest(json);
  ASSERT_EQ(parsed.metrics_series.size(), 1u);
  EXPECT_EQ(parsed.metrics_series[0].values.at("counter:series.rt_counter"), 5.0);
  EXPECT_EQ(parsed.metrics_series[0].values.at("gauge:series.rt_gauge"), 1.25);
  // Fixed point, same as every other manifest section.
  EXPECT_EQ(obs::manifest_to_json(parsed), json);
  obs::reset_metrics_series();
  obs::set_metrics_enabled(false);
}

// The property the committed goldens rely on: a manifest built without the
// sampler serializes with NO metrics_series key at all, so pre-series golden
// files stay byte-identical.
TEST(Report, EmptyMetricsSeriesIsOmittedFromJson) {
  obs::reset_metrics_series();
  const obs::RunManifest m = small_manifest();
  EXPECT_EQ(m.to_json().find("metrics_series"), std::string::npos);
  obs::RunManifest folded{"no_series"};
  obs::set_metrics_enabled(true);
  folded.capture_observability();
  obs::set_metrics_enabled(false);
  EXPECT_EQ(folded.to_json().find("metrics_series"), std::string::npos);
}

TEST(Report, SamplerThreadProducesAMonotoneSeries) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::reset_metrics_series();
  obs::start_metrics_sampler(1);  // 1 ms: several samples land within the wait
  // Wait (bounded) until the background sampler has captured a few samples on
  // top of the immediate t=0 one.
  for (int spin = 0; spin < 2000 && obs::metrics_series().size() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::stop_metrics_sampler();
  const auto series = obs::metrics_series();
  ASSERT_GE(series.size(), 3u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].t_ms, series[i].t_ms);
  }
  obs::reset_metrics_series();
  obs::set_metrics_enabled(false);
}

TEST(Report, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "ppatc_report_roundtrip.json";
  const obs::RunManifest m = small_manifest();
  m.write(path);
  const obs::Manifest back = obs::read_manifest(path);
  std::remove(path.c_str());
  EXPECT_EQ(obs::manifest_to_json(back), m.to_json());
  EXPECT_THROW(m.write("/nonexistent/dir/m.json"), ContractViolation);
}

}  // namespace
}  // namespace ppatc
