// Tests for the sampling profiler (ppatc::obs::prof): env-parser contract,
// disabled-mode no-op guarantees, folded-stack parse/format round-trips,
// per-frame self/total aggregation, the flamegraph table/SVG renderers, the
// timeline --top span ranking, and — fork-based, skipped under sanitizers —
// a live 4-thread memsys::characterize_batch profile that attributes samples
// to memsys spans and drains deterministically.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ppatc/common/contract.hpp"
#include "ppatc/common/units.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/prof.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/simulator.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PPATC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PPATC_UNDER_SANITIZER 1
#endif
#endif
#ifndef PPATC_UNDER_SANITIZER
#define PPATC_UNDER_SANITIZER 0
#endif

namespace ppatc {
namespace {

namespace fs = std::filesystem;

// Every test starts and ends with the profiler stopped and drained, so test
// order cannot leak armed timers or aggregated samples between cases.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::stop_profiler();
    obs::reset_prof();
  }
  void TearDown() override {
    obs::stop_profiler();
    obs::reset_prof();
    runtime::set_thread_count(0);
  }

  static std::string scratch_path(const char* tag) {
    return (fs::temp_directory_path() /
            ("ppatc_prof_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".folded"))
        .string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
};

// ---------------------------------------------------------------------------
// PPATC_PROFILE_HZ parsing follows the documented contract.

TEST_F(ProfTest, EnvParserFollowsTheDocumentedContract) {
  using obs::detail::parse_profile_hz_env;
  EXPECT_EQ(parse_profile_hz_env(nullptr), obs::kProfDefaultHz);
  EXPECT_EQ(parse_profile_hz_env(""), obs::kProfDefaultHz);
  EXPECT_EQ(parse_profile_hz_env("not-a-number"), obs::kProfDefaultHz);
  EXPECT_EQ(parse_profile_hz_env("0"), obs::kProfDefaultHz);
  EXPECT_EQ(parse_profile_hz_env("250"), 250u);
  EXPECT_EQ(parse_profile_hz_env("1"), 1u);
  EXPECT_EQ(parse_profile_hz_env("10000"), 10000u);
  EXPECT_EQ(parse_profile_hz_env("999999"), 10000u);  // clamp, not reject
}

// ---------------------------------------------------------------------------
// Disabled mode is a provable no-op: nothing armed, nothing aggregated, and
// the empty snapshot still renders/parses cleanly.

TEST_F(ProfTest, DisabledModeIsANoOp) {
  EXPECT_FALSE(obs::prof_enabled());
  obs::detail::prof_poll_thread();  // must be safe (and free) when disarmed
  EXPECT_EQ(obs::detail::prof_total_samples(), 0u);

  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_EQ(snap.samples, 0u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_TRUE(snap.stacks.empty());
  EXPECT_EQ(snap.sample_ns_avg(), 0.0);

  // The empty folded rendering is still well-formed and parseable.
  const std::string folded = obs::prof_to_folded(snap);
  const obs::FoldedProfile parsed = obs::parse_folded(folded);
  EXPECT_EQ(parsed.total_samples(), 0u);
  EXPECT_TRUE(parsed.stacks.empty());
  EXPECT_EQ(parsed.header.at("ppatc_profile"), "1");
}

// ---------------------------------------------------------------------------
// Folded text: parsing, formatting, and the fixed-point round-trip.

TEST_F(ProfTest, ParseFoldedSplitsTheCountAtTheLastSpace) {
  const std::string text =
      "# hz 997\n"
      "# samples 7\n"
      "main.span;frame one with spaces;leaf 4\n"
      "other;a;b 3\n";
  const obs::FoldedProfile p = obs::parse_folded(text);
  EXPECT_EQ(p.header.at("hz"), "997");
  ASSERT_EQ(p.stacks.size(), 2u);
  ASSERT_EQ(p.stacks[0].frames.size(), 3u);
  EXPECT_EQ(p.stacks[0].frames[0], "main.span");
  EXPECT_EQ(p.stacks[0].frames[1], "frame one with spaces");
  EXPECT_EQ(p.stacks[0].frames[2], "leaf");
  EXPECT_EQ(p.stacks[0].count, 4u);
  EXPECT_EQ(p.stacks[1].count, 3u);
  EXPECT_EQ(p.total_samples(), 7u);
}

TEST_F(ProfTest, ParseFoldedRejectsMalformedLines) {
  EXPECT_THROW((void)obs::parse_folded("stack-without-count\n"), ContractViolation);
  EXPECT_THROW((void)obs::parse_folded("span;frame notanumber\n"), ContractViolation);
  EXPECT_THROW((void)obs::parse_folded(" 42\n"), ContractViolation);
}

TEST_F(ProfTest, FormatFoldedRoundTripsToAFixedPoint) {
  // Deliberately unsorted input: one format+parse reaches the canonical
  // ordering, after which format∘parse is the identity.
  const std::string text =
      "# z_last 1\n"
      "# a_first 2\n"
      "zeta;x 1\n"
      "alpha;y;z 5\n";
  const obs::FoldedProfile p1 = obs::parse_folded(text);
  const std::string once = obs::format_folded(p1);
  const obs::FoldedProfile p2 = obs::parse_folded(once);
  const std::string twice = obs::format_folded(p2);
  EXPECT_EQ(once, twice);
  // Canonical form is sorted: header by key, stacks by joined key.
  EXPECT_LT(once.find("# a_first 2"), once.find("# z_last 1"));
  EXPECT_LT(once.find("alpha;y;z 5"), once.find("zeta;x 1"));
}

TEST_F(ProfTest, FrameStatsSeparateSelfFromTotalAndDeduplicateRecursion) {
  const std::string text =
      "span;outer;inner 10\n"
      "span;outer 5\n"
      "span;rec;rec;rec 3\n";
  const obs::FoldedProfile p = obs::parse_folded(text);
  const auto stats = obs::folded_frame_stats(p);
  // `outer` is the leaf of 5 samples, on-stack for 15.
  EXPECT_EQ(stats.at("outer").self, 5u);
  EXPECT_EQ(stats.at("outer").total, 15u);
  EXPECT_EQ(stats.at("inner").self, 10u);
  EXPECT_EQ(stats.at("inner").total, 10u);
  // Recursion counts once per stack, not once per occurrence.
  EXPECT_EQ(stats.at("rec").self, 3u);
  EXPECT_EQ(stats.at("rec").total, 3u);
  // The span key participates like a root frame: total == all samples.
  EXPECT_EQ(stats.at("span").total, 18u);
  EXPECT_EQ(stats.at("span").self, 0u);
}

// ---------------------------------------------------------------------------
// Renderers: table, SVG, and the timeline --top ranking.

TEST_F(ProfTest, FlameTableRanksBySelfTime) {
  const std::string text =
      "span;hot_leaf 90\n"
      "span;warm;hot_leaf 5\n"
      "span;cold 1\n";
  const obs::FoldedProfile p = obs::parse_folded(text);
  const std::string table = obs::render_flame_table(p, 2);
  // Rows sort by self desc: hot_leaf (95), cold (1); `warm` (self 0,
  // total 5) and the span key (self 0) fall outside --top 2.
  EXPECT_NE(table.find("hot_leaf"), std::string::npos);
  EXPECT_NE(table.find("cold"), std::string::npos);
  EXPECT_EQ(table.find("warm"), std::string::npos);
  EXPECT_LT(table.find("hot_leaf"), table.find("cold"));
  // The header line carries the totals.
  EXPECT_NE(table.find("96 samples"), std::string::npos);
}

TEST_F(ProfTest, FlameSvgIsSelfContainedAndEscaped) {
  const std::string text = "sp<an>;fn<T&>;leaf 4\n";
  const obs::FoldedProfile p = obs::parse_folded(text);
  const std::string svg = obs::render_flame_svg(p);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Raw angle brackets from symbol names must be escaped, not emitted.
  EXPECT_EQ(svg.find("fn<T&>"), std::string::npos);
  EXPECT_NE(svg.find("fn&lt;T&amp;&gt;"), std::string::npos);
}

TEST_F(ProfTest, RenderTopSpansRanksTraceEventsPerThread) {
  // A minimal Chrome trace: two spans on tid 1, one on tid 2.
  const std::string trace = R"({"traceEvents":[
    {"name":"spice.dc","ph":"X","ts":0,"dur":9000,"pid":1,"tid":1},
    {"name":"spice.dc","ph":"X","ts":9000,"dur":1000,"pid":1,"tid":1},
    {"name":"memsys.characterize","ph":"X","ts":0,"dur":500,"pid":1,"tid":2}
  ]})";
  const std::string out = obs::render_top_spans(trace, 3);
  EXPECT_NE(out.find("spice.dc"), std::string::npos);
  EXPECT_NE(out.find("memsys.characterize"), std::string::npos);
  EXPECT_THROW((void)obs::render_top_spans("not json", 3), ContractViolation);
}

// ---------------------------------------------------------------------------
// Live sampling. These need working POSIX per-thread timers; under
// sanitizers the signal/timer interplay is intercepted, so skip there (the
// same policy as the flight recorder's SIGSEGV test).

TEST_F(ProfTest, StartStopAggregatesSamplesAndSnapshotsDeterministically) {
  if (PPATC_UNDER_SANITIZER) {
    GTEST_SKIP() << "per-thread timers + SIGPROF are not sanitizer-clean";
  }
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only (no-op elsewhere)";
#endif
  obs::start_profiler(4000);
  EXPECT_TRUE(obs::prof_enabled());
  // Burn CPU until at least a few samples land (CPU-time clock: only actual
  // work advances it). Volatile sink so the loop cannot be optimized away.
  volatile double sink = 0.0;
  for (int spin = 0; spin < 4000 && obs::detail::prof_total_samples() < 8; ++spin) {
    for (int i = 0; i < 20000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
  obs::stop_profiler();
  EXPECT_FALSE(obs::prof_enabled());
  ASSERT_GE(obs::detail::prof_total_samples(), 1u) << "no SIGPROF samples landed";

  // Once stopped, the aggregation is quiesced: two drains must agree bit for
  // bit (the "drains deterministically" contract).
  const std::string folded1 = obs::prof_to_folded(obs::prof_snapshot());
  const std::string folded2 = obs::prof_to_folded(obs::prof_snapshot());
  EXPECT_EQ(folded1, folded2);

  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_EQ(snap.hz, 4000u);
  EXPECT_GE(snap.samples, 1u);
  EXPECT_FALSE(snap.stacks.empty());
  EXPECT_GT(snap.sample_ns_avg(), 0.0);

  obs::reset_prof();
  EXPECT_EQ(obs::detail::prof_total_samples(), 0u);
  EXPECT_TRUE(obs::prof_snapshot().stacks.empty());
}

// The acceptance scenario: a profile written in the middle of a 4-thread
// characterize_batch parses, attributes at least one sample to a memsys.*
// span, and carries the caller's provenance stamps. Fork-based so the armed
// timers, the custom rate, and the BENCH_* env cannot leak into other tests.
TEST_F(ProfTest, ProfileOfCharacterizeBatchAttributesSamplesToMemsysSpans) {
  if (PPATC_UNDER_SANITIZER) {
    GTEST_SKIP() << "fork + per-thread timers are not sanitizer-clean";
  }
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only (no-op elsewhere)";
#endif
  const std::string path = scratch_path("batch");
  std::error_code ec;
  fs::remove(path, ec);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: 4 worker threads, max rate, provenance stamped the way
    // run_perf.sh does it. The hot inner loops run under nested spice.*
    // spans; samples attribute to memsys.* only in the deck-building and
    // waveform post-processing windows, so batches repeat (bounded) until
    // one lands there.
    ::setenv("BENCH_GIT_SHA", "cafe0123test", 1);
    ::setenv("BENCH_TIMESTAMP_UTC", "2026-01-01T00:00:00Z", 1);
    runtime::set_thread_count(4);
    obs::start_profiler(10000);
    const std::vector<memsys::CellSpec> cells{
        memsys::m3d_igzo_cnfet_cell(), memsys::all_si_cell(),
        memsys::m3d_igzo_cnfet_cell(), memsys::all_si_cell()};
    bool memsys_sample = false;
    for (int round = 0; round < 50 && !memsys_sample; ++round) {
      (void)memsys::characterize_batch(cells, units::volts(0.2));
      for (const obs::ProfStack& s : obs::prof_snapshot().stacks) {
        if (s.span.rfind("memsys.", 0) == 0) {
          memsys_sample = true;
          break;
        }
      }
    }
    // Mid-run in spirit: the profiler is still armed on every pool thread
    // when the profile is written.
    obs::write_profile(path);
    ::_exit(memsys_sample ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
  ASSERT_EQ(WEXITSTATUS(status), 0) << "no memsys.* sample after bounded retries";

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "child wrote no profile at " << path;
  const obs::FoldedProfile profile = obs::parse_folded(text);
  EXPECT_GE(profile.total_samples(), 1u);
  EXPECT_EQ(profile.header.at("hz"), "10000");
  EXPECT_EQ(profile.header.at("git_sha"), "cafe0123test");
  EXPECT_EQ(profile.header.at("timestamp_utc"), "2026-01-01T00:00:00Z");

  // At least one sample landed inside a memsys.* span on some worker.
  bool memsys_span = false;
  for (const obs::FoldedStack& s : profile.stacks) {
    ASSERT_FALSE(s.frames.empty());
    if (s.frames[0].rfind("memsys.", 0) == 0) memsys_span = true;
  }
  EXPECT_TRUE(memsys_span) << "no sample attributed to a memsys.* span in:\n" << text;

  // The profile renders through the same paths ppatc-report uses.
  EXPECT_FALSE(obs::render_flame_table(profile, 10).empty());
  EXPECT_NE(obs::render_flame_svg(profile).find("</svg>"), std::string::npos);

  fs::remove(path, ec);
}

}  // namespace
}  // namespace ppatc
