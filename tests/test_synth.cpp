// Tests for the M0 synthesis model (Fig. 4 substrate).
#include <gtest/gtest.h>

#include "ppatc/common/contract.hpp"
#include "ppatc/synth/m0.hpp"

namespace ppatc::synth {
namespace {

using namespace ppatc::units;
using device::VtFlavor;

M0Model model(VtFlavor vt) {
  M0Options o;
  o.vt = vt;
  return M0Model{o};
}

TEST(M0, Rvt500MHzMatchesTableII) {
  // Table II: 1.42 pJ/cycle for the M0 at 500 MHz.
  const auto s = model(VtFlavor::kRvt).synthesize(megahertz(500));
  ASSERT_TRUE(s.timing_met);
  EXPECT_NEAR(in_picojoules(s.energy_per_cycle), 1.42, 0.02);
}

TEST(M0, FmaxOrderingByVt) {
  const double hvt = in_megahertz(model(VtFlavor::kHvt).fmax());
  const double rvt = in_megahertz(model(VtFlavor::kRvt).fmax());
  const double lvt = in_megahertz(model(VtFlavor::kLvt).fmax());
  const double slvt = in_megahertz(model(VtFlavor::kSlvt).fmax());
  EXPECT_LT(hvt, rvt);
  EXPECT_LT(rvt, lvt);
  EXPECT_LT(lvt, slvt);
}

TEST(M0, FmaxValuesAreSubGigahertzToGigahertz) {
  EXPECT_GT(in_megahertz(model(VtFlavor::kHvt).fmax()), 400.0);
  EXPECT_LT(in_megahertz(model(VtFlavor::kSlvt).fmax()), 3000.0);
}

TEST(M0, LeakageOrderingByVt) {
  const auto leak = [&](VtFlavor vt) { return in_microwatts(model(vt).leakage_power()); };
  EXPECT_LT(leak(VtFlavor::kHvt), leak(VtFlavor::kRvt));
  EXPECT_LT(leak(VtFlavor::kRvt), leak(VtFlavor::kLvt));
  EXPECT_LT(leak(VtFlavor::kLvt), leak(VtFlavor::kSlvt));
}

TEST(M0, TimingFailsAboveFmax) {
  const auto m = model(VtFlavor::kHvt);
  const auto s = m.synthesize(units::hertz(in_hertz(m.fmax()) * 1.01));
  EXPECT_FALSE(s.timing_met);
  // RVT cannot close 2 GHz either.
  EXPECT_FALSE(model(VtFlavor::kRvt).synthesize(gigahertz(2.0)).timing_met);
}

TEST(M0, EnergyRisesTowardFmax) {
  // Fig. 4 shape: past the leakage-dominated low end, energy/cycle grows as
  // the target approaches fmax (sizing).
  const auto m = model(VtFlavor::kRvt);
  const double e300 = in_picojoules(m.synthesize(megahertz(300)).energy_per_cycle);
  const double e500 = in_picojoules(m.synthesize(megahertz(500)).energy_per_cycle);
  const double e800 = in_picojoules(m.synthesize(megahertz(800)).energy_per_cycle);
  EXPECT_LT(e300, e500);
  EXPECT_LT(e500, e800);
}

TEST(M0, SlvtLeakageInflatesLowFrequencyEnergy) {
  // At 100 MHz, the leaky SLVT flavor pays more leakage-per-cycle than HVT.
  const double slvt = in_picojoules(model(VtFlavor::kSlvt).synthesize(megahertz(100)).energy_per_cycle);
  const double hvt = in_picojoules(model(VtFlavor::kHvt).synthesize(megahertz(100)).energy_per_cycle);
  EXPECT_GT(slvt, hvt);
}

TEST(M0, CriticalPathLeavesSlack) {
  const auto s = model(VtFlavor::kRvt).synthesize(megahertz(500));
  EXPECT_LT(in_nanoseconds(s.critical_path), 2.0);
  EXPECT_GT(in_nanoseconds(s.critical_path), 1.5);
}

TEST(M0, Fo4OrderingByVt) {
  EXPECT_GT(in_picoseconds(model(VtFlavor::kHvt).fo4_delay()),
            in_picoseconds(model(VtFlavor::kSlvt).fo4_delay()));
}

TEST(M0, AreaIndependentOfVt) {
  EXPECT_DOUBLE_EQ(in_square_millimetres(model(VtFlavor::kHvt).area()),
                   in_square_millimetres(model(VtFlavor::kSlvt).area()));
  EXPECT_NEAR(in_square_millimetres(model(VtFlavor::kRvt).area()), 0.0505, 0.0005);
}

TEST(M0, OptionValidation) {
  M0Options bad;
  bad.gate_count = 0.0;
  EXPECT_THROW(M0Model{bad}, ContractViolation);
  M0Options bad2;
  bad2.activity = 0.0;
  EXPECT_THROW(M0Model{bad2}, ContractViolation);
  const M0Model m{M0Options{}};
  EXPECT_THROW((void)m.synthesize(units::hertz(0.0)), ContractViolation);
}

TEST(Sweep, Figure4Structure) {
  const auto sweep = figure4_sweep();
  // 4 VT flavors x 10 frequency points.
  EXPECT_EQ(sweep.size(), 40u);
  int met = 0;
  int failed = 0;
  for (const auto& p : sweep) {
    if (p.result) {
      ++met;
      EXPECT_GT(in_picojoules(p.result->energy_per_cycle), 0.0);
    } else {
      ++failed;
    }
  }
  EXPECT_GT(met, 25);     // most points close
  EXPECT_GT(failed, 0);   // HVT fails the top of the sweep
}

TEST(Sweep, EveryVtCovers500MHz) {
  for (const auto& p : figure4_sweep()) {
    if (std::abs(in_megahertz(p.fclk) - 500.0) < 1e-6) {
      EXPECT_TRUE(p.result.has_value()) << device::to_string(p.vt);
    }
  }
}

TEST(Sweep, CustomRange) {
  const auto sweep = figure4_sweep(megahertz(200), megahertz(400), megahertz(100));
  EXPECT_EQ(sweep.size(), 12u);  // 4 VT x 3 points
  EXPECT_THROW((void)figure4_sweep(megahertz(400), megahertz(200), megahertz(100)),
               ContractViolation);
}

}  // namespace
}  // namespace ppatc::synth
