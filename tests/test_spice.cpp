// Tests for the MNA circuit simulator: stimuli, DC, transients vs analytic
// solutions, measurements, and energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "ppatc/common/contract.hpp"
#include "ppatc/device/library.hpp"
#include "ppatc/spice/circuit.hpp"
#include "ppatc/spice/simulator.hpp"

namespace ppatc::spice {
namespace {

using namespace ppatc::units;

TEST(Stimulus, DcIsConstant) {
  const Stimulus s = Stimulus::dc(volts(0.7));
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(0.0))), 0.7);
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(100.0))), 0.7);
  EXPECT_DOUBLE_EQ(in_volts(s.dc_value()), 0.7);
}

TEST(Stimulus, PwlInterpolatesAndClamps) {
  const Stimulus s = Stimulus::pwl({{seconds(1.0), volts(0.0)}, {seconds(3.0), volts(1.0)}});
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(0.0))), 0.0);   // clamp before
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(2.0))), 0.5);   // midpoint
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(10.0))), 1.0);  // clamp after
}

TEST(Stimulus, PwlRejectsNonIncreasingTimes) {
  EXPECT_THROW(Stimulus::pwl({{seconds(1.0), volts(0.0)}, {seconds(1.0), volts(1.0)}}),
               ContractViolation);
  EXPECT_THROW(Stimulus::pwl({}), ContractViolation);
}

TEST(Stimulus, PulseShape) {
  const Stimulus s = Stimulus::pulse(volts(0.0), volts(1.0), seconds(1.0), seconds(0.1),
                                     seconds(0.1), seconds(0.3), seconds(1.0));
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(0.5))), 0.0);    // before delay
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(1.05))), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(1.2))), 1.0);    // high
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(1.45))), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(1.9))), 0.0);    // low
  EXPECT_DOUBLE_EQ(in_volts(s.at(seconds(2.2))), 1.0);    // second period, high
}

TEST(Stimulus, PulseRejectsOverfullPeriod) {
  EXPECT_THROW(Stimulus::pulse(volts(0), volts(1), seconds(0), seconds(0.5), seconds(0.5),
                               seconds(0.5), seconds(1.0)),
               ContractViolation);
}

TEST(Waveform, InterpolationAndStats) {
  Waveform w;
  w.time = {seconds(0.0), seconds(1.0), seconds(2.0)};
  w.value = {0.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(w.at(seconds(0.5)), 1.0);
  EXPECT_DOUBLE_EQ(w.at(seconds(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(w.final(), 1.0);
  EXPECT_DOUBLE_EQ(w.minimum(), 0.0);
  EXPECT_DOUBLE_EQ(w.maximum(), 2.0);
  EXPECT_DOUBLE_EQ(integrate(w), 2.5);  // trapezoids: 1 + 1.5
}

TEST(Waveform, CrossTimeFindsNthCrossing) {
  Waveform w;
  for (int i = 0; i <= 100; ++i) {
    w.time.push_back(seconds(i * 0.01));
    w.value.push_back(std::sin(2.0 * M_PI * i * 0.01));  // one full period
  }
  const Duration rise = cross_time(w, 0.5, Edge::kRise);
  EXPECT_NEAR(in_seconds(rise), std::asin(0.5) / (2 * M_PI), 1e-3);
  const Duration fall = cross_time(w, 0.5, Edge::kFall);
  EXPECT_GT(fall, rise);
  EXPECT_LT(in_seconds(cross_time(w, 5.0, Edge::kEither)), 0.0);  // never crosses
}

TEST(Circuit, NodeManagement) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGroundNode);
  EXPECT_EQ(c.node("gnd"), kGroundNode);
  const NodeId a = c.node("a");
  EXPECT_EQ(c.node("a"), a);  // idempotent
  EXPECT_TRUE(c.has_node("a"));
  EXPECT_FALSE(c.has_node("b"));
  EXPECT_THROW(c.find_node("b"), ContractViolation);
  EXPECT_EQ(c.node_name(a), "a");
}

TEST(Circuit, RejectsBadElements) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("a", "0", -5.0), ContractViolation);
  EXPECT_THROW(c.add_capacitor("a", "0", farads(0.0)), ContractViolation);
  c.add_vsource("v1", "a", "0", Stimulus::dc(volts(1.0)));
  EXPECT_THROW(c.add_vsource("v1", "b", "0", Stimulus::dc(volts(1.0))), ContractViolation);
}

TEST(Dc, ResistorDivider) {
  Circuit c;
  c.add_vsource("vin", "in", "0", Stimulus::dc(volts(1.0)));
  c.add_resistor("in", "mid", 1000.0);
  c.add_resistor("mid", "0", 3000.0);
  const Simulator sim{c};
  const auto dc = sim.dc_operating_point();
  ASSERT_TRUE(dc.has_value());
  EXPECT_NEAR(dc->node_volts[c.find_node("mid")], 0.75, 1e-9);
  // Source current: 1 V over 4 kOhm, delivered out of the + terminal
  // (plus the femtoamp-scale gmin leakage).
  EXPECT_NEAR(dc->source_currents[0], 1.0 / 4000.0, 1e-10);
}

TEST(Dc, FloatingNodePulledByGmin) {
  Circuit c;
  c.add_vsource("vin", "in", "0", Stimulus::dc(volts(1.0)));
  c.add_resistor("in", "float", 1e6);
  const Simulator sim{c};
  const auto dc = sim.dc_operating_point();
  ASSERT_TRUE(dc.has_value());
  // gmin (1e-12 S) to ground forms a divider with the 1 MOhm: ~1.0 V.
  EXPECT_NEAR(dc->node_volts[c.find_node("float")], 1.0, 1e-3);
}

TEST(Dc, CmosInverterTransferPoints) {
  // NMOS + PMOS inverter at VDD = 0.7: input low -> out high; input high -> out low.
  for (const auto [vin, expect_high] : {std::pair{0.0, true}, std::pair{0.7, false}}) {
    Circuit c;
    c.add_vsource("vdd", "vdd", "0", Stimulus::dc(volts(0.7)));
    c.add_vsource("vin", "in", "0", Stimulus::dc(volts(vin)));
    c.add_fet("mp", device::silicon_finfet(device::Polarity::kPmos, device::VtFlavor::kRvt), 0.2,
              "out", "in", "vdd");
    c.add_fet("mn", device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kRvt), 0.1,
              "out", "in", "0");
    const Simulator sim{c};
    const auto dc = sim.dc_operating_point();
    ASSERT_TRUE(dc.has_value());
    const double vout = dc->node_volts[c.find_node("out")];
    if (expect_high) {
      EXPECT_GT(vout, 0.65);
    } else {
      EXPECT_LT(vout, 0.05);
    }
  }
}

TEST(Transient, RcChargeMatchesAnalytic) {
  // 1 kOhm, 1 uF step from 0 to 1 V: v(t) = 1 - exp(-t/tau), tau = 1 ms.
  Circuit c;
  c.add_vsource("vin", "in", "0",
                Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-6), volts(1.0)}}));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", farads(1e-6));
  const Simulator sim{c};
  const auto tr = sim.transient(seconds(5e-3), seconds(5e-6));
  ASSERT_TRUE(tr.has_value());
  const auto out = tr->node("out");
  for (const double t_ms : {0.5, 1.0, 2.0, 4.0}) {
    const double expected = 1.0 - std::exp(-t_ms / 1.0);
    EXPECT_NEAR(out.at(seconds(t_ms * 1e-3)), expected, 0.01) << "at t=" << t_ms << " ms";
  }
}

TEST(Transient, InitialConditionHonored) {
  // Cap starts at 1 V and discharges through R: v(t) = exp(-t/tau).
  Circuit c;
  c.add_resistor("out", "0", 1000.0);
  c.add_capacitor_ic("out", "0", farads(1e-6), volts(1.0));
  // A dummy source keeps the system well-posed.
  c.add_vsource("vref", "ref", "0", Stimulus::dc(volts(0.0)));
  c.add_resistor("ref", "out", 1e9);
  const Simulator sim{c};
  const auto tr = sim.transient(seconds(3e-3), seconds(2e-6), /*from_ics=*/true);
  ASSERT_TRUE(tr.has_value());
  const auto out = tr->node("out");
  EXPECT_NEAR(out.at(seconds(1e-3)), std::exp(-1.0), 0.02);
  EXPECT_NEAR(out.at(seconds(2e-3)), std::exp(-2.0), 0.02);
}

TEST(Transient, SourceEnergyMatchesCapacitorCharge) {
  // Charging C to V through R draws E = C V^2 from the source (half stored,
  // half dissipated), independent of R.
  Circuit c;
  c.add_vsource("vin", "in", "0",
                Stimulus::pwl({{seconds(0.0), volts(0.0)}, {seconds(1e-6), volts(1.0)}}));
  c.add_resistor("in", "out", 500.0);
  c.add_capacitor("out", "0", farads(1e-6));
  const Simulator sim{c};
  const auto tr = sim.transient(seconds(10e-3), seconds(5e-6));
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(in_joules(tr->source_energy("vin")), 1e-6 * 1.0 * 1.0, 5e-8);
}

TEST(Transient, RejectsBadArguments) {
  Circuit c;
  c.add_vsource("v", "a", "0", Stimulus::dc(volts(1.0)));
  c.add_resistor("a", "0", 100.0);
  const Simulator sim{c};
  EXPECT_THROW((void)sim.transient(seconds(0.0), seconds(1.0)), ContractViolation);
  EXPECT_THROW((void)sim.transient(seconds(1.0), seconds(2.0)), ContractViolation);
}

TEST(Transient, InverterSwitchesDynamically) {
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Stimulus::dc(volts(0.7)));
  c.add_vsource("vin", "in", "0",
                Stimulus::pulse(volts(0.0), volts(0.7), nanoseconds(1.0), picoseconds(20),
                                picoseconds(20), nanoseconds(2.0), nanoseconds(5.0)));
  c.add_fet("mp", device::silicon_finfet(device::Polarity::kPmos, device::VtFlavor::kRvt), 0.2,
            "out", "in", "vdd");
  c.add_fet("mn", device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kRvt), 0.1,
            "out", "in", "0");
  c.add_capacitor("out", "0", femtofarads(5.0));
  const Simulator sim{c};
  const auto tr = sim.transient(nanoseconds(5.0), picoseconds(5.0));
  ASSERT_TRUE(tr.has_value());
  const auto out = tr->node("out");
  EXPECT_GT(out.at(nanoseconds(0.9)), 0.65);   // input low -> out high
  EXPECT_LT(out.at(nanoseconds(2.5)), 0.05);   // input high -> out low
  EXPECT_GT(out.at(nanoseconds(4.8)), 0.6);    // input low again -> out recovers
  // Propagation delay is positive and sub-ns for this load.
  const Duration tfall = cross_time(out, 0.35, Edge::kFall);
  EXPECT_GT(in_picoseconds(tfall), 1000.0);  // after the 1 ns input edge
  EXPECT_LT(in_picoseconds(tfall), 1200.0);
}

TEST(Simulator, RequiresNonTrivialCircuit) {
  Circuit c;
  EXPECT_THROW(Simulator{c}, ContractViolation);
}

}  // namespace
}  // namespace ppatc::spice
