// Tests for grids, materials (MPA), and the embodied-carbon model (Eq. 2-3),
// pinned to the paper's Fig. 2c / Table II anchors.
#include <gtest/gtest.h>

#include "ppatc/carbon/embodied.hpp"
#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/grid.hpp"
#include "ppatc/carbon/materials.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {
namespace {

using namespace ppatc::units;

TEST(Grids, Figure2cValues) {
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(grids::us().intensity), 380.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(grids::coal().intensity), 820.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(grids::solar().intensity), 48.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(grids::taiwan().intensity), 563.0);
  EXPECT_EQ(grids::figure2c().size(), 4u);
}

TEST(Diurnal, FlatProfileIsFlat) {
  const auto d = DiurnalIntensity::flat(grams_per_kilowatt_hour(380.0));
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(d.at_hour(3.0)), 380.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(d.mean_over_window(20.0, 22.0)), 380.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(d.daily_mean()), 380.0);
}

TEST(Diurnal, EveningPeakRaisesWindowMean) {
  const auto d = DiurnalIntensity::with_evening_peak(grams_per_kilowatt_hour(380.0), 0.3);
  const double evening = in_grams_per_kilowatt_hour(d.mean_over_window(20.0, 22.0));
  const double morning = in_grams_per_kilowatt_hour(d.mean_over_window(4.0, 6.0));
  EXPECT_GT(evening, morning);
  EXPECT_GT(evening, 380.0);
  // Mean over the whole day sits between the two.
  const double daily = in_grams_per_kilowatt_hour(d.daily_mean());
  EXPECT_GT(daily, morning);
  EXPECT_LT(daily, evening);
}

TEST(Diurnal, WindowValidation) {
  const auto d = DiurnalIntensity::flat(grams_per_kilowatt_hour(380.0));
  EXPECT_THROW((void)d.mean_over_window(-1.0, 5.0), ContractViolation);
  EXPECT_THROW((void)d.mean_over_window(5.0, 5.0), ContractViolation);
  EXPECT_THROW((void)d.mean_over_window(5.0, 25.0), ContractViolation);
  EXPECT_THROW((void)d.at_hour(24.0), ContractViolation);
}

TEST(Diurnal, HourlyProfileExact) {
  std::array<CarbonIntensity, 24> h{};
  for (int i = 0; i < 24; ++i) h[i] = grams_per_kilowatt_hour(100.0 + i);
  const auto d = DiurnalIntensity::hourly(h);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(d.at_hour(5.5)), 105.0);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(d.mean_over_window(20.0, 22.0)), 120.5);
}

TEST(Materials, SiWaferMpaMatchesPaper) {
  // 500 gCO2e/cm^2 -> ~3.5e5 g per 300 mm wafer.
  const Carbon per_wafer = silicon_wafer_mpa() * wafer_300mm_area();
  EXPECT_NEAR(in_grams_co2e(per_wafer), 3.5e5, 0.05e5);
}

TEST(Materials, CntMassIsPicogramScalePerDie) {
  // Paper: "total CNT mass per wafer in our design is on the order of
  // picograms" per die-scale area; per wafer it is nanogram scale.
  const Mass m = cnt_mass_per_wafer(CntFilmSpec{}, wafer_300mm_area());
  EXPECT_GT(in_grams(m), 0.0);
  EXPECT_LT(in_grams(m), 1e-3);  // far below a milligram per wafer
}

TEST(Materials, CntMpaNegligibleVsWafer) {
  const CarbonPerArea cnt = cnt_mpa(CntFilmSpec{}, wafer_300mm_area());
  EXPECT_LT(in_grams_per_square_centimetre(cnt),
            1e-3 * in_grams_per_square_centimetre(silicon_wafer_mpa()));
}

TEST(Materials, CntMassScalesWithTiersAndDensity) {
  CntFilmSpec one;
  one.tiers = 1;
  CntFilmSpec two;
  two.tiers = 2;
  const Area w = wafer_300mm_area();
  EXPECT_NEAR(2.0 * in_grams(cnt_mass_per_wafer(one, w)), in_grams(cnt_mass_per_wafer(two, w)),
              1e-18);
  CntFilmSpec dense;
  dense.cnts_per_um = 400.0;
  EXPECT_NEAR(in_grams(cnt_mass_per_wafer(dense, w)),
              2.0 * in_grams(cnt_mass_per_wafer(CntFilmSpec{}, w)), 1e-18);
}

TEST(Materials, IgzoMpaSmall) {
  const CarbonPerArea igzo = igzo_mpa(IgzoFilmSpec{});
  EXPECT_GT(in_grams_per_square_centimetre(igzo), 0.0);
  EXPECT_LT(in_grams_per_square_centimetre(igzo),
            0.01 * in_grams_per_square_centimetre(silicon_wafer_mpa()));
}

TEST(Materials, SpecValidation) {
  CntFilmSpec bad;
  bad.coverage_fraction = 1.5;
  EXPECT_THROW((void)cnt_mass_per_wafer(bad, wafer_300mm_area()), ContractViolation);
  IgzoFilmSpec bad2;
  bad2.deposition_yield = 0.0;
  EXPECT_THROW((void)igzo_mpa(bad2), ContractViolation);
}

TEST(Embodied, WaferAreaIs706cm2) {
  EXPECT_NEAR(in_square_centimetres(wafer_300mm_area()), 706.86, 0.01);
}

TEST(Embodied, GpaScalesWithEpaRatio) {
  // Eq. 3: GPA = GPA_iN7 * EPA/EPA_iN7.
  const auto si = all_si_embodied_model();
  const double epa_ratio = si.energy_per_wafer() / in7_reference_energy_per_wafer();
  EXPECT_NEAR(in_grams_per_square_centimetre(si.gpa()),
              200.0 * epa_ratio, 0.2);
}

TEST(Embodied, PerWaferAnchorsUsGrid) {
  // Table II: 837 kg (all-Si), 1100 kg (M3D) on the U.S. grid.
  const auto si = all_si_embodied_model();
  const auto m3d = m3d_embodied_model();
  EXPECT_NEAR(in_kilograms_co2e(si.carbon_per_wafer(grids::us())), 837.0, 4.0);
  EXPECT_NEAR(in_kilograms_co2e(m3d.carbon_per_wafer(grids::us())), 1100.0, 5.0);
}

TEST(Embodied, Figure2cAllGrids) {
  const auto si = all_si_embodied_model();
  const auto m3d = m3d_embodied_model();
  const struct {
    Grid grid;
    double si_kg, m3d_kg;
  } expected[] = {
      {grids::us(), 837.0, 1100.0},
      {grids::coal(), 1267.0, 1765.0},
      {grids::solar(), 512.0, 598.0},
      {grids::taiwan(), 1016.0, 1377.0},
  };
  for (const auto& e : expected) {
    EXPECT_NEAR(in_kilograms_co2e(si.carbon_per_wafer(e.grid)), e.si_kg, 6.0) << e.grid.name;
    EXPECT_NEAR(in_kilograms_co2e(m3d.carbon_per_wafer(e.grid)), e.m3d_kg, 8.0) << e.grid.name;
  }
}

TEST(Embodied, AverageRatioIs1p31) {
  // The paper's headline: 1.31x higher per wafer on average across grids.
  const auto si = all_si_embodied_model();
  const auto m3d = m3d_embodied_model();
  double sum = 0.0;
  for (const auto& g : grids::figure2c()) {
    sum += m3d.carbon_per_wafer(g) / si.carbon_per_wafer(g);
  }
  EXPECT_NEAR(sum / 4.0, 1.31, 0.01);
}

TEST(Embodied, BreakdownSumsToTotal) {
  const auto m3d = m3d_embodied_model();
  const auto b = m3d.per_wafer(grids::us());
  EXPECT_NEAR(in_grams_co2e(b.total()),
              in_grams_co2e(b.materials + b.gases + b.fab_energy), 1e-6);
  EXPECT_GT(b.materials, Carbon{});
  EXPECT_GT(b.gases, Carbon{});
  EXPECT_GT(b.fab_energy, Carbon{});
}

TEST(Embodied, FabEnergyTermIncludesFacilityOverhead) {
  const auto si = all_si_embodied_model();
  const auto b = si.per_wafer(grids::us());
  const Carbon raw = grids::us().intensity * si.energy_per_wafer();
  EXPECT_NEAR(in_grams_co2e(b.fab_energy), kFacilityOverhead * in_grams_co2e(raw), 1.0);
}

TEST(Embodied, SolarGridMinimizesFabEnergyShare) {
  const auto m3d = m3d_embodied_model();
  const auto solar = m3d.per_wafer(grids::solar());
  const auto coal = m3d.per_wafer(grids::coal());
  // Materials+gases are grid-independent; only fab energy moves.
  EXPECT_DOUBLE_EQ(in_grams_co2e(solar.materials), in_grams_co2e(coal.materials));
  EXPECT_DOUBLE_EQ(in_grams_co2e(solar.gases), in_grams_co2e(coal.gases));
  EXPECT_LT(solar.fab_energy, coal.fab_energy);
}

TEST(Embodied, M3dMpaIncludesEmergingMaterialAdders) {
  const auto si = all_si_embodied_model();
  const auto m3d = m3d_embodied_model();
  EXPECT_GT(m3d.mpa(), si.mpa());
  // ... but the adder is tiny (picogram CNT masses).
  EXPECT_LT(in_grams_per_square_centimetre(m3d.mpa() - si.mpa()),
            0.01 * in_grams_per_square_centimetre(si.mpa()));
}

}  // namespace
}  // namespace ppatc::carbon
