// Tests for the flight recorder and diagnostic bundles (ppatc::obs::flight):
// ring semantics (wraparound, drop accounting, ordering), drain determinism
// across thread counts, bundle JSON validity and round-trips through the
// timeline renderer, the failure funnel (injected ConvergenceError inside a
// 4-thread memsys::characterize_batch names the failing deck/corner and each
// worker's in-flight chunk), and — fork-based, skipped under sanitizers — the
// async-signal-safe SIGSEGV bundle path.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "json_validator.hpp"
#include "ppatc/common/contract.hpp"
#include "ppatc/memsys/bitcell.hpp"
#include "ppatc/obs/flight.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/obs/trace.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "ppatc/spice/simulator.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PPATC_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PPATC_UNDER_SANITIZER 1
#endif
#endif
#ifndef PPATC_UNDER_SANITIZER
#define PPATC_UNDER_SANITIZER 0
#endif

namespace ppatc {
namespace {

namespace fs = std::filesystem;
using testutil::JsonValidator;

// Every test starts from an enabled, empty flight state with bundling off,
// and restores the defaults on exit so test order cannot leak state.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_flight_enabled(true);
    obs::reset_flight();
    obs::set_diag_dir("");
  }
  void TearDown() override {
    obs::set_diag_dir("");
    obs::reset_flight();
    obs::set_flight_enabled(true);  // the documented default
    obs::set_metrics_enabled(false);
    runtime::set_thread_count(0);
  }

  // A scratch bundle directory unique to this process, created on demand.
  static std::string scratch_dir(const char* tag) {
    return (fs::temp_directory_path() /
            ("ppatc_flight_" + std::string(tag) + "_" + std::to_string(::getpid())))
        .string();
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  // The calling thread's snapshot (tid 0 is whichever thread registered
  // first; tests look threads up by tid instead of assuming).
  static const obs::FlightThreadSnapshot* thread_snap(const obs::FlightSnapshot& snap,
                                                      std::uint32_t tid) {
    for (const auto& t : snap.threads) {
      if (t.tid == tid) return &t;
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// Ring semantics.

TEST_F(FlightTest, MarksAreRecordedInOrderWithPayloads) {
  obs::flight_mark("test.u", std::uint64_t{42});
  obs::flight_mark("test.f", 2.5);
  obs::flight_mark("test.s", std::string_view{"hello"});
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->events.size(), 3u);
  EXPECT_EQ(t->events[0].name, "test.u");
  EXPECT_EQ(t->events[0].kind, obs::FlightEventKind::kMarkU64);
  EXPECT_EQ(t->events[0].u64, 42u);
  EXPECT_EQ(t->events[1].kind, obs::FlightEventKind::kMarkF64);
  EXPECT_DOUBLE_EQ(t->events[1].f64, 2.5);
  EXPECT_EQ(t->events[2].kind, obs::FlightEventKind::kMarkStr);
  EXPECT_EQ(t->events[2].str, "hello");
  // Timestamps are monotone within a thread.
  EXPECT_LE(t->events[0].ts_ns, t->events[1].ts_ns);
  EXPECT_LE(t->events[1].ts_ns, t->events[2].ts_ns);
  EXPECT_EQ(t->dropped, 0u);
}

TEST_F(FlightTest, LongStringPayloadsAreTruncatedNotCorrupted) {
  const std::string long_name(100, 'x');
  obs::flight_mark("test.long", std::string_view{long_name});
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->events.size(), 1u);
  EXPECT_EQ(t->events[0].str, std::string(obs::detail::kFlightStrBytes, 'x'));
}

TEST_F(FlightTest, RingWrapsKeepingTheLastNEventsAndCountingDrops) {
  constexpr std::uint64_t kTotal = 1000;  // well past the 256-slot ring
  for (std::uint64_t i = 0; i < kTotal; ++i) obs::flight_mark("test.wrap", i);
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->events.size(), obs::detail::kFlightRingSize);
  EXPECT_EQ(t->dropped, kTotal - obs::detail::kFlightRingSize);
  // The survivors are exactly the newest kFlightRingSize, oldest -> newest.
  for (std::size_t i = 0; i < t->events.size(); ++i) {
    EXPECT_EQ(t->events[i].u64, kTotal - obs::detail::kFlightRingSize + i);
  }
}

TEST_F(FlightTest, DisabledRecorderRecordsNothing) {
  obs::set_flight_enabled(false);
  obs::flight_mark("test.off", std::uint64_t{1});
  obs::flight_count("test.off_count", 1);
  { const obs::Span span{"test.off_span"}; }
  obs::set_flight_enabled(true);
  const auto snap = obs::flight_snapshot();
  for (const auto& t : snap.threads) EXPECT_TRUE(t.events.empty());
}

TEST_F(FlightTest, ResetFlightClearsEventsButKeepsDropAccountingAtZero) {
  obs::flight_mark("test.before", std::uint64_t{1});
  obs::reset_flight();
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->events.empty());
  EXPECT_EQ(t->dropped, 0u);
}

TEST_F(FlightTest, SpansMaintainTheOpenSpanStack) {
  const obs::Span outer{"test.outer"};
  {
    const obs::Span inner{"test.inner"};
    const auto snap = obs::flight_snapshot();
    const auto* t = thread_snap(snap, obs::flight_thread_id());
    ASSERT_NE(t, nullptr);
    ASSERT_GE(t->open_spans.size(), 2u);
    EXPECT_EQ(t->open_spans[t->open_spans.size() - 2].name, "test.outer");
    EXPECT_EQ(t->open_spans.back().name, "test.inner");
  }
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->open_spans.size(), 1u);
  EXPECT_EQ(t->open_spans.back().name, "test.outer");
  // begin/end events both landed in the ring.
  ASSERT_EQ(t->events.size(), 3u);
  EXPECT_EQ(t->events[0].kind, obs::FlightEventKind::kSpanBegin);
  EXPECT_EQ(t->events[1].kind, obs::FlightEventKind::kSpanBegin);
  EXPECT_EQ(t->events[2].kind, obs::FlightEventKind::kSpanEnd);
  EXPECT_EQ(t->events[2].name, "test.inner");
}

TEST_F(FlightTest, SpanEndStaysBalancedWhenRecordingTogglesMidSpan) {
  {
    const obs::Span span{"test.toggle"};
    obs::set_flight_enabled(false);
  }  // destructor must still record the end: begin ran while enabled
  obs::set_flight_enabled(true);
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->open_spans.empty());
}

TEST_F(FlightTest, CountersFeedTheFlightRingEvenWithAggregateMetricsOff) {
  obs::set_metrics_enabled(false);
  static obs::Counter& c = obs::counter("flight.test_counter");
  c.add(7);
  const auto snap = obs::flight_snapshot();
  const auto* t = thread_snap(snap, obs::flight_thread_id());
  ASSERT_NE(t, nullptr);
  ASSERT_FALSE(t->events.empty());
  EXPECT_EQ(t->events.back().kind, obs::FlightEventKind::kCounter);
  EXPECT_EQ(t->events.back().name, "flight.test_counter");
  EXPECT_EQ(t->events.back().u64, 7u);
  EXPECT_EQ(c.value(), 0u);  // aggregate collection really was off
}

// ---------------------------------------------------------------------------
// Drain determinism across thread counts: the union of runtime.chunk.index
// marks across all rings is exactly {0..N-1} at any PPATC_THREADS.

void run_chunk_sweep_and_check(std::size_t threads, std::size_t tasks) {
  runtime::set_thread_count(threads);
  obs::reset_flight();
  std::vector<int> out(tasks, 0);
  runtime::parallel_for(tasks, [&](std::size_t i) { out[i] = 1; });
  const auto snap = obs::flight_snapshot();
  std::multiset<std::uint64_t> chunk_marks;
  for (const auto& t : snap.threads) {
    for (const auto& e : t.events) {
      if (e.name == "runtime.chunk.index") chunk_marks.insert(e.u64);
    }
    EXPECT_EQ(t.dropped, 0u);
  }
  ASSERT_EQ(chunk_marks.size(), tasks) << "threads=" << threads;
  std::uint64_t expect = 0;
  for (const std::uint64_t v : chunk_marks) EXPECT_EQ(v, expect++);
}

TEST_F(FlightTest, ChunkMarksDrainDeterministicallyAtOneThread) {
  run_chunk_sweep_and_check(1, 64);
}

TEST_F(FlightTest, ChunkMarksDrainDeterministicallyAtFourThreads) {
  run_chunk_sweep_and_check(4, 64);
}

// ---------------------------------------------------------------------------
// Diagnostic bundles (normal-allocation path).

TEST_F(FlightTest, BundleIsValidJsonAndRoundTripsThroughTheTimeline) {
  const std::string dir = scratch_dir("bundle");
  obs::set_diag_dir(dir);
  obs::flight_mark("test.context", std::string_view{"alpha"});
  const obs::Span span{"test.open_at_death"};
  const std::string path = obs::write_diagnostic_bundle("test-kind", "what happened");
  ASSERT_FALSE(path.empty());
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"test-kind\""), std::string::npos);
  EXPECT_NE(json.find("what happened"), std::string::npos);
  EXPECT_NE(json.find("test.context"), std::string::npos);
  EXPECT_NE(json.find("test.open_at_death"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"ppatc-diag-1\""), std::string::npos);
  // The timeline renderer accepts the bundle and marks the failure.
  const std::string timeline = obs::render_timeline(json);
  EXPECT_NE(timeline.find("diagnostic bundle"), std::string::npos);
  EXPECT_NE(timeline.find("test-kind"), std::string::npos);
  EXPECT_NE(timeline.find("FAILURE on this thread"), std::string::npos);
  EXPECT_NE(timeline.find("test.open_at_death"), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(FlightTest, WriteBundleReturnsEmptyWhenDisabled) {
  EXPECT_EQ(obs::write_diagnostic_bundle("k", "w"), "");
}

TEST_F(FlightTest, ContractViolationsProduceBundlesViaTheObserver) {
  const std::string dir = scratch_dir("contract");
  obs::set_diag_dir(dir);
  obs::install_failure_handlers();
  EXPECT_THROW(
      { PPATC_EXPECT(false, "deliberate contract failure for the bundle test"); },
      ContractViolation);
  std::vector<std::string> bundles;
  for (const auto& e : fs::directory_iterator(dir)) bundles.push_back(e.path().string());
  ASSERT_FALSE(bundles.empty());
  const std::string json = slurp(bundles.front());
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("precondition"), std::string::npos);
  EXPECT_NE(json.find("deliberate contract failure"), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(FlightTest, TimelineRejectsMalformedInput) {
  EXPECT_THROW((void)obs::render_timeline("not json"), ContractViolation);
  EXPECT_THROW((void)obs::render_timeline("{\"neither\":1}"), ContractViolation);
}

TEST_F(FlightTest, TimelineRendersChromeTraces) {
  obs::set_tracing_enabled(true);
  obs::reset_trace();
  { const obs::Span span{"test.traced_region"}; }
  const std::string json = obs::trace_to_json();
  obs::set_tracing_enabled(false);
  const std::string timeline = obs::render_timeline(json);
  EXPECT_NE(timeline.find("ppatc timeline: trace"), std::string::npos);
  EXPECT_NE(timeline.find("test.traced_region"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: an injected ConvergenceError inside a 4-thread
// characterize_batch produces a bundle naming the failing deck and corner and
// each worker's in-flight chunk.

TEST_F(FlightTest, InjectedConvergenceErrorInBatchProducesAForensicBundle) {
  const std::string dir = scratch_dir("converge");
  obs::set_diag_dir(dir);
  runtime::set_thread_count(4);
  spice::SimOptions crippled;
  crippled.max_newton_iterations = 1;  // DC cannot converge in one iteration
  crippled.gmin_steps = 1;
  const std::vector<memsys::CellSpec> cells{memsys::m3d_igzo_cnfet_cell(), memsys::all_si_cell()};
  EXPECT_THROW((void)memsys::characterize_batch(cells, units::volts(0.2), crippled),
               spice::ConvergenceError);
  std::vector<std::string> bundles;
  for (const auto& e : fs::directory_iterator(dir)) bundles.push_back(e.path().string());
  ASSERT_FALSE(bundles.empty());
  // Every bundle is valid JSON; at least one names the deck, the corner, the
  // in-flight chunks, and the failure kind.
  bool found_forensics = false;
  for (const auto& b : bundles) {
    const std::string json = slurp(b);
    EXPECT_TRUE(JsonValidator::valid(json)) << b;
    if (json.find("memsys.deck") != std::string::npos &&
        (json.find("m3d-igzo-cnfet-3t") != std::string::npos ||
         json.find("all-si-3t") != std::string::npos) &&
        json.find("memsys.corner") != std::string::npos &&
        json.find("runtime.chunk.index") != std::string::npos &&
        json.find("spice::ConvergenceError") != std::string::npos) {
      found_forensics = true;
      // And the timeline names the deck too.
      const std::string timeline = obs::render_timeline(json);
      EXPECT_NE(timeline.find("memsys.deck"), std::string::npos);
    }
  }
  EXPECT_TRUE(found_forensics);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fork-based death test: the async-signal-safe SIGSEGV path. Skipped under
// TSan/ASan — sanitizer runtimes install their own signal machinery and do
// not survive fork+signal flows.

TEST_F(FlightTest, FatalSignalWritesABundleFromTheHandler) {
  if (PPATC_UNDER_SANITIZER) GTEST_SKIP() << "signal-death path not run under sanitizers";
  const std::string dir = scratch_dir("signal");
  obs::set_diag_dir(dir);
  obs::install_failure_handlers();  // parent installs; child inherits
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record some context, then die by signal. _exit codes flag the
    // "handler did not re-kill us" failure mode.
    obs::flight_mark("test.child_context", std::uint64_t{123});
    { const obs::Span span{"test.child_open_span"}; }
    const obs::Span dying{"test.child_dying_span"};
    ::raise(SIGSEGV);
    ::_exit(97);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited normally: " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  const std::string bundle =
      dir + "/ppatc_diag_signal_" + std::to_string(static_cast<long>(pid)) + ".json";
  ASSERT_TRUE(fs::is_regular_file(bundle)) << bundle;
  const std::string json = slurp(bundle);
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"kind\":\"signal\""), std::string::npos);
  EXPECT_NE(json.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(json.find("test.child_context"), std::string::npos);
  EXPECT_NE(json.find("test.child_dying_span"), std::string::npos);
  // The signal bundle renders through the same timeline path.
  const std::string timeline = obs::render_timeline(json);
  EXPECT_NE(timeline.find("SIGSEGV"), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Partial exit outputs: notify_failure re-drives the PPATC_TRACE-style trace
// writer so failures ship the spans recorded so far (satellite of the bundle
// writer; the env-driven path is exercised end-to-end in CI).

TEST_F(FlightTest, EnvParsersFollowTheDocumentedContract) {
  EXPECT_TRUE(obs::detail::parse_flight_env(nullptr));
  EXPECT_TRUE(obs::detail::parse_flight_env(""));
  EXPECT_TRUE(obs::detail::parse_flight_env("1"));
  EXPECT_FALSE(obs::detail::parse_flight_env("0"));
  EXPECT_EQ(obs::detail::parse_interval_env(nullptr), 0u);
  EXPECT_EQ(obs::detail::parse_interval_env(""), 0u);
  EXPECT_EQ(obs::detail::parse_interval_env("0"), 0u);
  EXPECT_EQ(obs::detail::parse_interval_env("250"), 250u);
  EXPECT_EQ(obs::detail::parse_interval_env("junk"), 0u);
  EXPECT_EQ(obs::detail::parse_interval_env("999999999"), 3600000u);  // clamped to an hour
}

}  // namespace
}  // namespace ppatc
