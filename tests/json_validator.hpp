// Minimal recursive-descent JSON validator (syntax only), shared by the
// observability and report tests. Enough to assert exported traces, metric
// dumps, and run manifests are well-formed without pulling in a JSON
// dependency.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace ppatc::testutil {

class JsonValidator {
 public:
  [[nodiscard]] static bool valid(const std::string& text) {
    JsonValidator v{text};
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_{text} {}

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) return false;
    }
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) return false;
            ++pos_;
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
            e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return consume('"');
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    skip_ws();
    if (eof()) return false;
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace ppatc::testutil
