// ppatc-lint self-test.
//
// Three layers:
//  1. Fixture trees (tests/lint_fixtures/): known_good must come back clean
//     (with the deliberate suppression counted), known_bad must fire every
//     rule at the expected sites.
//  2. lint_text unit tests for the subtle cases: comment/string stripping,
//     same-line vs line-above suppression, the function-name and
//     compound-dimension escapes of unit-typed-api.
//  3. The real repository must lint clean — the same invariant the
//     lint.ppatc_lint ctest enforces, checked here through the library API.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "call_graph.hpp"
#include "json_validator.hpp"
#include "lint_core.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "symbols.hpp"

namespace lint = ppatc::lint;

namespace {

std::vector<lint::Finding> lint_one(const std::string& rel, const std::string& text) {
  std::vector<lint::Finding> out;
  lint::lint_text(rel, text, lint::Config{}, out);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool has_rule(const std::vector<lint::Finding>& findings, const std::string& rule,
              bool suppressed = false) {
  return std::any_of(findings.begin(), findings.end(), [&](const lint::Finding& f) {
    return f.rule == rule && f.suppressed == suppressed;
  });
}

}  // namespace

// ---- fixture trees ----------------------------------------------------------

TEST(LintFixtures, KnownGoodIsCleanWithCountedSuppressions) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_good");
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_EQ(report.violation_count(), 0u);
  // The deliberate allow(unit-typed-api) in good.hpp, the allow(realtime)
  // trace in good_realtime.cpp, and the two allow(determinism-taint) forms
  // (sink line + function-definition line) must be counted, not lost.
  EXPECT_EQ(report.suppression_count(), 4u) << lint::format_report(report);
  const auto by_rule = report.count_by_rule(/*suppressed=*/true);
  ASSERT_TRUE(by_rule.contains("unit-typed-api"));
  EXPECT_EQ(by_rule.at("unit-typed-api"), 1u);
  ASSERT_TRUE(by_rule.contains("realtime-purity"));
  EXPECT_EQ(by_rule.at("realtime-purity"), 1u);
  ASSERT_TRUE(by_rule.contains("determinism-taint"));
  EXPECT_EQ(by_rule.at("determinism-taint"), 2u);
  EXPECT_EQ(report.files_scanned, 18u);
}

TEST(LintFixtures, KnownBadFiresEveryRule) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  EXPECT_FALSE(report.clean());

  const auto by_rule = report.count_by_rule(/*suppressed=*/false);
  for (const char* rule : {"unit-typed-api", "determinism", "unordered-iter", "env-allowlist",
                           "pragma-once", "layering", "parallel-safety", "units-escape",
                           "lifetime", "obs-name-literal", "signal-safety", "noexcept-escape",
                           "realtime-purity", "determinism-taint", "fp-reduction-order",
                           "interproc-units-escape"}) {
    ASSERT_TRUE(by_rule.contains(rule)) << rule << "\n" << lint::format_report(report);
  }

  // bad_api.hpp: the energy_j field and the area_mm2 parameter.
  EXPECT_EQ(by_rule.at("unit-typed-api"), 2u);
  // bad_determinism.cpp: srand, time-seed, random_device, system_clock, rand.
  EXPECT_EQ(by_rule.at("determinism"), 5u);
  // bad_unordered.cpp's fold plus bad_taint.cpp's fold_cache range-for.
  EXPECT_EQ(by_rule.at("unordered-iter"), 2u);
  // bad_env.cpp's getenv plus the ghost entry in env_allowlist.toml.
  EXPECT_EQ(by_rule.at("env-allowlist"), 2u);
  EXPECT_EQ(by_rule.at("pragma-once"), 1u);
  // bad_cross.cpp: the public include and the relative reach into alpha.
  EXPECT_EQ(by_rule.at("layering"), 2u);
  // bad_parallel.cpp: shared +=, shared ++, lock_guard + mutex on one line;
  // bad_fp_reduction.cpp: the direct sum += and product *= shared writes.
  EXPECT_EQ(by_rule.at("parallel-safety"), 6u);
  // bad_units.cpp: dimension mix, unit mix, wrong factory, raw .value().
  EXPECT_EQ(by_rule.at("units-escape"), 4u);
  // bad_lifetime.cpp: view of a local, reference to a local, view of a temp.
  EXPECT_EQ(by_rule.at("lifetime"), 3u);
  // bad_obs_names.cpp: dynamic counter name, dynamic mark name, dynamic span.
  EXPECT_EQ(by_rule.at("obs-name-literal"), 3u);
  // bad_signal.cpp: string, snprintf, malloc, free, unannotated helper call;
  // bad_timer_signal.cpp: snprintf in a sigev_notify_function cone.
  EXPECT_EQ(by_rule.at("signal-safety"), 6u);
  // bad_noexcept.cpp: direct throw, transitive throw, contract macro.
  EXPECT_EQ(by_rule.at("noexcept-escape"), 3u);
  // bad_realtime.cpp: malloc, free, lock_guard, printf reached from the
  // lambda; plus the lock_guard inside bad_parallel.cpp's lambda.
  EXPECT_EQ(by_rule.at("realtime-purity"), 5u);
  // bad_taint.cpp: pointer fingerprint via helper, gettid, unordered fold via
  // helper, cache-key reinterpret_cast, std::hash of a pointer.
  EXPECT_EQ(by_rule.at("determinism-taint"), 5u);
  // bad_fp_reduction.cpp: direct sum +=, direct product *=, the accumulate
  // helper, the two-hop merge_into chain; plus bad_parallel.cpp's total +=.
  EXPECT_EQ(by_rule.at("fp-reduction-order"), 5u);
  // bad_units_chain.cpp: cross-function dimension mix, callee parameter
  // mismatch, wrong-factory rewrap, same-dimension unit mix.
  EXPECT_EQ(by_rule.at("interproc-units-escape"), 4u);
  EXPECT_EQ(report.suppression_count(), 0u);
}

TEST(LintFixtures, SeededViolationsNameFileAndLine) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto find = [&](const std::string& rule, const std::string& file) {
    return std::find_if(report.findings.begin(), report.findings.end(),
                        [&](const lint::Finding& f) { return f.rule == rule && f.file == file; });
  };
  // The seeded layering breach: beta includes alpha on line 4.
  const auto layering = find("layering", "beta/bad_cross.cpp");
  ASSERT_NE(layering, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(layering->line, 4);
  // The seeded shared write inside parallel_for: `total +=` on line 13.
  const auto shared = find("parallel-safety", "demo/bad_parallel.cpp");
  ASSERT_NE(shared, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(shared->line, 13);
  // Interprocedural seeds, each named by file:line. The findings tail is
  // sorted, so the first match per file is the lowest-line seed.
  const auto signal = find("signal-safety", "demo/bad_signal.cpp");
  ASSERT_NE(signal, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(signal->line, 18);  // std::string in crash_handler
  EXPECT_GT(signal->col, 0);    // interproc findings carry token columns
  const auto noexc = find("noexcept-escape", "demo/bad_noexcept.cpp");
  ASSERT_NE(noexc, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(noexc->line, 13);  // direct_throw's definition line
  const auto realtime = find("realtime-purity", "demo/bad_realtime.cpp");
  ASSERT_NE(realtime, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(realtime->line, 17);  // malloc in alloc_helper
}

TEST(LintFixtures, FindingsCarryFileAndLine) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const lint::Finding& f) { return f.rule == "env-allowlist"; });
  ASSERT_NE(it, report.findings.end());
  EXPECT_EQ(it->file, "demo/bad_env.cpp");
  EXPECT_GT(it->line, 0);
  EXPECT_FALSE(it->message.empty());
}

// ---- lint_text unit tests ---------------------------------------------------

TEST(LintText, BannedTokensInCommentsAndStringsAreIgnored) {
  const auto findings = lint_one("demo/x.cpp",
                                 "// rand() time(NULL) std::random_device\n"
                                 "const char* s = \"getenv(\\\"HOME\\\") rand()\";\n"
                                 "/* system_clock */ int x = 0;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintText, SuppressionOnSameLineAndLineAbove) {
  const auto same_line =
      lint_one("demo/x.cpp", "int r = rand();  // ppatc-lint: allow(determinism)\n");
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_TRUE(same_line[0].suppressed);

  const auto line_above = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(determinism)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(line_above.size(), 1u);
  EXPECT_TRUE(line_above[0].suppressed);

  // An allow() for a different rule does not cover the site.
  const auto wrong_rule = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(env-allowlist)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(wrong_rule.size(), 1u);
  EXPECT_FALSE(wrong_rule[0].suppressed);
}

TEST(LintText, UnitTypedApiOnlyAppliesToPublicHeaders) {
  const std::string decl = "struct S { double energy_j = 0.0; };\n#pragma once\n";
  EXPECT_TRUE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp", decl), "unit-typed-api"));
  // Same text in a .cpp (not a public header): signature rule does not apply.
  EXPECT_TRUE(lint_one("demo/s.cpp", decl).empty());
}

TEST(LintText, UnitTypedApiEscapes) {
  // Function names are delimited by '(' — in_*/factory shims stay legal.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\ndouble in_seconds(Duration d);\n"),
                        "unit-typed-api"));
  // Compound dimensions (per-length, ohm-length) are deny-listed.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nstruct S { double cpar_ff_per_um = 0.1; "
                                 "double rs_ohm_um = 240.0; };\n"),
                        "unit-typed-api"));
  // Private members with a trailing underscore are not public API surface.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nclass C { double width_um_ = 0.0; };\n"),
                        "unit-typed-api"));
}

TEST(LintText, EnvAllowlistBlessesOnlyConfiguredFiles) {
  // Config::env_allowlist defaults to empty; run_lint fills it from
  // tools/lint/env_allowlist.toml. lint_text callers provide it explicitly.
  EXPECT_TRUE(lint::Config{}.env_allowlist.empty());
  lint::Config config;
  const lint::EnvAllowlist allowlist = lint::parse_env_allowlist(
      "[groups]\n"
      "runtime = [\"runtime/parallel.cpp\"]\n"
      "obs = [\"obs/trace.cpp\", \"obs/report.cpp\", \"obs/flight.cpp\", \"obs/diag.cpp\"]\n");
  for (const lint::EnvAllowlistEntry& e : allowlist.entries) {
    config.env_allowlist.push_back(e.file);
  }
  const std::string text = "#include <cstdlib>\nbool b = std::getenv(\"PPATC_THREADS\");\n";
  const auto check = [&](const std::string& rel) {
    std::vector<lint::Finding> out;
    lint::lint_text(rel, text, config, out);
    return out;
  };
  EXPECT_TRUE(check("runtime/parallel.cpp").empty());
  EXPECT_TRUE(check("obs/trace.cpp").empty());
  EXPECT_TRUE(check("obs/report.cpp").empty());   // BENCH_MANIFEST_OUT read site
  EXPECT_TRUE(check("obs/flight.cpp").empty());   // PPATC_FLIGHT / _METRICS_INTERVAL
  EXPECT_TRUE(check("obs/diag.cpp").empty());     // PPATC_DIAG_DIR + provenance stamps
  EXPECT_TRUE(has_rule(check("carbon/tcdp.cpp"), "env-allowlist"));
  // With the default (empty) allowlist, nothing at all is blessed.
  EXPECT_TRUE(has_rule(lint_one("runtime/parallel.cpp", text), "env-allowlist"));
}

TEST(LintEnvAllowlist, ParsesGroupsAndRecordsTomlLines) {
  const lint::EnvAllowlist allowlist = lint::parse_env_allowlist(
      "# comment\n"
      "[groups]\n"
      "runtime = [\"runtime/parallel.cpp\"]\n"
      "obs = [\"obs/trace.cpp\", \"obs/report.cpp\"]  # trailing comment\n");
  ASSERT_EQ(allowlist.entries.size(), 3u);
  EXPECT_EQ(allowlist.entries[0].file, "runtime/parallel.cpp");
  EXPECT_EQ(allowlist.entries[0].line, 3);
  EXPECT_EQ(allowlist.entries[2].file, "obs/report.cpp");
  EXPECT_EQ(allowlist.entries[2].line, 4);
}

TEST(LintEnvAllowlist, RejectsMalformedDeclarations) {
  // No '='.
  EXPECT_THROW((void)lint::parse_env_allowlist("runtime\n"), std::runtime_error);
  // Non-identifier group name.
  EXPECT_THROW((void)lint::parse_env_allowlist("bad name = [\"a.cpp\"]\n"), std::runtime_error);
  // Duplicate group.
  EXPECT_THROW((void)lint::parse_env_allowlist("a = [\"x.cpp\"]\na = [\"y.cpp\"]\n"),
               std::runtime_error);
  // Unquoted entry.
  EXPECT_THROW((void)lint::parse_env_allowlist("a = [x.cpp]\n"), std::runtime_error);
  // Not a C++ source suffix.
  EXPECT_THROW((void)lint::parse_env_allowlist("a = [\"x.txt\"]\n"), std::runtime_error);
  // Same file blessed twice across groups.
  EXPECT_THROW((void)lint::parse_env_allowlist("a = [\"x.cpp\"]\nb = [\"x.cpp\"]\n"),
               std::runtime_error);
}

TEST(LintEnvAllowlist, StaleEntryIsItselfAFinding) {
  // known_bad's env_allowlist.toml blesses demo/ghost_config.cpp, which does
  // not exist — the allowlist may only shrink, so the entry is a finding
  // pointing at its own toml line.
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto it = std::find_if(
      report.findings.begin(), report.findings.end(), [](const lint::Finding& f) {
        return f.rule == "env-allowlist" && f.file == "tools/lint/env_allowlist.toml";
      });
  ASSERT_NE(it, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(it->line, 4);
  EXPECT_NE(it->message.find("stale"), std::string::npos);
  EXPECT_NE(it->message.find("demo/ghost_config.cpp"), std::string::npos);
}

TEST(LintExplain, EveryRegisteredRuleIsDocumented) {
  const std::vector<std::string>& rules = lint::all_rules();
  EXPECT_EQ(rules.size(), 16u);
  const std::map<std::string, lint::RuleExplain>& table = lint::rule_explanations();
  EXPECT_EQ(table.size(), rules.size());
  for (const std::string& rule : rules) {
    ASSERT_TRUE(table.contains(rule)) << rule;
    const lint::RuleExplain& e = table.at(rule);
    EXPECT_FALSE(e.summary.empty()) << rule;
    EXPECT_FALSE(e.rationale.empty()) << rule;
    EXPECT_FALSE(e.example.empty()) << rule;
    EXPECT_FALSE(e.suppression.empty()) << rule;
    // Single-rule output leads with the rule name and carries all sections.
    const std::string text = lint::explain_rule(rule);
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
    EXPECT_NE(text.find(e.summary), std::string::npos) << rule;
  }
  // 'all' documents every rule in one pass.
  const std::string everything = lint::explain_rule("all");
  for (const std::string& rule : rules) {
    EXPECT_NE(everything.find(rule), std::string::npos) << rule;
  }
  EXPECT_THROW((void)lint::explain_rule("no-such-rule"), std::runtime_error);
}

TEST(LintText, ObsNameLiteralFlagsRuntimeBuiltNames) {
  // Literal names (including a wrapped literal on the next line) pass.
  EXPECT_TRUE(lint_one("demo/ok.cpp",
                       "void f(std::uint64_t v) {\n"
                       "  obs::counter(\"demo.n\").add(v);\n"
                       "  const obs::Span span{\"demo.f\"};\n"
                       "  obs::flight_mark(\n"
                       "      \"demo.v\", v);\n"
                       "}\n")
                  .empty());
  // Runtime-built names at every site shape fire.
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "obs::counter(name).add(1);\n"),
                       "obs-name-literal"));
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "obs::flight_count(name, 1);\n"),
                       "obs-name-literal"));
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "const obs::Span span{name};\n"),
                       "obs-name-literal"));
  // The obs module forwards caller-validated name pointers by design.
  EXPECT_TRUE(lint_one("obs/flight.cpp", "obs::flight_mark(name, 1);\n").empty());
  // Suppressible like every rule.
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp",
                                "// ppatc-lint: allow(obs-name-literal)\n"
                                "const obs::Span span{name};\n"),
                       "obs-name-literal", /*suppressed=*/true));
}

// ---- layering ---------------------------------------------------------------

TEST(LintLayering, ParsesAndValidatesTheDeclaredGraph) {
  const lint::LayeringConfig config = lint::parse_layering(
      "[layers]\n"
      "common = []\n"
      "device = [\"common\"]\n"
      "core = [\"common\", \"device\"]  # trailing comment\n");
  EXPECT_EQ(config.allowed.size(), 3u);
  EXPECT_TRUE(config.allowed.at("core").contains("device"));
}

TEST(LintLayering, RejectsMalformedAndUnsoundGraphs) {
  EXPECT_THROW((void)lint::parse_layering("core\n"), std::runtime_error);
  // Dependency on an undeclared module.
  EXPECT_THROW((void)lint::parse_layering("core = [\"ghost\"]\n"), std::runtime_error);
  // Self-dependency.
  EXPECT_THROW((void)lint::parse_layering("core = [\"core\"]\n"), std::runtime_error);
  // Cycle.
  EXPECT_THROW((void)lint::parse_layering("a = [\"b\"]\nb = [\"a\"]\n"), std::runtime_error);
  // Unquoted dependency.
  EXPECT_THROW((void)lint::parse_layering("a = [b]\nb = []\n"), std::runtime_error);
}

TEST(LintLayering, FlagsUndeclaredEdgesOnly) {
  lint::Config config;
  config.layering = lint::parse_layering("a = []\nb = [\"a\"]\nc = []\n");
  const std::string include_a = "#include \"ppatc/a/api.hpp\"\nint x = 0;\n";
  std::vector<lint::Finding> out;
  lint::lint_text("b/user.cpp", include_a, config, out);
  EXPECT_TRUE(out.empty());  // declared edge b -> a
  lint::lint_text("c/user.cpp", include_a, config, out);
  ASSERT_EQ(out.size(), 1u);  // c has no edge to a
  EXPECT_EQ(out[0].rule, "layering");
  EXPECT_EQ(out[0].line, 1);
  // Files outside any declared module are out of scope.
  out.clear();
  lint::lint_text("zz/user.cpp", include_a, config, out);
  EXPECT_TRUE(out.empty());
}

// ---- baseline ---------------------------------------------------------------

TEST(LintBaseline, ParsesEntriesAndRequiresRationales) {
  const lint::Baseline baseline = lint::parse_baseline(
      "# comment\n"
      "\n"
      "determinism carbon/tcdp.cpp:12 -- legacy seed path, tracked in ROADMAP\n");
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].rule, "determinism");
  EXPECT_EQ(baseline.entries[0].file, "carbon/tcdp.cpp");
  EXPECT_EQ(baseline.entries[0].line, 12);
  EXPECT_EQ(baseline.entries[0].rationale, "legacy seed path, tracked in ROADMAP");

  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp:1\n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp:1 -- \n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("no-such-rule a.cpp:1 -- why\n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp -- why\n"), std::runtime_error);
}

TEST(LintBaseline, MarksMatchesAndReportsStaleEntries) {
  lint::Report report;
  report.findings.push_back({"determinism", "demo/x.cpp", 3, "msg", false, false});
  report.findings.push_back({"lifetime", "demo/y.cpp", 7, "msg", false, false});
  const lint::Baseline baseline = lint::parse_baseline(
      "determinism demo/x.cpp:3 -- parked while the seed plumbing lands\n"
      "lifetime demo/gone.cpp:1 -- stale: the file was deleted\n");
  const std::vector<lint::BaselineEntry> stale = lint::apply_baseline(report, baseline);
  EXPECT_TRUE(report.findings[0].baselined);
  EXPECT_FALSE(report.findings[1].baselined);
  EXPECT_EQ(report.violation_count(), 1u);
  EXPECT_EQ(report.baselined_count(), 1u);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "demo/gone.cpp");
  // Round-trip through the serializer.
  const std::string text = lint::format_baseline(baseline.entries);
  const lint::Baseline reparsed = lint::parse_baseline(text);
  EXPECT_EQ(reparsed.entries.size(), baseline.entries.size());
}

// ---- SARIF ------------------------------------------------------------------

TEST(LintSarif, ReportRoundTripsThroughTheJsonValidator) {
  lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  ASSERT_FALSE(report.findings.empty());
  // Mark one finding baselined so both suppression kinds are exercised.
  report.findings.front().baselined = true;
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"ppatc-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"parallel-safety\""), std::string::npos);
  EXPECT_NE(sarif.find("src/demo/bad_parallel.cpp"), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"external\""), std::string::npos);
  // Every implemented rule ships its reportingDescriptor.
  for (const std::string& rule : lint::all_rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos) << rule;
  }
}

TEST(LintSarif, OneTokenFindingsCarryColumnRegions) {
  lint::Report report;
  lint::Finding f{"signal-safety", "demo/x.cpp", 7, "msg", false, false};
  f.col = 5;
  f.end_col = 11;
  report.findings.push_back(f);
  // A whole-line finding must stay a startLine-only region.
  report.findings.push_back({"pragma-once", "demo/y.hpp", 1, "msg", false, false});
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"startLine\": 7, \"startColumn\": 5, \"endColumn\": 11"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"startLine\": 1 }"), std::string::npos) << sarif;
}

TEST(LintSarif, EscapesMessagesSafely) {
  lint::Report report;
  report.findings.push_back(
      {"determinism", "demo/we\"ird.cpp", 1, "quote \" backslash \\ newline \n tab \t", false,
       false});
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
}

// ---- scope-aware rules: unit tests ------------------------------------------

TEST(LintParallelSafety, FlagsSharedStateButNotChunkLocals) {
  const auto bad = lint_one("demo/x.cpp",
                            "void f(std::vector<double>& out) {\n"
                            "  double total = 0.0;\n"
                            "  parallel_for(out.size(), [&](std::size_t i) {\n"
                            "    total += 1.0;\n"
                            "    out[i] = total;\n"
                            "  });\n"
                            "}\n");
  ASSERT_TRUE(has_rule(bad, "parallel-safety"));
  // The indexed write out[i] itself must not be flagged: only `total`.
  EXPECT_EQ(std::count_if(bad.begin(), bad.end(),
                          [](const lint::Finding& f) { return f.rule == "parallel-safety"; }),
            1);

  const auto good = lint_one("demo/x.cpp",
                             "void f(std::vector<double>& out) {\n"
                             "  parallel_for(out.size(), [&](std::size_t i) {\n"
                             "    double local = 1.0;\n"
                             "    local += 2.0;\n"
                             "    out[i] = local;\n"
                             "  });\n"
                             "}\n");
  EXPECT_FALSE(has_rule(good, "parallel-safety"));
}

TEST(LintParallelSafety, IgnoresTheRuntimesOwnDefinitions) {
  // A declaration/definition of parallel_for is not a call site.
  const auto findings = lint_one("runtime/include/ppatc/runtime/parallel.hpp",
                                 "#pragma once\n"
                                 "template <typename Body>\n"
                                 "void parallel_for(std::size_t n, Body body, std::size_t g);\n");
  EXPECT_FALSE(has_rule(findings, "parallel-safety"));
}

TEST(LintUnitsEscape, TracksUnwrapsAcrossScopes) {
  const auto mixed = lint_one("demo/x.cpp",
                              "double f(Power p, Duration d) {\n"
                              "  double w = units::in_watts(p);\n"
                              "  double s = units::in_seconds(d);\n"
                              "  return w + s;\n"
                              "}\n");
  ASSERT_TRUE(has_rule(mixed, "units-escape"));

  // Reassignment clears the tag: after `w = s_like;` w is untracked.
  const auto reassigned = lint_one("demo/x.cpp",
                                   "double f(Power p, double s_like) {\n"
                                   "  double w = units::in_watts(p);\n"
                                   "  w = s_like;\n"
                                   "  double s = units::in_seconds(seconds(s_like));\n"
                                   "  return w + s;\n"
                                   "}\n");
  EXPECT_FALSE(has_rule(reassigned, "units-escape"));

  // Scope exit clears the tag.
  const auto scoped = lint_one("demo/x.cpp",
                               "double f(Power p, Duration d) {\n"
                               "  { double w = units::in_watts(p); (void)w; }\n"
                               "  double w = units::in_seconds(d);\n"
                               "  double s = units::in_seconds(d);\n"
                               "  return w + s;\n"
                               "}\n");
  EXPECT_FALSE(has_rule(scoped, "units-escape"));
}

TEST(LintLifetime, FlagsEscapingViewsButNotStableReferents) {
  const auto bad = lint_one("demo/x.cpp",
                            "std::string_view f() {\n"
                            "  std::string s = make();\n"
                            "  return s;\n"
                            "}\n");
  EXPECT_TRUE(has_rule(bad, "lifetime"));

  const auto member = lint_one("demo/x.cpp",
                               "const std::string& Widget::name() const { return name_; }\n");
  EXPECT_FALSE(has_rule(member, "lifetime"));

  const auto stat = lint_one("demo/x.cpp",
                             "const std::string& fallback() {\n"
                             "  static const std::string kDefault = make();\n"
                             "  return kDefault;\n"
                             "}\n");
  EXPECT_FALSE(has_rule(stat, "lifetime"));
}

// ---- the call graph ---------------------------------------------------------

namespace {

std::vector<lint::FileIndex> callgraph_fixture_indexes() {
  const std::string dir = std::string(PPATC_LINT_FIXTURE_DIR) + "/callgraph/";
  std::vector<lint::FileIndex> files;
  files.push_back(lint::index_file("graph_util.cpp", slurp(dir + "graph_util.cpp")));
  files.push_back(lint::index_file("graph_main.cpp", slurp(dir + "graph_main.cpp")));
  return files;
}

}  // namespace

TEST(LintCallGraph, LinksOverloadsConservativelyAndRecordsUnresolved) {
  const std::vector<lint::FileIndex> files = callgraph_fixture_indexes();
  const lint::CallGraph graph = lint::build_call_graph(files);

  // scale(int), scale(double), combine, run_all.
  ASSERT_EQ(graph.nodes.size(), 4u);
  ASSERT_TRUE(graph.by_name.contains("scale"));
  EXPECT_EQ(graph.by_name.at("scale").size(), 2u);  // both overloads indexed

  // combine has two scale call sites, each fanned out to BOTH overloads (4);
  // run_all has one qualified scale site (2 more) and one combine site (1).
  EXPECT_EQ(graph.edges.size(), 7u);

  // The function-pointer call `fp(a)` and the deliberate external are
  // recorded as unresolved — the conservative fallback never drops a call.
  EXPECT_EQ(graph.distinct_unresolved, 2u);
  std::vector<std::string> names;
  for (const lint::CallGraph::Unresolved& u : graph.unresolved) names.push_back(u.site->name);
  EXPECT_NE(std::find(names.begin(), names.end(), "fp"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "mystery_external"), names.end());

  // Qualified names survive indexing: the caller's qualifier is recorded.
  const lint::FileIndex& main_file = files[1];
  ASSERT_EQ(main_file.functions.size(), 1u);
  const auto scale_site =
      std::find_if(main_file.functions[0].calls.begin(), main_file.functions[0].calls.end(),
                   [](const lint::CallSite& c) { return c.name == "scale"; });
  ASSERT_NE(scale_site, main_file.functions[0].calls.end());
  EXPECT_EQ(scale_site->qualifier, "ppatc::util");
}

TEST(LintCallGraph, JsonDumpIsValidAndCarriesTheSummary) {
  const std::vector<lint::FileIndex> files = callgraph_fixture_indexes();
  const lint::CallGraph graph = lint::build_call_graph(files);
  const std::string json = lint::call_graph_to_json(graph);
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"functions\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"edges\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unresolved_names\": 2"), std::string::npos) << json;
  // Unresolved externals survive the dump — including the function-pointer
  // call, which no symbol table could ever resolve.
  EXPECT_NE(json.find("\"name\": \"mystery_external\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"fp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sites\": 1"), std::string::npos) << json;
}

TEST(LintCallGraph, IndexerSeesRootsAnnotationsAndBarriers) {
  const lint::FileIndex idx = lint::index_file(
      "demo/x.cpp",
      "// ppatc-lint: signal-safe\n"
      "void safe_helper(int fd) { (void)fd; }\n"
      "void handler(int sig) { safe_helper(sig); }\n"
      "void guarded() noexcept { try { throw 1; } catch (...) {} }\n"
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_handler = &handler;\n"
      "  std::set_terminate(&handler);\n"
      "}\n");
  ASSERT_EQ(idx.functions.size(), 4u);
  EXPECT_TRUE(idx.functions[0].annotated_signal_safe);
  EXPECT_FALSE(idx.functions[1].annotated_signal_safe);
  EXPECT_TRUE(idx.functions[2].is_noexcept);
  EXPECT_TRUE(idx.functions[2].has_try);
  ASSERT_EQ(idx.signal_roots.size(), 1u);
  EXPECT_EQ(idx.signal_roots[0], "handler");
  ASSERT_EQ(idx.terminate_roots.size(), 1u);
  EXPECT_EQ(idx.terminate_roots[0], "handler");
}

TEST(LintCallGraph, TimerHandlerRegistrationIsASignalRoot) {
  // The timer_create / setitimer registration forms: a sa_sigaction
  // assignment (SIGEV_SIGNAL routing, the obs::prof sampler's shape) and a
  // sigev_notify_function assignment (SIGEV_THREAD) both root the handler.
  const lint::FileIndex idx = lint::index_file(
      "demo/timer.cpp",
      "void on_prof(int sig, siginfo_t* info, void* ctx) {}\n"
      "void on_tick(union sigval sv) { (void)sv; }\n"
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_sigaction = on_prof;\n"
      "  struct sigevent sev {};\n"
      "  sev.sigev_notify_function = &on_tick;\n"
      "  timer_t timer {};\n"
      "  timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer);\n"
      "}\n");
  ASSERT_EQ(idx.signal_roots.size(), 2u);
  EXPECT_EQ(idx.signal_roots[0], "on_prof");
  EXPECT_EQ(idx.signal_roots[1], "on_tick");
}

TEST(LintCallGraph, UnqualifiedCallsResolveThroughEnclosingScopesOnly) {
  // `write` inside obs::Writer must NOT link to the unrelated report::Manifest
  // member (unqualified lookup cannot see it) — it degrades to an unresolved
  // external instead. The member call `m.write(...)` keeps the full fan-out.
  std::vector<lint::FileIndex> files;
  files.push_back(lint::index_file("a.cpp",
                                   "namespace ppatc::report {\n"
                                   "struct Manifest { void write(int v) { (void)v; } };\n"
                                   "}\n"));
  files.push_back(lint::index_file("b.cpp",
                                   "namespace ppatc::obs {\n"
                                   "struct Writer {\n"
                                   "  void flush() { write(1); }\n"
                                   "  void write(int v) { (void)v; }\n"
                                   "};\n"
                                   "void spill(Manifest& m) { m.write(2); }\n"
                                   "}\n"));
  const lint::CallGraph graph = lint::build_call_graph(files);
  ASSERT_EQ(graph.nodes.size(), 4u);

  const std::size_t flush = graph.node_of(&files[1].functions[0]);
  ASSERT_EQ(graph.out_edges[flush].size(), 1u);  // Writer::write only
  EXPECT_EQ(graph.nodes[graph.edges[graph.out_edges[flush][0]].callee].def->qname,
            "ppatc::obs::Writer::write");

  const std::size_t spill = graph.node_of(&files[1].functions[2]);
  EXPECT_EQ(graph.out_edges[spill].size(), 2u);  // member call: both writes

  // A cross-namespace unqualified call the filter rejects degrades to an
  // unresolved external — recorded, never dropped.
  lint::FileIndex lone =
      lint::index_file("c.cpp", "namespace ppatc::spice { void step() { write(3); } }\n");
  files.push_back(std::move(lone));
  const lint::CallGraph regraph = lint::build_call_graph(files);
  bool recorded = false;
  for (const lint::CallGraph::Unresolved& u : regraph.unresolved) {
    recorded = recorded || u.site->name == "write";
  }
  EXPECT_TRUE(recorded);
}

// ---- dataflow rules ---------------------------------------------------------

namespace {

const lint::Finding* find_at(const lint::Report& report, const std::string& rule,
                             const std::string& file, int line) {
  for (const lint::Finding& f : report.findings) {
    if (f.rule == rule && f.file == file && f.line == line) return &f;
  }
  return nullptr;
}

}  // namespace

TEST(LintDataflow, TaintFindingsNameTheFullSourceToSinkPath) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");

  // Pointer fingerprint: the source is two calls away from the sink, and the
  // path names every hop plus the source's own file:line.
  const lint::Finding* ptr = find_at(report, "determinism-taint", "demo/bad_taint.cpp", 26);
  ASSERT_NE(ptr, nullptr) << lint::format_report(report);
  EXPECT_NE(ptr->message.find("reinterpret_cast of a pointer to an integer "
                              "(demo/bad_taint.cpp:22) -> ppatc::demo::fingerprint "
                              "-> ppatc::demo::log_node -> RunManifest::record"),
            std::string::npos)
      << ptr->message;
  // The structured path chain mirrors the message, source first.
  ASSERT_FALSE(ptr->related.empty());
  EXPECT_EQ(ptr->related.front().line, 22);
  EXPECT_EQ(ptr->related.front().note.rfind("source:", 0), 0u) << ptr->related.front().note;

  // Unordered-iteration order through a helper fold.
  const lint::Finding* fold = find_at(report, "determinism-taint", "demo/bad_taint.cpp", 40);
  ASSERT_NE(fold, nullptr) << lint::format_report(report);
  EXPECT_NE(fold->message.find("iteration order of unordered container 'cache'"),
            std::string::npos)
      << fold->message;
  EXPECT_NE(fold->message.find("ppatc::demo::fold_cache"), std::string::npos) << fold->message;

  // The annotated cache-key sink.
  const lint::Finding* key = find_at(report, "determinism-taint", "demo/bad_taint.cpp", 45);
  ASSERT_NE(key, nullptr) << lint::format_report(report);
  EXPECT_NE(key->message.find("cache-key"), std::string::npos) << key->message;
}

TEST(LintDataflow, FpHelperAccumulationIsTracedThroughTheCallChain) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");

  // One call deep: the helper and its mutation site are both named.
  const lint::Finding* one = find_at(report, "fp-reduction-order", "demo/bad_fp_reduction.cpp", 33);
  ASSERT_NE(one, nullptr) << lint::format_report(report);
  EXPECT_NE(one->message.find("mutated through ppatc::demo::accumulate "
                              "(demo/bad_fp_reduction.cpp:12)"),
            std::string::npos)
      << one->message;

  // Two calls deep — merge_into is defined BEFORE accumulate in the fixture,
  // so this path only exists because the summary fixpoint re-iterated.
  const lint::Finding* two = find_at(report, "fp-reduction-order", "demo/bad_fp_reduction.cpp", 41);
  ASSERT_NE(two, nullptr) << lint::format_report(report);
  EXPECT_NE(two->message.find("parallel-lambda@demo/bad_fp_reduction.cpp:40 -> "
                              "ppatc::demo::merge_into -> ppatc::demo::accumulate -> folded +="),
            std::string::npos)
      << two->message;
}

TEST(LintDataflow, UnitTagsSurviveCallAndReturnEdges) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");

  // Cross-dimension mix where both tags arrived through callees.
  const lint::Finding* mix = find_at(report, "interproc-units-escape",
                                     "demo/bad_units_chain.cpp", 23);
  ASSERT_NE(mix, nullptr) << lint::format_report(report);
  EXPECT_NE(mix->message.find("(Duration, in_seconds) from in_seconds at "
                              "demo/bad_units_chain.cpp:9, through ppatc::demo::unwrap_runtime"),
            std::string::npos)
      << mix->message;
  EXPECT_NE(mix->message.find("(Energy, in_joules)"), std::string::npos) << mix->message;

  // Callee parameter expectation, learned from the callee's own body.
  const lint::Finding* param = find_at(report, "interproc-units-escape",
                                       "demo/bad_units_chain.cpp", 29);
  ASSERT_NE(param, nullptr) << lint::format_report(report);
  EXPECT_NE(param->message.find("ppatc::demo::overhead_joules expects this parameter to carry "
                                "(Energy, in_joules) (established by in_joules at "
                                "demo/bad_units_chain.cpp:16)"),
            std::string::npos)
      << param->message;

  // Wrong-factory rewrap and same-dimension unit skew.
  ASSERT_NE(find_at(report, "interproc-units-escape", "demo/bad_units_chain.cpp", 34), nullptr);
  const lint::Finding* skew = find_at(report, "interproc-units-escape",
                                      "demo/bad_units_chain.cpp", 41);
  ASSERT_NE(skew, nullptr) << lint::format_report(report);
  EXPECT_NE(skew->message.find("(Duration, in_milliseconds)"), std::string::npos)
      << skew->message;
}

TEST(LintSarif, DataflowFindingsCarryRelatedLocationPathChains) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif));
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
  // The pointer-fingerprint chain renders source, via-hop and sink in order.
  EXPECT_NE(sarif.find("source: reinterpret_cast of a pointer to an integer"),
            std::string::npos);
  EXPECT_NE(sarif.find("via ppatc::demo::fingerprint"), std::string::npos);
  EXPECT_NE(sarif.find("sink: RunManifest::record"), std::string::npos);
}

// ---- the real tree ----------------------------------------------------------

TEST(LintRepo, RealTreeLintsClean) {
  const lint::Report report = lint::run_lint(PPATC_REPO_ROOT);
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_GT(report.files_scanned, 50u);  // sanity: the scan actually found src/
}

TEST(LintRepo, DiagSignalConeIsProvablyClean) {
  // The PR-7 crash path: `ppatc-lint --rules signal-safety` must report zero
  // findings and zero suppressions anywhere in the fatal-signal handler cone.
  // The only suppressed finding allowed in the whole tree is terminate_hook's
  // documented opt-out (terminate hooks run on a normal stack).
  lint::Config config;
  config.rules = {"signal-safety"};
  const lint::Report report = lint::run_lint(PPATC_REPO_ROOT, config);
  EXPECT_EQ(report.violation_count(), 0u) << lint::format_report(report);
  for (const lint::Finding& f : report.findings) {
    if (!f.suppressed) continue;
    EXPECT_EQ(f.file, "obs/diag.cpp") << f.message;
    EXPECT_NE(f.message.find("terminate"), std::string::npos) << f.message;
  }
}

TEST(LintRepo, PublishesCallGraphAndSelfMetrics) {
  lint::InterprocStats stats;
  std::string callgraph_json;
  const lint::Report report =
      lint::run_lint(PPATC_REPO_ROOT, lint::Config{}, &callgraph_json, &stats);
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  // The real tree is a real program: hundreds of functions, a dense graph,
  // and plenty of std:: externals recorded rather than dropped.
  EXPECT_GT(stats.functions_indexed, 200u);
  EXPECT_GT(stats.call_edges, 500u);
  EXPECT_GT(stats.unresolved_externals, 50u);
  // The dataflow layer summarized real functions and actually iterated.
  EXPECT_GT(stats.dataflow_summaries, 0u);
  EXPECT_GE(stats.fixpoint_iterations, 2u);
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(callgraph_json));
  // The self-metrics sidecar path: the gauges land in the obs registry.
  const std::string metrics = ppatc::obs::metrics_to_json();
  for (const char* name :
       {"lint.files_scanned", "lint.functions_indexed", "lint.call_edges",
        "lint.unresolved_externals", "lint.dataflow_summaries", "lint.fixpoint_iterations",
        "lint.findings.signal-safety", "lint.findings.determinism-taint",
        "lint.findings.fp-reduction-order", "lint.findings.interproc-units-escape"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name;
  }
}

TEST(LintRepo, ReportIsByteStableAcrossThreadCounts) {
  const std::size_t before = ppatc::runtime::thread_count();
  ppatc::runtime::set_thread_count(1);
  const std::string serial = lint::format_report(lint::run_lint(PPATC_REPO_ROOT));
  ppatc::runtime::set_thread_count(4);
  const std::string parallel = lint::format_report(lint::run_lint(PPATC_REPO_ROOT));
  ppatc::runtime::set_thread_count(before);
  EXPECT_EQ(serial, parallel);
}
