// ppatc-lint self-test.
//
// Three layers:
//  1. Fixture trees (tests/lint_fixtures/): known_good must come back clean
//     (with the deliberate suppression counted), known_bad must fire every
//     rule at the expected sites.
//  2. lint_text unit tests for the subtle cases: comment/string stripping,
//     same-line vs line-above suppression, the function-name and
//     compound-dimension escapes of unit-typed-api.
//  3. The real repository must lint clean — the same invariant the
//     lint.ppatc_lint ctest enforces, checked here through the library API.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "call_graph.hpp"
#include "json_validator.hpp"
#include "lint_core.hpp"
#include "ppatc/obs/metrics.hpp"
#include "ppatc/runtime/parallel.hpp"
#include "symbols.hpp"

namespace lint = ppatc::lint;

namespace {

std::vector<lint::Finding> lint_one(const std::string& rel, const std::string& text) {
  std::vector<lint::Finding> out;
  lint::lint_text(rel, text, lint::Config{}, out);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool has_rule(const std::vector<lint::Finding>& findings, const std::string& rule,
              bool suppressed = false) {
  return std::any_of(findings.begin(), findings.end(), [&](const lint::Finding& f) {
    return f.rule == rule && f.suppressed == suppressed;
  });
}

}  // namespace

// ---- fixture trees ----------------------------------------------------------

TEST(LintFixtures, KnownGoodIsCleanWithCountedSuppressions) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_good");
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_EQ(report.violation_count(), 0u);
  // The deliberate allow(unit-typed-api) in good.hpp and the allow(realtime)
  // trace in good_realtime.cpp must be counted, not lost.
  EXPECT_EQ(report.suppression_count(), 2u) << lint::format_report(report);
  const auto by_rule = report.count_by_rule(/*suppressed=*/true);
  ASSERT_TRUE(by_rule.contains("unit-typed-api"));
  EXPECT_EQ(by_rule.at("unit-typed-api"), 1u);
  ASSERT_TRUE(by_rule.contains("realtime-purity"));
  EXPECT_EQ(by_rule.at("realtime-purity"), 1u);
  EXPECT_EQ(report.files_scanned, 13u);
}

TEST(LintFixtures, KnownBadFiresEveryRule) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  EXPECT_FALSE(report.clean());

  const auto by_rule = report.count_by_rule(/*suppressed=*/false);
  for (const char* rule : {"unit-typed-api", "determinism", "unordered-iter", "env-allowlist",
                           "pragma-once", "layering", "parallel-safety", "units-escape",
                           "lifetime", "obs-name-literal", "signal-safety", "noexcept-escape",
                           "realtime-purity"}) {
    ASSERT_TRUE(by_rule.contains(rule)) << rule << "\n" << lint::format_report(report);
  }

  // bad_api.hpp: the energy_j field and the area_mm2 parameter.
  EXPECT_EQ(by_rule.at("unit-typed-api"), 2u);
  // bad_determinism.cpp: srand, time-seed, random_device, system_clock, rand.
  EXPECT_EQ(by_rule.at("determinism"), 5u);
  EXPECT_EQ(by_rule.at("unordered-iter"), 1u);
  EXPECT_EQ(by_rule.at("env-allowlist"), 1u);
  EXPECT_EQ(by_rule.at("pragma-once"), 1u);
  // bad_cross.cpp: the public include and the relative reach into alpha.
  EXPECT_EQ(by_rule.at("layering"), 2u);
  // bad_parallel.cpp: shared +=, shared ++, lock_guard + mutex on one line.
  EXPECT_EQ(by_rule.at("parallel-safety"), 4u);
  // bad_units.cpp: dimension mix, unit mix, wrong factory, raw .value().
  EXPECT_EQ(by_rule.at("units-escape"), 4u);
  // bad_lifetime.cpp: view of a local, reference to a local, view of a temp.
  EXPECT_EQ(by_rule.at("lifetime"), 3u);
  // bad_obs_names.cpp: dynamic counter name, dynamic mark name, dynamic span.
  EXPECT_EQ(by_rule.at("obs-name-literal"), 3u);
  // bad_signal.cpp: string, snprintf, malloc, free, unannotated helper call;
  // bad_timer_signal.cpp: snprintf in a sigev_notify_function cone.
  EXPECT_EQ(by_rule.at("signal-safety"), 6u);
  // bad_noexcept.cpp: direct throw, transitive throw, contract macro.
  EXPECT_EQ(by_rule.at("noexcept-escape"), 3u);
  // bad_realtime.cpp: malloc, free, lock_guard, printf reached from the
  // lambda; plus the lock_guard inside bad_parallel.cpp's lambda.
  EXPECT_EQ(by_rule.at("realtime-purity"), 5u);
  EXPECT_EQ(report.suppression_count(), 0u);
}

TEST(LintFixtures, SeededViolationsNameFileAndLine) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto find = [&](const std::string& rule, const std::string& file) {
    return std::find_if(report.findings.begin(), report.findings.end(),
                        [&](const lint::Finding& f) { return f.rule == rule && f.file == file; });
  };
  // The seeded layering breach: beta includes alpha on line 4.
  const auto layering = find("layering", "beta/bad_cross.cpp");
  ASSERT_NE(layering, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(layering->line, 4);
  // The seeded shared write inside parallel_for: `total +=` on line 13.
  const auto shared = find("parallel-safety", "demo/bad_parallel.cpp");
  ASSERT_NE(shared, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(shared->line, 13);
  // Interprocedural seeds, each named by file:line. The findings tail is
  // sorted, so the first match per file is the lowest-line seed.
  const auto signal = find("signal-safety", "demo/bad_signal.cpp");
  ASSERT_NE(signal, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(signal->line, 18);  // std::string in crash_handler
  EXPECT_GT(signal->col, 0);    // interproc findings carry token columns
  const auto noexc = find("noexcept-escape", "demo/bad_noexcept.cpp");
  ASSERT_NE(noexc, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(noexc->line, 13);  // direct_throw's definition line
  const auto realtime = find("realtime-purity", "demo/bad_realtime.cpp");
  ASSERT_NE(realtime, report.findings.end()) << lint::format_report(report);
  EXPECT_EQ(realtime->line, 17);  // malloc in alloc_helper
}

TEST(LintFixtures, FindingsCarryFileAndLine) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const lint::Finding& f) { return f.rule == "env-allowlist"; });
  ASSERT_NE(it, report.findings.end());
  EXPECT_EQ(it->file, "demo/bad_env.cpp");
  EXPECT_GT(it->line, 0);
  EXPECT_FALSE(it->message.empty());
}

// ---- lint_text unit tests ---------------------------------------------------

TEST(LintText, BannedTokensInCommentsAndStringsAreIgnored) {
  const auto findings = lint_one("demo/x.cpp",
                                 "// rand() time(NULL) std::random_device\n"
                                 "const char* s = \"getenv(\\\"HOME\\\") rand()\";\n"
                                 "/* system_clock */ int x = 0;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintText, SuppressionOnSameLineAndLineAbove) {
  const auto same_line =
      lint_one("demo/x.cpp", "int r = rand();  // ppatc-lint: allow(determinism)\n");
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_TRUE(same_line[0].suppressed);

  const auto line_above = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(determinism)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(line_above.size(), 1u);
  EXPECT_TRUE(line_above[0].suppressed);

  // An allow() for a different rule does not cover the site.
  const auto wrong_rule = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(env-allowlist)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(wrong_rule.size(), 1u);
  EXPECT_FALSE(wrong_rule[0].suppressed);
}

TEST(LintText, UnitTypedApiOnlyAppliesToPublicHeaders) {
  const std::string decl = "struct S { double energy_j = 0.0; };\n#pragma once\n";
  EXPECT_TRUE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp", decl), "unit-typed-api"));
  // Same text in a .cpp (not a public header): signature rule does not apply.
  EXPECT_TRUE(lint_one("demo/s.cpp", decl).empty());
}

TEST(LintText, UnitTypedApiEscapes) {
  // Function names are delimited by '(' — in_*/factory shims stay legal.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\ndouble in_seconds(Duration d);\n"),
                        "unit-typed-api"));
  // Compound dimensions (per-length, ohm-length) are deny-listed.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nstruct S { double cpar_ff_per_um = 0.1; "
                                 "double rs_ohm_um = 240.0; };\n"),
                        "unit-typed-api"));
  // Private members with a trailing underscore are not public API surface.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nclass C { double width_um_ = 0.0; };\n"),
                        "unit-typed-api"));
}

TEST(LintText, EnvAllowlistBlessesOnlyConfiguredFiles) {
  const std::string text = "#include <cstdlib>\nbool b = std::getenv(\"PPATC_THREADS\");\n";
  EXPECT_TRUE(lint_one("runtime/parallel.cpp", text).empty());
  EXPECT_TRUE(lint_one("obs/trace.cpp", text).empty());
  EXPECT_TRUE(lint_one("obs/report.cpp", text).empty());   // BENCH_MANIFEST_OUT read site
  EXPECT_TRUE(lint_one("obs/flight.cpp", text).empty());   // PPATC_FLIGHT / _METRICS_INTERVAL
  EXPECT_TRUE(lint_one("obs/diag.cpp", text).empty());     // PPATC_DIAG_DIR + provenance stamps
  EXPECT_TRUE(has_rule(lint_one("carbon/tcdp.cpp", text), "env-allowlist"));
}

TEST(LintText, ObsNameLiteralFlagsRuntimeBuiltNames) {
  // Literal names (including a wrapped literal on the next line) pass.
  EXPECT_TRUE(lint_one("demo/ok.cpp",
                       "void f(std::uint64_t v) {\n"
                       "  obs::counter(\"demo.n\").add(v);\n"
                       "  const obs::Span span{\"demo.f\"};\n"
                       "  obs::flight_mark(\n"
                       "      \"demo.v\", v);\n"
                       "}\n")
                  .empty());
  // Runtime-built names at every site shape fire.
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "obs::counter(name).add(1);\n"),
                       "obs-name-literal"));
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "obs::flight_count(name, 1);\n"),
                       "obs-name-literal"));
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp", "const obs::Span span{name};\n"),
                       "obs-name-literal"));
  // The obs module forwards caller-validated name pointers by design.
  EXPECT_TRUE(lint_one("obs/flight.cpp", "obs::flight_mark(name, 1);\n").empty());
  // Suppressible like every rule.
  EXPECT_TRUE(has_rule(lint_one("demo/bad.cpp",
                                "// ppatc-lint: allow(obs-name-literal)\n"
                                "const obs::Span span{name};\n"),
                       "obs-name-literal", /*suppressed=*/true));
}

// ---- layering ---------------------------------------------------------------

TEST(LintLayering, ParsesAndValidatesTheDeclaredGraph) {
  const lint::LayeringConfig config = lint::parse_layering(
      "[layers]\n"
      "common = []\n"
      "device = [\"common\"]\n"
      "core = [\"common\", \"device\"]  # trailing comment\n");
  EXPECT_EQ(config.allowed.size(), 3u);
  EXPECT_TRUE(config.allowed.at("core").contains("device"));
}

TEST(LintLayering, RejectsMalformedAndUnsoundGraphs) {
  EXPECT_THROW((void)lint::parse_layering("core\n"), std::runtime_error);
  // Dependency on an undeclared module.
  EXPECT_THROW((void)lint::parse_layering("core = [\"ghost\"]\n"), std::runtime_error);
  // Self-dependency.
  EXPECT_THROW((void)lint::parse_layering("core = [\"core\"]\n"), std::runtime_error);
  // Cycle.
  EXPECT_THROW((void)lint::parse_layering("a = [\"b\"]\nb = [\"a\"]\n"), std::runtime_error);
  // Unquoted dependency.
  EXPECT_THROW((void)lint::parse_layering("a = [b]\nb = []\n"), std::runtime_error);
}

TEST(LintLayering, FlagsUndeclaredEdgesOnly) {
  lint::Config config;
  config.layering = lint::parse_layering("a = []\nb = [\"a\"]\nc = []\n");
  const std::string include_a = "#include \"ppatc/a/api.hpp\"\nint x = 0;\n";
  std::vector<lint::Finding> out;
  lint::lint_text("b/user.cpp", include_a, config, out);
  EXPECT_TRUE(out.empty());  // declared edge b -> a
  lint::lint_text("c/user.cpp", include_a, config, out);
  ASSERT_EQ(out.size(), 1u);  // c has no edge to a
  EXPECT_EQ(out[0].rule, "layering");
  EXPECT_EQ(out[0].line, 1);
  // Files outside any declared module are out of scope.
  out.clear();
  lint::lint_text("zz/user.cpp", include_a, config, out);
  EXPECT_TRUE(out.empty());
}

// ---- baseline ---------------------------------------------------------------

TEST(LintBaseline, ParsesEntriesAndRequiresRationales) {
  const lint::Baseline baseline = lint::parse_baseline(
      "# comment\n"
      "\n"
      "determinism carbon/tcdp.cpp:12 -- legacy seed path, tracked in ROADMAP\n");
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].rule, "determinism");
  EXPECT_EQ(baseline.entries[0].file, "carbon/tcdp.cpp");
  EXPECT_EQ(baseline.entries[0].line, 12);
  EXPECT_EQ(baseline.entries[0].rationale, "legacy seed path, tracked in ROADMAP");

  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp:1\n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp:1 -- \n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("no-such-rule a.cpp:1 -- why\n"), std::runtime_error);
  EXPECT_THROW((void)lint::parse_baseline("determinism a.cpp -- why\n"), std::runtime_error);
}

TEST(LintBaseline, MarksMatchesAndReportsStaleEntries) {
  lint::Report report;
  report.findings.push_back({"determinism", "demo/x.cpp", 3, "msg", false, false});
  report.findings.push_back({"lifetime", "demo/y.cpp", 7, "msg", false, false});
  const lint::Baseline baseline = lint::parse_baseline(
      "determinism demo/x.cpp:3 -- parked while the seed plumbing lands\n"
      "lifetime demo/gone.cpp:1 -- stale: the file was deleted\n");
  const std::vector<lint::BaselineEntry> stale = lint::apply_baseline(report, baseline);
  EXPECT_TRUE(report.findings[0].baselined);
  EXPECT_FALSE(report.findings[1].baselined);
  EXPECT_EQ(report.violation_count(), 1u);
  EXPECT_EQ(report.baselined_count(), 1u);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "demo/gone.cpp");
  // Round-trip through the serializer.
  const std::string text = lint::format_baseline(baseline.entries);
  const lint::Baseline reparsed = lint::parse_baseline(text);
  EXPECT_EQ(reparsed.entries.size(), baseline.entries.size());
}

// ---- SARIF ------------------------------------------------------------------

TEST(LintSarif, ReportRoundTripsThroughTheJsonValidator) {
  lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  ASSERT_FALSE(report.findings.empty());
  // Mark one finding baselined so both suppression kinds are exercised.
  report.findings.front().baselined = true;
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"ppatc-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"parallel-safety\""), std::string::npos);
  EXPECT_NE(sarif.find("src/demo/bad_parallel.cpp"), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"external\""), std::string::npos);
  // Every implemented rule ships its reportingDescriptor.
  for (const std::string& rule : lint::all_rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos) << rule;
  }
}

TEST(LintSarif, OneTokenFindingsCarryColumnRegions) {
  lint::Report report;
  lint::Finding f{"signal-safety", "demo/x.cpp", 7, "msg", false, false};
  f.col = 5;
  f.end_col = 11;
  report.findings.push_back(f);
  // A whole-line finding must stay a startLine-only region.
  report.findings.push_back({"pragma-once", "demo/y.hpp", 1, "msg", false, false});
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"startLine\": 7, \"startColumn\": 5, \"endColumn\": 11"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"startLine\": 1 }"), std::string::npos) << sarif;
}

TEST(LintSarif, EscapesMessagesSafely) {
  lint::Report report;
  report.findings.push_back(
      {"determinism", "demo/we\"ird.cpp", 1, "quote \" backslash \\ newline \n tab \t", false,
       false});
  const std::string sarif = lint::to_sarif(report, "src/");
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(sarif)) << sarif;
}

// ---- scope-aware rules: unit tests ------------------------------------------

TEST(LintParallelSafety, FlagsSharedStateButNotChunkLocals) {
  const auto bad = lint_one("demo/x.cpp",
                            "void f(std::vector<double>& out) {\n"
                            "  double total = 0.0;\n"
                            "  parallel_for(out.size(), [&](std::size_t i) {\n"
                            "    total += 1.0;\n"
                            "    out[i] = total;\n"
                            "  });\n"
                            "}\n");
  ASSERT_TRUE(has_rule(bad, "parallel-safety"));
  // The indexed write out[i] itself must not be flagged: only `total`.
  EXPECT_EQ(std::count_if(bad.begin(), bad.end(),
                          [](const lint::Finding& f) { return f.rule == "parallel-safety"; }),
            1);

  const auto good = lint_one("demo/x.cpp",
                             "void f(std::vector<double>& out) {\n"
                             "  parallel_for(out.size(), [&](std::size_t i) {\n"
                             "    double local = 1.0;\n"
                             "    local += 2.0;\n"
                             "    out[i] = local;\n"
                             "  });\n"
                             "}\n");
  EXPECT_FALSE(has_rule(good, "parallel-safety"));
}

TEST(LintParallelSafety, IgnoresTheRuntimesOwnDefinitions) {
  // A declaration/definition of parallel_for is not a call site.
  const auto findings = lint_one("runtime/include/ppatc/runtime/parallel.hpp",
                                 "#pragma once\n"
                                 "template <typename Body>\n"
                                 "void parallel_for(std::size_t n, Body body, std::size_t g);\n");
  EXPECT_FALSE(has_rule(findings, "parallel-safety"));
}

TEST(LintUnitsEscape, TracksUnwrapsAcrossScopes) {
  const auto mixed = lint_one("demo/x.cpp",
                              "double f(Power p, Duration d) {\n"
                              "  double w = units::in_watts(p);\n"
                              "  double s = units::in_seconds(d);\n"
                              "  return w + s;\n"
                              "}\n");
  ASSERT_TRUE(has_rule(mixed, "units-escape"));

  // Reassignment clears the tag: after `w = s_like;` w is untracked.
  const auto reassigned = lint_one("demo/x.cpp",
                                   "double f(Power p, double s_like) {\n"
                                   "  double w = units::in_watts(p);\n"
                                   "  w = s_like;\n"
                                   "  double s = units::in_seconds(seconds(s_like));\n"
                                   "  return w + s;\n"
                                   "}\n");
  EXPECT_FALSE(has_rule(reassigned, "units-escape"));

  // Scope exit clears the tag.
  const auto scoped = lint_one("demo/x.cpp",
                               "double f(Power p, Duration d) {\n"
                               "  { double w = units::in_watts(p); (void)w; }\n"
                               "  double w = units::in_seconds(d);\n"
                               "  double s = units::in_seconds(d);\n"
                               "  return w + s;\n"
                               "}\n");
  EXPECT_FALSE(has_rule(scoped, "units-escape"));
}

TEST(LintLifetime, FlagsEscapingViewsButNotStableReferents) {
  const auto bad = lint_one("demo/x.cpp",
                            "std::string_view f() {\n"
                            "  std::string s = make();\n"
                            "  return s;\n"
                            "}\n");
  EXPECT_TRUE(has_rule(bad, "lifetime"));

  const auto member = lint_one("demo/x.cpp",
                               "const std::string& Widget::name() const { return name_; }\n");
  EXPECT_FALSE(has_rule(member, "lifetime"));

  const auto stat = lint_one("demo/x.cpp",
                             "const std::string& fallback() {\n"
                             "  static const std::string kDefault = make();\n"
                             "  return kDefault;\n"
                             "}\n");
  EXPECT_FALSE(has_rule(stat, "lifetime"));
}

// ---- the call graph ---------------------------------------------------------

namespace {

std::vector<lint::FileIndex> callgraph_fixture_indexes() {
  const std::string dir = std::string(PPATC_LINT_FIXTURE_DIR) + "/callgraph/";
  std::vector<lint::FileIndex> files;
  files.push_back(lint::index_file("graph_util.cpp", slurp(dir + "graph_util.cpp")));
  files.push_back(lint::index_file("graph_main.cpp", slurp(dir + "graph_main.cpp")));
  return files;
}

}  // namespace

TEST(LintCallGraph, LinksOverloadsConservativelyAndRecordsUnresolved) {
  const std::vector<lint::FileIndex> files = callgraph_fixture_indexes();
  const lint::CallGraph graph = lint::build_call_graph(files);

  // scale(int), scale(double), combine, run_all.
  ASSERT_EQ(graph.nodes.size(), 4u);
  ASSERT_TRUE(graph.by_name.contains("scale"));
  EXPECT_EQ(graph.by_name.at("scale").size(), 2u);  // both overloads indexed

  // combine has two scale call sites, each fanned out to BOTH overloads (4);
  // run_all has one qualified scale site (2 more) and one combine site (1).
  EXPECT_EQ(graph.edges.size(), 7u);

  // The function-pointer call `fp(a)` and the deliberate external are
  // recorded as unresolved — the conservative fallback never drops a call.
  EXPECT_EQ(graph.distinct_unresolved, 2u);
  std::vector<std::string> names;
  for (const lint::CallGraph::Unresolved& u : graph.unresolved) names.push_back(u.site->name);
  EXPECT_NE(std::find(names.begin(), names.end(), "fp"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "mystery_external"), names.end());

  // Qualified names survive indexing: the caller's qualifier is recorded.
  const lint::FileIndex& main_file = files[1];
  ASSERT_EQ(main_file.functions.size(), 1u);
  const auto scale_site =
      std::find_if(main_file.functions[0].calls.begin(), main_file.functions[0].calls.end(),
                   [](const lint::CallSite& c) { return c.name == "scale"; });
  ASSERT_NE(scale_site, main_file.functions[0].calls.end());
  EXPECT_EQ(scale_site->qualifier, "ppatc::util");
}

TEST(LintCallGraph, JsonDumpIsValidAndCarriesTheSummary) {
  const std::vector<lint::FileIndex> files = callgraph_fixture_indexes();
  const lint::CallGraph graph = lint::build_call_graph(files);
  const std::string json = lint::call_graph_to_json(graph);
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"functions\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"edges\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unresolved_names\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"mystery_external\""), std::string::npos) << json;
}

TEST(LintCallGraph, IndexerSeesRootsAnnotationsAndBarriers) {
  const lint::FileIndex idx = lint::index_file(
      "demo/x.cpp",
      "// ppatc-lint: signal-safe\n"
      "void safe_helper(int fd) { (void)fd; }\n"
      "void handler(int sig) { safe_helper(sig); }\n"
      "void guarded() noexcept { try { throw 1; } catch (...) {} }\n"
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_handler = &handler;\n"
      "  std::set_terminate(&handler);\n"
      "}\n");
  ASSERT_EQ(idx.functions.size(), 4u);
  EXPECT_TRUE(idx.functions[0].annotated_signal_safe);
  EXPECT_FALSE(idx.functions[1].annotated_signal_safe);
  EXPECT_TRUE(idx.functions[2].is_noexcept);
  EXPECT_TRUE(idx.functions[2].has_try);
  ASSERT_EQ(idx.signal_roots.size(), 1u);
  EXPECT_EQ(idx.signal_roots[0], "handler");
  ASSERT_EQ(idx.terminate_roots.size(), 1u);
  EXPECT_EQ(idx.terminate_roots[0], "handler");
}

TEST(LintCallGraph, TimerHandlerRegistrationIsASignalRoot) {
  // The timer_create / setitimer registration forms: a sa_sigaction
  // assignment (SIGEV_SIGNAL routing, the obs::prof sampler's shape) and a
  // sigev_notify_function assignment (SIGEV_THREAD) both root the handler.
  const lint::FileIndex idx = lint::index_file(
      "demo/timer.cpp",
      "void on_prof(int sig, siginfo_t* info, void* ctx) {}\n"
      "void on_tick(union sigval sv) { (void)sv; }\n"
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_sigaction = on_prof;\n"
      "  struct sigevent sev {};\n"
      "  sev.sigev_notify_function = &on_tick;\n"
      "  timer_t timer {};\n"
      "  timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer);\n"
      "}\n");
  ASSERT_EQ(idx.signal_roots.size(), 2u);
  EXPECT_EQ(idx.signal_roots[0], "on_prof");
  EXPECT_EQ(idx.signal_roots[1], "on_tick");
}

TEST(LintCallGraph, UnqualifiedCallsResolveThroughEnclosingScopesOnly) {
  // `write` inside obs::Writer must NOT link to the unrelated report::Manifest
  // member (unqualified lookup cannot see it) — it degrades to an unresolved
  // external instead. The member call `m.write(...)` keeps the full fan-out.
  std::vector<lint::FileIndex> files;
  files.push_back(lint::index_file("a.cpp",
                                   "namespace ppatc::report {\n"
                                   "struct Manifest { void write(int v) { (void)v; } };\n"
                                   "}\n"));
  files.push_back(lint::index_file("b.cpp",
                                   "namespace ppatc::obs {\n"
                                   "struct Writer {\n"
                                   "  void flush() { write(1); }\n"
                                   "  void write(int v) { (void)v; }\n"
                                   "};\n"
                                   "void spill(Manifest& m) { m.write(2); }\n"
                                   "}\n"));
  const lint::CallGraph graph = lint::build_call_graph(files);
  ASSERT_EQ(graph.nodes.size(), 4u);

  const std::size_t flush = graph.node_of(&files[1].functions[0]);
  ASSERT_EQ(graph.out_edges[flush].size(), 1u);  // Writer::write only
  EXPECT_EQ(graph.nodes[graph.edges[graph.out_edges[flush][0]].callee].def->qname,
            "ppatc::obs::Writer::write");

  const std::size_t spill = graph.node_of(&files[1].functions[2]);
  EXPECT_EQ(graph.out_edges[spill].size(), 2u);  // member call: both writes

  // A cross-namespace unqualified call the filter rejects degrades to an
  // unresolved external — recorded, never dropped.
  lint::FileIndex lone =
      lint::index_file("c.cpp", "namespace ppatc::spice { void step() { write(3); } }\n");
  files.push_back(std::move(lone));
  const lint::CallGraph regraph = lint::build_call_graph(files);
  bool recorded = false;
  for (const lint::CallGraph::Unresolved& u : regraph.unresolved) {
    recorded = recorded || u.site->name == "write";
  }
  EXPECT_TRUE(recorded);
}

// ---- the real tree ----------------------------------------------------------

TEST(LintRepo, RealTreeLintsClean) {
  const lint::Report report = lint::run_lint(PPATC_REPO_ROOT);
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_GT(report.files_scanned, 50u);  // sanity: the scan actually found src/
}

TEST(LintRepo, DiagSignalConeIsProvablyClean) {
  // The PR-7 crash path: `ppatc-lint --rules signal-safety` must report zero
  // findings and zero suppressions anywhere in the fatal-signal handler cone.
  // The only suppressed finding allowed in the whole tree is terminate_hook's
  // documented opt-out (terminate hooks run on a normal stack).
  lint::Config config;
  config.rules = {"signal-safety"};
  const lint::Report report = lint::run_lint(PPATC_REPO_ROOT, config);
  EXPECT_EQ(report.violation_count(), 0u) << lint::format_report(report);
  for (const lint::Finding& f : report.findings) {
    if (!f.suppressed) continue;
    EXPECT_EQ(f.file, "obs/diag.cpp") << f.message;
    EXPECT_NE(f.message.find("terminate"), std::string::npos) << f.message;
  }
}

TEST(LintRepo, PublishesCallGraphAndSelfMetrics) {
  lint::InterprocStats stats;
  std::string callgraph_json;
  const lint::Report report =
      lint::run_lint(PPATC_REPO_ROOT, lint::Config{}, &callgraph_json, &stats);
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  // The real tree is a real program: hundreds of functions, a dense graph,
  // and plenty of std:: externals recorded rather than dropped.
  EXPECT_GT(stats.functions_indexed, 200u);
  EXPECT_GT(stats.call_edges, 500u);
  EXPECT_GT(stats.unresolved_externals, 50u);
  EXPECT_TRUE(ppatc::testutil::JsonValidator::valid(callgraph_json));
  // The self-metrics sidecar path: the gauges land in the obs registry.
  const std::string metrics = ppatc::obs::metrics_to_json();
  for (const char* name : {"lint.files_scanned", "lint.functions_indexed", "lint.call_edges",
                           "lint.unresolved_externals", "lint.findings.signal-safety"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name;
  }
}

TEST(LintRepo, ReportIsByteStableAcrossThreadCounts) {
  const std::size_t before = ppatc::runtime::thread_count();
  ppatc::runtime::set_thread_count(1);
  const std::string serial = lint::format_report(lint::run_lint(PPATC_REPO_ROOT));
  ppatc::runtime::set_thread_count(4);
  const std::string parallel = lint::format_report(lint::run_lint(PPATC_REPO_ROOT));
  ppatc::runtime::set_thread_count(before);
  EXPECT_EQ(serial, parallel);
}
