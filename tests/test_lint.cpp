// ppatc-lint self-test.
//
// Three layers:
//  1. Fixture trees (tests/lint_fixtures/): known_good must come back clean
//     (with the deliberate suppression counted), known_bad must fire every
//     rule at the expected sites.
//  2. lint_text unit tests for the subtle cases: comment/string stripping,
//     same-line vs line-above suppression, the function-name and
//     compound-dimension escapes of unit-typed-api.
//  3. The real repository must lint clean — the same invariant the
//     lint.ppatc_lint ctest enforces, checked here through the library API.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace lint = ppatc::lint;

namespace {

std::vector<lint::Finding> lint_one(const std::string& rel, const std::string& text) {
  std::vector<lint::Finding> out;
  lint::lint_text(rel, text, lint::Config{}, out);
  return out;
}

bool has_rule(const std::vector<lint::Finding>& findings, const std::string& rule,
              bool suppressed = false) {
  return std::any_of(findings.begin(), findings.end(), [&](const lint::Finding& f) {
    return f.rule == rule && f.suppressed == suppressed;
  });
}

}  // namespace

// ---- fixture trees ----------------------------------------------------------

TEST(LintFixtures, KnownGoodIsCleanWithOneCountedSuppression) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_good");
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_EQ(report.violation_count(), 0u);
  // The deliberate allow(unit-typed-api) in good.hpp must be counted, not lost.
  EXPECT_EQ(report.suppression_count(), 1u);
  const auto by_rule = report.count_by_rule(/*suppressed=*/true);
  ASSERT_TRUE(by_rule.contains("unit-typed-api"));
  EXPECT_EQ(by_rule.at("unit-typed-api"), 1u);
  EXPECT_EQ(report.files_scanned, 2u);
}

TEST(LintFixtures, KnownBadFiresEveryRule) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  EXPECT_FALSE(report.clean());

  const auto by_rule = report.count_by_rule(/*suppressed=*/false);
  ASSERT_TRUE(by_rule.contains("unit-typed-api")) << lint::format_report(report);
  ASSERT_TRUE(by_rule.contains("determinism")) << lint::format_report(report);
  ASSERT_TRUE(by_rule.contains("unordered-iter")) << lint::format_report(report);
  ASSERT_TRUE(by_rule.contains("env-allowlist")) << lint::format_report(report);
  ASSERT_TRUE(by_rule.contains("pragma-once")) << lint::format_report(report);

  // bad_api.hpp: the energy_j field and the area_mm2 parameter.
  EXPECT_EQ(by_rule.at("unit-typed-api"), 2u);
  // bad_determinism.cpp: srand, time-seed, random_device, system_clock, rand.
  EXPECT_EQ(by_rule.at("determinism"), 5u);
  EXPECT_EQ(by_rule.at("unordered-iter"), 1u);
  EXPECT_EQ(by_rule.at("env-allowlist"), 1u);
  EXPECT_EQ(by_rule.at("pragma-once"), 1u);
  EXPECT_EQ(report.suppression_count(), 0u);
}

TEST(LintFixtures, FindingsCarryFileAndLine) {
  const lint::Report report = lint::run_lint(std::string(PPATC_LINT_FIXTURE_DIR) + "/known_bad");
  const auto it = std::find_if(report.findings.begin(), report.findings.end(),
                               [](const lint::Finding& f) { return f.rule == "env-allowlist"; });
  ASSERT_NE(it, report.findings.end());
  EXPECT_EQ(it->file, "demo/bad_env.cpp");
  EXPECT_GT(it->line, 0);
  EXPECT_FALSE(it->message.empty());
}

// ---- lint_text unit tests ---------------------------------------------------

TEST(LintText, BannedTokensInCommentsAndStringsAreIgnored) {
  const auto findings = lint_one("demo/x.cpp",
                                 "// rand() time(NULL) std::random_device\n"
                                 "const char* s = \"getenv(\\\"HOME\\\") rand()\";\n"
                                 "/* system_clock */ int x = 0;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintText, SuppressionOnSameLineAndLineAbove) {
  const auto same_line =
      lint_one("demo/x.cpp", "int r = rand();  // ppatc-lint: allow(determinism)\n");
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_TRUE(same_line[0].suppressed);

  const auto line_above = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(determinism)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(line_above.size(), 1u);
  EXPECT_TRUE(line_above[0].suppressed);

  // An allow() for a different rule does not cover the site.
  const auto wrong_rule = lint_one("demo/x.cpp",
                                   "// ppatc-lint: allow(env-allowlist)\n"
                                   "int r = rand();\n");
  ASSERT_EQ(wrong_rule.size(), 1u);
  EXPECT_FALSE(wrong_rule[0].suppressed);
}

TEST(LintText, UnitTypedApiOnlyAppliesToPublicHeaders) {
  const std::string decl = "struct S { double energy_j = 0.0; };\n#pragma once\n";
  EXPECT_TRUE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp", decl), "unit-typed-api"));
  // Same text in a .cpp (not a public header): signature rule does not apply.
  EXPECT_TRUE(lint_one("demo/s.cpp", decl).empty());
}

TEST(LintText, UnitTypedApiEscapes) {
  // Function names are delimited by '(' — in_*/factory shims stay legal.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\ndouble in_seconds(Duration d);\n"),
                        "unit-typed-api"));
  // Compound dimensions (per-length, ohm-length) are deny-listed.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nstruct S { double cpar_ff_per_um = 0.1; "
                                 "double rs_ohm_um = 240.0; };\n"),
                        "unit-typed-api"));
  // Private members with a trailing underscore are not public API surface.
  EXPECT_FALSE(has_rule(lint_one("demo/include/ppatc/demo/s.hpp",
                                 "#pragma once\nclass C { double width_um_ = 0.0; };\n"),
                        "unit-typed-api"));
}

TEST(LintText, EnvAllowlistBlessesOnlyConfiguredFiles) {
  const std::string text = "#include <cstdlib>\nbool b = std::getenv(\"PPATC_THREADS\");\n";
  EXPECT_TRUE(lint_one("runtime/parallel.cpp", text).empty());
  EXPECT_TRUE(lint_one("obs/trace.cpp", text).empty());
  EXPECT_TRUE(lint_one("obs/report.cpp", text).empty());  // BENCH_MANIFEST_OUT read site
  EXPECT_TRUE(has_rule(lint_one("carbon/tcdp.cpp", text), "env-allowlist"));
}

// ---- the real tree ----------------------------------------------------------

TEST(LintRepo, RealTreeLintsClean) {
  const lint::Report report = lint::run_lint(PPATC_REPO_ROOT);
  EXPECT_TRUE(report.clean()) << lint::format_report(report);
  EXPECT_GT(report.files_scanned, 50u);  // sanity: the scan actually found src/
}
