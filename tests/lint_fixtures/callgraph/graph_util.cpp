// Callgraph fixture: two same-named overloads plus a caller that reaches
// them unqualified. Name-based resolution must link each call site to BOTH
// overloads (conservative fan-out).
namespace ppatc::util {

int scale(int v) { return v * 2; }

double scale(double v) { return v * 2.0; }

double combine(int a, double b) { return scale(a) + scale(b); }

}  // namespace ppatc::util
