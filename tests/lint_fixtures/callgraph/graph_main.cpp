// Callgraph fixture: a qualified call, a function-pointer call, and a
// deliberate unresolved external. The pointer call and the external must be
// recorded as unresolved — conservative fallback, never dropped.
namespace ppatc::util {

double run_all(double (*fp)(double), double a) {
  double x = ppatc::util::scale(a);  // qualified: resolves by trailing name
  double y = fp(a);                  // function-pointer call: unresolved
  double z = mystery_external(a);    // deliberate unresolved external
  return x + y + z + combine(1, a);
}

}  // namespace ppatc::util
