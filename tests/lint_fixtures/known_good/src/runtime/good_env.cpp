// Fixture: getenv at an allowlisted site — env-allowlist stays quiet
// because tools/lint/env_allowlist.toml blesses exactly this file.
#include <cstdlib>

namespace ppatc::demo {

int configured_threads() {
  if (const char* env = std::getenv("PPATC_THREADS")) return *env - '0';
  return 0;
}

}  // namespace ppatc::demo
