// Fixture: a timer_create(SIGEV_THREAD)-registered callback whose cone stays
// on the POSIX async-signal-safe allowlist (write only, via an annotated
// helper) — the sigev_notify_function root must verify with zero findings
// and zero suppressions.
#include <ctime>
#include <signal.h>
#include <unistd.h>

namespace ppatc::demo {

namespace {

// ppatc-lint: signal-safe
void write_tick(const char* text, unsigned len) {
  ssize_t rc = write(2, text, len);
  (void)rc;
}

void timer_tick(union sigval sv) {
  (void)sv;
  write_tick("tick\n", 5);
}

}  // namespace

void install_good_timer() {
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD;
  sev.sigev_notify_function = &timer_tick;
  timer_t timer{};
  timer_create(CLOCK_MONOTONIC, &sev, &timer);
}

}  // namespace ppatc::demo
