// Fixture: an async-signal-safe handler cone — the annotated-helper pattern
// the signal-safety rule must accept with zero findings and zero
// suppressions. The helper only touches the POSIX allowlist (write/_exit),
// and its annotation admits it into the cone.
#include <csignal>
#include <unistd.h>

namespace ppatc::demo {

namespace {

// ppatc-lint: signal-safe
void write_token(int fd, const char* text, unsigned len) {
  ssize_t rc = write(fd, text, len);
  (void)rc;
}

void clean_handler(int sig) {
  (void)sig;
  write_token(2, "fatal\n", 6);
  _exit(70);
}

}  // namespace

void install_clean_handler() {
  struct sigaction sa {};
  sa.sa_handler = &clean_handler;
  sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace ppatc::demo
