// Fixture: deliberate determinism-taint suppressions — one allow() on the
// sink line, one on the enclosing function's definition line. Both forms
// must be counted as suppressed, not lost and not violations.
#include <cstdint>
#include <string>

namespace ppatc::demo {

struct Manifest {
  void record(const std::string& key, double value);
};

void log_arena_base(Manifest& m, const int* arena) {
  const auto base = reinterpret_cast<std::uint64_t>(arena);
  // ppatc-lint: allow(determinism-taint) -- arena base is logged for debugging only
  m.record("arena_base", static_cast<double>(base));
}

// ppatc-lint: allow(determinism-taint) -- diagnostic-only pointer log
void log_node_addr(Manifest& m, const int* node) {
  m.record("node_addr", static_cast<double>(reinterpret_cast<std::uint64_t>(node)));
}

}  // namespace ppatc::demo
