// Fixture: a source file that satisfies every ppatc-lint rule.
//
// Deterministic randomness (explicit seed), monotonic clock only, ordered
// containers for accumulation, and no environment reads. Mentions of banned
// tokens inside comments and string literals must NOT be flagged:
// rand(), std::random_device, time(NULL), getenv("HOME").
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <string>

#include "ppatc/demo/good.hpp"

namespace ppatc::demo {

double in_seconds_like(double value) { return value; }

std::uint64_t seeded_draw(std::uint64_t seed) {
  std::mt19937_64 rng{seed};  // explicit seed: reproducible
  return rng();
}

double ordered_sum(const std::map<std::string, double>& values) {
  const char* banned_in_string = "rand() time(NULL) std::random_device";
  double total = static_cast<double>(banned_in_string[0]) * 0.0;
  for (const auto& [key, v] : values) total += v;  // std::map: ordered, fine
  return total;
}

long ticks() {
  // steady_clock is monotonic and allowed (timing spans, not timestamps).
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace ppatc::demo
