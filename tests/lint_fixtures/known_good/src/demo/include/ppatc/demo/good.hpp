// Fixture: a public header that satisfies every ppatc-lint rule.
//
// Exercises the negative space of unit-typed-api: unit-typed fields,
// dimensionless doubles, compound-dimension names on the deny list, and one
// deliberate violation under an allow() comment (suppression must be counted
// but must not fail the lint).
#pragma once

#include <string>

namespace ppatc::demo {

struct GoodSpec {
  double scale = 1.0;            // dimensionless: no suffix, not flagged
  double cap_ff_per_um = 0.2;    // compound dimension (_per_): deny-listed
  double rs_ohm_um = 240.0;      // compound dimension (_ohm_): deny-listed
  int samples = 16;              // not a floating-point type
  std::string label;

  // ppatc-lint: allow(unit-typed-api) — fixture: suppressed raw-double field
  double legacy_energy_j = 0.0;
};

/// Factory-style names keep their double parameter: `(` delimits a function
/// name, not a declared parameter, so `in_seconds(...)`-shaped shims are legal.
double in_seconds_like(double value);

}  // namespace ppatc::demo
