// Fixture: recorded values derived only from deterministic inputs — no
// pointer/thread/unordered-order provenance, so determinism-taint stays
// quiet even though the same sinks appear.
#include <cstddef>
#include <map>
#include <string>

namespace ppatc::demo {

struct Manifest {
  void record(const std::string& key, double value);
  void record_text(const std::string& key, const std::string& value);
};

double fold_sorted(const std::map<int, double>& table) {
  double acc = 0.0;
  for (const auto& [key, value] : table) acc += value;
  return acc;
}

void log_results(Manifest& m, const std::map<int, double>& table) {
  m.record("table_sum", fold_sorted(table));
  m.record_text("label", std::string{"fixed"});
}

std::size_t content_key(const std::map<int, double>& table) {
  // ppatc: cache-key
  return mix(table.size(), 17);
}

}  // namespace ppatc::demo
