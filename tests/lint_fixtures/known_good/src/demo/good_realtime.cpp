// Fixture: realtime-pure parallel helpers, plus the two blessed escapes —
// first-call-only lazy init (a static initializer statement prunes the edge,
// so expensive_setup's new/delete never enter the cone) and a counted
// allow(realtime) suppression on a deliberate trace.
#include <cstddef>
#include <cstdio>
#include <vector>

namespace ppatc::demo {

double pure_helper(double v) { return v * 0.5; }

double expensive_setup() {
  double* table = new double[4];  // runs once: reached only via a static init
  double sum = table[0];
  delete[] table;
  return sum;
}

double cached_scale() {
  static const double scale = expensive_setup();  // first-call-only: edge pruned
  return scale;
}

double traced_helper(double v) {
  // ppatc-lint: allow(realtime)
  std::printf("trace %f\n", v);  // counted suppression, not a violation
  return v;
}

void good_hot_loop(std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = pure_helper(static_cast<double>(i)) * cached_scale() + traced_helper(0.0);
  });
}

}  // namespace ppatc::demo
