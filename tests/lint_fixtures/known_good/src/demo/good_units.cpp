// Fixture: unwrapped quantities used consistently — the negative space of
// the units-escape rule.
namespace ppatc::demo {

double consistent_sum(Duration a, Duration b) {
  double s1 = units::in_seconds(a);
  double s2 = units::in_seconds(b);
  return s1 + s2;  // same dimension, same unit: fine
}

Duration round_trip(Duration d) {
  double secs = units::in_seconds(d);
  return units::seconds(secs);  // matching accessor/factory pair
}

double scaled(Power p, double factor) {
  double w = units::in_watts(p);
  return w * factor;  // scaling by a dimensionless factor is fine
}

}  // namespace ppatc::demo
