// Fixture: the unordered-iter escapes — single-element containers and folds
// sorted immediately after the loop have no observable iteration order.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ppatc::demo {

double single_element_is_ordered() {
  std::unordered_map<std::string, double> defaults{{"alpha", 1.0}};
  double total = 0.0;
  for (const auto& [key, v] : defaults) total += v;  // one element: one order
  return total;
}

std::vector<std::string> sorted_fold(const std::unordered_set<std::string>& names) {
  std::vector<std::string> out;
  for (const std::string& name : names) out.push_back(name);
  std::sort(out.begin(), out.end());  // canonicalizes the visit order
  return out;
}

}  // namespace ppatc::demo
