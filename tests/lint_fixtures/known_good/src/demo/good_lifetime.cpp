// Fixture: view/reference returns whose referents outlive the call — the
// shapes the lifetime rule must accept.
#include <string>
#include <string_view>

namespace ppatc::demo {

class Named {
 public:
  const std::string& label() const { return label_; }  // member: caller-owned
  std::string_view view() const { return label_; }     // view of a member

 private:
  std::string label_;
};

std::string_view first_word(std::string_view text) {
  return text.substr(0, text.find(' '));  // derived from the parameter
}

const std::string& fallback_label() {
  static const std::string kFallback = "unnamed";
  return kFallback;  // static storage outlives every caller
}

}  // namespace ppatc::demo
