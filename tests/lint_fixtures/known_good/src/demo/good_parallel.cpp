// Fixture: chunk-pure parallel bodies — the blessed patterns the
// parallel-safety rule must accept. Writes go only to locals and to
// index-addressed slots of pre-sized buffers.
#include <cstddef>
#include <vector>

namespace ppatc::demo {

void fill_squares(std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    double v = static_cast<double>(i);
    out[i] = v * v;  // index-addressed slot: the blessed output pattern
  });
}

double chunked_sum(const std::vector<double>& values) {
  std::vector<double> partials;
  partials.resize(4);
  parallel_for_chunks(values.size(), 16, [&](ChunkRange chunk) {
    double acc = 0.0;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) acc += values[i];
    partials[chunk.index] = acc;  // chunk-indexed slot, merged after the join
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace ppatc::demo
