// Fixture: unit tags that stay consistent across call/return edges — the
// interprocedural shapes interproc-units-escape must accept.

namespace ppatc::demo {

double unwrap_runtime(const Duration& d) { return in_seconds(d); }

double unwrap_extra(const Duration& d) { return in_seconds(d); }

double overhead_joules(double base_j) {
  const double pad = in_joules(kPadEnergy);
  return base_j + pad;
}

double total_runtime(const Duration& a, const Duration& b) {
  const double first = unwrap_runtime(a);
  const double second = unwrap_extra(b);
  return first + second;  // same (Duration, seconds) tag on both sides
}

double padded_energy(const Energy& e) {
  const double j = in_joules(e);
  return overhead_joules(j);  // joules where joules is expected
}

double rewrapped(const Duration& d) {
  const double t = unwrap_runtime(d);
  const auto again = units::seconds(t);  // matching factory round-trip
  return in_seconds(again);
}

}  // namespace ppatc::demo
