// Fixture: the chunk-indexed fp discipline — parallel work writes
// index-addressed slots or chunk-local accumulators and folds serially, so
// fp-reduction-order stays quiet. The same accumulate helper that is a
// violation inside a parallel lambda is fine on the serial path.
#include <cstddef>
#include <vector>

namespace ppatc::demo {

void accumulate(double& acc, double x) { acc += x; }

double chunked_sum(const std::vector<double>& values) {
  std::vector<double> partials;
  partials.resize(4);
  parallel_for_chunks(values.size(), 16, [&](ChunkRange chunk) {
    double local = 0.0;  // lambda-local: no shared merge order
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) local += values[i];
    partials[chunk.index] = local;  // chunk-indexed slot
  });
  double total = 0.0;
  for (double p : partials) accumulate(total, p);  // serial fold: order-fixed
  return total;
}

double squared_norm(const std::vector<double>& xs, std::vector<double>& out) {
  parallel_for(xs.size(), [&](std::size_t i) {
    out[i] = xs[i] * xs[i];  // index-addressed output
  });
  double total = 0.0;
  for (double p : out) accumulate(total, p);
  return total;
}

}  // namespace ppatc::demo
