// Fixture: noexcept functions the noexcept-escape rule must accept — a
// try/catch firewall around a throwing callee, and a pure noexcept chain
// (a noexcept callee is a barrier: it terminates rather than propagating,
// and is audited as its own root).
#include <stdexcept>

namespace ppatc::demo {

int risky_parse(int v) {
  if (v < 0) throw std::invalid_argument{"negative"};
  return v;
}

int guarded(int v) noexcept {
  try {
    return risky_parse(v);
  } catch (const std::exception&) {
    return 0;
  }
}

int pure_add(int a, int b) noexcept { return a + b; }

int pure_chain(int a) noexcept { return pure_add(a, 1); }

}  // namespace ppatc::demo
