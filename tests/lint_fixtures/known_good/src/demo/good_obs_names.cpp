// Fixture: literal names at obs call sites, including a wrapped call whose
// literal lands on the next line — all fine under obs-name-literal.
#include <cstdint>

namespace ppatc::obs {
struct Counter {
  void add(std::uint64_t n) noexcept;
};
Counter& counter(const char* name);
void flight_mark(const char* name, std::uint64_t value) noexcept;
struct Span {
  explicit Span(const char* name) noexcept;
};
}  // namespace ppatc::obs

namespace ppatc::demo {
namespace obs = ppatc::obs;

void record_sample(std::uint64_t v) {
  obs::counter("demo.samples").add(v);
  obs::flight_mark("demo.sample_value", v);
  const obs::Span span{"demo.record_sample"};
  obs::flight_mark(
      "demo.sample_value_wrapped", v);
}

}  // namespace ppatc::demo
