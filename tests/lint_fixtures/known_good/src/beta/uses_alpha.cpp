// Fixture: a cross-module include along a declared layering edge
// (beta -> alpha in this tree's tools/lint/layering.toml) is clean.
#include "ppatc/alpha/api.hpp"

namespace ppatc::beta {

inline int beta_token() { return ppatc::alpha::alpha_token(); }

}  // namespace ppatc::beta
