// Fixture: public header of module alpha; module beta consumes it along a
// declared layering edge.
#pragma once

namespace ppatc::alpha {

inline int alpha_token() { return 7; }

}  // namespace ppatc::alpha
