// Fixture: interproc-units-escape violations — (dimension, unit) tags
// carried across call/return edges into cross-function mixes, wrong-factory
// rewraps and callee parameter-expectation mismatches. The brace-local
// units-escape rule cannot see any of these: every tag crosses a function
// boundary first.

namespace ppatc::demo {

double unwrap_runtime(const Duration& d) { return in_seconds(d); }

double unwrap_energy(const Energy& e) { return in_joules(e); }

double unwrap_millis(const Duration& d) { return in_milliseconds(d); }

double overhead_joules(double base_j) {
  const double pad = in_joules(kPadEnergy);
  return base_j + pad;  // teaches: parameter 0 carries (Energy, joules)
}

double bad_cross_mix(const Duration& d, const Energy& e) {
  const double t = unwrap_runtime(d);
  const double j = unwrap_energy(e);
  const double busted = t + j;  // Duration + Energy, tags from two callees
  return busted;
}

double bad_param_mismatch(const Duration& d) {
  const double t = unwrap_runtime(d);
  return overhead_joules(t);  // seconds where the callee folds in joules
}

double bad_rewrap(const Duration& d) {
  const double t = unwrap_runtime(d);
  const auto wrong = units::joules(t);  // seconds re-wrapped as Energy
  return in_joules(wrong);
}

double bad_same_dimension(const Duration& a, const Duration& b) {
  const double s = unwrap_runtime(a);
  const double ms = unwrap_millis(b);
  const double skew = s - ms;  // both Duration, but seconds vs milliseconds
  return skew;
}

}  // namespace ppatc::demo
