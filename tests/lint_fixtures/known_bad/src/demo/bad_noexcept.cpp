// Fixture: noexcept functions whose bodies can reach a throw — directly,
// transitively through a throwing callee, and via a known-throwing contract
// macro. Seeds three noexcept-escape findings.
#include <stdexcept>

namespace ppatc::demo {

int parse_positive(int v) {
  if (v < 0) throw std::invalid_argument{"negative"};
  return v;
}

int direct_throw(int v) noexcept {
  if (v < 0) throw std::runtime_error{"boom"};  // escape = std::terminate
  return v;
}

int transitive_throw(int v) noexcept {
  return parse_positive(v);  // callee throws, no try/catch between
}

int contract_checked(int v) noexcept {
  PPATC_EXPECT(v >= 0, "v must be non-negative");  // contract macros throw
  return v;
}

}  // namespace ppatc::demo
