// Fixture: determinism-taint violations — run-varying values (pointer
// identity, thread identity, unordered iteration order) flowing into
// RunManifest::record* sinks and cache-key computations, across function
// boundaries.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace ppatc::demo {

struct Manifest {
  void record(const std::string& key, double value);
  void record_text(const std::string& key, const std::string& value);
  void record_vs_paper(const std::string& key, double value, double paper);
};

struct Node {
  int id;
};

std::uint64_t fingerprint(const Node* node) {
  return reinterpret_cast<std::uint64_t>(node);  // pointer-identity source
}

void log_node(Manifest& m, const Node* node) {
  m.record("node_key", static_cast<double>(fingerprint(node)));
}

void log_thread(Manifest& m) {
  m.record_text("worker", std::to_string(gettid()));
}

double fold_cache(const std::unordered_map<int, double>& cache) {
  double acc = 0.0;
  for (const auto& [key, value] : cache) acc += value;
  return acc;
}

void log_cache(Manifest& m, const std::unordered_map<int, double>& cache) {
  m.record_vs_paper("cache_sum", fold_cache(cache), 1.0);
}

std::size_t salted_key(const Node* node, std::size_t salt) {
  // ppatc: cache-key
  return mix(reinterpret_cast<std::size_t>(node), salt);
}

void log_bucket(Manifest& m, const Node* node) {
  const std::size_t bucket = std::hash<const Node*>{}(node);
  m.record("bucket", static_cast<double>(bucket));
}

}  // namespace ppatc::demo
