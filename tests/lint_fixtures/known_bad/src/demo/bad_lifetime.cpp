// Fixture: lifetime violations — views and references escaping their scope.
#include <string>
#include <string_view>

namespace ppatc::demo {

std::string_view dangling_view() {
  std::string buffer = "transient";
  return buffer;  // view of a local that dies at end of scope
}

const std::string& dangling_ref() {
  std::string local = "scoped";
  return local;  // reference to a dead local
}

std::string_view temp_view() {
  return std::string{"temp"};  // view over a temporary
}

}  // namespace ppatc::demo
