// Fixture: public header violating unit-typed-api twice.
#pragma once

namespace ppatc::demo {

struct BadSpec {
  double energy_j = 0.0;  // raw joules field -> should be ppatc::units::Energy
};

double lifetime_carbon(double area_mm2, int nodes);  // raw mm^2 parameter

}  // namespace ppatc::demo
