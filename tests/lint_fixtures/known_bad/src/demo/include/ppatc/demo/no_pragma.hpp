// Fixture: public header missing #pragma once -> pragma-once violation.
#ifndef PPATC_DEMO_NO_PRAGMA_HPP
#define PPATC_DEMO_NO_PRAGMA_HPP

namespace ppatc::demo {
inline int answer() { return 42; }
}  // namespace ppatc::demo

#endif
