// Fixture: units-escape violations — raw doubles unwrapped from strong types
// that mix dimensions, mix units, or re-enter the unit system wrongly.
namespace ppatc::demo {

double mixes_dimensions(Power p, Duration d) {
  double watts_now = units::in_watts(p);
  double secs = units::in_seconds(d);
  return watts_now + secs;  // Power + Duration in raw double arithmetic
}

double mixes_units(Duration a, Duration b) {
  double s = units::in_seconds(a);
  double h = units::in_hours(b);
  return s - h;  // same dimension, different units
}

Energy wrong_factory(Duration d) {
  double secs = units::in_seconds(d);
  return units::joules(secs);  // a Duration fed to the Energy factory
}

double raw_value(Energy e) {
  return e.value();  // raw unwrap bypasses the named in_*() conversions
}

}  // namespace ppatc::demo
