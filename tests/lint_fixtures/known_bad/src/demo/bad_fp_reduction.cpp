// Fixture: fp-reduction-order violations — shared floating-point
// accumulators mutated inside parallel regions, directly and through
// helpers one and two calls deep. merge_into is deliberately defined before
// accumulate so its summary needs a second fixpoint iteration.
#include <cstddef>
#include <vector>

namespace ppatc::demo {

void merge_into(double& dst, double x) { accumulate(dst, x); }

void accumulate(double& acc, double x) { acc += x; }

double bad_direct_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    sum += xs[i];  // scheduler-ordered fp merge
  });
  return sum;
}

double bad_direct_product(const std::vector<double>& xs) {
  double product = 1.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    product *= xs[i];  // same hazard through *=
  });
  return product;
}

double bad_helper_sum(const std::vector<double>& xs) {
  double total = 0.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    accumulate(total, xs[i]);  // the helper accumulates on the lambda's behalf
  });
  return total;
}

double bad_two_hop(const std::vector<double>& xs) {
  double folded = 0.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    merge_into(folded, xs[i]);  // two calls deep: merge_into -> accumulate
  });
  return folded;
}

}  // namespace ppatc::demo
