// Fixture: allocation, locking, and I/O reached transitively from a
// parallel_for lambda body. Seeds four realtime-purity findings (a fifth is
// the lock_guard inside bad_parallel.cpp's lambda).
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace ppatc::demo {

namespace {
std::mutex g_m;
}  // namespace

double alloc_helper(std::size_t n) {
  void* scratch = std::malloc(n);  // allocates on the hot path
  std::free(scratch);              // and frees on it
  return static_cast<double>(n);
}

double locked_helper(double v) {
  std::lock_guard<std::mutex> lock{g_m};  // blocks on the hot path
  return v * 2.0;
}

double logging_helper(double v) {
  std::printf("v=%f\n", v);  // I/O on the hot path
  return v;
}

void bad_hot_loop(std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = alloc_helper(8) + locked_helper(1.0) + logging_helper(2.0);
  });
}

}  // namespace ppatc::demo
