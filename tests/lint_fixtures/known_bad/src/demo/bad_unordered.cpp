// Fixture: range-for over an unordered container -> unordered-iter violation.
#include <string>
#include <unordered_map>

namespace ppatc::demo {

double unordered_sum() {
  std::unordered_map<std::string, double> weights{{"a", 1.0}, {"b", 2.0}};
  double total = 0.0;
  for (const auto& [key, w] : weights) total += w;  // order-dependent float sum
  return total;
}

}  // namespace ppatc::demo
