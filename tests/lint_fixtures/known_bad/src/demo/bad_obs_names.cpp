// Fixture: runtime-built names at obs call sites -> obs-name-literal.
#include <cstdint>
#include <string>

namespace ppatc::obs {
struct Counter {
  void add(std::uint64_t n) noexcept;
};
Counter& counter(const std::string& name);
void flight_mark(const char* name, std::uint64_t value) noexcept;
struct Span {
  explicit Span(const char* name) noexcept;
};
}  // namespace ppatc::obs

namespace ppatc::demo {
namespace obs = ppatc::obs;

void record_sample(const std::string& dynamic_name, std::uint64_t v) {
  obs::counter(dynamic_name).add(v);
  obs::flight_mark(dynamic_name.c_str(), v);
  const obs::Span span{dynamic_name.c_str()};
}

}  // namespace ppatc::demo
