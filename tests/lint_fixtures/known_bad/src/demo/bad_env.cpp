// Fixture: environment read outside the blessed allowlist -> env-allowlist.
#include <cstdlib>

namespace ppatc::demo {

bool debug_enabled() { return std::getenv("PPATC_DEMO_DEBUG") != nullptr; }

}  // namespace ppatc::demo
