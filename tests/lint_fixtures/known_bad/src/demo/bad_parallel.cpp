// Fixture: parallel-safety violations — shared writes and synchronization
// inside lambdas handed to the deterministic parallel runtime.
#include <cstddef>
#include <mutex>
#include <vector>

namespace ppatc::demo {

void bad_accumulate(std::vector<double>& out) {
  double total = 0.0;
  std::size_t hits = 0;
  parallel_for(out.size(), [&](std::size_t i) {
    total += static_cast<double>(i);  // shared write through a ref capture
    ++hits;                           // shared increment
    out[i] = total;                   // the indexed slot itself is fine
  });
}

void bad_locked(std::vector<double>& out) {
  std::mutex m;
  parallel_for(out.size(), [&](std::size_t i) {
    std::lock_guard<std::mutex> lock{m};  // serializing hides the race
    out[i] = 1.0;
  });
}

}  // namespace ppatc::demo
