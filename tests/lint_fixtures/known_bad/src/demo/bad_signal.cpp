// Fixture: an async-signal-UNSAFE handler cone — allocation, std::string,
// snprintf, and a call to an unannotated internal helper, all reachable from
// a registered sigaction handler. Seeds five signal-safety findings.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ppatc::demo {

namespace {

// Not annotated '// ppatc-lint: signal-safe': calling this from the handler
// cone is a finding even though the body happens to be harmless.
void format_status(const char* text) { (void)text; }

void crash_handler(int sig) {
  std::string msg = "crashed";                 // std::string allocates
  char buf[64];
  std::snprintf(buf, sizeof buf, "%d", sig);   // snprintf is locale/alloc-unsafe
  void* scratch = std::malloc(16);             // allocator lock
  std::free(scratch);                          // allocator lock
  format_status(buf);                          // unannotated internal helper
  (void)msg;
}

}  // namespace

void install_bad_handler() {
  struct sigaction sa {};
  sa.sa_handler = &crash_handler;
  sigaction(SIGSEGV, &sa, nullptr);
}

}  // namespace ppatc::demo
