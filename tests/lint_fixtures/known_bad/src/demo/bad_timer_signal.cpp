// Fixture: a timer_create(SIGEV_THREAD)-registered callback whose cone is
// async-signal-UNSAFE — the sigev_notify_function assignment must register
// the callback as a signal root, and the snprintf inside it seeds exactly
// one signal-safety finding.
#include <cstdio>
#include <ctime>
#include <signal.h>

namespace ppatc::demo {

namespace {

void timer_tick(union sigval sv) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%p", sv.sival_ptr);  // locale/alloc-unsafe
  (void)buf;
}

}  // namespace

void install_bad_timer() {
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD;
  sev.sigev_notify_function = &timer_tick;
  timer_t timer{};
  timer_create(CLOCK_MONOTONIC, &sev, &timer);
}

}  // namespace ppatc::demo
