// Fixture: source file violating the determinism rule four ways.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace ppatc::demo {

int noisy() {
  std::srand(static_cast<unsigned>(time(NULL)));          // srand + time seed
  std::random_device rd;                                  // nondeterministic source
  auto now = std::chrono::system_clock::now();            // wall clock
  return std::rand() + static_cast<int>(rd() % 2) +
         static_cast<int>(now.time_since_epoch().count() % 2);
}

}  // namespace ppatc::demo
