// Fixture: layering violations — module beta has no declared edge to alpha
// (see this tree's tools/lint/layering.toml), so both the public include and
// the relative reach into alpha's internals must fire.
#include "ppatc/alpha/api.hpp"
#include "../alpha/include/ppatc/alpha/api.hpp"

namespace ppatc::beta {

inline int beta_token() { return ppatc::alpha::alpha_token(); }

}  // namespace ppatc::beta
