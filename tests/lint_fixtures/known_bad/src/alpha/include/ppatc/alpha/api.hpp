// Fixture: public header of module alpha — the target of the layering
// fixtures. Clean on its own; the violations live in module beta.
#pragma once

namespace ppatc::alpha {

inline int alpha_token() { return 7; }

}  // namespace ppatc::alpha
