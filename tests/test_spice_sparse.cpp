// Sparse-vs-dense equivalence for the MNA linear solver.
//
// The sparse CSR solver replays the dense partially-pivoted LU over the
// structural-union pattern, so its results must be bit-identical to the dense
// oracle — not merely close. These tests run every bench circuit topology
// (RC ladder, bit-cell write deck, read/sense deck, FET DC decks) under both
// backends and assert exact equality of every node voltage, source current,
// and Newton iteration count, plus direct SparseLuSolver unit coverage of
// pivot-drift rediscovery.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "ppatc/device/library.hpp"
#include "ppatc/spice/circuit.hpp"
#include "ppatc/spice/simulator.hpp"
#include "ppatc/spice/sparse.hpp"

namespace ppatc::spice {
namespace {

SimOptions with_solver(LinearSolverKind kind) {
  SimOptions o;
  o.solver = kind;
  return o;
}

// Runs the DC operating point under both backends and asserts bitwise
// equality of the full solution and of the Newton path length.
void expect_dc_bit_identical(const Circuit& ckt) {
  const Simulator sparse{ckt, with_solver(LinearSolverKind::kSparse)};
  const Simulator dense{ckt, with_solver(LinearSolverKind::kDense)};
  const auto s = sparse.dc_operating_point();
  const auto d = dense.dc_operating_point();
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(s->newton_iterations, d->newton_iterations);
  ASSERT_EQ(s->node_volts.size(), d->node_volts.size());
  for (std::size_t i = 0; i < s->node_volts.size(); ++i) {
    EXPECT_EQ(s->node_volts[i], d->node_volts[i]) << "node " << i;
  }
  ASSERT_EQ(s->source_currents.size(), d->source_currents.size());
  for (std::size_t i = 0; i < s->source_currents.size(); ++i) {
    EXPECT_EQ(s->source_currents[i], d->source_currents[i]) << "source " << i;
  }
}

// Runs a transient under both backends and asserts bitwise equality of every
// sample of the listed nodes and sources.
void expect_transient_bit_identical(const Circuit& ckt, Duration stop, Duration step, bool from_ics,
                                    const std::vector<std::string>& nodes,
                                    const std::vector<std::string>& sources) {
  const Simulator sparse{ckt, with_solver(LinearSolverKind::kSparse)};
  const Simulator dense{ckt, with_solver(LinearSolverKind::kDense)};
  const auto s = sparse.transient(stop, step, from_ics);
  const auto d = dense.transient(stop, step, from_ics);
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(s->sample_count(), d->sample_count());
  for (const auto& name : nodes) {
    const Waveform ws = s->node(name);
    const Waveform wd = d->node(name);
    ASSERT_EQ(ws.value.size(), wd.value.size()) << name;
    for (std::size_t i = 0; i < ws.value.size(); ++i) {
      EXPECT_EQ(ws.value[i], wd.value[i]) << name << " sample " << i;
    }
  }
  for (const auto& name : sources) {
    const Waveform ws = s->source_current(name);
    const Waveform wd = d->source_current(name);
    ASSERT_EQ(ws.value.size(), wd.value.size()) << name;
    for (std::size_t i = 0; i < ws.value.size(); ++i) {
      EXPECT_EQ(ws.value[i], wd.value[i]) << name << " sample " << i;
    }
  }
}

// ---- bench circuit topologies ---------------------------------------------

// RC ladder: resistive chain with caps to ground, PWL-driven.
Circuit rc_ladder() {
  Circuit ckt;
  ckt.add_vsource("vin", "n0", "0",
                  Stimulus::pwl({{units::picoseconds(0), units::volts(0)},
                                 {units::picoseconds(50), units::volts(1.0)}}));
  for (int i = 0; i < 6; ++i) {
    const std::string a = "n" + std::to_string(i);
    const std::string b = "n" + std::to_string(i + 1);
    ckt.add_resistor(a, b, 1e3);
    ckt.add_capacitor(b, "0", units::attofarads(500.0));
  }
  return ckt;
}

// Bit-cell write deck (the memsys write corner): IGZO write FET charging the
// storage node.
Circuit bitcell_write_deck() {
  auto fet = device::igzo_fet();
  fet.vt_volts = 0.42;
  Circuit ckt;
  ckt.add_vsource("vwbl", "wbl", "0", Stimulus::dc(units::volts(0.7)));
  ckt.add_vsource("vwwl", "wwl", "0",
                  Stimulus::pwl({{units::picoseconds(0), units::volts(-0.8)},
                                 {units::picoseconds(20), units::volts(1.3)}}));
  ckt.add_fet("mw", fet, units::micrometres(0.120), "wbl", "wwl", "sn");
  ckt.add_capacitor_ic("sn", "0", units::attofarads(1000.0), units::volts(0.0));
  return ckt;
}

// Bit-cell read/sense deck (the memsys read corner): two-FET read stack
// discharging a pre-charged bitline.
Circuit bitcell_read_deck() {
  const auto nfet = device::cnfet(device::Polarity::kNmos);
  Circuit ckt;
  ckt.add_vsource("vsn", "sn", "0", Stimulus::dc(units::volts(0.7)));
  ckt.add_vsource("vrwl", "rwl", "0",
                  Stimulus::pwl({{units::picoseconds(0), units::volts(0)},
                                 {units::picoseconds(20), units::volts(0.7)}}));
  ckt.add_fet("mr", nfet, units::micrometres(0.2), "rbl", "sn", "mid");
  ckt.add_fet("ms", nfet, units::micrometres(0.2), "mid", "rwl", "0");
  ckt.add_capacitor_ic("rbl", "0", units::attofarads(2000.0), units::volts(0.7));
  ckt.add_capacitor("mid", "0", units::attofarads(80.0));
  return ckt;
}

// FET DC deck: resistively loaded silicon inverter-style branch — exercises
// gmin/source stepping paths on a nonlinear DC solve.
Circuit fet_dc_deck() {
  const auto nfet = device::silicon_finfet(device::Polarity::kNmos, device::VtFlavor::kRvt);
  Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", Stimulus::dc(units::volts(0.7)));
  ckt.add_vsource("vg", "g", "0", Stimulus::dc(units::volts(0.45)));
  ckt.add_resistor("vdd", "out", 20e3);
  ckt.add_fet("mn", nfet, units::micrometres(0.1), "out", "g", "0");
  return ckt;
}

TEST(SparseVsDense, RcLadderDcBitIdentical) { expect_dc_bit_identical(rc_ladder()); }

TEST(SparseVsDense, RcLadderTransientBitIdentical) {
  expect_transient_bit_identical(rc_ladder(), units::nanoseconds(1.0), units::picoseconds(10.0),
                                 /*from_ics=*/false, {"n1", "n3", "n6"}, {"vin"});
}

TEST(SparseVsDense, BitcellWriteDeckDcBitIdentical) {
  expect_dc_bit_identical(bitcell_write_deck());
}

TEST(SparseVsDense, BitcellWriteDeckTransientBitIdentical) {
  expect_transient_bit_identical(bitcell_write_deck(), units::nanoseconds(2.0),
                                 units::picoseconds(5.0),
                                 /*from_ics=*/true, {"sn"}, {"vwbl", "vwwl"});
}

TEST(SparseVsDense, BitcellReadDeckTransientBitIdentical) {
  expect_transient_bit_identical(bitcell_read_deck(), units::nanoseconds(1.0),
                                 units::picoseconds(2.0),
                                 /*from_ics=*/true, {"rbl", "mid"}, {"vsn", "vrwl"});
}

TEST(SparseVsDense, FetDcDeckBitIdentical) { expect_dc_bit_identical(fet_dc_deck()); }

TEST(SparseVsDense, FetDcDeckTransientBitIdentical) {
  expect_transient_bit_identical(fet_dc_deck(), units::picoseconds(200.0), units::picoseconds(2.0),
                                 /*from_ics=*/false, {"out"}, {"vdd", "vg"});
}

// ---- direct SparseLuSolver coverage ---------------------------------------

std::shared_ptr<const MnaPattern> full_pattern(std::size_t n) {
  MnaPattern::Builder b{n};
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b.add(r, c);
  }
  return intern_mna_pattern(std::move(b).build());
}

void stamp(SparseLuSolver& s, const std::vector<std::vector<double>>& a) {
  s.begin_assembly();
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < a[r].size(); ++c) {
      if (a[r][c] != 0.0) s.add(r, c, a[r][c]);
    }
  }
}

std::vector<double> dense_solution(const std::vector<std::vector<double>>& a,
                                   std::vector<double> b) {
  DenseMatrix m{a.size()};
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < a[r].size(); ++c) m.at(r, c) = a[r][c];
  }
  EXPECT_TRUE(m.solve(b));
  return b;
}

TEST(SparseLuSolver, PivotDriftTriggersRediscoveryAndStaysBitIdentical) {
  SparseLuSolver solver{full_pattern(2)};

  // First solve: diagonal dominates, pivot order is the identity.
  const std::vector<std::vector<double>> a1 = {{10.0, 1.0}, {1.0, 0.5}};
  std::vector<double> b1 = {1.0, 2.0};
  stamp(solver, a1);
  ASSERT_TRUE(solver.factor_solve(b1));
  EXPECT_EQ(solver.discoveries(), 1u);
  const auto want1 = dense_solution(a1, {1.0, 2.0});
  EXPECT_EQ(b1[0], want1[0]);
  EXPECT_EQ(b1[1], want1[1]);

  // Second solve: the off-diagonal now dominates, so partial pivoting must
  // swap rows — the recorded pivot sequence no longer matches, the replay
  // detects the drift and falls back to the dense oracle.
  const std::vector<std::vector<double>> a2 = {{0.1, 1.0}, {1.0, 0.5}};
  std::vector<double> b2 = {1.0, 2.0};
  stamp(solver, a2);
  ASSERT_TRUE(solver.factor_solve(b2));
  EXPECT_EQ(solver.discoveries(), 2u);
  const auto want2 = dense_solution(a2, {1.0, 2.0});
  EXPECT_EQ(b2[0], want2[0]);
  EXPECT_EQ(b2[1], want2[1]);

  // Third solve with the same pivot order as the second: pure replay.
  std::vector<double> b3 = {3.0, -1.0};
  stamp(solver, a2);
  ASSERT_TRUE(solver.factor_solve(b3));
  EXPECT_EQ(solver.discoveries(), 2u);
  const auto want3 = dense_solution(a2, {3.0, -1.0});
  EXPECT_EQ(b3[0], want3[0]);
  EXPECT_EQ(b3[1], want3[1]);
}

TEST(SparseLuSolver, SingularMatrixMatchesDenseFailure) {
  SparseLuSolver solver{full_pattern(2)};
  stamp(solver, {{1.0, 2.0}, {2.0, 4.0}});
  std::vector<double> b = {1.0, 1.0};
  EXPECT_FALSE(solver.factor_solve(b));
}

TEST(SparseLuSolver, ReplayedSolvesReuseTheProgramAcrossManyRhs) {
  SparseLuSolver solver{full_pattern(3)};
  const std::vector<std::vector<double>> a = {
      {4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  for (int i = 0; i < 16; ++i) {
    std::vector<double> b = {1.0 + i, 2.0 - i, 0.5 * i};
    stamp(solver, a);
    ASSERT_TRUE(solver.factor_solve(b));
    const auto want = dense_solution(a, {1.0 + i, 2.0 - i, 0.5 * i});
    EXPECT_EQ(b[0], want[0]);
    EXPECT_EQ(b[1], want[1]);
    EXPECT_EQ(b[2], want[2]);
  }
  EXPECT_EQ(solver.discoveries(), 1u);
}

TEST(SparsePatternCache, SameTopologySharesOneInternedPattern) {
  // Two structurally identical builders must intern to the same object.
  MnaPattern::Builder b1{4};
  MnaPattern::Builder b2{4};
  for (std::size_t i = 0; i < 4; ++i) {
    b1.add(i, i);
    b2.add(i, i);
    if (i > 0) {
      b1.add(i, i - 1);
      b2.add(i, i - 1);
      b1.add(i - 1, i);
      b2.add(i - 1, i);
    }
  }
  const auto p1 = intern_mna_pattern(std::move(b1).build());
  const auto p2 = intern_mna_pattern(std::move(b2).build());
  EXPECT_EQ(p1.get(), p2.get());
}

}  // namespace
}  // namespace ppatc::spice
