// Differential tests for the threaded-code dispatch engine.
//
// The threaded engine (pre-decoded basic blocks + handler table) must be
// observationally identical to the original switch interpreter: same
// architectural state after every instruction, same cycle counts, same
// AccessStats, same faults with the same messages. These tests run the two
// engines in lockstep and end-to-end over every workload kernel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ppatc/isa/assembler.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/workloads/workload.hpp"

namespace ppatc::isa {
namespace {

constexpr std::uint32_t kStackTop = kDataBase + kDataSize - 16;

struct Machine {
  Bus bus;
  Cpu cpu;
  Machine(const std::vector<std::uint8_t>& program, Cpu::Dispatch dispatch)
      : cpu{bus, CycleModel{}, dispatch} {
    bus.load_program(0, program);
    cpu.reset(0, kStackTop);
  }
  Machine(const Program& program, Cpu::Dispatch dispatch) : cpu{bus, CycleModel{}, dispatch} {
    bus.load_program(0, program.bytes);
    cpu.reset(program.entry, kStackTop);
  }
};

void expect_same_cpu_state(const Cpu& a, const Cpu& b, const std::string& context) {
  for (int r = 0; r < 15; ++r) {
    EXPECT_EQ(a.reg(r), b.reg(r)) << context << ": r" << r;
  }
  EXPECT_EQ(a.pc(), b.pc()) << context;
  EXPECT_EQ(a.flag_n(), b.flag_n()) << context;
  EXPECT_EQ(a.flag_z(), b.flag_z()) << context;
  EXPECT_EQ(a.flag_c(), b.flag_c()) << context;
  EXPECT_EQ(a.flag_v(), b.flag_v()) << context;
  EXPECT_EQ(a.cycles(), b.cycles()) << context;
  EXPECT_EQ(a.instructions(), b.instructions()) << context;
}

void expect_same_bus_state(const Bus& a, const Bus& b, const std::string& context) {
  EXPECT_EQ(a.halted(), b.halted()) << context;
  EXPECT_EQ(a.exit_code(), b.exit_code()) << context;
  EXPECT_EQ(a.console(), b.console()) << context;
  EXPECT_EQ(a.word_log(), b.word_log()) << context;
  EXPECT_EQ(a.stats().fetches, b.stats().fetches) << context;
  EXPECT_EQ(a.stats().data_reads, b.stats().data_reads) << context;
  EXPECT_EQ(a.stats().data_writes, b.stats().data_writes) << context;
  EXPECT_EQ(a.stats().program_reads, b.stats().program_reads) << context;
  EXPECT_EQ(a.stats().data_mem_reads, b.stats().data_mem_reads) << context;
  EXPECT_EQ(a.stats().data_mem_writes, b.stats().data_mem_writes) << context;
  for (std::uint32_t addr = kDataBase; addr < kDataBase + kDataSize; addr += 4) {
    if (a.peek32(addr) != b.peek32(addr)) {
      // One targeted EXPECT per mismatch keeps the failure output bounded.
      EXPECT_EQ(a.peek32(addr), b.peek32(addr)) << context << ": data word at " << addr;
      return;
    }
  }
}

class DispatchDifferential : public ::testing::TestWithParam<workloads::Workload> {};

// Instruction-by-instruction lockstep: after every retired instruction both
// engines must agree on the complete architectural state. Capped so the
// whole suite stays fast; the full-run test below covers the tail.
TEST_P(DispatchDifferential, LockstepStateMatch) {
  constexpr std::uint64_t kMaxLockstep = 20'000;
  const Program program = assemble(GetParam().assembly);
  Machine sw{program, Cpu::Dispatch::kSwitch};
  Machine th{program, Cpu::Dispatch::kThreaded};
  std::uint64_t steps = 0;
  while (steps < kMaxLockstep && !sw.bus.halted()) {
    sw.cpu.step();
    th.cpu.run(1);
    ++steps;
    ASSERT_NO_FATAL_FAILURE(
        expect_same_cpu_state(sw.cpu, th.cpu, "after insn " + std::to_string(steps)));
    if (sw.cpu.pc() != th.cpu.pc()) break;  // diverged; state diff already reported
  }
  EXPECT_EQ(sw.bus.halted(), th.bus.halted());
  expect_same_bus_state(sw.bus, th.bus, "lockstep end");
}

// End-to-end: run both engines to completion and require identical results,
// counters, access statistics, and final data-memory images.
TEST_P(DispatchDifferential, FullRunMatch) {
  const workloads::Workload& w = GetParam();
  const Program program = assemble(w.assembly);
  Machine sw{program, Cpu::Dispatch::kSwitch};
  Machine th{program, Cpu::Dispatch::kThreaded};
  const auto rs = sw.cpu.run(w.instruction_budget);
  const auto rt = th.cpu.run(w.instruction_budget);
  EXPECT_EQ(rs.instructions, rt.instructions);
  EXPECT_EQ(rs.cycles, rt.cycles);
  EXPECT_EQ(rs.halted, rt.halted);
  EXPECT_TRUE(rt.halted) << w.name;
  expect_same_cpu_state(sw.cpu, th.cpu, w.name);
  expect_same_bus_state(sw.bus, th.bus, w.name);
}

INSTANTIATE_TEST_SUITE_P(SmallScale, DispatchDifferential,
                         ::testing::Values(workloads::matmult_int(2), workloads::crc32(2),
                                           workloads::edn(2), workloads::ud(2),
                                           workloads::aha_mont(16), workloads::sglib_list(2),
                                           workloads::statemate(2), workloads::primecount(2),
                                           workloads::qsort_ints(2), workloads::fib(10)),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- fault parity ----------------------------------------------------------

template <typename Exception>
std::string message_from(Cpu& cpu, std::uint64_t budget) {
  try {
    (void)cpu.run(budget);
  } catch (const Exception& e) {
    return e.what();
  }
  return {};
}

TEST(DispatchFaults, UndefinedInstructionMessageMatchesSwitch) {
  // UDF (0xDE00) after two NOPs, so the threaded engine decodes a real block
  // first and the trap carries a nonzero PC.
  const std::vector<std::uint8_t> program = {0x00, 0xBF, 0x00, 0xBF, 0x00, 0xDE};
  Machine sw{program, Cpu::Dispatch::kSwitch};
  Machine th{program, Cpu::Dispatch::kThreaded};
  const std::string ms = message_from<UndefinedInstruction>(sw.cpu, 10);
  const std::string mt = message_from<UndefinedInstruction>(th.cpu, 10);
  EXPECT_FALSE(ms.empty());
  EXPECT_EQ(ms, mt);
  expect_same_cpu_state(sw.cpu, th.cpu, "after UDF");
  expect_same_bus_state(sw.bus, th.bus, "after UDF");
}

TEST(DispatchFaults, RunOffEndOfProgramMemoryMatchesSwitch) {
  // A lone NOP, then 64 kB of zero halfwords (LSLS r0, r0, #0 — valid), so
  // both engines execute to the end of program memory and fault on the fetch
  // at 0x10000. This also exercises the out-of-range block path.
  const std::vector<std::uint8_t> program = {0x00, 0xBF};
  Machine sw{program, Cpu::Dispatch::kSwitch};
  Machine th{program, Cpu::Dispatch::kThreaded};
  const std::string ms = message_from<BusFault>(sw.cpu, 40'000);
  const std::string mt = message_from<BusFault>(th.cpu, 40'000);
  EXPECT_FALSE(ms.empty());
  EXPECT_EQ(ms, mt);
  expect_same_cpu_state(sw.cpu, th.cpu, "after bus fault");
  expect_same_bus_state(sw.bus, th.bus, "after bus fault");
}

// ---- block-cache invalidation ----------------------------------------------

TEST(DispatchCache, LoadProgramInvalidatesDecodedBlocks) {
  Bus bus;
  Cpu cpu{bus};  // threaded is the default dispatch
  // Program A: counting loop (never halts) — populates the block cache.
  //   0: ADDS r0, #1
  //   2: B 0
  bus.load_program(0, {0x01, 0x30, 0xFD, 0xE7});
  cpu.reset(0, kStackTop);
  const auto ra = cpu.run(1000);
  EXPECT_FALSE(ra.halted);
  EXPECT_EQ(ra.instructions, 1000u);
  EXPECT_GT(cpu.reg(0), 0u);

  // Program B at the same addresses: SVC #0 (halt with r0). If the stale
  // block for PC 0 survived, the old loop would run the budget out instead
  // of halting on the first instruction.
  bus.load_program(0, {0x00, 0xDF});
  cpu.reset(0, kStackTop);
  const auto rb = cpu.run(1000);
  EXPECT_TRUE(rb.halted);
  EXPECT_EQ(rb.instructions, 1u);
  EXPECT_EQ(bus.exit_code(), 0u);
}

TEST(DispatchBudget, ThreadedRunHonorsExactInstructionBudget) {
  Bus bus;
  Cpu cpu{bus};
  bus.load_program(0, {0x01, 0x30, 0xFD, 0xE7});  // ADDS r0, #1; B 0
  cpu.reset(0, kStackTop);
  for (const std::uint64_t budget : {1u, 2u, 3u, 7u, 64u, 65u, 1000u}) {
    const std::uint64_t before = cpu.instructions();
    const auto r = cpu.run(budget);
    EXPECT_EQ(r.instructions, budget);
    EXPECT_EQ(cpu.instructions() - before, budget);
  }
}

}  // namespace
}  // namespace ppatc::isa
