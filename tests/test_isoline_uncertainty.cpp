// Tests for the Fig. 6 trade-space maps/isolines and the uncertainty
// machinery (interval arithmetic, robust comparison, Monte Carlo).
#include <gtest/gtest.h>

#include "ppatc/carbon/isoline.hpp"
#include "ppatc/carbon/uncertainty.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {
namespace {

using namespace ppatc::units;

OperationalScenario us_scenario() {
  OperationalScenario s;
  s.use_intensity = DiurnalIntensity::flat(grids::us().intensity);
  return s;
}

SystemCarbonProfile profile(const std::string& name, double emb_g, double p_mw) {
  SystemCarbonProfile p;
  p.name = name;
  p.embodied_per_good_die = grams_co2e(emb_g);
  p.operational_power = milliwatts(p_mw);
  p.execution_time = milliseconds(40.0);
  return p;
}

TEST(Isoline, ScaledProfileScalesTheRightFields) {
  const auto p = profile("x", 3.0, 10.0);
  const auto s = scaled_profile(p, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(in_grams_co2e(s.embodied_per_good_die), 6.0);
  EXPECT_DOUBLE_EQ(in_milliwatts(s.operational_power), 5.0);
  EXPECT_EQ(s.execution_time, p.execution_time);
  EXPECT_THROW((void)scaled_profile(p, -1.0, 1.0), ContractViolation);
}

TEST(Isoline, AxisSpecSamplesEndpoints) {
  AxisSpec ax;
  ax.lo = 0.5;
  ax.hi = 2.0;
  ax.samples = 4;
  EXPECT_DOUBLE_EQ(ax.at(0), 0.5);
  EXPECT_DOUBLE_EQ(ax.at(3), 2.0);
  EXPECT_THROW((void)ax.at(4), ContractViolation);
}

TEST(Isoline, MapRatioIncreasesAlongBothAxes) {
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto map = tcdp_map(cand, base, us_scenario(), months(24.0));
  // Ratio must be monotone in both the embodied scale (x) and energy scale (y).
  for (std::size_t y = 0; y < map.ratio.size(); ++y) {
    for (std::size_t x = 1; x < map.ratio[y].size(); ++x) {
      EXPECT_GT(map.ratio[y][x], map.ratio[y][x - 1]);
    }
  }
  for (std::size_t y = 1; y < map.ratio.size(); ++y) {
    for (std::size_t x = 0; x < map.ratio[y].size(); ++x) {
      EXPECT_GT(map.ratio[y][x], map.ratio[y - 1][x]);
    }
  }
}

TEST(Isoline, UnitScalesReproducePlainRatio) {
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto s = us_scenario();
  const double direct = tcdp_ratio(cand, base, s, months(24.0));
  AxisSpec ax;
  ax.lo = 1.0;
  ax.hi = 2.0;
  ax.samples = 2;
  const auto map = tcdp_map(cand, base, s, months(24.0), ax, ax);
  EXPECT_NEAR(map.ratio[0][0], direct, 1e-12);
}

TEST(Isoline, PointSitsOnUnitRatio) {
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto s = us_scenario();
  const Duration t = months(24.0);
  for (const double x : {0.5, 1.0, 1.5, 2.0}) {
    const auto y = isoline_energy_scale(cand, base, s, t, x);
    ASSERT_TRUE(y.has_value()) << "x=" << x;
    const double ratio = tcdp_ratio(scaled_profile(cand, x, *y), base, s, t);
    EXPECT_NEAR(ratio, 1.0, 1e-6) << "x=" << x;
  }
}

TEST(Isoline, MatchesClosedForm) {
  // With equal execution times the isoline solves
  //   x*E_c + y*O_c(t) = E_b + O_b(t).
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto s = us_scenario();
  const Duration t = months(24.0);
  const double o_c = in_grams_co2e(operational_carbon(cand, s, t));
  const double tc_b = in_grams_co2e(total_carbon(base, s, t));
  const double x = 1.3;
  const double expected_y = (tc_b - x * 3.6) / o_c;
  const auto y = isoline_energy_scale(cand, base, s, t, x);
  ASSERT_TRUE(y.has_value());
  EXPECT_NEAR(*y, expected_y, 1e-6);
}

TEST(Isoline, SlopesDownward) {
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto line = tcdp_isoline(cand, base, us_scenario(), months(24.0));
  double prev = 1e18;
  for (const auto& pt : line) {
    if (!pt.energy_scale) continue;
    EXPECT_LT(*pt.energy_scale, prev);
    prev = *pt.energy_scale;
  }
}

TEST(Isoline, VariantsShiftAsInFig6b) {
  const auto cand = profile("m3d", 3.6, 8.5);
  const auto base = profile("si", 3.1, 9.7);
  const auto variants = isoline_variants(cand, base, us_scenario(), months(24.0));
  ASSERT_EQ(variants.size(), 7u);  // nominal + 6 perturbations
  auto y_at = [&](const IsolineVariant& v, double x_target) -> double {
    for (const auto& pt : v.isoline) {
      if (std::abs(pt.embodied_scale - x_target) < 1e-9 && pt.energy_scale) {
        return *pt.energy_scale;
      }
    }
    return -1.0;
  };
  const double x = 1.0;
  const double nominal = y_at(variants[0], x);
  ASSERT_GT(nominal, 0.0);
  // Longer lifetime -> operational dominates -> isoline moves up (more room).
  EXPECT_GT(y_at(variants[1], x), nominal);   // lifetime +6mo
  EXPECT_LT(y_at(variants[2], x), nominal);   // lifetime -6mo
  // Higher CI_use scales both designs' operational carbon; the baseline's
  // total grows, giving the candidate more room.
  EXPECT_GT(y_at(variants[3], x), 0.0);       // CI x3 exists
  // Worse candidate yield -> higher embodied -> less room.
  EXPECT_LT(y_at(variants[5], x), nominal);   // yield 10%
  EXPECT_GT(y_at(variants[6], x), nominal);   // yield 90%
}

// ---- intervals --------------------------------------------------------------

TEST(Interval, Constructors) {
  EXPECT_DOUBLE_EQ(Interval::point(3.0).lo, 3.0);
  EXPECT_DOUBLE_EQ(Interval::point(3.0).width(), 0.0);
  const Interval f = Interval::factor(10.0, 2.0);
  EXPECT_DOUBLE_EQ(f.lo, 5.0);
  EXPECT_DOUBLE_EQ(f.hi, 20.0);
  EXPECT_THROW(Interval::factor(10.0, 0.5), ContractViolation);
  const Interval pm = Interval::plus_minus(10.0, 3.0);
  EXPECT_DOUBLE_EQ(pm.lo, 7.0);
  EXPECT_DOUBLE_EQ(pm.hi, 13.0);
}

TEST(Interval, Arithmetic) {
  const Interval a{1.0, 2.0};
  const Interval b{3.0, 5.0};
  EXPECT_DOUBLE_EQ((a + b).lo, 4.0);
  EXPECT_DOUBLE_EQ((a + b).hi, 7.0);
  EXPECT_DOUBLE_EQ((b - a).lo, 1.0);
  EXPECT_DOUBLE_EQ((b - a).hi, 4.0);
  EXPECT_DOUBLE_EQ((a * b).lo, 3.0);
  EXPECT_DOUBLE_EQ((a * b).hi, 10.0);
  EXPECT_DOUBLE_EQ((b / a).lo, 1.5);
  EXPECT_DOUBLE_EQ((b / a).hi, 5.0);
  EXPECT_DOUBLE_EQ((-2.0 * a).lo, -4.0);
  EXPECT_DOUBLE_EQ((-2.0 * a).hi, -2.0);
}

TEST(Interval, MultiplicationHandlesSigns) {
  const Interval a{-2.0, 3.0};
  const Interval b{-1.0, 4.0};
  EXPECT_DOUBLE_EQ((a * b).lo, -8.0);  // -2*4
  EXPECT_DOUBLE_EQ((a * b).hi, 12.0);  // 3*4
}

TEST(Interval, DivisionByZeroSpanningIntervalThrows) {
  EXPECT_THROW((void)(Interval{1.0, 2.0} / Interval{-1.0, 1.0}), ContractViolation);
}

TEST(Interval, Predicates) {
  const Interval a{0.5, 0.9};
  EXPECT_TRUE(a.entirely_below(1.0));
  EXPECT_FALSE(a.entirely_above(1.0));
  EXPECT_TRUE(a.contains(0.7));
  EXPECT_FALSE(a.contains(1.1));
  EXPECT_DOUBLE_EQ(a.mid(), 0.7);
}

// ---- robust comparison ------------------------------------------------------

UncertainProfile uprofile(double emb_g, double emb_factor, double p_mw) {
  UncertainProfile p;
  p.embodied_per_good_die_g = Interval::factor(emb_g, emb_factor);
  p.operational_power_w = Interval::point(p_mw * 1e-3);
  p.execution_time = seconds(0.040);
  return p;
}

UncertainScenario uscenario() {
  UncertainScenario s;
  s.ci_use_g_per_kwh = Interval::plus_minus(380.0, 50.0);
  s.lifetime_months = Interval::plus_minus(24.0, 6.0);
  return s;
}

TEST(Robust, IntervalContainsPointRatio) {
  const auto c = uprofile(3.6, 1.2, 8.5);
  const auto b = uprofile(3.1, 1.2, 9.7);
  const Interval r = tcdp_ratio_interval(c, b, uscenario());
  EXPECT_LT(r.lo, r.hi);
  // The nominal point ratio (all mid values) must be inside.
  const double t_s = 24.0 * (365.0 / 12.0) * 86400.0;
  const double op_c = 380.0 / 3.6e6 * 8.5e-3 * (2.0 / 24.0) * t_s;
  const double op_b = 380.0 / 3.6e6 * 9.7e-3 * (2.0 / 24.0) * t_s;
  const double nominal = (3.6 + op_c) / (3.1 + op_b);
  EXPECT_TRUE(r.contains(nominal));
}

TEST(Robust, ClearWinnerDetected) {
  const auto much_better = uprofile(1.0, 1.05, 3.0);
  const auto baseline = uprofile(3.1, 1.05, 9.7);
  EXPECT_EQ(robust_compare(much_better, baseline, uscenario()),
            RobustVerdict::kCandidateAlwaysWins);
  EXPECT_EQ(robust_compare(baseline, much_better, uscenario()),
            RobustVerdict::kBaselineAlwaysWins);
}

TEST(Robust, CloseCallIsIndeterminate) {
  const auto c = uprofile(3.6, 1.3, 8.5);
  const auto b = uprofile(3.1, 1.3, 9.7);
  EXPECT_EQ(robust_compare(c, b, uscenario()), RobustVerdict::kIndeterminate);
}

TEST(Robust, SharedKnobCorrelationTightensInterval) {
  // Treating CI as shared (correlated) must give a tighter ratio interval
  // than full-box division would; at minimum, CI variation alone must not
  // widen the ratio when both designs have zero embodied carbon (the ratio
  // is then CI-independent).
  UncertainProfile c = uprofile(0.0, 1.0, 8.5);
  c.embodied_per_good_die_g = Interval::point(0.0);
  UncertainProfile b = uprofile(0.0, 1.0, 9.7);
  b.embodied_per_good_die_g = Interval::point(0.0);
  const Interval r = tcdp_ratio_interval(c, b, uscenario());
  EXPECT_NEAR(r.lo, 8.5 / 9.7, 1e-9);
  EXPECT_NEAR(r.hi, 8.5 / 9.7, 1e-9);
}

// ---- Monte Carlo ------------------------------------------------------------

TEST(MonteCarlo, DeterministicForSeed) {
  const auto c = uprofile(3.6, 1.2, 8.5);
  const auto b = uprofile(3.1, 1.2, 9.7);
  const auto s1 = monte_carlo_tcdp_ratio(c, b, uscenario(), 2000, 42);
  const auto s2 = monte_carlo_tcdp_ratio(c, b, uscenario(), 2000, 42);
  EXPECT_DOUBLE_EQ(s1.mean, s2.mean);
  EXPECT_DOUBLE_EQ(s1.p50, s2.p50);
  const auto s3 = monte_carlo_tcdp_ratio(c, b, uscenario(), 2000, 43);
  EXPECT_NE(s1.mean, s3.mean);
}

TEST(MonteCarlo, QuantilesOrderedAndInsideInterval) {
  const auto c = uprofile(3.6, 1.2, 8.5);
  const auto b = uprofile(3.1, 1.2, 9.7);
  const auto mc = monte_carlo_tcdp_ratio(c, b, uscenario(), 5000, 7);
  EXPECT_LE(mc.p05, mc.p50);
  EXPECT_LE(mc.p50, mc.p95);
  const Interval r = tcdp_ratio_interval(c, b, uscenario());
  EXPECT_GE(mc.p05, r.lo - 1e-9);
  EXPECT_LE(mc.p95, r.hi + 1e-9);
  EXPECT_GE(mc.probability_candidate_wins, 0.0);
  EXPECT_LE(mc.probability_candidate_wins, 1.0);
}

TEST(MonteCarlo, SureWinnerHasProbabilityOne) {
  const auto c = uprofile(1.0, 1.05, 3.0);
  const auto b = uprofile(3.1, 1.05, 9.7);
  const auto mc = monte_carlo_tcdp_ratio(c, b, uscenario(), 1000, 1);
  EXPECT_DOUBLE_EQ(mc.probability_candidate_wins, 1.0);
}

TEST(MonteCarlo, RejectsDegenerateSampleCount) {
  const auto c = uprofile(3.6, 1.2, 8.5);
  EXPECT_THROW((void)monte_carlo_tcdp_ratio(c, c, uscenario(), 1, 0), ContractViolation);
}

}  // namespace
}  // namespace ppatc::carbon
