// Unit tests for the strong-typed quantity system.
#include <gtest/gtest.h>

#include "ppatc/common/contract.hpp"
#include "ppatc/common/units.hpp"

namespace ppatc {
namespace {

using namespace ppatc::units;

TEST(Quantity, DefaultConstructedIsZero) {
  EXPECT_EQ(Energy{}.base(), 0.0);
  EXPECT_EQ(in_joules(Energy{}), 0.0);
}

TEST(Quantity, AdditionAndSubtraction) {
  const Energy a = joules(3.0);
  const Energy b = joules(1.5);
  EXPECT_DOUBLE_EQ(in_joules(a + b), 4.5);
  EXPECT_DOUBLE_EQ(in_joules(a - b), 1.5);
}

TEST(Quantity, CompoundAssignment) {
  Energy e = joules(1.0);
  e += joules(2.0);
  EXPECT_DOUBLE_EQ(in_joules(e), 3.0);
  e -= joules(0.5);
  EXPECT_DOUBLE_EQ(in_joules(e), 2.5);
  e *= 4.0;
  EXPECT_DOUBLE_EQ(in_joules(e), 10.0);
  e /= 5.0;
  EXPECT_DOUBLE_EQ(in_joules(e), 2.0);
}

TEST(Quantity, ScalarMultiplicationCommutes) {
  const Power p = watts(2.0);
  EXPECT_DOUBLE_EQ(in_watts(p * 3.0), 6.0);
  EXPECT_DOUBLE_EQ(in_watts(3.0 * p), 6.0);
}

TEST(Quantity, SameDimensionRatioIsDimensionless) {
  const double r = kilowatt_hours(2.0) / kilowatt_hours(0.5);
  EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(Quantity, Comparisons) {
  EXPECT_LT(joules(1.0), joules(2.0));
  EXPECT_GT(joules(2.0), joules(1.0));
  EXPECT_EQ(joules(1.0), joules(1.0));
  EXPECT_LE(joules(1.0), joules(1.0));
}

TEST(Quantity, UnaryNegationAndAbs) {
  const Carbon c = grams_co2e(-3.0);
  EXPECT_DOUBLE_EQ(in_grams_co2e(-c), 3.0);
  EXPECT_DOUBLE_EQ(in_grams_co2e(abs(c)), 3.0);
  EXPECT_DOUBLE_EQ(in_grams_co2e(abs(grams_co2e(3.0))), 3.0);
}

TEST(Quantity, MinMax) {
  EXPECT_EQ(min(joules(1.0), joules(2.0)), joules(1.0));
  EXPECT_EQ(max(joules(1.0), joules(2.0)), joules(2.0));
}

TEST(Quantity, FiniteAndNonnegativeChecks) {
  EXPECT_TRUE(joules(1.0).is_finite());
  EXPECT_TRUE(joules(0.0).is_nonnegative());
  EXPECT_FALSE(joules(-1.0).is_nonnegative());
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(in_joules(kilowatt_hours(1.0)), 3.6e6);
  EXPECT_DOUBLE_EQ(in_kilowatt_hours(joules(3.6e6)), 1.0);
  EXPECT_DOUBLE_EQ(in_picojoules(picojoules(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(in_femtojoules(femtojoules(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(in_joules(watt_hours(1.0)), 3600.0);
}

TEST(Units, DurationConversions) {
  EXPECT_DOUBLE_EQ(in_seconds(hours(2.0)), 7200.0);
  EXPECT_DOUBLE_EQ(in_hours(days(1.0)), 24.0);
  EXPECT_DOUBLE_EQ(in_days(months(12.0)), 365.0);
  EXPECT_DOUBLE_EQ(in_months(months(7.5)), 7.5);
  EXPECT_DOUBLE_EQ(in_nanoseconds(picoseconds(3000.0)), 3.0);
}

TEST(Units, AreaConversions) {
  EXPECT_DOUBLE_EQ(in_square_centimetres(square_millimetres(100.0)), 1.0);
  EXPECT_DOUBLE_EQ(in_square_millimetres(square_micrometres(1e6)), 1.0);
  EXPECT_DOUBLE_EQ(in_square_micrometres(square_millimetres(1.0)), 1e6);
}

TEST(Units, CarbonConversions) {
  EXPECT_DOUBLE_EQ(in_grams_co2e(kilograms_co2e(2.0)), 2000.0);
  EXPECT_DOUBLE_EQ(in_kilograms_co2e(grams_co2e(500.0)), 0.5);
}

TEST(Units, CarbonIntensityConversion) {
  // 3600 g/kWh == 1 mg/J == 1e-3 g/J.
  const CarbonIntensity ci = grams_per_kilowatt_hour(3600.0);
  EXPECT_DOUBLE_EQ(ci.base(), 1e-3);
  EXPECT_DOUBLE_EQ(in_grams_per_kilowatt_hour(ci), 3600.0);
}

TEST(Units, TemperatureCelsius) {
  EXPECT_DOUBLE_EQ(in_kelvin(celsius(0.0)), 273.15);
  EXPECT_DOUBLE_EQ(in_kelvin(celsius(300.0)), 573.15);
}

TEST(Algebra, PowerTimesTimeIsEnergy) {
  const Energy e = watts(10.0) * seconds(5.0);
  EXPECT_DOUBLE_EQ(in_joules(e), 50.0);
  EXPECT_DOUBLE_EQ(in_joules(seconds(5.0) * watts(10.0)), 50.0);
}

TEST(Algebra, EnergyOverTimeIsPower) {
  EXPECT_DOUBLE_EQ(in_watts(joules(50.0) / seconds(5.0)), 10.0);
}

TEST(Algebra, EnergyOverPowerIsTime) {
  EXPECT_DOUBLE_EQ(in_seconds(joules(50.0) / watts(10.0)), 5.0);
}

TEST(Algebra, IntensityTimesEnergyIsCarbon) {
  const Carbon c = grams_per_kilowatt_hour(380.0) * kilowatt_hours(2.0);
  EXPECT_NEAR(in_grams_co2e(c), 760.0, 1e-9);
  EXPECT_NEAR(in_grams_co2e(kilowatt_hours(2.0) * grams_per_kilowatt_hour(380.0)), 760.0, 1e-9);
}

TEST(Algebra, CarbonPerAreaTimesArea) {
  const Carbon c = grams_per_square_centimetre(500.0) * square_centimetres(2.0);
  EXPECT_DOUBLE_EQ(in_grams_co2e(c), 1000.0);
}

TEST(Algebra, EnergyPerAreaRoundTrip) {
  const EnergyPerArea epa = kilowatt_hours(100.0) / square_centimetres(50.0);
  EXPECT_DOUBLE_EQ(in_kilowatt_hours_per_square_centimetre(epa), 2.0);
  EXPECT_DOUBLE_EQ(in_kilowatt_hours(epa * square_centimetres(50.0)), 100.0);
}

TEST(Algebra, ElectricalChain) {
  // P = V * I; Q = C * V; E = Q * V.
  EXPECT_DOUBLE_EQ(in_watts(volts(0.7) * amperes(2.0)), 1.4);
  const Charge q = femtofarads(10.0) * volts(0.7);
  EXPECT_NEAR(in_coulombs(q), 7e-15, 1e-24);
  EXPECT_NEAR(in_femtojoules(q * volts(0.7)), 4.9, 1e-9);
}

TEST(Algebra, ChargeFromCurrentTime) {
  EXPECT_DOUBLE_EQ(in_coulombs(amperes(2.0) * seconds(3.0)), 6.0);
}

TEST(Algebra, FrequencyPeriod) {
  EXPECT_DOUBLE_EQ(in_nanoseconds(period(megahertz(500.0))), 2.0);
  EXPECT_DOUBLE_EQ(in_seconds(1e6 / megahertz(1.0)), 1.0);
}

TEST(Algebra, LengthProductIsArea) {
  const Area a = millimetres(2.0) * millimetres(3.0);
  EXPECT_NEAR(in_square_millimetres(a), 6.0, 1e-9);
  const Area b = micrometres(515.0) * micrometres(270.0);
  EXPECT_NEAR(in_square_millimetres(b), 0.139050, 1e-9);
}

TEST(Contract, ViolationThrowsWithContext) {
  try {
    PPATC_EXPECT(false, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string{e.what()}.find("the message"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("precondition"), std::string::npos);
  }
}

TEST(Contract, EnsureLabelsPostcondition) {
  try {
    PPATC_ENSURE(1 == 2, "bad result");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string{e.what()}.find("postcondition"), std::string::npos);
  }
}

TEST(Contract, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PPATC_EXPECT(true, ""));
  EXPECT_NO_THROW(PPATC_ENSURE(true, ""));
}

}  // namespace
}  // namespace ppatc
