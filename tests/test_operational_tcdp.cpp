// Tests for operational carbon (Eq. 1/6-8) and the tC / tCDP lifetime
// analytics (Fig. 5).
#include <gtest/gtest.h>

#include "ppatc/carbon/operational.hpp"
#include "ppatc/carbon/tcdp.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {
namespace {

using namespace ppatc::units;

OperationalScenario us_scenario() {
  OperationalScenario s;
  s.use_intensity = DiurnalIntensity::flat(grids::us().intensity);
  return s;
}

TEST(Operational, Eq8HandComputation) {
  // 10 mW, 2 h/day, 24 months, 380 g/kWh:
  // E = 10e-3 W * 24*30.417*2*3600 s = 10e-3 * 730*3600*... compute directly.
  const OperationalScenario s = us_scenario();
  const Carbon c = operational_carbon(s, milliwatts(10.0), months(24.0));
  const double hours = 24.0 * (365.0 / 12.0) * 2.0;  // lifetime days * 2h
  const double expected_g = 380.0 * (10e-3 * hours / 1000.0);  // g/kWh * kWh
  EXPECT_NEAR(in_grams_co2e(c), expected_g, 1e-9);
}

TEST(Operational, LinearInPowerAndLifetime) {
  const OperationalScenario s = us_scenario();
  const Carbon base = operational_carbon(s, milliwatts(5.0), months(10.0));
  EXPECT_NEAR(in_grams_co2e(operational_carbon(s, milliwatts(10.0), months(10.0))),
              2.0 * in_grams_co2e(base), 1e-12);
  EXPECT_NEAR(in_grams_co2e(operational_carbon(s, milliwatts(5.0), months(20.0))),
              2.0 * in_grams_co2e(base), 1e-12);
}

TEST(Operational, WindowWidthScalesCarbon) {
  OperationalScenario narrow = us_scenario();
  OperationalScenario wide = us_scenario();
  wide.window.start_hour = 18.0;
  wide.window.end_hour = 22.0;  // 4 h/day
  const Carbon cn = operational_carbon(narrow, milliwatts(10.0), months(12.0));
  const Carbon cw = operational_carbon(wide, milliwatts(10.0), months(12.0));
  EXPECT_NEAR(in_grams_co2e(cw), 2.0 * in_grams_co2e(cn), 1e-9);
}

TEST(Operational, Eq8MatchesEq1Integral) {
  // The closed form (Eq. 8) must equal the explicit integral (Eq. 1) for the
  // windowed power profile, including with a shaped CI_use(t).
  OperationalScenario s;
  s.use_intensity = DiurnalIntensity::with_evening_peak(grids::us().intensity, 0.4);
  const Power p = milliwatts(10.0);
  const Duration life = days(30.0);
  const Carbon closed = operational_carbon(s, p, life);
  const auto power_at = [&](double hour) {
    return (hour >= 20.0 && hour < 22.0) ? p : watts(0.0);
  };
  const Carbon integral =
      operational_carbon_integral(s.use_intensity, power_at, life, seconds(60.0));
  EXPECT_NEAR(in_grams_co2e(closed), in_grams_co2e(integral),
              0.01 * in_grams_co2e(closed));
}

TEST(Operational, StandbyUsesDailyMean) {
  OperationalScenario s;
  s.use_intensity = DiurnalIntensity::with_evening_peak(grids::us().intensity, 0.5);
  const Carbon c = standby_carbon(s, milliwatts(1.0), days(10.0));
  const double expected =
      s.use_intensity.daily_mean().base() * (1e-3 * 10.0 * 86400.0);
  EXPECT_NEAR(in_grams_co2e(c), expected, 1e-9);
}

TEST(Operational, RejectsNegativeInputs) {
  const OperationalScenario s = us_scenario();
  EXPECT_THROW((void)operational_carbon(s, milliwatts(-1.0), months(1.0)), ContractViolation);
  EXPECT_THROW((void)operational_carbon(s, milliwatts(1.0), months(-1.0)), ContractViolation);
}

// ---- tC / tCDP --------------------------------------------------------------

SystemCarbonProfile make_profile(double emb_g, double p_mw, double exec_ms) {
  SystemCarbonProfile p;
  p.name = "test";
  p.embodied_per_good_die = grams_co2e(emb_g);
  p.operational_power = milliwatts(p_mw);
  p.execution_time = milliseconds(exec_ms);
  return p;
}

TEST(Tcdp, TotalCarbonIsEmbodiedPlusOperational) {
  const auto p = make_profile(3.0, 10.0, 40.0);
  const auto s = us_scenario();
  const Duration t = months(12.0);
  EXPECT_NEAR(in_grams_co2e(total_carbon(p, s, t)),
              3.0 + in_grams_co2e(operational_carbon(p, s, t)), 1e-9);
}

TEST(Tcdp, TcdpIsTotalTimesExecution) {
  const auto p = make_profile(3.0, 10.0, 40.0);
  const auto s = us_scenario();
  const Duration t = months(12.0);
  EXPECT_NEAR(in_gco2e_seconds(tcdp(p, s, t)), in_grams_co2e(total_carbon(p, s, t)) * 0.040,
              1e-9);
}

TEST(Tcdp, SeriesIsMonotonicWithConstantEmbodied) {
  const auto p = make_profile(3.0, 10.0, 40.0);
  const auto series = lifetime_series(p, us_scenario(), 24);
  ASSERT_EQ(series.size(), 24u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].total, series[i - 1].total);
    EXPECT_GT(series[i].operational, series[i - 1].operational);
    EXPECT_EQ(series[i].embodied, series[0].embodied);
    EXPECT_GT(series[i].tcdp, series[i - 1].tcdp);
  }
  EXPECT_NEAR(in_months(series[11].lifetime), 12.0, 1e-9);
}

TEST(Tcdp, EmbodiedDominanceEndAnalytic) {
  // C_op(t) = C_emb when t = C_emb / (CI * P * duty).
  const auto p = make_profile(3.0, 10.0, 40.0);
  const auto s = us_scenario();
  const auto end = embodied_dominance_end(p, s, months(60.0));
  ASSERT_TRUE(end.has_value());
  const double rate_g_per_s =
      grids::us().intensity.base() * 10e-3 * (2.0 / 24.0);
  EXPECT_NEAR(in_seconds(*end), 3.0 / rate_g_per_s, 5.0);
}

TEST(Tcdp, EmbodiedDominanceNeverWithinHorizon) {
  const auto p = make_profile(1000.0, 1.0, 40.0);
  EXPECT_FALSE(embodied_dominance_end(p, us_scenario(), months(12.0)).has_value());
}

TEST(Tcdp, CrossoverFoundForOpposedProfiles) {
  // a: low embodied, high power; b: high embodied, low power.
  const auto a = make_profile(2.0, 12.0, 40.0);
  const auto b = make_profile(4.0, 6.0, 40.0);
  const auto s = us_scenario();
  const auto cross = total_carbon_crossover(a, b, s, months(60.0));
  ASSERT_TRUE(cross.has_value());
  // At the crossover the totals agree.
  EXPECT_NEAR(in_grams_co2e(total_carbon(a, s, *cross)),
              in_grams_co2e(total_carbon(b, s, *cross)), 1e-3);
  // Analytic: delta_emb / delta_rate.
  const double rate = grids::us().intensity.base() * 6e-3 * (2.0 / 24.0);
  EXPECT_NEAR(in_seconds(*cross), 2.0 / rate, 10.0);
}

TEST(Tcdp, NoCrossoverWhenOneDominates) {
  const auto a = make_profile(2.0, 5.0, 40.0);
  const auto b = make_profile(4.0, 6.0, 40.0);  // worse on both axes
  EXPECT_FALSE(total_carbon_crossover(a, b, us_scenario(), months(60.0)).has_value());
}

TEST(Tcdp, RatioConvergesToEdpRatio) {
  const auto a = make_profile(2.0, 12.0, 40.0);
  const auto b = make_profile(4.0, 6.0, 40.0);
  const auto s = us_scenario();
  const double limit = asymptotic_edp_ratio(a, b, s);
  EXPECT_NEAR(limit, 2.0, 1e-9);  // same exec time, 2x power
  const double at_20y = tcdp_ratio(a, b, s, months(1200.0));
  EXPECT_NEAR(at_20y, limit, 0.1);
  // Convergence is monotone from below here (a has less embodied).
  EXPECT_LT(tcdp_ratio(a, b, s, months(12.0)), at_20y);
}

TEST(Tcdp, ExecutionTimeWeightsRatio) {
  const auto fast = make_profile(3.0, 10.0, 20.0);
  const auto slow = make_profile(3.0, 10.0, 40.0);
  const auto s = us_scenario();
  EXPECT_NEAR(tcdp_ratio(fast, slow, s, months(12.0)), 0.5, 1e-9);
}

TEST(Tcdp, StandbyPowerCountsAllDay) {
  auto p = make_profile(3.0, 0.0, 40.0);
  p.standby_power = milliwatts(1.0);
  const auto s = us_scenario();
  const Carbon c = operational_carbon(p, s, days(1.0));
  // 1 mW for 24 h at 380 g/kWh = 0.00912 g.
  EXPECT_NEAR(in_grams_co2e(c), 380.0 * 24e-6, 1e-6);
}

TEST(Tcdp, SeriesRejectsBadArgs) {
  const auto p = make_profile(3.0, 10.0, 40.0);
  EXPECT_THROW((void)lifetime_series(p, us_scenario(), 0), ContractViolation);
  auto bad = p;
  bad.execution_time = seconds(0.0);
  EXPECT_THROW((void)tcdp(bad, us_scenario(), months(1.0)), ContractViolation);
}

}  // namespace
}  // namespace ppatc::carbon
