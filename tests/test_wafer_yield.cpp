// Tests for the die-per-wafer estimators (Eq. 5 / ref [39]) and yield models.
#include <gtest/gtest.h>

#include "ppatc/carbon/wafer.hpp"
#include "ppatc/carbon/yield.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {
namespace {

using namespace ppatc::units;

DieSpec paper_si_die() { return {micrometres(515.0), micrometres(270.0)}; }
DieSpec paper_m3d_die() { return {micrometres(334.0), micrometres(159.0)}; }

TEST(DiePerWafer, FormulaMatchesPaperAllSi) {
  // Paper Table II: 299,127 dies for the 270x515 um die.
  EXPECT_NEAR(static_cast<double>(dies_per_wafer_formula(paper_si_die())), 299127.0, 600.0);
}

TEST(DiePerWafer, FormulaMatchesPaperM3d) {
  // Paper Table II: 606,238 dies for the 159x334 um die.
  EXPECT_NEAR(static_cast<double>(dies_per_wafer_formula(paper_m3d_die())), 606238.0, 1200.0);
}

TEST(DiePerWafer, GridCountIsConservativeButClose) {
  for (const auto& die : {paper_si_die(), paper_m3d_die()}) {
    const auto formula = dies_per_wafer_formula(die);
    const auto grid = dies_per_wafer_grid(die);
    EXPECT_LT(grid, formula);
    EXPECT_GT(static_cast<double>(grid), 0.93 * static_cast<double>(formula));
  }
}

TEST(DiePerWafer, SmallerDieMoreDies) {
  EXPECT_GT(dies_per_wafer_formula(paper_m3d_die()), dies_per_wafer_formula(paper_si_die()));
}

TEST(DiePerWafer, PaperGoodDieRatio) {
  // Paper Sec. III-C: 1.13x more good dies per wafer for the M3D design
  // (its 2.03x die-count advantage outweighs the 50% vs 90% yield).
  const double good_si = static_cast<double>(dies_per_wafer_formula(paper_si_die())) * 0.90;
  const double good_m3d = static_cast<double>(dies_per_wafer_formula(paper_m3d_die())) * 0.50;
  EXPECT_NEAR(good_m3d / good_si, 1.13, 0.02);
}

TEST(DiePerWafer, ScalesInverselyWithDieArea) {
  const DieSpec big{millimetres(10.0), millimetres(10.0)};
  const DieSpec small{millimetres(5.0), millimetres(5.0)};
  const auto nb = dies_per_wafer_formula(big);
  const auto ns = dies_per_wafer_formula(small);
  // Roughly 4x, slightly more than 4x is impossible, slightly less from
  // perimeter loss... small dies waste less edge, so ratio > 4 is expected.
  EXPECT_GT(ns, 4 * nb);
  EXPECT_LT(ns, 5 * nb);
}

TEST(DiePerWafer, EdgeClearanceReducesCount) {
  WaferSpec tight;
  tight.edge_clearance = millimetres(0.0);
  WaferSpec loose;
  loose.edge_clearance = millimetres(10.0);
  EXPECT_GT(dies_per_wafer_formula(paper_si_die(), tight),
            dies_per_wafer_formula(paper_si_die(), loose));
}

TEST(DiePerWafer, SpacingReducesCount) {
  WaferSpec no_scribe;
  no_scribe.die_spacing = millimetres(0.0);
  EXPECT_GT(dies_per_wafer_formula(paper_si_die(), no_scribe),
            dies_per_wafer_formula(paper_si_die()));
}

TEST(DiePerWafer, HugeDieYieldsZeroOrFails) {
  // A die that fits geometrically but leaves no room after the perimeter
  // correction clamps to zero; a die wider than the usable wafer throws.
  const DieSpec huge{millimetres(200.0), millimetres(200.0)};
  EXPECT_EQ(dies_per_wafer_formula(huge), 0);
  const DieSpec too_wide{millimetres(295.0), millimetres(10.0)};
  EXPECT_THROW((void)dies_per_wafer_formula(too_wide), ContractViolation);
}

TEST(DiePerWafer, InputValidation) {
  EXPECT_THROW((void)dies_per_wafer_formula(DieSpec{millimetres(0.0), millimetres(1.0)}),
               ContractViolation);
  WaferSpec bad;
  bad.edge_clearance = millimetres(-1.0);
  EXPECT_THROW((void)dies_per_wafer_formula(paper_si_die(), bad), ContractViolation);
}

TEST(DiePerWafer, GridRespectsFlatExclusion) {
  WaferSpec no_flat;
  no_flat.flat_height = millimetres(0.0);
  WaferSpec big_flat;
  big_flat.flat_height = millimetres(40.0);
  EXPECT_GT(dies_per_wafer_grid(paper_si_die(), no_flat),
            dies_per_wafer_grid(paper_si_die(), big_flat));
}

// ---- yield models -----------------------------------------------------------

TEST(Yield, FixedIgnoresArea) {
  const auto y = fixed_yield(0.9);
  EXPECT_DOUBLE_EQ(y(square_millimetres(1.0)), 0.9);
  EXPECT_DOUBLE_EQ(y(square_millimetres(100.0)), 0.9);
  EXPECT_THROW(fixed_yield(0.0), ContractViolation);
  EXPECT_THROW(fixed_yield(1.5), ContractViolation);
}

TEST(Yield, PaperDemonstrationValues) {
  EXPECT_DOUBLE_EQ(paper_si_yield()(square_millimetres(0.139)), 0.90);
  EXPECT_DOUBLE_EQ(paper_m3d_yield()(square_millimetres(0.053)), 0.50);
}

TEST(Yield, PoissonMatchesClosedForm) {
  const auto y = poisson_yield(0.1);  // 0.1 defects/cm^2
  EXPECT_NEAR(y(square_centimetres(1.0)), std::exp(-0.1), 1e-12);
  EXPECT_NEAR(y(square_centimetres(10.0)), std::exp(-1.0), 1e-12);
}

TEST(Yield, MurphyAbovePoissonBelowOne) {
  const auto poisson = poisson_yield(0.5);
  const auto murphy = murphy_yield(0.5);
  for (const double a_cm2 : {0.5, 1.0, 4.0}) {
    const Area a = square_centimetres(a_cm2);
    EXPECT_GT(murphy(a), poisson(a)) << a_cm2;
    EXPECT_LT(murphy(a), 1.0);
  }
}

TEST(Yield, ModelOrderingAtLargeArea) {
  // At large A*D0 the classic ordering is Poisson < Murphy < Seeds.
  const Area a = square_centimetres(8.0);
  EXPECT_LT(poisson_yield(0.5)(a), murphy_yield(0.5)(a));
  EXPECT_LT(murphy_yield(0.5)(a), seeds_yield(0.5)(a));
}

TEST(Yield, AllModelsApproachOneForTinyDies) {
  for (const auto& model : {poisson_yield(0.3), murphy_yield(0.3), seeds_yield(0.3)}) {
    EXPECT_NEAR(model(square_micrometres(1.0)), 1.0, 1e-6);
  }
}

TEST(Yield, MonotonicallyDecreasingInArea) {
  for (const auto& model : {poisson_yield(0.2), murphy_yield(0.2), seeds_yield(0.2)}) {
    double prev = 1.1;
    for (double a = 0.1; a < 10.0; a *= 2.0) {
      const double y = model(square_centimetres(a));
      EXPECT_LT(y, prev);
      prev = y;
    }
  }
}

TEST(Yield, StackedIsProductOfTiers) {
  const auto stacked = stacked_yield({fixed_yield(0.9), fixed_yield(0.8), fixed_yield(0.7)});
  EXPECT_NEAR(stacked(square_millimetres(1.0)), 0.9 * 0.8 * 0.7, 1e-12);
  EXPECT_THROW(stacked_yield({}), ContractViolation);
}

TEST(Yield, StackedPoissonEqualsSummedDefectDensity) {
  const auto stacked = stacked_yield({poisson_yield(0.1), poisson_yield(0.2)});
  const auto combined = poisson_yield(0.3);
  const Area a = square_centimetres(2.0);
  EXPECT_NEAR(stacked(a), combined(a), 1e-12);
}

TEST(Yield, NegativeDefectDensityRejected) {
  EXPECT_THROW(poisson_yield(-0.1), ContractViolation);
  EXPECT_THROW(murphy_yield(-0.1), ContractViolation);
  EXPECT_THROW(seeds_yield(-0.1), ContractViolation);
}

}  // namespace
}  // namespace ppatc::carbon
