// Instruction-level tests for the ARMv6-M ISS: semantics, flags, memory,
// cycle model, and fault behaviour. Programs are assembled from source, so
// these are also end-to-end assembler+CPU tests; raw-encoding checks live in
// test_assembler.cpp.
#include <gtest/gtest.h>

#include "ppatc/isa/assembler.hpp"
#include "ppatc/isa/cpu.hpp"
#include "ppatc/isa/memory.hpp"

namespace ppatc::isa {
namespace {

// Assembles and runs a program to completion (it must halt via `svc 0`,
// which exits with r0, or an MMIO exit store).
class AsmRun {
 public:
  explicit AsmRun(const std::string& body, std::uint64_t max_instructions = 1'000'000)
      : cpu_{bus_} {
    const Program p = assemble(body);
    bus_.load_program(0, p.bytes);
    cpu_.reset(p.entry, kDataBase + kDataSize - 16);
    result_ = cpu_.run(max_instructions);
  }

  [[nodiscard]] bool halted() const { return result_.halted; }
  [[nodiscard]] std::uint32_t exit_code() const { return bus_.exit_code(); }
  [[nodiscard]] std::uint32_t reg(int r) const { return cpu_.reg(r); }
  [[nodiscard]] std::uint64_t cycles() const { return result_.cycles; }
  [[nodiscard]] std::uint64_t instructions() const { return result_.instructions; }
  [[nodiscard]] Bus& bus() { return bus_; }
  [[nodiscard]] Cpu& cpu() { return cpu_; }

 private:
  Bus bus_;
  Cpu cpu_;
  Cpu::RunResult result_;
};

// Runs a snippet that leaves its result in r0 and falls into `svc 0`.
std::uint32_t result_of(const std::string& snippet) {
  AsmRun run{"_start:\n" + snippet + "\n    svc 0\n"};
  EXPECT_TRUE(run.halted());
  return run.exit_code();
}

TEST(Alu, MovsImmediate) { EXPECT_EQ(result_of("movs r0, #42"), 42u); }

TEST(Alu, MovsRegisterSetsFlags) {
  EXPECT_EQ(result_of("movs r1, #7\n movs r0, r1"), 7u);
}

TEST(Alu, AddsThreeRegister) {
  EXPECT_EQ(result_of("movs r1, #20\n movs r2, #22\n adds r0, r1, r2"), 42u);
}

TEST(Alu, AddsSmallImmediate) {
  EXPECT_EQ(result_of("movs r1, #40\n adds r0, r1, #2"), 42u);
}

TEST(Alu, AddsByteImmediateWraps) {
  EXPECT_EQ(result_of("movs r0, #200\n adds r0, #200"), 400u);
}

TEST(Alu, SubsProducesTwosComplement) {
  EXPECT_EQ(result_of("movs r1, #5\n movs r2, #7\n subs r0, r1, r2"), 0xFFFFFFFEu);
}

TEST(Alu, CarryFlagFromAddition) {
  // 0xFFFFFFFF + 1 -> carry set; ADC then adds it.
  EXPECT_EQ(result_of(R"(
    movs r1, #0
    mvns r1, r1          @ r1 = 0xFFFFFFFF
    movs r2, #1
    adds r1, r1, r2      @ carry out
    movs r0, #0
    adcs r0, r2          @ r0 = 0 + 1 + carry = 2
)"),
            2u);
}

TEST(Alu, SbcSubtractsBorrow) {
  // 5 - 3 with carry set (no borrow) = 2; with carry clear = 1.
  EXPECT_EQ(result_of(R"(
    movs r1, #1
    movs r2, #1
    adds r3, r1, r2      @ sets carry = 0 (no overflow), actually clears carry
    movs r0, #5
    movs r4, #3
    sbcs r0, r4          @ 5 - 3 - !carry = 1
)"),
            1u);
}

TEST(Alu, NegsIsZeroMinus) {
  EXPECT_EQ(result_of("movs r1, #5\n negs r0, r1"), 0xFFFFFFFBu);
  EXPECT_EQ(result_of("movs r1, #5\n rsbs r0, r1"), 0xFFFFFFFBu);
}

TEST(Alu, LogicalOps) {
  EXPECT_EQ(result_of("movs r0, #0xF0\n movs r1, #0x3C\n ands r0, r1"), 0x30u);
  EXPECT_EQ(result_of("movs r0, #0xF0\n movs r1, #0x3C\n orrs r0, r1"), 0xFCu);
  EXPECT_EQ(result_of("movs r0, #0xF0\n movs r1, #0x3C\n eors r0, r1"), 0xCCu);
  EXPECT_EQ(result_of("movs r0, #0xF0\n movs r1, #0x3C\n bics r0, r1"), 0xC0u);
  EXPECT_EQ(result_of("movs r1, #0\n mvns r0, r1"), 0xFFFFFFFFu);
}

TEST(Alu, Multiply) {
  EXPECT_EQ(result_of("movs r0, #7\n movs r1, #6\n muls r0, r1"), 42u);
  // Wraparound semantics.
  EXPECT_EQ(result_of(R"(
    ldr r0, =65537
    ldr r1, =65537
    muls r0, r1
)"),
            131073u);  // (2^16+1)^2 mod 2^32 = 2^32 + 2^17 + 1 -> 2^17+1
}

TEST(Shift, LslImmediate) {
  EXPECT_EQ(result_of("movs r1, #1\n lsls r0, r1, #4"), 16u);
}

TEST(Shift, LsrImmediate) {
  EXPECT_EQ(result_of("movs r1, #16\n lsrs r0, r1, #4"), 1u);
}

TEST(Shift, AsrSignExtends) {
  EXPECT_EQ(result_of(R"(
    movs r1, #1
    lsls r1, r1, #31     @ r1 = 0x80000000
    asrs r0, r1, #4      @ arithmetic -> 0xF8000000
)"),
            0xF8000000u);
}

TEST(Shift, RegisterShiftByMoreThan32) {
  EXPECT_EQ(result_of("movs r0, #1\n movs r1, #40\n lsls r0, r1"), 0u);
  EXPECT_EQ(result_of("movs r0, #255\n movs r1, #40\n lsrs r0, r1"), 0u);
}

TEST(Shift, RorRotates) {
  EXPECT_EQ(result_of("movs r0, #1\n movs r1, #1\n rors r0, r1"), 0x80000000u);
  EXPECT_EQ(result_of("movs r0, #0x81\n movs r1, #4\n rors r0, r1"), 0x10000008u);
}

TEST(Extend, ByteAndHalfword) {
  EXPECT_EQ(result_of("ldr r1, =0x1234FF80\n sxtb r0, r1"), 0xFFFFFF80u);
  EXPECT_EQ(result_of("ldr r1, =0x1234FF80\n uxtb r0, r1"), 0x80u);
  EXPECT_EQ(result_of("ldr r1, =0x1234F234\n sxth r0, r1"), 0xFFFFF234u);
  EXPECT_EQ(result_of("ldr r1, =0x1234F234\n uxth r0, r1"), 0xF234u);
}

TEST(Extend, ReverseOps) {
  EXPECT_EQ(result_of("ldr r1, =0x12345678\n rev r0, r1"), 0x78563412u);
  EXPECT_EQ(result_of("ldr r1, =0x12345678\n rev16 r0, r1"), 0x34127856u);
  EXPECT_EQ(result_of("ldr r1, =0x00008034\n revsh r0, r1"), 0x00003480u);
  EXPECT_EQ(result_of("ldr r1, =0x00003480\n revsh r0, r1"), 0xFFFF8034u);
}

TEST(HiReg, MovAndAddWithHighRegisters) {
  EXPECT_EQ(result_of(R"(
    movs r1, #21
    mov r8, r1
    movs r2, #21
    mov r0, r8
    add r0, r2
)"),
            42u);
}

TEST(Memory, WordStoreLoadRoundTrip) {
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    ldr r2, =0xDEADBEEF
    str r2, [r1, #4]
    ldr r0, [r1, #4]
)"),
            0xDEADBEEFu);
}

TEST(Memory, ByteAndHalfAccess) {
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    ldr r2, =0x11223344
    str r2, [r1, #0]
    ldrb r0, [r1, #1]    @ little endian -> 0x33
)"),
            0x33u);
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    ldr r2, =0x11223344
    str r2, [r1, #0]
    ldrh r0, [r1, #2]    @ -> 0x1122
)"),
            0x1122u);
}

TEST(Memory, SignedLoads) {
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    movs r2, #0x80
    strb r2, [r1, #0]
    movs r3, #0
    ldrsb r0, [r1, r3]
)"),
            0xFFFFFF80u);
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    ldr r2, =0x8001
    strh r2, [r1, #0]
    movs r3, #0
    ldrsh r0, [r1, r3]
)"),
            0xFFFF8001u);
}

TEST(Memory, RegisterOffsetAddressing) {
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x20000100
    movs r2, #8
    movs r3, #99
    str r3, [r1, r2]
    ldr r0, [r1, r2]
)"),
            99u);
}

TEST(Memory, SpRelativeStoreLoad) {
  EXPECT_EQ(result_of(R"(
    sub sp, #16
    movs r1, #77
    str r1, [sp, #8]
    ldr r0, [sp, #8]
    add sp, #16
)"),
            77u);
}

TEST(Memory, StmLdmWritebackAndOrder) {
  EXPECT_EQ(result_of(R"(
    ldr r0, =0x20000100
    movs r1, #1
    movs r2, #2
    movs r3, #3
    stm r0!, {r1, r2, r3}       @ ascending order, writeback +12
    ldr r4, =0x2000010C
    cmp r0, r4
    bne fail
    ldr r5, =0x20000104
    ldr r0, [r5, #0]            @ second slot = r2
    svc 0
fail:
    movs r0, #0
)"),
            2u);
}

TEST(Memory, LdmWithBaseInListSkipsWriteback) {
  EXPECT_EQ(result_of(R"(
    ldr r0, =0x20000100
    movs r1, #11
    movs r2, #22
    stm r0!, {r1, r2}
    ldr r0, =0x20000100
    ldm r0!, {r0, r3}           @ r0 in list: loaded value wins, no writeback
)"),
            11u);
}

TEST(Stack, PushPopRoundTrip) {
  EXPECT_EQ(result_of(R"(
    movs r1, #10
    movs r2, #20
    push {r1, r2}
    movs r1, #0
    movs r2, #0
    pop {r1, r2}
    adds r0, r1, r2
)"),
            30u);
}

TEST(Stack, PopPcReturns) {
  AsmRun run{R"(
_start:
    bl func
    movs r0, #1
    svc 0
func:
    push {r4, lr}
    movs r4, #0
    pop {r4, pc}
)"};
  EXPECT_TRUE(run.halted());
  EXPECT_EQ(run.exit_code(), 1u);
}

TEST(Branch, CallAndReturn) {
  EXPECT_EQ(result_of(R"(
    movs r0, #1
    bl double_it
    bl double_it
    b done
double_it:
    adds r0, r0, r0
    bx lr
done:
)"),
            4u);
}

TEST(Branch, BlxRegister) {
  EXPECT_EQ(result_of(R"(
    ldr r1, =target+1          @ thumb bit
    movs r0, #5
    blx r1
    b done
target:
    adds r0, #37
    bx lr
done:
)"),
            42u);
}

TEST(Branch, BackwardLoop) {
  EXPECT_EQ(result_of(R"(
    movs r0, #0
    movs r1, #5
loop:
    adds r0, r0, r1
    subs r1, r1, #1
    bne loop
)"),
            15u);
}

struct CondCase {
  const char* cond;
  std::uint32_t a, b;  // cmp a, b
  bool taken;
};

class ConditionBranch : public ::testing::TestWithParam<CondCase> {};

TEST_P(ConditionBranch, TakenMatchesSemantics) {
  const CondCase& c = GetParam();
  const std::string src = std::string{"    ldr r1, ="} + std::to_string(c.a) + "\n" +
                          "    ldr r2, =" + std::to_string(c.b) + "\n" +
                          "    cmp r1, r2\n    b" + c.cond + " taken\n    movs r0, #0\n" +
                          "    svc 0\ntaken:\n    movs r0, #1\n";
  EXPECT_EQ(result_of(src), c.taken ? 1u : 0u) << c.cond << " " << c.a << "," << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, ConditionBranch,
    ::testing::Values(
        CondCase{"eq", 5, 5, true}, CondCase{"eq", 5, 6, false},
        CondCase{"ne", 5, 6, true}, CondCase{"ne", 5, 5, false},
        CondCase{"hs", 6, 5, true}, CondCase{"hs", 5, 5, true}, CondCase{"hs", 4, 5, false},
        CondCase{"lo", 4, 5, true}, CondCase{"lo", 5, 5, false},
        CondCase{"mi", 3, 5, true}, CondCase{"mi", 5, 3, false},
        CondCase{"pl", 5, 3, true}, CondCase{"pl", 3, 5, false},
        CondCase{"hi", 6, 5, true}, CondCase{"hi", 5, 5, false},
        CondCase{"ls", 5, 5, true}, CondCase{"ls", 4, 5, true}, CondCase{"ls", 6, 5, false},
        CondCase{"ge", 5, 5, true}, CondCase{"ge", 0xFFFFFFFF, 1, false},  // -1 < 1 signed
        CondCase{"lt", 0xFFFFFFFF, 1, true}, CondCase{"lt", 1, 0xFFFFFFFF, false},
        CondCase{"gt", 2, 1, true}, CondCase{"gt", 1, 1, false},
        CondCase{"le", 1, 1, true}, CondCase{"le", 1, 2, true}, CondCase{"le", 2, 1, false}));

TEST(Branch, SignedOverflowConditions) {
  // 0x7FFFFFFF + 1 overflows: bvs taken.
  EXPECT_EQ(result_of(R"(
    ldr r1, =0x7FFFFFFF
    movs r2, #1
    adds r1, r1, r2
    bvs taken
    movs r0, #0
    svc 0
taken:
    movs r0, #1
)"),
            1u);
}

TEST(Cycles, AluIsOneCycle) {
  AsmRun run{"_start:\n    movs r0, #1\n    movs r1, #2\n    svc 0\n"};
  // 2 ALU (1+1) + svc (counted as branch_taken = 3).
  EXPECT_EQ(run.cycles(), 2u + 3u);
}

TEST(Cycles, LoadsTakeTwoCycles) {
  AsmRun run{R"(
_start:
    ldr r1, =0x20000000
    ldr r0, [r1, #0]
    svc 0
)"};
  // 2 loads (2+2) + svc 3.
  EXPECT_EQ(run.cycles(), 7u);
}

TEST(Cycles, TakenBranchCostsThree) {
  AsmRun taken{"_start:\n    movs r0, #0\n    cmp r0, #0\n    beq l\nl:\n    svc 0\n"};
  AsmRun not_taken{"_start:\n    movs r0, #0\n    cmp r0, #1\n    beq l\nl:\n    svc 0\n"};
  EXPECT_EQ(taken.cycles() - not_taken.cycles(), 2u);  // 3 vs 1
}

TEST(Cycles, PushPopProportionalToCount) {
  AsmRun one{"_start:\n    push {r1}\n    pop {r1}\n    svc 0\n"};
  AsmRun four{"_start:\n    push {r1, r2, r3, r4}\n    pop {r1, r2, r3, r4}\n    svc 0\n"};
  EXPECT_EQ(four.cycles() - one.cycles(), 6u);  // +3 per extra reg, both ways
}

TEST(Faults, MisalignedWordAccessThrows) {
  EXPECT_THROW(AsmRun(R"(
_start:
    ldr r1, =0x20000001
    ldr r0, [r1, #0]
    svc 0
)"),
               BusFault);
}

TEST(Faults, UnmappedAddressThrows) {
  EXPECT_THROW(AsmRun(R"(
_start:
    ldr r1, =0x30000000
    ldr r0, [r1, #0]
    svc 0
)"),
               BusFault);
}

TEST(Faults, StoreToProgramMemoryThrows) {
  EXPECT_THROW(AsmRun(R"(
_start:
    movs r1, #0
    movs r2, #1
    str r2, [r1, #0]
    svc 0
)"),
               BusFault);
}

TEST(Faults, UdfThrowsUndefined) {
  // UDF encodes as the permanently-undefined 0xDExx.
  Bus bus;
  bus.load_program(0, {0x00, 0xDE});
  Cpu cpu{bus};
  cpu.reset(0, kDataBase + kDataSize - 16);
  EXPECT_THROW(cpu.step(), UndefinedInstruction);
}

TEST(Mmio, ConsoleOutput) {
  AsmRun run{R"(
_start:
    ldr r1, =0x40000004
    movs r0, #'H'
    str r0, [r1, #0]
    movs r0, #'i'
    str r0, [r1, #0]
    movs r0, #0
    svc 0
)"};
  EXPECT_EQ(run.bus().console(), "Hi");
}

TEST(Mmio, WordLog) {
  AsmRun run{R"(
_start:
    ldr r1, =0x40000008
    ldr r0, =123456
    str r0, [r1, #0]
    movs r0, #0
    svc 0
)"};
  ASSERT_EQ(run.bus().word_log().size(), 1u);
  EXPECT_EQ(run.bus().word_log()[0], 123456u);
}

TEST(Mmio, ExitStopsExecution) {
  AsmRun run{R"(
_start:
    ldr r1, =0x40000000
    movs r0, #9
    str r0, [r1, #0]
    movs r0, #1          @ never executed
)"};
  EXPECT_TRUE(run.halted());
  EXPECT_EQ(run.exit_code(), 9u);
  EXPECT_EQ(run.reg(0), 9u);  // the later mov never ran
}

TEST(Cpu, RunRespectsInstructionBudget) {
  Bus bus;
  // Infinite loop: b . (0xE7FE).
  bus.load_program(0, {0xFE, 0xE7});
  Cpu cpu{bus};
  cpu.reset(0, kDataBase + kDataSize - 16);
  const auto r = cpu.run(100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 100u);
}

TEST(Cpu, ResetValidation) {
  Bus bus;
  Cpu cpu{bus};
  EXPECT_THROW(cpu.reset(1, 0x20000000), ContractViolation);
  EXPECT_THROW(cpu.reset(0, 0x20000002), ContractViolation);
}

TEST(Cpu, PcReadsAsCurrentPlus4) {
  // adr r0, label computes PC+4-relative address.
  AsmRun run{R"(
_start:
    adr r0, word
    ldr r0, [r0, #0]
    svc 0
.align 4
word:
    .word 4242
)"};
  EXPECT_EQ(run.exit_code(), 4242u);
}

TEST(Stats, FetchCountMatchesInstructions) {
  AsmRun run{"_start:\n    movs r0, #1\n    movs r1, #2\n    adds r0, r0, r1\n    svc 0\n"};
  EXPECT_EQ(run.bus().stats().fetches, run.instructions());
}

TEST(Stats, DataCountersSeparateReadsWrites) {
  AsmRun run{R"(
_start:
    ldr r1, =0x20000100
    movs r2, #5
    str r2, [r1, #0]
    ldr r3, [r1, #0]
    movs r0, #0
    svc 0
)"};
  const auto& s = run.bus().stats();
  EXPECT_EQ(s.data_writes, 2u);  // str + the svc's MMIO exit write
  EXPECT_EQ(s.data_mem_writes, 1u);
  EXPECT_EQ(s.data_reads, 2u);  // the literal pool load + the ldr
  EXPECT_EQ(s.program_reads, 1u);
  EXPECT_EQ(s.data_mem_reads, 1u);
}

}  // namespace
}  // namespace ppatc::isa
