// Tests for the process-step taxonomy, step-energy table, and the two
// fabrication flows (paper Sec. II-C / Eq. 4).
#include <gtest/gtest.h>

#include "ppatc/carbon/flows.hpp"
#include "ppatc/carbon/process_flow.hpp"
#include "ppatc/carbon/process_step.hpp"
#include "ppatc/common/contract.hpp"

namespace ppatc::carbon {
namespace {

using namespace ppatc::units;

TEST(StepEnergyTable, PaperWorkedExampleDepositionStep) {
  // Paper: 3 deposition steps totalling 4 kWh -> 1.33 kWh/step.
  const auto t = StepEnergyTable::calibrated();
  EXPECT_NEAR(in_kilowatt_hours(t.step_energy(ProcessArea::kDeposition)), 4.0 / 3.0, 1e-9);
}

TEST(StepEnergyTable, LithographyRequiresClass) {
  const auto t = StepEnergyTable::calibrated();
  EXPECT_THROW((void)t.step_energy(ProcessArea::kLithography), ContractViolation);
  EXPECT_THROW((void)t.litho_energy(LithoClass::kNone), ContractViolation);
  EXPECT_GT(in_kilowatt_hours(t.litho_energy(LithoClass::kEuv36nm)), 0.0);
}

TEST(StepEnergyTable, FinerPitchCostsMoreExposure) {
  const auto t = StepEnergyTable::calibrated();
  EXPECT_GE(t.litho_energy(LithoClass::kEuv36nm), t.litho_energy(LithoClass::kEuv42nm));
  EXPECT_GE(t.litho_energy(LithoClass::kEuv42nm), t.litho_energy(LithoClass::kDuv193i64nm));
  EXPECT_GE(t.litho_energy(LithoClass::kDuv193i64nm), t.litho_energy(LithoClass::kDuv193i80nm));
}

TEST(StepEnergyTable, SettersRoundTrip) {
  auto t = StepEnergyTable::calibrated();
  t.set_step_energy(ProcessArea::kDryEtch, kilowatt_hours(2.5));
  EXPECT_DOUBLE_EQ(in_kilowatt_hours(t.step_energy(ProcessArea::kDryEtch)), 2.5);
  t.set_litho_energy(LithoClass::kEuv36nm, kilowatt_hours(20.0));
  EXPECT_DOUBLE_EQ(in_kilowatt_hours(t.litho_energy(LithoClass::kEuv36nm)), 20.0);
  EXPECT_THROW(t.set_step_energy(ProcessArea::kLithography, kilowatt_hours(1.0)),
               ContractViolation);
  EXPECT_THROW(t.set_litho_energy(LithoClass::kNone, kilowatt_hours(1.0)), ContractViolation);
  EXPECT_THROW(t.set_step_energy(ProcessArea::kDryEtch, kilowatt_hours(-1.0)), ContractViolation);
}

TEST(ProcessFlow, StepValidation) {
  ProcessFlow f{"t"};
  EXPECT_THROW(f.add_step(ProcessArea::kDryEtch, 0, "zero"), ContractViolation);
  EXPECT_THROW(f.add_step(ProcessArea::kDryEtch, 1, "has litho", LithoClass::kEuv36nm),
               ContractViolation);
  EXPECT_THROW(f.add_step(ProcessArea::kLithography, 1, "missing litho"), ContractViolation);
}

TEST(ProcessFlow, MetalViaPairComposition) {
  ProcessFlow f{"t"};
  f.add_metal_via_pair(MetalPitch::k36nm, "M1");
  const auto counts = f.step_count_by_area();
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kLithography)], 1);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kDryEtch)], 4);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kDeposition)], 3);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kMetallization)], 2);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kWetEtch)], 2);
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kMetrology)], 5);
}

TEST(ProcessFlow, PairEnergiesByPitch) {
  const auto t = StepEnergyTable::calibrated();
  const auto pair_energy = [&](MetalPitch p) {
    ProcessFlow f{"t"};
    f.add_metal_via_pair(p, "M");
    return in_kilowatt_hours(f.energy_per_wafer(t));
  };
  EXPECT_NEAR(pair_energy(MetalPitch::k36nm), 29.32, 0.01);
  EXPECT_NEAR(pair_energy(MetalPitch::k48nm), 29.27, 0.01);
  EXPECT_NEAR(pair_energy(MetalPitch::k64nm), 29.10, 0.01);
  EXPECT_NEAR(pair_energy(MetalPitch::k80nm), 29.10, 0.01);
}

TEST(ProcessFlow, LumpedEnergyAdds) {
  ProcessFlow f{"t"};
  f.add_lumped(kilowatt_hours(100.0), "FEOL");
  f.add_lumped(kilowatt_hours(36.0), "extra");
  const auto t = StepEnergyTable::calibrated();
  EXPECT_NEAR(in_kilowatt_hours(f.energy_per_wafer(t)), 136.0, 1e-9);
  EXPECT_NEAR(in_kilowatt_hours(f.lumped_energy_per_wafer()), 136.0, 1e-9);
  EXPECT_NEAR(in_kilowatt_hours(f.step_energy_per_wafer(t)), 0.0, 1e-12);
}

TEST(ProcessFlow, EnergyByAreaSumsToStepEnergy) {
  const ProcessFlow f = all_si_7nm_flow();
  const auto t = StepEnergyTable::calibrated();
  const auto by_area = f.energy_by_area(t);
  Energy sum{};
  for (const auto& e : by_area) sum += e;
  EXPECT_NEAR(in_kilowatt_hours(sum), in_kilowatt_hours(f.step_energy_per_wafer(t)), 1e-9);
}

TEST(Flows, FeolMatchesImecIn7) {
  EXPECT_DOUBLE_EQ(in_kilowatt_hours(feol_mol_energy_per_wafer()), 436.0);
}

TEST(Flows, AllSiHasNineMetalLayers) {
  const ProcessFlow f = all_si_7nm_flow();
  // 9 metal/via pairs, each with exactly one exposure.
  const auto counts = f.step_count_by_area();
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kLithography)], 9);
}

TEST(Flows, AllSiEpaRatioMatchesPaper) {
  const ProcessFlow f = all_si_7nm_flow();
  const double ratio =
      f.energy_per_wafer(StepEnergyTable::calibrated()) / in7_reference_energy_per_wafer();
  EXPECT_NEAR(ratio, 0.79, 0.002);  // paper: 0.79x
}

TEST(Flows, M3dEpaRatioMatchesPaper) {
  const ProcessFlow f = m3d_igzo_cnfet_flow();
  const double ratio =
      f.energy_per_wafer(StepEnergyTable::calibrated()) / in7_reference_energy_per_wafer();
  EXPECT_NEAR(ratio, 1.22, 0.002);  // paper: 1.22x
}

TEST(Flows, M3dHasFifteenMetalLayerExposuresPlusTiers) {
  const ProcessFlow f = m3d_igzo_cnfet_flow();
  const auto counts = f.step_count_by_area();
  // 16 metal/via pair-equivalents (M1-M15 plus the IGZO S/D+V level) +
  // 2 standalone vias + 2 CNFET tiers (3 exposures each) + 1 IGZO tier
  // (2 exposures) = 26 exposures.
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kLithography)], 26);
}

TEST(Flows, M3dTierCountsScale) {
  M3dFlowOptions one_tier;
  one_tier.cnfet_tiers = 1;
  const auto t = StepEnergyTable::calibrated();
  const Energy base = m3d_igzo_cnfet_flow().energy_per_wafer(t);
  const Energy fewer = m3d_igzo_cnfet_flow(one_tier).energy_per_wafer(t);
  EXPECT_LT(fewer, base);

  M3dFlowOptions more;
  more.cnfet_tiers = 4;
  EXPECT_GT(m3d_igzo_cnfet_flow(more).energy_per_wafer(t), base);
}

TEST(Flows, CnfetTierStepInventory) {
  ProcessFlow f{"t"};
  append_cnfet_tier(f, 1);
  const auto counts = f.step_count_by_area();
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kLithography)], 3);  // active, S/D, gate
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kDeposition)], 3);   // oxide, CNT, HKD
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kMetallization)], 2);
}

TEST(Flows, IgzoTierStepInventory) {
  ProcessFlow f{"t"};
  append_igzo_tier(f, 1);
  const auto counts = f.step_count_by_area();
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kLithography)], 2);  // active, gate
  EXPECT_EQ(counts[static_cast<std::size_t>(ProcessArea::kDeposition)], 2);   // IGZO, HKD
  // IGZO active is patterned with a WET etch (RIE-free), per the paper.
  EXPECT_GE(counts[static_cast<std::size_t>(ProcessArea::kWetEtch)], 2);
}

TEST(Flows, M3dSharesBaseWithAllSiThroughM4) {
  // The M3D flow's first four metal levels are the same pitches as all-Si.
  const ProcessFlow m3d = m3d_igzo_cnfet_flow();
  const ProcessFlow si = all_si_7nm_flow();
  // Compare the first 4 pair-blocks (6 step kinds each) by label prefix.
  for (int i = 0; i < 6 * 4; ++i) {
    EXPECT_EQ(m3d.steps()[i].area, si.steps()[i].area) << "step " << i;
    EXPECT_EQ(m3d.steps()[i].count, si.steps()[i].count) << "step " << i;
  }
}

TEST(Flows, ToStringCoverage) {
  EXPECT_STREQ(to_string(ProcessArea::kDryEtch), "dry etch");
  EXPECT_STREQ(to_string(ProcessArea::kLithography), "lithography");
  EXPECT_STREQ(to_string(ProcessArea::kDeposition), "deposition");
  EXPECT_STREQ(to_string(MetalPitch::k36nm), "36 nm");
  EXPECT_STREQ(to_string(MetalPitch::k80nm), "80 nm");
  EXPECT_STREQ(to_string(LithoClass::kEuv36nm), "EUV (36 nm class)");
}

TEST(Flows, LithoForPitchMapping) {
  EXPECT_EQ(litho_for(MetalPitch::k36nm), LithoClass::kEuv36nm);
  EXPECT_EQ(litho_for(MetalPitch::k48nm), LithoClass::kEuv42nm);  // paper: use 42 nm energy
  EXPECT_EQ(litho_for(MetalPitch::k64nm), LithoClass::kDuv193i64nm);
  EXPECT_EQ(litho_for(MetalPitch::k80nm), LithoClass::kDuv193i80nm);
}

}  // namespace
}  // namespace ppatc::carbon
