// End-to-end tests for the PPAtC framework: Table II anchors and the system
// evaluation plumbing.
#include <gtest/gtest.h>

#include "ppatc/core/system.hpp"

namespace ppatc::core {
namespace {

using namespace ppatc::units;

// The full evaluation runs the 20M-cycle matmult plus SPICE; do it once.
const Table2& t2() {
  static const Table2 table = table2(workloads::matmult_int());
  return table;
}

TEST(TableII, ClockAndCycles) {
  EXPECT_EQ(t2().all_si.cycles, t2().m3d.cycles);  // same binary, same core
  // Paper: 20,047,348 cycles; ours within 1%.
  EXPECT_NEAR(static_cast<double>(t2().all_si.cycles), 20047348.0, 2e5);
  EXPECT_NEAR(in_seconds(t2().all_si.execution_time),
              static_cast<double>(t2().all_si.cycles) / 500e6, 1e-9);
}

TEST(TableII, M0EnergyPerCycle) {
  // Paper: 1.42 pJ (identical for both designs — the M0 is Si CMOS in both).
  EXPECT_NEAR(in_picojoules(t2().all_si.m0_energy_per_cycle), 1.42, 0.02);
  EXPECT_DOUBLE_EQ(in_picojoules(t2().all_si.m0_energy_per_cycle),
                   in_picojoules(t2().m3d.m0_energy_per_cycle));
}

TEST(TableII, MemoryEnergyPerCycle) {
  EXPECT_NEAR(in_picojoules(t2().all_si.memory_energy_per_cycle), 18.0, 0.15);
  EXPECT_NEAR(in_picojoules(t2().m3d.memory_energy_per_cycle), 15.5, 0.15);
}

TEST(TableII, MemoryAreas) {
  EXPECT_NEAR(in_square_millimetres(t2().all_si.memory_area), 0.068, 0.001);
  EXPECT_NEAR(in_square_millimetres(t2().m3d.memory_area), 0.025, 0.001);
}

TEST(TableII, TotalAreasAndDieDimensions) {
  EXPECT_NEAR(in_square_millimetres(t2().all_si.total_area), 0.139, 0.002);
  EXPECT_NEAR(in_square_millimetres(t2().m3d.total_area), 0.053, 0.001);
  EXPECT_NEAR(in_micrometres(t2().all_si.die_height), 270.0, 4.0);
  EXPECT_NEAR(in_micrometres(t2().all_si.die_width), 515.0, 7.0);
  EXPECT_NEAR(in_micrometres(t2().m3d.die_height), 159.0, 3.0);
  EXPECT_NEAR(in_micrometres(t2().m3d.die_width), 334.0, 5.0);
}

TEST(TableII, AreaRatioMatchesPaperText) {
  // Paper Sec. III-C: the all-Si die is 2.72x larger than the M3D die.
  const double ratio = t2().all_si.total_area / t2().m3d.total_area;
  EXPECT_NEAR(ratio, 2.72, 0.1);
}

TEST(TableII, EmbodiedPerWafer) {
  EXPECT_NEAR(in_kilograms_co2e(t2().all_si.embodied_per_wafer), 837.0, 4.0);
  EXPECT_NEAR(in_kilograms_co2e(t2().m3d.embodied_per_wafer), 1100.0, 5.0);
}

TEST(TableII, DiesPerWafer) {
  EXPECT_NEAR(static_cast<double>(t2().all_si.dies_per_wafer), 299127.0, 3000.0);
  EXPECT_NEAR(static_cast<double>(t2().m3d.dies_per_wafer), 606238.0, 6000.0);
}

TEST(TableII, EmbodiedPerGoodDie) {
  EXPECT_NEAR(in_grams_co2e(t2().all_si.embodied_per_good_die), 3.11, 0.05);
  EXPECT_NEAR(in_grams_co2e(t2().m3d.embodied_per_good_die), 3.63, 0.05);
  // Paper Sec. III-C: 1.17x higher embodied per good die for M3D.
  const double ratio = t2().m3d.embodied_per_good_die / t2().all_si.embodied_per_good_die;
  EXPECT_NEAR(ratio, 1.17, 0.02);
}

TEST(TableII, GoodDieRatioFavorsM3d) {
  // 1.13x more good dies per wafer for the M3D design: its 2.03x die-count
  // advantage outweighs the 50% vs 90% yield handicap. (This direction is
  // the one consistent with the paper's own per-good-die carbon numbers.)
  const double good_si = static_cast<double>(t2().all_si.dies_per_wafer) * t2().all_si.yield;
  const double good_m3d = static_cast<double>(t2().m3d.dies_per_wafer) * t2().m3d.yield;
  EXPECT_NEAR(good_m3d / good_si, 1.13, 0.02);
}

TEST(TableII, TimingClosesEverywhere) {
  EXPECT_TRUE(t2().all_si.memory_timing_met);
  EXPECT_TRUE(t2().m3d.memory_timing_met);
  EXPECT_TRUE(t2().all_si.m0_timing_met);
  EXPECT_TRUE(t2().m3d.m0_timing_met);
}

TEST(TableII, OperationalPowerComposition) {
  const double expected_mw =
      (in_picojoules(t2().all_si.m0_energy_per_cycle) +
       in_picojoules(t2().all_si.memory_energy_per_cycle)) *
      500e6 * 1e-12 * 1e3;
  EXPECT_NEAR(in_milliwatts(t2().all_si.operational_power), expected_mw, 1e-6);
  // M3D burns less power (memory efficiency).
  EXPECT_LT(in_milliwatts(t2().m3d.operational_power),
            in_milliwatts(t2().all_si.operational_power));
}

TEST(Evaluate, CarbonProfileWiring) {
  const auto p = t2().m3d.carbon_profile();
  EXPECT_EQ(p.name, t2().m3d.system_name);
  EXPECT_DOUBLE_EQ(in_grams_co2e(p.embodied_per_good_die),
                   in_grams_co2e(t2().m3d.embodied_per_good_die));
  EXPECT_DOUBLE_EQ(in_watts(p.operational_power), in_watts(t2().m3d.operational_power));
  EXPECT_DOUBLE_EQ(in_seconds(p.execution_time), in_seconds(t2().m3d.execution_time));
  EXPECT_DOUBLE_EQ(in_watts(p.standby_power), 0.0);
}

TEST(Evaluate, GridChangesOnlyEmbodied) {
  const auto coal = evaluate(SystemSpec::m3d(), workloads::fib(12), carbon::grids::coal());
  const auto solar = evaluate(SystemSpec::m3d(), workloads::fib(12), carbon::grids::solar());
  EXPECT_GT(coal.embodied_per_wafer, solar.embodied_per_wafer);
  EXPECT_DOUBLE_EQ(in_milliwatts(coal.operational_power),
                   in_milliwatts(solar.operational_power));
  EXPECT_EQ(coal.dies_per_wafer, solar.dies_per_wafer);
}

TEST(Evaluate, YieldScalesEmbodiedPerGoodDie) {
  SystemSpec half = SystemSpec::m3d();
  half.yield = 0.25;  // half the paper's 50%
  const auto low = evaluate(half, workloads::fib(12));
  const auto nominal = evaluate(SystemSpec::m3d(), workloads::fib(12));
  EXPECT_NEAR(in_grams_co2e(low.embodied_per_good_die),
              2.0 * in_grams_co2e(nominal.embodied_per_good_die), 1e-9);
}

TEST(Evaluate, RejectsBadSpec) {
  SystemSpec bad = SystemSpec::all_si();
  bad.yield = 0.0;
  EXPECT_THROW((void)evaluate(bad, workloads::fib(10)), ContractViolation);
  SystemSpec too_fast = SystemSpec::all_si();
  too_fast.fclk = gigahertz(3.0);
  EXPECT_THROW((void)evaluate(too_fast, workloads::fib(10)), ContractViolation);
}

TEST(Evaluate, WorkloadIndependentHardwareMetrics) {
  // Different workload, same hardware: areas and embodied carbon identical.
  const auto fib_eval = evaluate(SystemSpec::all_si(), workloads::fib(12));
  EXPECT_DOUBLE_EQ(in_square_millimetres(fib_eval.total_area),
                   in_square_millimetres(t2().all_si.total_area));
  EXPECT_DOUBLE_EQ(in_grams_co2e(fib_eval.embodied_per_good_die),
                   in_grams_co2e(t2().all_si.embodied_per_good_die));
  // ... but per-cycle memory energy differs with the access mix.
  EXPECT_NE(in_picojoules(fib_eval.memory_energy_per_cycle),
            in_picojoules(t2().all_si.memory_energy_per_cycle));
}

TEST(Evaluate, Names) {
  EXPECT_STREQ(to_string(Technology::kAllSi), "M0 + Si eDRAM");
  EXPECT_STREQ(to_string(Technology::kM3dIgzoCnfetSi), "M0 + IGZO/CNT/Si M3D-eDRAM");
}

}  // namespace
}  // namespace ppatc::core
