// Contract-macro tests: PPATC_EXPECT / PPATC_ENSURE violation paths.
//
// The macros back every precondition in the public API, so their failure
// behavior is itself API: ContractViolation (a logic_error), with a message
// carrying the kind, the stringized expression, file:line, and the caller's
// message. These tests pin that down.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "ppatc/common/contract.hpp"

namespace {

void guarded_sqrt_input(double x) { PPATC_EXPECT(x >= 0.0, "x must be non-negative"); }

double guarded_result(double x) {
  PPATC_ENSURE(x < 1e6, "result out of plausible range");
  return x;
}

}  // namespace

TEST(Contract, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(guarded_sqrt_input(4.0));
  EXPECT_NO_THROW(guarded_result(1.0));
  EXPECT_NO_THROW(PPATC_EXPECT(1 + 1 == 2, ""));
}

TEST(Contract, ExpectThrowsContractViolation) {
  EXPECT_THROW(guarded_sqrt_input(-1.0), ppatc::ContractViolation);
  // ContractViolation is a logic_error: caller bug, not environmental failure.
  EXPECT_THROW(guarded_sqrt_input(-1.0), std::logic_error);
}

TEST(Contract, ExpectMessageNamesKindExpressionSiteAndReason) {
  try {
    guarded_sqrt_input(-1.0);
    FAIL() << "expected ContractViolation";
  } catch (const ppatc::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("x >= 0.0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("x must be non-negative"), std::string::npos) << what;
  }
}

TEST(Contract, EnsureMessageSaysPostcondition) {
  try {
    guarded_result(2e6);
    FAIL() << "expected ContractViolation";
  } catch (const ppatc::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition"), std::string::npos) << what;
    EXPECT_NE(what.find("result out of plausible range"), std::string::npos) << what;
  }
}

TEST(Contract, EmptyMessageOmitsTrailingSeparator) {
  try {
    PPATC_EXPECT(false, "");
    FAIL() << "expected ContractViolation";
  } catch (const ppatc::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition failed: (false)"), std::string::npos) << what;
    // No caller message: the " — " separator must not dangle at the end.
    EXPECT_EQ(what.find(" — "), std::string::npos) << what;
  }
}

TEST(Contract, ConditionIsEvaluatedExactlyOnce) {
  int evals = 0;
  PPATC_EXPECT(++evals > 0, "side effect");
  EXPECT_EQ(evals, 1);
}
